GO ?= go

.PHONY: build test race vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short-mode race pass is quick; the full race suite trains models.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the CI gate: static analysis plus the full suite under the
# race detector (the shard fan-out and DLib are the concurrency-bearing
# paths it watches).
check: vet race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
