GO ?= go

# Per-target budget for `make fuzz`; raise for longer local campaigns.
FUZZTIME ?= 15s

.PHONY: build test race vet lint lint-fix-report check golden resume-golden analytic-gates bench bench-check metrics-smoke fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full race suite trains models and replays the golden/resume
# scenarios under the detector; on a small machine that can exceed go
# test's default 10m per-package timeout, so give it real headroom.
race:
	$(GO) test -race -timeout 45m ./...

vet:
	$(GO) vet ./...

# lint runs the repo-specific analyzers — the per-file checks (float
# equality, determinism, goroutine hygiene, error discards, cancellation
# polling) plus the flow-aware suite (hot-path allocations, lock
# discipline, atomic field hygiene, checkpoint durability, metric label
# cardinality) — over the tree including _test.go files. Exits non-zero
# on any diagnostic not suppressed by a //dqnlint:allow directive.
lint:
	$(GO) run ./cmd/dqnlint -tests .

# lint-fix-report emits the machine-readable diagnostic list to
# lint_report.json for triage tooling. Diagnostics (exit 1) are not a
# failure here, but a broken driver or unloadable tree (exit >= 2) is —
# a silent half-written report must not look like a clean run.
lint-fix-report:
	@$(GO) run ./cmd/dqnlint -tests -json . > lint_report.json; \
	st=$$?; \
	if [ $$st -ge 2 ]; then echo "dqnlint failed (exit $$st)"; exit $$st; fi; \
	echo "wrote lint_report.json"

# check is the CI gate: go vet, the repo's own analyzers, the full
# suite under the race detector (the shard fan-out and DLib are the
# concurrency-bearing paths it watches), the golden-trace determinism
# digests, the analytic-tier accuracy gates, the /metrics consistency
# smoke, and the benchmark regression gate.
check: vet lint race golden resume-golden analytic-gates metrics-smoke bench-check

# metrics-smoke drives a request through the full dqnserve handler
# stack and asserts /metrics exposes counters consistent with /stats.
metrics-smoke:
	$(GO) test -run TestMetricsEndpointSmoke -count=1 ./internal/serve

# golden re-runs the fixed-seed example scenarios and fails if any
# per-packet departure-time digest moved a single bit. Regenerate after
# an intentional semantic change with:
#   go test -run TestGoldenTraces -update-golden .
golden:
	$(GO) test -run TestGoldenTraces -count=1 .

# resume-golden proves checkpointed resume is bit-identical: each golden
# scenario is crashed at an epoch boundary, resumed from its snapshot,
# and the resumed digest must equal both the uninterrupted run and the
# committed golden digest (at Shards=1 and 8).
resume-golden:
	$(GO) test -run 'TestResume' -count=1 .

# analytic-gates bounds the degradation ladder's analytic tier against
# the DES ground truth on every golden scenario (thresholds committed
# under testdata/golden/analytic_gates.json). Regenerate after an
# intentional analytic-model change with:
#   go test -run TestAnalyticAccuracyGates -update-golden .
analytic-gates:
	$(GO) test -run TestAnalyticAccuracyGates -count=1 .

# bench runs the reproducible perf harness (cmd/dqnbench) and refreshes
# BENCH_pr10.json in place, preserving its recorded "before" baseline.
# Since PR 5 the e2e benchmarks run with an EngineObserver attached;
# since PR 6 an e2e_fattree16_ckpt variant prices epoch checkpointing
# and serve_saturation reports p50/p99 request latency; since PR 8 a
# quantized predict-stream variant and per-layer GEMM microbenches
# price the blocked/quantized kernels; since PR 9 a
# serve_saturation_brownout variant prices the graceful-degradation
# ladder's overload brownout (tier breakdown included); since PR 10 a
# serve_saturation_batched variant prices the shared inference plane and
# serve_concurrency_sweep records completed req/s vs client count.
bench:
	$(GO) run ./cmd/dqnbench -out BENCH_pr10.json

# bench-check reruns the harness and fails on a >15% ns/op or any
# allocs/op regression against the committed BENCH_pr10.json (carried
# forward from BENCH_pr9; the PR 10 plane keeps the plain serve path's
# alloc profile intact, which the gate continues to hold the line on).
bench-check:
	$(GO) run ./cmd/dqnbench -check BENCH_pr10.json

# microbench runs the plain go test benchmarks (no regression gate).
microbench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# fuzz runs each native fuzz target for FUZZTIME. Go allows one -fuzz
# pattern per invocation, so the targets run back to back; seed corpora
# live under internal/*/testdata/fuzz and also replay in plain `make
# test`.
fuzz:
	$(GO) test ./internal/ptm -fuzz FuzzPTMLoad -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/topo -fuzz FuzzBuildTopo -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/checkpoint -fuzz FuzzCheckpointLoad -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/tensor/difftest -fuzz FuzzMatMulKernels -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/tensor/difftest -fuzz FuzzQuantRoundTrip -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/analytic -fuzz FuzzAnalyticScenario -fuzztime $(FUZZTIME) -run '^$$'
