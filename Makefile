GO ?= go

# Per-target budget for `make fuzz`; raise for longer local campaigns.
FUZZTIME ?= 15s

.PHONY: build test race vet lint lint-fix-report check bench fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short-mode race pass is quick; the full race suite trains models.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the repo-specific analyzers (float equality, determinism,
# goroutine hygiene, error discards, cancellation polling). Exits
# non-zero on any diagnostic not suppressed by a //dqnlint:allow
# directive.
lint:
	$(GO) run ./cmd/dqnlint .

# lint-fix-report emits the machine-readable diagnostic list to
# lint_report.json without failing the build — for triage tooling.
lint-fix-report:
	-$(GO) run ./cmd/dqnlint -json . > lint_report.json
	@echo "wrote lint_report.json"

# check is the CI gate: go vet, the repo's own analyzers, then the full
# suite under the race detector (the shard fan-out and DLib are the
# concurrency-bearing paths it watches).
check: vet lint race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# fuzz runs each native fuzz target for FUZZTIME. Go allows one -fuzz
# pattern per invocation, so the targets run back to back; seed corpora
# live under internal/*/testdata/fuzz and also replay in plain `make
# test`.
fuzz:
	$(GO) test ./internal/ptm -fuzz FuzzPTMLoad -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/topo -fuzz FuzzBuildTopo -fuzztime $(FUZZTIME) -run '^$$'
