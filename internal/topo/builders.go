package topo

import "fmt"

// LinkParams bundles the physical properties used by the builders. The
// paper's evaluation uses 10 Gb/s links; delays default to 1 µs for LAN
// topologies and are overridden per-edge for WANs.
type LinkParams struct {
	RateBps float64
	Delay   float64
}

// DefaultLAN matches the paper's evaluation setting (10 Gbps links).
var DefaultLAN = LinkParams{RateBps: 10e9, Delay: 1e-6}

// Line builds a chain of n switches, each with one attached host:
//
//	h0   h1   ...  h(n-1)
//	|    |         |
//	s0 - s1 - ... - s(n-1)
//
// Line4 and Line6 in Table 5 are Line(4) and Line(6).
func Line(n int, lp LinkParams) *Graph {
	if n < 2 {
		panic("topo: Line needs at least 2 switches")
	}
	g := New()
	sw := make([]int, n)
	for i := 0; i < n; i++ {
		sw[i] = g.AddNode(Switch, fmt.Sprintf("s%d", i))
	}
	for i := 0; i+1 < n; i++ {
		g.Connect(sw[i], sw[i+1], lp.RateBps, lp.Delay)
	}
	for i := 0; i < n; i++ {
		h := g.AddNode(Host, fmt.Sprintf("h%d", i))
		g.Connect(h, sw[i], lp.RateBps, lp.Delay)
	}
	return g
}

// Torus2D builds an r×c switch torus with one host per switch
// (2dTorus(4x4) and 2dTorus(6x6) in Table 5).
func Torus2D(rows, cols int, lp LinkParams) *Graph {
	if rows < 2 || cols < 2 {
		panic("topo: torus needs at least 2x2")
	}
	g := New()
	sw := make([][]int, rows)
	for i := range sw {
		sw[i] = make([]int, cols)
		for j := range sw[i] {
			sw[i][j] = g.AddNode(Switch, fmt.Sprintf("s%d_%d", i, j))
		}
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			right := sw[i][(j+1)%cols]
			down := sw[(i+1)%rows][j]
			// A 2-wide dimension would otherwise create duplicate edges.
			if cols > 2 || j == 0 {
				g.Connect(sw[i][j], right, lp.RateBps, lp.Delay)
			}
			if rows > 2 || i == 0 {
				g.Connect(sw[i][j], down, lp.RateBps, lp.Delay)
			}
		}
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			h := g.AddNode(Host, fmt.Sprintf("h%d_%d", i, j))
			g.Connect(h, sw[i][j], lp.RateBps, lp.Delay)
		}
	}
	return g
}

// FatTreeParams is MimicNet's FatTree parameterization (Table 3).
type FatTreeParams struct {
	NumToRsAndUplinks int // t: ToRs per cluster == agg uplinks per cluster
	NumServersPerRack int
	NumClusters       int
}

// FatTree16 is the FatTree(k=4) network with 16 servers of Table 3.
var FatTree16 = FatTreeParams{NumToRsAndUplinks: 2, NumServersPerRack: 4, NumClusters: 2}

// FatTree64 is the 4-ary 3-tree with 64 servers of Table 3.
var FatTree64 = FatTreeParams{NumToRsAndUplinks: 4, NumServersPerRack: 4, NumClusters: 4}

// FatTree128 is the FatTree(8) network with 128 servers of Table 3.
var FatTree128 = FatTreeParams{NumToRsAndUplinks: 4, NumServersPerRack: 4, NumClusters: 8}

// FatTree builds the cluster/ToR/aggregation/core structure MimicNet
// parameterizes: each cluster has t ToR switches (each with
// NumServersPerRack hosts) fully meshed to t aggregation switches;
// aggregation switch j of every cluster connects to core switches
// [j·t, (j+1)·t).
func FatTree(p FatTreeParams, lp LinkParams) *Graph {
	t := p.NumToRsAndUplinks
	if t < 1 || p.NumServersPerRack < 1 || p.NumClusters < 1 {
		panic("topo: invalid FatTree parameters")
	}
	g := New()
	numCore := t * t
	cores := make([]int, numCore)
	for i := range cores {
		cores[i] = g.AddNode(Switch, fmt.Sprintf("core%d", i))
	}
	for c := 0; c < p.NumClusters; c++ {
		aggs := make([]int, t)
		tors := make([]int, t)
		for j := 0; j < t; j++ {
			aggs[j] = g.AddNode(Switch, fmt.Sprintf("agg%d_%d", c, j))
		}
		for j := 0; j < t; j++ {
			tors[j] = g.AddNode(Switch, fmt.Sprintf("tor%d_%d", c, j))
		}
		for _, a := range aggs {
			for _, tr := range tors {
				g.Connect(a, tr, lp.RateBps, lp.Delay)
			}
		}
		for j, a := range aggs {
			for k := 0; k < t; k++ {
				g.Connect(a, cores[j*t+k], lp.RateBps, lp.Delay)
			}
		}
		for j, tr := range tors {
			for s := 0; s < p.NumServersPerRack; s++ {
				h := g.AddNode(Host, fmt.Sprintf("h%d_%d_%d", c, j, s))
				g.Connect(h, tr, lp.RateBps, lp.Delay)
			}
		}
	}
	return g
}

// wanEdge describes one WAN link by endpoint names and propagation delay.
type wanEdge struct {
	a, b  string
	delay float64
}

// buildWAN assembles a WAN graph: one switch plus one attached host per
// PoP, and the given inter-PoP links.
func buildWAN(names []string, edges []wanEdge, rate float64) *Graph {
	g := New()
	sw := make(map[string]int, len(names))
	for _, n := range names {
		sw[n] = g.AddNode(Switch, n)
	}
	for _, e := range edges {
		a, ok := sw[e.a]
		if !ok {
			panic("topo: unknown WAN node " + e.a)
		}
		b, ok := sw[e.b]
		if !ok {
			panic("topo: unknown WAN node " + e.b)
		}
		g.Connect(a, b, rate, e.delay)
	}
	for _, n := range names {
		h := g.AddNode(Host, "h_"+n)
		g.Connect(h, sw[n], rate, 1e-6)
	}
	return g
}

// Abilene builds the 11-PoP Abilene research backbone (Internet Topology
// Zoo), with propagation delays approximating the geographic fibre spans.
func Abilene(rate float64) *Graph {
	names := []string{
		"STTL", "SNVA", "LOSA", "DNVR", "KSCY", "HSTN",
		"ATLA", "WASH", "NYCM", "CHIN", "IPLS",
	}
	ms := func(v float64) float64 { return v * 1e-3 }
	edges := []wanEdge{
		{"STTL", "SNVA", ms(6.0)}, {"STTL", "DNVR", ms(5.5)},
		{"SNVA", "LOSA", ms(2.5)}, {"SNVA", "DNVR", ms(5.0)},
		{"LOSA", "HSTN", ms(7.5)}, {"DNVR", "KSCY", ms(3.0)},
		{"KSCY", "HSTN", ms(4.0)}, {"KSCY", "IPLS", ms(2.5)},
		{"HSTN", "ATLA", ms(5.5)}, {"ATLA", "WASH", ms(3.5)},
		{"ATLA", "IPLS", ms(2.5)}, {"WASH", "NYCM", ms(1.5)},
		{"NYCM", "CHIN", ms(4.0)}, {"CHIN", "IPLS", ms(1.0)},
	}
	return buildWAN(names, edges, rate)
}

// Geant builds a 22-PoP GÉANT European research backbone (Internet
// Topology Zoo, 2004 snapshot), with approximate fibre delays.
func Geant(rate float64) *Graph {
	names := []string{
		"AT", "BE", "CH", "CZ", "DE", "ES", "FR", "GR", "HR", "HU",
		"IE", "IL", "IT", "LU", "NL", "PL", "PT", "SE", "SI", "SK",
		"UK", "NY",
	}
	ms := func(v float64) float64 { return v * 1e-3 }
	edges := []wanEdge{
		{"UK", "IE", ms(2.3)}, {"UK", "NL", ms(1.8)}, {"UK", "FR", ms(1.7)},
		{"UK", "NY", ms(28.0)}, {"NL", "DE", ms(2.0)}, {"NL", "BE", ms(0.9)},
		{"BE", "FR", ms(1.3)}, {"BE", "LU", ms(1.0)}, {"LU", "DE", ms(1.2)},
		{"FR", "CH", ms(2.2)}, {"FR", "ES", ms(4.2)}, {"ES", "PT", ms(2.5)},
		{"ES", "IT", ms(4.3)}, {"PT", "UK", ms(7.9)}, {"CH", "IT", ms(1.7)},
		{"CH", "DE", ms(1.9)}, {"DE", "AT", ms(2.6)}, {"DE", "CZ", ms(1.4)},
		{"DE", "SE", ms(5.2)}, {"DE", "NY", ms(31.0)}, {"CZ", "SK", ms(1.5)},
		{"CZ", "PL", ms(2.6)}, {"PL", "SE", ms(4.1)}, {"SK", "HU", ms(0.8)},
		{"AT", "HU", ms(1.1)}, {"AT", "SI", ms(1.4)}, {"AT", "IT", ms(3.6)},
		{"SI", "HR", ms(0.6)}, {"HR", "HU", ms(1.5)}, {"HU", "GR", ms(4.0)},
		{"GR", "IT", ms(4.6)}, {"IT", "IL", ms(11.0)}, {"IL", "NY", ms(45.0)},
		{"SE", "NY", ms(33.0)},
	}
	return buildWAN(names, edges, rate)
}

// Star builds a single switch with n hosts: the K-port single-device
// topology used to generate PTM training traces (§5.2).
func Star(n int, lp LinkParams) *Graph {
	if n < 2 {
		panic("topo: Star needs at least 2 hosts")
	}
	g := New()
	sw := g.AddNode(Switch, "sw")
	for i := 0; i < n; i++ {
		h := g.AddNode(Host, fmt.Sprintf("h%d", i))
		g.Connect(h, sw, lp.RateBps, lp.Delay)
	}
	return g
}

// Dumbbell builds two switches joined by one (optionally slower)
// bottleneck link, with n hosts on each side.
func Dumbbell(n int, lp LinkParams, bottleneckRate float64) *Graph {
	if n < 1 {
		panic("topo: Dumbbell needs at least 1 host per side")
	}
	g := New()
	s0 := g.AddNode(Switch, "s0")
	s1 := g.AddNode(Switch, "s1")
	g.Connect(s0, s1, bottleneckRate, lp.Delay)
	for i := 0; i < n; i++ {
		h := g.AddNode(Host, fmt.Sprintf("l%d", i))
		g.Connect(h, s0, lp.RateBps, lp.Delay)
	}
	for i := 0; i < n; i++ {
		h := g.AddNode(Host, fmt.Sprintf("r%d", i))
		g.Connect(h, s1, lp.RateBps, lp.Delay)
	}
	return g
}

// LeafSpine builds a two-tier Clos fabric: every leaf connects to every
// spine, with hostsPerLeaf hosts per leaf — the most common modern
// datacenter fabric besides FatTree.
func LeafSpine(leaves, spines, hostsPerLeaf int, lp LinkParams) *Graph {
	if leaves < 1 || spines < 1 || hostsPerLeaf < 1 {
		panic("topo: invalid leaf-spine parameters")
	}
	g := New()
	sp := make([]int, spines)
	for i := range sp {
		sp[i] = g.AddNode(Switch, fmt.Sprintf("spine%d", i))
	}
	for l := 0; l < leaves; l++ {
		leaf := g.AddNode(Switch, fmt.Sprintf("leaf%d", l))
		for _, s := range sp {
			g.Connect(leaf, s, lp.RateBps, lp.Delay)
		}
		for h := 0; h < hostsPerLeaf; h++ {
			host := g.AddNode(Host, fmt.Sprintf("h%d_%d", l, h))
			g.Connect(host, leaf, lp.RateBps, lp.Delay)
		}
	}
	return g
}

// Try runs a topology constructor, converting constructor panics into
// errors and validating the resulting graph (so invalid LinkParams —
// e.g. a zero rate — surface as a descriptive error at build time). It
// is the error-returning path library consumers should prefer over the
// panicking builders above.
func Try(build func() *Graph) (g *Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			g = nil
			err = fmt.Errorf("topo: builder failed: %v", r)
		}
	}()
	g = build()
	if verr := g.Validate(); verr != nil {
		return nil, verr
	}
	return g, nil
}

// BuildLine is the error-returning form of Line.
func BuildLine(n int, lp LinkParams) (*Graph, error) {
	return Try(func() *Graph { return Line(n, lp) })
}

// BuildTorus2D is the error-returning form of Torus2D.
func BuildTorus2D(rows, cols int, lp LinkParams) (*Graph, error) {
	return Try(func() *Graph { return Torus2D(rows, cols, lp) })
}

// BuildFatTree is the error-returning form of FatTree.
func BuildFatTree(p FatTreeParams, lp LinkParams) (*Graph, error) {
	return Try(func() *Graph { return FatTree(p, lp) })
}

// BuildLeafSpine is the error-returning form of LeafSpine.
func BuildLeafSpine(leaves, spines, hostsPerLeaf int, lp LinkParams) (*Graph, error) {
	return Try(func() *Graph { return LeafSpine(leaves, spines, hostsPerLeaf, lp) })
}

// BuildStar is the error-returning form of Star.
func BuildStar(n int, lp LinkParams) (*Graph, error) {
	return Try(func() *Graph { return Star(n, lp) })
}

// BuildDumbbell is the error-returning form of Dumbbell.
func BuildDumbbell(n int, lp LinkParams, bottleneckRate float64) (*Graph, error) {
	return Try(func() *Graph { return Dumbbell(n, lp, bottleneckRate) })
}

// BuildAbilene is the error-returning form of Abilene.
func BuildAbilene(rate float64) (*Graph, error) {
	return Try(func() *Graph { return Abilene(rate) })
}

// BuildGeant is the error-returning form of Geant.
func BuildGeant(rate float64) (*Graph, error) {
	return Try(func() *Graph { return Geant(rate) })
}
