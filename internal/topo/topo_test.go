package topo

import (
	"testing"
	"testing/quick"

	"deepqueuenet/internal/rng"
)

func TestLineStructure(t *testing.T) {
	g := Line(4, DefaultLAN)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Hosts()) != 4 || len(g.Switches()) != 4 {
		t.Fatalf("Line(4): %d hosts, %d switches", len(g.Hosts()), len(g.Switches()))
	}
	// End hosts are 1 + 3 + 1 hops apart.
	if d := g.Diameter(); d != 5 {
		t.Fatalf("Line(4) diameter %d, want 5", d)
	}
}

func TestTorusStructure(t *testing.T) {
	for _, tc := range []struct{ r, c int }{{4, 4}, {6, 6}, {2, 3}} {
		g := Torus2D(tc.r, tc.c, DefaultLAN)
		if err := g.Validate(); err != nil {
			t.Fatalf("%dx%d: %v", tc.r, tc.c, err)
		}
		if len(g.Hosts()) != tc.r*tc.c {
			t.Fatalf("%dx%d torus: %d hosts", tc.r, tc.c, len(g.Hosts()))
		}
		// Every torus switch has 4 switch neighbours + 1 host (except
		// 2-wide dimensions which have fewer parallel edges).
		if tc.r >= 3 && tc.c >= 3 {
			for _, s := range g.Switches() {
				if g.Degree(s) != 5 {
					t.Fatalf("torus switch degree %d", g.Degree(s))
				}
			}
		}
	}
}

func TestFatTreeHostCounts(t *testing.T) {
	for _, tc := range []struct {
		p    FatTreeParams
		want int
	}{
		{FatTree16, 16}, {FatTree64, 64}, {FatTree128, 128},
	} {
		g := FatTree(tc.p, DefaultLAN)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if got := len(g.Hosts()); got != tc.want {
			t.Fatalf("FatTree: %d hosts, want %d", got, tc.want)
		}
	}
}

func TestWANs(t *testing.T) {
	ab := Abilene(10e9)
	if err := ab.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ab.Switches()) != 11 || len(ab.Hosts()) != 11 {
		t.Fatalf("Abilene: %d switches, %d hosts", len(ab.Switches()), len(ab.Hosts()))
	}
	ge := Geant(10e9)
	if err := ge.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ge.Switches()) != 22 {
		t.Fatalf("GEANT: %d switches", len(ge.Switches()))
	}
}

func TestStarAndDumbbell(t *testing.T) {
	st := Star(8, DefaultLAN)
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	if g := st.MaxSwitchDegree(); g != 8 {
		t.Fatalf("Star(8) switch degree %d", g)
	}
	db := Dumbbell(3, DefaultLAN, 1e9)
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(db.Hosts()) != 6 {
		t.Fatalf("Dumbbell hosts %d", len(db.Hosts()))
	}
}

func TestRoutePathsValid(t *testing.T) {
	g := FatTree(FatTree16, DefaultLAN)
	hosts := g.Hosts()
	var flows []FlowDef
	id := 0
	for i := 0; i < len(hosts); i++ {
		for j := 0; j < len(hosts); j++ {
			if i == j {
				continue
			}
			flows = append(flows, FlowDef{FlowID: id, Src: hosts[i], Dst: hosts[j]})
			id++
		}
	}
	rt, err := g.Route(flows)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		path := rt.Paths[f.FlowID]
		if path[0] != f.Src || path[len(path)-1] != f.Dst {
			t.Fatalf("flow %d path endpoints %v", f.FlowID, path)
		}
		// Consecutive nodes must be adjacent.
		for i := 0; i+1 < len(path); i++ {
			adj := false
			for _, p := range g.Ports[path[i]] {
				if p.Peer == path[i+1] {
					adj = true
					break
				}
			}
			if !adj {
				t.Fatalf("flow %d: %d and %d not adjacent", f.FlowID, path[i], path[i+1])
			}
		}
		// Intermediate nodes are switches.
		for _, n := range path[1 : len(path)-1] {
			if g.Kinds[n] != Switch {
				t.Fatalf("flow %d routes through host %d", f.FlowID, n)
			}
		}
	}
}

// Walking the forwarding tables from the source must reach the
// destination, in both directions, for every topology in the paper.
func TestForwardingTableWalk(t *testing.T) {
	graphs := map[string]*Graph{
		"line6":     Line(6, DefaultLAN),
		"torus4x4":  Torus2D(4, 4, DefaultLAN),
		"fattree16": FatTree(FatTree16, DefaultLAN),
		"abilene":   Abilene(10e9),
		"geant":     Geant(10e9),
	}
	//dqnlint:allow detguard flows is rebuilt per graph from a fixed-seed rng; map order only decides which graph is checked first
	for name, g := range graphs {
		hosts := g.Hosts()
		r := rng.New(7)
		var flows []FlowDef
		for f := 0; f < 30; f++ {
			i, j := r.Intn(len(hosts)), r.Intn(len(hosts))
			if i == j {
				continue
			}
			flows = append(flows, FlowDef{FlowID: f, Src: hosts[i], Dst: hosts[j]})
		}
		rt, err := g.Route(flows)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		walk := func(flowID, src, dst int) {
			cur := src
			inPort := -1
			for hops := 0; cur != dst; hops++ {
				if hops > g.NumNodes() {
					t.Fatalf("%s flow %d: loop detected", name, flowID)
				}
				var out int
				if g.Kinds[cur] == Host {
					out = 0 // hosts have exactly one port
				} else {
					out = rt.Lookup(cur, flowID, inPort)
					if out < 0 {
						t.Fatalf("%s flow %d: no route at node %d in-port %d", name, flowID, cur, inPort)
					}
				}
				p := g.Ports[cur][out]
				inPort = p.PeerPort
				cur = p.Peer
			}
		}
		for _, f := range flows {
			walk(f.FlowID, f.Src, f.Dst)
			walk(f.FlowID, f.Dst, f.Src) // echo leg
		}
	}
}

func TestRouteDeterministic(t *testing.T) {
	g := Torus2D(4, 4, DefaultLAN)
	hosts := g.Hosts()
	flows := []FlowDef{{FlowID: 1, Src: hosts[0], Dst: hosts[9]}}
	rt1, err := g.Route(flows)
	if err != nil {
		t.Fatal(err)
	}
	rt2, _ := g.Route(flows)
	p1, p2 := rt1.Paths[1], rt2.Paths[1]
	if len(p1) != len(p2) {
		t.Fatal("nondeterministic path length")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("nondeterministic routing")
		}
	}
}

func TestRouteRejectsSelfFlow(t *testing.T) {
	g := Line(2, DefaultLAN)
	h := g.Hosts()
	if _, err := g.Route([]FlowDef{{FlowID: 0, Src: h[0], Dst: h[0]}}); err == nil {
		t.Fatal("expected error for self flow")
	}
}

func TestLookupMissing(t *testing.T) {
	rt := &Routing{NextPort: map[int]map[PortFlowKey]int{}}
	if p := rt.Lookup(5, 1, 0); p != -1 {
		t.Fatalf("missing lookup returned %d", p)
	}
}

// Property: shortest-path length from Route equals BFS distance.
func TestRouteIsShortest(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		g := Torus2D(3+r.Intn(3), 3+r.Intn(3), DefaultLAN)
		hosts := g.Hosts()
		i, j := r.Intn(len(hosts)), r.Intn(len(hosts))
		if i == j {
			return true
		}
		rt, err := g.Route([]FlowDef{{FlowID: 0, Src: hosts[i], Dst: hosts[j]}})
		if err != nil {
			return false
		}
		dist := g.bfs(hosts[j])
		return len(rt.Paths[0])-1 == dist[hosts[i]]
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConnectedAndValidateFailures(t *testing.T) {
	g := New()
	g.AddNode(Switch, "a")
	g.AddNode(Switch, "b")
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("expected validation failure")
	}
}

func TestReversePathsValid(t *testing.T) {
	g := FatTree(FatTree16, DefaultLAN)
	hosts := g.Hosts()
	var flows []FlowDef
	for i := range hosts {
		flows = append(flows, FlowDef{FlowID: i + 1, Src: hosts[i],
			Dst: hosts[(i+5)%len(hosts)]})
	}
	rt, err := g.Route(flows)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		rev := rt.PathsRev[f.FlowID]
		if len(rev) == 0 {
			t.Fatalf("flow %d has no reverse path", f.FlowID)
		}
		if rev[0] != f.Dst || rev[len(rev)-1] != f.Src {
			t.Fatalf("flow %d reverse endpoints %v", f.FlowID, rev)
		}
		// The reverse path must be consistent with the installed
		// forwarding entries (walk it through Lookup).
		cur := f.Dst
		inPort := -1
		for i := 1; i < len(rev); i++ {
			var out int
			if g.Kinds[cur] == Host {
				out = 0
			} else {
				out = rt.Lookup(cur, f.FlowID, inPort)
				if out < 0 {
					t.Fatalf("flow %d: reverse walk stuck at %d", f.FlowID, cur)
				}
			}
			p := g.Ports[cur][out]
			if p.Peer != rev[i] {
				t.Fatalf("flow %d: PathsRev disagrees with forwarding at hop %d", f.FlowID, i)
			}
			inPort = p.PeerPort
			cur = p.Peer
		}
	}
}

func TestLeafSpine(t *testing.T) {
	g := LeafSpine(4, 2, 8, DefaultLAN)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Hosts()) != 32 {
		t.Fatalf("%d hosts", len(g.Hosts()))
	}
	if len(g.Switches()) != 6 {
		t.Fatalf("%d switches", len(g.Switches()))
	}
	// Any host pair is at most host-leaf-spine-leaf-host = 4 hops.
	if d := g.Diameter(); d != 4 {
		t.Fatalf("leaf-spine diameter %d, want 4", d)
	}
	// Leaves have spines + hosts ports; spines have leaves ports.
	for _, s := range g.Switches() {
		d := g.Degree(s)
		if d != 4 && d != 10 {
			t.Fatalf("unexpected switch degree %d", d)
		}
	}
}
