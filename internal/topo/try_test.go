package topo

import (
	"strings"
	"testing"
)

func TestTryConvertsPanicToError(t *testing.T) {
	g, err := BuildLine(1, DefaultLAN) // Line needs >= 2 switches
	if err == nil {
		t.Fatal("BuildLine(1) must fail")
	}
	if g != nil {
		t.Fatal("failed build must return a nil graph")
	}
	if !strings.Contains(err.Error(), "at least 2") {
		t.Fatalf("error lost the builder's diagnostic: %v", err)
	}
}

func TestTryValidGraph(t *testing.T) {
	g, err := BuildLine(3, DefaultLAN)
	if err != nil {
		t.Fatalf("BuildLine(3): %v", err)
	}
	if g == nil || len(g.Switches()) != 3 {
		t.Fatalf("unexpected graph: %+v", g)
	}
}

func TestTryRejectsZeroRateLinks(t *testing.T) {
	g, err := BuildStar(4, LinkParams{RateBps: 0, Delay: 1e-6})
	if err == nil {
		t.Fatal("zero-rate LinkParams must be rejected at build time")
	}
	if g != nil {
		t.Fatal("invalid build must return a nil graph")
	}
	if !strings.Contains(err.Error(), "rate must be positive") {
		t.Fatalf("error should explain the rate problem: %v", err)
	}
}

func TestBuildVariantsMatchPanickingBuilders(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Graph, error)
		want  func() *Graph
	}{
		{"torus", func() (*Graph, error) { return BuildTorus2D(3, 3, DefaultLAN) },
			func() *Graph { return Torus2D(3, 3, DefaultLAN) }},
		{"fattree", func() (*Graph, error) { return BuildFatTree(FatTree16, DefaultLAN) },
			func() *Graph { return FatTree(FatTree16, DefaultLAN) }},
		{"leafspine", func() (*Graph, error) { return BuildLeafSpine(2, 2, 2, DefaultLAN) },
			func() *Graph { return LeafSpine(2, 2, 2, DefaultLAN) }},
		{"dumbbell", func() (*Graph, error) { return BuildDumbbell(2, DefaultLAN, 1e9) },
			func() *Graph { return Dumbbell(2, DefaultLAN, 1e9) }},
		{"abilene", func() (*Graph, error) { return BuildAbilene(10e9) },
			func() *Graph { return Abilene(10e9) }},
		{"geant", func() (*Graph, error) { return BuildGeant(10e9) },
			func() *Graph { return Geant(10e9) }},
	}
	for _, c := range cases {
		g, err := c.build()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		ref := c.want()
		if g.NumNodes() != ref.NumNodes() {
			t.Fatalf("%s: node count %d != %d", c.name, g.NumNodes(), ref.NumNodes())
		}
	}
}
