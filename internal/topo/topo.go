// Package topo models network topologies: nodes (hosts and switches),
// bidirectional capacity/delay edges with per-node port numbering,
// shortest-path routing with deterministic ECMP, and the graph diameter
// that bounds IRSA's iteration count (Theorem 3.1).
//
// Builders cover every topology in the paper's evaluation (§6.1): Line,
// 2-D torus, the MimicNet-parameterized FatTree variants of Table 3, and
// the Abilene and GÉANT wide-area networks from the Internet Topology Zoo.
package topo

import (
	"errors"
	"fmt"
)

// Kind distinguishes traffic endpoints from forwarding devices.
type Kind int

// Node kinds.
const (
	Host Kind = iota
	Switch
)

// Port is one attachment point of a node: the peer node, the peer's port
// index, and the link properties toward the peer.
type Port struct {
	Peer     int
	PeerPort int
	RateBps  float64
	Delay    float64
}

// Graph is a topology: node kinds/names and per-node ordered port lists.
type Graph struct {
	Kinds []Kind
	Names []string
	Ports [][]Port
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(k Kind, name string) int {
	g.Kinds = append(g.Kinds, k)
	g.Names = append(g.Names, name)
	g.Ports = append(g.Ports, nil)
	return len(g.Kinds) - 1
}

// Connect adds a bidirectional edge between a and b with the given rate
// (bits/s) and one-way propagation delay (seconds), consuming one new
// port on each endpoint. It returns the port indices used on a and b.
func (g *Graph) Connect(a, b int, rateBps, delay float64) (aPort, bPort int) {
	if a == b {
		panic("topo: self loop")
	}
	aPort = len(g.Ports[a])
	bPort = len(g.Ports[b])
	g.Ports[a] = append(g.Ports[a], Port{Peer: b, PeerPort: bPort, RateBps: rateBps, Delay: delay})
	g.Ports[b] = append(g.Ports[b], Port{Peer: a, PeerPort: aPort, RateBps: rateBps, Delay: delay})
	return aPort, bPort
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Kinds) }

// Degree returns the number of ports of node n.
func (g *Graph) Degree(n int) int { return len(g.Ports[n]) }

// Hosts returns the IDs of all host nodes.
func (g *Graph) Hosts() []int { return g.ofKind(Host) }

// Switches returns the IDs of all switch nodes.
func (g *Graph) Switches() []int { return g.ofKind(Switch) }

func (g *Graph) ofKind(k Kind) []int {
	var out []int
	for i, kind := range g.Kinds {
		if kind == k {
			out = append(out, i)
		}
	}
	return out
}

// MaxSwitchDegree returns the largest port count over all switches: a
// trained K-port PTM can drive any topology whose switch degree is ≤ K
// (§6.1, topology generality).
func (g *Graph) MaxSwitchDegree() int {
	m := 0
	for _, s := range g.Switches() {
		if d := g.Degree(s); d > m {
			m = d
		}
	}
	return m
}

// bfs returns hop distances from src over the node graph (-1 when
// unreachable).
func (g *Graph) bfs(src int) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, p := range g.Ports[u] {
			if dist[p.Peer] < 0 {
				dist[p.Peer] = dist[u] + 1
				queue = append(queue, p.Peer)
			}
		}
	}
	return dist
}

// Diameter returns the maximum finite hop distance between any two nodes.
// This is the IRSA iteration bound of Theorem 3.1.
func (g *Graph) Diameter() int {
	d := 0
	for i := 0; i < g.NumNodes(); i++ {
		for _, v := range g.bfs(i) {
			if v > d {
				d = v
			}
		}
	}
	return d
}

// Connected reports whether every node can reach every other node.
func (g *Graph) Connected() bool {
	if g.NumNodes() == 0 {
		return true
	}
	for _, v := range g.bfs(0) {
		if v < 0 {
			return false
		}
	}
	return true
}

// FlowDef names one unidirectional flow for routing purposes.
type FlowDef struct {
	FlowID   int
	Src, Dst int // host node IDs
}

// PortFlowKey is the paper's forward(fid, in_port) lookup key (Eq. 6).
// Keying on the ingress port distinguishes the forward leg from the echo
// leg when both traverse the same switch.
type PortFlowKey struct {
	FlowID int
	InPort int
}

// Routing holds per-device forwarding decisions and per-flow paths.
type Routing struct {
	// NextPort maps device ID -> (flow, ingress port) -> egress port.
	// Flows are routed bidirectionally (the echo leg).
	NextPort map[int]map[PortFlowKey]int
	// Paths maps flow ID -> forward-direction node sequence (src host,
	// switches…, dst host).
	Paths map[int][]int
	// PathsRev maps flow ID -> echo-leg node sequence (dst host back to
	// src host). ECMP tie-breaks are direction-dependent, so the reverse
	// route is not necessarily the reversed forward route.
	PathsRev map[int][]int
}

// Lookup returns the egress port for (device, flow, inPort), trying the
// exact ingress port first and falling back to a wildcard (-1) entry.
// It returns -1 when no route is installed.
func (rt *Routing) Lookup(device, flowID, inPort int) int {
	m := rt.NextPort[device]
	if m == nil {
		return -1
	}
	if p, ok := m[PortFlowKey{flowID, inPort}]; ok {
		return p
	}
	if p, ok := m[PortFlowKey{flowID, -1}]; ok {
		return p
	}
	return -1
}

// Route computes shortest-path routes for all flows, in both directions
// (so echo replies are routable). Equal-cost ties are broken
// deterministically by a hash of the flow ID, giving per-flow ECMP.
func (g *Graph) Route(flows []FlowDef) (*Routing, error) {
	rt := &Routing{NextPort: make(map[int]map[PortFlowKey]int),
		Paths: make(map[int][]int), PathsRev: make(map[int][]int)}
	distTo := make(map[int][]int) // dst -> distance field
	field := func(dst int) []int {
		if d, ok := distTo[dst]; ok {
			return d
		}
		d := g.bfs(dst)
		distTo[dst] = d
		return d
	}
	for _, f := range flows {
		if f.Src == f.Dst {
			return nil, fmt.Errorf("topo: flow %d has identical endpoints", f.FlowID)
		}
		fwd, err := g.routeOne(f.FlowID, f.Src, f.Dst, field(f.Dst), rt)
		if err != nil {
			return nil, err
		}
		rt.Paths[f.FlowID] = fwd
		rev, err := g.routeOne(f.FlowID, f.Dst, f.Src, field(f.Src), rt)
		if err != nil {
			return nil, err
		}
		rt.PathsRev[f.FlowID] = rev
	}
	return rt, nil
}

// routeOne installs next-port entries along one shortest path from src to
// dst, using dist (the BFS field rooted at dst) for next-hop selection.
func (g *Graph) routeOne(flowID, src, dst int, dist []int, rt *Routing) ([]int, error) {
	if dist[src] < 0 {
		return nil, fmt.Errorf("topo: flow %d: no path %d -> %d", flowID, src, dst)
	}
	path := []int{src}
	cur := src
	inPort := -1
	for cur != dst {
		// Candidate ports that descend the distance field.
		var cands []int
		for pi, p := range g.Ports[cur] {
			if dist[p.Peer] == dist[cur]-1 {
				cands = append(cands, pi)
			}
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("topo: flow %d: dead end at node %d", flowID, cur)
		}
		pick := cands[ecmpHash(flowID, cur)%uint64(len(cands))]
		if g.Kinds[cur] == Switch {
			m := rt.NextPort[cur]
			if m == nil {
				m = make(map[PortFlowKey]int)
				rt.NextPort[cur] = m
			}
			key := PortFlowKey{flowID, inPort}
			if prev, ok := m[key]; ok && prev != pick {
				// The forward and echo legs would need conflicting
				// entries for the same (flow, in-port) state — possible
				// only on pathological odd-cycle routings. Fail loudly
				// rather than silently misroute one leg.
				return nil, fmt.Errorf("topo: flow %d: conflicting forwarding entries at node %d in-port %d (%d vs %d)",
					flowID, cur, inPort, prev, pick)
			}
			m[key] = pick
		}
		inPort = g.Ports[cur][pick].PeerPort
		cur = g.Ports[cur][pick].Peer
		path = append(path, cur)
	}
	return path, nil
}

// ecmpHash mixes flow ID and node ID into a deterministic ECMP choice.
func ecmpHash(flowID, node int) uint64 {
	x := uint64(flowID)*0x9e3779b97f4a7c15 + uint64(node)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	return x
}

// Validate checks structural invariants: symmetric port references and
// positive rates.
func (g *Graph) Validate() error {
	for n := range g.Ports {
		for pi, p := range g.Ports[n] {
			if p.Peer < 0 || p.Peer >= g.NumNodes() {
				return fmt.Errorf("topo: node %d port %d: bad peer %d", n, pi, p.Peer)
			}
			back := g.Ports[p.Peer][p.PeerPort]
			if back.Peer != n || back.PeerPort != pi {
				return fmt.Errorf("topo: asymmetric edge %d:%d <-> %d:%d", n, pi, p.Peer, p.PeerPort)
			}
			if p.RateBps <= 0 {
				return fmt.Errorf("topo: node %d (%s) port %d: link rate must be positive, got %g bps (a zero-rate link would make transmission times infinite)",
					n, g.Names[n], pi, p.RateBps)
			}
			if p.Delay < 0 {
				return fmt.Errorf("topo: node %d port %d: negative delay", n, pi)
			}
		}
	}
	if !g.Connected() {
		return errors.New("topo: graph not connected")
	}
	return nil
}
