package topo

import "testing"

// FuzzBuildTopo fuzzes the topology constructors through their
// error-returning Build* forms: arbitrary size and link parameters must
// either yield a descriptive error or a graph that passes Validate and
// routes — never a panic escaping Try and never a structurally broken
// graph. Sizes are folded into a small range so the fuzzer explores
// shape edge cases (degenerate rings, 2-wide torus dimensions, single
// hosts) instead of allocating huge graphs.
func FuzzBuildTopo(f *testing.F) {
	f.Add(uint8(0), 4, 4, 2, 10e9, 1e-6)
	f.Add(uint8(1), 2, 2, 1, 10e9, 1e-6)   // smallest legal torus
	f.Add(uint8(2), 1, 0, 0, 10e9, 1e-6)   // star below its minimum
	f.Add(uint8(3), 3, 0, 0, 10e9, 1e-6)   // dumbbell
	f.Add(uint8(4), 2, 2, 3, 10e9, 1e-6)   // leaf-spine
	f.Add(uint8(5), 2, 2, 2, 10e9, 1e-6)   // fat tree
	f.Add(uint8(0), 4, 4, 2, 0.0, 1e-6)    // zero rate must be rejected
	f.Add(uint8(1), 6, 6, 1, 10e9, -1.0)   // negative delay must be rejected
	f.Add(uint8(5), -3, 100, -7, 1e3, 0.0) // hostile sizes

	f.Fuzz(func(t *testing.T, which uint8, a, b, c int, rate, delay float64) {
		bound := func(n, lim int) int {
			if n < 0 {
				n = -n
			}
			return n % lim
		}
		a, b, c = bound(a, 9), bound(b, 9), bound(c, 9)
		lp := LinkParams{RateBps: rate, Delay: delay}
		var g *Graph
		var err error
		switch which % 6 {
		case 0:
			g, err = BuildLine(a, lp)
		case 1:
			g, err = BuildTorus2D(a, b, lp)
		case 2:
			g, err = BuildStar(a, lp)
		case 3:
			g, err = BuildDumbbell(a, lp, rate)
		case 4:
			g, err = BuildLeafSpine(a, b, c, lp)
		case 5:
			g, err = BuildFatTree(FatTreeParams{NumToRsAndUplinks: a, NumServersPerRack: b, NumClusters: c}, lp)
		}
		if err != nil {
			if g != nil {
				t.Fatalf("builder returned both a graph and an error: %v", err)
			}
			return
		}
		if g == nil {
			t.Fatal("builder returned neither a graph nor an error")
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("built graph fails Validate: %v", verr)
		}
		if g.NumNodes() == 0 {
			t.Fatal("built graph has no nodes")
		}
		// Every accepted topology must be connected end to end — a
		// builder that silently drops links would strand hosts.
		if !g.Connected() {
			t.Fatal("built graph is not connected")
		}
	})
}
