// Package chaos is a deterministic fault injector for the serving
// stack: it wraps core.DeviceModel implementations and the serve job
// runner to inject shard panics, NaN outputs, latency, and canceled
// contexts at configurable rates, all drawn from an explicitly seeded
// internal/rng stream. Chaos tests drive the whole server end-to-end
// under these faults and assert that the circuit breakers, load
// shedding, retries, and drain logic contain every one of them — the
// process must never die. With all rates zero the wrappers are exact
// identities, so golden-trace digests stay bit-identical when chaos is
// disabled.
package chaos

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"deepqueuenet/internal/core"
	"deepqueuenet/internal/des"
	"deepqueuenet/internal/guard"
	"deepqueuenet/internal/ptm"
	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/serve"
)

// Fault enumerates the injectable fault kinds.
type Fault int

const (
	// FaultPanic panics inside a device model's PredictStream — the
	// engine must recover it into a *guard.ShardError.
	FaultPanic Fault = iota
	// FaultNaN poisons one predicted sojourn with NaN — the divergence
	// watchdog must abort the run with a *guard.DivergenceError.
	FaultNaN
	// FaultLatency sleeps inside a device inference or a job run —
	// deadlines and the admission queue must absorb the slowdown.
	FaultLatency
	// FaultCancel cancels a job's context mid-run — the engine must
	// return partial results with guard.ErrCanceled.
	FaultCancel
	// FaultCrash simulates process death at an epoch boundary: the
	// epoch's checkpoint is persisted first, then the run dies with
	// guard.ErrCrash. The serving layer must leave the job's durable
	// record non-terminal so a restarted server re-enqueues and resumes
	// it from that checkpoint.
	FaultCrash
	numFaults
)

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f {
	case FaultPanic:
		return "panic"
	case FaultNaN:
		return "nan"
	case FaultLatency:
		return "latency"
	case FaultCancel:
		return "cancel"
	case FaultCrash:
		return "crash"
	}
	return "unknown"
}

// Config sets per-fault injection rates (probabilities in [0, 1]).
// Model-level faults (panic, NaN, latency) fire per PredictStream call;
// job-level faults (cancel, latency) fire per runner invocation.
type Config struct {
	Seed uint64 // rng seed; 0 uses 1

	PanicRate   float64 // model: panic probability per inference call
	NaNRate     float64 // model: NaN-poisoning probability per call
	LatencyRate float64 // model + job: sleep probability
	CancelRate  float64 // job: mid-run context-cancel probability
	CrashRate   float64 // epoch: post-checkpoint crash probability per boundary

	// CrashAfterEpochs, when > 0, makes the Nth epoch boundary crash
	// deterministically instead of rolling CrashRate — the form resume
	// tests use to kill a run at an exact, reproducible iteration.
	CrashAfterEpochs int

	// Latency is the injected sleep duration. <= 0 uses 2ms.
	Latency time.Duration
	// CancelAfter is how far into a job the injected cancel lands.
	// <= 0 uses 500µs (mid-IRSA for typical example scenarios).
	CancelAfter time.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Latency <= 0 {
		c.Latency = 2 * time.Millisecond
	}
	if c.CancelAfter <= 0 {
		c.CancelAfter = 500 * time.Microsecond
	}
	return c
}

// Injector draws fault decisions from one seeded deterministic stream
// and counts what it injected. It is goroutine-safe; with a single
// consumer the decision sequence is exactly reproducible for a seed,
// and with concurrent consumers the per-fault totals remain governed by
// the configured rates while scheduling decides the interleaving.
type Injector struct {
	cfg Config

	mu sync.Mutex
	r  *rng.Rand

	counts [numFaults]atomic.Uint64
}

// New builds an injector.
func New(cfg Config) *Injector {
	cfg = cfg.withDefaults()
	return &Injector{cfg: cfg, r: rng.New(cfg.Seed)}
}

// roll decides one fault with probability rate, counting injections.
func (in *Injector) roll(f Fault, rate float64) bool {
	if rate <= 0 {
		return false
	}
	in.mu.Lock()
	hit := in.r.Float64() < rate
	in.mu.Unlock()
	if hit {
		in.counts[f].Add(1)
	}
	return hit
}

// Count returns how many times one fault kind has been injected.
func (in *Injector) Count(f Fault) uint64 { return in.counts[f].Load() }

// Counts returns every fault kind's injection count, keyed by name.
func (in *Injector) Counts() map[string]uint64 {
	out := make(map[string]uint64, numFaults)
	for f := Fault(0); f < numFaults; f++ {
		out[f.String()] = in.counts[f].Load()
	}
	return out
}

// Total returns the total number of injected faults.
func (in *Injector) Total() uint64 {
	var t uint64
	for f := Fault(0); f < numFaults; f++ {
		t += in.counts[f].Load()
	}
	return t
}

// WrapDevice wraps a validated device model with fault injection; its
// signature matches core.Config.WrapDevice. With all model-level rates
// zero it returns m unchanged, keeping the no-chaos path bit-identical.
func (in *Injector) WrapDevice(_ int, m core.DeviceModel) core.DeviceModel {
	if in.cfg.PanicRate <= 0 && in.cfg.NaNRate <= 0 && in.cfg.LatencyRate <= 0 {
		return m
	}
	return &chaosModel{inner: m, in: in}
}

// chaosModel injects faults around an inner DeviceModel's inference.
// It deliberately does not implement core.DevicePredictor, so the
// engine drives it through the generic per-port PredictStream path and
// every egress port is an independent injection opportunity.
type chaosModel struct {
	inner core.DeviceModel
	in    *Injector
}

// PredictStream implements core.DeviceModel with fault injection.
func (c *chaosModel) PredictStream(stream []ptm.PacketIn, kind des.SchedKind, rateBps float64, workers int) []float64 {
	if c.in.roll(FaultPanic, c.in.cfg.PanicRate) {
		panic(fmt.Sprintf("chaos: injected panic (seed %d)", c.in.cfg.Seed))
	}
	if c.in.roll(FaultLatency, c.in.cfg.LatencyRate) {
		time.Sleep(c.in.cfg.Latency)
	}
	out := c.inner.PredictStream(stream, kind, rateBps, workers)
	if len(out) > 0 && c.in.roll(FaultNaN, c.in.cfg.NaNRate) {
		out[0] = math.NaN()
	}
	return out
}

// CloneModel implements core.DeviceModel: the clone wraps an
// independent inner clone but shares the injector, so fault rates are
// global across shards.
func (c *chaosModel) CloneModel() core.DeviceModel {
	return &chaosModel{inner: c.inner.CloneModel(), in: c.in}
}

// Ports implements core.DeviceModel.
func (c *chaosModel) Ports() int { return c.inner.Ports() }

// Validate implements core.DeviceModel. Chaos wraps only validated
// models (core applies WrapDevice after the validation gate), and the
// injected faults must read as runtime faults, not structural ones.
func (c *chaosModel) Validate() error { return c.inner.Validate() }

// WrapRunner wraps a serve.Runner with job-level fault injection:
// added latency before the run and a context canceled mid-run. With
// both job-level rates zero it returns next unchanged.
func (in *Injector) WrapRunner(next serve.Runner) serve.Runner {
	if in.cfg.CancelRate <= 0 && in.cfg.LatencyRate <= 0 {
		return next
	}
	return &chaosRunner{next: next, in: in}
}

// chaosRunner injects job-level faults around an inner Runner.
type chaosRunner struct {
	next serve.Runner
	in   *Injector
}

// Run implements serve.Runner.
func (c *chaosRunner) Run(ctx context.Context, req *serve.Request, mode serve.RunMode) (*serve.Result, error) {
	if c.in.roll(FaultLatency, c.in.cfg.LatencyRate) {
		t := time.NewTimer(c.in.cfg.Latency)
		select {
		case <-ctx.Done():
			t.Stop()
		case <-t.C:
		}
	}
	if c.in.roll(FaultCancel, c.in.cfg.CancelRate) {
		// A genuine cancellation (context.Canceled, mapped to
		// guard.ErrCanceled), not a deadline: the two take different
		// paths through guard.FromContext and the serve stats.
		cctx, cancel := context.WithCancel(ctx)
		timer := time.AfterFunc(c.in.cfg.CancelAfter, cancel)
		defer timer.Stop()
		defer cancel()
		ctx = cctx
	}
	return c.next.Run(ctx, req, mode)
}

// WrapEpochSink wraps a checkpoint sink with crash injection: the inner
// sink runs first — the epoch's snapshot is durably on disk — and then
// the wrapper kills the run with guard.ErrCrash, exactly the window a
// real process death at an epoch boundary leaves behind. Crashes fire
// deterministically at the CrashAfterEpochs-th boundary when set,
// otherwise by rolling CrashRate per boundary. With neither configured
// it returns next unchanged.
func (in *Injector) WrapEpochSink(next core.EpochSink) core.EpochSink {
	if in.cfg.CrashRate <= 0 && in.cfg.CrashAfterEpochs <= 0 {
		return next
	}
	var boundaries atomic.Uint64
	return func(st *core.EpochState) error {
		if err := next(st); err != nil {
			return err
		}
		n := boundaries.Add(1)
		if in.cfg.CrashAfterEpochs > 0 {
			if n == uint64(in.cfg.CrashAfterEpochs) {
				in.counts[FaultCrash].Add(1)
				return fmt.Errorf("chaos: epoch boundary %d: %w", n, guard.ErrCrash)
			}
			return nil
		}
		if in.roll(FaultCrash, in.cfg.CrashRate) {
			return fmt.Errorf("chaos: epoch boundary %d: %w", n, guard.ErrCrash)
		}
		return nil
	}
}
