package chaos

import (
	"math"
	"testing"
	"time"

	"deepqueuenet/internal/core"
	"deepqueuenet/internal/des"
	"deepqueuenet/internal/ptm"
)

// echoModel returns constant sojourns — a minimal inner DeviceModel.
type echoModel struct{}

func (echoModel) PredictStream(stream []ptm.PacketIn, _ des.SchedKind, _ float64, _ int) []float64 {
	out := make([]float64, len(stream))
	for i := range out {
		out[i] = 1e-6
	}
	return out
}
func (m echoModel) CloneModel() core.DeviceModel { return m }
func (echoModel) Ports() int                     { return 4 }
func (echoModel) Validate() error                { return nil }

func TestZeroRatesAreIdentity(t *testing.T) {
	in := New(Config{Seed: 1})
	m := echoModel{}
	if got := in.WrapDevice(0, m); got != core.DeviceModel(m) {
		t.Fatalf("zero-rate WrapDevice must return the model unchanged, got %T", got)
	}
	if in.Total() != 0 {
		t.Fatalf("zero-rate injector injected %d faults", in.Total())
	}
}

func TestDecisionsDeterministicPerSeed(t *testing.T) {
	seq := func(seed uint64) []bool {
		in := New(Config{Seed: seed, NaNRate: 0.5})
		m := in.WrapDevice(0, echoModel{})
		var out []bool
		stream := []ptm.PacketIn{{}}
		for i := 0; i < 64; i++ {
			res := m.PredictStream(stream, des.FIFO, 1e9, 1)
			out = append(out, math.IsNaN(res[0]))
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs for identical seeds", i)
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical decision sequences")
	}
}

func TestPanicInjectionIsRecoverable(t *testing.T) {
	in := New(Config{Seed: 1, PanicRate: 1.0})
	m := in.WrapDevice(0, echoModel{})
	panicked := false
	func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		m.PredictStream([]ptm.PacketIn{{}}, des.FIFO, 1e9, 1)
	}()
	if !panicked {
		t.Fatal("PanicRate 1.0 did not panic")
	}
	if in.Count(FaultPanic) != 1 {
		t.Fatalf("panic count %d, want 1", in.Count(FaultPanic))
	}
}

func TestCloneSharesInjectorCounts(t *testing.T) {
	in := New(Config{Seed: 1, NaNRate: 1.0})
	m := in.WrapDevice(0, echoModel{})
	clone := m.CloneModel()
	clone.PredictStream([]ptm.PacketIn{{}}, des.FIFO, 1e9, 1)
	m.PredictStream([]ptm.PacketIn{{}}, des.FIFO, 1e9, 1)
	if in.Count(FaultNaN) != 2 {
		t.Fatalf("clone must share the injector: count %d, want 2", in.Count(FaultNaN))
	}
	if m.Ports() != 4 || clone.Validate() != nil {
		t.Fatal("wrapper must delegate Ports/Validate")
	}
}

func TestCountsByName(t *testing.T) {
	in := New(Config{Seed: 1, LatencyRate: 1.0, Latency: time.Nanosecond})
	m := in.WrapDevice(0, echoModel{})
	m.PredictStream([]ptm.PacketIn{{}}, des.FIFO, 1e9, 1)
	counts := in.Counts()
	if counts["latency"] != 1 {
		t.Fatalf("counts %v, want latency=1", counts)
	}
	for _, name := range []string{"panic", "nan", "latency", "cancel"} {
		if _, ok := counts[name]; !ok {
			t.Fatalf("counts missing %q: %v", name, counts)
		}
	}
}
