// Package metrics implements the statistical measures used in the paper's
// evaluation: the Wasserstein-1 distance and its normalized form w1, the
// Pearson correlation coefficient with a Fisher-z 95% confidence interval,
// percentiles, CDFs, and per-flow jitter extraction.
package metrics

import (
	"errors"
	"math"
	"sort"
)

// hasNaN reports whether xs contains a NaN. NaN breaks sort.Float64s'
// strict weak ordering, so the sorted order — and anything derived from
// it — would depend on the input permutation.
func hasNaN(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// W1 returns the Wasserstein-1 distance between the empirical distributions
// of a and b. For one-dimensional samples the distance equals the L1
// distance between the two quantile functions; when len(a) == len(b) it is
// the mean absolute difference of the sorted samples, and in general it is
// computed by integrating |F_a^-1(q) - F_b^-1(q)| over q in [0, 1].
// Empty inputs and inputs containing NaN yield NaN (a NaN sample would
// otherwise make the result depend on input order via the sort).
func W1(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 || hasNaN(a) || hasNaN(b) {
		return math.NaN()
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	if len(as) == len(bs) {
		sum := 0.0
		for i := range as {
			sum += math.Abs(as[i] - bs[i])
		}
		return sum / float64(len(as))
	}
	// Merge the quantile breakpoints of both samples.
	n, m := len(as), len(bs)
	type bp struct{ q float64 }
	qs := make([]float64, 0, n+m)
	for i := 1; i <= n; i++ {
		qs = append(qs, float64(i)/float64(n))
	}
	for i := 1; i <= m; i++ {
		qs = append(qs, float64(i)/float64(m))
	}
	sort.Float64s(qs)
	dist := 0.0
	prev := 0.0
	for _, q := range qs {
		// qs is sorted, so <= covers exactly the duplicate-quantile case
		// without branching on float equality.
		if q <= prev {
			continue
		}
		mid := (q + prev) / 2
		ia := int(mid * float64(n))
		ib := int(mid * float64(m))
		if ia >= n {
			ia = n - 1
		}
		if ib >= m {
			ib = m - 1
		}
		dist += (q - prev) * math.Abs(as[ia]-bs[ib])
		prev = q
	}
	return dist
}

// NormW1 returns the paper's normalized Wasserstein distance:
//
//	w1 = W1(pred, label) / W1(zeros, label)
//
// i.e. the W1 distance scaled by the distance of the label distribution
// from zero. Lower is better; 0 means the predicted distribution matches
// the ground truth exactly.
func NormW1(pred, label []float64) float64 {
	if len(label) == 0 {
		return math.NaN()
	}
	zeros := make([]float64, len(label))
	denom := W1(zeros, label)
	// W1 is non-negative by construction; <= 0 also absorbs any rounding
	// noise below zero instead of dividing by it.
	if denom <= 0 {
		return math.NaN()
	}
	return W1(pred, label) / denom
}

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns NaN if either slice has zero variance or the lengths differ.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	n := float64(len(x))
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	// Sums of squares are non-negative; <= 0 keeps a degenerate (or
	// cancellation-poisoned) variance out of the denominator without an
	// exact float compare.
	if sxx <= 0 || syy <= 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// PearsonCI returns the Pearson correlation between x and y together with
// a 95% confidence interval computed with the Fisher z-transformation.
func PearsonCI(x, y []float64) (rho, lo, hi float64) {
	rho = Pearson(x, y)
	n := float64(len(x))
	if math.IsNaN(rho) || n < 4 {
		return rho, math.NaN(), math.NaN()
	}
	// Clamp to avoid atanh(±1) = ±Inf for degenerate (perfectly
	// correlated) samples.
	rc := math.Max(-0.9999999, math.Min(0.9999999, rho))
	z := math.Atanh(rc)
	se := 1 / math.Sqrt(n-3)
	const z95 = 1.959963984540054
	lo = math.Tanh(z - z95*se)
	hi = math.Tanh(z + z95*se)
	return rho, lo, hi
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using linear
// interpolation between order statistics. It returns NaN for empty input
// or input containing NaN (which would make the sort, and hence the
// order statistics, depend on input order).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || hasNaN(xs) {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (NaN if len < 1).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// CDF describes an empirical cumulative distribution function as sorted
// sample points; Eval returns P(X <= x).
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples. Empty samples and
// samples containing NaN are rejected: NaN has no place on a CDF, and
// sorting it yields an order-dependent (nondeterministic) layout.
func NewCDF(samples []float64) (*CDF, error) {
	if len(samples) == 0 {
		return nil, errors.New("metrics: empty sample for CDF")
	}
	if hasNaN(samples) {
		return nil, errors.New("metrics: NaN sample for CDF")
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}, nil
}

// Eval returns the empirical probability P(X <= x).
func (c *CDF) Eval(x float64) float64 {
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (q in [0,1]) of the CDF.
func (c *CDF) Quantile(q float64) float64 {
	return Percentile(c.sorted, q*100)
}

// Points returns (x, F(x)) pairs suitable for plotting, thinned to at most
// maxPoints entries (maxPoints <= 0 means no thinning). The last sample is
// always included, so the plot always reaches F(x) = 1.
func (c *CDF) Points(maxPoints int) (xs, ps []float64) {
	n := len(c.sorted)
	step := 1
	if maxPoints > 0 && n > maxPoints {
		// Ceiling division: a truncating n/maxPoints understeps and can
		// emit up to twice the requested points (e.g. n=199, max=100 gave
		// step 1 → 199 points).
		step = (n + maxPoints - 1) / maxPoints
	}
	// Walk backwards from the final sample so it is always emitted (a
	// forward walk drops it whenever (n-1) % step != 0), then reverse
	// into ascending plot order.
	for i := n - 1; i >= 0; i -= step {
		xs = append(xs, c.sorted[i])
		ps = append(ps, float64(i+1)/float64(n))
	}
	for l, r := 0, len(xs)-1; l < r; l, r = l+1, r-1 {
		xs[l], xs[r] = xs[r], xs[l]
		ps[l], ps[r] = ps[r], ps[l]
	}
	return xs, ps
}

// Jitter returns the per-packet jitter series for an ordered sequence of
// per-packet delays belonging to one flow: |d_i - d_{i-1}|.
func Jitter(delays []float64) []float64 {
	if len(delays) < 2 {
		return nil
	}
	out := make([]float64, 0, len(delays)-1)
	for i := 1; i < len(delays); i++ {
		out = append(out, math.Abs(delays[i]-delays[i-1]))
	}
	return out
}

// Summary bundles the four statistics reported throughout the paper's
// evaluation tables (path-wise normalized w1): the distributions, across
// paths, of per-path average RTT, p99 RTT, average jitter, and p99
// jitter, each compared to ground truth with NormW1.
type Summary struct {
	AvgRTTW1    float64
	P99RTTW1    float64
	AvgJitterW1 float64
	P99JitterW1 float64
}

// PathStats are the per-path summary statistics a predictor reports.
// DeepQueueNet and the DES derive them from packet samples; RouteNet
// predicts them directly (it has no packet-level visibility).
type PathStats struct {
	AvgRTT    float64
	P99RTT    float64
	AvgJitter float64
	P99Jitter float64
}

// PathSamples groups per-path delay samples, keyed by an opaque path ID.
type PathSamples map[string][]float64

// Stats reduces per-path samples to per-path summary statistics.
func (ps PathSamples) Stats() map[string]PathStats {
	out := make(map[string]PathStats, len(ps))
	for k, v := range ps {
		if len(v) == 0 {
			continue
		}
		j := Jitter(v)
		st := PathStats{AvgRTT: Mean(v), P99RTT: Percentile(v, 99)}
		if len(j) > 0 {
			st.AvgJitter = Mean(j)
			st.P99Jitter = Percentile(j, 99)
		}
		out[k] = st
	}
	return out
}

// CompareStats computes the paper's path-wise normalized w1 summary from
// per-path statistics. Paths present in only one map are ignored.
func CompareStats(pred, truth map[string]PathStats) Summary {
	var pa, ta, p9, t9, pj, tj, pj9, tj9 []float64
	for k, tv := range truth {
		pv, ok := pred[k]
		if !ok {
			continue
		}
		pa = append(pa, pv.AvgRTT)
		ta = append(ta, tv.AvgRTT)
		p9 = append(p9, pv.P99RTT)
		t9 = append(t9, tv.P99RTT)
		pj = append(pj, pv.AvgJitter)
		tj = append(tj, tv.AvgJitter)
		pj9 = append(pj9, pv.P99Jitter)
		tj9 = append(tj9, tv.P99Jitter)
	}
	return Summary{
		AvgRTTW1:    NormW1(pa, ta),
		P99RTTW1:    NormW1(p9, t9),
		AvgJitterW1: NormW1(pj, tj),
		P99JitterW1: NormW1(pj9, tj9),
	}
}

// Compare computes the path-wise summary between predicted and
// ground-truth per-path delay samples.
func Compare(pred, truth PathSamples) Summary {
	return CompareStats(pred.Stats(), truth.Stats())
}

// FlowSummary aggregates per-flow delivery statistics: completion
// counts, delay moments, and tail latency. Flow-level views are the
// "new metric applied to the output trace without retraining" the
// paper's packet-level visibility enables.
type FlowSummary struct {
	FlowID    int
	Packets   int
	MeanDelay float64
	P99Delay  float64
	MaxDelay  float64
	// Span is the time from first send to last receive (a proxy for
	// flow completion time of the observed window).
	Span float64
}

// FlowStats reduces (sendTime, recvTime) pairs per flow into summaries.
// delays maps flow ID to parallel slices of send and receive times.
func FlowStats(sends, recvs map[int][]float64) []FlowSummary {
	var out []FlowSummary
	for fid, s := range sends {
		r := recvs[fid]
		if len(s) == 0 || len(s) != len(r) {
			continue
		}
		d := make([]float64, len(s))
		firstSend, lastRecv := s[0], r[0]
		maxD := 0.0
		for i := range s {
			d[i] = r[i] - s[i]
			if d[i] > maxD {
				maxD = d[i]
			}
			if s[i] < firstSend {
				firstSend = s[i]
			}
			if r[i] > lastRecv {
				lastRecv = r[i]
			}
		}
		out = append(out, FlowSummary{
			FlowID: fid, Packets: len(s),
			MeanDelay: Mean(d), P99Delay: Percentile(d, 99), MaxDelay: maxD,
			Span: lastRecv - firstSend,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FlowID < out[j].FlowID })
	return out
}

// PearsonPathwise returns the Pearson correlation (with 95% CI) between
// predicted and ground-truth per-path average RTTs — the Appendix C
// metric (Tables 8–10). The stat selector picks which statistic to
// correlate.
func PearsonPathwise(pred, truth map[string]PathStats, stat func(PathStats) float64) (rho, lo, hi float64) {
	var xs, ys []float64
	for k, tv := range truth {
		pv, ok := pred[k]
		if !ok {
			continue
		}
		xs = append(xs, stat(pv))
		ys = append(ys, stat(tv))
	}
	return PearsonCI(xs, ys)
}
