package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"deepqueuenet/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestW1Identity(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := W1(a, a); d != 0 {
		t.Fatalf("W1(a,a) = %v, want 0", d)
	}
}

func TestW1Shift(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{3, 4, 5, 6}
	if d := W1(a, b); !almostEq(d, 2, 1e-12) {
		t.Fatalf("W1 shift = %v, want 2", d)
	}
}

func TestW1Symmetric(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(50)
		m := 5 + r.Intn(50)
		a := make([]float64, n)
		b := make([]float64, m)
		for i := range a {
			a[i] = r.Normal(0, 1)
		}
		for i := range b {
			b[i] = r.Normal(1, 2)
		}
		return almostEq(W1(a, b), W1(b, a), 1e-9)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestW1TriangleInequality(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(20)
		gen := func(mu float64) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = r.Normal(mu, 1)
			}
			return xs
		}
		a, b, c := gen(0), gen(2), gen(5)
		return W1(a, c) <= W1(a, b)+W1(b, c)+1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestW1UnequalLengths(t *testing.T) {
	// Same empirical distribution expressed with repetition.
	a := []float64{1, 2}
	b := []float64{1, 1, 2, 2}
	if d := W1(a, b); !almostEq(d, 0, 1e-12) {
		t.Fatalf("W1 equal distributions = %v, want 0", d)
	}
}

func TestNormW1PerfectPrediction(t *testing.T) {
	label := []float64{2, 4, 6, 8}
	if w := NormW1(label, label); w != 0 {
		t.Fatalf("NormW1 perfect = %v", w)
	}
	// Predicting all zeros gives exactly 1 by construction.
	if w := NormW1(make([]float64, 4), label); !almostEq(w, 1, 1e-12) {
		t.Fatalf("NormW1 zeros = %v, want 1", w)
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if rho := Pearson(x, y); !almostEq(rho, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", rho)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if rho := Pearson(x, neg); !almostEq(rho, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", rho)
	}
}

func TestPearsonUncorrelated(t *testing.T) {
	r := rng.New(5)
	n := 20000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = r.Normal(0, 1)
		y[i] = r.Normal(0, 1)
	}
	if rho := Pearson(x, y); math.Abs(rho) > 0.03 {
		t.Fatalf("Pearson independent = %v, want ~0", rho)
	}
}

func TestPearsonCIOrdering(t *testing.T) {
	r := rng.New(9)
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = r.Normal(0, 1)
		y[i] = x[i] + r.Normal(0, 0.5)
	}
	rho, lo, hi := PearsonCI(x, y)
	if !(lo <= rho && rho <= hi) {
		t.Fatalf("CI [%v,%v] does not bracket rho %v", lo, hi, rho)
	}
	if hi-lo <= 0 || hi-lo > 0.3 {
		t.Fatalf("CI width %v implausible for n=%d", hi-lo, n)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 50); !almostEq(p, 5.5, 1e-12) {
		t.Fatalf("p50 = %v, want 5.5", p)
	}
}

func TestPercentileMonotone(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(0, 10)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if v := c.Eval(0); v != 0 {
		t.Fatalf("F(0) = %v", v)
	}
	if v := c.Eval(2); !almostEq(v, 0.75, 1e-12) {
		t.Fatalf("F(2) = %v, want 0.75", v)
	}
	if v := c.Eval(10); v != 1 {
		t.Fatalf("F(10) = %v", v)
	}
}

func TestCDFEmpty(t *testing.T) {
	if _, err := NewCDF(nil); err == nil {
		t.Fatal("expected error for empty CDF")
	}
}

func TestJitter(t *testing.T) {
	d := []float64{1, 3, 2, 2}
	j := Jitter(d)
	want := []float64{2, 1, 0}
	if len(j) != len(want) {
		t.Fatalf("jitter len %d", len(j))
	}
	for i := range want {
		if j[i] != want[i] {
			t.Fatalf("jitter[%d] = %v, want %v", i, j[i], want[i])
		}
	}
	if Jitter([]float64{1}) != nil {
		t.Fatal("jitter of single sample should be nil")
	}
}

func TestCompareIdentical(t *testing.T) {
	ps := PathSamples{
		"a": {1, 2, 3, 4, 5},
		"b": {2, 3, 4, 5, 6},
	}
	s := Compare(ps, ps)
	if s.AvgRTTW1 != 0 || s.P99RTTW1 != 0 || s.AvgJitterW1 != 0 || s.P99JitterW1 != 0 {
		t.Fatalf("identical comparison not zero: %+v", s)
	}
}

func TestCompareIgnoresMissingPaths(t *testing.T) {
	truth := PathSamples{"a": {1, 2, 3}, "missing": {9, 9, 9}}
	pred := PathSamples{"a": {1, 2, 3}}
	s := Compare(pred, truth)
	if s.AvgRTTW1 != 0 {
		t.Fatalf("missing path affected result: %+v", s)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("variance = %v", v)
	}
}

func TestFlowStats(t *testing.T) {
	sends := map[int][]float64{1: {0, 1, 2}, 2: {0.5}}
	recvs := map[int][]float64{1: {0.5, 1.4, 2.3}, 2: {1.5}}
	fs := FlowStats(sends, recvs)
	if len(fs) != 2 || fs[0].FlowID != 1 || fs[1].FlowID != 2 {
		t.Fatalf("flows %+v", fs)
	}
	if fs[0].Packets != 3 {
		t.Fatalf("packets %d", fs[0].Packets)
	}
	if math.Abs(fs[0].MeanDelay-0.4) > 1e-12 {
		t.Fatalf("mean delay %v", fs[0].MeanDelay)
	}
	if math.Abs(fs[0].Span-2.3) > 1e-12 {
		t.Fatalf("span %v", fs[0].Span)
	}
	if math.Abs(fs[1].MeanDelay-1.0) > 1e-12 {
		t.Fatalf("flow2 mean %v", fs[1].MeanDelay)
	}
	// Mismatched lengths are skipped.
	bad := FlowStats(map[int][]float64{3: {1, 2}}, map[int][]float64{3: {1}})
	if len(bad) != 0 {
		t.Fatal("mismatched flow not skipped")
	}
}
