package metrics

import (
	"math"
	"testing"
)

// TestCDFPointsContract is the regression test for the Points thinning
// bug: the old truncating step could emit up to 2x maxPoints entries
// (n=199, max=100 → step 1 → 199 points) and silently drop the final
// sample, so plots never reached F(x)=1.
func TestCDFPointsContract(t *testing.T) {
	for _, tc := range []struct{ n, max int }{
		{1, 1}, {2, 1}, {5, 2}, {100, 100}, {101, 100}, {199, 100},
		{200, 100}, {201, 100}, {1000, 7}, {1000, 100}, {3, 10},
	} {
		samples := make([]float64, tc.n)
		for i := range samples {
			samples[i] = float64(i)
		}
		c, err := NewCDF(samples)
		if err != nil {
			t.Fatal(err)
		}
		xs, ps := c.Points(tc.max)
		if len(xs) != len(ps) {
			t.Fatalf("n=%d max=%d: len(xs)=%d != len(ps)=%d", tc.n, tc.max, len(xs), len(ps))
		}
		if len(xs) > tc.max {
			t.Fatalf("n=%d max=%d: emitted %d points, contract is at most %d", tc.n, tc.max, len(xs), tc.max)
		}
		if len(xs) == 0 {
			t.Fatalf("n=%d max=%d: no points", tc.n, tc.max)
		}
		if last := xs[len(xs)-1]; last != samples[tc.n-1] {
			t.Fatalf("n=%d max=%d: last x = %v, want final sample %v", tc.n, tc.max, last, samples[tc.n-1])
		}
		if p := ps[len(ps)-1]; p != 1.0 {
			t.Fatalf("n=%d max=%d: final p = %v, want exactly 1", tc.n, tc.max, p)
		}
		for i := 1; i < len(xs); i++ {
			if xs[i] <= xs[i-1] || ps[i] <= ps[i-1] {
				t.Fatalf("n=%d max=%d: points not strictly increasing at %d", tc.n, tc.max, i)
			}
		}
	}
}

func TestCDFPointsNoThinning(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, max := range []int{0, -1, 3, 100} {
		xs, _ := c.Points(max)
		if len(xs) != 3 {
			t.Fatalf("max=%d: got %d points, want all 3", max, len(xs))
		}
	}
}

// TestNaNInputsDeterministic is the regression test for NaN poisoning:
// NaN breaks sort's ordering, so the old code returned
// permutation-dependent results. Now NaN in, NaN out (or an error).
func TestNaNInputsDeterministic(t *testing.T) {
	nan := math.NaN()
	perms := [][]float64{
		{nan, 1, 2, 3},
		{1, nan, 2, 3},
		{1, 2, 3, nan},
	}
	clean := []float64{1, 2, 3, 4}

	for _, p := range perms {
		if got := W1(p, clean); !math.IsNaN(got) {
			t.Fatalf("W1(%v, clean) = %v, want NaN", p, got)
		}
		if got := W1(clean, p); !math.IsNaN(got) {
			t.Fatalf("W1(clean, %v) = %v, want NaN", p, got)
		}
		if got := Percentile(p, 50); !math.IsNaN(got) {
			t.Fatalf("Percentile(%v) = %v, want NaN", p, got)
		}
		if _, err := NewCDF(p); err == nil {
			t.Fatalf("NewCDF(%v) succeeded, want error", p)
		}
	}
	// Unequal lengths drive W1 through the quantile-merge path; NaN must
	// be caught there too.
	if got := W1([]float64{1, nan}, clean); !math.IsNaN(got) {
		t.Fatalf("W1 merge path = %v, want NaN", got)
	}

	// Clean inputs are unaffected.
	if got := W1(clean, clean); got != 0 {
		t.Fatalf("W1(clean, clean) = %v, want 0", got)
	}
	if got := Percentile(clean, 50); got != 2.5 {
		t.Fatalf("Percentile(clean, 50) = %v, want 2.5", got)
	}
	if _, err := NewCDF(clean); err != nil {
		t.Fatalf("NewCDF(clean): %v", err)
	}
}
