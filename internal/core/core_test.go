package core

import (
	"math"
	"sync"
	"testing"

	"deepqueuenet/internal/des"
	"deepqueuenet/internal/metrics"
	"deepqueuenet/internal/ptm"
	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/topo"
	"deepqueuenet/internal/traffic"
)

var (
	testModelOnce sync.Once
	testModel     *ptm.PTM
)

// testPTM trains (once) a small 4-port FIFO+multi-class PTM used by the
// end-to-end tests.
func testPTM(t *testing.T) *ptm.PTM {
	t.Helper()
	testModelOnce.Do(func() {
		spec := ptm.TrainSpec{
			Ports: 4,
			Arch:  ptm.Arch{TimeSteps: 12, Embed: 10, BLSTM1: 12, BLSTM2: 8, Heads: 2, DK: 6, DV: 6, HeadOut: 12},
			Scheds: []des.SchedConfig{
				{Kind: des.FIFO},
				{Kind: des.SP, Classes: 2},
				{Kind: des.WFQ, Weights: []float64{1, 4}},
			},
			LoadLo: 0.2, LoadHi: 0.7,
			RateBps:            10e9,
			Streams:            9,
			Duration:           0.002,
			MaxChunksPerStream: 400,
			Seed:               17,
		}
		spec.Train.Epochs = 6
		spec.Train.BatchSize = 64
		spec.Train.LR = 0.003
		spec.Train.Workers = 4
		m, rep, err := ptm.TrainDevice(spec)
		if err != nil {
			panic(err)
		}
		_ = rep
		testModel = m
	})
	return testModel
}

// runPair runs the same scenario through DES (ground truth) and
// DeepQueueNet and returns both RTT sample sets.
func runPair(t *testing.T, g *topo.Graph, model *ptm.PTM, load float64, dur float64, seedDES, seedDQN uint64, cfg Config) (dqn, truth metrics.PathSamples) {
	t.Helper()
	hosts := g.Hosts()
	var defs []topo.FlowDef
	r := rng.New(1)
	for i, h := range hosts {
		dst := hosts[(i+len(hosts)/2)%len(hosts)]
		if dst == h {
			dst = hosts[(i+1)%len(hosts)]
		}
		defs = append(defs, topo.FlowDef{FlowID: i + 1, Src: h, Dst: dst})
	}
	_ = r
	rt, err := g.Route(defs)
	if err != nil {
		t.Fatal(err)
	}

	mkFlows := func(seed uint64) []FlowSpec {
		rr := rng.New(seed)
		var fs []FlowSpec
		for _, d := range defs {
			gen := traffic.NewPoisson(
				traffic.PacketRateFor(load, 10e9, 800), traffic.ConstSize(800), rr.Split())
			fs = append(fs, FlowSpec{FlowID: d.FlowID, Src: d.Src, Dst: d.Dst,
				Gen: gen, Stop: dur, Proto: 17})
		}
		return fs
	}

	// Ground truth DES.
	net := des.Build(g, rt, des.NetConfig{Sched: cfg.Sched, Echo: true})
	for _, f := range mkFlows(seedDES) {
		net.AddFlow(f.Src, des.Flow{FlowID: f.FlowID, Dst: f.Dst, Class: f.Class,
			Weight: f.Weight, Proto: f.Proto, Source: f.Gen.(des.ArrivalSource), Stop: dur})
	}
	net.Run(dur * 3)

	// DeepQueueNet.
	cfg.Model = model
	cfg.Echo = true
	sim, err := NewSim(g, rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range mkFlows(seedDQN) {
		sim.AddFlow(f)
	}
	res, err := sim.Run(dur)
	if err != nil {
		t.Fatal(err)
	}
	return res.PathDelays(true), net.PathDelays(true)
}

func TestEndToEndLineAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	model := testPTM(t)
	g := topo.Line(4, topo.DefaultLAN)
	// Two flows share the middle link, so per-flow load 0.25 keeps the
	// worst link at ρ = 0.5.
	dqn, truth := runPair(t, g, model, 0.125, 0.001, 21, 21, Config{Sched: des.SchedConfig{Kind: des.FIFO}})
	sum := metrics.Compare(dqn, truth)
	t.Logf("Line4: avgRTT w1=%.4f p99 w1=%.4f jitter w1=%.4f", sum.AvgRTTW1, sum.P99RTTW1, sum.AvgJitterW1)
	if math.IsNaN(sum.AvgRTTW1) || sum.AvgRTTW1 > 0.25 {
		t.Fatalf("Line4 avgRTT w1 = %v, expected close to DES", sum.AvgRTTW1)
	}
}

func TestIRSAConvergesWithinDiameter(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	model := testPTM(t)
	g := topo.Line(4, topo.DefaultLAN)
	hosts := g.Hosts()
	defs := []topo.FlowDef{{FlowID: 1, Src: hosts[0], Dst: hosts[3]}}
	rt, _ := g.Route(defs)
	sim, err := NewSim(g, rt, Config{Sched: des.SchedConfig{Kind: des.FIFO}, Model: model, Echo: true})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	sim.AddFlow(FlowSpec{FlowID: 1, Src: hosts[0], Dst: hosts[3],
		Gen: traffic.NewPoisson(1e6, traffic.ConstSize(800), r), Stop: 0.001})
	res, err := sim.Run(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > res.Bound {
		t.Fatalf("IRSA used %d iterations, bound %d", res.Iterations, res.Bound)
	}
	// With echo legs the bound is the round-trip hop count, which
	// exceeds the one-way topology diameter.
	if res.Bound < res.Diameter {
		t.Fatalf("bound %d below diameter %d", res.Bound, res.Diameter)
	}
	if res.Diameter != g.Diameter() {
		t.Fatalf("diameter mismatch")
	}
	if len(res.Deliveries) == 0 {
		t.Fatal("no deliveries")
	}
}

func TestShardCountDoesNotChangeResults(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	model := testPTM(t)
	g := topo.Line(4, topo.DefaultLAN)
	run := func(shards int) metrics.PathSamples {
		hosts := g.Hosts()
		defs := []topo.FlowDef{{FlowID: 1, Src: hosts[0], Dst: hosts[3]},
			{FlowID: 2, Src: hosts[1], Dst: hosts[2]}}
		rt, _ := g.Route(defs)
		sim, err := NewSim(g, rt, Config{Sched: des.SchedConfig{Kind: des.FIFO},
			Model: model, Echo: true, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(7)
		for _, d := range defs {
			sim.AddFlow(FlowSpec{FlowID: d.FlowID, Src: d.Src, Dst: d.Dst,
				Gen: traffic.NewPoisson(5e5, traffic.ConstSize(700), r.Split()), Stop: 0.001})
		}
		res, err := sim.Run(0.001)
		if err != nil {
			t.Fatal(err)
		}
		return res.PathDelays(true)
	}
	a, b := run(1), run(4)
	for k, av := range a {
		bv := b[k]
		if len(av) != len(bv) {
			t.Fatalf("path %s sample count differs: %d vs %d", k, len(av), len(bv))
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("path %s sample %d differs: %v vs %v", k, i, av[i], bv[i])
			}
		}
	}
}

func TestHostEgressExactness(t *testing.T) {
	// With a model that is never invoked (no switches traversed twice?)
	// — instead verify the Lindley recursion directly.
	pkts := []*packet{
		{id: 1, size: 1000, create: 0, hops: []hop{{device: 0, isHost: true, rateBps: 1e9}}},
		{id: 2, size: 1000, create: 1e-6, hops: []hop{{device: 0, isHost: true, rateBps: 1e9}}},
	}
	for _, p := range pkts {
		p.arrive = []float64{p.create}
		p.sojourn = make([]float64, 1)
	}
	entries := []entry{{pkt: 0, hop: 0}, {pkt: 1, hop: 0}}
	serializeFIFOInPlace(entries, pkts)
	tx := 8e-6 // 1000 B at 1 Gb/s
	if math.Abs(pkts[0].sojourn[0]-tx) > 1e-15 {
		t.Fatalf("first packet sojourn %v", pkts[0].sojourn[0])
	}
	// Second packet arrives at 1 µs, first departs at 8 µs → waits 7 µs.
	want := (tx - 1e-6) + tx
	if math.Abs(pkts[1].sojourn[0]-want) > 1e-15 {
		t.Fatalf("second packet sojourn %v, want %v", pkts[1].sojourn[0], want)
	}
}

func TestForwardingTensorEquivalence(t *testing.T) {
	r := rng.New(11)
	forward := func(fid, inPort int) int {
		if fid == 0 {
			return -1 // unroutable flow: dropped
		}
		return (fid + inPort) % 4
	}
	ingress := make([][]StreamPkt, 4)
	tm := 0.0
	id := uint64(0)
	for i := range ingress {
		n := 5 + r.Intn(20)
		for k := 0; k < n; k++ {
			tm += r.Exp(1e5)
			id++
			ingress[i] = append(ingress[i], StreamPkt{
				PID: id, FID: r.Intn(5), Len: 64 + r.Intn(1400), InPort: i, Time: tm})
		}
	}
	ft := BuildForwardingTensor(ingress, forward)
	a := ft.Apply(ingress)
	b := ForwardDirect(ingress, forward)
	for j := 0; j < 4; j++ {
		if len(a[j]) != len(b[j]) {
			t.Fatalf("port %d: %d vs %d packets", j, len(a[j]), len(b[j]))
		}
		for k := range a[j] {
			if a[j][k] != b[j][k] {
				t.Fatalf("port %d packet %d differs", j, k)
			}
		}
	}
	// Tensor is 0/1 with at most one egress per (i, k).
	for i := 0; i < ft.K; i++ {
		for k := 0; k < ft.N; k++ {
			sum := 0
			for j := 0; j < ft.K; j++ {
				sum += int(ft.At(i, j, k))
			}
			if sum > 1 {
				t.Fatalf("packet (%d,%d) forwarded to %d ports", i, k, sum)
			}
		}
	}
}

func TestPartitionDevicesBalance(t *testing.T) {
	devices := []int{0, 1, 2, 3, 4, 5, 6, 7}
	work := func(d int) int { return d + 1 }
	shards := PartitionDevices(devices, work, 3)
	if len(shards) != 3 {
		t.Fatalf("%d shards", len(shards))
	}
	seen := map[int]bool{}
	loads := make([]int, 3)
	for i, s := range shards {
		for _, d := range s {
			if seen[d] {
				t.Fatalf("device %d assigned twice", d)
			}
			seen[d] = true
			loads[i] += work(d)
		}
	}
	if len(seen) != len(devices) {
		t.Fatal("device lost in partition")
	}
	minL, maxL := loads[0], loads[0]
	for _, l := range loads {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	if maxL-minL > 8 { // LPT on 1..8 across 3 shards is near-balanced
		t.Fatalf("unbalanced shards: %v", loads)
	}
}

func TestPartitionSingleShard(t *testing.T) {
	s := PartitionDevices([]int{3, 1, 2}, func(int) int { return 1 }, 1)
	if len(s) != 1 || len(s[0]) != 3 {
		t.Fatalf("single shard %v", s)
	}
}

func TestDLib(t *testing.T) {
	l := NewDLib()
	m2, _ := ptm.New(ptm.Arch{TimeSteps: 4, Embed: 4, BLSTM1: 4, BLSTM2: 4, Heads: 1, DK: 2, DV: 2, HeadOut: 4}, 2, 1)
	m8, _ := ptm.New(ptm.Arch{TimeSteps: 4, Embed: 4, BLSTM1: 4, BLSTM2: 4, Heads: 1, DK: 2, DV: 2, HeadOut: 4}, 8, 2)
	l.Put("switch-2port", m2)
	l.Put("switch-8port", m8)
	if got := l.Names(); len(got) != 2 || got[0] != "switch-2port" {
		t.Fatalf("names %v", got)
	}
	if m, ok := l.BestFor(3); !ok || m.NumPorts != 8 {
		t.Fatalf("BestFor(3) = %v", m)
	}
	if m, ok := l.BestFor(2); !ok || m.NumPorts != 2 {
		t.Fatalf("BestFor(2) picked %d-port", m.NumPorts)
	}
	if _, ok := l.BestFor(9); ok {
		t.Fatal("BestFor(9) should fail")
	}
	dir := t.TempDir()
	m2.Feat = &ptm.MinMax{Min: make([]float64, ptm.NumFeatures), Max: make([]float64, ptm.NumFeatures)}
	m8.Feat = m2.Feat
	if err := l.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	l2, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(l2.Names()) != 2 {
		t.Fatalf("loaded %v", l2.Names())
	}
}

func TestNewSimRejectsUndersizedModel(t *testing.T) {
	m, _ := ptm.New(ptm.Arch{TimeSteps: 4, Embed: 4, BLSTM1: 4, BLSTM2: 4, Heads: 1, DK: 2, DV: 2, HeadOut: 4}, 2, 1)
	g := topo.FatTree(topo.FatTree16, topo.DefaultLAN) // degree > 2
	rt, _ := g.Route([]topo.FlowDef{{FlowID: 1, Src: g.Hosts()[0], Dst: g.Hosts()[1]}})
	if _, err := NewSim(g, rt, Config{Model: m}); err == nil {
		t.Fatal("expected degree check failure")
	}
}
