package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepqueuenet/internal/des"
	"deepqueuenet/internal/guard"
	"deepqueuenet/internal/ptm"
)

// slowSignalModel is a DeviceModel whose inferences are slow enough for
// a cancellation to land mid-IRSA; it signals its first call so the
// cancelers know the run is inside an iteration.
type slowSignalModel struct {
	firstCall chan struct{}
	once      sync.Once
	calls     atomic.Int64
}

func (m *slowSignalModel) PredictStream(stream []ptm.PacketIn, _ des.SchedKind, rateBps float64, _ int) []float64 {
	m.calls.Add(1)
	m.once.Do(func() { close(m.firstCall) })
	time.Sleep(200 * time.Microsecond)
	out := make([]float64, len(stream))
	for i := range out {
		out[i] = float64(stream[i].Size*8) / rateBps
	}
	return out
}
func (m *slowSignalModel) CloneModel() DeviceModel { return m }
func (m *slowSignalModel) Ports() int              { return 0 }
func (m *slowSignalModel) Validate() error         { return nil }

// TestRunContextConcurrentCancelRace cancels a running RunContext from
// many goroutines at once, mid-IRSA, under the race detector: the run
// must stop with guard.ErrCanceled and still hand back partial results,
// with no data race between the cancelers and the inference shards.
func TestRunContextConcurrentCancelRace(t *testing.T) {
	m := &slowSignalModel{firstCall: make(chan struct{})}
	sim, hosts := lineSim(t, Config{
		Sched:      des.SchedConfig{Kind: des.FIFO},
		Iterations: 100,
		Shards:     2,
		DeviceFor:  func(int) DeviceModel { return m },
	})
	addTestFlow(sim, hosts)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer func() {
				if we := guard.RecoveredWorker(i, recover()); we != nil {
					t.Error(we)
				}
				wg.Done()
			}()
			<-m.firstCall
			cancel() // all eight race to cancel the same run
		}(i)
	}
	res, err := sim.RunContext(ctx, 0.001)
	wg.Wait()
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("want guard.ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("underlying context error lost: %v", err)
	}
	if res == nil {
		t.Fatal("canceled run must return the partial result")
	}
	if res.Iterations > 3 {
		t.Fatalf("cancel mid-iteration ran %d iterations, want early stop", res.Iterations)
	}
	if m.calls.Load() == 0 {
		t.Fatal("model was never called; cancel landed before IRSA started")
	}
}

// passthroughModel forwards to an inner model, counting invocations —
// the minimal WrapDevice instrumentation wrapper.
type passthroughModel struct {
	inner DeviceModel
	calls *atomic.Int64
}

func (p *passthroughModel) PredictStream(stream []ptm.PacketIn, k des.SchedKind, rateBps float64, w int) []float64 {
	p.calls.Add(1)
	return p.inner.PredictStream(stream, k, rateBps, w)
}
func (p *passthroughModel) CloneModel() DeviceModel {
	return &passthroughModel{inner: p.inner.CloneModel(), calls: p.calls}
}
func (p *passthroughModel) Ports() int      { return p.inner.Ports() }
func (p *passthroughModel) Validate() error { return p.inner.Validate() }

// TestWrapDeviceHook: Config.WrapDevice wraps every resolved device
// model, and the engine runs the wrapper.
func TestWrapDeviceHook(t *testing.T) {
	var wrapped, calls atomic.Int64
	sim, hosts := lineSim(t, Config{
		Sched: des.SchedConfig{Kind: des.FIFO},
		WrapDevice: func(_ int, m DeviceModel) DeviceModel {
			wrapped.Add(1)
			return &passthroughModel{inner: m, calls: &calls}
		},
	})
	addTestFlow(sim, hosts)
	res, err := sim.Run(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.Load() == 0 {
		t.Fatal("WrapDevice never invoked")
	}
	if calls.Load() == 0 {
		t.Fatal("wrapped model never used for inference")
	}
	if res.Degraded() {
		t.Fatalf("wrapped run must not degrade: %v", res.DegradedDevices)
	}
}

// TestWrapDeviceNilDegrades: a wrapper returning nil degrades that
// device to the FIFO fallback instead of crashing the run.
func TestWrapDeviceNilDegrades(t *testing.T) {
	sim, hosts := lineSim(t, Config{
		Sched:      des.SchedConfig{Kind: des.FIFO},
		WrapDevice: func(int, DeviceModel) DeviceModel { return nil },
	})
	addTestFlow(sim, hosts)
	res, err := sim.Run(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded() {
		t.Fatal("nil-wrapping run must be degraded")
	}
	for _, d := range res.DegradedDevices {
		if res.DegradedReasons[d] == "" {
			t.Fatalf("device %d degraded without a reason", d)
		}
	}
}
