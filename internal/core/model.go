package core

import (
	"fmt"

	"deepqueuenet/internal/des"
	"deepqueuenet/internal/ptm"
)

// DeviceModel abstracts the trained per-device TM model the engine
// drives: sojourn prediction over one egress-port stream, goroutine-safe
// cloning for shard parallelism, the training device degree, and
// structural validation. *ptm.PTM is the canonical implementation (via
// PTMModel); alternative backends and fault-injection mocks implement it
// directly.
//
// Implementations must be comparable (pointer receivers or small structs
// of comparable fields): the engine keys its per-shard clone cache on the
// DeviceModel value.
type DeviceModel interface {
	// PredictStream predicts the sojourn time of every packet of one
	// per-egress-port ingress stream, sorted by arrival time.
	PredictStream(stream []ptm.PacketIn, kind des.SchedKind, rateBps float64, workers int) []float64
	// CloneModel returns an independent copy safe to use from another
	// goroutine. Implementations without mutable inference state may
	// return the receiver.
	CloneModel() DeviceModel
	// Ports returns the training device degree K (a K-port model serves
	// devices of degree <= K). 0 means unconstrained.
	Ports() int
	// Validate reports whether the model is structurally sound. The
	// engine degrades devices whose model fails validation to the exact
	// FIFO-serialization fallback instead of running them.
	Validate() error
}

// DevicePredictor is the optional device-batched fast path of a
// DeviceModel: all egress-port streams of one device are predicted in a
// single call that reuses the model's internal inference scratch and
// writes sojourns into caller-owned PortStream.Out slices. The engine
// type-asserts its per-shard model clone for this interface and falls
// back to per-port PredictStream calls when absent, so custom
// DeviceModel implementations need not provide it. Results must be
// identical to per-port PredictStream(stream, kind, rate, 1) calls.
type DevicePredictor interface {
	PredictDevice(ports []ptm.PortStream, kind des.SchedKind)
}

// PTMModel adapts a *ptm.PTM to the DeviceModel interface. It also
// satisfies DevicePredictor (promoted from *ptm.PTM), giving PTM-driven
// devices the zero-allocation batched inference path.
type PTMModel struct{ *ptm.PTM }

// CloneModel implements DeviceModel.
func (m PTMModel) CloneModel() DeviceModel { return PTMModel{m.PTM.Clone()} }

// Ports implements DeviceModel.
func (m PTMModel) Ports() int { return m.PTM.NumPorts }

// resolveModel returns the device model for switch sw: Cfg.DeviceFor
// first, then the PTM resolution chain (ModelFor, Model) wrapped in
// PTMModel with the NoSEC ablation applied. It returns nil when no model
// is configured for the device.
func (s *Sim) resolveModel(sw int) DeviceModel {
	if s.Cfg.DeviceFor != nil {
		if m := s.Cfg.DeviceFor(sw); m != nil {
			return m
		}
	}
	m := s.modelOf(sw)
	if m == nil {
		return nil
	}
	if s.Cfg.NoSEC && len(m.SECBins) > 0 {
		// SEC ablation: strip the correction bins from a working copy.
		m = m.WithoutSEC()
	}
	return PTMModel{m}
}

// resolveDeviceModels validates the model of every switch device once
// per run. Devices with a missing or invalid model, or a model trained
// for fewer ports than the device's degree, are degraded: they fall back
// to the exact transmission-time + FIFO-serialization device model, and
// the reason is recorded so Result can report the degraded set. Distinct
// devices sharing one model validate it once.
func (s *Sim) resolveDeviceModels(devices []int, byDevice map[int][]entry, pkts []*packet) (map[int]DeviceModel, map[int]string) {
	models := make(map[int]DeviceModel, len(devices))
	degraded := make(map[int]string)
	validated := make(map[DeviceModel]error)
	for _, d := range devices {
		es := byDevice[d]
		if len(es) == 0 || pkts[es[0].pkt].hops[es[0].hop].isHost {
			continue // hosts use the exact link model, no PTM involved
		}
		m := s.resolveModel(d)
		if m == nil {
			degraded[d] = "no device model configured"
			continue
		}
		verr, seen := validated[m]
		if !seen {
			verr = m.Validate()
			validated[m] = verr
		}
		if verr != nil {
			degraded[d] = verr.Error()
			continue
		}
		if k := m.Ports(); k > 0 && d < s.G.NumNodes() && s.G.Degree(d) > k {
			degraded[d] = fmt.Sprintf("model trained for %d ports cannot drive degree-%d device",
				k, s.G.Degree(d))
			continue
		}
		if s.Cfg.WrapDevice != nil {
			// The wrapper sees only validated models; wrapping happens
			// after the Validate/Ports gates so injected faults cannot
			// be mistaken for structural model defects.
			m = s.Cfg.WrapDevice(d, m)
			if m == nil {
				degraded[d] = "device wrapper returned nil model"
				continue
			}
		}
		models[d] = m
	}
	return models, degraded
}
