package core

import "time"

// IterationEvent describes one completed IRSA iteration — the runtime
// view of the fixed-point recursion Theorem 3.1 bounds. Delta is the
// convergence measure the stopping rule and the divergence watchdog
// consume, so an observer sees exactly the trace that decides the run's
// fate.
type IterationEvent struct {
	// Iter is the 0-based iteration index.
	Iter int
	// Delta is the largest departure-time change produced by this
	// iteration's propagation sweep.
	Delta float64
	// Duration is the wall-clock time of the whole iteration (inference
	// sweep, damping, propagation).
	Duration time.Duration
	// ShardWork is the per-shard inference wall time of this iteration,
	// indexed by shard — the Fig. 11 model-parallel load picture. The
	// slice is owned by the engine and reused across iterations:
	// observers must copy it if they retain it beyond the call.
	ShardWork []time.Duration
}

// InferenceEvent describes one device inference inside an IRSA
// iteration: the unit of work the per-device batching (Fig. 11)
// schedules across shards.
type InferenceEvent struct {
	// Device is the topology node ID.
	Device int
	// Shard is the shard that executed the inference.
	Shard int
	// Ports is the number of egress ports inferred.
	Ports int
	// Packets is the total number of packet traversals across those
	// ports.
	Packets int
	// Duration is the wall-clock time of the inference.
	Duration time.Duration
	// Host marks a host egress (exact FIFO serialization, no DNN).
	Host bool
	// Degraded marks a switch served by the exact FIFO fallback because
	// its model was missing or invalid.
	Degraded bool
}

// Observer receives engine telemetry. A nil Config.Observer costs one
// nil check per call site and nothing else: no clocks are read and no
// events are built. Implementations must be goroutine-safe —
// ObserveInference is called concurrently from every shard goroutine.
// Observers must not mutate anything reachable from the event, and the
// engine never lets observer timing feed back into simulation state, so
// an attached observer cannot perturb results (golden traces stay
// bit-identical either way).
type Observer interface {
	// ObserveIteration fires once per IRSA iteration, after the
	// propagation sweep computed Delta and before the stopping rule
	// consumes it.
	ObserveIteration(IterationEvent)
	// ObserveInference fires once per device inference, from the shard
	// goroutine that ran it.
	ObserveInference(InferenceEvent)
}
