package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"deepqueuenet/internal/ptm"
)

// DLib is the device model library (§3.1): it stores and indexes trained
// device models by name (e.g. "switch-4port", "switch-64port") and can
// persist them to a directory.
type DLib struct {
	mu     sync.RWMutex
	models map[string]*ptm.PTM
}

// NewDLib returns an empty library.
func NewDLib() *DLib { return &DLib{models: make(map[string]*ptm.PTM)} }

// Put stores a model under name, replacing any previous entry.
func (l *DLib) Put(name string, m *ptm.PTM) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.models[name] = m
}

// Get fetches a model by name.
func (l *DLib) Get(name string) (*ptm.PTM, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	m, ok := l.models[name]
	return m, ok
}

// Names lists stored model names, sorted.
func (l *DLib) Names() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.models))
	for n := range l.models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// BestFor returns the stored model with the smallest port count that can
// drive a switch of the given degree (a K-port PTM serves any device of
// degree ≤ K).
func (l *DLib) BestFor(degree int) (*ptm.PTM, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var best *ptm.PTM
	for _, m := range l.models {
		if m.NumPorts < degree {
			continue
		}
		if best == nil || m.NumPorts < best.NumPorts {
			best = m
		}
	}
	return best, best != nil
}

// SaveDir writes every model to dir as <name>.ptm.json.
func (l *DLib) SaveDir(dir string) error {
	// Snapshot the model set under the read lock, then do filesystem IO
	// after RUnlock so a slow disk never stalls concurrent Lookup calls.
	l.mu.RLock()
	models := make(map[string]*ptm.PTM, len(l.models))
	for name, m := range l.models {
		models[name] = m
	}
	l.mu.RUnlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, m := range models {
		if err := m.Save(filepath.Join(dir, name+".ptm.json")); err != nil {
			return fmt.Errorf("dlib: saving %s: %w", name, err)
		}
	}
	return nil
}

// LoadDir loads every *.ptm.json model from dir.
func LoadDir(dir string) (*DLib, error) {
	l := NewDLib()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ptm.json") {
			continue
		}
		m, err := ptm.Load(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("dlib: loading %s: %w", e.Name(), err)
		}
		l.models[strings.TrimSuffix(e.Name(), ".ptm.json")] = m
	}
	return l, nil
}
