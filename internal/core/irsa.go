package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"deepqueuenet/internal/des"
	"deepqueuenet/internal/guard"
	"deepqueuenet/internal/ptm"
)

// entry locates one device traversal: packet index and hop index.
type entry struct {
	pkt int32
	hop int32
}

// portPlan is the precomputed inference work of one egress port: its
// traversal entries (re-sorted in place by the current arrival
// estimates each iteration), the fixed line rate, and a reusable
// ingress-stream buffer.
type portPlan struct {
	port   int
	es     []entry
	rate   float64
	stream []ptm.PacketIn
}

// devicePlan is one device's precomputed inference work. Packet routes
// are fixed for a run, so the egress-port grouping never changes across
// IRSA iterations; building it once removes the per-iteration map
// rebuild, and the plan-owned buffers give the shard loop its
// steady-state zero-allocation property. A device belongs to exactly
// one shard, so its plan is only ever touched by that shard's worker.
type devicePlan struct {
	isHost bool
	ports  []portPlan
	batch  []ptm.PortStream // parallel to ports; reused by DevicePredictor models
}

// buildPlans indexes every device's traversals by egress port, in
// sorted port order.
func buildPlans(devices []int, byDevice map[int][]entry, pkts []*packet) map[int]*devicePlan {
	plans := make(map[int]*devicePlan, len(devices))
	for _, d := range devices {
		es := byDevice[d]
		if len(es) == 0 {
			continue
		}
		pl := &devicePlan{}
		if pkts[es[0].pkt].hops[es[0].hop].isHost {
			// Hosts serialize one egress stream exactly; keep a private
			// copy so the in-place sort never disturbs byDevice's order.
			pl.isHost = true
			pl.ports = []portPlan{{es: append([]entry(nil), es...)}}
			plans[d] = pl
			continue
		}
		// Group traversals by egress port (the PFM already mixed ingress
		// streams; Delay() applies per egress stream, Eq. 7).
		byPort := make(map[int][]entry)
		for _, e := range es {
			out := pkts[e.pkt].hops[e.hop].outPort
			byPort[out] = append(byPort[out], e)
		}
		ports := make([]int, 0, len(byPort))
		for p := range byPort {
			ports = append(ports, p)
		}
		sort.Ints(ports)
		pl.ports = make([]portPlan, 0, len(ports))
		for _, port := range ports {
			pes := byPort[port]
			pl.ports = append(pl.ports, portPlan{
				port: port,
				es:   pes,
				rate: pkts[pes[0].pkt].hops[pes[0].hop].rateBps,
			})
		}
		pl.batch = make([]ptm.PortStream, len(pl.ports))
		plans[d] = pl
	}
	return plans
}

// sortEntriesByArrival orders traversals by the current arrival
// estimate, breaking ties by packet ID. The (arrive, id) key is a
// strict total order (IDs are unique), so the result is deterministic
// regardless of input order.
func sortEntriesByArrival(es []entry, pkts []*packet) {
	sort.Slice(es, func(a, b int) bool {
		pa, pb := pkts[es[a].pkt], pkts[es[b].pkt]
		ta, tb := pa.arrive[es[a].hop], pb.arrive[es[b].hop]
		if ta != tb {
			return ta < tb
		}
		return pa.id < pb.id
	})
}

// fillStream writes the PTM ingress view of the (sorted) traversals
// into stream, which must be len(es) long.
func fillStream(stream []ptm.PacketIn, es []entry, pkts []*packet) {
	for i, e := range es {
		p := pkts[e.pkt]
		stream[i] = ptm.PacketIn{
			Arrive: p.arrive[e.hop], Size: p.size, Proto: p.proto,
			InPort: p.hops[e.hop].inPort, Class: p.class, Weight: p.weight,
		}
	}
}

// growStream returns buf resized to n, reusing its backing array when
// large enough.
func growStream(buf []ptm.PacketIn, n int) []ptm.PacketIn {
	if cap(buf) < n {
		return make([]ptm.PacketIn, n)
	}
	return buf[:n]
}

// Run executes the simulation: TGen, initial inference, and the
// Iterative Re-Sequencing Algorithm (Algorithm 1). Per Theorem 3.1 at
// most diameter(G) iterations are needed; Run stops earlier once no
// departure estimate moves by more than ConvergeEps.
func (s *Sim) Run(duration float64) (*Result, error) {
	return s.RunContext(context.Background(), duration)
}

// RunContext is Run with cooperative cancellation: ctx is checked
// between IRSA iterations and between devices inside each shard loop, so
// a cancel or deadline stops the run within one device inference. On
// cancellation it returns the partial Result assembled from the current
// estimates together with an error matching guard.ErrCanceled or
// guard.ErrDeadline (and the underlying context error).
//
// Three further failure modes surface as errors instead of process
// faults: a panic inside a shard goroutine is recovered into a
// *guard.ShardError; a diverging or NaN-poisoned delta sequence aborts
// with a *guard.DivergenceError carrying the delta trace; and a device
// whose model is missing or fails validation is degraded to the exact
// FIFO-serialization fallback and listed in Result.DegradedDevices.
func (s *Sim) RunContext(ctx context.Context, duration float64) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return &Result{}, guard.FromContext(err)
	}
	pkts, err := s.genPackets(duration)
	if err != nil {
		return nil, err
	}
	eps := s.Cfg.ConvergeEps
	if eps <= 0 {
		eps = 1e-9
	}
	damping := s.Cfg.Damping
	if damping <= 0 {
		damping = 0.7
	}
	if damping > 1 {
		damping = 1
	}
	shards := s.Cfg.Shards
	if shards <= 0 {
		shards = 1
	}

	// Index device traversals.
	byDevice := make(map[int][]entry)
	for pi, p := range pkts {
		for hi := range p.hops {
			d := p.hops[hi].device
			byDevice[d] = append(byDevice[d], entry{pkt: int32(pi), hop: int32(hi)})
		}
	}
	devices := make([]int, 0, len(byDevice))
	for d := range byDevice {
		devices = append(devices, d)
	}
	sort.Ints(devices)

	// Initial inference: sojourn = transmission time only, then propagate
	// arrival estimates (Algorithm 1's first pass over ingress streams).
	for _, p := range pkts {
		for h := range p.hops {
			p.sojourn[h] = float64(p.size*8) / p.hops[h].rateBps
		}
	}
	propagate(pkts)

	// Resolve and validate every switch's model once; devices with a
	// missing or invalid model degrade to the exact FIFO fallback.
	devModels, degraded := s.resolveDeviceModels(devices, byDevice, pkts)

	// Routes are fixed for the run, so the per-device egress grouping is
	// computed once; iterations only re-sort entries in place.
	plans := buildPlans(devices, byDevice, pkts)

	shardSets := PartitionDevices(devices, func(d int) int { return len(byDevice[d]) }, shards)

	diameter := s.G.Diameter()
	// Theorem 3.1 bounds convergence by the number of device hops a
	// packet's stream can traverse. With echo legs the round trip doubles
	// the path, so the effective bound is the longest per-packet hop
	// sequence (= diameter for one-way runs).
	maxIter := s.Cfg.Iterations
	if maxIter <= 0 {
		for _, p := range pkts {
			if len(p.hops) > maxIter {
				maxIter = len(p.hops)
			}
		}
		if maxIter == 0 {
			maxIter = 1
		}
		if damping < 1 {
			// Damped updates converge geometrically rather than in one
			// sweep per hop; allow extra iterations (the eps check stops
			// earlier whenever possible).
			maxIter += maxIter / 2
		}
	}
	// Damping needs the previous iteration's sojourns.
	var prev [][]float64
	if damping < 1 {
		prev = make([][]float64, len(pkts))
		for i, p := range pkts {
			prev[i] = make([]float64, len(p.sojourn))
		}
	}
	shardWork := make([]float64, len(shardSets))
	shardClones := make([]map[DeviceModel]DeviceModel, len(shardSets))
	for i := range shardClones {
		shardClones[i] = make(map[DeviceModel]DeviceModel)
	}
	// finish assembles the (possibly partial) Result from the current
	// estimates — also the exit path for canceled and failed runs, so
	// callers get the partial trace alongside the error for diagnosis.
	iters := 0
	finish := func(err error) (*Result, error) {
		res := s.collect(pkts, byDevice, iters, diameter, maxIter)
		if s.Cfg.MeasureShards {
			res.ShardWork = shardWork
		}
		res.DegradedReasons = degraded
		for d := range degraded {
			res.DegradedDevices = append(res.DegradedDevices, d)
		}
		sort.Ints(res.DegradedDevices)
		return res, err
	}
	watchdog := &guard.Watchdog{Patience: s.Cfg.DivergePatience}
	// Checkpointing state: view aliases the live sojourn buffers so an
	// epoch snapshot refresh is a few scalar stores, keeping the epoch
	// loop allocation-free. The traffic digest is computed once per run
	// and only when a sink or a resume actually needs it.
	ckptOn := s.Cfg.EpochSink != nil && s.Cfg.EpochEvery > 0
	var view *EpochState
	startIter := 0
	if ckptOn || s.Cfg.Resume != nil {
		digest := trafficDigest(pkts)
		if r := s.Cfg.Resume; r != nil {
			if err := restoreEpoch(r, pkts, digest, maxIter); err != nil {
				return finish(err)
			}
			watchdog.Restore(r.WatchdogTrace, r.WatchdogGrowth)
			startIter = r.Iter
			iters = r.Iter
			// Arrival estimates are derived state: recompute them from
			// the restored sojourns exactly as the uninterrupted run's
			// last propagate left them.
			propagate(pkts)
		}
		if ckptOn {
			view = epochView(pkts, digest)
		}
	}
	// One error slot per shard: each worker writes only its own slot, so
	// panic reports need no lock. obsWork is the observer's per-shard
	// wall-time accumulator with the same single-writer discipline.
	shardErrs := make([]error, len(shardSets))
	obs := s.Cfg.Observer
	var obsWork []time.Duration
	if obs != nil {
		obsWork = make([]time.Duration, len(shardSets))
	}
	for iter := startIter; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return finish(guard.FromContext(err))
		}
		iters++
		var iterStart time.Time
		if obs != nil {
			//dqnlint:allow detguard wall-clock observer instrumentation; timing is reported, never fed back into simulation state
			iterStart = time.Now()
			for i := range obsWork {
				obsWork[i] = 0
			}
		}
		if damping < 1 {
			for i, p := range pkts {
				copy(prev[i], p.sojourn)
			}
		}
		if s.Cfg.MeasureShards {
			// Sequential execution with per-shard timing: the clean way
			// to measure the model-parallel critical path regardless of
			// host core count.
			for si, shard := range shardSets {
				//dqnlint:allow detguard wall-clock shard-timing instrumentation; measures compute cost, never feeds simulation state
				t0 := time.Now()
				shardErrs[si] = s.runShard(ctx, iter, si, shard, plans, pkts, devModels, shardClones[si], obsWork, ckptOn)
				shardWork[si] += time.Since(t0).Seconds()
			}
		} else {
			var wg sync.WaitGroup
			for si, shard := range shardSets {
				wg.Add(1)
				go func(si int, shard []int) {
					defer wg.Done()
					shardErrs[si] = s.runShard(ctx, iter, si, shard, plans, pkts, devModels, shardClones[si], obsWork, ckptOn)
				}(si, shard)
			}
			wg.Wait()
		}
		if err := errors.Join(shardErrs...); err != nil {
			return finish(err)
		}
		if err := ctx.Err(); err != nil && !ckptOn {
			// With a checkpoint sink attached the iteration runs to its
			// boundary instead (a consistent snapshot is worth at most
			// one iteration of cancellation latency); the loop-top check
			// surfaces the cancel right after the final snapshot.
			return finish(guard.FromContext(err))
		}
		if damping < 1 && iter > 0 {
			// Skip damping on the first iteration: the initial estimate
			// (transmission time only) is far from the fixed point and
			// holding on to it would only slow convergence.
			for i, p := range pkts {
				for h := range p.sojourn {
					p.sojourn[h] = damping*p.sojourn[h] + (1-damping)*prev[i][h]
				}
			}
		}

		delta := propagate(pkts)
		if obs != nil {
			//dqnlint:allow detguard wall-clock observer instrumentation; timing is reported, never fed back into simulation state
			obs.ObserveIteration(IterationEvent{Iter: iter, Delta: delta, Duration: time.Since(iterStart), ShardWork: obsWork})
		}
		if err := watchdog.Observe(iter, delta); err != nil {
			return finish(err)
		}
		if delta <= eps {
			break
		}
		if ckptOn && (iters%s.Cfg.EpochEvery == 0 || ctx.Err() != nil) {
			// Epoch boundary (or final snapshot before a cancel return):
			// the view's sojourn slices alias live state, so only the
			// scalars need refreshing before the sink serializes.
			view.Iter = iters
			view.Delta = delta
			view.WatchdogTrace, view.WatchdogGrowth = watchdog.State()
			if serr := s.Cfg.EpochSink(view); serr != nil {
				return finish(fmt.Errorf("core: epoch checkpoint at iteration %d: %w", iters, serr))
			}
		}
	}

	return finish(nil)
}

// runShard infers every device of one shard, stopping early on
// cancellation and recovering any panic into a *guard.ShardError so a
// crashing device model cannot take down the process. obsWork (set iff
// an Observer is attached) accumulates this shard's inference wall time
// for the iteration; each shard writes only its own slot. runToEnd
// (set iff an epoch checkpoint sink is attached) disables the per-device
// cancellation short-circuit: a partially inferred iteration is not a
// resumable boundary, so the shard finishes its devices and the caller
// snapshots before surfacing the cancel.
func (s *Sim) runShard(ctx context.Context, iter, si int, shard []int,
	plans map[int]*devicePlan, pkts []*packet,
	devModels map[int]DeviceModel, clones map[DeviceModel]DeviceModel,
	obsWork []time.Duration, runToEnd bool) error {

	obs := s.Cfg.Observer
	for _, d := range shard {
		if !runToEnd && ctx.Err() != nil {
			return nil // the caller maps ctx.Err() to the cancel error
		}
		var t0 time.Time
		if obs != nil {
			//dqnlint:allow detguard wall-clock observer instrumentation; timing is reported, never fed back into simulation state
			t0 = time.Now()
		}
		err := s.inferDeviceGuarded(iter, si, d, plans[d], pkts, devModels[d], clones)
		if obs != nil {
			//dqnlint:allow detguard wall-clock observer instrumentation; timing is reported, never fed back into simulation state
			dur := time.Since(t0)
			obsWork[si] += dur
			obs.ObserveInference(inferenceEvent(si, d, plans[d], devModels[d], dur))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// inferenceEvent assembles the observer's view of one device inference.
func inferenceEvent(si, dev int, plan *devicePlan, model DeviceModel, dur time.Duration) InferenceEvent {
	ev := InferenceEvent{Device: dev, Shard: si, Duration: dur}
	if plan != nil {
		ev.Ports = len(plan.ports)
		for i := range plan.ports {
			ev.Packets += len(plan.ports[i].es)
		}
		ev.Host = plan.isHost
		ev.Degraded = !plan.isHost && model == nil
	}
	return ev
}

// inferDeviceGuarded runs inferDevice with panic isolation.
func (s *Sim) inferDeviceGuarded(iter, si, dev int, plan *devicePlan, pkts []*packet,
	model DeviceModel, clones map[DeviceModel]DeviceModel) (err error) {

	defer func() {
		if se := guard.Recovered(si, dev, iter, recover()); se != nil {
			err = se
		}
	}()
	s.inferDevice(dev, plan, pkts, model, clones)
	return nil
}

// propagate recomputes per-packet arrival estimates from the current
// sojourns and returns the largest change in any final departure time.
// A NaN or ±Inf estimate is returned as-is (not swallowed by the max
// comparison) so the divergence watchdog sees the poisoning immediately.
func propagate(pkts []*packet) float64 {
	maxDelta := 0.0
	for _, p := range pkts {
		t := p.create
		for h := range p.hops {
			d := math.Abs(p.arrive[h] - t)
			if math.IsNaN(d) || math.IsInf(d, 0) {
				return d
			}
			if d > maxDelta {
				maxDelta = d
			}
			p.arrive[h] = t
			t += p.sojourn[h] + p.hops[h].linkDelay
		}
		if math.IsNaN(t) || math.IsInf(t, 0) {
			// A poisoned sojourn on a packet's FINAL hop never re-enters
			// any arrival estimate (the loop adds it after the last
			// comparison), and damping keeps it NaN forever — so check the
			// departure time itself, or the poison would sail past the
			// watchdog straight into the delivered trace.
			return math.Abs(t)
		}
	}
	return maxDelta
}

// inferDevice recomputes the sojourn of every packet traversal of one
// device from the current arrival estimates: exact FIFO serialization
// for host egresses, PTM inference per egress port for switches. A
// switch without a usable model (nil here = degraded) runs the exact
// serialization fallback on every egress port.
func (s *Sim) inferDevice(dev int, plan *devicePlan, pkts []*packet,
	model DeviceModel, clones map[DeviceModel]DeviceModel) {

	if plan == nil {
		return
	}
	if plan.isHost {
		serializeFIFOInPlace(plan.ports[0].es, pkts)
		return
	}
	if model == nil {
		// Degraded device: exact transmission + FIFO queueing per egress
		// port — the availability-preserving fallback.
		for i := range plan.ports {
			serializeFIFOInPlace(plan.ports[i].es, pkts)
		}
		return
	}
	rep := clones[model]
	if rep == nil {
		rep = model.CloneModel()
		clones[model] = rep
	}
	sched := s.schedOf(dev)
	for i := range plan.ports {
		sortEntriesByArrival(plan.ports[i].es, pkts)
	}
	if dp, ok := rep.(DevicePredictor); ok {
		// Batched fast path: every egress port of the device in one call
		// against the clone's shared inference scratch; streams and
		// outputs live in plan-owned reusable buffers.
		for i := range plan.ports {
			pp := &plan.ports[i]
			pp.stream = growStream(pp.stream, len(pp.es))
			fillStream(pp.stream, pp.es, pkts)
			plan.batch[i].Stream = pp.stream
			plan.batch[i].RateBps = pp.rate
		}
		dp.PredictDevice(plan.batch, sched.Kind)
		for i := range plan.ports {
			out := plan.batch[i].Out
			for j, e := range plan.ports[i].es {
				pkts[e.pkt].sojourn[e.hop] = out[j]
			}
		}
		return
	}
	// Generic DeviceModel: per-port PredictStream with a fresh stream per
	// call (the model may retain the slice).
	for i := range plan.ports {
		pp := &plan.ports[i]
		stream := make([]ptm.PacketIn, len(pp.es))
		fillStream(stream, pp.es, pkts)
		sojourns := rep.PredictStream(stream, sched.Kind, pp.rate, 1)
		for j, e := range pp.es {
			pkts[e.pkt].sojourn[e.hop] = sojourns[j]
		}
	}
}

// serializeFIFOInPlace computes exact FIFO serialization over one
// egress port's traversals (a known, deterministic TM — no DNN needed,
// mirroring the paper's exactly-solvable link model), re-sorting the
// caller-owned entries in place (plan-owned slices make that safe). It
// serves host egresses and, per port, the graceful-degradation fallback
// for switches whose PTM is missing or invalid.
func serializeFIFOInPlace(es []entry, pkts []*packet) {
	sortEntriesByArrival(es, pkts)
	lastDepart := math.Inf(-1)
	for _, e := range es {
		p := pkts[e.pkt]
		arr := p.arrive[e.hop]
		start := arr
		if lastDepart > start {
			start = lastDepart
		}
		depart := start + float64(p.size*8)/p.hops[e.hop].rateBps
		p.sojourn[e.hop] = depart - arr
		lastDepart = depart
	}
}

// collect assembles the Result: deliveries and per-device visit traces.
func (s *Sim) collect(pkts []*packet, byDevice map[int][]entry, iters, diameter, bound int) *Result {
	res := &Result{
		DeviceVisits: make(map[int][]des.Visit, len(byDevice)),
		Iterations:   iters,
		Diameter:     diameter,
		Bound:        bound,
	}
	for _, p := range pkts {
		// One-way delivery: arrival at the destination host.
		fwdLast := p.fwdHops - 1
		oneWay := p.arrive[fwdLast] + p.sojourn[fwdLast] + p.hops[fwdLast].linkDelay
		res.Deliveries = append(res.Deliveries, des.Delivery{
			PktID: p.id, FlowID: p.flow, Src: p.src, Dst: p.dst,
			SendTime: p.create, RecvTime: oneWay, IsRTT: false,
			Hops: p.fwdHops,
		})
		if len(p.hops) > p.fwdHops {
			last := len(p.hops) - 1
			rtt := p.arrive[last] + p.sojourn[last] + p.hops[last].linkDelay
			res.Deliveries = append(res.Deliveries, des.Delivery{
				PktID: p.id, FlowID: p.flow, Src: p.dst, Dst: p.src,
				SendTime: p.create, RecvTime: rtt, IsRTT: true,
				Hops: len(p.hops),
			})
		}
	}
	sort.Slice(res.Deliveries, func(i, j int) bool {
		a, b := res.Deliveries[i], res.Deliveries[j]
		if a.RecvTime != b.RecvTime {
			return a.RecvTime < b.RecvTime
		}
		if a.PktID != b.PktID {
			// Secondary key: deliveries that tie on RecvTime order by
			// packet ID so repeated runs produce byte-identical traces.
			return a.PktID < b.PktID
		}
		// A packet's one-way and echo records can tie too: one-way first.
		return !a.IsRTT && b.IsRTT
	})
	for d, es := range byDevice {
		vs := make([]des.Visit, 0, len(es))
		for _, e := range es {
			p := pkts[e.pkt]
			h := p.hops[e.hop]
			vs = append(vs, des.Visit{
				PktID: p.id, FlowID: p.flow, Device: d,
				InPort: h.inPort, OutPort: h.outPort, Size: p.size,
				Class: p.class, Weight: p.weight, Proto: p.proto,
				Arrive: p.arrive[e.hop], Depart: p.arrive[e.hop] + p.sojourn[e.hop],
			})
		}
		sort.Slice(vs, func(i, j int) bool {
			if vs[i].Arrive != vs[j].Arrive {
				return vs[i].Arrive < vs[j].Arrive
			}
			return vs[i].PktID < vs[j].PktID // deterministic tie-break
		})
		res.DeviceVisits[d] = vs
	}
	return res
}

// PartitionDevices splits devices into n balanced shards using
// longest-processing-time-first on the given work estimate. This is the
// model-parallel network decomposition of Fig. 11.
func PartitionDevices(devices []int, work func(int) int, n int) [][]int {
	if n <= 1 {
		return [][]int{append([]int(nil), devices...)}
	}
	sorted := append([]int(nil), devices...)
	sort.Slice(sorted, func(a, b int) bool { return work(sorted[a]) > work(sorted[b]) })
	shards := make([][]int, n)
	loads := make([]int, n)
	for _, d := range sorted {
		best := 0
		for i := 1; i < n; i++ {
			if loads[i] < loads[best] {
				best = i
			}
		}
		shards[best] = append(shards[best], d)
		loads[best] += work(d)
	}
	return shards
}
