package core

import (
	"sort"
)

// StreamPkt is one element of a device's port-indexed packet time series
// (Eq. 2): the packet vector plus its arrival time.
type StreamPkt struct {
	PID    uint64
	FID    int
	Len    int
	Trp    uint8
	InPort int
	Time   float64
}

// ForwardingTensor is the paper's 0/1 PFM tensor F of shape K×K×N
// (Eq. 7): F[i][j][k] = 1 iff the k-th packet of ingress port i forwards
// to egress port j. Building and applying it is the batched equivalent of
// per-packet forwarding.
type ForwardingTensor struct {
	K, N int
	bits []uint8 // K*K*N, row-major (i, j, k)
}

// idx addresses element (i, j, k).
func (f *ForwardingTensor) idx(i, j, k int) int { return (i*f.K+j)*f.N + k }

// At reads F[i][j][k].
func (f *ForwardingTensor) At(i, j, k int) uint8 { return f.bits[f.idx(i, j, k)] }

// BuildForwardingTensor constructs F from the padded ingress streams and
// the forwarding table function (Eq. 6). ingress[i] is the time series of
// port i; streams are padded implicitly — entries beyond a stream's
// length stay zero (the paper's "empty packets").
func BuildForwardingTensor(ingress [][]StreamPkt, forward func(fid, inPort int) int) *ForwardingTensor {
	k := len(ingress)
	n := 0
	for _, s := range ingress {
		if len(s) > n {
			n = len(s)
		}
	}
	f := &ForwardingTensor{K: k, N: n, bits: make([]uint8, k*k*n)}
	for i, s := range ingress {
		for kk, p := range s {
			j := forward(p.FID, i)
			if j >= 0 && j < k {
				f.bits[f.idx(i, j, kk)] = 1
			}
		}
	}
	return f
}

// Apply computes T_out = F · T_in (Eq. 7 without the Delay term): it
// mixes the ingress streams into per-egress-port streams, preserving
// arrival-time order. Packets with no matching tensor entry (dropped by
// forwarding) do not appear in any egress stream.
func (f *ForwardingTensor) Apply(ingress [][]StreamPkt) [][]StreamPkt {
	out := make([][]StreamPkt, f.K)
	for i, s := range ingress {
		for kk, p := range s {
			for j := 0; j < f.K; j++ {
				if f.At(i, j, kk) == 1 {
					out[j] = append(out[j], p)
				}
			}
		}
	}
	for j := range out {
		sort.Slice(out[j], func(a, b int) bool {
			if out[j][a].Time != out[j][b].Time {
				return out[j][a].Time < out[j][b].Time
			}
			return out[j][a].PID < out[j][b].PID
		})
	}
	return out
}

// ForwardDirect is the reference per-packet implementation of the same
// mixing; tests assert Apply ≡ ForwardDirect to validate the tensor
// formulation.
func ForwardDirect(ingress [][]StreamPkt, forward func(fid, inPort int) int) [][]StreamPkt {
	k := len(ingress)
	out := make([][]StreamPkt, k)
	for i, s := range ingress {
		for _, p := range s {
			j := forward(p.FID, i)
			if j >= 0 && j < k {
				out[j] = append(out[j], p)
			}
		}
	}
	for j := range out {
		sort.Slice(out[j], func(a, b int) bool {
			if out[j][a].Time != out[j][b].Time {
				return out[j][a].Time < out[j][b].Time
			}
			return out[j][a].PID < out[j][b].PID
		})
	}
	return out
}
