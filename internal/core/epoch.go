package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
)

// EpochState is the engine's complete mutable fixed-point state at an
// IRSA epoch boundary: everything needed to restore a mid-run engine
// whose continuation is bit-identical to the uninterrupted run. The
// arrival estimates are deliberately absent — they are derived state,
// recomputed exactly from the sojourns by propagate on restore.
//
// When handed to an EpochSink, Sojourns aliases the engine's live
// per-packet buffers and WatchdogTrace aliases the watchdog's internal
// trace: the sink must serialize or deep-copy before returning and must
// never retain or mutate the slices. When used as Config.Resume, the
// engine copies out of it, so the caller's snapshot stays intact.
type EpochState struct {
	// Iter is the number of fully completed IRSA iterations.
	Iter int
	// Delta is the convergence delta of the last completed iteration.
	Delta float64
	// TrafficDigest fingerprints the TGen output (packets, paths, RNG
	// draws): a resume against regenerated traffic that differs in any
	// bit is refused rather than silently diverging.
	TrafficDigest string
	// Sojourns is each packet's predicted per-hop sojourn vector —
	// the per-device stream state of the fixed-point iteration.
	Sojourns [][]float64
	// WatchdogTrace and WatchdogGrowth restore the divergence
	// watchdog, so a resumed run aborts (or doesn't) exactly where the
	// uninterrupted run would.
	WatchdogTrace  []float64
	WatchdogGrowth int
}

// EpochSink receives the engine's state at epoch boundaries (see
// Config.EpochSink). A non-nil error aborts the run with that error.
type EpochSink func(*EpochState) error

// ErrResumeMismatch marks a Config.Resume snapshot that does not match
// the freshly regenerated run: different traffic digest, packet count,
// or hop shape. Resuming such a state would not be a continuation of
// any real run, so the engine refuses it instead of guessing.
var ErrResumeMismatch = errors.New("core: resume snapshot does not match this run")

// trafficDigest hashes the full TGen output bit-exactly: every
// packet's identity, class attributes, creation time, and complete hop
// sequence (devices, ports, rates, delays). Two runs agree on it iff
// their generated workloads — and therefore their RNG draws and
// routing — are identical.
func trafficDigest(pkts []*packet) string {
	h := sha256.New()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w(uint64(len(pkts)))
	for _, p := range pkts {
		w(p.id)
		w(uint64(p.flow))
		w(uint64(p.size))
		w(uint64(p.class))
		w(f64bits(p.weight))
		w(uint64(p.proto))
		w(f64bits(p.create))
		w(uint64(p.src))
		w(uint64(p.dst))
		w(uint64(p.fwdHops))
		w(uint64(len(p.hops)))
		for i := range p.hops {
			hashHop(w, &p.hops[i])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashHop folds one device traversal into the traffic digest.
func hashHop(w func(uint64), hp *hop) {
	w(uint64(hp.device))
	if hp.isHost {
		w(1)
	} else {
		w(0)
	}
	w(uint64(uint32(hp.inPort)))
	w(uint64(uint32(hp.outPort)))
	w(f64bits(hp.rateBps))
	w(f64bits(hp.linkDelay))
}

// f64bits aliases math.Float64bits for the digest loops.
func f64bits(v float64) uint64 { return math.Float64bits(v) }

// restoreEpoch copies a Resume snapshot into the live packet state. It
// validates shape before touching anything: the snapshot must carry one
// sojourn vector per packet with exactly that packet's hop count, and
// its traffic digest must match the regenerated workload.
func restoreEpoch(r *EpochState, pkts []*packet, digest string, maxIter int) error {
	if r.TrafficDigest != digest {
		return fmt.Errorf("%w: traffic digest %.12s… does not match snapshot %.12s…",
			ErrResumeMismatch, digest, r.TrafficDigest)
	}
	if len(r.Sojourns) != len(pkts) {
		return fmt.Errorf("%w: snapshot has %d packets, run generated %d",
			ErrResumeMismatch, len(r.Sojourns), len(pkts))
	}
	if r.Iter < 1 || r.Iter >= maxIter {
		return fmt.Errorf("%w: snapshot iteration %d outside (0, %d)",
			ErrResumeMismatch, r.Iter, maxIter)
	}
	for i, p := range pkts {
		if len(r.Sojourns[i]) != len(p.sojourn) {
			return fmt.Errorf("%w: packet %d has %d hops, snapshot carries %d",
				ErrResumeMismatch, i, len(p.sojourn), len(r.Sojourns[i]))
		}
	}
	for i, p := range pkts {
		copy(p.sojourn, r.Sojourns[i])
	}
	return nil
}

// epochView builds (once per run) the reusable EpochState whose
// Sojourns alias the live packet buffers; refreshing it per epoch is
// then a few scalar stores — the epoch loop stays allocation-free.
func epochView(pkts []*packet, digest string) *EpochState {
	st := &EpochState{TrafficDigest: digest, Sojourns: make([][]float64, len(pkts))}
	for i, p := range pkts {
		st.Sojourns[i] = p.sojourn
	}
	return st
}
