package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"deepqueuenet/internal/des"
	"deepqueuenet/internal/guard"
	"deepqueuenet/internal/ptm"
	"deepqueuenet/internal/topo"
	"deepqueuenet/internal/traffic"
)

// panicModel is a DeviceModel that explodes on first use.
type panicModel struct{}

func (m *panicModel) PredictStream([]ptm.PacketIn, des.SchedKind, float64, int) []float64 {
	panic("mock ptm exploded")
}
func (m *panicModel) CloneModel() DeviceModel { return m }
func (m *panicModel) Ports() int              { return 0 }
func (m *panicModel) Validate() error         { return nil }

// inflatingModel doubles its predicted sojourns on every call: a learned
// model destabilizing over the inference horizon. Shared across clones
// (CloneModel returns the receiver) so growth accumulates across
// iterations; use with Shards <= 1.
type inflatingModel struct{ sojourn float64 }

func (m *inflatingModel) PredictStream(stream []ptm.PacketIn, _ des.SchedKind, _ float64, _ int) []float64 {
	m.sojourn *= 2
	out := make([]float64, len(stream))
	for i := range out {
		out[i] = m.sojourn
	}
	return out
}
func (m *inflatingModel) CloneModel() DeviceModel { return m }
func (m *inflatingModel) Ports() int              { return 0 }
func (m *inflatingModel) Validate() error         { return nil }

// cancelingModel cancels the run's context during its first prediction
// and counts calls, modeling a cancellation that lands mid-iteration.
type cancelingModel struct {
	cancel context.CancelFunc
	calls  atomic.Int64
}

func (m *cancelingModel) PredictStream(stream []ptm.PacketIn, _ des.SchedKind, rateBps float64, _ int) []float64 {
	if m.calls.Add(1) == 1 {
		m.cancel()
	}
	out := make([]float64, len(stream))
	for i := range out {
		out[i] = float64(stream[i].Size*8) / rateBps
	}
	return out
}
func (m *cancelingModel) CloneModel() DeviceModel { return m }
func (m *cancelingModel) Ports() int              { return 0 }
func (m *cancelingModel) Validate() error         { return nil }

// nanModel returns a valid-looking tinyModel poisoned with a NaN weight.
func nanModel(ports int) *ptm.PTM {
	m := tinyModel(ports)
	m.Net.Params()[0].W.Data[0] = math.NaN()
	return m
}

func addTestFlow(sim *Sim, hosts []int) {
	sim.AddFlow(FlowSpec{FlowID: 1, Src: hosts[0], Dst: hosts[2],
		Gen: traffic.NewReplay([]float64{1e-6, 1e-6, 1e-6, 1e-6}, []int{100, 200, 100, 200}, true)})
}

func TestShardPanicIsolated(t *testing.T) {
	bad := &panicModel{}
	victim := -1
	sim, hosts := lineSim(t, Config{
		Sched: des.SchedConfig{Kind: des.FIFO},
		DeviceFor: func(sw int) DeviceModel {
			if victim < 0 {
				victim = sw // first switch asked for becomes the victim
			}
			if sw == victim {
				return bad
			}
			return nil
		},
	})
	addTestFlow(sim, hosts)
	res, err := sim.Run(0.001)
	if err == nil {
		t.Fatal("panicking device model must surface as an error")
	}
	var se *guard.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("want *guard.ShardError, got %T: %v", err, err)
	}
	if se.Device != victim {
		t.Fatalf("ShardError device %d, want %d", se.Device, victim)
	}
	if se.Panic == nil || len(se.Stack) == 0 {
		t.Fatalf("ShardError missing diagnostics: %+v", se)
	}
	if res == nil {
		t.Fatal("partial result must accompany the shard error")
	}
}

func TestShardPanicIsolatedMeasureShards(t *testing.T) {
	// The sequential (MeasureShards) execution path recovers too.
	sim, hosts := lineSim(t, Config{
		Sched:         des.SchedConfig{Kind: des.FIFO},
		MeasureShards: true,
		DeviceFor:     func(int) DeviceModel { return &panicModel{} },
	})
	addTestFlow(sim, hosts)
	_, err := sim.Run(0.001)
	var se *guard.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("want *guard.ShardError, got %v", err)
	}
}

func TestCancellationStopsWithinOneIteration(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := &cancelingModel{cancel: cancel}
	sim, hosts := lineSim(t, Config{
		Sched:      des.SchedConfig{Kind: des.FIFO},
		Iterations: 100,
		DeviceFor:  func(int) DeviceModel { return m },
	})
	addTestFlow(sim, hosts)
	res, err := sim.RunContext(ctx, 0.001)
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("want guard.ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("underlying context error lost: %v", err)
	}
	if res == nil {
		t.Fatal("canceled run must return the partial result")
	}
	if res.Iterations > 2 {
		t.Fatalf("cancel mid-iteration 0 ran %d iterations, want <= 2 of 100", res.Iterations)
	}
}

func TestDeadlineBeforeStart(t *testing.T) {
	//dqnlint:allow detguard test fixture: an already-expired wall-clock deadline; simulated time is untouched
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	sim, hosts := lineSim(t, Config{Sched: des.SchedConfig{Kind: des.FIFO}})
	addTestFlow(sim, hosts)
	_, err := sim.RunContext(ctx, 0.001)
	if !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("want guard.ErrDeadline, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("underlying deadline error lost: %v", err)
	}
}

func TestDivergenceWatchdogTrips(t *testing.T) {
	m := &inflatingModel{sojourn: 1e-6}
	sim, hosts := lineSim(t, Config{
		Sched:      des.SchedConfig{Kind: des.FIFO},
		Iterations: 60,
		Damping:    1, // undamped: let the inflation feed straight through
		DeviceFor:  func(int) DeviceModel { return m },
	})
	addTestFlow(sim, hosts)
	res, err := sim.Run(0.001)
	var de *guard.DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("want *guard.DivergenceError, got %v (res iters %v)", err, res)
	}
	if len(de.Trace) == 0 {
		t.Fatal("DivergenceError must carry the delta trace")
	}
	if res.Iterations >= 60 {
		t.Fatalf("watchdog must abort before maxIter, ran %d", res.Iterations)
	}
	for _, d := range de.Trace {
		if math.IsNaN(d) {
			return // NaN abort is fine too
		}
	}
	last := de.Trace[len(de.Trace)-1]
	if last <= de.Trace[0] {
		t.Fatalf("trace should show growth: %v", de.Trace)
	}
}

func TestNaNSojournTripsWatchdog(t *testing.T) {
	nan := &inflatingModel{sojourn: math.NaN()}
	sim, hosts := lineSim(t, Config{
		Sched:      des.SchedConfig{Kind: des.FIFO},
		Iterations: 60,
		DeviceFor:  func(int) DeviceModel { return nan },
	})
	addTestFlow(sim, hosts)
	_, err := sim.Run(0.001)
	var de *guard.DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("NaN sojourns must trip the watchdog, got %v", err)
	}
	if !strings.Contains(de.Reason, "non-finite") {
		t.Fatalf("reason should flag the non-finite delta: %q", de.Reason)
	}
}

func TestInvalidModelDegradesDevice(t *testing.T) {
	g := topo.Line(3, topo.DefaultLAN)
	hosts := g.Hosts()
	rt, err := g.Route([]topo.FlowDef{{FlowID: 1, Src: hosts[0], Dst: hosts[2]}})
	if err != nil {
		t.Fatal(err)
	}
	bad := g.Switches()[1]
	sim, err := NewSim(g, rt, Config{
		Sched: des.SchedConfig{Kind: des.FIFO},
		Model: tinyModel(4),
		ModelFor: func(sw int) *ptm.PTM {
			if sw == bad {
				return nanModel(4)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addTestFlow(sim, hosts)
	res, err := sim.Run(0.001)
	if err != nil {
		t.Fatalf("one invalid PTM must degrade, not fail: %v", err)
	}
	if !res.Degraded() || len(res.DegradedDevices) != 1 || res.DegradedDevices[0] != bad {
		t.Fatalf("degraded set %v, want [%d]", res.DegradedDevices, bad)
	}
	if !strings.Contains(res.DegradedReasons[bad], "non-finite") {
		t.Fatalf("reason should name the validation failure: %q", res.DegradedReasons[bad])
	}
	if len(res.Deliveries) == 0 {
		t.Fatal("degraded run must still deliver packets")
	}
	for _, d := range res.Deliveries {
		if math.IsNaN(d.RecvTime) || math.IsInf(d.RecvTime, 0) {
			t.Fatalf("degraded run produced non-finite delivery: %+v", d)
		}
	}
}

func TestMissingModelDegradesDevice(t *testing.T) {
	g := topo.Line(3, topo.DefaultLAN)
	hosts := g.Hosts()
	rt, err := g.Route([]topo.FlowDef{{FlowID: 1, Src: hosts[0], Dst: hosts[2]}})
	if err != nil {
		t.Fatal(err)
	}
	covered := g.Switches()[0]
	sim, err := NewSim(g, rt, Config{
		Sched: des.SchedConfig{Kind: des.FIFO},
		ModelFor: func(sw int) *ptm.PTM {
			if sw == covered {
				return tinyModel(4)
			}
			return nil // every other switch has no model at all
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addTestFlow(sim, hosts)
	res, err := sim.Run(0.001)
	if err != nil {
		t.Fatalf("missing per-device models must degrade, not fail: %v", err)
	}
	if len(res.DegradedDevices) != 2 {
		t.Fatalf("degraded set %v, want the 2 uncovered switches", res.DegradedDevices)
	}
	for _, d := range res.DegradedDevices {
		if d == covered {
			t.Fatalf("covered switch %d wrongly degraded (%v)", covered, res.DegradedReasons)
		}
	}
}

func TestUndersizedPerDeviceModelDegrades(t *testing.T) {
	// A per-device override trained for fewer ports than the switch
	// degree degrades that switch instead of producing garbage features.
	g := topo.Line(3, topo.DefaultLAN)
	hosts := g.Hosts()
	rt, _ := g.Route([]topo.FlowDef{{FlowID: 1, Src: hosts[0], Dst: hosts[2]}})
	mid := g.Switches()[1] // degree 3: two neighbours + host
	small := tinyModel(2)
	sim, err := NewSim(g, rt, Config{
		Sched: des.SchedConfig{Kind: des.FIFO},
		Model: tinyModel(4),
		ModelFor: func(sw int) *ptm.PTM {
			if sw == mid {
				return small
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addTestFlow(sim, hosts)
	res, err := sim.Run(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DegradedDevices) != 1 || res.DegradedDevices[0] != mid {
		t.Fatalf("degraded set %v, want [%d]: %v", res.DegradedDevices, mid, res.DegradedReasons)
	}
}

func TestZeroRateLinkRejectedAtNewSim(t *testing.T) {
	g := topo.New()
	s0 := g.AddNode(topo.Switch, "s0")
	s1 := g.AddNode(topo.Switch, "s1")
	h0 := g.AddNode(topo.Host, "h0")
	h1 := g.AddNode(topo.Host, "h1")
	g.Connect(h0, s0, topo.DefaultLAN.RateBps, topo.DefaultLAN.Delay)
	g.Connect(s0, s1, 0, topo.DefaultLAN.Delay) // the broken link
	g.Connect(s1, h1, topo.DefaultLAN.RateBps, topo.DefaultLAN.Delay)
	rt := &topo.Routing{}
	_, err := NewSim(g, rt, Config{Model: tinyModel(4)})
	if err == nil {
		t.Fatal("zero-rate link must be rejected at NewSim")
	}
	if !strings.Contains(err.Error(), "rate must be positive") {
		t.Fatalf("error should explain the zero-rate link: %v", err)
	}
}

func TestCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sim, hosts := lineSim(t, Config{Sched: des.SchedConfig{Kind: des.FIFO}})
	addTestFlow(sim, hosts)
	res, err := sim.RunContext(ctx, 0.001)
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("want guard.ErrCanceled, got %v", err)
	}
	if res == nil {
		t.Fatal("even a pre-start cancel returns a non-nil (empty) result")
	}
	if len(res.Deliveries) != 0 || res.Iterations != 0 {
		t.Fatalf("pre-start cancel must return an empty result, got %d deliveries, %d iterations",
			len(res.Deliveries), res.Iterations)
	}
}

func TestDeterministicDeliveryOrder(t *testing.T) {
	run := func() *Result {
		sim, hosts := lineSim(t, Config{Sched: des.SchedConfig{Kind: des.FIFO}, Echo: true, Shards: 4})
		// Two flows with identical timing force RecvTime ties.
		sim.AddFlow(FlowSpec{FlowID: 1, Src: hosts[0], Dst: hosts[2],
			Gen: traffic.NewReplay([]float64{1e-6, 1e-6, 1e-6}, []int{100, 100, 100}, true)})
		res, err := sim.Run(0.001)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Deliveries) != len(b.Deliveries) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a.Deliveries), len(b.Deliveries))
	}
	for i := range a.Deliveries {
		if a.Deliveries[i] != b.Deliveries[i] {
			t.Fatalf("delivery %d differs between identical runs:\n%+v\n%+v",
				i, a.Deliveries[i], b.Deliveries[i])
		}
	}
}

// TestPropagateFlagsNaNOnFinalHop pins the watchdog evasion fix: a NaN
// sojourn on a packet's FINAL hop never re-enters any arrival estimate
// (the loop adds it after the last comparison), so propagate must flag
// the non-finite departure time itself — otherwise damping keeps the
// hop poisoned forever and the NaN sails into the delivered trace while
// the run "succeeds" at the iteration bound.
func TestPropagateFlagsNaNOnFinalHop(t *testing.T) {
	mk := func(lastSojourn float64) *packet {
		return &packet{
			create:  0,
			hops:    []hop{{linkDelay: 1e-6}, {linkDelay: 1e-6}},
			arrive:  []float64{0, 2e-6},
			sojourn: []float64{1e-6, lastSojourn},
		}
	}
	if d := propagate([]*packet{mk(1e-6)}); math.IsNaN(d) || math.IsInf(d, 0) {
		t.Fatalf("finite packet produced non-finite delta %v", d)
	}
	if d := propagate([]*packet{mk(math.NaN())}); !math.IsNaN(d) {
		t.Fatalf("NaN final-hop sojourn produced delta %v, want NaN for the watchdog", d)
	}
	if d := propagate([]*packet{mk(math.Inf(1))}); !math.IsInf(d, 1) {
		t.Fatalf("Inf final-hop sojourn produced delta %v, want +Inf for the watchdog", d)
	}
}
