package core

import (
	"sort"
	"testing"
)

// partitionInvariants checks the structural contract of PartitionDevices:
// every device appears in exactly one shard, and the LPT balance property
// holds — no shard's load exceeds the lightest shard's load by more than
// one largest work item (otherwise LPT would have placed that item on the
// lighter shard).
func partitionInvariants(t *testing.T, devices []int, work func(int) int, shards [][]int) {
	t.Helper()
	seen := make(map[int]int)
	for _, sh := range shards {
		for _, d := range sh {
			seen[d]++
		}
	}
	if len(seen) != len(devices) {
		t.Fatalf("partition covers %d devices, want %d", len(seen), len(devices))
	}
	maxItem := 0
	for _, d := range devices {
		if seen[d] != 1 {
			t.Fatalf("device %d appears %d times", d, seen[d])
		}
		if w := work(d); w > maxItem {
			maxItem = w
		}
	}
	loads := make([]int, len(shards))
	for i, sh := range shards {
		for _, d := range sh {
			loads[i] += work(d)
		}
	}
	sort.Ints(loads)
	if len(loads) > 1 && loads[len(loads)-1]-loads[0] > maxItem {
		t.Fatalf("imbalance %d exceeds largest item %d (loads %v)",
			loads[len(loads)-1]-loads[0], maxItem, loads)
	}
}

func TestPartitionDevicesMoreShardsThanDevices(t *testing.T) {
	devices := []int{3, 1, 2}
	work := func(d int) int { return d }
	shards := PartitionDevices(devices, work, 8)
	if len(shards) != 8 {
		t.Fatalf("want 8 shards, got %d", len(shards))
	}
	partitionInvariants(t, devices, work, shards)
	empty := 0
	for _, sh := range shards {
		if len(sh) == 0 {
			empty++
		}
	}
	if empty != 5 {
		t.Fatalf("3 devices over 8 shards must leave 5 empty, got %d", empty)
	}
}

func TestPartitionDevicesEmpty(t *testing.T) {
	work := func(int) int { return 1 }
	for _, n := range []int{1, 4} {
		shards := PartitionDevices(nil, work, n)
		if len(shards) != n {
			t.Fatalf("n=%d: got %d shards", n, len(shards))
		}
		for _, sh := range shards {
			if len(sh) != 0 {
				t.Fatalf("n=%d: empty input yielded non-empty shard %v", n, sh)
			}
		}
	}
}

func TestPartitionDevicesSingleShard(t *testing.T) {
	devices := []int{5, 2, 9}
	shards := PartitionDevices(devices, func(int) int { return 1 }, 1)
	if len(shards) != 1 || len(shards[0]) != 3 {
		t.Fatalf("single shard must hold everything: %v", shards)
	}
	// n <= 1 must not alias the caller's slice.
	shards[0][0] = -1
	if devices[0] == -1 {
		t.Fatal("PartitionDevices aliased the input slice")
	}
}

func TestPartitionDevicesAllEqualWork(t *testing.T) {
	devices := make([]int, 12)
	for i := range devices {
		devices[i] = i
	}
	work := func(int) int { return 7 }
	shards := PartitionDevices(devices, work, 4)
	partitionInvariants(t, devices, work, shards)
	for i, sh := range shards {
		if len(sh) != 3 {
			t.Fatalf("equal work must split evenly, shard %d has %d devices", i, len(sh))
		}
	}
}

func TestPartitionDevicesSkewedWork(t *testing.T) {
	// One giant device plus many small ones: the giant must sit alone-ish
	// and the imbalance stays within one item.
	devices := []int{0, 1, 2, 3, 4, 5, 6, 7}
	work := func(d int) int {
		if d == 0 {
			return 100
		}
		return 3
	}
	shards := PartitionDevices(devices, work, 3)
	partitionInvariants(t, devices, work, shards)
	for _, sh := range shards {
		for _, d := range sh {
			if d == 0 && len(sh) != 1 {
				t.Fatalf("giant device must be alone on its shard, got %v", sh)
			}
		}
	}
}

func TestPartitionDevicesZeroWork(t *testing.T) {
	devices := []int{1, 2, 3, 4}
	work := func(int) int { return 0 }
	shards := PartitionDevices(devices, work, 2)
	partitionInvariants(t, devices, work, shards)
}
