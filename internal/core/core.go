// Package core is DeepQueueNet itself: the packet-stream and device
// models of §3.2, network composition with one-to-one topology
// correspondence (SInit, §3.1), the forwarding-tensor PFM (Eqs. 6–7), the
// PTM-driven device operators, and the IRSA execution engine (SRun,
// §3.2.4) with shard-parallel inference — the CPU analogue of the paper's
// multi-GPU model parallelism (Fig. 11).
package core

import (
	"errors"
	"fmt"
	"sort"

	"deepqueuenet/internal/des"
	"deepqueuenet/internal/metrics"
	"deepqueuenet/internal/ptm"
	"deepqueuenet/internal/topo"
	"deepqueuenet/internal/traffic"
)

// FlowSpec describes one simulated flow: endpoints, scheduling class
// attributes (Eqs. 8–9), and the TGen arrival generator.
type FlowSpec struct {
	FlowID int
	Src    int // host node ID
	Dst    int // host node ID
	Class  int
	Weight float64
	Proto  uint8
	Gen    traffic.Generator
	Start  float64
	Stop   float64 // no arrivals at or after (0 = run duration)
}

// Config configures a DeepQueueNet simulation.
type Config struct {
	// Sched is the TM configuration of every switch (overridable).
	Sched des.SchedConfig
	// SchedOverride returns a per-switch scheduler config.
	SchedOverride func(switchID int) (des.SchedConfig, bool)
	// Echo reflects packets at destinations to measure RTT.
	Echo bool
	// Model is the default trained device model for all switches.
	Model *ptm.PTM
	// ModelFor returns a per-switch model (nil to use Model).
	ModelFor func(switchID int) *ptm.PTM
	// DeviceFor returns a per-switch DeviceModel implementation,
	// overriding Model/ModelFor for that switch (nil to fall through).
	// This is the seam for alternative inference backends and for fault
	// injection in tests.
	DeviceFor func(switchID int) DeviceModel
	// WrapDevice, when set, wraps every switch's resolved and validated
	// device model just before the run — the job-level seam for fault
	// injection (internal/chaos) and instrumentation. Returning the
	// model unchanged is the identity; returning nil degrades the
	// device to the exact FIFO-serialization fallback as if its model
	// had failed validation.
	WrapDevice func(switchID int, m DeviceModel) DeviceModel
	// Shards is the number of parallel inference shards ("GPUs").
	// 0 means 1.
	Shards int
	// Iterations caps IRSA iterations; 0 uses diameter(G) (Theorem 3.1).
	Iterations int
	// NoSEC disables statistical error correction (ablation switch).
	NoSEC bool
	// ConvergeEps stops IRSA early when no departure time moves by more
	// than this (seconds). 0 uses 1 ns.
	ConvergeEps float64
	// Damping blends each iteration's predicted sojourns with the
	// previous estimate: s ← Damping·ŝ + (1−Damping)·s. 1 disables
	// damping; 0 uses the default 0.7. Damping keeps the fixed-point
	// iteration contractive when per-device prediction error feeds back
	// through downstream arrival estimates at high load.
	Damping float64
	// MeasureShards runs the shards sequentially and records each
	// shard's compute time in Result.ShardWork. The resulting
	// total-work/critical-path ratio is the model-parallel speedup an
	// N-accelerator deployment achieves (Fig. 11 / Table 7) — measurable
	// even on a single-CPU host where wall-clock parallel speedup is
	// physically impossible.
	MeasureShards bool
	// DivergePatience is the number of consecutive iterations the
	// convergence delta may grow before the divergence watchdog aborts
	// the run with a DivergenceError. 0 uses guard.DefaultPatience;
	// NaN/Inf deltas abort immediately regardless.
	DivergePatience int
	// Observer, when non-nil, receives per-iteration and per-device-
	// inference telemetry (internal/obs.EngineObserver is the standard
	// implementation). nil costs one pointer check per call site; the
	// observer's clock reads never feed back into simulation state, so
	// attaching one cannot perturb results.
	Observer Observer
	// EpochSink, when non-nil together with EpochEvery > 0, receives
	// the engine's complete fixed-point state every EpochEvery
	// completed IRSA iterations (internal/checkpoint.Writer is the
	// standard persistent implementation). The handed EpochState
	// aliases live engine buffers — sinks serialize before returning.
	// A sink error aborts the run with that error. nil costs one
	// pointer check per iteration.
	//
	// With a sink attached, a canceled or expiring context no longer
	// aborts mid-iteration: the engine finishes the in-flight iteration
	// to reach a consistent boundary, hands the sink one final snapshot,
	// and then returns the cancel error — trading at most one
	// iteration of cancellation latency for zero lost progress. This is
	// what lets a draining server persist a resumable checkpoint inside
	// its SIGTERM budget.
	EpochSink EpochSink
	// EpochEvery is the checkpoint cadence in IRSA iterations;
	// <= 0 disables epoch snapshots even when EpochSink is set.
	EpochEvery int
	// Resume, when non-nil, restores a mid-run snapshot captured by an
	// EpochSink instead of starting from the initial estimate: the run
	// continues from Resume.Iter with bit-identical state. The snapshot
	// is validated against the freshly regenerated traffic (digest,
	// packet count, hop shape) and refused with ErrResumeMismatch on
	// any difference.
	Resume *EpochState
}

// hop is one device traversal on a packet's path.
type hop struct {
	device    int // topo node ID (switch) or host ID (host egress)
	isHost    bool
	inPort    int
	outPort   int
	rateBps   float64 // egress port line rate
	linkDelay float64 // propagation delay after this device
}

// packet is one simulated packet with its full, PFM-determined path.
type packet struct {
	id     uint64
	flow   int
	size   int
	class  int
	weight float64
	proto  uint8
	create float64
	echo   bool // this record is the echo leg
	src    int
	dst    int

	hops    []hop
	fwdHops int       // hops belonging to the forward leg
	arrive  []float64 // arrival estimate at each hop
	sojourn []float64 // predicted sojourn at each hop
}

// Sim is a composed DeepQueueNet model ready to run: the neural-network
// architecture maps one-to-one to the target topology.
type Sim struct {
	G   *topo.Graph
	RT  *topo.Routing
	Cfg Config

	flows []FlowSpec
}

// NewSim validates and creates a simulation (the SInit stage). The
// topology is structurally validated here — in particular a zero- or
// negative-rate link, which would otherwise produce +Inf transmission
// times during inference, is rejected with a descriptive error.
func NewSim(g *topo.Graph, rt *topo.Routing, cfg Config) (*Sim, error) {
	if cfg.Model == nil && cfg.ModelFor == nil && cfg.DeviceFor == nil {
		return nil, errors.New("core: no device model configured")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid topology: %w", err)
	}
	if cfg.Model != nil {
		if d := g.MaxSwitchDegree(); cfg.Model.NumPorts < d {
			return nil, fmt.Errorf("core: device model trained for %d ports cannot drive degree-%d switches",
				cfg.Model.NumPorts, d)
		}
	}
	return &Sim{G: g, RT: rt, Cfg: cfg}, nil
}

// AddFlow registers a flow with the simulation.
func (s *Sim) AddFlow(f FlowSpec) {
	if f.Gen == nil {
		panic("core: flow without generator")
	}
	s.flows = append(s.flows, f)
}

// Result is the simulation output: end-to-end deliveries plus the
// per-device predicted packet traces — the packet-level visibility the
// paper's DNN-based EPEs lack.
type Result struct {
	Deliveries   []des.Delivery
	DeviceVisits map[int][]des.Visit
	Iterations   int // IRSA iterations actually executed
	Diameter     int // topology diameter
	Bound        int // Theorem 3.1 iteration bound (longest hop sequence)
	// ShardWork is the per-shard compute time accumulated over all
	// iterations (filled when Config.MeasureShards is set).
	ShardWork []float64
	// DegradedDevices lists (sorted) the devices whose PTM was missing
	// or failed validation and that therefore ran the exact
	// transmission-time + FIFO-serialization fallback model. A non-empty
	// set means the run completed with reduced accuracy on those devices
	// rather than failing.
	DegradedDevices []int
	// DegradedReasons explains, per degraded device, why its model was
	// rejected.
	DegradedReasons map[int]string
}

// Degraded reports whether any device ran the fallback model.
func (r *Result) Degraded() bool { return len(r.DegradedDevices) > 0 }

// PathDelays mirrors des.Network.PathDelays for metric comparison.
func (r *Result) PathDelays(rtt bool) metrics.PathSamples {
	out := metrics.PathSamples{}
	for _, d := range r.Deliveries {
		if d.IsRTT != rtt {
			continue
		}
		src, dst := d.Src, d.Dst
		if rtt {
			src, dst = d.Dst, d.Src
		}
		k := des.PathKey(src, dst)
		out[k] = append(out[k], d.Delay())
	}
	return out
}

// schedOf resolves the scheduler config for a switch.
func (s *Sim) schedOf(sw int) des.SchedConfig {
	if s.Cfg.SchedOverride != nil {
		if c, ok := s.Cfg.SchedOverride(sw); ok {
			return c
		}
	}
	return s.Cfg.Sched
}

// modelOf resolves the PTM for a switch.
func (s *Sim) modelOf(sw int) *ptm.PTM {
	if s.Cfg.ModelFor != nil {
		if m := s.Cfg.ModelFor(sw); m != nil {
			return m
		}
	}
	return s.Cfg.Model
}

// genPackets runs the TGen stage: materialize every packet with its full
// forwarding path (hosts' egress → switch chain → destination, plus the
// echo leg when enabled).
func (s *Sim) genPackets(duration float64) ([]*packet, error) {
	var pkts []*packet
	var id uint64
	for _, f := range s.flows {
		path := s.RT.Paths[f.FlowID]
		if len(path) < 2 {
			return nil, fmt.Errorf("core: flow %d has no routed path", f.FlowID)
		}
		stop := f.Stop
		if stop <= 0 || stop > duration {
			stop = duration
		}
		t := f.Start
		for {
			gap, size := f.Gen.NextArrival()
			t += gap
			if t >= stop {
				break
			}
			id++
			p := &packet{
				id: id, flow: f.FlowID, size: size, class: f.Class,
				weight: f.Weight, proto: f.Proto, create: t,
				src: f.Src, dst: f.Dst,
			}
			p.hops = s.pathHops(path, f.FlowID)
			p.fwdHops = len(p.hops)
			if s.Cfg.Echo {
				// The echo leg follows the routed reverse path: ECMP
				// tie-breaks differ by direction, so it need not be the
				// reversed forward path (it must match the DES exactly).
				rev := s.RT.PathsRev[f.FlowID]
				if len(rev) == 0 {
					rev = reversePath(path)
				}
				p.hops = append(p.hops, s.pathHops(rev, f.FlowID)...)
			}
			p.arrive = make([]float64, len(p.hops))
			p.sojourn = make([]float64, len(p.hops))
			pkts = append(pkts, p)
		}
	}
	sort.Slice(pkts, func(i, j int) bool { return pkts[i].create < pkts[j].create })
	return pkts, nil
}

// pathHops expands one direction of a routed node path into device hops:
// the source host's egress followed by each switch traversal. Hosts have
// exactly one port (port 0).
func (s *Sim) pathHops(path []int, flowID int) []hop {
	hops := make([]hop, 0, len(path)-1)
	// Source host egress.
	src := path[0]
	hostPort := s.G.Ports[src][0]
	hops = append(hops, hop{
		device: src, isHost: true, inPort: -1, outPort: 0,
		rateBps: hostPort.RateBps, linkDelay: hostPort.Delay,
	})
	inPort := hostPort.PeerPort
	for i := 1; i+1 < len(path); i++ {
		sw := path[i]
		out := s.RT.Lookup(sw, flowID, inPort)
		if out < 0 {
			// Shouldn't happen with validated routing; drop marker.
			out = 0
		}
		port := s.G.Ports[sw][out]
		hops = append(hops, hop{
			device: sw, isHost: false, inPort: inPort, outPort: out,
			rateBps: port.RateBps, linkDelay: port.Delay,
		})
		inPort = port.PeerPort
	}
	return hops
}

// reversePath reverses a node path (the echo leg).
func reversePath(path []int) []int {
	out := make([]int, len(path))
	for i, n := range path {
		out[len(path)-1-i] = n
	}
	return out
}
