package core

import (
	"testing"

	"deepqueuenet/internal/des"
	"deepqueuenet/internal/ptm"
	"deepqueuenet/internal/topo"
	"deepqueuenet/internal/traffic"
)

// tinyModel builds an untrained PTM adequate for structural tests.
func tinyModel(ports int) *ptm.PTM {
	m, err := ptm.New(ptm.Arch{TimeSteps: 8, Margin: 2, Embed: 4, BLSTM1: 4, BLSTM2: 4,
		Heads: 1, DK: 2, DV: 2, HeadOut: 4}, ports, 1)
	if err != nil {
		panic(err)
	}
	m.Feat = &ptm.MinMax{Min: make([]float64, ptm.NumFeatures), Max: make([]float64, ptm.NumFeatures)}
	for i := range m.Feat.Max {
		m.Feat.Max[i] = 1
	}
	m.TargetMax = 1
	return m
}

func lineSim(t *testing.T, cfg Config) (*Sim, []int) {
	t.Helper()
	g := topo.Line(3, topo.DefaultLAN)
	hosts := g.Hosts()
	rt, err := g.Route([]topo.FlowDef{{FlowID: 1, Src: hosts[0], Dst: hosts[2]}})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Model == nil {
		cfg.Model = tinyModel(4)
	}
	sim, err := NewSim(g, rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim, hosts
}

func TestGenPacketsRespectsStop(t *testing.T) {
	sim, hosts := lineSim(t, Config{Sched: des.SchedConfig{Kind: des.FIFO}})
	sim.AddFlow(FlowSpec{FlowID: 1, Src: hosts[0], Dst: hosts[2],
		Gen:  traffic.NewReplay([]float64{1e-5, 1e-5, 1e-5, 1e-5}, []int{100, 100, 100, 100}, true),
		Stop: 2.5e-5})
	pkts, err := sim.genPackets(1)
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals at 10, 20 µs are in; 30 µs is at/after Stop.
	if len(pkts) != 2 {
		t.Fatalf("%d packets, want 2", len(pkts))
	}
	for _, p := range pkts {
		if p.create >= 2.5e-5 {
			t.Fatalf("packet created at %v past stop", p.create)
		}
	}
}

func TestGenPacketsEchoDoublesHops(t *testing.T) {
	simNo, hosts := lineSim(t, Config{Sched: des.SchedConfig{Kind: des.FIFO}})
	simNo.AddFlow(FlowSpec{FlowID: 1, Src: hosts[0], Dst: hosts[2],
		Gen: traffic.NewReplay([]float64{1e-6}, []int{100}, false)})
	pktsNo, _ := simNo.genPackets(1)

	simEcho, hostsE := lineSim(t, Config{Sched: des.SchedConfig{Kind: des.FIFO}, Echo: true})
	simEcho.AddFlow(FlowSpec{FlowID: 1, Src: hostsE[0], Dst: hostsE[2],
		Gen: traffic.NewReplay([]float64{1e-6}, []int{100}, false)})
	pktsEcho, _ := simEcho.genPackets(1)

	if len(pktsNo) != 1 || len(pktsEcho) != 1 {
		t.Fatal("packet counts")
	}
	if got := len(pktsEcho[0].hops); got != 2*len(pktsNo[0].hops) {
		t.Fatalf("echo hops %d, want %d", got, 2*len(pktsNo[0].hops))
	}
	if pktsEcho[0].fwdHops != len(pktsNo[0].hops) {
		t.Fatalf("fwdHops %d", pktsEcho[0].fwdHops)
	}
}

func TestResultOneWayAndRTTDeliveries(t *testing.T) {
	sim, hosts := lineSim(t, Config{Sched: des.SchedConfig{Kind: des.FIFO}, Echo: true})
	sim.AddFlow(FlowSpec{FlowID: 1, Src: hosts[0], Dst: hosts[2],
		Gen: traffic.NewReplay([]float64{1e-6}, []int{100}, false)})
	res, err := sim.Run(0.001)
	if err != nil {
		t.Fatal(err)
	}
	oneWay := res.PathDelays(false)
	rtt := res.PathDelays(true)
	key := des.PathKey(hosts[0], hosts[2])
	if len(oneWay[key]) != 1 || len(rtt[key]) != 1 {
		t.Fatalf("deliveries: oneway %v rtt %v", oneWay, rtt)
	}
	if rtt[key][0] <= oneWay[key][0] {
		t.Fatalf("rtt %v <= one-way %v", rtt[key][0], oneWay[key][0])
	}
}

func TestSchedOverrideAndModelFor(t *testing.T) {
	g := topo.Line(3, topo.DefaultLAN)
	hosts := g.Hosts()
	rt, _ := g.Route([]topo.FlowDef{{FlowID: 1, Src: hosts[0], Dst: hosts[2]}})
	special := g.Switches()[0]
	base := tinyModel(4)
	alt := tinyModel(4)
	sim, err := NewSim(g, rt, Config{
		Sched: des.SchedConfig{Kind: des.FIFO},
		Model: base,
		SchedOverride: func(sw int) (des.SchedConfig, bool) {
			if sw == special {
				return des.SchedConfig{Kind: des.SP, Classes: 2}, true
			}
			return des.SchedConfig{}, false
		},
		ModelFor: func(sw int) *ptm.PTM {
			if sw == special {
				return alt
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.schedOf(special); got.Kind != des.SP {
		t.Fatalf("override not applied: %v", got)
	}
	if got := sim.schedOf(special + 1); got.Kind != des.FIFO {
		t.Fatalf("default sched lost: %v", got)
	}
	if sim.modelOf(special) != alt {
		t.Fatal("ModelFor not applied")
	}
	if sim.modelOf(special+1) != base {
		t.Fatal("default model lost")
	}
}

func TestRunWithoutFlows(t *testing.T) {
	sim, _ := lineSim(t, Config{Sched: des.SchedConfig{Kind: des.FIFO}})
	res, err := sim.Run(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deliveries) != 0 {
		t.Fatal("deliveries from empty simulation")
	}
}

func TestAddFlowNilGenPanics(t *testing.T) {
	sim, hosts := lineSim(t, Config{Sched: des.SchedConfig{Kind: des.FIFO}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sim.AddFlow(FlowSpec{FlowID: 1, Src: hosts[0], Dst: hosts[2]})
}

func TestDampingClampedToValidRange(t *testing.T) {
	// Damping > 1 must behave as 1 (pure updates) without error.
	sim, hosts := lineSim(t, Config{Sched: des.SchedConfig{Kind: des.FIFO}, Damping: 5})
	sim.AddFlow(FlowSpec{FlowID: 1, Src: hosts[0], Dst: hosts[2],
		Gen: traffic.NewReplay([]float64{1e-6}, []int{100}, false)})
	if _, err := sim.Run(0.001); err != nil {
		t.Fatal(err)
	}
}
