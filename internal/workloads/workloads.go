// Package workloads builds the canonical datacenter and WAN traffic
// patterns used to exercise network simulations: permutation, stride,
// all-to-all, incast, and hotspot. Each pattern yields routed FlowDefs
// plus a sharing profile so offered rates can be calibrated against the
// most-loaded link — the methodology behind the paper's load-factor
// sweeps (§5.2, §6.1).
package workloads

import (
	"errors"
	"fmt"

	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/topo"
)

// Pattern names a traffic pattern family.
type Pattern int

// Patterns.
const (
	// Permutation: each host sends one flow to a distinct random host.
	Permutation Pattern = iota
	// Stride: host i sends to host (i+stride) mod N.
	Stride
	// AllToAll: every ordered host pair gets a flow.
	AllToAll
	// Incast: all hosts send to one victim host.
	Incast
	// Hotspot: a fraction of hosts send to one hotspot, the rest follow
	// a permutation.
	Hotspot
)

// String returns the pattern name.
func (p Pattern) String() string {
	switch p {
	case Permutation:
		return "permutation"
	case Stride:
		return "stride"
	case AllToAll:
		return "all-to-all"
	case Incast:
		return "incast"
	case Hotspot:
		return "hotspot"
	}
	return "?"
}

// Spec parameterizes pattern construction.
type Spec struct {
	Pattern Pattern
	Seed    uint64
	// StrideBy sets the stride (default N/2).
	StrideBy int
	// Victim selects the incast/hotspot destination index into Hosts()
	// (default 0).
	Victim int
	// HotFraction is the fraction of hosts targeting the hotspot
	// (default 0.5).
	HotFraction float64
}

// Build returns the flows of the pattern over g's hosts.
func Build(g *topo.Graph, spec Spec) ([]topo.FlowDef, error) {
	hosts := g.Hosts()
	n := len(hosts)
	if n < 2 {
		return nil, errors.New("workloads: need at least two hosts")
	}
	victim := spec.Victim
	if victim < 0 || victim >= n {
		victim = 0
	}
	var flows []topo.FlowDef
	add := func(src, dst int) {
		flows = append(flows, topo.FlowDef{FlowID: len(flows) + 1, Src: src, Dst: dst})
	}
	switch spec.Pattern {
	case Permutation:
		r := rng.New(spec.Seed)
		perm := r.Perm(n)
		for i := range perm {
			if perm[i] == i {
				j := (i + 1) % n
				perm[i], perm[j] = perm[j], perm[i]
			}
		}
		for i := range hosts {
			add(hosts[i], hosts[perm[i]])
		}
	case Stride:
		stride := spec.StrideBy
		if stride <= 0 {
			stride = n / 2
		}
		if stride%n == 0 {
			return nil, fmt.Errorf("workloads: stride %d is a multiple of %d hosts", stride, n)
		}
		for i := range hosts {
			add(hosts[i], hosts[(i+stride)%n])
		}
	case AllToAll:
		for i := range hosts {
			for j := range hosts {
				if i != j {
					add(hosts[i], hosts[j])
				}
			}
		}
	case Incast:
		for i := range hosts {
			if i != victim {
				add(hosts[i], hosts[victim])
			}
		}
	case Hotspot:
		frac := spec.HotFraction
		if frac <= 0 || frac > 1 {
			frac = 0.5
		}
		r := rng.New(spec.Seed)
		perm := r.Perm(n)
		hot := int(frac * float64(n))
		count := 0
		for i := range hosts {
			if i == victim {
				continue
			}
			if count < hot {
				add(hosts[i], hosts[victim])
				count++
				continue
			}
			dst := perm[i]
			if dst == i || hosts[dst] == hosts[victim] {
				dst = (i + 1) % n
				if dst == victim {
					dst = (dst + 1) % n
				}
			}
			add(hosts[i], hosts[dst])
		}
	default:
		return nil, fmt.Errorf("workloads: unknown pattern %v", spec.Pattern)
	}
	return flows, nil
}

// Sharing describes how flows pile onto directed links.
type Sharing struct {
	// MaxFlowsPerLink is the worst-case flow count on one directed link
	// (counting echo legs when echo is true).
	MaxFlowsPerLink int
	// Links is the number of distinct directed links carrying traffic.
	Links int
}

// Analyze routes the flows and computes the sharing profile used for
// load calibration: per-flow load = target link load / MaxFlowsPerLink.
func Analyze(g *topo.Graph, flows []topo.FlowDef, echo bool) (*topo.Routing, Sharing, error) {
	rt, err := g.Route(flows)
	if err != nil {
		return nil, Sharing{}, err
	}
	type dirLink struct{ a, b int }
	share := map[dirLink]int{}
	count := func(path []int) {
		for i := 0; i+1 < len(path); i++ {
			share[dirLink{path[i], path[i+1]}]++
		}
	}
	for _, f := range flows {
		count(rt.Paths[f.FlowID])
		if echo {
			count(rt.PathsRev[f.FlowID])
		}
	}
	s := Sharing{Links: len(share), MaxFlowsPerLink: 1}
	for _, c := range share {
		if c > s.MaxFlowsPerLink {
			s.MaxFlowsPerLink = c
		}
	}
	return rt, s, nil
}
