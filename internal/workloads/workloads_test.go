package workloads

import (
	"testing"
	"testing/quick"

	"deepqueuenet/internal/topo"
)

func hostsOf(g *topo.Graph) map[int]bool {
	m := map[int]bool{}
	for _, h := range g.Hosts() {
		m[h] = true
	}
	return m
}

func checkFlows(t *testing.T, g *topo.Graph, flows []topo.FlowDef) {
	t.Helper()
	hosts := hostsOf(g)
	seen := map[int]bool{}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatalf("self flow %+v", f)
		}
		if !hosts[f.Src] || !hosts[f.Dst] {
			t.Fatalf("non-host endpoint %+v", f)
		}
		if seen[f.FlowID] {
			t.Fatalf("duplicate flow ID %d", f.FlowID)
		}
		seen[f.FlowID] = true
	}
}

func TestPermutationCoversAllHosts(t *testing.T) {
	g := topo.FatTree(topo.FatTree16, topo.DefaultLAN)
	flows, err := Build(g, Spec{Pattern: Permutation, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkFlows(t, g, flows)
	if len(flows) != 16 {
		t.Fatalf("%d flows", len(flows))
	}
	srcs := map[int]bool{}
	for _, f := range flows {
		srcs[f.Src] = true
	}
	if len(srcs) != 16 {
		t.Fatal("not every host sends")
	}
}

func TestStride(t *testing.T) {
	g := topo.Line(6, topo.DefaultLAN)
	flows, err := Build(g, Spec{Pattern: Stride, StrideBy: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkFlows(t, g, flows)
	hosts := g.Hosts()
	if flows[0].Src != hosts[0] || flows[0].Dst != hosts[2] {
		t.Fatalf("stride mapping %+v", flows[0])
	}
	// Stride multiple of N is degenerate.
	if _, err := Build(g, Spec{Pattern: Stride, StrideBy: 6}); err == nil {
		t.Fatal("degenerate stride accepted")
	}
}

func TestAllToAll(t *testing.T) {
	g := topo.Star(4, topo.DefaultLAN)
	flows, err := Build(g, Spec{Pattern: AllToAll})
	if err != nil {
		t.Fatal(err)
	}
	checkFlows(t, g, flows)
	if len(flows) != 4*3 {
		t.Fatalf("%d flows", len(flows))
	}
}

func TestIncast(t *testing.T) {
	g := topo.Star(5, topo.DefaultLAN)
	flows, err := Build(g, Spec{Pattern: Incast, Victim: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkFlows(t, g, flows)
	victim := g.Hosts()[2]
	if len(flows) != 4 {
		t.Fatalf("%d flows", len(flows))
	}
	for _, f := range flows {
		if f.Dst != victim {
			t.Fatalf("incast flow to %d", f.Dst)
		}
	}
	// Incast sharing concentrates on the victim's link.
	_, sh, err := Analyze(g, flows, false)
	if err != nil {
		t.Fatal(err)
	}
	if sh.MaxFlowsPerLink != 4 {
		t.Fatalf("incast max sharing %d, want 4", sh.MaxFlowsPerLink)
	}
}

func TestHotspot(t *testing.T) {
	g := topo.FatTree(topo.FatTree16, topo.DefaultLAN)
	flows, err := Build(g, Spec{Pattern: Hotspot, Seed: 5, HotFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	checkFlows(t, g, flows)
	victim := g.Hosts()[0]
	hot := 0
	for _, f := range flows {
		if f.Dst == victim {
			hot++
		}
	}
	if hot < 6 || hot > 9 {
		t.Fatalf("%d hotspot flows of %d", hot, len(flows))
	}
}

func TestAnalyzeEchoDoublesDirections(t *testing.T) {
	g := topo.Line(3, topo.DefaultLAN)
	flows, err := Build(g, Spec{Pattern: Stride, StrideBy: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, noEcho, err := Analyze(g, flows, false)
	if err != nil {
		t.Fatal(err)
	}
	_, withEcho, err := Analyze(g, flows, true)
	if err != nil {
		t.Fatal(err)
	}
	if withEcho.MaxFlowsPerLink < noEcho.MaxFlowsPerLink {
		t.Fatalf("echo reduced sharing: %d vs %d", withEcho.MaxFlowsPerLink, noEcho.MaxFlowsPerLink)
	}
	if withEcho.Links < noEcho.Links {
		t.Fatalf("echo reduced link coverage")
	}
}

// Property: every pattern yields valid, routable flows on a torus.
func TestAllPatternsRoutable(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g := topo.Torus2D(3, 3, topo.DefaultLAN)
		for _, p := range []Pattern{Permutation, Stride, AllToAll, Incast, Hotspot} {
			flows, err := Build(g, Spec{Pattern: p, Seed: seed})
			if err != nil {
				return false
			}
			if _, _, err := Analyze(g, flows, true); err != nil {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 10})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTooFewHosts(t *testing.T) {
	g := topo.New()
	g.AddNode(topo.Host, "h")
	if _, err := Build(g, Spec{Pattern: Permutation}); err == nil {
		t.Fatal("single-host pattern accepted")
	}
}
