package queueing

import (
	"math"
	"testing"

	"deepqueuenet/internal/des"
	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/topo"
	"deepqueuenet/internal/traffic"
)

func TestMM1Formulas(t *testing.T) {
	// ρ = 0.5: E[T] = 1/(µ−λ) = 0.002; P(0) = 0.5.
	et, err := MM1MeanSojourn(500, 1000)
	if err != nil || math.Abs(et-0.002) > 1e-12 {
		t.Fatalf("E[T] %v %v", et, err)
	}
	p0, _ := MM1QueueLenPMF(500, 1000, 0)
	if math.Abs(p0-0.5) > 1e-12 {
		t.Fatalf("P(0) %v", p0)
	}
	sum := 0.0
	for n := 0; n < 200; n++ {
		p, _ := MM1QueueLenPMF(500, 1000, n)
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF sums to %v", sum)
	}
	if _, err := MM1MeanSojourn(2, 1); err == nil {
		t.Fatal("unstable accepted")
	}
}

func TestMD1IsHalfOfMM1Wait(t *testing.T) {
	// M/M/1 wait = ρ/(µ(1−ρ)); M/D/1 wait is exactly half.
	lambda, mu := 600.0, 1000.0
	wd, err := MD1MeanWait(lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	wg, err := MG1MeanWait(lambda, mu, 1) // SCV 1 = exponential
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wg-2*wd) > 1e-12 {
		t.Fatalf("M/D/1 %v vs M/G/1(C²=1) %v", wd, wg)
	}
	// M/G/1 with SCV 0 equals M/D/1.
	w0, _ := MG1MeanWait(lambda, mu, 0)
	if math.Abs(w0-wd) > 1e-15 {
		t.Fatalf("PK with C²=0: %v vs %v", w0, wd)
	}
}

func TestKingmanReducesToMM1(t *testing.T) {
	// Ca²=Cs²=1 recovers the exact M/M/1 wait.
	lambda, mu := 400.0, 1000.0
	k, err := KingmanGG1Wait(lambda, mu, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := lambda / (mu * (mu - lambda)) // ρ/(µ−λ)·... = ρ/(µ(1−ρ))
	if math.Abs(k-want) > 1e-12 {
		t.Fatalf("Kingman %v, want %v", k, want)
	}
}

func TestMM1KBlockingMatchesDES(t *testing.T) {
	// Finite buffer K (queue + in service): compare drop fraction.
	const lambda, mu = 900.0, 1000.0
	const K = 5
	theory, err := MM1KBlocking(lambda, mu, K)
	if err != nil {
		t.Fatal(err)
	}

	// DES: one switch, exponential sizes → exponential service. The DES
	// scheduler capacity counts queued packets only; system capacity is
	// queue + 1 in service, so Capacity = K−1 models an M/M/1/K system.
	const meanSize = 1250.0 // bytes; at 10 Mb/s → µ = 1000/s
	const rate = 10e6
	g := topo.Star(2, topo.LinkParams{RateBps: rate, Delay: 1e-6})
	hosts := g.Hosts()
	flows := []topo.FlowDef{{FlowID: 1, Src: hosts[0], Dst: hosts[1]}}
	rt, _ := g.Route(flows)
	net := des.Build(g, rt, des.NetConfig{Sched: des.SchedConfig{Kind: des.FIFO, Capacity: K - 1}})
	r := rng.New(71)
	sizes := &traffic.ExpSize{MeanBytes: meanSize, R: r.Split()}
	net.AddFlow(hosts[0], des.Flow{FlowID: 1, Dst: hosts[1],
		Source: traffic.NewPoisson(lambda, sizes, r.Split()), Stop: 60})
	net.Run(61)

	sw := g.Switches()[0]
	drops := net.Trace.Drops[sw]
	total := 0
	for _, v := range net.Trace.ByDevice[sw] {
		_ = v
		total++
	}
	got := float64(drops) / float64(total)
	if math.Abs(got-theory) > 0.02 {
		t.Fatalf("blocking: DES %v vs theory %v", got, theory)
	}
}

func TestMD1MatchesLDQBDLimit(t *testing.T) {
	// The LDQBD with Poisson arrivals and one class is M/M/1; its mean
	// queue length must satisfy Little's law against MM1MeanSojourn.
	lambda, mu := 700.0, 1000.0
	m := &Model{Arrivals: traffic.PoissonMAP(lambda), Probs: []float64{1},
		Mu: mu, Weights: []float64{1}, Disc: WFQDisc}
	sol, err := m.Solve(80)
	if err != nil {
		t.Fatal(err)
	}
	et, _ := MM1MeanSojourn(lambda, mu)
	littleN := lambda * et
	if math.Abs(sol.MeanQueueLen(0)-littleN) > 0.02 {
		t.Fatalf("LDQBD mean %v vs Little %v", sol.MeanQueueLen(0), littleN)
	}
}
