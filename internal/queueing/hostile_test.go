package queueing

import (
	"errors"
	"math"
	"testing"
)

// TestHostileRates drives every closed form over hostile rate inputs:
// NaN, ±Inf, zeros, and negatives must all be rejected with a
// descriptive error, never silently propagated. The NaN rows are the
// regression cases for the comparison-only guard this suite replaced
// (`NaN <= 0` and `NaN >= mu` are both false, so NaN used to sail
// through checkStable and poison the result).
func TestHostileRates(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name       string
		lambda, mu float64
	}{
		{"nan lambda", nan, 1000},
		{"nan mu", 500, nan},
		{"both nan", nan, nan},
		{"+inf lambda", inf, 1000},
		{"-inf lambda", -inf, 1000},
		{"+inf mu", 500, inf},
		{"-inf mu", 500, -inf},
		{"zero lambda", 0, 1000},
		{"zero mu", 500, 0},
		{"negative lambda", -1, 1000},
		{"negative mu", 500, -1},
		{"unstable equal", 1000, 1000},
		{"unstable over", 1500, 1000},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			check := func(fn string, v float64, err error) {
				t.Helper()
				if err == nil {
					t.Errorf("%s(%v, %v) accepted hostile input (returned %v)", fn, tc.lambda, tc.mu, v)
					return
				}
				if err.Error() == "" {
					t.Errorf("%s: empty error message", fn)
				}
			}
			v, err := MM1MeanSojourn(tc.lambda, tc.mu)
			check("MM1MeanSojourn", v, err)
			v, err = MM1QueueLenPMF(tc.lambda, tc.mu, 1)
			check("MM1QueueLenPMF", v, err)
			v, err = MD1MeanWait(tc.lambda, tc.mu)
			check("MD1MeanWait", v, err)
			v, err = MG1MeanWait(tc.lambda, tc.mu, 1)
			check("MG1MeanWait", v, err)
			v, err = KingmanGG1Wait(tc.lambda, tc.mu, 1, 1)
			check("KingmanGG1Wait", v, err)
			if tc.name != "unstable equal" && tc.name != "unstable over" {
				// MM1KBlocking is defined for rho >= 1 (finite queues
				// always have a steady state), so only the non-finite and
				// non-positive rows are hostile to it.
				v, err = MM1KBlocking(tc.lambda, tc.mu, 4)
				check("MM1KBlocking", v, err)
			}
		})
	}
}

// TestHostileSCV: NaN, Inf, and negative squared coefficients of
// variation must be rejected by the general-service forms.
func TestHostileSCV(t *testing.T) {
	for _, scv := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.5} {
		if v, err := MG1MeanWait(500, 1000, scv); err == nil {
			t.Errorf("MG1MeanWait accepted SCV %v (returned %v)", scv, v)
		}
		if v, err := KingmanGG1Wait(500, 1000, scv, 0); err == nil {
			t.Errorf("KingmanGG1Wait accepted Ca² %v (returned %v)", scv, v)
		}
		if v, err := KingmanGG1Wait(500, 1000, 1, scv); err == nil {
			t.Errorf("KingmanGG1Wait accepted Cs² %v (returned %v)", scv, v)
		}
	}
}

// TestUnstableIsTyped: saturation must surface as ErrUnstable so the
// serving layer's degradation ladder can match on it.
func TestUnstableIsTyped(t *testing.T) {
	_, err := KingmanGG1Wait(1000, 1000, 1, 1)
	if !errors.Is(err, ErrUnstable) {
		t.Fatalf("saturated Kingman error %v, want ErrUnstable", err)
	}
	_, err = MM1MeanSojourn(2000, 1000)
	if !errors.Is(err, ErrUnstable) {
		t.Fatalf("saturated M/M/1 error %v, want ErrUnstable", err)
	}
	// A stable queue must not read as unstable.
	if _, err := MM1MeanSojourn(500, 1000); err != nil {
		t.Fatalf("stable queue rejected: %v", err)
	}
}
