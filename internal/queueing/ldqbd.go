// Package queueing implements the paper's Appendix B: a state-aware
// queueing-theoretic model of multi-queue packet schedulers (WFQ/WRR/DRR
// treated as WFQ, and SP) fed by MAP arrivals, reformulated as a
// level-dependent quasi-birth-death (LDQBD) process and solved with a
// truncated matrix-analytic backward recursion.
//
// Its purpose in the reproduction is twofold: validating the DES against
// exact theory (Fig. 14) and demonstrating the exponential state-space
// blow-up that motivates the PTM (Fig. 15, Appendix B.2's O(M³·L^{3K})).
package queueing

import (
	"errors"
	"fmt"

	"deepqueuenet/internal/linalg"
	"deepqueuenet/internal/traffic"
)

// Discipline selects the scheduler model (Appendix B.1.2).
type Discipline int

// Disciplines.
const (
	// WFQDisc models WFQ/WRR/DRR: service rate shared among non-empty
	// queues in proportion to weights.
	WFQDisc Discipline = iota
	// SPDisc models strict priority: class 0 preempts all lower classes.
	SPDisc
)

// Model is a K-class multi-queue scheduler with MAP aggregate arrivals
// split per class with probabilities Probs, exponential service at total
// rate Mu (packets/s), and the given discipline.
type Model struct {
	Arrivals *traffic.MAP
	Probs    []float64 // class mix, sums to 1
	Mu       float64   // total service rate (packets/s)
	Weights  []float64 // WFQ weights (ignored for SP)
	Disc     Discipline
}

// Validate checks the model parameters.
func (m *Model) Validate() error {
	if m.Arrivals == nil {
		return errors.New("queueing: nil arrival MAP")
	}
	if err := m.Arrivals.Validate(); err != nil {
		return err
	}
	k := len(m.Probs)
	if k == 0 {
		return errors.New("queueing: no classes")
	}
	sum := 0.0
	for _, p := range m.Probs {
		if p <= 0 {
			return errors.New("queueing: class probabilities must be positive")
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("queueing: class probabilities sum to %g", sum)
	}
	if m.Mu <= 0 {
		return errors.New("queueing: service rate must be positive")
	}
	if m.Disc == WFQDisc && len(m.Weights) != k {
		return errors.New("queueing: WFQ needs one weight per class")
	}
	return nil
}

// Utilization returns ρ = λ/μ.
func (m *Model) Utilization() (float64, error) {
	lam, err := m.Arrivals.Rate()
	if err != nil {
		return 0, err
	}
	return lam / m.Mu, nil
}

// g returns the per-class service rates for queue state n (Appendix
// B.1.2's state-aware allocation).
func (m *Model) g(n []int) []float64 {
	k := len(n)
	out := make([]float64, k)
	switch m.Disc {
	case WFQDisc:
		den := 0.0
		for i := 0; i < k; i++ {
			if n[i] > 0 {
				den += m.Weights[i]
			}
		}
		// den is a sum of positive weights; <= 0 avoids branching on an
		// exact float zero.
		if den <= 0 {
			return out
		}
		for i := 0; i < k; i++ {
			if n[i] > 0 {
				out[i] = m.Mu * m.Weights[i] / den
			}
		}
	case SPDisc:
		for i := 0; i < k; i++ {
			if n[i] > 0 {
				out[i] = m.Mu
				break
			}
		}
	}
	return out
}

// compositions enumerates all K-part compositions of l in the paper's
// state-descending order (e.g. l=2, K=2: (2,0), (1,1), (0,2)).
func compositions(l, k int) [][]int {
	if k == 1 {
		return [][]int{{l}}
	}
	var out [][]int
	for first := l; first >= 0; first-- {
		for _, rest := range compositions(l-first, k-1) {
			comp := append([]int{first}, rest...)
			out = append(out, comp)
		}
	}
	return out
}

// levelSpace caches the state enumeration of one level.
type levelSpace struct {
	comps [][]int
	index map[string]int // composition key -> composition index
}

func makeLevel(l, k int) levelSpace {
	comps := compositions(l, k)
	idx := make(map[string]int, len(comps))
	for i, c := range comps {
		idx[compKey(c)] = i
	}
	return levelSpace{comps: comps, index: idx}
}

func compKey(c []int) string {
	b := make([]byte, 0, len(c)*3)
	for _, v := range c {
		b = append(b, byte(v), byte(v>>8), '|')
	}
	return string(b)
}

// Solution is the solved stationary distribution up to the truncation
// level.
type Solution struct {
	K, M, L int
	// Phi[l] is the stationary probability vector of level l (length
	// c_l · M, composition-major).
	Phi [][]float64
	// levels caches the per-level composition enumerations.
	levels []levelSpace
	// TailMass is the probability truncated away (diagnostic).
	TailMass float64
}

// Solve computes the stationary distribution with queue lengths
// truncated at total backlog L. The computational cost grows with the
// per-level block size d_l = M·C(l+K−1, K−1) — exponential in K, the
// paper's core feasibility argument.
func (m *Model) Solve(L int) (*Solution, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	rho, err := m.Utilization()
	if err != nil {
		return nil, err
	}
	if rho >= 1 {
		return nil, fmt.Errorf("queueing: unstable system (rho = %.3f)", rho)
	}
	if L < 1 {
		return nil, errors.New("queueing: truncation level must be >= 1")
	}
	K := len(m.Probs)
	M := m.Arrivals.States()
	levels := make([]levelSpace, L+1)
	for l := 0; l <= L; l++ {
		levels[l] = makeLevel(l, K)
	}

	d := func(l int) int { return len(levels[l].comps) * M }

	// Block builders.
	up := func(l int) [][]float64 { // Q_{l,l+1}
		a := linalg.Zeros(d(l), d(l+1))
		for ci, n := range levels[l].comps {
			for i := 0; i < K; i++ {
				n2 := append([]int(nil), n...)
				n2[i]++
				cj := levels[l+1].index[compKey(n2)]
				for j := 0; j < M; j++ {
					for k2 := 0; k2 < M; k2++ {
						a[ci*M+j][cj*M+k2] += m.Probs[i] * m.Arrivals.D1[j][k2]
					}
				}
			}
		}
		return a
	}
	down := func(l int) [][]float64 { // Q_{l,l-1}
		a := linalg.Zeros(d(l), d(l-1))
		for ci, n := range levels[l].comps {
			rates := m.g(n)
			for i := 0; i < K; i++ {
				// Service rates are non-negative; <= 0 skips unserved
				// classes without an exact float compare.
				if n[i] == 0 || rates[i] <= 0 {
					continue
				}
				n2 := append([]int(nil), n...)
				n2[i]--
				cj := levels[l-1].index[compKey(n2)]
				for j := 0; j < M; j++ {
					a[ci*M+j][cj*M+j] += rates[i]
				}
			}
		}
		return a
	}
	local := func(l int, top bool) [][]float64 { // Q_{l,l}
		a := linalg.Zeros(d(l), d(l))
		for ci, n := range levels[l].comps {
			rates := m.g(n)
			totalG := 0.0
			for _, r := range rates {
				totalG += r
			}
			for j := 0; j < M; j++ {
				row := ci*M + j
				for k2 := 0; k2 < M; k2++ {
					if k2 != j {
						a[row][ci*M+k2] += m.Arrivals.D0[j][k2]
					}
				}
				diag := m.Arrivals.D0[j][j] - totalG
				if top {
					// Truncation: fold the up-rate back into the
					// diagonal so the generator stays conservative.
					upRate := 0.0
					for k2 := 0; k2 < M; k2++ {
						upRate += m.Arrivals.D1[j][k2]
					}
					diag += upRate
				}
				a[row][row] += diag
			}
		}
		return a
	}

	// Backward R recursion: R_l = Q_{l,l+1} · (−(Q_{l+1,l+1} +
	// R_{l+1}·Q_{l+2,l+1}))⁻¹ with R_L = 0 at the truncation boundary.
	R := make([][][]float64, L) // R[l] maps level l -> l+1
	var Rnext [][]float64
	for l := L - 1; l >= 0; l-- {
		inner := local(l+1, l+1 == L)
		if Rnext != nil {
			inner = linalg.Add(inner, linalg.Mul(Rnext, down(l+2)))
		}
		neg := linalg.Scale(inner, -1)
		inv, err := linalg.Inverse(neg)
		if err != nil {
			return nil, fmt.Errorf("queueing: level %d inversion: %w", l, err)
		}
		R[l] = linalg.Mul(up(l), inv)
		Rnext = R[l]
	}

	// Boundary: φ₀ (Q_{0,0} + R_0 Q_{1,0}) = 0, then normalize.
	b0 := linalg.Add(local(0, L == 0), linalg.Mul(R[0], down(1)))
	phi0, err := solveBoundary(b0)
	if err != nil {
		return nil, err
	}
	sol := &Solution{K: K, M: M, L: L, levels: levels}
	sol.Phi = make([][]float64, L+1)
	sol.Phi[0] = phi0
	for l := 0; l < L; l++ {
		sol.Phi[l+1] = linalg.VecMat(sol.Phi[l], R[l])
	}
	total := 0.0
	for l := 0; l <= L; l++ {
		for _, v := range sol.Phi[l] {
			total += v
		}
	}
	if total <= 0 {
		return nil, errors.New("queueing: degenerate solution")
	}
	for l := 0; l <= L; l++ {
		for i := range sol.Phi[l] {
			sol.Phi[l][i] /= total
		}
	}
	// Estimate truncated tail mass from the top-level share.
	top := 0.0
	for _, v := range sol.Phi[L] {
		top += v
	}
	sol.TailMass = top
	return sol, nil
}

// solveBoundary finds the null vector of bᵀ with unit sum.
func solveBoundary(b [][]float64) ([]float64, error) {
	n := len(b)
	a := linalg.Zeros(n, n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i][j] = b[j][i]
		}
	}
	for j := 0; j < n; j++ {
		a[n-1][j] = 1
	}
	rhs[n-1] = 1
	return linalg.Solve(a, rhs)
}

// MarginalQueueLen returns P(n_class = n) for n = 0..L.
func (s *Solution) MarginalQueueLen(class int) []float64 {
	out := make([]float64, s.L+1)
	for l := 0; l <= s.L; l++ {
		for ci, comp := range s.levels[l].comps {
			nk := comp[class]
			if nk > s.L {
				nk = s.L
			}
			for j := 0; j < s.M; j++ {
				out[nk] += s.Phi[l][ci*s.M+j]
			}
		}
	}
	return out
}

// QueueLenCDF returns P(n_class ≤ n).
func (s *Solution) QueueLenCDF(class, n int) float64 {
	marg := s.MarginalQueueLen(class)
	c := 0.0
	for i := 0; i <= n && i < len(marg); i++ {
		c += marg[i]
	}
	return c
}

// TotalQueueLenDist returns P(total backlog = l) for l = 0..L.
func (s *Solution) TotalQueueLenDist() []float64 {
	out := make([]float64, s.L+1)
	for l := 0; l <= s.L; l++ {
		for _, v := range s.Phi[l] {
			out[l] += v
		}
	}
	return out
}

// MeanQueueLen returns E[n_class].
func (s *Solution) MeanQueueLen(class int) float64 {
	m := 0.0
	for n, p := range s.MarginalQueueLen(class) {
		m += float64(n) * p
	}
	return m
}

// StateCount returns the total number of CTMC states in the truncated
// model: Σ_l M·c_l — the quantity that explodes with K (Fig. 15).
func (s *Solution) StateCount() int {
	n := 0
	for l := 0; l <= s.L; l++ {
		n += len(s.levels[l].comps) * s.M
	}
	return n
}
