package queueing

import (
	"errors"
	"fmt"
	"math"
)

// Closed-form single-queue results used to cross-validate both the DES
// and the LDQBD solver. All take arrival rate lambda and service rate mu
// in packets/second.

// MM1MeanSojourn returns E[T] = 1/(µ−λ) for the M/M/1 queue.
func MM1MeanSojourn(lambda, mu float64) (float64, error) {
	if err := checkStable(lambda, mu); err != nil {
		return 0, err
	}
	return 1 / (mu - lambda), nil
}

// MM1QueueLenPMF returns P(N = n) = (1−ρ)ρⁿ for the M/M/1 queue.
func MM1QueueLenPMF(lambda, mu float64, n int) (float64, error) {
	if err := checkStable(lambda, mu); err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, nil
	}
	rho := lambda / mu
	return (1 - rho) * math.Pow(rho, float64(n)), nil
}

// MD1MeanWait returns the Pollaczek–Khinchine mean waiting time for
// deterministic service: W = ρ/(2µ(1−ρ)).
func MD1MeanWait(lambda, mu float64) (float64, error) {
	if err := checkStable(lambda, mu); err != nil {
		return 0, err
	}
	rho := lambda / mu
	return rho / (2 * mu * (1 - rho)), nil
}

// MG1MeanWait returns the Pollaczek–Khinchine mean waiting time for
// general service with the given squared coefficient of variation of
// service times: W = (1+C²)/2 · ρ/(µ(1−ρ)).
func MG1MeanWait(lambda, mu, scv float64) (float64, error) {
	if err := checkStable(lambda, mu); err != nil {
		return 0, err
	}
	if err := checkSCV(scv); err != nil {
		return 0, err
	}
	rho := lambda / mu
	return (1 + scv) / 2 * rho / (mu * (1 - rho)), nil
}

// MM1KBlocking returns the Erlang loss of the finite M/M/1/K queue:
// P(N = K) = (1−ρ)ρᴷ / (1−ρ^{K+1}) (ρ ≠ 1), the probability an arrival
// is dropped.
func MM1KBlocking(lambda, mu float64, k int) (float64, error) {
	if err := checkRates(lambda, mu); err != nil {
		return 0, err
	}
	if k < 1 {
		return 0, errors.New("queueing: capacity must be >= 1")
	}
	rho := lambda / mu
	if math.Abs(rho-1) < 1e-12 {
		return 1 / float64(k+1), nil
	}
	return (1 - rho) * math.Pow(rho, float64(k)) / (1 - math.Pow(rho, float64(k+1))), nil
}

// KingmanGG1Wait returns Kingman's heavy-traffic approximation of the
// G/G/1 mean wait: W ≈ ρ/(1−ρ) · (Ca²+Cs²)/2 · 1/µ.
func KingmanGG1Wait(lambda, mu, ca2, cs2 float64) (float64, error) {
	if err := checkStable(lambda, mu); err != nil {
		return 0, err
	}
	if err := checkSCV(ca2); err != nil {
		return 0, err
	}
	if err := checkSCV(cs2); err != nil {
		return 0, err
	}
	rho := lambda / mu
	return rho / (1 - rho) * (ca2 + cs2) / 2 / mu, nil
}

// ErrUnstable marks a queue whose arrival rate meets or exceeds its
// service rate: no steady state exists and every closed form diverges.
// Callers running a degradation ladder (internal/serve) match on it to
// fall from the analytic tier to the FIFO-serialization rung.
var ErrUnstable = errors.New("queueing: unstable (lambda >= mu)")

// checkRates validates that both rates are finite and strictly
// positive. NaN must be rejected explicitly: `NaN <= 0` and `NaN >= mu`
// are both false, so a plain comparison-based guard would silently
// accept a NaN rate and propagate it through every closed form.
func checkRates(lambda, mu float64) error {
	if math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return fmt.Errorf("queueing: arrival rate is not finite (lambda = %v)", lambda)
	}
	if math.IsNaN(mu) || math.IsInf(mu, 0) {
		return fmt.Errorf("queueing: service rate is not finite (mu = %v)", mu)
	}
	if lambda <= 0 {
		return fmt.Errorf("queueing: arrival rate must be positive (lambda = %v)", lambda)
	}
	if mu <= 0 {
		return fmt.Errorf("queueing: service rate must be positive (mu = %v)", mu)
	}
	return nil
}

// checkSCV validates a squared coefficient of variation: finite and
// non-negative (same NaN caveat as checkRates).
func checkSCV(scv float64) error {
	if math.IsNaN(scv) || math.IsInf(scv, 0) || scv < 0 {
		return fmt.Errorf("queueing: SCV must be finite and non-negative (got %v)", scv)
	}
	return nil
}

// checkStable is checkRates plus the stability condition lambda < mu.
func checkStable(lambda, mu float64) error {
	if err := checkRates(lambda, mu); err != nil {
		return err
	}
	if lambda >= mu {
		return fmt.Errorf("%w: lambda %v, mu %v", ErrUnstable, lambda, mu)
	}
	return nil
}
