package queueing

import (
	"math"
	"testing"

	"deepqueuenet/internal/des"
	"deepqueuenet/internal/metrics"
	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/topo"
	"deepqueuenet/internal/traffic"
)

func TestCompositionsCountAndOrder(t *testing.T) {
	// c_l = C(l+K-1, K-1): for l=2, K=2 → 3 compositions.
	cs := compositions(2, 2)
	if len(cs) != 3 {
		t.Fatalf("%d compositions", len(cs))
	}
	want := [][]int{{2, 0}, {1, 1}, {0, 2}}
	for i := range want {
		for j := range want[i] {
			if cs[i][j] != want[i][j] {
				t.Fatalf("composition order %v", cs)
			}
		}
	}
	// l=3, K=3 → C(5,2) = 10.
	if n := len(compositions(3, 3)); n != 10 {
		t.Fatalf("K=3 l=3: %d", n)
	}
}

func TestMM1GeometricQueue(t *testing.T) {
	// Single class, Poisson arrivals, FIFO (WFQ with one class):
	// P(n) = (1-ρ)·ρⁿ.
	lam, mu := 600.0, 1000.0
	m := &Model{
		Arrivals: traffic.PoissonMAP(lam),
		Probs:    []float64{1},
		Mu:       mu,
		Weights:  []float64{1},
		Disc:     WFQDisc,
	}
	sol, err := m.Solve(60)
	if err != nil {
		t.Fatal(err)
	}
	rho := lam / mu
	marg := sol.MarginalQueueLen(0)
	for n := 0; n <= 10; n++ {
		want := (1 - rho) * math.Pow(rho, float64(n))
		if math.Abs(marg[n]-want) > 1e-6 {
			t.Fatalf("P(n=%d) = %v, want %v", n, marg[n], want)
		}
	}
	// Mean queue length ρ/(1−ρ).
	if got, want := sol.MeanQueueLen(0), rho/(1-rho); math.Abs(got-want) > 0.01 {
		t.Fatalf("mean %v, want %v", got, want)
	}
}

func TestSPTwoClassPriority(t *testing.T) {
	// Under SP the high-priority class behaves like an M/M/1 alone:
	// its marginal queue length must match the single-class solution.
	lam, mu := 800.0, 2000.0
	m := &Model{
		Arrivals: traffic.PoissonMAP(lam),
		Probs:    []float64{0.5, 0.5},
		Mu:       mu,
		Disc:     SPDisc,
	}
	sol, err := m.Solve(30)
	if err != nil {
		t.Fatal(err)
	}
	rho0 := (lam * 0.5) / mu
	marg := sol.MarginalQueueLen(0)
	for n := 0; n <= 5; n++ {
		want := (1 - rho0) * math.Pow(rho0, float64(n))
		if math.Abs(marg[n]-want) > 0.005 {
			t.Fatalf("high-priority P(n=%d) = %v, want %v", n, marg[n], want)
		}
	}
	// The low-priority class must be strictly worse off.
	if sol.MeanQueueLen(1) <= sol.MeanQueueLen(0) {
		t.Fatalf("SP: low class mean %v <= high class mean %v",
			sol.MeanQueueLen(1), sol.MeanQueueLen(0))
	}
}

func TestValidation(t *testing.T) {
	m := &Model{Arrivals: traffic.PoissonMAP(100), Probs: []float64{0.5, 0.5},
		Mu: 50, Disc: SPDisc}
	if _, err := m.Solve(10); err == nil {
		t.Fatal("unstable system must be rejected")
	}
	m2 := &Model{Arrivals: traffic.PoissonMAP(100), Probs: []float64{0.7},
		Mu: 500, Disc: WFQDisc, Weights: []float64{1}}
	if err := m2.Validate(); err == nil {
		t.Fatal("probabilities not summing to 1 must be rejected")
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	m := &Model{
		Arrivals: traffic.ExampleMAP2().Scale(0.01), // rate 48, keep it stable
		Probs:    []float64{0.2, 0.3, 0.5},
		Mu:       100,
		Weights:  []float64{1, 1, 1},
		Disc:     WFQDisc,
	}
	sol, err := m.Solve(12)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, d := range sol.TotalQueueLenDist() {
		total += d
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("distribution sums to %v", total)
	}
	if sol.TailMass > 0.01 {
		t.Fatalf("truncation too aggressive: tail %v", sol.TailMass)
	}
}

// TestAgainstDES is the Fig. 14 experiment in miniature: queue-length
// CDFs from the LDQBD model must match a DES of the same system.
func TestAgainstDES(t *testing.T) {
	// Appendix B.3 setting, scaled to stay fast: MAP(2) arrivals split
	// 20/30/50% across 3 classes, exponential packet sizes with mean
	// 1426 B (the theory's exponential service), service rate
	// 100 Mb/s => mu = 100e6/(8*1426) ≈ 8766 pkt/s, rho ≈ 0.55.
	agg := traffic.ExampleMAP2()
	probs := []float64{0.2, 0.3, 0.5}
	const linkRate = 100e6
	const pktSize = 1426

	for _, disc := range []Discipline{SPDisc, WFQDisc} {
		m := &Model{Arrivals: agg, Probs: probs, Mu: linkRate / (8 * pktSize), Disc: disc,
			Weights: []float64{1, 1, 1}}
		sol, err := m.Solve(30)
		if err != nil {
			t.Fatal(err)
		}

		// DES: 4 hosts -> 1 switch; 3 source flows (one per class) from
		// 3 hosts to the 4th. Splitting a MAP by class probability is
		// exactly SplitClass.
		g := topo.Star(4, topo.LinkParams{RateBps: linkRate, Delay: 1e-6})
		hosts := g.Hosts()
		var defs []topo.FlowDef
		for i := 0; i < 3; i++ {
			defs = append(defs, topo.FlowDef{FlowID: i + 1, Src: hosts[i], Dst: hosts[3]})
		}
		rt, _ := g.Route(defs)
		var sched des.SchedConfig
		if disc == SPDisc {
			sched = des.SchedConfig{Kind: des.SP, Classes: 3}
		} else {
			sched = des.SchedConfig{Kind: des.WFQ, Weights: []float64{1, 1, 1}}
		}
		net := des.Build(g, rt, des.NetConfig{Sched: sched})
		r := rng.New(42)
		for i := 0; i < 3; i++ {
			sub := agg.SplitClass(probs[i])
			sizes := &traffic.ExpSize{MeanBytes: pktSize, R: r.Split()}
			net.AddFlow(hosts[i], des.Flow{FlowID: i + 1, Dst: hosts[3], Class: i,
				Weight: 1, Source: sub.NewSampler(sizes, r.Split()), Stop: 20})
		}
		sw := g.Switches()[0]
		// Monitor the egress port toward host 3 — find it via the graph.
		outPort := -1
		for pi, p := range g.Ports[sw] {
			if p.Peer == hosts[3] {
				outPort = pi
			}
		}
		mon := net.MonitorQueue(sw, outPort, 5e-4)
		net.Run(20)

		for class := 0; class < 3; class++ {
			lens := mon.ClassLens(class)
			cdfEmp, err := metrics.NewCDF(lens)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{0, 1, 2, 5} {
				theory := sol.QueueLenCDF(class, n)
				emp := cdfEmp.Eval(float64(n))
				if math.Abs(theory-emp) > 0.06 {
					t.Fatalf("%v class %d: P(n<=%d) theory %.4f vs DES %.4f",
						disc, class, n, theory, emp)
				}
			}
		}
	}
}

func TestStateCountGrowth(t *testing.T) {
	// The per-truncation state count must grow combinatorially with K —
	// the Fig. 15 feasibility wall.
	counts := make([]int, 0, 3)
	for k := 1; k <= 3; k++ {
		probs := make([]float64, k)
		ws := make([]float64, k)
		for i := range probs {
			probs[i] = 1 / float64(k)
			ws[i] = 1
		}
		m := &Model{Arrivals: traffic.PoissonMAP(100), Probs: probs, Mu: 1000,
			Weights: ws, Disc: WFQDisc}
		sol, err := m.Solve(10)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, sol.StateCount())
	}
	if !(counts[0] < counts[1] && counts[1] < counts[2]) {
		t.Fatalf("state counts not growing: %v", counts)
	}
	if counts[2] < 5*counts[0] {
		t.Fatalf("growth too slow to be combinatorial: %v", counts)
	}
}
