// Package plane implements the shared cross-request inference plane:
// a model-keyed batcher that coalesces device prediction calls from
// many concurrent simulation jobs onto warm per-model workers.
//
// Every simulation job used to clone its model once per shard, build a
// private inference session (arena, weight packs, feature buffers) and
// run its IRSA device calls interleaved with every other job's. The
// plane inverts that: one long-lived worker goroutine per distinct
// model owns one warm clone and serves device-batched predictions for
// every job that shares the model. Jobs submit a call and park; the
// worker drains the queue into micro-batches and flushes at
// max(batch >= MaxBatch, deadline <= MaxDelay), or immediately when the
// queue runs dry (natural batching — an idle plane adds no latency).
//
// Results are bit-identical to private-shard inference by construction:
// PTM prediction is history-independent (a session is reusable scratch,
// not state), so running N jobs' port streams back-to-back through one
// warm session produces exactly the bits each job would have produced
// alone. The golden-plane tests pin this at Shards = 1 and 8.
//
// Attribution: every call carries its submitting job's tag, each port
// stream's Out slice is owned by the submitting run (results cannot
// land in another job's buffers), and the per-run engine observer times
// each device call on the submitting side. The plane's own dqn_batch_*
// metrics aggregate batch sizes, flush reasons, queue depth and
// execution latency across all requests.
package plane

import (
	"sync"
	"time"

	"deepqueuenet/internal/core"
	"deepqueuenet/internal/des"
	"deepqueuenet/internal/ptm"
)

// Config tunes the plane's batching policy.
type Config struct {
	// MaxBatch flushes a micro-batch when it reaches this many device
	// calls. <= 0 uses 16.
	MaxBatch int
	// MaxDelay is the adaptive micro-batch deadline: after the first
	// call of a batch arrives, the worker waits at most this long for
	// the batch to fill before flushing. 0 disables the wait entirely
	// (natural batching: drain whatever is queued, run, repeat) — the
	// right default on a saturated single machine, where batches form
	// while the worker is busy and an artificial delay only adds
	// latency.
	MaxDelay time.Duration
	// QueueDepth bounds each worker's pending-call queue; submitters
	// block (backpressure) when it is full. <= 0 uses 256.
	QueueDepth int
	// MaxWorkers bounds the number of warm per-model workers kept
	// alive, mirroring the serving layer's 64-key breaker/registry
	// bound. Least-recently-used idle workers are drained and retired
	// when the bound is exceeded. <= 0 uses 64.
	MaxWorkers int
	// Metrics, when non-nil, receives the plane's dqn_batch_* series.
	Metrics *Metrics
}

const (
	defaultMaxBatch   = 16
	defaultQueueDepth = 256
	defaultMaxWorkers = 64
)

// call is one parked device prediction: the submitting goroutine blocks
// on done while the worker fills every port's Out slice in place.
type call struct {
	ports []ptm.PortStream
	kind  des.SchedKind
	tag   string
	// panicked carries a recovered worker panic back to the submitting
	// goroutine, which re-raises it so the engine's shard guard turns
	// it into a *guard.ShardError exactly as with private shards.
	panicked any
	done     chan struct{}
}

// Plane is the shared inference plane. The zero value is not usable;
// call New.
type Plane struct {
	cfg Config

	mu      sync.Mutex
	workers map[core.DeviceModel]*worker
	seq     uint64 // LRU clock
	closed  bool
	wg      sync.WaitGroup

	// pending is the total number of submitted-but-unfinished calls,
	// maintained under mu; RetryAfter estimation reads it via Depth.
	pending int

	// Batch execution EWMAs (seconds per flush, calls per flush),
	// maintained by workers under mu.
	avgBatchSec  float64
	avgBatchSize float64
}

// New builds a plane and applies Config defaults.
func New(cfg Config) *Plane {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = defaultMaxBatch
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = defaultMaxWorkers
	}
	p := &Plane{cfg: cfg, workers: make(map[core.DeviceModel]*worker)}
	if cfg.Metrics != nil {
		cfg.Metrics.bindPlane(p)
	}
	return p
}

// worker is one warm per-model inference worker: a goroutine that owns
// a private clone of its model (hence a private session: arena, packs,
// buffers) and serves micro-batches of calls from its queue.
type worker struct {
	key   core.DeviceModel
	ch    chan *call
	dead  bool   // set under Plane.mu: no further sends permitted
	used  uint64 // LRU clock value of the last submit
	inUse int    // submitters currently between enqueue and done
}

// Predict submits one device's egress-port streams for prediction and
// blocks until every port's Out slice is filled. key identifies the
// shared model (the warm worker's clone source); results are
// bit-identical to key.CloneModel().PredictDevice(ports, kind).
func (p *Plane) Predict(key core.DeviceModel, ports []ptm.PortStream, kind des.SchedKind, tag string) {
	c := &call{ports: ports, kind: kind, tag: tag, done: make(chan struct{})}
	w := p.enqueue(key, c)
	if w == nil {
		// Plane closed (server shutdown race): run inline on a private
		// clone — slower, bit-identical, never wedges the caller.
		predictInline(key, ports, kind)
		return
	}
	w.ch <- c
	<-c.done
	p.mu.Lock()
	p.pending--
	w.inUse--
	p.mu.Unlock()
	if c.panicked != nil {
		panic(c.panicked)
	}
}

// enqueue resolves (or spawns) the worker for key and registers the
// call under the plane lock. It returns nil when the plane is closed.
func (p *Plane) enqueue(key core.DeviceModel, c *call) *worker {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	w := p.workers[key]
	spawned := false
	if w == nil || w.dead {
		w = &worker{key: key, ch: make(chan *call, p.cfg.QueueDepth)}
		p.workers[key] = w
		p.wg.Add(1)
		go p.run(w)
		if m := p.cfg.Metrics; m != nil {
			m.WorkersStarted.Inc()
		}
		spawned = true
	}
	p.seq++
	w.used = p.seq
	w.inUse++
	p.pending++
	if spawned {
		// Evict only after registering this call: the new worker now has
		// inUse > 0 and the freshest LRU stamp, so it cannot be its own
		// victim.
		p.evictLocked()
	}
	return w
}

// evictLocked retires least-recently-used idle workers beyond
// MaxWorkers. A worker with in-flight submitters is never retired, so a
// caller between enqueue and send can never hit a closed channel.
func (p *Plane) evictLocked() {
	for len(p.workers) > p.cfg.MaxWorkers {
		var victim *worker
		var victimKey core.DeviceModel
		for k, w := range p.workers {
			if w.inUse > 0 || w.dead {
				continue
			}
			if victim == nil || w.used < victim.used {
				victim, victimKey = w, k
			}
		}
		if victim == nil {
			return // every worker is busy; stay over the bound until one idles
		}
		victim.dead = true
		close(victim.ch)
		delete(p.workers, victimKey)
		if m := p.cfg.Metrics; m != nil {
			m.WorkerEvictions.Inc()
		}
	}
}

// run is the worker loop: block for one call, drain greedily, optionally
// wait out the micro-batch deadline, flush.
func (p *Plane) run(w *worker) {
	defer p.wg.Done()
	var model core.DeviceModel // lazily cloned warm model
	batch := make([]*call, 0, p.cfg.MaxBatch)
	for {
		c, ok := <-w.ch
		if !ok {
			return
		}
		batch = append(batch[:0], c)
		reason := flushDrain
	drain:
		for len(batch) < p.cfg.MaxBatch {
			select {
			case c2, ok := <-w.ch:
				if !ok {
					break drain
				}
				batch = append(batch, c2)
			default:
				break drain
			}
		}
		if p.cfg.MaxDelay > 0 && len(batch) < p.cfg.MaxBatch {
			timer := time.NewTimer(p.cfg.MaxDelay)
		wait:
			for len(batch) < p.cfg.MaxBatch {
				select {
				case c2, ok := <-w.ch:
					if !ok {
						break wait
					}
					batch = append(batch, c2)
				case <-timer.C:
					reason = flushDeadline
					break wait
				}
			}
			timer.Stop()
		}
		if len(batch) >= p.cfg.MaxBatch {
			reason = flushSize
		}
		if model == nil {
			model = w.key.CloneModel()
		}
		p.flush(model, batch, reason)
	}
}

// flush runs one micro-batch on the worker's warm model, completing
// each call as its device finishes so low-latency submitters never wait
// on the whole batch.
func (p *Plane) flush(model core.DeviceModel, batch []*call, reason flushReason) {
	start := time.Now()
	for _, c := range batch {
		runCall(model, c)
		close(c.done)
	}
	elapsed := time.Since(start).Seconds()

	p.mu.Lock()
	const alpha = 0.2
	if p.avgBatchSec == 0 {
		p.avgBatchSec = elapsed
		p.avgBatchSize = float64(len(batch))
	} else {
		p.avgBatchSec += alpha * (elapsed - p.avgBatchSec)
		p.avgBatchSize += alpha * (float64(len(batch)) - p.avgBatchSize)
	}
	p.mu.Unlock()

	if m := p.cfg.Metrics; m != nil {
		m.observeFlush(batch, reason, elapsed)
	}
}

// runCall executes one call with panic capture: a model panic (chaos
// injection, hostile weights) is carried back to the submitting shard
// instead of killing the shared worker.
func runCall(model core.DeviceModel, c *call) {
	defer func() {
		if r := recover(); r != nil {
			c.panicked = r
		}
	}()
	if dp, ok := model.(core.DevicePredictor); ok {
		dp.PredictDevice(c.ports, c.kind)
		return
	}
	for i := range c.ports {
		ps := &c.ports[i]
		ps.Out = append(ps.Out[:0], model.PredictStream(ps.Stream, c.kind, ps.RateBps, 1)...)
	}
}

// predictInline is the closed-plane fallback: clone, predict, discard.
func predictInline(key core.DeviceModel, ports []ptm.PortStream, kind des.SchedKind) {
	model := key.CloneModel()
	if dp, ok := model.(core.DevicePredictor); ok {
		dp.PredictDevice(ports, kind)
		return
	}
	for i := range ports {
		ps := &ports[i]
		ps.Out = append(ps.Out[:0], model.PredictStream(ps.Stream, kind, ps.RateBps, 1)...)
	}
}

// Depth reports the number of submitted-but-unfinished calls across all
// workers — the queue-depth input of the serving layer's Retry-After
// estimate.
func (p *Plane) Depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending
}

// Workers reports the number of live warm workers.
func (p *Plane) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if !w.dead {
			n++
		}
	}
	return n
}

// BatchStats returns the EWMA batch execution time (seconds per flush)
// and EWMA batch size (calls per flush). Zeros mean no flush has run.
func (p *Plane) BatchStats() (avgSec, avgSize float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.avgBatchSec, p.avgBatchSize
}

// Close retires every worker and waits for them to drain. Calls
// submitted after Close run inline on private clones; the caller should
// drain its job sources first. A worker's channel is only ever closed
// while no submitter is in flight on it (inUse == 0), so a send can
// never hit a closed channel; busy workers are retired as they idle.
func (p *Plane) Close() {
	p.mu.Lock()
	p.closed = true
	for {
		for k, w := range p.workers {
			if w.inUse > 0 {
				continue
			}
			w.dead = true
			close(w.ch)
			delete(p.workers, k)
		}
		if len(p.workers) == 0 {
			break
		}
		p.mu.Unlock()
		time.Sleep(100 * time.Microsecond)
		p.mu.Lock()
	}
	p.mu.Unlock()
	p.wg.Wait()
}
