package plane

import (
	"deepqueuenet/internal/core"
	"deepqueuenet/internal/des"
	"deepqueuenet/internal/ptm"
)

// Handle is a core.DeviceModel that forwards every prediction to the
// plane's warm worker for its underlying model. It is stateless (all
// inference scratch lives in the worker), so CloneModel returns the
// receiver: a job with N shards submits through one handle and no
// longer pays N model clones, N sessions, and N weight re-packs per
// run.
//
// The handle is the innermost wrapper: the serving layer wraps the
// resolved model with the plane first and applies fault-injection
// wrappers (chaos) on top, so injected faults fire in the submitting
// shard goroutine — where the engine's panic guard expects them — while
// the warm worker only ever runs the true model.
type Handle struct {
	p     *Plane
	inner core.DeviceModel
	tag   string
}

// Wrap returns a Handle submitting inner's predictions to p. tag names
// the submitting job for attribution (metrics and diagnostics). inner
// must be comparable — it keys the warm worker, so every job that
// resolves the same model instance shares one worker.
func (p *Plane) Wrap(inner core.DeviceModel, tag string) *Handle {
	return &Handle{p: p, inner: inner, tag: tag}
}

// Inner returns the wrapped model.
func (h *Handle) Inner() core.DeviceModel { return h.inner }

// PredictStream implements core.DeviceModel by submitting a single-port
// device call.
func (h *Handle) PredictStream(stream []ptm.PacketIn, kind des.SchedKind, rateBps float64, _ int) []float64 {
	ports := []ptm.PortStream{{Stream: stream, RateBps: rateBps}} //dqnlint:allow hotalloc submission boundary: one slice header per port-stream call, amortized over a whole device batch of inference; the zero-alloc pins cover the worker's inner loop, not the hand-off
	h.p.Predict(h.inner, ports, kind, h.tag)                      //dqnlint:allow hotalloc submission boundary: the plane's call/channel bookkeeping is per device call, not per window; the warm worker's inference path keeps its own AllocsPerRun pins
	return ports[0].Out
}

// PredictDevice implements core.DevicePredictor: the engine's
// device-batched fast path parks here until the worker fills every
// port's Out slice.
func (h *Handle) PredictDevice(ports []ptm.PortStream, kind des.SchedKind) {
	h.p.Predict(h.inner, ports, kind, h.tag) //dqnlint:allow hotalloc submission boundary: the plane's call/channel bookkeeping is per device call, not per window; the warm worker's inference path keeps its own AllocsPerRun pins
}

// CloneModel implements core.DeviceModel. The handle carries no
// mutable inference state, so every shard shares it.
func (h *Handle) CloneModel() core.DeviceModel { return h }

// Ports implements core.DeviceModel.
func (h *Handle) Ports() int { return h.inner.Ports() }

// Validate implements core.DeviceModel.
func (h *Handle) Validate() error { return h.inner.Validate() }
