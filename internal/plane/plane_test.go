package plane

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"deepqueuenet/internal/core"
	"deepqueuenet/internal/des"
	"deepqueuenet/internal/experiments"
	"deepqueuenet/internal/guard"
	"deepqueuenet/internal/obs"
	"deepqueuenet/internal/ptm"
)

// fakeModel is a comparable DeviceModel test double. gate, when non-nil,
// blocks the first PredictDevice call until released — used to force
// submissions to queue behind a busy worker.
type fakeModel struct {
	mu    sync.Mutex
	calls int
	gate  chan struct{}
	panik bool
}

func (f *fakeModel) PredictStream(stream []ptm.PacketIn, _ des.SchedKind, _ float64, _ int) []float64 {
	out := make([]float64, len(stream)) //dqnlint:allow hotalloc test double: not the pinned inference path
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func (f *fakeModel) PredictDevice(ports []ptm.PortStream, kind des.SchedKind) {
	f.mu.Lock()
	f.calls++
	first := f.calls == 1
	f.mu.Unlock()
	if first && f.gate != nil {
		<-f.gate
	}
	if f.panik {
		panic("injected model fault")
	}
	for i := range ports {
		ps := &ports[i]
		ps.Out = append(ps.Out[:0], f.PredictStream(ps.Stream, kind, ps.RateBps, 1)...) //dqnlint:allow hotalloc test double: not the pinned inference path
	}
}

func (f *fakeModel) CloneModel() core.DeviceModel { return f }
func (f *fakeModel) Ports() int                   { return 1 }
func (f *fakeModel) Validate() error              { return nil }

func onePort(n int) []ptm.PortStream {
	stream := make([]ptm.PacketIn, n)
	for i := range stream {
		stream[i] = ptm.PacketIn{Arrive: float64(i) * 1e-6, Size: 100, Weight: 1}
	}
	return []ptm.PortStream{{Stream: stream, RateBps: 1e9}}
}

// TestFlushOnSize pins the size trigger: with the worker wedged on its
// first call, MaxBatch further submissions queue up and flush as one
// full micro-batch with reason "size".
func TestFlushOnSize(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	fm := &fakeModel{gate: make(chan struct{})}
	p := New(Config{MaxBatch: 4, Metrics: m})
	defer p.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // wedges the worker inside its first flush
		defer func() {
			if we := guard.RecoveredWorker(0, recover()); we != nil {
				t.Error(we)
			}
			wg.Done()
		}()
		p.Predict(fm, onePort(3), des.FIFO, "first")
	}()
	for fm.callCount() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	for i := 0; i < 4; i++ { // queue exactly MaxBatch calls behind it
		wg.Add(1)
		go func(i int) {
			defer func() {
				if we := guard.RecoveredWorker(i, recover()); we != nil {
					t.Error(we)
				}
				wg.Done()
			}()
			p.Predict(fm, onePort(2+i), des.FIFO, "queued")
		}(i)
	}
	for p.Depth() < 5 {
		time.Sleep(50 * time.Microsecond)
	}
	close(fm.gate)
	wg.Wait()

	if got := m.Flushes["size"].Value(); got != 1 {
		t.Fatalf("size flushes = %d, want 1", got)
	}
	if got := m.Flushes["drain"].Value(); got != 1 {
		t.Fatalf("drain flushes = %d, want 1 (the wedged first call)", got)
	}
	if got := m.Coalesced.Value(); got != 4 {
		t.Fatalf("coalesced calls = %d, want 4", got)
	}
	if got := m.Calls.Value(); got != 5 {
		t.Fatalf("total calls = %d, want 5", got)
	}
}

func (f *fakeModel) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// TestFlushOnDeadline pins the deadline trigger: with MaxDelay set and a
// batch that never fills, the micro-batch deadline expires and the flush
// is attributed to "deadline". With MaxDelay zero the same lone call is
// a "drain" flush.
func TestFlushOnDeadline(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	p := New(Config{MaxBatch: 8, MaxDelay: 200 * time.Microsecond, Metrics: m})
	p.Predict(&fakeModel{}, onePort(3), des.FIFO, "lone")
	p.Close()
	if got := m.Flushes["deadline"].Value(); got != 1 {
		t.Fatalf("deadline flushes = %d, want 1", got)
	}

	reg2 := obs.NewRegistry()
	m2 := NewMetrics(reg2)
	p2 := New(Config{MaxBatch: 8, Metrics: m2})
	p2.Predict(&fakeModel{}, onePort(3), des.FIFO, "lone")
	p2.Close()
	if got := m2.Flushes["drain"].Value(); got != 1 {
		t.Fatalf("drain flushes = %d, want 1", got)
	}
	if got := m2.Flushes["deadline"].Value(); got != 0 {
		t.Fatalf("deadline flushes = %d, want 0 with MaxDelay=0", got)
	}
}

// TestAttributionIsolation hammers one shared worker from many
// concurrent "jobs" with distinct streams and verifies every submitter
// gets back exactly the bits a private clone would have produced — no
// cross-request result bleed.
func TestAttributionIsolation(t *testing.T) {
	arch := ptm.Arch{TimeSteps: 8, Margin: 2, Embed: 4, BLSTM1: 4, BLSTM2: 4, Heads: 1, DK: 2, DV: 2, HeadOut: 4}
	pm, err := ptm.Synthetic(arch, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	key := core.PTMModel{PTM: pm}
	p := New(Config{MaxBatch: 8})
	defer p.Close()

	const jobs, callsPerJob = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer func() {
				if we := guard.RecoveredWorker(j, recover()); we != nil {
					t.Error(we)
				}
				wg.Done()
			}()
			ref := key.CloneModel() // private reference model
			for k := 0; k < callsPerJob; k++ {
				n := 3 + (j+k)%5
				stream := make([]ptm.PacketIn, n)
				for i := range stream {
					stream[i] = ptm.PacketIn{
						Arrive: float64(i)*1e-6 + float64(j)*1e-8 + float64(k)*1e-9,
						Size:   64 + 17*j + i, InPort: j % 4, Weight: 1,
					}
				}
				want := ref.PredictStream(append([]ptm.PacketIn(nil), stream...), des.FIFO, 1e9, 1)
				ports := []ptm.PortStream{{Stream: stream, RateBps: 1e9}}
				p.Predict(key, ports, des.FIFO, fmt.Sprintf("job-%d", j))
				got := ports[0].Out
				if len(got) != len(want) {
					errs <- fmt.Errorf("job %d call %d: len %d want %d", j, k, len(got), len(want))
					return
				}
				for i := range got {
					if got[i] != want[i] {
						errs <- fmt.Errorf("job %d call %d idx %d: got %v want %v (bits differ)", j, k, i, got[i], want[i])
						return
					}
				}
			}
		}(j)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := p.Workers(); got != 1 {
		t.Fatalf("workers = %d, want 1 shared worker for one model", got)
	}
}

// TestPanicPropagation: a model panic surfaces in the submitting
// goroutine (where the engine's shard guard lives), and the shared
// worker survives to serve the next call.
func TestPanicPropagation(t *testing.T) {
	p := New(Config{})
	defer p.Close()
	bad := &fakeModel{panik: true}
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("expected model panic to propagate to the submitter")
			}
		}()
		p.Predict(bad, onePort(2), des.FIFO, "faulty")
	}()
	good := &fakeModel{}
	ports := onePort(3)
	p.Predict(good, ports, des.FIFO, "after")
	if len(ports[0].Out) != 3 {
		t.Fatalf("plane did not recover after a model panic: out len %d", len(ports[0].Out))
	}
}

// TestWorkerEviction pins the MaxWorkers LRU bound.
func TestWorkerEviction(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	p := New(Config{MaxWorkers: 2, Metrics: m})
	defer p.Close()
	for i := 0; i < 4; i++ {
		p.Predict(&fakeModel{}, onePort(2), des.FIFO, "k")
	}
	if got := p.Workers(); got > 2 {
		t.Fatalf("live workers = %d, want <= 2", got)
	}
	if got := m.WorkerEvictions.Value(); got < 2 {
		t.Fatalf("evictions = %d, want >= 2", got)
	}
	if got := m.WorkersStarted.Value(); got != 4 {
		t.Fatalf("workers started = %d, want 4", got)
	}
}

// TestClosedPlaneFallsBackInline: predictions after Close still complete
// (inline on a private clone) instead of wedging the caller.
func TestClosedPlaneFallsBackInline(t *testing.T) {
	p := New(Config{})
	p.Close()
	ports := onePort(3)
	p.Predict(&fakeModel{}, ports, des.FIFO, "late")
	if len(ports[0].Out) != 3 {
		t.Fatalf("closed-plane fallback did not fill Out: len %d", len(ports[0].Out))
	}
}

// goldenRun executes the serve-shaped scenario and returns the delivery
// trace.
func goldenRun(t *testing.T, model *ptm.PTM, shards int, wrap func(int, core.DeviceModel) core.DeviceModel) []des.Delivery {
	t.Helper()
	g, err := experiments.TopoByName("line4")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := experiments.SchedByName("fifo")
	if err != nil {
		t.Fatal(err)
	}
	tm, err := experiments.TrafficByName("poisson")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := experiments.NewScenario("line4/fifo/poisson", g, sched, tm, 0.5, 0.0002, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Shards: shards, WrapDevice: wrap}
	_, res, err := sc.RunDQNCfg(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Deliveries
}

// TestGoldenDigestsWithPlane pins the headline bit-identity claim: a
// full simulation routed through the shared plane produces exactly the
// same delivery trace as private per-shard inference, at Shards = 1 and
// Shards = 8.
func TestGoldenDigestsWithPlane(t *testing.T) {
	arch := ptm.Arch{TimeSteps: 8, Margin: 2, Embed: 4, BLSTM1: 4, BLSTM2: 4, Heads: 1, DK: 2, DV: 2, HeadOut: 4}
	model, err := ptm.Synthetic(arch, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := goldenRun(t, model, 2, nil)
	if len(want) == 0 {
		t.Fatal("reference run delivered no packets")
	}
	for _, shards := range []int{1, 8} {
		p := New(Config{MaxBatch: 8})
		got := goldenRun(t, model, shards, func(_ int, m core.DeviceModel) core.DeviceModel {
			return p.Wrap(m, "golden")
		})
		p.Close()
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d deliveries via plane, want %d", shards, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shards=%d delivery %d differs via plane:\n  got  %+v\n  want %+v", shards, i, got[i], want[i])
			}
		}
	}
}
