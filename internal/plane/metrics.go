package plane

import "deepqueuenet/internal/obs"

// flushReason tells why a micro-batch left the queue.
type flushReason int

const (
	// flushDrain: the queue ran dry — natural batching, no added wait.
	flushDrain flushReason = iota
	// flushSize: the batch reached MaxBatch calls.
	flushSize
	// flushDeadline: the MaxDelay micro-batch deadline expired.
	flushDeadline
)

func (r flushReason) String() string {
	switch r {
	case flushSize:
		return "size"
	case flushDeadline:
		return "deadline"
	}
	return "drain"
}

// Metrics are the plane's pre-registered dqn_batch_* handles. Every
// counter on the flush path is a pre-created atomic handle, matching
// the serve layer's no-lock-no-alloc metric discipline.
type Metrics struct {
	reg *obs.Registry

	// Calls counts device prediction calls submitted to the plane.
	Calls *obs.Counter
	// Coalesced counts calls that shared their flush with at least one
	// other call — the cross-request batching the plane exists for.
	Coalesced *obs.Counter
	// Flushes counts micro-batch flushes by reason (drain/size/deadline).
	Flushes map[string]*obs.Counter
	// BatchSize observes calls per flush.
	BatchSize *obs.Histogram
	// BatchSeconds observes execution wall time per flush.
	BatchSeconds *obs.Histogram
	// WorkersStarted / WorkerEvictions track warm-worker lifecycle.
	WorkersStarted  *obs.Counter
	WorkerEvictions *obs.Counter
}

// batchSizeBuckets cover micro-batch sizes 1..MaxBatch and beyond.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// batchSecBuckets cover flush execution times: tens of microseconds for
// a lone tiny device through tens of milliseconds for a full mega-batch.
var batchSecBuckets = []float64{1e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25}

// NewMetrics registers the dqn_batch_* families in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		reg:   reg,
		Calls: reg.Counter("dqn_batch_calls_total", "device prediction calls submitted to the inference plane"),
		Coalesced: reg.Counter("dqn_batch_coalesced_total",
			"plane calls that shared a micro-batch flush with at least one other call"),
		Flushes:   make(map[string]*obs.Counter, 3),
		BatchSize: reg.Histogram("dqn_batch_size", "device calls per micro-batch flush", batchSizeBuckets),
		BatchSeconds: reg.Histogram("dqn_batch_seconds",
			"execution wall time per micro-batch flush", batchSecBuckets),
		WorkersStarted:  reg.Counter("dqn_batch_workers_started_total", "warm per-model plane workers spawned"),
		WorkerEvictions: reg.Counter("dqn_batch_worker_evictions_total", "warm plane workers retired by the LRU bound"),
	}
	for _, r := range []flushReason{flushDrain, flushSize, flushDeadline} {
		m.Flushes[r.String()] = reg.Counter("dqn_batch_flushes_total",
			"micro-batch flushes by trigger", obs.L("reason", r.String()))
	}
	return m
}

// bindPlane registers the gauges that read live plane state.
func (m *Metrics) bindPlane(p *Plane) {
	reg := m.reg
	reg.GaugeFunc("dqn_batch_queue_depth", "submitted-but-unfinished plane calls",
		func() float64 { return float64(p.Depth()) })
	reg.GaugeFunc("dqn_batch_workers", "live warm per-model plane workers",
		func() float64 { return float64(p.Workers()) })
}

// observeFlush records one flush.
func (m *Metrics) observeFlush(batch []*call, reason flushReason, elapsedSec float64) {
	m.Calls.Add(uint64(len(batch)))
	if len(batch) > 1 {
		m.Coalesced.Add(uint64(len(batch)))
	}
	m.Flushes[reason.String()].Inc()
	m.BatchSize.Observe(float64(len(batch)))
	m.BatchSeconds.Observe(elapsedSec)
}
