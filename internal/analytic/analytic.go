// Package analytic estimates whole-network path delays from queueing
// theory alone — no device model, no discrete events. It decomposes a
// routed scenario into per-egress-port G/G/1 queues (the QNA recipe:
// Whitt, "The Queueing Network Analyzer", 1983): each port's arrival
// rate is the sum of routed flow demand crossing it, its service rate
// is the line rate over the mean packet size, and its mean wait is
// Kingman's heavy-traffic approximation with a superposition-merged
// arrival SCV. Path statistics are the per-hop sums of wait +
// transmission + propagation, exactly the legs the DES composes.
//
// The whole estimate costs microseconds, which is what makes it a
// serving tier: internal/serve answers with it when the model path is
// broken (breaker open) or too slow for the request's deadline
// (brownout), instead of shedding the request or falling all the way
// back to FIFO serialization.
package analytic

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"deepqueuenet/internal/des"
	"deepqueuenet/internal/experiments"
	"deepqueuenet/internal/metrics"
	"deepqueuenet/internal/queueing"
	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/topo"
	"deepqueuenet/internal/traffic"
)

// ErrUnstable re-exports the queueing package's saturation error: the
// offered load meets or exceeds some port's capacity, so no steady
// state exists and the decomposition has no answer. Callers running
// the degradation ladder match on it to fall to the FIFO rung.
var ErrUnstable = queueing.ErrUnstable

// Input is one scenario in decomposed form.
type Input struct {
	G  *topo.Graph
	RT *topo.Routing
	// Flows lists the routed demands; every flow contributes FlowRate
	// on its forward path and again on its echo path (the evaluation
	// traffic is request/echo, so both legs load the network).
	Flows []topo.FlowDef
	// FlowRate is the mean injection rate of each flow, packets/s.
	// Zero means no demand: all waits are zero and the estimate is the
	// deterministic transmission + propagation sum.
	FlowRate float64
	// MeanPktBytes is the mean packet size in bytes (service demand).
	MeanPktBytes float64
	// CA2 is the squared coefficient of variation of each flow's
	// inter-arrival times (1 for Poisson; see ArrivalSCV).
	CA2 float64
	// CS2 is the service-time SCV (0 for constant packet sizes).
	CS2 float64
	// Buffer, when positive, is the per-port queue capacity in packets;
	// the estimate then includes per-port M/M/1/K blocking.
	Buffer int
}

// PortLoad is the solved state of one loaded egress port.
type PortLoad struct {
	Node, Port int
	Lambda     float64 // packets/s offered
	Mu         float64 // packets/s capacity
	Rho        float64
	Flows      int     // distinct flow legs crossing the port
	WaitSec    float64 // Kingman mean queueing wait
	Blocking   float64 // M/M/1/K loss probability (Buffer > 0)
}

// PathEstimate is the per-path output, keyed like the engine's RTT rows.
type PathEstimate struct {
	Key        string
	Hops       int     // forward-leg hop count (egress ports traversed)
	MeanFwdSec float64 // one-way mean sojourn, forward leg
	MeanRTTSec float64 // request + echo mean sojourn
	P99RTTSec  float64 // gamma-tail approximation of the RTT p99
	// WaitRTTSec / WaitVarSec2 split the RTT into its stochastic part:
	// total mean queueing wait and its variance under the per-hop
	// independent-exponential-wait approximation.
	WaitRTTSec  float64
	WaitVarSec2 float64
	DetRTTSec   float64 // deterministic transmission + propagation part
}

// Estimate is the solved network.
type Estimate struct {
	Paths map[string]*PathEstimate
	// MeanRTTSec averages the per-path mean RTTs over flows; P99RTTSec
	// is the max per-path p99 (an upper bound across paths, since the
	// serve tier reports a single scalar per request).
	MeanRTTSec  float64
	P99RTTSec   float64
	MaxRho      float64
	MaxBlocking float64
	Ports       []PortLoad
}

// z99 is the standard normal 99th percentile, used by the
// Wilson–Hilferty gamma quantile below.
const z99 = 2.3263478740408408

// gammaP99 approximates the 99th percentile of a sum of independent
// waits by moment-matching a gamma distribution (shape k = M²/V, scale
// θ = V/M) and applying the Wilson–Hilferty transform. Degenerate
// moments fall back to the mean (a zero-variance sum has its mean as
// every quantile).
func gammaP99(mean, variance float64) float64 {
	if !(mean > 0) || !(variance > 0) {
		return math.Max(mean, 0)
	}
	k := mean * mean / variance
	theta := variance / mean
	t := 1 - 1/(9*k) + z99*math.Sqrt(1/(9*k))
	q := k * theta * t * t * t
	if q < mean {
		return mean
	}
	return q
}

// portKey identifies one egress port.
type portKey struct{ node, port int }

// portDemand accumulates routed load on one egress port.
type portDemand struct {
	lambda float64
	flows  int
}

// egressPort resolves the port flow fid takes to leave cur toward next,
// mirroring the DES walk: switches consult the (flow, in-port)
// forwarding table; hosts (and any miss) take the first port facing
// next. Returns -1 if no port connects cur to next.
func egressPort(g *topo.Graph, rt *topo.Routing, fid, cur, next, inPort int) int {
	if g.Kinds[cur] == topo.Switch {
		if p := rt.Lookup(cur, fid, inPort); p >= 0 && p < len(g.Ports[cur]) && g.Ports[cur][p].Peer == next {
			return p
		}
	}
	for pi, p := range g.Ports[cur] {
		if p.Peer == next {
			return pi
		}
	}
	return -1
}

// legWalk calls fn for every (node, egress port) pair along the node
// sequence, threading the ingress port the way the forwarding tables
// expect.
func legWalk(g *topo.Graph, rt *topo.Routing, fid int, nodes []int, fn func(node, port int) error) error {
	inPort := -1
	for i := 0; i+1 < len(nodes); i++ {
		cur, next := nodes[i], nodes[i+1]
		p := egressPort(g, rt, fid, cur, next, inPort)
		if p < 0 {
			return fmt.Errorf("analytic: flow %d: no port %d -> %d", fid, cur, next)
		}
		if err := fn(cur, p); err != nil {
			return err
		}
		inPort = g.Ports[cur][p].PeerPort
	}
	return nil
}

// Analyze solves the decomposition. It returns an error wrapping
// ErrUnstable when any port is offered load at or beyond capacity, and
// plain errors for malformed inputs (non-finite rates, unrouted flows,
// non-positive link rates). A successful estimate is always finite.
func Analyze(in Input) (*Estimate, error) {
	if in.G == nil || in.RT == nil {
		return nil, errors.New("analytic: nil topology or routing")
	}
	if math.IsNaN(in.FlowRate) || math.IsInf(in.FlowRate, 0) || in.FlowRate < 0 {
		return nil, fmt.Errorf("analytic: flow rate must be finite and non-negative (got %v)", in.FlowRate)
	}
	if math.IsNaN(in.MeanPktBytes) || math.IsInf(in.MeanPktBytes, 0) || in.MeanPktBytes <= 0 {
		return nil, fmt.Errorf("analytic: mean packet size must be finite and positive (got %v)", in.MeanPktBytes)
	}
	if math.IsNaN(in.CA2) || math.IsInf(in.CA2, 0) || in.CA2 < 0 {
		return nil, fmt.Errorf("analytic: arrival SCV must be finite and non-negative (got %v)", in.CA2)
	}
	if math.IsNaN(in.CS2) || math.IsInf(in.CS2, 0) || in.CS2 < 0 {
		return nil, fmt.Errorf("analytic: service SCV must be finite and non-negative (got %v)", in.CS2)
	}

	// Pass 1: accumulate per-egress-port demand over every flow's
	// forward and echo legs.
	demand := map[portKey]*portDemand{}
	accumulate := func(fid int, nodes []int) error {
		return legWalk(in.G, in.RT, fid, nodes, func(node, port int) error {
			k := portKey{node, port}
			d := demand[k]
			if d == nil {
				d = &portDemand{}
				demand[k] = d
			}
			d.lambda += in.FlowRate
			d.flows++
			return nil
		})
	}
	for _, f := range in.Flows {
		fwd, ok := in.RT.Paths[f.FlowID]
		if !ok {
			return nil, fmt.Errorf("analytic: flow %d has no forward route", f.FlowID)
		}
		if err := accumulate(f.FlowID, fwd); err != nil {
			return nil, err
		}
		rev, ok := in.RT.PathsRev[f.FlowID]
		if !ok {
			return nil, fmt.Errorf("analytic: flow %d has no echo route", f.FlowID)
		}
		if err := accumulate(f.FlowID, rev); err != nil {
			return nil, err
		}
	}

	// Pass 2: solve each loaded port as a G/G/1 queue.
	est := &Estimate{Paths: map[string]*PathEstimate{}}
	waits := map[portKey]float64{}
	for k, d := range demand {
		link := in.G.Ports[k.node][k.port]
		if !(link.RateBps > 0) {
			return nil, fmt.Errorf("analytic: port %d.%d has non-positive rate %v", k.node, k.port, link.RateBps)
		}
		mu := link.RateBps / (8 * in.MeanPktBytes)
		pl := PortLoad{Node: k.node, Port: k.port, Lambda: d.lambda, Mu: mu, Flows: d.flows}
		if d.lambda > 0 {
			pl.Rho = d.lambda / mu
			if pl.Rho >= 1 {
				return nil, fmt.Errorf("analytic: port %d.%d offered rho %.3f (lambda %.0f pps, mu %.0f pps): %w",
					k.node, k.port, pl.Rho, d.lambda, mu, ErrUnstable)
			}
			// Whitt's superposition approximation: merging n
			// equal-rate renewal streams pulls the aggregate SCV
			// toward 1 (Poisson) as n grows and utilization falls.
			ca2 := in.CA2
			if d.flows > 1 {
				w := 1 / (1 + 4*(1-pl.Rho)*(1-pl.Rho)*float64(d.flows-1))
				ca2 = w*in.CA2 + (1 - w)
			}
			wait, err := queueing.KingmanGG1Wait(d.lambda, mu, ca2, in.CS2)
			if err != nil {
				return nil, err
			}
			pl.WaitSec = wait
			if in.Buffer > 0 {
				b, err := queueing.MM1KBlocking(d.lambda, mu, in.Buffer)
				if err != nil {
					return nil, err
				}
				pl.Blocking = b
				if b > est.MaxBlocking {
					est.MaxBlocking = b
				}
			}
			if pl.Rho > est.MaxRho {
				est.MaxRho = pl.Rho
			}
		}
		waits[k] = pl.WaitSec
		est.Ports = append(est.Ports, pl)
	}
	sort.Slice(est.Ports, func(i, j int) bool {
		if est.Ports[i].Node != est.Ports[j].Node {
			return est.Ports[i].Node < est.Ports[j].Node
		}
		return est.Ports[i].Port < est.Ports[j].Port
	})

	// Pass 3: sum each path's legs. Per-hop sojourn = queueing wait +
	// transmission + propagation — exactly the DES composition (host
	// NIC serialization, switch port sojourn, link delay). Waits are
	// treated as independent exponentials (Var = W²) so the path-wait
	// variance is the sum of squares, then the RTT p99 is the
	// deterministic part plus a gamma-tail quantile of the wait sum.
	transPerBit := 8 * in.MeanPktBytes
	type acc struct {
		mean, det, wvar float64
		hops            int
	}
	sumLegs := func(fid int, nodes []int) (acc, error) {
		var a acc
		err := legWalk(in.G, in.RT, fid, nodes, func(node, port int) error {
			link := in.G.Ports[node][port]
			w := waits[portKey{node, port}]
			det := transPerBit/link.RateBps + link.Delay
			a.mean += w + det
			a.det += det
			a.wvar += w * w
			a.hops++
			return nil
		})
		return a, err
	}
	var meanSum float64
	var nPaths int
	for _, f := range in.Flows {
		fwd, err := sumLegs(f.FlowID, in.RT.Paths[f.FlowID])
		if err != nil {
			return nil, err
		}
		rev, err := sumLegs(f.FlowID, in.RT.PathsRev[f.FlowID])
		if err != nil {
			return nil, err
		}
		pe := &PathEstimate{
			Key:         des.PathKey(f.Src, f.Dst),
			Hops:        fwd.hops,
			MeanFwdSec:  fwd.mean,
			MeanRTTSec:  fwd.mean + rev.mean,
			WaitRTTSec:  (fwd.mean - fwd.det) + (rev.mean - rev.det),
			WaitVarSec2: fwd.wvar + rev.wvar,
			DetRTTSec:   fwd.det + rev.det,
		}
		pe.P99RTTSec = pe.DetRTTSec + gammaP99(pe.WaitRTTSec, pe.WaitVarSec2)
		if prev, ok := est.Paths[pe.Key]; ok {
			// Two flows over the same host pair: average the estimates
			// (the engine would pool their samples under one key).
			prev.MeanFwdSec = (prev.MeanFwdSec + pe.MeanFwdSec) / 2
			prev.MeanRTTSec = (prev.MeanRTTSec + pe.MeanRTTSec) / 2
			prev.P99RTTSec = math.Max(prev.P99RTTSec, pe.P99RTTSec)
			prev.WaitRTTSec = (prev.WaitRTTSec + pe.WaitRTTSec) / 2
			prev.WaitVarSec2 = (prev.WaitVarSec2 + pe.WaitVarSec2) / 2
			prev.DetRTTSec = (prev.DetRTTSec + pe.DetRTTSec) / 2
		} else {
			est.Paths[pe.Key] = pe
			if pe.P99RTTSec > est.P99RTTSec {
				est.P99RTTSec = pe.P99RTTSec
			}
		}
		meanSum += fwd.mean + rev.mean
		nPaths++
	}
	if nPaths > 0 {
		est.MeanRTTSec = meanSum / float64(nPaths)
	}
	return est, nil
}

// PathStats converts the estimate into the engine's per-path summary
// shape (metrics.PathStats, seconds). Jitter uses the same per-hop
// independent-wait approximation: for a path-wait standard deviation σ
// the mean absolute difference of two independent samples is 2σ/√π and
// its p99 is ≈ 2.576·√2·σ (normal-difference approximation).
func (e *Estimate) PathStats() map[string]metrics.PathStats {
	out := make(map[string]metrics.PathStats, len(e.Paths))
	for k, p := range e.Paths {
		sigma := math.Sqrt(p.WaitVarSec2)
		out[k] = metrics.PathStats{
			AvgRTT:    p.MeanRTTSec,
			P99RTT:    p.P99RTTSec,
			AvgJitter: 2 * sigma / math.Sqrt(math.Pi),
			P99Jitter: 2.576 * math.Sqrt2 * sigma,
		}
	}
	return out
}

// FromScenario decomposes a calibrated experiments.Scenario: the flow
// rate and mean packet size come from the scenario's own calibration,
// the arrival SCV from its traffic model, and the service SCV is zero
// (the evaluation harness emits constant-size packets).
func FromScenario(sc *experiments.Scenario) (*Estimate, error) {
	return Analyze(Input{
		G:            sc.G,
		RT:           sc.RT,
		Flows:        sc.Flows,
		FlowRate:     sc.PerFlowRate(),
		MeanPktBytes: sc.MeanPacketBytes(),
		CA2:          ArrivalSCV(sc.Model),
		CS2:          0,
	})
}

// scvMu guards the per-process arrival-SCV memo.
var scvMu sync.Mutex
var scvMemo = map[traffic.Model]float64{}

// ArrivalSCV returns the squared coefficient of variation of a traffic
// model's inter-arrival times. Poisson is exactly 1; the other models
// are measured once per process from a fixed-seed generator draw —
// their generators scale time with the target rate, so the SCV is
// rate-invariant and one measurement covers every load point.
func ArrivalSCV(m traffic.Model) float64 {
	if m == traffic.ModelPoisson {
		return 1
	}
	scvMu.Lock()
	defer scvMu.Unlock()
	if v, ok := scvMemo[m]; ok {
		return v
	}
	g := traffic.NewGenerator(m, 0.5, 10e9, traffic.ConstSize(800), rng.New(12345))
	const n = 1 << 14
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		gap, _ := g.NextArrival()
		sum += gap
		sumsq += gap * gap
	}
	mean := sum / n
	v := 1.0
	if mean > 0 {
		if variance := sumsq/n - mean*mean; variance > 0 {
			v = variance / (mean * mean)
		}
	}
	scvMemo[m] = v
	return v
}
