package analytic

import (
	"errors"
	"math"
	"testing"

	"deepqueuenet/internal/des"
	"deepqueuenet/internal/experiments"
	"deepqueuenet/internal/queueing"
	"deepqueuenet/internal/topo"
	"deepqueuenet/internal/traffic"
)

// dumbbell builds h0 — s — h1 with the given rate and delay.
func dumbbell(rateBps, delay float64) (*topo.Graph, []topo.FlowDef, *topo.Routing) {
	g := topo.New()
	h0 := g.AddNode(topo.Host, "h0")
	s := g.AddNode(topo.Switch, "s")
	h1 := g.AddNode(topo.Host, "h1")
	g.Connect(h0, s, rateBps, delay)
	g.Connect(s, h1, rateBps, delay)
	flows := []topo.FlowDef{{FlowID: 1, Src: h0, Dst: h1}}
	rt, err := g.Route(flows)
	if err != nil {
		panic(err)
	}
	return g, flows, rt
}

// TestSingleFlowMatchesClosedForm checks the decomposition by hand on
// the dumbbell: one flow, four loaded egress ports (h0, s→h1 forward;
// h1, s→h0 echo), each an isolated G/G/1 at the same λ and µ.
func TestSingleFlowMatchesClosedForm(t *testing.T) {
	const (
		rate  = 1e9
		delay = 1e-6
		pkt   = 800.0
		lam   = 50000.0 // pps → rho = 0.32
	)
	g, flows, rt := dumbbell(rate, delay)
	est, err := Analyze(Input{G: g, RT: rt, Flows: flows,
		FlowRate: lam, MeanPktBytes: pkt, CA2: 1, CS2: 0})
	if err != nil {
		t.Fatal(err)
	}
	mu := rate / (8 * pkt)
	wait, err := queueing.KingmanGG1Wait(lam, mu, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	perHop := wait + pkt*8/rate + delay
	wantRTT := 4 * perHop // 2 forward legs + 2 echo legs
	key := des.PathKey(flows[0].Src, flows[0].Dst)
	pe := est.Paths[key]
	if pe == nil {
		t.Fatalf("no path estimate under %q (have %v)", key, est.Paths)
	}
	if math.Abs(pe.MeanRTTSec-wantRTT) > 1e-12 {
		t.Errorf("mean RTT %.12g, want %.12g", pe.MeanRTTSec, wantRTT)
	}
	if math.Abs(pe.MeanFwdSec-2*perHop) > 1e-12 {
		t.Errorf("forward mean %.12g, want %.12g", pe.MeanFwdSec, 2*perHop)
	}
	if pe.P99RTTSec < pe.MeanRTTSec {
		t.Errorf("p99 %.12g below mean %.12g", pe.P99RTTSec, pe.MeanRTTSec)
	}
	if math.Abs(est.MaxRho-lam/mu) > 1e-12 {
		t.Errorf("max rho %.6g, want %.6g", est.MaxRho, lam/mu)
	}
	if len(est.Ports) != 4 {
		t.Errorf("loaded ports %d, want 4", len(est.Ports))
	}
}

// TestZeroDemandIsDeterministic: with no offered load every wait is
// zero and the estimate is the transmission + propagation sum.
func TestZeroDemandIsDeterministic(t *testing.T) {
	const (
		rate  = 1e9
		delay = 2e-6
		pkt   = 1000.0
	)
	g, flows, rt := dumbbell(rate, delay)
	est, err := Analyze(Input{G: g, RT: rt, Flows: flows,
		FlowRate: 0, MeanPktBytes: pkt, CA2: 1, CS2: 0})
	if err != nil {
		t.Fatal(err)
	}
	pe := est.Paths[des.PathKey(flows[0].Src, flows[0].Dst)]
	want := 4 * (pkt*8/rate + delay)
	if math.Abs(pe.MeanRTTSec-want) > 1e-15 {
		t.Errorf("zero-demand RTT %.12g, want deterministic %.12g", pe.MeanRTTSec, want)
	}
	if math.Abs(pe.P99RTTSec-want) > 1e-15 {
		t.Errorf("zero-demand p99 %.12g, want %.12g", pe.P99RTTSec, want)
	}
	if pe.WaitRTTSec != 0 || pe.WaitVarSec2 != 0 {
		t.Errorf("zero-demand wait %v var %v, want 0", pe.WaitRTTSec, pe.WaitVarSec2)
	}
}

// TestSaturationIsTypedUnstable: offered load at or beyond capacity
// must surface as ErrUnstable so serve can fall to the FIFO rung.
func TestSaturationIsTypedUnstable(t *testing.T) {
	g, flows, rt := dumbbell(1e9, 1e-6)
	mu := 1e9 / (8 * 800.0)
	_, err := Analyze(Input{G: g, RT: rt, Flows: flows,
		FlowRate: mu, MeanPktBytes: 800, CA2: 1, CS2: 0})
	if !errors.Is(err, ErrUnstable) {
		t.Fatalf("saturated network error %v, want ErrUnstable", err)
	}
	_, err = Analyze(Input{G: g, RT: rt, Flows: flows,
		FlowRate: 2 * mu, MeanPktBytes: 800, CA2: 1, CS2: 0})
	if !errors.Is(err, ErrUnstable) {
		t.Fatalf("oversaturated network error %v, want ErrUnstable", err)
	}
}

// TestHostileInputsRejected: non-finite and negative inputs must error,
// never propagate into the estimate.
func TestHostileInputsRejected(t *testing.T) {
	g, flows, rt := dumbbell(1e9, 1e-6)
	base := Input{G: g, RT: rt, Flows: flows, FlowRate: 1000, MeanPktBytes: 800, CA2: 1, CS2: 0}
	mutate := []struct {
		name string
		fn   func(*Input)
	}{
		{"nan rate", func(in *Input) { in.FlowRate = math.NaN() }},
		{"inf rate", func(in *Input) { in.FlowRate = math.Inf(1) }},
		{"negative rate", func(in *Input) { in.FlowRate = -1 }},
		{"nan pkt", func(in *Input) { in.MeanPktBytes = math.NaN() }},
		{"zero pkt", func(in *Input) { in.MeanPktBytes = 0 }},
		{"nan ca2", func(in *Input) { in.CA2 = math.NaN() }},
		{"negative cs2", func(in *Input) { in.CS2 = -0.25 }},
		{"nil topo", func(in *Input) { in.G = nil }},
	}
	for _, tc := range mutate {
		in := base
		tc.fn(&in)
		if est, err := Analyze(in); err == nil {
			t.Errorf("%s: accepted hostile input (est %+v)", tc.name, est)
		}
	}
}

// TestBufferBlocking: a finite buffer reports nonzero blocking on
// loaded ports and zero on an unloaded network.
func TestBufferBlocking(t *testing.T) {
	g, flows, rt := dumbbell(1e9, 1e-6)
	mu := 1e9 / (8 * 800.0)
	est, err := Analyze(Input{G: g, RT: rt, Flows: flows,
		FlowRate: 0.8 * mu, MeanPktBytes: 800, CA2: 1, CS2: 0, Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	want, err := queueing.MM1KBlocking(0.8*mu, mu, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.MaxBlocking-want) > 1e-12 {
		t.Errorf("max blocking %.6g, want %.6g", est.MaxBlocking, want)
	}
}

// TestFromScenarioFinite runs the scenario-level entry point on a real
// calibrated scenario and checks shape and finiteness: one estimate per
// host pair, all fields finite, PathStats mirrors the estimate.
func TestFromScenarioFinite(t *testing.T) {
	g := topo.Line(4, topo.DefaultLAN)
	sc, err := experiments.NewScenario("t", g, des.SchedConfig{Kind: des.FIFO},
		traffic.ModelPoisson, 0.4, 0.0005, 7)
	if err != nil {
		t.Fatal(err)
	}
	est, err := FromScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Paths) != len(sc.Flows) {
		t.Fatalf("paths %d, want one per flow (%d)", len(est.Paths), len(sc.Flows))
	}
	stats := est.PathStats()
	for k, p := range est.Paths {
		for name, v := range map[string]float64{
			"mean fwd": p.MeanFwdSec, "mean rtt": p.MeanRTTSec, "p99 rtt": p.P99RTTSec,
			"wait": p.WaitRTTSec, "wait var": p.WaitVarSec2, "det": p.DetRTTSec,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Errorf("path %s: %s = %v not finite/non-negative", k, name, v)
			}
		}
		st, ok := stats[k]
		if !ok {
			t.Errorf("PathStats missing key %s", k)
			continue
		}
		if math.Abs(st.AvgRTT-p.MeanRTTSec) > 1e-15 || math.Abs(st.P99RTT-p.P99RTTSec) > 1e-15 {
			t.Errorf("PathStats %s disagrees with estimate", k)
		}
	}
	if est.MeanRTTSec <= 0 || est.P99RTTSec < est.MeanRTTSec {
		t.Errorf("aggregate mean %.3g p99 %.3g malformed", est.MeanRTTSec, est.P99RTTSec)
	}
}

// TestArrivalSCV: Poisson is exactly 1 by definition; the measured
// models must return finite positive values and be stable across calls
// (memoized).
func TestArrivalSCV(t *testing.T) {
	if v := ArrivalSCV(traffic.ModelPoisson); v != 1 {
		t.Fatalf("Poisson SCV %v, want exactly 1", v)
	}
	for _, m := range []traffic.Model{traffic.ModelOnOff, traffic.ModelMAP, traffic.ModelBCLike, traffic.ModelAnarchyLike} {
		v1 := ArrivalSCV(m)
		if math.IsNaN(v1) || math.IsInf(v1, 0) || v1 <= 0 {
			t.Errorf("%v SCV %v not finite positive", m, v1)
		}
		if v2 := ArrivalSCV(m); math.Abs(v2-v1) > 0 {
			t.Errorf("%v SCV not memoized: %v then %v", m, v1, v2)
		}
	}
}
