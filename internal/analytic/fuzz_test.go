package analytic

import (
	"errors"
	"math"
	"testing"

	"deepqueuenet/internal/topo"
)

// FuzzAnalyticScenario drives Analyze over hostile scenarios: arbitrary
// chain topologies (including single-switch paths), zero-demand and
// saturated flow rates, and non-finite parameters. The contract under
// fuzz is the degradation-ladder contract: never panic; a successful
// estimate is finite everywhere; and when the only hostility is
// offered load at or beyond capacity the error must be the typed
// ErrUnstable (so serve can fall to the FIFO rung rather than treating
// it as a malformed request).
func FuzzAnalyticScenario(f *testing.F) {
	// Seeds: nominal load, zero demand, saturation, single-switch path,
	// finite buffer, hostile NaN/Inf parameters, zero packet size.
	f.Add(uint8(4), uint8(2), 50_000.0, 800.0, 1.0, 0.0, uint8(0))
	f.Add(uint8(2), uint8(1), 0.0, 800.0, 1.0, 0.0, uint8(0))
	f.Add(uint8(2), uint8(1), 1e12, 800.0, 1.0, 0.0, uint8(0))
	f.Add(uint8(6), uint8(1), 10_000.0, 1500.0, 4.0, 0.5, uint8(16))
	f.Add(uint8(3), uint8(3), math.NaN(), 800.0, 1.0, 0.0, uint8(0))
	f.Add(uint8(3), uint8(3), 1000.0, math.Inf(1), 1.0, 0.0, uint8(0))
	f.Add(uint8(3), uint8(2), 1000.0, 0.0, 1.0, 0.0, uint8(4))
	f.Add(uint8(5), uint8(4), 200_000.0, 64.0, 0.0, 2.0, uint8(2))

	f.Fuzz(func(t *testing.T, nHosts, nSw uint8, flowRate, pktBytes, ca2, cs2 float64, buffer uint8) {
		hosts := 2 + int(nHosts)%6 // 2..7
		switches := 1 + int(nSw)%4 // 1..4

		// Chain of switches with hosts attached round-robin; every link
		// 10 Gbps. With one switch this exercises single-device paths.
		g := topo.New()
		sw := make([]int, switches)
		for i := range sw {
			sw[i] = g.AddNode(topo.Switch, "s")
		}
		for i := 1; i < switches; i++ {
			g.Connect(sw[i-1], sw[i], 10e9, 1e-6)
		}
		hs := make([]int, hosts)
		for i := range hs {
			hs[i] = g.AddNode(topo.Host, "h")
			g.Connect(hs[i], sw[i%switches], 10e9, 1e-6)
		}
		// Ring of flows; hosts with index ≥ len(flows) stay silent so
		// some ports carry zero demand.
		nFlows := hosts - 1
		flows := make([]topo.FlowDef, nFlows)
		for i := range flows {
			flows[i] = topo.FlowDef{FlowID: i + 1, Src: hs[i], Dst: hs[(i+1)%hosts]}
		}
		rt, err := g.Route(flows)
		if err != nil {
			t.Skip("unroutable construction")
		}

		est, err := Analyze(Input{G: g, RT: rt, Flows: flows,
			FlowRate: flowRate, MeanPktBytes: pktBytes,
			CA2: ca2, CS2: cs2, Buffer: int(buffer)})

		validParams := !math.IsNaN(flowRate) && !math.IsInf(flowRate, 0) && flowRate >= 0 &&
			!math.IsNaN(pktBytes) && !math.IsInf(pktBytes, 0) && pktBytes > 0 &&
			!math.IsNaN(ca2) && !math.IsInf(ca2, 0) && ca2 >= 0 &&
			!math.IsNaN(cs2) && !math.IsInf(cs2, 0) && cs2 >= 0

		if err != nil {
			if !validParams {
				return // hostile parameters: any descriptive error is correct
			}
			// Valid parameters over a well-formed topology: the only
			// legitimate failure is saturation, and it must be typed.
			if !errors.Is(err, ErrUnstable) {
				t.Fatalf("valid inputs failed with untyped error: %v", err)
			}
			return
		}
		if !validParams {
			t.Fatalf("hostile parameters accepted (rate %v pkt %v ca2 %v cs2 %v)", flowRate, pktBytes, ca2, cs2)
		}
		finite := func(name string, v float64) {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("%s = %v not finite/non-negative", name, v)
			}
		}
		finite("MeanRTTSec", est.MeanRTTSec)
		finite("P99RTTSec", est.P99RTTSec)
		finite("MaxRho", est.MaxRho)
		finite("MaxBlocking", est.MaxBlocking)
		if est.MaxRho >= 1 {
			t.Fatalf("estimate returned at rho %v >= 1 instead of ErrUnstable", est.MaxRho)
		}
		if len(est.Paths) == 0 {
			t.Fatal("no path estimates for routed flows")
		}
		for k, p := range est.Paths {
			finite(k+" mean", p.MeanRTTSec)
			finite(k+" p99", p.P99RTTSec)
			finite(k+" wait", p.WaitRTTSec)
			finite(k+" wait var", p.WaitVarSec2)
			if p.P99RTTSec+1e-18 < p.MeanRTTSec {
				t.Fatalf("%s: p99 %v below mean %v", k, p.P99RTTSec, p.MeanRTTSec)
			}
		}
		for _, st := range est.PathStats() {
			finite("AvgRTT", st.AvgRTT)
			finite("P99RTT", st.P99RTT)
			finite("AvgJitter", st.AvgJitter)
			finite("P99Jitter", st.P99Jitter)
		}
	})
}
