package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Time: 1.000001, OrigLen: 1500, Data: []byte{1, 2, 3}},
		{Time: 1.000501, OrigLen: 64, Data: []byte{4}},
		{Time: 2.25, OrigLen: 0, Data: []byte{5, 6}},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records", len(got))
	}
	for i, r := range recs {
		if math.Abs(got[i].Time-r.Time) > 2e-6 {
			t.Fatalf("record %d time %v, want %v", i, got[i].Time, r.Time)
		}
		if !bytes.Equal(got[i].Data, r.Data) {
			t.Fatalf("record %d data mismatch", i)
		}
	}
	// Zero OrigLen falls back to capture length on write.
	if got[2].OrigLen != 2 {
		t.Fatalf("origlen fallback: %d", got[2].OrigLen)
	}
}

func TestBigEndianRead(t *testing.T) {
	var buf bytes.Buffer
	var hdr [24]byte
	binary.BigEndian.PutUint32(hdr[0:4], 0xa1b2c3d4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	buf.Write(hdr[:])
	var ph [16]byte
	binary.BigEndian.PutUint32(ph[0:4], 10)     // sec
	binary.BigEndian.PutUint32(ph[4:8], 500000) // usec
	binary.BigEndian.PutUint32(ph[8:12], 2)
	binary.BigEndian.PutUint32(ph[12:16], 100)
	buf.Write(ph[:])
	buf.Write([]byte{0xaa, 0xbb})

	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].OrigLen != 100 || math.Abs(recs[0].Time-10.5) > 1e-9 {
		t.Fatalf("big-endian record %+v", recs)
	}
}

func TestNanosecondMagic(t *testing.T) {
	var buf bytes.Buffer
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 0xa1b23c4d)
	binary.LittleEndian.PutUint32(hdr[16:20], 65535)
	buf.Write(hdr[:])
	var ph [16]byte
	binary.LittleEndian.PutUint32(ph[0:4], 1)
	binary.LittleEndian.PutUint32(ph[4:8], 500000000) // ns
	binary.LittleEndian.PutUint32(ph[8:12], 0)
	binary.LittleEndian.PutUint32(ph[12:16], 60)
	buf.Write(ph[:])
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(recs[0].Time-1.5) > 1e-9 {
		t.Fatalf("nanos time %v", recs[0].Time)
	}
}

func TestBadMagic(t *testing.T) {
	data := make([]byte, 24)
	if _, err := NewReader(bytes.NewReader(data)); err == nil {
		t.Fatal("expected bad magic error")
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Write(Record{Time: 1, Data: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatalf("writing fixture record: %v", err)
	}
	raw := buf.Bytes()
	_, err := ReadAll(bytes.NewReader(raw[:len(raw)-2]))
	if err == nil || err == io.EOF {
		t.Fatal("expected truncated body error")
	}
}

func TestToArrivals(t *testing.T) {
	recs := []Record{
		{Time: 1.0, OrigLen: 100},
		{Time: 1.5, OrigLen: 200},
		{Time: 1.6, OrigLen: 0, Data: []byte{1, 2, 3}},
	}
	gaps, sizes, err := ToArrivals(recs)
	if err != nil {
		t.Fatal(err)
	}
	if gaps[0] != 0 || math.Abs(gaps[1]-0.5) > 1e-9 || math.Abs(gaps[2]-0.1) > 1e-9 {
		t.Fatalf("gaps %v", gaps)
	}
	if sizes[0] != 100 || sizes[1] != 200 || sizes[2] != 3 {
		t.Fatalf("sizes %v", sizes)
	}
	if _, _, err := ToArrivals(nil); err == nil {
		t.Fatal("expected error for empty capture")
	}
	if _, _, err := ToArrivals([]Record{{Time: 2}, {Time: 1}}); err == nil {
		t.Fatal("expected error for non-monotonic timestamps")
	}
}
