// Package pcap reads and writes the classic libpcap capture format
// (stdlib only), so TGUtil can ingest PCAP files as packet-arrival traces
// exactly as the paper's traffic generation utilities do (§3.1.1).
//
// Only the fields the simulator needs are modeled: per-packet timestamps
// and original lengths. Payload bytes are preserved on read but the
// traffic pipeline only consumes (time, length) pairs.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic numbers of the classic pcap format.
const (
	magicMicros = 0xa1b2c3d4
	magicNanos  = 0xa1b23c4d
)

// Record is one captured packet.
type Record struct {
	Time    float64 // seconds since capture start epoch
	OrigLen int     // original packet length in bytes
	Data    []byte  // captured bytes (possibly truncated)
}

// Reader decodes a classic pcap stream.
type Reader struct {
	r       io.Reader
	order   binary.ByteOrder
	nanos   bool
	snaplen uint32
}

// NewReader parses the global header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	pr := &Reader{r: r}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	magicBE := binary.BigEndian.Uint32(hdr[0:4])
	switch {
	case magicLE == magicMicros:
		pr.order = binary.LittleEndian
	case magicBE == magicMicros:
		pr.order = binary.BigEndian
	case magicLE == magicNanos:
		pr.order, pr.nanos = binary.LittleEndian, true
	case magicBE == magicNanos:
		pr.order, pr.nanos = binary.BigEndian, true
	default:
		return nil, errors.New("pcap: bad magic number")
	}
	pr.snaplen = pr.order.Uint32(hdr[16:20])
	return pr, nil
}

// Next returns the next record, or io.EOF at end of stream.
func (p *Reader) Next() (Record, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(p.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return Record{}, err
	}
	sec := p.order.Uint32(hdr[0:4])
	frac := p.order.Uint32(hdr[4:8])
	capLen := p.order.Uint32(hdr[8:12])
	origLen := p.order.Uint32(hdr[12:16])
	if capLen > p.snaplen+65536 {
		return Record{}, fmt.Errorf("pcap: implausible capture length %d", capLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(p.r, data); err != nil {
		return Record{}, fmt.Errorf("pcap: truncated packet body: %w", err)
	}
	t := float64(sec)
	if p.nanos {
		t += float64(frac) * 1e-9
	} else {
		t += float64(frac) * 1e-6
	}
	return Record{Time: t, OrigLen: int(origLen), Data: data}, nil
}

// ReadAll decodes every record in the stream.
func ReadAll(r io.Reader) ([]Record, error) {
	pr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Record
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// Writer encodes records in classic pcap (microsecond, little-endian).
type Writer struct {
	w io.Writer
}

// NewWriter emits the global header (Ethernet link type, 64 KiB snaplen).
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [24]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:4], magicMicros)
	le.PutUint16(hdr[4:6], 2)       // major
	le.PutUint16(hdr[6:8], 4)       // minor
	le.PutUint32(hdr[16:20], 65535) // snaplen
	le.PutUint32(hdr[20:24], 1)     // LINKTYPE_ETHERNET
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: w}, nil
}

// Write appends one record.
func (p *Writer) Write(rec Record) error {
	var hdr [16]byte
	le := binary.LittleEndian
	sec := uint32(rec.Time)
	usec := uint32((rec.Time - float64(sec)) * 1e6)
	le.PutUint32(hdr[0:4], sec)
	le.PutUint32(hdr[4:8], usec)
	le.PutUint32(hdr[8:12], uint32(len(rec.Data)))
	origLen := rec.OrigLen
	if origLen <= 0 {
		origLen = len(rec.Data)
	}
	le.PutUint32(hdr[12:16], uint32(origLen))
	if _, err := p.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := p.w.Write(rec.Data)
	return err
}

// ToArrivals converts records into the (gap, size) pairs the traffic
// replay generator consumes. Sizes fall back to captured length when the
// original length is missing.
func ToArrivals(recs []Record) (gaps []float64, sizes []int, err error) {
	if len(recs) == 0 {
		return nil, nil, errors.New("pcap: empty capture")
	}
	prev := recs[0].Time
	for i, rec := range recs {
		gap := rec.Time - prev
		if gap < 0 {
			return nil, nil, fmt.Errorf("pcap: record %d goes back in time", i)
		}
		prev = rec.Time
		size := rec.OrigLen
		if size <= 0 {
			size = len(rec.Data)
		}
		if size <= 0 {
			size = 64
		}
		gaps = append(gaps, gap)
		sizes = append(sizes, size)
	}
	return gaps, sizes, nil
}
