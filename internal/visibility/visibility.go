// Package visibility implements trace-analysis queries over per-device
// packet traces — the packet-level visibility that distinguishes
// DeepQueueNet (and DES) from end-to-end estimators (§1, §2.3). Because
// the simulation output is a packet trace per device, questions like
// "which device introduces the most delay to a flow" or "where is the
// bottleneck of the topology given a traffic pattern" are post-hoc
// queries, never retraining.
package visibility

import (
	"sort"

	"deepqueuenet/internal/des"
	"deepqueuenet/internal/metrics"
)

// DeviceReport summarizes one device's traffic and delay contribution.
type DeviceReport struct {
	Device      int
	Packets     int
	Drops       int
	Bytes       int
	MeanSojourn float64
	P99Sojourn  float64
	// Utilization estimates the device's busiest-egress utilization:
	// transmitted bytes over the observation span at the port line rate
	// (needs rateBps > 0 and a non-degenerate span).
	Utilization float64
}

// DeviceBreakdown computes per-device reports from visit traces, sorted
// by mean sojourn (worst first). rateBps, when positive, enables the
// utilization estimate.
func DeviceBreakdown(visits map[int][]des.Visit, rateBps float64) []DeviceReport {
	var out []DeviceReport
	for dev, vs := range visits {
		if len(vs) == 0 {
			continue
		}
		rep := DeviceReport{Device: dev}
		var sojourns []float64
		portBytes := map[int]int{}
		lo, hi := vs[0].Arrive, vs[0].Arrive
		for _, v := range vs {
			if v.Dropped {
				rep.Drops++
				continue
			}
			rep.Packets++
			rep.Bytes += v.Size
			sojourns = append(sojourns, v.Sojourn())
			portBytes[v.OutPort] += v.Size
			if v.Arrive < lo {
				lo = v.Arrive
			}
			if v.Depart > hi {
				hi = v.Depart
			}
		}
		if len(sojourns) == 0 {
			continue
		}
		rep.MeanSojourn = metrics.Mean(sojourns)
		rep.P99Sojourn = metrics.Percentile(sojourns, 99)
		if rateBps > 0 && hi > lo {
			maxBytes := 0
			for _, b := range portBytes {
				if b > maxBytes {
					maxBytes = b
				}
			}
			rep.Utilization = float64(maxBytes*8) / (rateBps * (hi - lo))
		}
		out = append(out, rep)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MeanSojourn != out[j].MeanSojourn {
			return out[i].MeanSojourn > out[j].MeanSojourn
		}
		return out[i].Device < out[j].Device
	})
	return out
}

// Bottleneck returns the device with the largest mean sojourn, or -1
// when there are no visits.
func Bottleneck(visits map[int][]des.Visit) int {
	reports := DeviceBreakdown(visits, 0)
	if len(reports) == 0 {
		return -1
	}
	return reports[0].Device
}

// HopContribution is one device's share of a flow's end-to-end delay.
type HopContribution struct {
	Device      int
	Packets     int
	MeanSojourn float64
	Share       float64 // fraction of the flow's summed mean sojourns
}

// FlowBreakdown decomposes a flow's delay across the devices it
// traverses: "which device introduces the most delay to this flow".
func FlowBreakdown(visits map[int][]des.Visit, flowID int) []HopContribution {
	var out []HopContribution
	total := 0.0
	for dev, vs := range visits {
		var sojourns []float64
		for _, v := range vs {
			if v.FlowID == flowID && !v.Dropped {
				sojourns = append(sojourns, v.Sojourn())
			}
		}
		if len(sojourns) == 0 {
			continue
		}
		m := metrics.Mean(sojourns)
		out = append(out, HopContribution{Device: dev, Packets: len(sojourns), MeanSojourn: m})
		total += m
	}
	if total > 0 {
		for i := range out {
			out[i].Share = out[i].MeanSojourn / total
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MeanSojourn != out[j].MeanSojourn {
			return out[i].MeanSojourn > out[j].MeanSojourn
		}
		return out[i].Device < out[j].Device
	})
	return out
}

// FlowVolume is one flow's traffic contribution at a device or network.
type FlowVolume struct {
	FlowID  int
	Packets int
	Bytes   int
}

// HeavyHitters ranks flows by bytes observed across all devices
// (counting each traversal, so multi-hop flows weigh their footprint).
func HeavyHitters(visits map[int][]des.Visit, topN int) []FlowVolume {
	agg := map[int]*FlowVolume{}
	for _, vs := range visits {
		for _, v := range vs {
			if v.Dropped {
				continue
			}
			f := agg[v.FlowID]
			if f == nil {
				f = &FlowVolume{FlowID: v.FlowID}
				agg[v.FlowID] = f
			}
			f.Packets++
			f.Bytes += v.Size
		}
	}
	out := make([]FlowVolume, 0, len(agg))
	for _, f := range agg {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].FlowID < out[j].FlowID
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}
