package visibility

import (
	"math"
	"testing"

	"deepqueuenet/internal/des"
)

func sampleVisits() map[int][]des.Visit {
	return map[int][]des.Visit{
		// Device 1: fast, flow 7 only.
		1: {
			{PktID: 1, FlowID: 7, Size: 100, OutPort: 0, Arrive: 0.0, Depart: 0.001},
			{PktID: 2, FlowID: 7, Size: 100, OutPort: 0, Arrive: 0.1, Depart: 0.101},
		},
		// Device 2: slow, both flows, one drop.
		2: {
			{PktID: 1, FlowID: 7, Size: 100, OutPort: 1, Arrive: 0.0, Depart: 0.01},
			{PktID: 3, FlowID: 8, Size: 400, OutPort: 1, Arrive: 0.05, Depart: 0.07},
			{PktID: 4, FlowID: 8, Size: 400, OutPort: 1, Dropped: true, Arrive: 0.06},
		},
	}
}

func TestDeviceBreakdownOrderingAndCounts(t *testing.T) {
	reports := DeviceBreakdown(sampleVisits(), 0)
	if len(reports) != 2 {
		t.Fatalf("%d reports", len(reports))
	}
	// Device 2 has the larger mean sojourn and sorts first.
	if reports[0].Device != 2 || reports[1].Device != 1 {
		t.Fatalf("order %+v", reports)
	}
	if reports[0].Packets != 2 || reports[0].Drops != 1 {
		t.Fatalf("device 2 counts %+v", reports[0])
	}
	if math.Abs(reports[0].MeanSojourn-0.015) > 1e-12 {
		t.Fatalf("device 2 mean %v", reports[0].MeanSojourn)
	}
	if reports[1].Bytes != 200 {
		t.Fatalf("device 1 bytes %d", reports[1].Bytes)
	}
}

func TestUtilizationEstimate(t *testing.T) {
	visits := map[int][]des.Visit{
		1: {
			{PktID: 1, Size: 1000, OutPort: 0, Arrive: 0, Depart: 0.5},
			{PktID: 2, Size: 1000, OutPort: 0, Arrive: 0.5, Depart: 1.0},
		},
	}
	// 2000 B over 1 s at 16 kb/s line rate → utilization 1.0.
	reports := DeviceBreakdown(visits, 16000)
	if math.Abs(reports[0].Utilization-1.0) > 1e-9 {
		t.Fatalf("utilization %v", reports[0].Utilization)
	}
}

func TestBottleneck(t *testing.T) {
	if b := Bottleneck(sampleVisits()); b != 2 {
		t.Fatalf("bottleneck %d, want 2", b)
	}
	if b := Bottleneck(nil); b != -1 {
		t.Fatalf("empty bottleneck %d", b)
	}
}

func TestFlowBreakdownShares(t *testing.T) {
	hops := FlowBreakdown(sampleVisits(), 7)
	if len(hops) != 2 {
		t.Fatalf("%d hops", len(hops))
	}
	// Device 2 contributes 0.01 mean, device 1 contributes 0.001.
	if hops[0].Device != 2 {
		t.Fatalf("worst hop %+v", hops[0])
	}
	total := hops[0].Share + hops[1].Share
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("shares sum to %v", total)
	}
	if hops[0].Share < 0.9 {
		t.Fatalf("dominant hop share %v", hops[0].Share)
	}
	// Unknown flow: empty.
	if got := FlowBreakdown(sampleVisits(), 999); len(got) != 0 {
		t.Fatalf("unknown flow got %+v", got)
	}
}

func TestHeavyHitters(t *testing.T) {
	hh := HeavyHitters(sampleVisits(), 0)
	if len(hh) != 2 {
		t.Fatalf("%d flows", len(hh))
	}
	// Flow 7: 3 traversals x 100 B = 300 B; flow 8: 1 x 400 B (drop
	// excluded) = 400 B.
	if hh[0].FlowID != 8 || hh[0].Bytes != 400 {
		t.Fatalf("top flow %+v", hh[0])
	}
	if hh[1].FlowID != 7 || hh[1].Packets != 3 {
		t.Fatalf("second flow %+v", hh[1])
	}
	if got := HeavyHitters(sampleVisits(), 1); len(got) != 1 {
		t.Fatalf("topN not applied: %d", len(got))
	}
}
