package serve_test

// Durability suite: admitted jobs must survive process death. Both
// interruption paths — graceful drain (SIGTERM) and an injected crash
// at an epoch boundary — must leave a recoverable record plus a
// checkpoint, and a second server opened on the same state directory
// must re-enqueue the job, resume it from the snapshot, and finish with
// a digest bit-identical to a never-interrupted run. Terminal
// accounting (received = shed+rejected+completed+failed+canceled+
// deadline) must balance in every process.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"deepqueuenet/internal/chaos"
	"deepqueuenet/internal/checkpoint"
	"deepqueuenet/internal/core"
	"deepqueuenet/internal/guard"
	"deepqueuenet/internal/serve"
)

// durableReq is the shared workload: deterministic, multi-iteration,
// CPU-cheap.
func durableReq(seed uint64) *serve.Request {
	return &serve.Request{Topo: "line4", Duration: 0.0002, Shards: 2, Seed: seed}
}

// uninterruptedDigest runs the request straight through a fresh runner:
// the ground truth a resumed job must reproduce bit for bit.
func uninterruptedDigest(t *testing.T, req serve.Request) string {
	t.Helper()
	r := &serve.ScenarioRunner{DefaultModel: testModel(t), MaxShards: 2}
	res, err := r.Run(context.Background(), &req, serve.RunExact)
	if err != nil {
		t.Fatal(err)
	}
	return res.Digest
}

// assertBalanced checks the terminal-accounting invariant for one
// process's stats snapshot.
func assertBalanced(t *testing.T, st serve.Stats) {
	t.Helper()
	terminal := st.Shed + st.Rejected + st.Completed + st.Failed + st.Canceled + st.Deadline
	if st.Received != terminal {
		t.Fatalf("accounting imbalance: received %d != terminal %d (%+v)", st.Received, terminal, st)
	}
}

// awaitStatus polls the durable record until it reaches want.
func awaitStatus(t *testing.T, s *serve.Server, id, want string) *serve.JobRecord {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last *serve.JobRecord
	for time.Now().Before(deadline) {
		rec, err := s.Job(id)
		if err == nil {
			last = rec
			if rec.Status == want {
				return rec
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q (last record: %+v)", id, want, last)
	return nil
}

func drainWithin(t *testing.T, s *serve.Server, budget time.Duration) time.Duration {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	start := time.Now()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain exceeded its %v budget: %v", budget, err)
	}
	return time.Since(start)
}

// TestDurableCrashRestartResume is the crash leg: a chaos crash at the
// first epoch boundary (simulated process death, after that epoch's
// snapshot hit disk) must leave an interrupted record, and a restarted
// server must resume the job from the snapshot and complete it with the
// uninterrupted digest.
func TestDurableCrashRestartResume(t *testing.T) {
	stateDir := t.TempDir()
	req := durableReq(5)
	want := uninterruptedDigest(t, *req)

	inj := chaos.New(chaos.Config{CrashAfterEpochs: 1})
	runner1 := &serve.ScenarioRunner{
		DefaultModel: testModel(t), MaxShards: 2,
		NoSyncCheckpoints: true, WrapEpochSink: inj.WrapEpochSink,
	}
	srv1 := mustServe(t, serve.Config{
		Workers: 1, QueueDepth: 1, RetryMax: -1, StateDir: stateDir,
	}, runner1)

	_, id, err := srv1.SubmitJob(context.Background(), req)
	if !errors.Is(err, guard.ErrCrash) {
		t.Fatalf("crash-injected submit: err = %v, want guard.ErrCrash", err)
	}
	if id == "" {
		t.Fatal("durable submit returned no job ID")
	}
	rec := awaitStatus(t, srv1, id, serve.JobInterrupted)
	snap, err := checkpoint.Load(stateDir + "/ckpt/" + id + ".ckpt")
	if err != nil {
		t.Fatalf("interrupted job left no loadable checkpoint: %v", err)
	}
	if snap.Iter != 1 {
		t.Fatalf("crash snapshot at iteration %d, want 1", snap.Iter)
	}
	drainWithin(t, srv1, 10*time.Second)
	assertBalanced(t, srv1.Snapshot())

	// Restart: a clean server on the same state directory re-enqueues
	// the interrupted job and resumes it from the snapshot.
	runner2 := &serve.ScenarioRunner{DefaultModel: testModel(t), MaxShards: 2, NoSyncCheckpoints: true}
	srv2 := mustServe(t, serve.Config{
		Workers: 1, QueueDepth: 1, RetryMax: -1, StateDir: stateDir,
	}, runner2)
	rec = awaitStatus(t, srv2, id, serve.JobCompleted)
	if rec.Restarts != 1 {
		t.Fatalf("record restarts = %d, want 1", rec.Restarts)
	}
	if rec.Result == nil || rec.Result.Digest != want {
		t.Fatalf("resumed job digest = %+v, want %s", rec.Result, want)
	}
	if rec.Result.ResumedFrom != 1 {
		t.Fatalf("resumed job restored at iteration %d, want 1", rec.Result.ResumedFrom)
	}
	if _, err := os.Stat(stateDir + "/ckpt/" + id + ".ckpt"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("completed job's checkpoint not cleaned up: %v", err)
	}
	drainWithin(t, srv2, 10*time.Second)
	st := srv2.Snapshot()
	assertBalanced(t, st)
	if st.Completed != 1 || st.Received != 1 {
		t.Fatalf("restarted process stats %+v, want exactly the recovered job completed", st)
	}
}

// TestDurableDrainWritesCheckpointAndRestores is the SIGTERM leg: a
// drain arriving mid-run must interrupt the job, persist its final
// snapshot inside the drain budget, and leave a record a restarted
// server completes — with the client that stayed connected observing
// one coherent (canceled) outcome.
func TestDurableDrainWritesCheckpointAndRestores(t *testing.T) {
	stateDir := t.TempDir()
	req := durableReq(6)
	want := uninterruptedDigest(t, *req)

	// The gated sink parks the engine at its first epoch boundary —
	// after the snapshot hit disk — until the drain has begun, so the
	// drain deterministically lands mid-run.
	entered := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	runner1 := &serve.ScenarioRunner{
		DefaultModel: testModel(t), MaxShards: 2, NoSyncCheckpoints: true,
		WrapEpochSink: func(next core.EpochSink) core.EpochSink {
			return func(st *core.EpochState) error {
				err := next(st)
				once.Do(func() {
					close(entered)
					<-gate
				})
				return err
			}
		},
	}
	srv1 := mustServe(t, serve.Config{
		Workers: 1, QueueDepth: 1, RetryMax: -1, StateDir: stateDir,
	}, runner1)

	type outcome struct {
		id  string
		err error
	}
	clientDone := make(chan outcome, 1)
	go func() {
		_, id, err := srv1.SubmitJob(context.Background(), req)
		clientDone <- outcome{id, err}
	}()
	<-entered // engine is mid-run, first snapshot persisted

	drained := make(chan time.Duration, 1)
	go func() {
		drained <- drainWithin(t, srv1, 10*time.Second)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for !srv1.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !srv1.Draining() {
		t.Fatal("drain never started")
	}
	// Drain cancels every active job immediately after flipping the
	// flag; give that loop a beat before releasing the engine.
	time.Sleep(100 * time.Millisecond)
	close(gate)

	out := <-clientDone
	if !errors.Is(out.err, guard.ErrCanceled) {
		t.Fatalf("client outcome during drain: err = %v, want guard.ErrCanceled", out.err)
	}
	if took := <-drained; took > 10*time.Second {
		t.Fatalf("drain took %v", took)
	}
	rec := awaitStatus(t, srv1, out.id, serve.JobInterrupted)
	if rec.Restarts != 0 {
		t.Fatalf("pre-restart record has Restarts = %d", rec.Restarts)
	}
	snap, err := checkpoint.Load(stateDir + "/ckpt/" + out.id + ".ckpt")
	if err != nil {
		t.Fatalf("drained job left no loadable checkpoint: %v", err)
	}
	if snap.Iter < 1 {
		t.Fatalf("drained snapshot at iteration %d, want >= 1", snap.Iter)
	}
	assertBalanced(t, srv1.Snapshot())

	runner2 := &serve.ScenarioRunner{DefaultModel: testModel(t), MaxShards: 2, NoSyncCheckpoints: true}
	srv2 := mustServe(t, serve.Config{
		Workers: 1, QueueDepth: 1, RetryMax: -1, StateDir: stateDir,
	}, runner2)
	rec = awaitStatus(t, srv2, out.id, serve.JobCompleted)
	if rec.Result == nil || rec.Result.Digest != want {
		t.Fatalf("restored job digest = %+v, want %s", rec.Result, want)
	}
	if rec.Result.ResumedFrom < 1 {
		t.Fatalf("restored job ResumedFrom = %d, want >= 1", rec.Result.ResumedFrom)
	}
	drainWithin(t, srv2, 10*time.Second)
	assertBalanced(t, srv2.Snapshot())
}

// TestDurableJobEndpoint covers the HTTP surface: /simulate returns the
// job ID header, GET /jobs/{id} serves the record, and hostile IDs 404
// without touching the filesystem.
func TestDurableJobEndpoint(t *testing.T) {
	stateDir := t.TempDir()
	runner := &serve.ScenarioRunner{DefaultModel: testModel(t), MaxShards: 2, NoSyncCheckpoints: true}
	srv := mustServe(t, serve.Config{
		Workers: 1, QueueDepth: 1, RetryMax: -1, StateDir: stateDir,
	}, runner)
	defer drainWithin(t, srv, 10*time.Second)
	h := srv.Handler()

	rec := postSim(h, simBody(9))
	if rec.Code != http.StatusOK {
		t.Fatalf("simulate: status %d body %s", rec.Code, rec.Body.String())
	}
	id := rec.Header().Get("X-DQN-Job")
	if id == "" {
		t.Fatal("durable /simulate response missing X-DQN-Job header")
	}

	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		return w
	}
	if w := get("/jobs/" + id); w.Code != http.StatusOK {
		t.Fatalf("GET /jobs/%s: status %d body %s", id, w.Code, w.Body.String())
	}
	for _, hostile := range []string{
		"/jobs/job-1x", "/jobs/nope", "/jobs/job-99999999",
	} {
		if w := get(hostile); w.Code != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", hostile, w.Code)
		}
	}
	// Dot-dot paths never reach the handler: ServeMux canonicalizes them
	// into a redirect, so traversal cannot address the record store.
	if w := get("/jobs/../jobs/" + id); w.Code != http.StatusMovedPermanently {
		t.Fatalf("GET /jobs/../: status %d, want 301 canonicalization", w.Code)
	}
}
