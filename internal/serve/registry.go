package serve

import (
	"fmt"
	"sync"

	"deepqueuenet/internal/checkpoint"
	"deepqueuenet/internal/obs"
	"deepqueuenet/internal/ptm"
)

// maxModelEntries bounds the warm model registry, mirroring the 64-key
// circuit-breaker label bound: the two structures grow with the same
// request field (the model path), so they share one budget.
const maxModelEntries = maxBreakerPathLabels

// modelRegistry is the warm model registry: one entry per model path,
// holding the loaded base model and every lazily derived read-only
// variant (int8-quantized, SEC-stripped, content digest). Entries are
// shared across all concurrent requests — a model is loaded once,
// quantized once, digested once, no matter how many cold-start requests
// race for it — and the entry count is LRU-bounded at maxModelEntries.
type modelRegistry struct {
	mu      sync.Mutex
	clock   uint64
	entries map[string]*modelEntry
	loading map[string]*modelLoad
	// evictions, when non-nil, counts entries dropped by the LRU bound.
	evictions *obs.Counter
}

// modelLoad is one in-flight cold-start load: concurrent requesters for
// the same path park on done instead of loading the file N times
// (singleflight). A failed load is never cached — the next request
// retries, so a half-open breaker probe after the model file is fixed
// sees the fix.
type modelLoad struct {
	done chan struct{}
	e    *modelEntry
	err  error
}

// modelEntry holds the resolved variants of one model path. base is
// immutable after construction; variants are built at most once under
// the entry lock (concurrent requesters of the same variant block on
// the one build instead of each cloning the model).
type modelEntry struct {
	used uint64 // LRU stamp, maintained under modelRegistry.mu

	base *ptm.PTM

	mu     sync.Mutex
	digest string
	quant  *ptm.PTM
	// noSEC maps a parent variant (base or quant) to its SEC-stripped
	// clone. Resolving NoSEC here — instead of per shard inside the
	// engine — keeps a request's model a stable identity, which the
	// inference plane keys its warm workers on.
	noSEC map[*ptm.PTM]*ptm.PTM
}

// entry returns the warm entry for path, invoking load exactly once per
// path across concurrent cold-start requests. evict, when non-nil,
// counts LRU evictions.
func (mr *modelRegistry) entry(path string, evict *obs.Counter, load func() (*ptm.PTM, error)) (*modelEntry, error) {
	mr.mu.Lock()
	mr.evictions = evict
	if mr.entries == nil {
		mr.entries = make(map[string]*modelEntry)
		mr.loading = make(map[string]*modelLoad)
	}
	if e := mr.entries[path]; e != nil {
		mr.clock++
		e.used = mr.clock
		mr.mu.Unlock()
		return e, nil
	}
	if fl := mr.loading[path]; fl != nil {
		mr.mu.Unlock()
		<-fl.done
		return fl.e, fl.err
	}
	fl := &modelLoad{done: make(chan struct{})}
	mr.loading[path] = fl
	mr.mu.Unlock()

	m, err := load()

	mr.mu.Lock()
	delete(mr.loading, path)
	if err == nil {
		fl.e = &modelEntry{base: m}
		mr.clock++
		fl.e.used = mr.clock
		mr.entries[path] = fl.e
		mr.evictLocked()
	}
	fl.err = err
	mr.mu.Unlock()
	close(fl.done)
	return fl.e, fl.err
}

// evictLocked drops least-recently-used entries beyond maxModelEntries.
// The default-model entry ("") is exempt: it is the hot path and costs
// nothing to load, but its derived variants are worth keeping warm.
// Requests already holding an evicted entry keep using it safely — all
// of its models are immutable.
func (mr *modelRegistry) evictLocked() {
	for len(mr.entries) > maxModelEntries {
		var victimKey string
		var victim *modelEntry
		for k, e := range mr.entries {
			if k == "" {
				continue
			}
			if victim == nil || e.used < victim.used {
				victim, victimKey = e, k
			}
		}
		if victim == nil {
			return
		}
		delete(mr.entries, victimKey)
		if mr.evictions != nil {
			mr.evictions.Inc()
		}
	}
}

// len reports the live entry count (tests).
func (mr *modelRegistry) len() int {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	return len(mr.entries)
}

// quantized returns the entry's int8-quantized variant: the base model
// itself when it is already quantized, otherwise a clone built exactly
// once — the exact model is never mutated, so RunExact stays
// bit-identical with the ladder installed. A failed build is not
// cached.
func (e *modelEntry) quantized() (*ptm.PTM, error) {
	if e.base.Quantized() {
		return e.base, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.quant != nil {
		return e.quant, nil
	}
	q := e.base.Clone()
	if err := q.WithQuantized(); err != nil {
		return nil, fmt.Errorf("%w: quantize: %w", errModelInvalid, err)
	}
	e.quant = q
	return q, nil
}

// withoutSEC returns parent with the SEC residual bins stripped,
// building the clone at most once per parent variant. A parent with no
// bins is returned as-is.
func (e *modelEntry) withoutSEC(parent *ptm.PTM) *ptm.PTM {
	if len(parent.SECBins) == 0 {
		return parent
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if v := e.noSEC[parent]; v != nil {
		return v
	}
	v := parent.WithoutSEC()
	if e.noSEC == nil {
		e.noSEC = make(map[*ptm.PTM]*ptm.PTM, 2)
	}
	e.noSEC[parent] = v
	return v
}

// baseDigest returns the SHA-256 identity of the entry's base model,
// computed once. Checkpoint compatibility is keyed on the base digest
// even for NoSEC runs — exactly as when SEC stripping happened inside
// the engine.
func (e *modelEntry) baseDigest() (string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.digest != "" {
		return e.digest, nil
	}
	d, err := checkpoint.ModelDigest(e.base)
	if err != nil {
		return "", err
	}
	e.digest = d
	return d, nil
}
