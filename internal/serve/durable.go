package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Job statuses. pending and interrupted are recoverable: a restarted
// server re-enqueues them. parked is a dead letter: the job failed in a
// way that charged its model's circuit breaker, so its checkpoint is
// kept on disk for inspection but it is not retried automatically. The
// remaining statuses are terminal.
const (
	JobPending     = "pending"
	JobInterrupted = "interrupted"
	JobParked      = "parked"
	JobCompleted   = "completed"
	JobFailed      = "failed"
	JobCanceled    = "canceled"
	JobDeadline    = "deadline"
)

// JobRecord is the durable state of one admitted job, persisted as JSON
// under StateDir and updated atomically at every status transition. A
// record whose process dies mid-run simply stays at its last written
// status — which is exactly what the recovery scan keys on.
type JobRecord struct {
	ID      string   `json:"id"`
	Request *Request `json:"request"`
	Status  string   `json:"status"`
	// Progress is the highest IRSA iteration count the server observed
	// for this job (from partial results at interruption); the resume
	// path reports Progress−snapshot.Iter as epochs lost.
	Progress int `json:"progress,omitempty"`
	// Restarts counts how many server processes have picked this job up
	// beyond the one that admitted it.
	Restarts int     `json:"restarts,omitempty"`
	Result   *Result `json:"result,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// recoverable reports whether a restarted server should re-enqueue the
// record.
func (r *JobRecord) recoverable() bool {
	return r.Status == JobPending || r.Status == JobInterrupted
}

// jobStore persists job records and checkpoints under one state
// directory:
//
//	<dir>/jobs/<id>.json  — JobRecord, atomically replaced per transition
//	<dir>/ckpt/<id>.ckpt  — latest epoch snapshot (internal/checkpoint)
type jobStore struct {
	dir string

	mu  sync.Mutex
	seq uint64
}

// openJobStore creates the layout and seeds the ID sequence past every
// existing record, so a restarted server never reuses an ID.
func openJobStore(dir string) (*jobStore, error) {
	for _, sub := range []string{"jobs", "ckpt"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: create state dir: %w", err)
		}
	}
	st := &jobStore{dir: dir}
	entries, err := os.ReadDir(filepath.Join(dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("serve: scan state dir: %w", err)
	}
	for _, e := range entries {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), "job-%d.json", &n); err == nil && n > st.seq {
			st.seq = n
		}
	}
	return st, nil
}

// newID mints the next job ID.
func (st *jobStore) newID() string {
	st.mu.Lock()
	st.seq++
	id := fmt.Sprintf("job-%08d", st.seq)
	st.mu.Unlock()
	return id
}

// validJobID guards HTTP-supplied IDs against path traversal: only the
// exact shape newID mints is ever looked up.
func validJobID(id string) bool {
	if !strings.HasPrefix(id, "job-") || len(id) > 64 {
		return false
	}
	for _, c := range id[4:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return len(id) > 4
}

func (st *jobStore) recordPath(id string) string {
	return filepath.Join(st.dir, "jobs", id+".json")
}

// CheckpointPathFor is where a job's epoch snapshots live.
func (st *jobStore) checkpointPath(id string) string {
	return filepath.Join(st.dir, "ckpt", id+".ckpt")
}

// put atomically replaces the record file (write temp + rename, same
// discipline as checkpoint.Save).
func (st *jobStore) put(rec *JobRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: marshal job record: %w", err)
	}
	path := st.recordPath(rec.ID)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".rec-*.tmp")
	if err != nil {
		return fmt.Errorf("serve: persist job record: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("serve: persist job record: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("serve: persist job record: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("serve: persist job record: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("serve: persist job record: %w", err)
	}
	return nil
}

// get loads one record.
func (st *jobStore) get(id string) (*JobRecord, error) {
	data, err := os.ReadFile(st.recordPath(id))
	if err != nil {
		return nil, err
	}
	var rec JobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("serve: decode job record %s: %w", id, err)
	}
	return &rec, nil
}

// remove deletes a record and its checkpoint (admission rollback for
// shed jobs).
func (st *jobStore) remove(id string) {
	os.Remove(st.recordPath(id))
	os.Remove(st.checkpointPath(id))
}

// removeCheckpoint discards a finished job's snapshot.
func (st *jobStore) removeCheckpoint(id string) {
	os.Remove(st.checkpointPath(id))
}

// recoverable scans for records a restarted server must re-enqueue,
// in ID order so recovery is deterministic.
func (st *jobStore) recoverable() ([]*JobRecord, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "jobs"))
	if err != nil {
		return nil, err
	}
	var recs []*JobRecord
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), ".json")
		if name == e.Name() || !validJobID(name) {
			continue
		}
		rec, err := st.get(name)
		if err != nil {
			continue // a torn record cannot happen (atomic rename); skip foreign files
		}
		if rec.recoverable() {
			recs = append(recs, rec)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs, nil
}
