package serve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"deepqueuenet/internal/core"
	"deepqueuenet/internal/experiments"
	"deepqueuenet/internal/metrics"
	"deepqueuenet/internal/ptm"
)

// ErrBadRequest marks a request the server can never execute (unknown
// topology, out-of-range load, unloadable parameters): it maps to HTTP
// 400, is never retried, and never charges the circuit breaker.
var ErrBadRequest = errors.New("serve: bad request")

// badRequestf wraps a descriptive error with ErrBadRequest.
func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrBadRequest}, args...)...)
}

// errModelInvalid marks an unloadable or structurally invalid device
// model file. Unlike a bad request it charges the circuit breaker of
// its model path: the path is expected to work and repeated failures
// should trip the degraded fallback.
var errModelInvalid = errors.New("serve: device model invalid")

// Request is one what-if simulation query, the JSON body of POST
// /simulate. Zero fields take server-side defaults.
type Request struct {
	// Topo names the topology (experiments.TopoByName grammar:
	// lineN, torusRxC, fattree16/64/128, abilene, geant, ...).
	Topo string `json:"topo"`
	// Sched names the per-switch scheduler ("fifo", "sp2", "wfq:9,1", ...).
	Sched string `json:"sched,omitempty"`
	// Traffic names the arrival model (poisson, onoff, map, bc, anarchy).
	Traffic string `json:"traffic,omitempty"`
	// Load is the target utilization of the most-shared link, (0, 1).
	Load float64 `json:"load,omitempty"`
	// Duration is the simulated horizon in seconds.
	Duration float64 `json:"duration,omitempty"`
	// Seed seeds the scenario's traffic generators.
	Seed uint64 `json:"seed,omitempty"`
	// Shards is the number of parallel inference shards for this job.
	Shards int `json:"shards,omitempty"`
	// Model is the device-model path this job runs against; "" uses the
	// server's default model. The circuit breaker is keyed on this.
	Model string `json:"model,omitempty"`
	// NoSEC disables statistical error correction.
	NoSEC bool `json:"nosec,omitempty"`
	// TimeoutMs bounds the job's wall-clock runtime; 0 uses the server
	// default, and values above the server maximum are clamped.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// modelKey is the circuit-breaker identity of the request.
func (r *Request) modelKey() string {
	if r.Model == "" {
		return "default"
	}
	return r.Model
}

// Result is the JSON payload of a completed simulation job.
type Result struct {
	Scenario   string  `json:"scenario"`
	Deliveries int     `json:"deliveries"`
	Iterations int     `json:"iterations"`
	Bound      int     `json:"bound"`
	MeanRTTUs  float64 `json:"mean_rtt_us"`
	P99RTTUs   float64 `json:"p99_rtt_us"`
	// Mode is "model" for PTM-driven runs, "degraded-fifo" when the
	// breaker rerouted the job to the exact FIFO fallback.
	Mode string `json:"mode"`
	// Degraded reports whether any device ran the FIFO fallback (all of
	// them under Mode == "degraded-fifo").
	Degraded        bool   `json:"degraded,omitempty"`
	DegradedDevices int    `json:"degraded_devices,omitempty"`
	DegradedReason  string `json:"degraded_reason,omitempty"`
	// Digest is the bit-exact SHA-256 over the delivery trace (the
	// golden-trace scheme) — two runs of the same request agree on it
	// bit for bit, chaos off.
	Digest    string  `json:"digest"`
	ElapsedMs float64 `json:"elapsed_ms"`
	// Attempts counts runner executions including retries.
	Attempts int `json:"attempts"`
}

// Runner executes one admitted simulation job. degraded requests the
// exact FIFO-serialization fallback instead of the device model (the
// circuit breaker's open-state path). Implementations must be
// goroutine-safe; the worker pool calls Run concurrently.
type Runner interface {
	Run(ctx context.Context, req *Request, degraded bool) (*Result, error)
}

// ScenarioRunner is the production Runner: it materializes requests
// into experiments.Scenario runs against cached PTM models.
type ScenarioRunner struct {
	// DefaultModel serves requests with no model path.
	DefaultModel *ptm.PTM
	// MaxShards caps per-request shard counts. <= 0 uses 8.
	MaxShards int
	// MaxDuration caps the simulated horizon per request (admission
	// control against unboundedly large jobs). <= 0 uses 0.01 s.
	MaxDuration float64
	// WrapDevice, when set, is passed through to core.Config.WrapDevice
	// on every non-degraded run — the chaos-injection seam.
	WrapDevice func(switchID int, m core.DeviceModel) core.DeviceModel

	mu    sync.Mutex
	cache map[string]*ptm.PTM
}

// model resolves and caches the device model for one request. Load
// failures are not cached: a half-open probe after the model file is
// fixed must see the fix.
func (r *ScenarioRunner) model(path string) (*ptm.PTM, error) {
	if path == "" {
		if r.DefaultModel == nil {
			return nil, badRequestf("no model path given and no default model configured")
		}
		return r.DefaultModel, nil
	}
	r.mu.Lock()
	m, ok := r.cache[path]
	r.mu.Unlock()
	if ok {
		return m, nil
	}
	m, err := ptm.Load(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", errModelInvalid, err)
	}
	r.mu.Lock()
	if r.cache == nil {
		r.cache = make(map[string]*ptm.PTM)
	}
	r.cache[path] = m
	r.mu.Unlock()
	return m, nil
}

// scenario builds and calibrates the scenario a request describes.
func (r *ScenarioRunner) scenario(req *Request) (*experiments.Scenario, error) {
	g, err := experiments.TopoByName(req.Topo)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	schedName := req.Sched
	if schedName == "" {
		schedName = "fifo"
	}
	sched, err := experiments.SchedByName(schedName)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	trafficName := req.Traffic
	if trafficName == "" {
		trafficName = "poisson"
	}
	tm, err := experiments.TrafficByName(trafficName)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	load := req.Load
	if load == 0 {
		load = 0.5
	}
	if load < 0 || load >= 1 {
		return nil, badRequestf("load %v outside (0, 1)", load)
	}
	maxDur := r.MaxDuration
	if maxDur <= 0 {
		maxDur = 0.01
	}
	dur := req.Duration
	if dur == 0 {
		dur = 0.001
	}
	if dur < 0 || dur > maxDur {
		return nil, badRequestf("duration %v outside (0, %v]", dur, maxDur)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 42
	}
	name := fmt.Sprintf("%s/%s/%s", req.Topo, schedName, trafficName)
	sc, err := experiments.NewScenario(name, g, sched, tm, load, dur, seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	return sc, nil
}

// Run implements Runner.
func (r *ScenarioRunner) Run(ctx context.Context, req *Request, degraded bool) (*Result, error) {
	start := time.Now()
	sc, err := r.scenario(req)
	if err != nil {
		return nil, err
	}
	maxShards := r.MaxShards
	if maxShards <= 0 {
		maxShards = 8
	}
	shards := req.Shards
	if shards <= 0 {
		shards = 1
	}
	if shards > maxShards {
		shards = maxShards
	}
	cfg := core.Config{Shards: shards, NoSEC: req.NoSEC}
	var model *ptm.PTM
	if degraded {
		// PR 1's availability-preserving fallback: no model resolves for
		// any switch, so every device runs the exact transmission-time +
		// FIFO-serialization operator.
		cfg.DeviceFor = func(int) core.DeviceModel { return nil }
	} else {
		model, err = r.model(req.Model)
		if err != nil {
			return nil, err
		}
		cfg.WrapDevice = r.WrapDevice
	}
	samples, res, err := sc.RunDQNCfgCtx(ctx, model, cfg)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Scenario:   sc.Name,
		Deliveries: len(res.Deliveries),
		Iterations: res.Iterations,
		Bound:      res.Bound,
		Digest:     Digest(res),
		ElapsedMs:  float64(time.Since(start)) / float64(time.Millisecond),
	}
	if degraded {
		out.Mode = "degraded-fifo"
	} else {
		out.Mode = "model"
	}
	if res.Degraded() {
		out.Degraded = true
		out.DegradedDevices = len(res.DegradedDevices)
		if !degraded {
			out.DegradedReason = res.DegradedReasons[res.DegradedDevices[0]]
		}
	}
	var all []float64
	for _, v := range samples {
		all = append(all, v...)
	}
	if len(all) > 0 {
		out.MeanRTTUs = metrics.Mean(all) * 1e6
		out.P99RTTUs = metrics.Percentile(all, 99) * 1e6
	}
	return out, nil
}

// Digest hashes a result's delivery trace bit-exactly — packet identity
// plus the raw IEEE-754 bits of each send/receive time — with the same
// scheme as the repository's golden-trace tests, so a served run can be
// checked bit-for-bit against a direct engine run.
func Digest(res *core.Result) string {
	h := sha256.New()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, d := range res.Deliveries {
		w(d.PktID)
		w(uint64(d.FlowID))
		if d.IsRTT {
			w(1)
		} else {
			w(0)
		}
		w(math.Float64bits(d.SendTime))
		w(math.Float64bits(d.RecvTime))
	}
	return hex.EncodeToString(h.Sum(nil))
}
