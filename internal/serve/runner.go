package serve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"sync"
	"time"

	"deepqueuenet/internal/analytic"
	"deepqueuenet/internal/checkpoint"
	"deepqueuenet/internal/core"
	"deepqueuenet/internal/experiments"
	"deepqueuenet/internal/metrics"
	"deepqueuenet/internal/obs"
	"deepqueuenet/internal/plane"
	"deepqueuenet/internal/ptm"
	"deepqueuenet/internal/topo"
)

// ErrBadRequest marks a request the server can never execute (unknown
// topology, out-of-range load, unloadable parameters): it maps to HTTP
// 400, is never retried, and never charges the circuit breaker.
var ErrBadRequest = errors.New("serve: bad request")

// badRequestf wraps a descriptive error with ErrBadRequest.
func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrBadRequest}, args...)...)
}

// errModelInvalid marks an unloadable or structurally invalid device
// model file. Unlike a bad request it charges the circuit breaker of
// its model path: the path is expected to work and repeated failures
// should trip the degraded fallback.
var errModelInvalid = errors.New("serve: device model invalid")

// Request is one what-if simulation query, the JSON body of POST
// /simulate. Zero fields take server-side defaults.
type Request struct {
	// Topo names the topology (experiments.TopoByName grammar:
	// lineN, torusRxC, fattree16/64/128, abilene, geant, ...).
	Topo string `json:"topo"`
	// Sched names the per-switch scheduler ("fifo", "sp2", "wfq:9,1", ...).
	Sched string `json:"sched,omitempty"`
	// Traffic names the arrival model (poisson, onoff, map, bc, anarchy).
	Traffic string `json:"traffic,omitempty"`
	// Load is the target utilization of the most-shared link, (0, 1).
	Load float64 `json:"load,omitempty"`
	// Duration is the simulated horizon in seconds.
	Duration float64 `json:"duration,omitempty"`
	// Seed seeds the scenario's traffic generators.
	Seed uint64 `json:"seed,omitempty"`
	// Shards is the number of parallel inference shards for this job.
	Shards int `json:"shards,omitempty"`
	// Model is the device-model path this job runs against; "" uses the
	// server's default model. The circuit breaker is keyed on this.
	Model string `json:"model,omitempty"`
	// NoSEC disables statistical error correction.
	NoSEC bool `json:"nosec,omitempty"`
	// TimeoutMs bounds the job's wall-clock runtime; 0 uses the server
	// default, and values above the server maximum are clamped.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Fidelity selects the client's position on the degradation ladder:
	//   "exact" — full-fidelity model runs only; a breaker-open or
	//             brownout condition fails the request instead of
	//             answering at reduced fidelity.
	//   "auto"  — (also "") the server may walk the ladder: quantized
	//             or analytic answers under deadline pressure or
	//             overload, analytic (then FIFO) when the breaker is
	//             open.
	//   "fast"  — answer analytically right away, skipping the queue
	//             and the model entirely (O(µs), no per-packet trace).
	Fidelity string `json:"fidelity,omitempty"`

	// Serve-internal durability fields, set by the server for durable
	// jobs — never part of the wire API or the persisted record.
	// CheckpointPath is where the job snapshots its epoch state (and
	// where an existing snapshot is resumed from); CheckpointEvery is
	// the snapshot cadence in IRSA iterations; LastProgress is the
	// highest iteration count a previous process reported, used to
	// account epochs lost to a crash.
	CheckpointPath  string `json:"-"`
	CheckpointEvery int    `json:"-"`
	LastProgress    int    `json:"-"`
}

// modelKey is the circuit-breaker identity of the request.
func (r *Request) modelKey() string {
	if r.Model == "" {
		return "default"
	}
	return r.Model
}

// fidelityValid reports whether the request's fidelity field is one of
// the wire-legal values.
func (r *Request) fidelityValid() bool {
	switch r.Fidelity {
	case "", "exact", "auto", "fast":
		return true
	}
	return false
}

// exactOnly reports whether the client opted out of the degradation
// ladder.
func (r *Request) exactOnly() bool { return r.Fidelity == "exact" }

// Result is the JSON payload of a completed simulation job.
type Result struct {
	Scenario   string  `json:"scenario"`
	Deliveries int     `json:"deliveries"`
	Iterations int     `json:"iterations"`
	Bound      int     `json:"bound"`
	MeanRTTUs  float64 `json:"mean_rtt_us"`
	P99RTTUs   float64 `json:"p99_rtt_us"`
	// Mode is "model" for exact PTM-driven runs, "model-quant" for the
	// int8-quantized backend, "analytic" for the queueing-theory
	// estimate, and "degraded-fifo" for the exact FIFO-serialization
	// rung.
	Mode string `json:"mode"`
	// Fidelity is the degradation-ladder tier that produced the answer:
	// "exact", "quant", "analytic", or "fifo" (mirrors X-DQN-Fidelity).
	Fidelity string `json:"fidelity,omitempty"`
	// BreakerOpen reports that an open circuit breaker rerouted this
	// job down the ladder (the X-DQN-Degraded condition).
	BreakerOpen bool `json:"breaker_open,omitempty"`
	// Degraded reports whether any device ran the FIFO fallback (all of
	// them under Mode == "degraded-fifo").
	Degraded        bool   `json:"degraded,omitempty"`
	DegradedDevices int    `json:"degraded_devices,omitempty"`
	DegradedReason  string `json:"degraded_reason,omitempty"`
	// Digest is the bit-exact SHA-256 over the delivery trace (the
	// golden-trace scheme) — two runs of the same request agree on it
	// bit for bit, chaos off.
	Digest    string  `json:"digest"`
	ElapsedMs float64 `json:"elapsed_ms"`
	// Attempts counts runner executions including retries.
	Attempts int `json:"attempts"`
	// ResumedFrom is the IRSA iteration this run was restored at when it
	// picked up a checkpoint from an interrupted predecessor (0 = ran
	// from scratch).
	ResumedFrom int `json:"resumed_from,omitempty"`
}

// RunMode is one rung of the degradation ladder, in fidelity order.
type RunMode int

// The ladder, top to bottom.
const (
	// RunExact runs the full float64 device model.
	RunExact RunMode = iota
	// RunQuant runs the int8-quantized inference backend — same engine,
	// cheaper arithmetic, accuracy bounded by the quant golden gates.
	RunQuant
	// RunAnalytic answers from the queueing-theory decomposition
	// (internal/analytic): O(µs), path statistics only, no trace.
	RunAnalytic
	// RunFIFO is the final rung: the exact transmission-time + FIFO
	// serialization engine with no model at all.
	RunFIFO
)

// Fidelity is the tier's wire name (X-DQN-Fidelity, dqn_fidelity_total).
func (m RunMode) Fidelity() string {
	switch m {
	case RunExact:
		return "exact"
	case RunQuant:
		return "quant"
	case RunAnalytic:
		return "analytic"
	case RunFIFO:
		return "fifo"
	}
	return "unknown"
}

// String implements fmt.Stringer.
func (m RunMode) String() string { return m.Fidelity() }

// Runner executes one admitted simulation job at the requested rung of
// the degradation ladder. Implementations must be goroutine-safe; the
// worker pool calls Run concurrently.
type Runner interface {
	Run(ctx context.Context, req *Request, mode RunMode) (*Result, error)
}

// ScenarioRunner is the production Runner: it materializes requests
// into experiments.Scenario runs against cached PTM models.
type ScenarioRunner struct {
	// DefaultModel serves requests with no model path.
	DefaultModel *ptm.PTM
	// MaxShards caps per-request shard counts. <= 0 uses 8.
	MaxShards int
	// MaxDuration caps the simulated horizon per request (admission
	// control against unboundedly large jobs). <= 0 uses 0.01 s.
	MaxDuration float64
	// WrapDevice, when set, is passed through to core.Config.WrapDevice
	// on every non-degraded run — the chaos-injection seam.
	WrapDevice func(switchID int, m core.DeviceModel) core.DeviceModel
	// WrapEpochSink, when set, wraps each durable job's checkpoint sink
	// — the chaos crash-injection seam.
	WrapEpochSink func(core.EpochSink) core.EpochSink
	// Checkpoints, when non-nil, records snapshot and resume metrics
	// for durable jobs.
	Checkpoints *obs.CheckpointMetrics
	// NoSyncCheckpoints skips the per-snapshot fsync (tests and
	// benchmarks on tmpfs).
	NoSyncCheckpoints bool
	// Quantize switches freshly loaded request models to the int8
	// quantized inference backend. It is applied once, on the cache-miss
	// path, so every request for a path sees the same backend. The
	// DefaultModel is NOT quantized here — quantize it before handing it
	// to the runner (cmd/dqnserve does this under -quant) so there is no
	// mutation after the runner starts serving.
	Quantize bool
	// Plane, when non-nil, routes every device prediction through the
	// shared cross-request inference plane: the resolved model is
	// wrapped in a plane handle (innermost, below WrapDevice) so all
	// concurrent jobs sharing a model coalesce onto one warm worker.
	Plane *plane.Plane
	// CacheEvictions, when non-nil, counts runner cache entries dropped
	// by the LRU bounds (model registry and topology digests).
	CacheEvictions *obs.Counter

	registry modelRegistry

	mu          sync.Mutex
	topoDigests map[string]string
}

// entry resolves the warm registry entry for a model path. Cold-start
// loads are singleflighted per path; load failures are not cached, so a
// half-open probe after the model file is fixed must see the fix.
func (r *ScenarioRunner) entry(path string) (*modelEntry, error) {
	if path == "" {
		if r.DefaultModel == nil {
			return nil, badRequestf("no model path given and no default model configured")
		}
		return r.registry.entry("", r.CacheEvictions, func() (*ptm.PTM, error) {
			return r.DefaultModel, nil
		})
	}
	return r.registry.entry(path, r.CacheEvictions, func() (*ptm.PTM, error) {
		m, err := ptm.Load(path)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", errModelInvalid, err)
		}
		if r.Quantize {
			if err := m.WithQuantized(); err != nil {
				return nil, fmt.Errorf("%w: quantize: %w", errModelInvalid, err)
			}
		}
		return m, nil
	})
}

// resolve returns the device model one request runs at the given rung,
// from the warm registry: the base model, its int8-quantized variant,
// and SEC-stripped variants are each built once per path and shared
// read-only across every concurrent request. NoSEC is resolved here
// rather than per shard inside the engine (bit-identical — the same
// clone the engine would build, built once), so a request's model is a
// stable identity the inference plane can key its warm workers on.
func (r *ScenarioRunner) resolve(req *Request, mode RunMode) (*ptm.PTM, *modelEntry, error) {
	e, err := r.entry(req.Model)
	if err != nil {
		return nil, nil, err
	}
	m := e.base
	if mode == RunQuant {
		if m, err = e.quantized(); err != nil {
			return nil, nil, err
		}
	}
	if req.NoSEC {
		m = e.withoutSEC(m)
	}
	return m, e, nil
}

// deviceWrap composes the per-run device wrapper: the shared plane
// handle innermost, the configured WrapDevice (chaos injection) on top
// — injected faults fire in the submitting shard goroutine, where the
// engine's guard expects them, while the plane's warm worker only ever
// runs the true model.
func (r *ScenarioRunner) deviceWrap(req *Request) func(int, core.DeviceModel) core.DeviceModel {
	user := r.WrapDevice
	pl := r.Plane
	if pl == nil {
		return user
	}
	tag := req.modelKey()
	return func(id int, m core.DeviceModel) core.DeviceModel {
		var d core.DeviceModel = pl.Wrap(m, tag)
		if user != nil {
			d = user(id, d)
		}
		return d
	}
}

// topoDigestFor caches the topology digest by topology name (the
// request grammar is deterministic: one name, one graph). The cache is
// count-bounded like the registry; past the bound an arbitrary entry is
// dropped — recomputation is cheap.
func (r *ScenarioRunner) topoDigestFor(name string, g *topo.Graph) string {
	r.mu.Lock()
	d, ok := r.topoDigests[name]
	r.mu.Unlock()
	if ok {
		return d
	}
	d = checkpoint.TopoDigest(g)
	r.mu.Lock()
	if r.topoDigests == nil {
		r.topoDigests = make(map[string]string)
	}
	if _, ok := r.topoDigests[name]; !ok && len(r.topoDigests) >= maxModelEntries {
		for k := range r.topoDigests {
			delete(r.topoDigests, k)
			break
		}
		if r.CacheEvictions != nil {
			r.CacheEvictions.Inc()
		}
	}
	r.topoDigests[name] = d
	r.mu.Unlock()
	return d
}

// scenario builds and calibrates the scenario a request describes.
func (r *ScenarioRunner) scenario(req *Request) (*experiments.Scenario, error) {
	g, err := experiments.TopoByName(req.Topo)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	schedName := req.Sched
	if schedName == "" {
		schedName = "fifo"
	}
	sched, err := experiments.SchedByName(schedName)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	trafficName := req.Traffic
	if trafficName == "" {
		trafficName = "poisson"
	}
	tm, err := experiments.TrafficByName(trafficName)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	load := req.Load
	if load == 0 {
		load = 0.5
	}
	if load < 0 || load >= 1 {
		return nil, badRequestf("load %v outside (0, 1)", load)
	}
	maxDur := r.MaxDuration
	if maxDur <= 0 {
		maxDur = 0.01
	}
	dur := req.Duration
	if dur == 0 {
		dur = 0.001
	}
	if dur < 0 || dur > maxDur {
		return nil, badRequestf("duration %v outside (0, %v]", dur, maxDur)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 42
	}
	name := fmt.Sprintf("%s/%s/%s", req.Topo, schedName, trafficName)
	sc, err := experiments.NewScenario(name, g, sched, tm, load, dur, seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	return sc, nil
}

// Run implements Runner.
func (r *ScenarioRunner) Run(ctx context.Context, req *Request, mode RunMode) (*Result, error) {
	start := time.Now()
	sc, err := r.scenario(req)
	if err != nil {
		return nil, err
	}
	if mode == RunAnalytic {
		// The analytic tier never touches the engine or the model: the
		// scenario decomposes into per-port G/G/1 queues and the path
		// statistics come from closed forms. A saturated port surfaces
		// as analytic.ErrUnstable and the caller falls to the FIFO rung.
		est, aerr := analytic.FromScenario(sc)
		if aerr != nil {
			return nil, aerr
		}
		return &Result{
			Scenario:  sc.Name,
			Mode:      "analytic",
			Fidelity:  RunAnalytic.Fidelity(),
			MeanRTTUs: est.MeanRTTSec * 1e6,
			P99RTTUs:  est.P99RTTSec * 1e6,
			ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
		}, nil
	}
	maxShards := r.MaxShards
	if maxShards <= 0 {
		maxShards = 8
	}
	shards := req.Shards
	if shards <= 0 {
		shards = 1
	}
	if shards > maxShards {
		shards = maxShards
	}
	// NoSEC is resolved into the model by the registry below, not by the
	// engine, so concurrent NoSEC and SEC requests for one path still
	// share stable model identities (and hence plane workers).
	cfg := core.Config{Shards: shards}
	var model *ptm.PTM
	var ent *modelEntry
	switch mode {
	case RunFIFO:
		// PR 1's availability-preserving fallback: no model resolves for
		// any switch, so every device runs the exact transmission-time +
		// FIFO-serialization operator.
		cfg.DeviceFor = func(int) core.DeviceModel { return nil }
	default:
		model, ent, err = r.resolve(req, mode)
		if err != nil {
			return nil, err
		}
		cfg.WrapDevice = r.deviceWrap(req)
	}
	resumedFrom := 0
	if req.CheckpointPath != "" && mode == RunExact {
		// Durable job: attach the checkpoint sink and, when a snapshot
		// from an interrupted predecessor exists and digest-matches this
		// run, resume from it.
		modelDigest, derr := ent.baseDigest()
		if derr != nil {
			return nil, fmt.Errorf("%w: %w", errModelInvalid, derr)
		}
		w := &checkpoint.Writer{
			Path:        req.CheckpointPath,
			TopoDigest:  r.topoDigestFor(req.Topo, sc.G),
			ModelDigest: modelDigest,
			Seed:        sc.Seed,
			NoSync:      r.NoSyncCheckpoints,
			Metrics:     r.Checkpoints,
		}
		sink := w.Sink()
		if r.WrapEpochSink != nil {
			sink = r.WrapEpochSink(sink)
		}
		cfg.EpochSink = sink
		cfg.EpochEvery = req.CheckpointEvery
		if cfg.EpochEvery <= 0 {
			cfg.EpochEvery = 1
		}
		if snap, lerr := checkpoint.Load(req.CheckpointPath); lerr == nil {
			if verr := snap.Validate(w.TopoDigest, w.ModelDigest); verr == nil {
				cfg.Resume = snap.EpochState()
				resumedFrom = snap.Iter
				if r.Checkpoints != nil {
					r.Checkpoints.Resumes.Inc()
					if req.LastProgress > snap.Iter {
						r.Checkpoints.EpochsLost.Add(uint64(req.LastProgress - snap.Iter))
					}
				}
			} else if r.Checkpoints != nil {
				r.Checkpoints.ResumeFailures.Inc()
			}
		} else if !errors.Is(lerr, fs.ErrNotExist) && r.Checkpoints != nil {
			// A snapshot that exists but cannot be decoded: count it and
			// run from scratch — robustness over resumption.
			r.Checkpoints.ResumeFailures.Inc()
		}
	}
	samples, res, err := sc.RunDQNCfgCtx(ctx, model, cfg)
	if err != nil && cfg.Resume != nil && errors.Is(err, core.ErrResumeMismatch) {
		// The snapshot matched our digests but not the regenerated
		// traffic (e.g. a generator change across versions): drop it and
		// run from scratch rather than failing the job.
		if r.Checkpoints != nil {
			r.Checkpoints.ResumeFailures.Inc()
		}
		cfg.Resume = nil
		resumedFrom = 0
		samples, res, err = sc.RunDQNCfgCtx(ctx, model, cfg)
	}
	if err != nil {
		if req.CheckpointPath != "" && res != nil {
			// Durable jobs report partial progress with the error so the
			// server can account epochs lost on resume.
			return &Result{Scenario: sc.Name, Iterations: res.Iterations, ResumedFrom: resumedFrom}, err
		}
		return nil, err
	}
	out := &Result{
		Scenario:    sc.Name,
		Deliveries:  len(res.Deliveries),
		Iterations:  res.Iterations,
		Bound:       res.Bound,
		ResumedFrom: resumedFrom,
		Digest:      Digest(res),
		ElapsedMs:   float64(time.Since(start)) / float64(time.Millisecond),
	}
	switch mode {
	case RunFIFO:
		out.Mode = "degraded-fifo"
	case RunQuant:
		out.Mode = "model-quant"
	default:
		out.Mode = "model"
	}
	out.Fidelity = mode.Fidelity()
	if res.Degraded() {
		out.Degraded = true
		out.DegradedDevices = len(res.DegradedDevices)
		if mode != RunFIFO {
			out.DegradedReason = res.DegradedReasons[res.DegradedDevices[0]]
		}
	}
	var all []float64
	for _, v := range samples {
		all = append(all, v...)
	}
	if len(all) > 0 {
		out.MeanRTTUs = metrics.Mean(all) * 1e6
		out.P99RTTUs = metrics.Percentile(all, 99) * 1e6
	}
	return out, nil
}

// Digest hashes a result's delivery trace bit-exactly — packet identity
// plus the raw IEEE-754 bits of each send/receive time — with the same
// scheme as the repository's golden-trace tests, so a served run can be
// checked bit-for-bit against a direct engine run.
func Digest(res *core.Result) string {
	h := sha256.New()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, d := range res.Deliveries {
		w(d.PktID)
		w(uint64(d.FlowID))
		if d.IsRTT {
			w(1)
		} else {
			w(0)
		}
		w(math.Float64bits(d.SendTime))
		w(math.Float64bits(d.RecvTime))
	}
	return hex.EncodeToString(h.Sum(nil))
}
