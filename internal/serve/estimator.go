package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// maxEstimatorKeys bounds the per-topology estimate table: the topology
// name comes off the wire, so without a bound a client could grow the
// map without limit (the same rule as maxBreakerPathLabels). Overflow
// keys share one "other" slot.
const maxEstimatorKeys = 64

// runEstimator keeps an EWMA (α = 1/8) of exact-run wall time keyed by
// topology name — the scenario dimension that dominates job cost. The
// brownout router compares a job's remaining deadline against this
// estimate to decide whether exact fidelity can still finish in time.
type runEstimator struct {
	mu     sync.Mutex
	byTopo map[string]*atomic.Int64
}

// handle returns (creating on first use) the EWMA cell for a topology.
func (e *runEstimator) handle(topoName string) *atomic.Int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.byTopo == nil {
		e.byTopo = make(map[string]*atomic.Int64)
	}
	h, ok := e.byTopo[topoName]
	if ok {
		return h
	}
	if len(e.byTopo) >= maxEstimatorKeys {
		topoName = "other"
		if h, ok = e.byTopo[topoName]; ok {
			return h
		}
	}
	h = new(atomic.Int64)
	e.byTopo[topoName] = h
	return h
}

// observe folds one exact-run duration into the topology's EWMA.
func (e *runEstimator) observe(topoName string, d time.Duration) {
	h := e.handle(topoName)
	for {
		old := h.Load()
		next := int64(d)
		if old != 0 {
			next = old + (int64(d)-old)/8
		}
		if h.CompareAndSwap(old, next) {
			return
		}
	}
}

// estimate returns the expected exact run time for a topology, or 0
// when nothing has been observed yet.
func (e *runEstimator) estimate(topoName string) time.Duration {
	e.mu.Lock()
	h, ok := e.byTopo[topoName]
	if !ok {
		h = e.byTopo["other"]
	}
	e.mu.Unlock()
	if h == nil {
		return 0
	}
	return time.Duration(h.Load())
}
