// Package serve is the resilient simulation-serving layer: it runs
// concurrent DeepQueueNet jobs (Sim.RunContext via a Runner) through a
// bounded worker pool behind a bounded admission queue, propagates
// per-request deadlines, sheds load with Retry-After when the queue is
// full, contains repeated model failures behind per-model-path circuit
// breakers (reusing the engine's degraded-FIFO fallback while open),
// retries transient faults with exponential backoff and jitter, and
// drains in-flight jobs on shutdown. The failure taxonomy is
// internal/guard's: shard panics, divergence, cancellation, deadlines,
// and breaker-open states all stay inspectable with errors.Is/As.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"deepqueuenet/internal/guard"
	"deepqueuenet/internal/obs"
	"deepqueuenet/internal/plane"
	"deepqueuenet/internal/rng"
)

// Config tunes the server's resilience envelope.
type Config struct {
	// Workers is the number of concurrently executing simulation jobs.
	// <= 0 uses 2.
	Workers int
	// QueueDepth bounds the admission queue beyond the in-flight jobs;
	// a request arriving with the queue full is shed with 429 +
	// Retry-After instead of queuing unboundedly. <= 0 uses 8.
	QueueDepth int
	// DefaultTimeout is the per-job deadline when the request names
	// none. <= 0 uses 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines. <= 0 uses 2m.
	MaxTimeout time.Duration
	// RetryMax is how many times a transient job failure (shard panic,
	// divergence) is retried before surfacing. < 0 disables retries;
	// 0 uses 2.
	RetryMax int
	// RetryBase is the first backoff delay; attempt n waits
	// RetryBase·2ⁿ plus jitter, capped at RetryCap. <= 0 uses 25ms.
	RetryBase time.Duration
	// RetryCap bounds a single backoff delay. <= 0 uses 1s.
	RetryCap time.Duration
	// Breaker configures the per-model-path circuit breakers.
	Breaker BreakerConfig
	// Seed seeds the jitter generator (deterministic tests). 0 uses 1.
	Seed uint64
	// Now is the clock (injectable for deterministic breaker tests);
	// nil uses time.Now.
	Now func() time.Time
	// MaxBodyBytes caps the size of a /simulate request body; an
	// oversized body is refused with 413 before any decoding buffers
	// grow. <= 0 uses 2 MiB.
	MaxBodyBytes int64
	// StateDir, when non-empty, makes jobs durable: every admitted job
	// gets an atomically persisted JSON record under StateDir, running
	// jobs checkpoint their epoch state there, and a restarted server
	// re-enqueues every record that was pending or interrupted when the
	// previous process died — resuming mid-run jobs from their last
	// snapshot. Empty disables durability (no files, no overhead).
	StateDir string
	// CheckpointEvery is the epoch cadence (in IRSA iterations) of
	// durable jobs' snapshots. <= 0 uses 1 (every boundary).
	CheckpointEvery int
	// Brownout enables deadline-aware fidelity degradation: when the
	// admission queue would shed a request, or a job's remaining
	// deadline is below the estimated exact run time for its topology,
	// the server answers from a cheaper ladder rung (quantized model or
	// analytic estimate) instead of returning 429 or running into the
	// deadline. Requests with fidelity "exact" are never browned out.
	Brownout bool
	// Plane, when non-nil, is the shared cross-request inference plane.
	// The server folds its queue depth and measured batch latency into
	// Retry-After estimates — under model-bound load the plane's warm
	// workers, not the HTTP worker pool, are the clearing bottleneck.
	// Wire the same plane into the runner (ScenarioRunner.Plane).
	Plane *plane.Plane
	// Metrics is the registry the server's observability series register
	// in (exposed at GET /metrics). nil creates a private registry,
	// reachable via Server.Metrics.
	Metrics *obs.Registry
	// Logger, when non-nil, receives one structured record per finished
	// HTTP exchange (method, path, status, duration, bytes).
	Logger *slog.Logger
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.RetryMax == 0 {
		c.RetryMax = 2
	}
	if c.RetryMax < 0 {
		c.RetryMax = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 2 << 20
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// ErrShed marks a request refused at admission because the queue was
// full (HTTP 429 + Retry-After).
var ErrShed = errors.New("serve: overloaded, request shed")

// ErrDraining marks a request refused because the server is draining
// for shutdown (HTTP 503 + Retry-After).
var ErrDraining = errors.New("serve: draining, not accepting jobs")

// ErrBreakerOpen marks an exact-fidelity request refused because its
// model's circuit breaker is open: the client opted out of the
// degradation ladder, so there is nothing left to answer with
// (HTTP 503 + Retry-After).
var ErrBreakerOpen = errors.New("serve: model circuit breaker open")

// jobOutcome is what a worker hands back to the waiting submitter.
type jobOutcome struct {
	res *Result
	err error
}

// job is one admitted request traveling through the queue. id and rec
// are set only in durable mode; cancel lets Drain interrupt the job so
// its engine writes a final snapshot inside the shutdown budget.
type job struct {
	req    *Request
	ctx    context.Context
	cancel context.CancelFunc
	done   chan jobOutcome // buffered(1): a worker never blocks finishing

	id  string
	rec *JobRecord
}

// finish delivers the outcome exactly once.
func (j *job) finish(res *Result, err error) {
	j.done <- jobOutcome{res, err}
}

// counters is the server's monotonic event counts (atomics; exported
// snapshot via Stats).
type counters struct {
	received  atomic.Uint64 // simulate requests seen
	accepted  atomic.Uint64 // admitted into the queue
	completed atomic.Uint64 // finished successfully (incl. degraded)
	failed    atomic.Uint64 // finished with a non-context error
	shed      atomic.Uint64 // refused with 429 (queue full)
	rejected  atomic.Uint64 // refused with 503 (draining)
	retries   atomic.Uint64 // transient-failure re-executions
	canceled  atomic.Uint64 // jobs ended by cancellation
	deadline  atomic.Uint64 // jobs ended by deadline
	degraded  atomic.Uint64 // jobs rerouted down the ladder by an open breaker
	brownouts atomic.Uint64 // jobs answered below exact fidelity under pressure
	panics    atomic.Uint64 // worker-level recovered panics
	inflight  atomic.Int64  // jobs currently executing

	// Per-tier completion counts: exactly one increments per completed
	// request, so their sum equals completed at every quiescent point.
	fidExact    atomic.Uint64
	fidQuant    atomic.Uint64
	fidAnalytic atomic.Uint64
	fidFIFO     atomic.Uint64
}

// Server owns the worker pool, admission queue, breakers, and stats.
// Build with New, serve HTTP through Handler, stop with Drain.
type Server struct {
	cfg    Config
	runner Runner

	queue  chan *job
	closed chan struct{} // closes when workers must exit
	wg     sync.WaitGroup
	jobWG  sync.WaitGroup // tracks admitted-but-unfinished jobs

	// drainMu orders jobWG.Add against Drain's jobWG.Wait: Submit
	// increments under the read lock only after seeing draining false,
	// and Drain flips the flag under the write lock before waiting, so
	// no Add can start from a zero counter while Wait runs.
	drainMu   sync.RWMutex
	draining  atomic.Bool
	drainOnce sync.Once

	breakerMu sync.Mutex
	breakers  map[string]*Breaker

	jitterMu sync.Mutex
	jitter   *rng.Rand

	// store and active exist only in durable mode: the job store under
	// Config.StateDir and the cancel functions of admitted jobs (Drain
	// cancels them so engines checkpoint and exit inside the budget).
	store    *jobStore
	activeMu sync.Mutex
	active   map[string]context.CancelFunc

	stats     counters
	met       *serverMetrics
	avgRunNs  atomic.Int64 // EWMA of job wall time, drives Retry-After
	estimator runEstimator // per-topology EWMA of exact run time, drives brownout

	// planeStats reads the shared inference plane's live state (pending
	// calls, EWMA flush seconds, EWMA batch size) for the Retry-After
	// estimate; nil when no plane is attached. A func field so tests can
	// pin both Retry-After regimes deterministically.
	planeStats func() (depth int, avgSec, avgSize float64)
}

// New builds a Server and starts its worker pool. With Config.StateDir
// set it also opens the durable job store and re-enqueues every
// recoverable record the previous process left behind; the only error
// New can return is a state-directory failure.
func New(cfg Config, runner Runner) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		runner:   runner,
		queue:    make(chan *job, cfg.QueueDepth),
		closed:   make(chan struct{}),
		breakers: make(map[string]*Breaker),
		jitter:   rng.New(cfg.Seed),
	}
	if p := cfg.Plane; p != nil {
		s.planeStats = func() (int, float64, float64) {
			sec, size := p.BatchStats()
			return p.Depth(), sec, size
		}
	}
	var recovered []*JobRecord
	if cfg.StateDir != "" {
		store, err := openJobStore(cfg.StateDir)
		if err != nil {
			return nil, err
		}
		s.store = store
		s.active = make(map[string]context.CancelFunc)
		if recovered, err = store.recoverable(); err != nil {
			return nil, fmt.Errorf("serve: scan recoverable jobs: %w", err)
		}
	}
	s.met = newServerMetrics(cfg.Metrics, s)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	if len(recovered) > 0 {
		s.jobWG.Add(1)
		go s.recoverJobs(recovered)
	}
	return s, nil
}

// recoverJobs re-enqueues the previous process's unfinished jobs, in ID
// order. Each goes through the normal admission accounting (received,
// accepted, terminal outcome), so the terminal-accounting invariant
// holds per process even across restarts. Runs under jobWG so Drain
// waits for recovery to settle.
func (s *Server) recoverJobs(recs []*JobRecord) {
	defer s.jobWG.Done()
	defer func() {
		if we := guard.RecoveredWorker(-1, recover()); we != nil {
			// A recovery panic must not kill the server; unrecovered
			// records stay on disk for the next process.
			s.stats.panics.Add(1)
		}
	}()
	for _, rec := range recs {
		if s.draining.Load() {
			return // records stay recoverable for the next process
		}
		rec.Restarts++
		rec.Status = JobPending
		if err := s.store.put(rec); err != nil {
			continue
		}
		s.met.recovered.Inc()
		s.resubmit(rec)
	}
}

// resubmit runs one recovered record through admission. The original
// client is gone, so the job runs under a fresh deadline and its result
// lands in the record (retrievable via GET /jobs/{id}).
func (s *Server) resubmit(rec *JobRecord) {
	s.stats.received.Add(1)
	s.met.received.Inc()
	s.drainMu.RLock()
	if s.draining.Load() {
		s.drainMu.RUnlock()
		return // still recoverable; not counted as rejected
	}
	s.jobWG.Add(1)
	s.drainMu.RUnlock()
	jctx, cancel := context.WithTimeout(context.Background(), s.timeoutFor(rec.Request))
	j := &job{req: rec.Request, ctx: jctx, cancel: cancel, done: make(chan jobOutcome, 1), id: rec.ID, rec: rec}
	s.registerActive(j)
	select {
	case s.queue <- j:
		s.stats.accepted.Add(1)
		s.met.accepted.Inc()
	case <-s.closed:
		s.unregisterActive(j)
		cancel()
		s.jobWG.Done()
	}
	// Nobody waits on j.done; the worker's finish lands in the buffered
	// channel and the record carries the outcome.
}

// registerActive and unregisterActive maintain the drain-cancel set.
func (s *Server) registerActive(j *job) {
	if s.store == nil || j.id == "" {
		return
	}
	s.activeMu.Lock()
	s.active[j.id] = j.cancel
	s.activeMu.Unlock()
}

func (s *Server) unregisterActive(j *job) {
	if s.store == nil || j.id == "" {
		return
	}
	s.activeMu.Lock()
	delete(s.active, j.id)
	s.activeMu.Unlock()
}

// worker pulls jobs until the server closes. Each job runs behind
// serveJob's panic isolation; this outer recover is the last line that
// keeps a worker goroutine from taking down the process.
func (s *Server) worker(i int) {
	defer s.wg.Done()
	defer func() {
		if we := guard.RecoveredWorker(i, recover()); we != nil {
			// Unreachable in practice (serveJob recovers per-job), but a
			// panic here must still not kill the process.
			s.stats.panics.Add(1)
		}
	}()
	for {
		select {
		case <-s.closed:
			return
		case j := <-s.queue:
			s.serveJob(i, j)
		}
	}
}

// Submit admits a request and blocks until its job finishes or ctx
// ends. It is the transport-independent core of POST /simulate: HTTP
// handlers and benchmarks call it directly. The returned error is one
// of: nil, ErrShed, ErrDraining, ErrBadRequest, a guard error
// (ErrCanceled/ErrDeadline/ShardError/DivergenceError/WorkerError), or
// a runner failure.
func (s *Server) Submit(ctx context.Context, req *Request) (*Result, error) {
	res, _, err := s.SubmitJob(ctx, req)
	return res, err
}

// SubmitJob is Submit plus the job's durable ID ("" when the server has
// no StateDir or the job was refused at admission). A client holding
// the ID can retrieve the job's final record through GET /jobs/{id}
// even if its own connection dies mid-run — including across a server
// restart.
func (s *Server) SubmitJob(ctx context.Context, req *Request) (*Result, string, error) {
	s.stats.received.Add(1)
	s.met.received.Inc()
	if !req.fidelityValid() {
		s.stats.failed.Add(1)
		s.met.outcomes["failed"].Inc()
		return nil, "", badRequestf("fidelity %q not one of exact|auto|fast", req.Fidelity)
	}
	s.drainMu.RLock()
	if s.draining.Load() {
		s.drainMu.RUnlock()
		s.stats.rejected.Add(1)
		s.met.outcomes["rejected"].Inc()
		return nil, "", ErrDraining
	}
	s.jobWG.Add(1)
	s.drainMu.RUnlock()
	jctx, cancel := context.WithTimeout(ctx, s.timeoutFor(req))
	defer cancel()
	if req.Fidelity == "fast" {
		// The fast tier skips the queue, the workers, and the model: the
		// analytic estimate answers inline in O(µs). No durable record —
		// the answer outlives the request by nothing.
		res, err := s.runner.Run(jctx, req, RunAnalytic)
		s.countInline(res, err)
		s.jobWG.Done()
		return res, "", err
	}
	j := &job{req: req, ctx: jctx, cancel: cancel, done: make(chan jobOutcome, 1)}
	if s.store != nil {
		// Persist the admission record before the job can reach a
		// worker: a crash between here and completion leaves a
		// recoverable record, never an invisible job.
		j.id = s.store.newID()
		j.rec = &JobRecord{ID: j.id, Request: req, Status: JobPending}
		if err := s.store.put(j.rec); err != nil {
			s.jobWG.Done()
			s.stats.failed.Add(1)
			s.met.outcomes["failed"].Inc()
			return nil, "", err
		}
		s.registerActive(j)
	}
	select {
	case s.queue <- j:
		s.stats.accepted.Add(1)
		s.met.accepted.Inc()
	default:
		if s.store != nil {
			s.unregisterActive(j)
			s.store.remove(j.id)
		}
		if s.cfg.Brownout && !req.exactOnly() {
			// Overload brownout: the queue is full, but an analytic
			// answer costs microseconds — convert the would-be 429 into
			// a reduced-fidelity 200. Shed only if the analytic tier
			// itself cannot answer (e.g. a saturated scenario).
			if res, err := s.runner.Run(jctx, req, RunAnalytic); err == nil {
				s.stats.brownouts.Add(1)
				s.met.brownouts.Inc()
				s.countInline(res, nil)
				s.jobWG.Done()
				return res, "", nil
			}
		}
		s.jobWG.Done()
		s.stats.shed.Add(1)
		s.met.outcomes["shed"].Inc()
		return nil, "", ErrShed
	}
	select {
	case out := <-j.done:
		return out.res, j.id, out.err
	case <-jctx.Done():
		// Still queued (or the submitter gave up first): the worker will
		// observe the dead context, finish the job cheaply, and do the
		// stats accounting; the buffered done channel means nobody blocks.
		return nil, j.id, guard.FromContext(jctx.Err())
	}
}

// timeoutFor clamps the request's deadline into the server's envelope.
func (s *Server) timeoutFor(req *Request) time.Duration {
	d := time.Duration(req.TimeoutMs) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// serveJob executes one admitted job: breaker consultation, retry loop,
// stat accounting — inside per-job panic isolation so no request can
// kill a worker.
func (s *Server) serveJob(worker int, j *job) {
	defer s.jobWG.Done()
	defer s.unregisterActive(j)
	s.stats.inflight.Add(1)
	defer s.stats.inflight.Add(-1)
	defer func() {
		if we := guard.RecoveredWorker(worker, recover()); we != nil {
			s.stats.panics.Add(1)
			s.met.panics.Inc()
			s.stats.failed.Add(1)
			s.met.outcomes["failed"].Inc()
			s.recordOutcome(j, nil, we)
			j.finish(nil, we)
		}
	}()
	if err := j.ctx.Err(); err != nil {
		// Canceled while queued; the submitter is already gone.
		gerr := guard.FromContext(err)
		s.countCtxErr(gerr)
		s.recordOutcome(j, nil, gerr)
		j.finish(nil, gerr)
		return
	}
	if s.store != nil && j.rec != nil {
		// Durable job: hand the runner its checkpoint location and last
		// known progress through serve-internal request fields. The
		// request is copied so the caller's value stays untouched.
		req := *j.req
		req.CheckpointPath = s.store.checkpointPath(j.id)
		req.CheckpointEvery = s.cfg.CheckpointEvery
		req.LastProgress = j.rec.Progress
		j.req = &req
	}
	start := s.cfg.Now()
	br := s.breakerFor(j.req.modelKey())
	admission := br.Allow(start)

	var res *Result
	var err error
	if admission == AdmitDegraded {
		// Breaker open: walk the ladder instead of hammering the
		// suspect model — analytic first, exact FIFO serialization only
		// when the analytic tier itself cannot answer.
		s.stats.degraded.Add(1)
		s.met.degraded.Inc()
		res, err = s.degradedAnswer(j, br, start)
	} else {
		mode := s.brownoutMode(j, admission)
		answered := false
		if mode == RunAnalytic {
			// Deadline brownout: not enough time left for an engine
			// run. The analytic answer never judges the model, so the
			// breaker is untouched.
			if ares, aerr := s.runner.Run(j.ctx, j.req, RunAnalytic); aerr == nil {
				ares.Attempts = 1
				res, answered = ares, true
			} else {
				// Analytic tier errored; take our chances at full
				// fidelity — the outcome is what it would have been
				// without brownout.
				mode = RunExact
			}
		}
		if !answered {
			var attempts int
			res, attempts, err = s.runWithRetry(j, mode)
			if res != nil {
				res.Attempts = attempts
			}
			switch {
			case breakerWorthy(err):
				br.Record(admission == AdmitProbe, err, s.cfg.Now())
			case err == nil:
				br.Record(admission == AdmitProbe, nil, s.cfg.Now())
			case admission == AdmitProbe:
				// Context-terminated or bad-request probes judge nothing;
				// hand the probe slot back so the breaker can try again.
				br.ReleaseProbe()
			}
			// Context-terminated and bad requests charge nobody.
			elapsed := s.cfg.Now().Sub(start)
			s.observeRun(elapsed)
			if err == nil && mode == RunExact {
				s.estimator.observe(j.req.Topo, elapsed)
			}
		}
		if err == nil && mode != RunExact {
			s.stats.brownouts.Add(1)
			s.met.brownouts.Inc()
		}
	}
	switch {
	case err == nil:
		s.stats.completed.Add(1)
		s.met.outcomes["completed"].Inc()
		s.countFidelity(res)
	case errors.Is(err, guard.ErrCanceled) || errors.Is(err, guard.ErrDeadline):
		s.countCtxErr(err)
	default:
		s.stats.failed.Add(1)
		s.met.outcomes["failed"].Inc()
	}
	s.recordOutcome(j, res, err)
	j.finish(res, err)
}

// degradedAnswer serves a job whose model breaker is open. Fidelity
// "exact" clients asked never to be degraded, so they get the breaker
// error; everyone else gets the analytic estimate, falling to the
// exact FIFO-serialization rung only when the analytic tier errors
// (saturated scenario, malformed demand).
func (s *Server) degradedAnswer(j *job, br *Breaker, start time.Time) (*Result, error) {
	if j.req.exactOnly() {
		return nil, fmt.Errorf("%w: %w", ErrBreakerOpen, br.Err())
	}
	res, err := s.runner.Run(j.ctx, j.req, RunAnalytic)
	if err != nil {
		res, err = s.runner.Run(j.ctx, j.req, RunFIFO)
		// The FIFO rung is a real engine run; let it feed Retry-After.
		s.observeRun(s.cfg.Now().Sub(start))
	}
	if res != nil {
		res.Attempts = 1
		res.BreakerOpen = true
		res.DegradedReason = br.Err().Error()
	}
	return res, err
}

// quantCostFactor is the assumed run-time ratio of the quantized
// backend to the exact backend: with remaining deadline between
// quantCostFactor·estimate and estimate the quantized tier still fits
// where exact would not.
const quantCostFactor = 0.85

// brownoutMode picks the ladder rung for an admitted job. Exact unless
// brownout is enabled, the client allows degradation, the job carries a
// deadline, and the topology's run-time estimate says exact cannot
// finish in the time remaining. Probes always run exact: their whole
// point is to judge the model path.
func (s *Server) brownoutMode(j *job, admission Admission) RunMode {
	if !s.cfg.Brownout || admission == AdmitProbe || j.req.exactOnly() {
		return RunExact
	}
	deadline, ok := j.ctx.Deadline()
	if !ok {
		return RunExact
	}
	remaining := deadline.Sub(s.cfg.Now())
	est := s.estimator.estimate(j.req.Topo)
	if est <= 0 {
		est = time.Duration(s.avgRunNs.Load())
	}
	if est <= 0 || remaining >= est {
		return RunExact
	}
	if float64(remaining) >= quantCostFactor*float64(est) {
		return RunQuant
	}
	return RunAnalytic
}

// countInline accounts one inline-answered request (fast tier or
// admission brownout) with the same terminal bookkeeping as serveJob.
func (s *Server) countInline(res *Result, err error) {
	switch {
	case err == nil:
		s.stats.completed.Add(1)
		s.met.outcomes["completed"].Inc()
		s.countFidelity(res)
	case errors.Is(err, guard.ErrCanceled) || errors.Is(err, guard.ErrDeadline):
		s.countCtxErr(err)
	default:
		s.stats.failed.Add(1)
		s.met.outcomes["failed"].Inc()
	}
}

// countFidelity buckets one completed request by the ladder tier that
// answered it; the four tier counts sum to completed.
func (s *Server) countFidelity(res *Result) {
	tier := ""
	if res != nil {
		tier = res.Fidelity
	}
	switch tier {
	case "quant":
		s.stats.fidQuant.Add(1)
	case "analytic":
		s.stats.fidAnalytic.Add(1)
	case "fifo":
		s.stats.fidFIFO.Add(1)
	default:
		// Exact runs and any runner that predates the Fidelity field.
		tier = "exact"
		s.stats.fidExact.Add(1)
	}
	s.met.fidelity[tier].Inc()
}

// recordOutcome persists a durable job's terminal (or recoverable)
// state. The disposition decides the checkpoint's fate:
//
//   - success, deadline, non-drain cancel, plain failure → terminal
//     record; the checkpoint is deleted (nothing will resume it).
//   - injected crash (guard.ErrCrash) or cancellation during drain →
//     the record goes interrupted and the checkpoint stays: this is
//     simulated/real process death, and the next server resumes it.
//   - breaker-worthy failure → the record is parked with its checkpoint
//     kept for inspection; it is not retried automatically, because the
//     failure charged the model's breaker and retrying a parked job
//     would hammer a suspect model from the recovery path.
func (s *Server) recordOutcome(j *job, res *Result, err error) {
	if s.store == nil || j.rec == nil {
		return
	}
	rec := j.rec
	if res != nil && res.Iterations > rec.Progress {
		rec.Progress = res.Iterations
	}
	keepCheckpoint := false
	switch {
	case err == nil:
		rec.Status = JobCompleted
		rec.Result = res
		rec.Error = ""
	case errors.Is(err, guard.ErrCrash):
		rec.Status = JobInterrupted
		rec.Error = err.Error()
		keepCheckpoint = true
		s.met.interrupted.Inc()
	case errors.Is(err, guard.ErrCanceled) && s.draining.Load():
		rec.Status = JobInterrupted
		rec.Error = err.Error()
		keepCheckpoint = true
		s.met.interrupted.Inc()
	case errors.Is(err, guard.ErrCanceled):
		rec.Status = JobCanceled
		rec.Error = err.Error()
	case errors.Is(err, guard.ErrDeadline):
		rec.Status = JobDeadline
		rec.Error = err.Error()
	case breakerWorthy(err):
		rec.Status = JobParked
		rec.Error = err.Error()
		keepCheckpoint = true
		s.met.parked.Inc()
		// A parked dead letter still carries a reduced-fidelity answer:
		// the analytic estimate needs no model, so GET /jobs/{id} shows
		// a principled result instead of nothing. The job's terminal
		// accounting stays "failed" — this is advisory data on the
		// record, not a completed request.
		if ares, aerr := s.runner.Run(context.Background(), j.req, RunAnalytic); aerr == nil {
			ares.DegradedReason = err.Error()
			rec.Result = ares
		}
	default:
		rec.Status = JobFailed
		rec.Error = err.Error()
	}
	if !keepCheckpoint {
		s.store.removeCheckpoint(j.id)
	}
	// A failed record write loses durability, not correctness: the
	// in-memory outcome still reaches the submitter.
	//dqnlint:allow errdiscard record write failure loses durability only; the in-memory outcome still reaches the submitter
	_ = s.store.put(rec)
}

// runWithRetry executes the job's runner call at the given ladder
// rung, retrying transient failures with exponential backoff + jitter
// while the deadline lasts.
func (s *Server) runWithRetry(j *job, mode RunMode) (*Result, int, error) {
	attempts := 0
	for {
		res, err := s.runner.Run(j.ctx, j.req, mode)
		attempts++
		if err == nil || !transient(err) || attempts > s.cfg.RetryMax {
			return res, attempts, err
		}
		delay := s.backoff(attempts - 1)
		t := time.NewTimer(delay)
		select {
		case <-j.ctx.Done():
			t.Stop()
			// Out of time mid-backoff: the transient error is what the
			// caller should see, joined with the deadline state.
			return res, attempts, errors.Join(guard.FromContext(j.ctx.Err()), err)
		case <-t.C:
		}
		s.stats.retries.Add(1)
		s.met.retries.Inc()
	}
}

// backoff computes the delay before retry attempt n (0-based):
// RetryBase·2ⁿ capped at RetryCap, with "equal jitter" — half fixed,
// half uniform — so synchronized failures don't retry in lockstep.
func (s *Server) backoff(attempt int) time.Duration {
	if attempt > 30 {
		attempt = 30
	}
	d := s.cfg.RetryBase << uint(attempt)
	if d > s.cfg.RetryCap || d <= 0 {
		d = s.cfg.RetryCap
	}
	s.jitterMu.Lock()
	u := s.jitter.Float64()
	s.jitterMu.Unlock()
	return d/2 + time.Duration(u*float64(d/2))
}

// transient reports whether a failure is worth retrying: shard panics
// and divergence can stem from environmental faults (and, under chaos
// testing, provably do), while context errors, bad requests, and
// invalid models are deterministic.
func transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, guard.ErrCanceled) || errors.Is(err, guard.ErrDeadline) {
		return false
	}
	var se *guard.ShardError
	var de *guard.DivergenceError
	var we *guard.WorkerError
	return errors.As(err, &se) || errors.As(err, &de) || errors.As(err, &we)
}

// breakerWorthy reports whether a failure should charge the model
// path's circuit breaker: inference faults and invalid models do;
// cancellations, deadlines, and bad requests do not.
func breakerWorthy(err error) bool {
	if err == nil {
		return false
	}
	return transient(err) || errors.Is(err, errModelInvalid)
}

// countCtxErr buckets a context-termination error.
func (s *Server) countCtxErr(err error) {
	if errors.Is(err, guard.ErrDeadline) {
		s.stats.deadline.Add(1)
		s.met.outcomes["deadline"].Inc()
	} else {
		s.stats.canceled.Add(1)
		s.met.outcomes["canceled"].Inc()
	}
}

// breakerFor returns (creating on first use) the breaker of one model
// path.
func (s *Server) breakerFor(path string) *Breaker {
	s.breakerMu.Lock()
	defer s.breakerMu.Unlock()
	b, ok := s.breakers[path]
	if !ok {
		b = NewBreaker(path, s.cfg.Breaker)
		b.onTransition = s.met.breakerMetrics(path, b)
		s.breakers[path] = b
	}
	return b
}

// Metrics returns the registry the server's series live in — the
// backing store of GET /metrics.
func (s *Server) Metrics() *obs.Registry { return s.cfg.Metrics }

// observeRun feeds the job-duration EWMA (α = 1/8) behind Retry-After.
func (s *Server) observeRun(d time.Duration) {
	s.met.jobSeconds.Observe(d.Seconds())
	for {
		old := s.avgRunNs.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = old + (int64(d)-old)/8
		}
		if s.avgRunNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// RetryAfter estimates how long a shed client should wait before
// retrying: the time for the current backlog to clear through the
// worker pool — or, with a shared inference plane attached, through
// the plane's warm workers if that is slower — clamped to [1s, 60s].
func (s *Server) RetryAfter() time.Duration {
	avg := time.Duration(s.avgRunNs.Load())
	if avg <= 0 {
		avg = time.Second
	}
	backlog := len(s.queue) + int(s.stats.inflight.Load())
	est := avg * time.Duration(backlog+1) / time.Duration(s.cfg.Workers)
	if s.planeStats != nil {
		if depth, sec, size := s.planeStats(); sec > 0 && size >= 1 {
			// Model-bound load clears through the plane: depth pending
			// device calls drain in ~depth/avgBatchSize flushes of
			// avgBatchSec each (+1 for the retrying client's own work).
			flushes := float64(depth)/size + 1
			if p := time.Duration(flushes * sec * float64(time.Second)); p > est {
				est = p
			}
		}
	}
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est.Round(time.Second)
}

// Draining reports whether the server has begun shutdown.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the server down: it stops admitting new jobs
// (readiness goes false, /simulate answers 503), waits for every
// already-admitted job — queued and in-flight — to finish, then stops
// the workers. If ctx expires first, remaining workers are stopped
// anyway and still-queued jobs are failed with ErrDraining; the error
// is then ctx's. Drain is idempotent; concurrent calls all wait.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	if s.store != nil {
		// Durable mode: interrupt every admitted job now. Each running
		// engine finishes its in-flight iteration, persists a final
		// snapshot, and returns guard.ErrCanceled; recordOutcome sees
		// draining and marks the record interrupted, so the next process
		// resumes exactly where this one stopped — all inside the drain
		// budget instead of waiting out long runs.
		s.activeMu.Lock()
		cancels := make([]context.CancelFunc, 0, len(s.active))
		for _, cancel := range s.active {
			cancels = append(cancels, cancel)
		}
		s.activeMu.Unlock()
		for _, cancel := range cancels {
			cancel()
		}
	}
	done := make(chan struct{})
	go func() {
		defer func() {
			if we := guard.RecoveredWorker(0, recover()); we != nil {
				s.stats.panics.Add(1) // keep the drain waiter from killing the process
			}
		}()
		s.jobWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.drainOnce.Do(func() { close(s.closed) })
	if err != nil {
		// Timed out: fail whatever is still queued so submitters unblock.
		for {
			select {
			case j := <-s.queue:
				if s.store != nil && j.rec != nil {
					// Never ran: the record stays recoverable for the
					// next process.
					j.rec.Status = JobInterrupted
					//dqnlint:allow errdiscard a failed write leaves the last durable status, which is still recoverable
					_ = s.store.put(j.rec)
					s.met.interrupted.Inc()
					s.unregisterActive(j)
				}
				j.finish(nil, ErrDraining)
				s.jobWG.Done()
			default:
				s.wg.Wait()
				return err
			}
		}
	}
	s.wg.Wait()
	return nil
}

// Stats is the observable server state (/stats payload).
type Stats struct {
	Received  uint64         `json:"received"`
	Accepted  uint64         `json:"accepted"`
	Completed uint64         `json:"completed"`
	Failed    uint64         `json:"failed"`
	Shed      uint64         `json:"shed"`
	Rejected  uint64         `json:"rejected"`
	Retries   uint64         `json:"retries"`
	Canceled  uint64         `json:"canceled"`
	Deadline  uint64         `json:"deadline_exceeded"`
	Degraded  uint64         `json:"degraded"`
	Brownouts uint64         `json:"brownouts"`
	Panics    uint64         `json:"panics"`
	InFlight  int64          `json:"in_flight"`
	Queued    int            `json:"queued"`
	Workers   int            `json:"workers"`
	Queue     int            `json:"queue_depth"`
	Draining  bool           `json:"draining"`
	// Fidelity counts completed requests by degradation-ladder tier;
	// the four values sum to Completed. BrownoutEnabled mirrors
	// Config.Brownout so orchestrators can tell "will answer at reduced
	// fidelity" from "will shed".
	Fidelity        map[string]uint64 `json:"fidelity"`
	BrownoutEnabled bool              `json:"brownout_enabled"`
	AvgRunMs        float64           `json:"avg_run_ms"`
	Breakers        []BreakerStats    `json:"breakers,omitempty"`
}

// Snapshot collects the current stats.
func (s *Server) Snapshot() Stats {
	st := Stats{
		Received:  s.stats.received.Load(),
		Accepted:  s.stats.accepted.Load(),
		Completed: s.stats.completed.Load(),
		Failed:    s.stats.failed.Load(),
		Shed:      s.stats.shed.Load(),
		Rejected:  s.stats.rejected.Load(),
		Retries:   s.stats.retries.Load(),
		Canceled:  s.stats.canceled.Load(),
		Deadline:  s.stats.deadline.Load(),
		Degraded:  s.stats.degraded.Load(),
		Brownouts: s.stats.brownouts.Load(),
		Panics:    s.stats.panics.Load(),
		InFlight:  s.stats.inflight.Load(),
		Queued:    len(s.queue),
		Workers:   s.cfg.Workers,
		Queue:     s.cfg.QueueDepth,
		Draining:  s.draining.Load(),
		Fidelity: map[string]uint64{
			"exact":    s.stats.fidExact.Load(),
			"quant":    s.stats.fidQuant.Load(),
			"analytic": s.stats.fidAnalytic.Load(),
			"fifo":     s.stats.fidFIFO.Load(),
		},
		BrownoutEnabled: s.cfg.Brownout,
		AvgRunMs:        float64(s.avgRunNs.Load()) / float64(time.Millisecond),
	}
	s.breakerMu.Lock()
	paths := make([]string, 0, len(s.breakers))
	for p := range s.breakers {
		paths = append(paths, p)
	}
	s.breakerMu.Unlock()
	sortStrings(paths)
	for _, p := range paths {
		st.Breakers = append(st.Breakers, s.breakerFor(p).Stats())
	}
	return st
}

// sortStrings is an allocation-light insertion sort; breaker sets are
// tiny (one per model path).
func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Durable reports whether the server persists job state (StateDir set).
func (s *Server) Durable() bool { return s.store != nil }

// Job loads a durable job's record by ID. It returns an error when the
// server is not durable, the ID is malformed, or no such record exists.
func (s *Server) Job(id string) (*JobRecord, error) {
	if s.store == nil {
		return nil, errors.New("serve: server has no state directory")
	}
	if !validJobID(id) {
		return nil, fmt.Errorf("%w: malformed job id", ErrBadRequest)
	}
	return s.store.get(id)
}

// OpenBreakers counts model paths whose breaker is currently open —
// the number of model identities being answered at reduced fidelity.
func (s *Server) OpenBreakers() int {
	s.breakerMu.Lock()
	defer s.breakerMu.Unlock()
	n := 0
	for _, b := range s.breakers {
		if b.State() == BreakerOpen {
			n++
		}
	}
	return n
}

// BrownoutEnabled reports whether deadline/overload brownout is on.
func (s *Server) BrownoutEnabled() bool { return s.cfg.Brownout }

// BreakerFor exposes the breaker of a model path for tests and
// operational tooling (nil when that path has never been requested).
func (s *Server) BreakerFor(path string) *Breaker {
	s.breakerMu.Lock()
	defer s.breakerMu.Unlock()
	return s.breakers[path]
}
