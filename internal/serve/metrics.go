package serve

import (
	"strconv"
	"sync"

	"deepqueuenet/internal/obs"
)

// jobOutcomes are the terminal dispositions of a received request.
// Exactly one fires per request, so across the registry
//
//	dqn_requests_received_total ==
//	    Σ dqn_requests_total{outcome=*}
//
// holds at every quiescent point — the same single-sited accounting
// invariant /stats asserts, and what the chaos e2e reconciles between
// the two endpoints.
var jobOutcomes = []string{"completed", "failed", "shed", "rejected", "canceled", "deadline"}

// fidelityTiers are the degradation-ladder rungs. Every completed
// request is answered by exactly one tier, so
//
//	Σ dqn_fidelity_total{tier=*} == dqn_requests_total{outcome="completed"}
//
// holds at every quiescent point; /stats exposes the same counts under
// "fidelity" and the chaos e2e reconciles the two.
var fidelityTiers = []string{"exact", "quant", "analytic", "fifo"}

// serverMetrics holds the serve layer's pre-registered metric handles.
// Everything on the job path (Submit/serveJob) is a pre-created atomic
// handle: no registry lock, no allocation — the serve_saturation
// allocs/op gate stays untouched.
type serverMetrics struct {
	reg *obs.Registry

	received  *obs.Counter
	accepted  *obs.Counter
	outcomes  map[string]*obs.Counter
	fidelity  map[string]*obs.Counter
	degraded  *obs.Counter
	brownouts *obs.Counter
	retries   *obs.Counter
	panics    *obs.Counter

	// Durable-job lifecycle: interruptions that left a resumable record
	// (drain, injected crash), parked dead letters, and recovered jobs a
	// restarted server re-enqueued.
	interrupted *obs.Counter
	parked      *obs.Counter
	recovered   *obs.Counter

	jobSeconds *obs.Histogram

	httpMu   sync.Mutex
	httpReqs map[string]*obs.Counter // keyed path + "\x00" + code

	pathMu     sync.Mutex
	labelPaths map[string]bool // breaker paths granted their own label series
}

// maxBreakerPathLabels caps the per-model breaker label cardinality:
// the model key comes off the wire, so without a bound a client could
// mint one metric series per junk model name (the PR 5 rule).
const maxBreakerPathLabels = 64

// jobBuckets cover the serve job latency range: sub-millisecond cache
// hits through multi-second saturated runs.
var jobBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// newServerMetrics registers the serve metric families in reg.
func newServerMetrics(reg *obs.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{
		reg:      reg,
		received: reg.Counter("dqn_requests_received_total", "simulate requests seen at admission"),
		accepted: reg.Counter("dqn_requests_accepted_total", "requests admitted into the queue"),
		outcomes: make(map[string]*obs.Counter, len(jobOutcomes)),
		fidelity: make(map[string]*obs.Counter, len(fidelityTiers)),
		degraded: reg.Counter("dqn_degraded_total", "jobs rerouted down the degradation ladder by an open breaker"),
		brownouts: reg.Counter("dqn_brownouts_total",
			"requests answered below exact fidelity under deadline or overload pressure"),
		retries: reg.Counter("dqn_retries_total", "transient-failure re-executions"),
		panics:  reg.Counter("dqn_panics_total", "worker-level recovered panics"),
		interrupted: reg.Counter("dqn_jobs_interrupted_total",
			"jobs interrupted with a resumable durable record (drain or injected crash)"),
		parked: reg.Counter("dqn_jobs_parked_total",
			"jobs parked as dead letters after breaker-worthy failures"),
		recovered: reg.Counter("dqn_jobs_recovered_total",
			"recoverable jobs re-enqueued at server start"),
		jobSeconds: reg.Histogram("dqn_job_seconds",
			"wall time per executed job (admission to finish, including retries)", jobBuckets),
		httpReqs: make(map[string]*obs.Counter),
	}
	for _, o := range jobOutcomes {
		m.outcomes[o] = reg.Counter("dqn_requests_total",
			"terminal request dispositions; sums to dqn_requests_received_total", obs.L("outcome", o))
	}
	for _, tier := range fidelityTiers {
		m.fidelity[tier] = reg.Counter("dqn_fidelity_total",
			"completed requests by degradation-ladder tier; sums to dqn_requests_total{outcome=completed}",
			obs.L("tier", tier))
	}
	reg.GaugeFunc("dqn_brownout_enabled", "1 while deadline/overload brownout is configured on",
		func() float64 {
			if s.cfg.Brownout {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("dqn_queue_depth", "jobs waiting in the admission queue",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("dqn_inflight", "jobs currently executing",
		func() float64 { return float64(s.stats.inflight.Load()) })
	reg.GaugeFunc("dqn_draining", "1 while the server is draining",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	return m
}

// httpRequest counts one finished HTTP exchange by route and status.
func (m *serverMetrics) httpRequest(path string, code int) {
	key := path + "\x00" + strconv.Itoa(code)
	m.httpMu.Lock()
	c, ok := m.httpReqs[key]
	if !ok {
		c = m.reg.Counter("dqn_http_requests_total", "HTTP requests by route and status",
			obs.L("path", path), obs.L("code", strconv.Itoa(code)))
		m.httpReqs[key] = c
	}
	m.httpMu.Unlock()
	c.Inc()
}

// breakerMetrics registers the per-path breaker series and returns the
// transition hook for NewBreaker. Counters are pre-created here so the
// hook — which runs under the breaker's mutex — never touches the
// registry lock.
func (m *serverMetrics) breakerMetrics(path string, b *Breaker) func(from, to BreakerState) {
	// Bound the label value: the first maxBreakerPathLabels distinct
	// model keys get their own series; the rest collapse to "other"
	// (transition counters sum across collapsed breakers; the state
	// gauge reflects the most recently registered one).
	m.pathMu.Lock()
	if m.labelPaths == nil {
		m.labelPaths = make(map[string]bool)
	}
	if !m.labelPaths[path] {
		if len(m.labelPaths) >= maxBreakerPathLabels {
			path = "other"
		} else {
			m.labelPaths[path] = true
		}
	}
	m.pathMu.Unlock()
	trans := map[BreakerState]*obs.Counter{}
	for _, st := range []BreakerState{BreakerClosed, BreakerOpen, BreakerHalfOpen} {
		trans[st] = m.reg.Counter("dqn_breaker_transitions_total",
			"circuit-breaker state transitions by destination state",
			obs.L("path", path), obs.L("to", st.String()))
	}
	m.reg.GaugeFunc("dqn_breaker_state", "breaker position (0 closed, 1 open, 2 half-open)",
		func() float64 { return float64(b.State()) }, obs.L("path", path))
	return func(_, to BreakerState) { trans[to].Inc() }
}
