package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"deepqueuenet/internal/guard"
)

// HTTP API:
//
//	POST /simulate  — run one what-if query (Request JSON in, Result out)
//	GET  /jobs/{id} — durable-job record (404 unless Config.StateDir set)
//	GET  /healthz   — liveness: 200 while the process is up
//	GET  /readyz    — readiness: 200 accepting, 503 draining
//	GET  /stats     — Stats JSON (counters, breakers, queue state)
//	GET  /metrics   — Prometheus text exposition of the obs registry
//
// Failure → status mapping:
//
//	queue full            429 + Retry-After (200 analytic under -brownout)
//	draining              503 + Retry-After
//	bad request           400 (malformed JSON, trailing data, bad params,
//	                      unknown fidelity)
//	body too large        413 (Config.MaxBodyBytes)
//	deadline exceeded     504
//	canceled              499 (client closed request, nginx convention)
//	inference failure     500 (after retries; breaker charged)
//	breaker open          200 analytic (FIFO if analytic errors) +
//	                      X-DQN-Degraded; 503 for fidelity "exact"
//
// Every 200 carries X-DQN-Fidelity: exact|quant|analytic|fifo — the
// degradation-ladder tier that produced the answer.

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// StatusClientClosedRequest is nginx's conventional status for a
// request whose client went away before the response was ready.
const StatusClientClosedRequest = 499

// Handler returns the server's HTTP API, wrapped in the observability
// middleware (request counters by route/status plus optional slog
// request logging).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/simulate", s.handleSimulate)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return s.instrument(mux)
}

// knownRoutes bounds the path label's cardinality: anything else is
// counted as "other" so hostile URL sweeps cannot grow the registry.
// Job lookups collapse to one "/jobs" label for the same reason.
var knownRoutes = map[string]bool{
	"/simulate": true, "/jobs": true, "/healthz": true, "/readyz": true,
	"/stats": true, "/metrics": true,
}

// statusRecorder captures the status code and body size a handler
// wrote, for the request counter and the access log.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// instrument wraps the API with per-request accounting: one
// dqn_http_requests_total increment per exchange and, when a Logger is
// configured, one structured record per exchange.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.cfg.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		route := r.URL.Path
		if strings.HasPrefix(route, "/jobs/") {
			route = "/jobs"
		}
		if !knownRoutes[route] {
			route = "other"
		}
		s.met.httpRequest(route, rec.code)
		if s.cfg.Logger != nil {
			s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "http_request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.code),
				slog.Int("bytes", rec.bytes),
				slog.Duration("duration", s.cfg.Now().Sub(start)),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only", Kind: "method"})
		return
	}
	req, errStatus, err := s.decodeRequest(w, r)
	if err != nil {
		writeJSON(w, errStatus, errorBody{Error: err.Error(), Kind: kindFor(errStatus)})
		return
	}
	res, id, err := s.SubmitJob(r.Context(), req)
	if id != "" {
		w.Header().Set("X-DQN-Job", id)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	if res.Fidelity != "" {
		w.Header().Set("X-DQN-Fidelity", res.Fidelity)
	}
	if res.BreakerOpen || res.Mode == "degraded-fifo" {
		w.Header().Set("X-DQN-Degraded", "breaker-open")
	}
	writeJSON(w, http.StatusOK, res)
}

// handleJob serves GET /jobs/{id}: the durable record of one admitted
// job. 404s when durability is off, the ID is malformed (the traversal
// guard), or no record exists.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only", Kind: "method"})
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	rec, err := s.Job(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job", Kind: "not_found"})
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// decodeRequest reads one Request from a size-capped body. A body over
// Config.MaxBodyBytes maps to 413, malformed JSON or trailing garbage
// after the object to 400 (a second document would otherwise be
// silently ignored, masking client bugs).
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*Request, int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	var req Request
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return nil, http.StatusBadRequest, errors.New("request body has trailing data after the JSON object")
	}
	return &req, 0, nil
}

// kindFor labels a decode failure's error envelope.
func kindFor(status int) string {
	if status == http.StatusRequestEntityTooLarge {
		return "too_large"
	}
	return "bad_request"
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.cfg.Metrics.WritePrometheus(w); err != nil {
		return // client disconnected mid-scrape
	}
}

// writeError maps a Submit failure to its HTTP shape.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrShed):
		w.Header().Set("Retry-After", retryAfterSeconds(s.RetryAfter()))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error(), Kind: "shed"})
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", retryAfterSeconds(s.RetryAfter()))
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error(), Kind: "draining"})
	case errors.Is(err, ErrBreakerOpen):
		w.Header().Set("Retry-After", retryAfterSeconds(s.RetryAfter()))
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error(), Kind: "breaker_open"})
	case errors.Is(err, ErrBadRequest):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Kind: "bad_request"})
	case errors.Is(err, guard.ErrDeadline):
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: err.Error(), Kind: "deadline"})
	case errors.Is(err, guard.ErrCanceled):
		writeJSON(w, StatusClientClosedRequest, errorBody{Error: err.Error(), Kind: "canceled"})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error(), Kind: "failure"})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readiness is the /readyz payload: overall status plus per-tier
// availability, so an orchestrator can tell "healthy" from "answering
// at reduced fidelity" from "draining".
type readiness struct {
	Status string `json:"status"` // "ready", "degraded", or "draining"
	// Tiers maps each ladder rung to "available" or "breaker-open".
	// The analytic and FIFO rungs are model-free and always available.
	Tiers        map[string]string `json:"tiers"`
	OpenBreakers int               `json:"open_breakers"`
	Brownout     bool              `json:"brownout_enabled"`
}

func (s *Server) readiness() readiness {
	r := readiness{
		Status: "ready",
		Tiers: map[string]string{
			"exact": "available", "quant": "available",
			"analytic": "available", "fifo": "available",
		},
		OpenBreakers: s.OpenBreakers(),
		Brownout:     s.BrownoutEnabled(),
	}
	if r.OpenBreakers > 0 {
		// The model-backed tiers are impaired for at least one model
		// path; the server still answers, one rung down.
		r.Status = "degraded"
		r.Tiers["exact"] = "breaker-open"
		r.Tiers["quant"] = "breaker-open"
	}
	return r
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	r := s.readiness()
	if s.Draining() {
		r.Status = "draining"
		w.Header().Set("Retry-After", retryAfterSeconds(s.RetryAfter()))
		writeJSON(w, http.StatusServiceUnavailable, r)
		return
	}
	writeJSON(w, http.StatusOK, r)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// minimum 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int(d.Seconds())
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeJSON writes a JSON response. A failed write means the client is
// gone; there is nothing useful to do with the error.
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Marshaling our own response types cannot fail; degrade to a
		// plain 500 if it somehow does.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(data); err != nil {
		return // client disconnected mid-write; response is moot
	}
}
