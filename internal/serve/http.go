package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"deepqueuenet/internal/guard"
)

// HTTP API:
//
//	POST /simulate  — run one what-if query (Request JSON in, Result out)
//	GET  /healthz   — liveness: 200 while the process is up
//	GET  /readyz    — readiness: 200 accepting, 503 draining
//	GET  /stats     — Stats JSON (counters, breakers, queue state)
//
// Failure → status mapping:
//
//	queue full            429 + Retry-After
//	draining              503 + Retry-After
//	bad request           400
//	deadline exceeded     504
//	canceled              499 (client closed request, nginx convention)
//	inference failure     500 (after retries; breaker charged)
//	breaker open          200 degraded-FIFO result + X-DQN-Degraded

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// StatusClientClosedRequest is nginx's conventional status for a
// request whose client went away before the response was ready.
const StatusClientClosedRequest = 499

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/simulate", s.handleSimulate)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only", Kind: "method"})
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding request: %v", err), Kind: "bad_request"})
		return
	}
	res, err := s.Submit(r.Context(), &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if res.Mode == "degraded-fifo" {
		w.Header().Set("X-DQN-Degraded", "breaker-open")
	}
	writeJSON(w, http.StatusOK, res)
}

// writeError maps a Submit failure to its HTTP shape.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrShed):
		w.Header().Set("Retry-After", retryAfterSeconds(s.RetryAfter()))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error(), Kind: "shed"})
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", retryAfterSeconds(s.RetryAfter()))
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error(), Kind: "draining"})
	case errors.Is(err, ErrBadRequest):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Kind: "bad_request"})
	case errors.Is(err, guard.ErrDeadline):
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: err.Error(), Kind: "deadline"})
	case errors.Is(err, guard.ErrCanceled):
		writeJSON(w, StatusClientClosedRequest, errorBody{Error: err.Error(), Kind: "canceled"})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error(), Kind: "failure"})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.RetryAfter()))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// minimum 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int(d.Seconds())
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeJSON writes a JSON response. A failed write means the client is
// gone; there is nothing useful to do with the error.
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Marshaling our own response types cannot fail; degrade to a
		// plain 500 if it somehow does.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(data); err != nil {
		return // client disconnected mid-write; response is moot
	}
}
