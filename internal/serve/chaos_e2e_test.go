package serve_test

// End-to-end chaos suite: the acceptance gate for the resilient serving
// layer. A real ScenarioRunner (synthetic PTM, real IRSA engine) serves
// HTTP traffic while internal/chaos injects shard panics, NaN outputs,
// latency, and mid-run cancels at material rates. The server must
// survive every fault, answer only well-defined statuses, open and
// recover circuit breakers, shed with 429 + Retry-After, drain cleanly,
// and — with chaos disabled — reproduce engine digests bit for bit.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepqueuenet/internal/chaos"
	"deepqueuenet/internal/core"
	"deepqueuenet/internal/experiments"
	"deepqueuenet/internal/guard"
	"deepqueuenet/internal/plane"
	"deepqueuenet/internal/ptm"
	"deepqueuenet/internal/serve"
)

// testArch is a CPU-cheap but structurally complete PTM architecture.
var testArch = ptm.Arch{TimeSteps: 8, Margin: 2, Embed: 4, BLSTM1: 4, BLSTM2: 4, Heads: 1, DK: 2, DV: 2, HeadOut: 4}

func testModel(t *testing.T) *ptm.PTM {
	t.Helper()
	m, err := ptm.Synthetic(testArch, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// mustServe builds a server, failing the test on a config/state error.
func mustServe(t *testing.T, cfg serve.Config, r serve.Runner) *serve.Server {
	t.Helper()
	s, err := serve.New(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// simBody renders a /simulate request body.
func simBody(seed uint64) string {
	return fmt.Sprintf(`{"topo":"line4","duration":0.0002,"shards":2,"seed":%d}`, seed)
}

func postSim(h http.Handler, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/simulate", strings.NewReader(body)))
	return rec
}

// scrapeValue extracts one series' value from a Prometheus text
// exposition. series is the exact "name" or `name{labels}` prefix; a
// missing series reads as 0 (counters register eagerly, so the real
// families are always present).
func scrapeValue(t *testing.T, exposition, series string) uint64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			t.Fatalf("parsing %q value %q: %v", series, rest, err)
		}
		return v
	}
	return 0
}

// TestChaosStormServerSurvives is the headline drill: sustained
// concurrent traffic with every fault kind injected at >= 1% rates. The
// process must not die, every response must be a well-defined status,
// some requests must still succeed, and the server must drain cleanly
// while traffic is still arriving.
func TestChaosStormServerSurvives(t *testing.T) {
	inj := chaos.New(chaos.Config{
		Seed:      7,
		PanicRate: 0.03, NaNRate: 0.03, LatencyRate: 0.02, CancelRate: 0.10,
		Latency: 200 * time.Microsecond, CancelAfter: 50 * time.Microsecond,
	})
	runner := &serve.ScenarioRunner{DefaultModel: testModel(t), MaxShards: 2}
	runner.WrapDevice = inj.WrapDevice
	srv := mustServe(t, serve.Config{
		Workers: 3, QueueDepth: 2,
		DefaultTimeout: 10 * time.Second,
		RetryMax:       1, RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond,
		Breaker: serve.BreakerConfig{Threshold: 4, Cooldown: 20 * time.Millisecond, ProbeSuccesses: 1},
		Seed:    7,
	}, inj.WrapRunner(runner))
	h := srv.Handler()

	var codes sync.Map // status -> *atomic.Uint64
	count := func(code int) {
		c, _ := codes.LoadOrStore(code, new(atomic.Uint64))
		c.(*atomic.Uint64).Add(1)
	}
	var wg sync.WaitGroup
	var seed atomic.Uint64
	storm := func(n int) {
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < n; i++ {
					rec := postSim(h, simBody(seed.Add(1)))
					count(rec.Code)
					if rec.Code == http.StatusTooManyRequests && rec.Header().Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
				}
			}()
		}
	}
	storm(15)
	wg.Wait()

	// Only the documented statuses may ever appear.
	allowed := map[int]bool{
		http.StatusOK: true, http.StatusTooManyRequests: true,
		http.StatusServiceUnavailable: true, http.StatusGatewayTimeout: true,
		serve.StatusClientClosedRequest: true, http.StatusInternalServerError: true,
	}
	var ok200 uint64
	codes.Range(func(k, v any) bool {
		code, n := k.(int), v.(*atomic.Uint64).Load()
		t.Logf("status %d: %d", code, n)
		if !allowed[code] {
			t.Errorf("undocumented status %d (%d times)", code, n)
		}
		if code == http.StatusOK {
			ok200 = n
		}
		return true
	})
	if ok200 == 0 {
		t.Error("no request succeeded under chaos")
	}

	// Every fault kind must actually have fired.
	for f := chaos.FaultPanic; f <= chaos.FaultCancel; f++ {
		if inj.Count(f) == 0 {
			t.Errorf("fault %v never injected (total %d)", f, inj.Total())
		}
	}

	// Terminal accounting must balance: every request seen got exactly
	// one disposition.
	st := srv.Snapshot()
	if got := st.Shed + st.Rejected + st.Completed + st.Failed + st.Canceled + st.Deadline; got != st.Received {
		t.Errorf("dispositions %d != received %d (%+v)", got, st.Received, st)
	}
	if st.Panics != 0 {
		t.Errorf("chaos panics leaked to worker level: %d (must be contained as shard errors)", st.Panics)
	}

	// /metrics must tell the same story as /stats, exactly: the storm is
	// quiescent here, so every counter is settled.
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if mrec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", mrec.Code)
	}
	exp := mrec.Body.String()
	if got := scrapeValue(t, exp, `dqn_requests_received_total`); got != st.Received {
		t.Errorf("/metrics received %d != /stats %d", got, st.Received)
	}
	outcomes := map[string]uint64{
		"completed": st.Completed, "failed": st.Failed, "shed": st.Shed,
		"rejected": st.Rejected, "canceled": st.Canceled, "deadline": st.Deadline,
	}
	var sum uint64
	for outcome, want := range outcomes {
		got := scrapeValue(t, exp, fmt.Sprintf(`dqn_requests_total{outcome="%s"}`, outcome))
		if got != want {
			t.Errorf("/metrics outcome %s = %d, /stats = %d", outcome, got, want)
		}
		sum += got
	}
	if received := scrapeValue(t, exp, `dqn_requests_received_total`); sum != received {
		t.Errorf("/metrics outcomes sum %d != received %d", sum, received)
	}
	if got := scrapeValue(t, exp, `dqn_retries_total`); got != st.Retries {
		t.Errorf("/metrics retries %d != /stats %d", got, st.Retries)
	}
	if got := scrapeValue(t, exp, `dqn_degraded_total`); got != st.Degraded {
		t.Errorf("/metrics degraded %d != /stats %d", got, st.Degraded)
	}
	if got := scrapeValue(t, exp, `dqn_brownouts_total`); got != st.Brownouts {
		t.Errorf("/metrics brownouts %d != /stats %d", got, st.Brownouts)
	}

	// The fidelity ladder must reconcile too: exactly one tier answered
	// each completed request, and /metrics agrees with /stats per tier.
	var fidSum uint64
	for _, tier := range []string{"exact", "quant", "analytic", "fifo"} {
		got := scrapeValue(t, exp, fmt.Sprintf(`dqn_fidelity_total{tier="%s"}`, tier))
		if got != st.Fidelity[tier] {
			t.Errorf("/metrics fidelity %s = %d, /stats = %d", tier, got, st.Fidelity[tier])
		}
		fidSum += got
	}
	if fidSum != st.Completed {
		t.Errorf("fidelity tiers sum %d != completed %d (%v)", fidSum, st.Completed, st.Fidelity)
	}

	// Drain while fresh traffic is still arriving: drain must finish,
	// late requests must see 503.
	storm(5)
	time.Sleep(2 * time.Millisecond)
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("drain under storm: %v", err)
	}
	wg.Wait()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d, want 503", rec.Code)
	}
	if rec2 := postSim(h, simBody(0)); rec2.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain simulate: %d, want 503", rec2.Code)
	}
}

// TestChaosBreakerOpensAndRecovers drives the breaker lifecycle with a
// switchable injector: 100% panic rate until the breaker opens (500s,
// then degraded 200s), then a healed model and an elapsed cooldown let
// the half-open probe close it again.
func TestChaosBreakerOpensAndRecovers(t *testing.T) {
	var inj atomic.Pointer[chaos.Injector]
	inj.Store(chaos.New(chaos.Config{Seed: 3, PanicRate: 1.0}))
	runner := &serve.ScenarioRunner{DefaultModel: testModel(t), MaxShards: 2}
	runner.WrapDevice = func(sw int, m core.DeviceModel) core.DeviceModel {
		if in := inj.Load(); in != nil {
			return in.WrapDevice(sw, m)
		}
		return m
	}
	srv := mustServe(t, serve.Config{
		Workers: 1, QueueDepth: 2, RetryMax: -1,
		Breaker: serve.BreakerConfig{Threshold: 2, Cooldown: 30 * time.Millisecond, ProbeSuccesses: 1},
	}, runner)
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	h := srv.Handler()

	// Every inference panics: two failures open the breaker.
	for i := 0; i < 2; i++ {
		if rec := postSim(h, simBody(uint64(i+1))); rec.Code != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want 500", i, rec.Code)
		}
	}
	br := srv.BreakerFor("default")
	if br == nil || br.State() != serve.BreakerOpen {
		t.Fatalf("breaker not open after threshold failures: %v", br)
	}

	// Open: availability one rung down — the analytic tier, not a bare
	// FIFO pass, answers 200 with the degradation advertised in headers.
	rec := postSim(h, simBody(10))
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded request: status %d body %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-DQN-Degraded") != "breaker-open" {
		t.Fatalf("degraded response missing X-DQN-Degraded header")
	}
	if got := rec.Header().Get("X-DQN-Fidelity"); got != "analytic" {
		t.Fatalf("degraded response X-DQN-Fidelity = %q, want analytic", got)
	}
	if !strings.Contains(rec.Body.String(), `"mode":"analytic"`) {
		t.Fatalf("degraded body %s", rec.Body.String())
	}
	if st := srv.Snapshot(); st.Fidelity["analytic"] != 1 {
		t.Fatalf("fidelity counters %v, want analytic=1", st.Fidelity)
	}

	// A caller pinned to exact fidelity refuses the downgrade: 503 with
	// a breaker_open error, never a silently-degraded answer.
	exact := postSim(h, `{"topo":"line4","duration":0.0002,"seed":12,"fidelity":"exact"}`)
	if exact.Code != http.StatusServiceUnavailable {
		t.Fatalf("exact-only under open breaker: status %d body %s", exact.Code, exact.Body.String())
	}
	if !strings.Contains(exact.Body.String(), "breaker_open") {
		t.Fatalf("exact-only error body %s, want kind breaker_open", exact.Body.String())
	}

	// Heal the model, let the cooldown elapse: the probe closes it.
	inj.Store(nil)
	time.Sleep(40 * time.Millisecond)
	rec = postSim(h, simBody(11))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"mode":"model"`) {
		t.Fatalf("probe request: status %d body %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-DQN-Fidelity"); got != "exact" {
		t.Fatalf("healthy response X-DQN-Fidelity = %q, want exact", got)
	}
	if br.State() != serve.BreakerClosed {
		t.Fatalf("breaker %v after successful probe, want closed", br.State())
	}
}

// TestChaosNaNSurfacesAsDivergence: a poisoned model output must be
// caught by the engine's divergence watchdog, not silently served.
func TestChaosNaNSurfacesAsDivergence(t *testing.T) {
	inj := chaos.New(chaos.Config{Seed: 5, NaNRate: 1.0})
	runner := &serve.ScenarioRunner{DefaultModel: testModel(t), MaxShards: 2}
	runner.WrapDevice = inj.WrapDevice
	srv := mustServe(t, serve.Config{Workers: 1, QueueDepth: 1, RetryMax: -1}, runner)
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	_, err := srv.Submit(context.Background(), &serve.Request{Topo: "line4", Duration: 0.0002, Shards: 2})
	if err == nil {
		t.Fatal("NaN-poisoned run must fail")
	}
	var de *guard.DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("want *guard.DivergenceError, got %v", err)
	}
	if inj.Count(chaos.FaultNaN) == 0 {
		t.Fatal("NaN fault never injected")
	}
}

// TestChaosCancelSurfacesAsCanceled: an injected mid-run cancel must
// read as guard.ErrCanceled (HTTP 499), never as a deadline or failure.
func TestChaosCancelSurfacesAsCanceled(t *testing.T) {
	inj := chaos.New(chaos.Config{Seed: 5, CancelRate: 1.0, CancelAfter: time.Microsecond})
	runner := &serve.ScenarioRunner{DefaultModel: testModel(t), MaxShards: 2}
	srv := mustServe(t, serve.Config{Workers: 1, QueueDepth: 1, RetryMax: -1}, inj.WrapRunner(runner))
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	_, err := srv.Submit(context.Background(), &serve.Request{Topo: "line4", Duration: 0.0002, Shards: 2})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("want guard.ErrCanceled, got %v", err)
	}
	rec := postSim(srv.Handler(), simBody(1))
	if rec.Code != serve.StatusClientClosedRequest {
		t.Fatalf("status %d, want 499", rec.Code)
	}
	if got := srv.Snapshot().Canceled; got < 2 {
		t.Fatalf("canceled count %d, want >= 2", got)
	}
	if inj.Count(chaos.FaultCancel) == 0 {
		t.Fatal("cancel fault never injected")
	}
}

// TestChaosOffDigestBitIdentical: with every rate zero the chaos
// wrappers are identities — a served run reproduces a direct engine
// run's delivery digest bit for bit, and repeated serves agree.
func TestChaosOffDigestBitIdentical(t *testing.T) {
	model := testModel(t)
	inj := chaos.New(chaos.Config{Seed: 1}) // all rates zero
	runner := &serve.ScenarioRunner{DefaultModel: model, MaxShards: 2}
	runner.WrapDevice = inj.WrapDevice
	srv := mustServe(t, serve.Config{Workers: 2, QueueDepth: 2, RetryMax: -1}, inj.WrapRunner(runner))
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()

	req := &serve.Request{Topo: "line4", Duration: 0.0002, Shards: 2, Seed: 9}
	res1, err := srv.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := srv.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Digest == "" || res1.Digest != res2.Digest {
		t.Fatalf("served digests disagree: %q vs %q", res1.Digest, res2.Digest)
	}

	// Direct engine run of the identical scenario.
	g, err := experiments.TopoByName("line4")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := experiments.SchedByName("fifo")
	if err != nil {
		t.Fatal(err)
	}
	tm, err := experiments.TrafficByName("poisson")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := experiments.NewScenario("line4/fifo/poisson", g, sched, tm, 0.5, 0.0002, 9)
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := sc.RunDQNCfgCtx(context.Background(), model, core.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := serve.Digest(res); res1.Digest != want {
		t.Fatalf("served digest %q != direct engine digest %q: the serving layer perturbed the simulation", res1.Digest, want)
	}
	if res1.Mode != "model" || res1.Degraded {
		t.Fatalf("chaos-off run must be a clean model run: %+v", res1)
	}
}

// gateRunner holds model-tier runs at a gate until released while
// delegating the analytic tier to the real runner — the deterministic
// saturation used by the brownout drill: with the single worker parked
// at the gate and the queue full, every further arrival is a would-be
// 429.
type gateRunner struct {
	next    serve.Runner
	gate    chan struct{}
	started chan struct{}
}

func (g *gateRunner) Run(ctx context.Context, req *serve.Request, mode serve.RunMode) (*serve.Result, error) {
	if mode == serve.RunAnalytic {
		return g.next.Run(ctx, req, mode)
	}
	select {
	case g.started <- struct{}{}:
	default:
	}
	select {
	case <-g.gate:
	case <-ctx.Done():
		return nil, guard.FromContext(ctx.Err())
	}
	return g.next.Run(ctx, req, mode)
}

// TestChaosBrownoutConvertsShedToAnalytic drives an identical overload
// burst against a shedding server and a brownout server: the brownout
// run must convert every would-be 429 into a reduced-fidelity 200 — at
// least doubling the completed count — while fidelity "exact" clients
// are still shed rather than silently degraded.
func TestChaosBrownoutConvertsShedToAnalytic(t *testing.T) {
	const burst = 10
	run := func(brownout bool) serve.Stats {
		g := &gateRunner{
			next:    &serve.ScenarioRunner{DefaultModel: testModel(t), MaxShards: 2},
			gate:    make(chan struct{}),
			started: make(chan struct{}, 4),
		}
		srv := mustServe(t, serve.Config{
			Workers: 1, QueueDepth: 1, RetryMax: -1, Brownout: brownout,
		}, g)
		h := srv.Handler()

		// Saturate: one request parks the worker at the gate, one fills
		// the single queue slot.
		var occupiers sync.WaitGroup
		for i := 0; i < 2; i++ {
			occupiers.Add(1)
			go func(seed uint64) {
				defer occupiers.Done()
				if rec := postSim(h, simBody(seed)); rec.Code != http.StatusOK {
					t.Errorf("occupier %d: status %d", seed, rec.Code)
				}
			}(uint64(100 + i))
		}
		<-g.started
		deadline := time.Now().Add(5 * time.Second)
		for srv.Snapshot().Accepted < 2 {
			if !time.Now().Before(deadline) {
				t.Fatal("queue never filled")
			}
			time.Sleep(time.Millisecond)
		}

		// The burst: the server is saturated, so each of these would shed.
		var wg sync.WaitGroup
		for i := 0; i < burst; i++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				rec := postSim(h, simBody(seed))
				switch {
				case brownout && rec.Code != http.StatusOK:
					t.Errorf("brownout burst seed %d: status %d body %s", seed, rec.Code, rec.Body.String())
				case brownout && rec.Header().Get("X-DQN-Fidelity") != "analytic":
					t.Errorf("brownout burst seed %d: X-DQN-Fidelity %q, want analytic", seed, rec.Header().Get("X-DQN-Fidelity"))
				case !brownout && rec.Code != http.StatusTooManyRequests:
					t.Errorf("shed burst seed %d: status %d, want 429", seed, rec.Code)
				}
			}(uint64(200 + i))
		}
		wg.Wait()

		// Even under brownout, a fidelity "exact" client prefers the 429.
		exact := postSim(h, `{"topo":"line4","duration":0.0002,"fidelity":"exact","seed":300}`)
		if exact.Code != http.StatusTooManyRequests {
			t.Errorf("exact-only under overload: status %d, want 429", exact.Code)
		}

		close(g.gate)
		occupiers.Wait()
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			t.Fatalf("drain: %v", err)
		}
		return srv.Snapshot()
	}

	shedBase := run(false)
	browned := run(true)
	if shedBase.Completed != 2 || shedBase.Shed != burst+1 {
		t.Errorf("shed baseline: completed %d shed %d, want 2 and %d", shedBase.Completed, shedBase.Shed, burst+1)
	}
	if browned.Completed < 2*shedBase.Completed {
		t.Errorf("brownout completed %d < 2x shed baseline %d", browned.Completed, shedBase.Completed)
	}
	if browned.Brownouts != burst || browned.Fidelity["analytic"] != burst {
		t.Errorf("brownout run: brownouts %d fidelity %v, want %d analytic answers", browned.Brownouts, browned.Fidelity, burst)
	}
	if browned.Fidelity["exact"] != 2 || browned.Shed != 1 {
		t.Errorf("brownout run: fidelity %v shed %d — occupiers must stay exact and the exact-only probe must shed", browned.Fidelity, browned.Shed)
	}
}

// analyticDown wraps a runner so the analytic tier always errors — the
// fault that forces the ladder past analytic onto its final rung.
type analyticDown struct{ next serve.Runner }

func (a *analyticDown) Run(ctx context.Context, req *serve.Request, mode serve.RunMode) (*serve.Result, error) {
	if mode == serve.RunAnalytic {
		return nil, errors.New("chaos: analytic tier down")
	}
	return a.next.Run(ctx, req, mode)
}

// TestChaosBreakerFallsToFIFOWhenAnalyticFails: with the breaker open
// AND the analytic tier erroring, the server must still answer 200 from
// the exact FIFO-serialization rung — the ladder's floor.
func TestChaosBreakerFallsToFIFOWhenAnalyticFails(t *testing.T) {
	inj := chaos.New(chaos.Config{Seed: 3, PanicRate: 1.0})
	runner := &serve.ScenarioRunner{DefaultModel: testModel(t), MaxShards: 2}
	runner.WrapDevice = inj.WrapDevice
	srv := mustServe(t, serve.Config{
		Workers: 1, QueueDepth: 2, RetryMax: -1,
		Breaker: serve.BreakerConfig{Threshold: 2, Cooldown: time.Minute, ProbeSuccesses: 1},
	}, &analyticDown{next: runner})
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	h := srv.Handler()

	for i := 0; i < 2; i++ {
		if rec := postSim(h, simBody(uint64(i+1))); rec.Code != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want 500", i, rec.Code)
		}
	}
	if br := srv.BreakerFor("default"); br == nil || br.State() != serve.BreakerOpen {
		t.Fatal("breaker not open after threshold failures")
	}

	rec := postSim(h, simBody(10))
	if rec.Code != http.StatusOK {
		t.Fatalf("FIFO-rung request: status %d body %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-DQN-Fidelity"); got != "fifo" {
		t.Fatalf("X-DQN-Fidelity = %q, want fifo", got)
	}
	if rec.Header().Get("X-DQN-Degraded") != "breaker-open" {
		t.Fatal("FIFO-rung response missing X-DQN-Degraded header")
	}
	if !strings.Contains(rec.Body.String(), `"mode":"degraded-fifo"`) {
		t.Fatalf("FIFO-rung body %s", rec.Body.String())
	}
	if st := srv.Snapshot(); st.Fidelity["fifo"] != 1 {
		t.Fatalf("fidelity counters %v, want fifo=1", st.Fidelity)
	}
}

// TestChaosKillRestartResumeStorm is the storm's kill→restart→resume
// phase: a batch of durable jobs runs under probabilistic epoch-boundary
// crashes (simulated process death; the epoch's snapshot is already on
// disk when the crash fires), the server drains, and a clean server on
// the same state directory resumes every interrupted job. Every job —
// crashed or not — must end completed with a digest bit-identical to a
// never-killed run of the same request.
func TestChaosKillRestartResumeStorm(t *testing.T) {
	const jobs = 6
	stateDir := t.TempDir()

	// Ground truth: never-killed digests per seed.
	want := make(map[uint64]string, jobs)
	truth := &serve.ScenarioRunner{DefaultModel: testModel(t), MaxShards: 2}
	for seed := uint64(1); seed <= jobs; seed++ {
		req := serve.Request{Topo: "line4", Duration: 0.0002, Shards: 2, Seed: seed}
		res, err := truth.Run(context.Background(), &req, serve.RunExact)
		if err != nil {
			t.Fatal(err)
		}
		want[seed] = res.Digest
	}

	inj := chaos.New(chaos.Config{Seed: 11, CrashRate: 0.4})
	runner1 := &serve.ScenarioRunner{
		DefaultModel: testModel(t), MaxShards: 2,
		NoSyncCheckpoints: true, WrapEpochSink: inj.WrapEpochSink,
	}
	srv1 := mustServe(t, serve.Config{
		Workers: 2, QueueDepth: jobs, RetryMax: -1, StateDir: stateDir,
	}, runner1)

	ids := make(map[uint64]string, jobs)
	var mu sync.Mutex
	var wg sync.WaitGroup
	crashed := 0
	for seed := uint64(1); seed <= jobs; seed++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			req := &serve.Request{Topo: "line4", Duration: 0.0002, Shards: 2, Seed: seed}
			res, id, err := srv1.SubmitJob(context.Background(), req)
			mu.Lock()
			defer mu.Unlock()
			ids[seed] = id
			switch {
			case err == nil:
				if res.Digest != want[seed] {
					t.Errorf("seed %d: un-crashed digest %q != ground truth %q", seed, res.Digest, want[seed])
				}
			case errors.Is(err, guard.ErrCrash):
				crashed++
			default:
				t.Errorf("seed %d: unexpected outcome %v", seed, err)
			}
		}(seed)
	}
	wg.Wait()
	if crashed == 0 {
		t.Fatal("crash rate 0.4 over 6 jobs injected nothing; the phase proved nothing")
	}
	t.Logf("kill phase: %d/%d jobs crashed at epoch boundaries", crashed, jobs)
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv1.Drain(dctx); err != nil {
		t.Fatalf("drain after kill phase: %v", err)
	}

	// Restart without chaos: every interrupted job must resume from its
	// snapshot and complete with the never-killed digest.
	runner2 := &serve.ScenarioRunner{DefaultModel: testModel(t), MaxShards: 2, NoSyncCheckpoints: true}
	srv2 := mustServe(t, serve.Config{
		Workers: 2, QueueDepth: jobs, RetryMax: -1, StateDir: stateDir,
	}, runner2)
	deadline := time.Now().Add(30 * time.Second)
	for seed := uint64(1); seed <= jobs; seed++ {
		id := ids[seed]
		for {
			rec, err := srv2.Job(id)
			if err == nil && rec.Status == serve.JobCompleted {
				if rec.Result == nil || rec.Result.Digest != want[seed] {
					t.Errorf("seed %d: resumed digest %+v != never-killed %q", seed, rec.Result, want[seed])
				}
				break
			}
			if !time.Now().Before(deadline) {
				t.Fatalf("seed %d (job %s) never completed after restart (last: %+v, err %v)", seed, id, rec, err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	dctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := srv2.Drain(dctx2); err != nil {
		t.Fatalf("drain after resume phase: %v", err)
	}
	st := srv2.Snapshot()
	if got := st.Shed + st.Rejected + st.Completed + st.Failed + st.Canceled + st.Deadline; got != st.Received {
		t.Errorf("restart dispositions %d != received %d (%+v)", got, st.Received, st)
	}
	if st.Completed != uint64(crashed) {
		t.Errorf("restarted process completed %d jobs, want the %d crashed ones", st.Completed, crashed)
	}
}

// TestChaosStormBatchedDigestsBitIdentical is the inference-plane
// acceptance drill: concurrent traffic runs through the shared
// cross-request batching plane while chaos injects shard panics and
// NaN outputs, and every exact-fidelity success must still reproduce
// the plane-less, chaos-less direct engine digest bit for bit. Faults
// fire in the submitting shard (above the plane handle), so retries
// recover them without ever corrupting the shared warm workers.
func TestChaosStormBatchedDigestsBitIdentical(t *testing.T) {
	model := testModel(t)

	// Reference digests: direct engine runs, no plane, no chaos.
	g, err := experiments.TopoByName("line4")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := experiments.SchedByName("fifo")
	if err != nil {
		t.Fatal(err)
	}
	tm, err := experiments.TrafficByName("poisson")
	if err != nil {
		t.Fatal(err)
	}
	const seeds = 4
	want := make(map[uint64]string, seeds)
	for seed := uint64(1); seed <= seeds; seed++ {
		sc, err := experiments.NewScenario("line4/fifo/poisson", g, sched, tm, 0.5, 0.0002, seed)
		if err != nil {
			t.Fatal(err)
		}
		_, res, err := sc.RunDQNCfgCtx(context.Background(), model, core.Config{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		want[seed] = serve.Digest(res)
	}

	inj := chaos.New(chaos.Config{Seed: 11, PanicRate: 0.01, NaNRate: 0.01})
	pl := plane.New(plane.Config{MaxBatch: 8})
	defer pl.Close()
	runner := &serve.ScenarioRunner{DefaultModel: model, MaxShards: 2, Plane: pl}
	runner.WrapDevice = inj.WrapDevice
	srv := mustServe(t, serve.Config{
		Workers: 4, QueueDepth: 16, RetryMax: 6, RetryBase: time.Millisecond,
		Breaker: serve.BreakerConfig{Threshold: 1 << 30}, // digests, not breaker behavior, under test
		Plane:   pl,
	}, inj.WrapRunner(runner))
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()

	const perSeed = 4
	var succeeded atomic.Uint64
	errCh := make(chan error, 3*seeds*perSeed)
	// Up to three storm waves: a wave can lose every request to
	// exhausted retries under sustained faults, but any SUCCESS in any
	// wave must carry the exact reference digest.
	for wave := 0; wave < 3 && succeeded.Load() == 0; wave++ {
		var wg sync.WaitGroup
		for seed := uint64(1); seed <= seeds; seed++ {
			for i := 0; i < perSeed; i++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					req := &serve.Request{Topo: "line4", Duration: 0.0002, Shards: 2, Seed: seed, Fidelity: "exact"}
					res, err := srv.Submit(context.Background(), req)
					if err != nil {
						return // exhausted retries under chaos: acceptable, just not a success
					}
					if res.Mode != "model" || res.Degraded {
						errCh <- fmt.Errorf("seed %d: exact-fidelity success ran as %q degraded=%v", seed, res.Mode, res.Degraded)
						return
					}
					if res.Digest != want[seed] {
						errCh <- fmt.Errorf("seed %d: batched digest %q != direct engine digest %q", seed, res.Digest, want[seed])
						return
					}
					succeeded.Add(1)
				}(seed)
			}
		}
		wg.Wait()
	}
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if succeeded.Load() == 0 {
		t.Fatal("no request succeeded under the chaos storm; digest claim untested")
	}
	// Traffic must actually have flowed through the plane.
	if calls, _ := pl.BatchStats(); calls == 0 {
		t.Fatal("plane saw no flushes: the batched path was not exercised")
	}
}
