package serve

import (
	"testing"
	"time"
)

// TestRetryAfterWorkerPoolRegime pins the plane-less estimate: backlog
// clearing through the HTTP worker pool.
func TestRetryAfterWorkerPoolRegime(t *testing.T) {
	s := &Server{cfg: Config{Workers: 2}, queue: make(chan *job, 8)}
	s.avgRunNs.Store(int64(4 * time.Second))
	for i := 0; i < 3; i++ {
		s.queue <- &job{}
	}
	// (3 queued + 1 mine) × 4s / 2 workers = 8s.
	if got := s.RetryAfter(); got != 8*time.Second {
		t.Fatalf("RetryAfter = %v, want 8s", got)
	}
	// Idle server floors at 1s.
	s2 := &Server{cfg: Config{Workers: 2}, queue: make(chan *job, 8)}
	if got := s2.RetryAfter(); got != time.Second {
		t.Fatalf("idle RetryAfter = %v, want 1s", got)
	}
}

// TestRetryAfterPlaneRegime pins the plane-aware estimate: with a
// shared inference plane attached, Retry-After is the larger of the
// worker-pool estimate and the time for the plane's pending device
// calls to clear at the measured batch latency.
func TestRetryAfterPlaneRegime(t *testing.T) {
	s := &Server{cfg: Config{Workers: 2}, queue: make(chan *job, 8)}
	s.avgRunNs.Store(int64(time.Second)) // pool estimate: 1×1s/2 = 0.5s → floor 1s

	// 40 pending calls at 8 calls/flush and 1s/flush: (40/8 + 1) × 1s = 6s.
	s.planeStats = func() (int, float64, float64) { return 40, 1.0, 8 }
	if got := s.RetryAfter(); got != 6*time.Second {
		t.Fatalf("plane-bound RetryAfter = %v, want 6s", got)
	}

	// An idle plane must not drag the estimate below the pool regime.
	s.planeStats = func() (int, float64, float64) { return 0, 0.001, 8 }
	for i := 0; i < 7; i++ {
		s.queue <- &job{}
	}
	s.avgRunNs.Store(int64(4 * time.Second)) // pool: (7+1)×4s/2 = 16s
	if got := s.RetryAfter(); got != 16*time.Second {
		t.Fatalf("pool-bound RetryAfter = %v, want 16s", got)
	}

	// A plane with no flush history yet contributes nothing.
	s.planeStats = func() (int, float64, float64) { return 100, 0, 0 }
	if got := s.RetryAfter(); got != 16*time.Second {
		t.Fatalf("no-history RetryAfter = %v, want 16s", got)
	}

	// The 60s ceiling still applies in the plane regime.
	s.planeStats = func() (int, float64, float64) { return 10000, 2.0, 4 }
	if got := s.RetryAfter(); got != time.Minute {
		t.Fatalf("ceiling RetryAfter = %v, want 60s", got)
	}
}
