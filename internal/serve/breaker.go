package serve

import (
	"sync"
	"time"

	"deepqueuenet/internal/guard"
)

// BreakerState is the circuit-breaker state machine position.
type BreakerState int

const (
	// BreakerClosed: the model path is healthy; requests run normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: repeated failures; requests serve the degraded FIFO
	// fallback until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: cooldown elapsed; one probe at a time runs the
	// real model while everything else stays degraded.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes one circuit breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive breaker-worthy failures
	// (shard panics, divergence, model validation) that opens the
	// breaker. <= 0 uses 5.
	Threshold int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe. <= 0 uses 5s.
	Cooldown time.Duration
	// ProbeSuccesses is the number of consecutive successful half-open
	// probes required to close the breaker again. <= 0 uses 2.
	ProbeSuccesses int
}

// withDefaults fills zero fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 2
	}
	return c
}

// Admission is a breaker's decision for one request.
type Admission int

const (
	// AdmitNormal: run the real model.
	AdmitNormal Admission = iota
	// AdmitProbe: run the real model as the half-open probe; the
	// outcome decides whether the breaker closes or re-opens.
	AdmitProbe
	// AdmitDegraded: breaker open — serve the exact FIFO-serialization
	// fallback instead of the suspect model.
	AdmitDegraded
)

// Breaker is a per-model-path circuit breaker. It contains repeated
// inference failures (guard.ShardError, guard.DivergenceError, model
// validation errors) by rerouting requests to the degraded FIFO
// fallback instead of hammering a faulty model, then probes the model
// again after a cooldown. All methods are goroutine-safe.
type Breaker struct {
	mu   sync.Mutex
	cfg  BreakerConfig
	path string

	state    BreakerState
	fails    int // consecutive failures while closed
	probeOK  int // consecutive successful probes while half-open
	probing  bool
	openedAt time.Time

	opens   uint64 // total times this breaker has opened
	lastErr error

	// onTransition, when set, observes every state change. It runs under
	// the breaker's mutex and must not call back into the breaker or
	// block (the serve layer wires pre-registered metric counters here).
	onTransition func(from, to BreakerState)
}

// setState moves the state machine, notifying the transition hook.
func (b *Breaker) setState(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// NewBreaker builds a breaker for one guarded model path.
func NewBreaker(path string, cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), path: path}
}

// Allow decides how the next request against this path runs. A Probe
// admission reserves the single half-open probe slot; its outcome must
// be reported through Record with probe=true.
func (b *Breaker) Allow(now time.Time) Admission {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return AdmitNormal
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			return AdmitDegraded
		}
		b.setState(BreakerHalfOpen)
		b.probeOK = 0
		b.probing = true
		return AdmitProbe
	default: // BreakerHalfOpen
		if b.probing {
			return AdmitDegraded
		}
		b.probing = true
		return AdmitProbe
	}
}

// Record reports the outcome of a request that ran the real model.
// probe marks the half-open probe handed out by Allow. A nil err is a
// success; a non-nil err is a breaker-worthy failure (the caller
// classifies — cancellations and bad requests must not be recorded).
func (b *Breaker) Record(probe bool, err error, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	if err != nil {
		b.lastErr = err
		if b.state == BreakerHalfOpen && probe {
			// Failed probe: back to open, restart the cooldown.
			b.setState(BreakerOpen)
			b.openedAt = now
			b.opens++
			return
		}
		if b.state == BreakerClosed {
			b.fails++
			if b.fails >= b.cfg.Threshold {
				b.setState(BreakerOpen)
				b.openedAt = now
				b.opens++
			}
		}
		return
	}
	switch b.state {
	case BreakerClosed:
		b.fails = 0
	case BreakerHalfOpen:
		if probe {
			b.probeOK++
			if b.probeOK >= b.cfg.ProbeSuccesses {
				b.setState(BreakerClosed)
				b.fails = 0
				b.lastErr = nil
			}
		}
	}
}

// ReleaseProbe returns the half-open probe slot without judging the
// model — for probes that ended for reasons unrelated to it (client
// cancellation, deadline), so a neutral outcome cannot wedge the
// breaker in a probe-reserved half-open state.
func (b *Breaker) ReleaseProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Err returns the *guard.BreakerError describing why the breaker is
// open (nil when closed), for attachment to degraded responses.
func (b *Breaker) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerClosed {
		return nil
	}
	fails := b.fails
	if fails < b.cfg.Threshold {
		fails = b.cfg.Threshold
	}
	return &guard.BreakerError{Path: b.path, Failures: fails, LastErr: b.lastErr}
}

// BreakerStats is one breaker's observable state for /stats.
type BreakerStats struct {
	Path    string `json:"path"`
	State   string `json:"state"`
	Opens   uint64 `json:"opens"`
	LastErr string `json:"last_err,omitempty"`
}

// Stats snapshots the breaker.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStats{Path: b.path, State: b.state.String(), Opens: b.opens}
	if b.lastErr != nil {
		st.LastErr = b.lastErr.Error()
	}
	return st
}
