package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"deepqueuenet/internal/guard"
	"deepqueuenet/internal/obs"
	"deepqueuenet/internal/ptm"
)

func registryTestModel(t *testing.T) *ptm.PTM {
	t.Helper()
	arch := ptm.Arch{TimeSteps: 8, Margin: 2, Embed: 4, BLSTM1: 4, BLSTM2: 4, Heads: 1, DK: 2, DV: 2, HeadOut: 4}
	m, err := ptm.Synthetic(arch, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRegistryColdStartSingleflight hammers one path with 32 concurrent
// cold-start requesters and verifies the model is loaded exactly once,
// every caller gets the same entry, and the lazily derived variants
// (quantized, SEC-stripped, digest) are each built exactly once too.
// Run under -race this also proves the registry's locking discipline.
func TestRegistryColdStartSingleflight(t *testing.T) {
	base := registryTestModel(t)
	var loads atomic.Int64
	mr := &modelRegistry{}

	const goroutines = 32
	entries := make([]*modelEntry, goroutines)
	quants := make([]*ptm.PTM, goroutines)
	nosecs := make([]*ptm.PTM, goroutines)
	digests := make([]string, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer func() {
				if we := guard.RecoveredWorker(i, recover()); we != nil {
					t.Error(we)
				}
				wg.Done()
			}()
			e, err := mr.entry("models/a.json", nil, func() (*ptm.PTM, error) {
				loads.Add(1)
				return base, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
			q, err := e.quantized()
			if err != nil {
				t.Error(err)
				return
			}
			quants[i] = q
			nosecs[i] = e.withoutSEC(e.base)
			d, err := e.baseDigest()
			if err != nil {
				t.Error(err)
				return
			}
			digests[i] = d
		}(i)
	}
	wg.Wait()

	if n := loads.Load(); n != 1 {
		t.Fatalf("cold-start loads = %d, want exactly 1 (singleflight)", n)
	}
	for i := 1; i < goroutines; i++ {
		if entries[i] != entries[0] {
			t.Fatalf("goroutine %d got a different entry", i)
		}
		if quants[i] != quants[0] {
			t.Fatalf("goroutine %d got a different quantized variant", i)
		}
		if nosecs[i] != nosecs[0] {
			t.Fatalf("goroutine %d got a different SEC-stripped variant", i)
		}
		if digests[i] != digests[0] {
			t.Fatalf("goroutine %d got a different digest", i)
		}
	}
	if quants[0] == base {
		t.Fatal("quantized variant aliases the exact base model")
	}
	if base.Quantized() {
		t.Fatal("registry mutated the base model while quantizing")
	}
}

// TestRegistryLoadFailureNotCached: a failed load is retried by the
// next requester (half-open probes must see a fixed model file), and a
// subsequent success is cached.
func TestRegistryLoadFailureNotCached(t *testing.T) {
	mr := &modelRegistry{}
	boom := errors.New("disk on fire")
	var calls int
	_, err := mr.entry("p", nil, func() (*ptm.PTM, error) { calls++; return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	base := registryTestModel(t)
	e, err := mr.entry("p", nil, func() (*ptm.PTM, error) { calls++; return base, nil })
	if err != nil || e.base != base {
		t.Fatalf("retry after failure: err=%v", err)
	}
	if _, err := mr.entry("p", nil, func() (*ptm.PTM, error) { calls++; return nil, boom }); err != nil {
		t.Fatalf("cached entry should not reload: %v", err)
	}
	if calls != 2 {
		t.Fatalf("loads = %d, want 2 (fail, succeed, then cached)", calls)
	}
}

// TestRegistryLRUBound pins the entry cap at the breaker's 64-key bound
// and the eviction counter.
func TestRegistryLRUBound(t *testing.T) {
	base := registryTestModel(t)
	reg := obs.NewRegistry()
	evict := reg.Counter("test_evictions_total", "test")
	mr := &modelRegistry{}
	if _, err := mr.entry("", evict, func() (*ptm.PTM, error) { return base, nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxModelEntries+10; i++ {
		path := fmt.Sprintf("models/%d.json", i)
		if _, err := mr.entry(path, evict, func() (*ptm.PTM, error) { return base, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// The default entry ("") is exempt, so the bound is 64 + 1.
	if got := mr.len(); got > maxModelEntries+1 {
		t.Fatalf("registry holds %d entries, want <= %d", got, maxModelEntries+1)
	}
	if got := evict.Value(); got < 10 {
		t.Fatalf("evictions = %d, want >= 10", got)
	}
	// The freshest path must have survived; the oldest must not.
	mr.mu.Lock()
	_, newest := mr.entries[fmt.Sprintf("models/%d.json", maxModelEntries+9)]
	_, oldest := mr.entries["models/0.json"]
	_, def := mr.entries[""]
	mr.mu.Unlock()
	if !newest || oldest || !def {
		t.Fatalf("LRU order wrong: newest=%v oldest=%v default=%v", newest, oldest, def)
	}
}
