package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepqueuenet/internal/guard"
)

// stubRunner scripts Run outcomes for server-mechanics tests.
type stubRunner struct {
	mu    sync.Mutex
	calls int
	fn    func(ctx context.Context, req *Request, mode RunMode, call int) (*Result, error)
}

func (s *stubRunner) Run(ctx context.Context, req *Request, mode RunMode) (*Result, error) {
	s.mu.Lock()
	s.calls++
	call := s.calls
	s.mu.Unlock()
	return s.fn(ctx, req, mode, call)
}

func (s *stubRunner) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// okResult builds a minimal successful result.
func okResult(mode string) *Result {
	return &Result{Scenario: "stub", Mode: mode, Digest: "d"}
}

// blockingRunner blocks every Run until released (or its ctx dies).
type blockingRunner struct {
	started     chan struct{} // one tick per Run entered
	release     chan struct{} // closed by Release to let every Run finish
	releaseOnce sync.Once
}

func newBlockingRunner() *blockingRunner {
	return &blockingRunner{started: make(chan struct{}, 64), release: make(chan struct{})}
}

func (b *blockingRunner) Release() { b.releaseOnce.Do(func() { close(b.release) }) }

func (b *blockingRunner) Run(ctx context.Context, _ *Request, _ RunMode) (*Result, error) {
	b.started <- struct{}{}
	select {
	case <-b.release:
		return okResult("model"), nil
	case <-ctx.Done():
		return nil, guard.FromContext(ctx.Err())
	}
}

// mustNew builds a server, failing the test on a config/state error.
func mustNew(t *testing.T, cfg Config, r Runner) *Server {
	t.Helper()
	s, err := New(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func drainServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// waitQueued spins until the admission queue holds n jobs. The
// deadline is generous: under -race with the full suite running in
// parallel, goroutine scheduling can stall for seconds.
func waitQueued(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for len(s.queue) < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(s.queue) < n {
		t.Fatalf("queue depth %d, want >= %d", len(s.queue), n)
	}
}

func TestSubmitRunsJob(t *testing.T) {
	r := &stubRunner{fn: func(context.Context, *Request, RunMode, int) (*Result, error) {
		return okResult("model"), nil
	}}
	s := mustNew(t, Config{Workers: 1, QueueDepth: 1, RetryMax: -1}, r)
	defer drainServer(t, s)
	res, err := s.Submit(context.Background(), &Request{Topo: "line4"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "model" || res.Attempts != 1 {
		t.Fatalf("unexpected result %+v", res)
	}
	st := s.Snapshot()
	if st.Completed != 1 || st.Accepted != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestShedWhenQueueFull(t *testing.T) {
	b := newBlockingRunner()
	s := mustNew(t, Config{Workers: 1, QueueDepth: 1, RetryMax: -1}, b)
	defer drainServer(t, s)
	defer b.Release() // runs before the drain defer (LIFO), unblocking it

	var wg sync.WaitGroup
	errs := make([]error, 2)
	submit := func(i int) {
		wg.Add(1)
		go func() {
			defer func() {
				if we := guard.RecoveredWorker(i, recover()); we != nil {
					errs[i] = we
				}
				wg.Done()
			}()
			_, errs[i] = s.Submit(context.Background(), &Request{})
		}()
	}
	// First request occupies the worker; only then submit the second so
	// it is guaranteed a queue slot (submitting both concurrently races
	// the second enqueue against the worker's dequeue of the first, and
	// losing that race sheds it).
	submit(0)
	<-b.started // worker picked up request 1
	submit(1)
	waitQueued(t, s, 1)
	// Third request must shed.
	if _, err := s.Submit(context.Background(), &Request{}); !errors.Is(err, ErrShed) {
		t.Fatalf("want ErrShed, got %v", err)
	}
	if got := s.Snapshot().Shed; got != 1 {
		t.Fatalf("shed count %d, want 1", got)
	}
	b.Release()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
	}
}

func TestShedHTTP429WithRetryAfter(t *testing.T) {
	b := newBlockingRunner()
	s := mustNew(t, Config{Workers: 1, QueueDepth: 1, RetryMax: -1}, b)
	defer drainServer(t, s)
	defer b.Release()
	h := s.Handler()

	var wg sync.WaitGroup
	submit := func(i int) {
		wg.Add(1)
		go func() {
			defer func() {
				if we := guard.RecoveredWorker(i, recover()); we != nil {
					t.Error(we)
				}
				wg.Done()
			}()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/simulate", strings.NewReader(`{}`)))
		}()
	}
	// Occupy the worker first, then the queue slot (see
	// TestShedWhenQueueFull for why these must not race).
	submit(0)
	<-b.started
	submit(1)
	waitQueued(t, s, 1)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/simulate", strings.NewReader(`{}`)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	b.Release()
	wg.Wait()
}

func TestDeadlinePropagates(t *testing.T) {
	b := newBlockingRunner()
	s := mustNew(t, Config{Workers: 1, QueueDepth: 1, RetryMax: -1}, b)
	defer drainServer(t, s)
	defer b.Release()
	_, err := s.Submit(context.Background(), &Request{TimeoutMs: 20})
	if !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	// The worker does the terminal accounting; wait for it.
	deadline := time.Now().Add(2 * time.Second)
	for s.Snapshot().Deadline == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.Snapshot().Deadline; got != 1 {
		t.Fatalf("deadline counter %d, want 1", got)
	}
}

func TestRetryTransientThenSucceed(t *testing.T) {
	r := &stubRunner{fn: func(_ context.Context, _ *Request, _ RunMode, call int) (*Result, error) {
		if call <= 2 {
			return nil, guard.Recovered(0, 1, 0, "transient boom")
		}
		return okResult("model"), nil
	}}
	s := mustNew(t, Config{Workers: 1, QueueDepth: 1, RetryMax: 2, RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond}, r)
	defer drainServer(t, s)
	res, err := s.Submit(context.Background(), &Request{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts %d, want 3", res.Attempts)
	}
	if got := s.Snapshot().Retries; got != 2 {
		t.Fatalf("retries %d, want 2", got)
	}
}

func TestBadRequestNotRetriedNotBreakerCharged(t *testing.T) {
	r := &stubRunner{fn: func(context.Context, *Request, RunMode, int) (*Result, error) {
		return nil, badRequestf("no such topo")
	}}
	s := mustNew(t, Config{Workers: 1, QueueDepth: 1, Breaker: BreakerConfig{Threshold: 1}}, r)
	defer drainServer(t, s)
	_, err := s.Submit(context.Background(), &Request{Topo: "nope"})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("want ErrBadRequest, got %v", err)
	}
	if r.callCount() != 1 {
		t.Fatalf("bad request retried: %d calls", r.callCount())
	}
	if st := s.BreakerFor("default").State(); st != BreakerClosed {
		t.Fatalf("bad request charged the breaker: %v", st)
	}
}

// fakeClock is a mutable clock for breaker-timing tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBreakerOpensDegradesAndRecovers(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	var healthy atomic.Bool
	r := &stubRunner{fn: func(_ context.Context, _ *Request, mode RunMode, _ int) (*Result, error) {
		switch mode {
		case RunAnalytic:
			return &Result{Scenario: "stub", Mode: "analytic", Fidelity: "analytic"}, nil
		case RunFIFO:
			return okResult("degraded-fifo"), nil
		}
		if healthy.Load() {
			return okResult("model"), nil
		}
		return nil, guard.Recovered(0, 3, 1, "model keeps exploding")
	}}
	s := mustNew(t, Config{
		Workers: 1, QueueDepth: 2, RetryMax: -1, Now: clk.Now,
		Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Minute, ProbeSuccesses: 1},
	}, r)
	defer drainServer(t, s)

	// Two consecutive failures open the breaker.
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(context.Background(), &Request{}); err == nil {
			t.Fatal("expected failure")
		}
	}
	br := s.BreakerFor("default")
	if br.State() != BreakerOpen {
		t.Fatalf("breaker %v, want open", br.State())
	}
	if !errors.Is(br.Err(), guard.ErrBreakerOpen) {
		t.Fatalf("breaker error %v must match guard.ErrBreakerOpen", br.Err())
	}
	var se *guard.ShardError
	if !errors.As(br.Err(), &se) {
		t.Fatalf("breaker error %v must expose the tripping ShardError", br.Err())
	}

	// Open: requests answer from the analytic tier, not errors and not
	// the bare FIFO rung.
	res, err := s.Submit(context.Background(), &Request{})
	if err != nil {
		t.Fatalf("open breaker must degrade, not fail: %v", err)
	}
	if res.Mode != "analytic" || res.Fidelity != "analytic" || !res.BreakerOpen || res.DegradedReason == "" {
		t.Fatalf("degraded result %+v", res)
	}
	if got := s.Snapshot().Degraded; got != 1 {
		t.Fatalf("degraded count %d, want 1", got)
	}
	if got := s.Snapshot().Fidelity["analytic"]; got != 1 {
		t.Fatalf("analytic fidelity count %d, want 1", got)
	}

	// Model fixed + cooldown elapsed: the next request is the half-open
	// probe, succeeds, and closes the breaker.
	healthy.Store(true)
	clk.Advance(2 * time.Minute)
	res, err = s.Submit(context.Background(), &Request{})
	if err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if res.Mode != "model" {
		t.Fatalf("probe should run the real model, got %+v", res)
	}
	if br.State() != BreakerClosed {
		t.Fatalf("breaker %v after successful probe, want closed", br.State())
	}
}

func TestDrainWaitsForInFlightAndRefusesNew(t *testing.T) {
	b := newBlockingRunner()
	s := mustNew(t, Config{Workers: 1, QueueDepth: 2, RetryMax: -1}, b)
	defer b.Release()

	var submitErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer func() {
			if we := guard.RecoveredWorker(0, recover()); we != nil {
				submitErr = we
			}
			wg.Done()
		}()
		_, submitErr = s.Submit(context.Background(), &Request{})
	}()
	<-b.started // job is in flight

	drainDone := make(chan error, 1)
	go func() {
		defer func() {
			if we := guard.RecoveredWorker(1, recover()); we != nil {
				drainDone <- we
			}
		}()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- s.Drain(ctx)
	}()

	// Draining: readiness false, new work refused with 503.
	deadline := time.Now().Add(2 * time.Second)
	for !s.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", rec.Code)
	}
	if _, err := s.Submit(context.Background(), &Request{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("want ErrDraining, got %v", err)
	}

	// The in-flight job completes; drain then returns cleanly.
	b.Release()
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	if submitErr != nil {
		t.Fatalf("in-flight job must complete during drain: %v", submitErr)
	}
}

func TestWorkerSurvivesRunnerPanic(t *testing.T) {
	r := &stubRunner{fn: func(_ context.Context, _ *Request, _ RunMode, call int) (*Result, error) {
		if call == 1 {
			panic("runner exploded straight through")
		}
		return okResult("model"), nil
	}}
	s := mustNew(t, Config{Workers: 1, QueueDepth: 1, RetryMax: -1, Breaker: BreakerConfig{Threshold: 100}}, r)
	defer drainServer(t, s)
	_, err := s.Submit(context.Background(), &Request{})
	if err == nil {
		t.Fatal("panicking job must surface an error")
	}
	var we *guard.WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("want *guard.WorkerError, got %v", err)
	}
	// The same worker must still serve the next request.
	if _, err := s.Submit(context.Background(), &Request{}); err != nil {
		t.Fatalf("worker died after panic: %v", err)
	}
	if got := s.Snapshot().Panics; got != 1 {
		t.Fatalf("panic count %d, want 1", got)
	}
}

func TestHealthzAlwaysOK(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueDepth: 1}, &stubRunner{fn: func(context.Context, *Request, RunMode, int) (*Result, error) {
		return okResult("model"), nil
	}})
	defer drainServer(t, s)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz %d", rec.Code)
	}
}

func TestBreakerProbeReleaseOnNeutralOutcome(t *testing.T) {
	// A probe that ends for a reason unrelated to the model (deadline)
	// must hand the probe slot back instead of wedging the breaker.
	clk := &fakeClock{now: time.Unix(1000, 0)}
	br := NewBreaker("m", BreakerConfig{Threshold: 1, Cooldown: time.Minute, ProbeSuccesses: 1})
	br.Record(false, guard.Recovered(0, 0, 0, "boom"), clk.Now())
	if br.State() != BreakerOpen {
		t.Fatalf("state %v, want open", br.State())
	}
	clk.Advance(2 * time.Minute)
	if adm := br.Allow(clk.Now()); adm != AdmitProbe {
		t.Fatalf("admission %v, want probe", adm)
	}
	// While the probe is out, everyone else degrades.
	if adm := br.Allow(clk.Now()); adm != AdmitDegraded {
		t.Fatalf("admission %v, want degraded while probing", adm)
	}
	br.ReleaseProbe() // neutral outcome: no judgment
	if adm := br.Allow(clk.Now()); adm != AdmitProbe {
		t.Fatalf("admission %v, want a fresh probe after release", adm)
	}
	br.Record(true, nil, clk.Now())
	if br.State() != BreakerClosed {
		t.Fatalf("state %v, want closed", br.State())
	}
}
