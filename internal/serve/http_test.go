package serve

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"deepqueuenet/internal/obs"
)

// okServer builds a server whose runner always succeeds.
func okServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	r := &stubRunner{fn: func(context.Context, *Request, RunMode, int) (*Result, error) {
		return okResult("model"), nil
	}}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 1
	}
	cfg.RetryMax = -1
	s := mustNew(t, cfg, r)
	t.Cleanup(func() { drainServer(t, s) })
	return s
}

// TestBodyTooLargeIs413 is the regression test for the unbounded-body
// bug: handleSimulate used to decode r.Body with no cap, so one huge
// request could exhaust memory. Overflow must map to 413, not 400.
func TestBodyTooLargeIs413(t *testing.T) {
	s := okServer(t, Config{MaxBodyBytes: 256})
	h := s.Handler()

	big := `{"topo":"line4","note":"` + strings.Repeat("x", 1024) + `"}`
	rec := postSimBody(h, big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413 (body %s)", rec.Code, rec.Body.String())
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Kind != "too_large" {
		t.Fatalf("kind = %q, want too_large", eb.Kind)
	}

	// A body under the cap still works.
	rec = postSimBody(h, `{"topo":"line4"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("small body: status %d, want 200 (body %s)", rec.Code, rec.Body.String())
	}
	if st := s.Snapshot(); st.Rejected != 0 {
		t.Fatalf("413 must happen before admission; rejected = %d", st.Rejected)
	}
}

// TestTrailingGarbageIs400 is the regression test for silent
// trailing-data acceptance: json.Decoder.Decode reads one value and
// stops, so `{}{"topo":"evil"}` used to be accepted as `{}`.
func TestTrailingGarbageIs400(t *testing.T) {
	s := okServer(t, Config{})
	h := s.Handler()
	for _, body := range []string{
		`{"topo":"line4"}{"topo":"other"}`,
		`{"topo":"line4"} trailing`,
		`{"topo":"line4"}[]`,
	} {
		rec := postSimBody(h, body)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, rec.Code)
		}
	}
	// Trailing whitespace is fine — it is not a second document.
	rec := postSimBody(h, `{"topo":"line4"}`+"\n  \n")
	if rec.Code != http.StatusOK {
		t.Fatalf("trailing whitespace: status %d, want 200 (body %s)", rec.Code, rec.Body.String())
	}
}

func TestMalformedJSONIs400(t *testing.T) {
	s := okServer(t, Config{})
	rec := postSimBody(s.Handler(), `{"topo":`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
}

// TestMetricsEndpointSmoke drives a request through the full handler
// and asserts /metrics exposes consistent serve-layer counters — the
// `make metrics-smoke` gate.
func TestMetricsEndpointSmoke(t *testing.T) {
	reg := obs.NewRegistry()
	s := okServer(t, Config{Metrics: reg})
	h := s.Handler()

	if rec := postSimBody(h, `{"topo":"line4"}`); rec.Code != http.StatusOK {
		t.Fatalf("simulate: %d (%s)", rec.Code, rec.Body.String())
	}
	postSimBody(h, `not json`)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE dqn_requests_received_total counter",
		"dqn_requests_received_total 1",
		`dqn_requests_total{outcome="completed"} 1`,
		`dqn_http_requests_total{code="200",path="/simulate"} 1`,
		`dqn_http_requests_total{code="400",path="/simulate"} 1`,
		"# TYPE dqn_job_seconds histogram",
		"dqn_queue_depth 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	// The registry accessor serves the same state.
	if v, ok := s.Metrics().Value("dqn_requests_received_total"); !ok || v != 1 {
		t.Fatalf("Metrics().Value = %v,%v", v, ok)
	}
}

// TestUnknownRouteBounded: hostile path sweeps must collapse into the
// "other" label, not mint one series per URL.
func TestUnknownRouteBounded(t *testing.T) {
	s := okServer(t, Config{})
	h := s.Handler()
	for _, p := range []string{"/a", "/b", "/c"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, p, nil))
	}
	if v, ok := s.Metrics().Value("dqn_http_requests_total", obs.L("path", "other"), obs.L("code", "404")); !ok || v != 3 {
		t.Fatalf("other/404 = %v,%v, want 3", v, ok)
	}
}

// TestRequestLogging exercises the slog seam: one record per exchange.
func TestRequestLogging(t *testing.T) {
	var buf strings.Builder
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	s := okServer(t, Config{Logger: logger})
	h := s.Handler()
	if rec := postSimBody(h, `{"topo":"line4"}`); rec.Code != http.StatusOK {
		t.Fatalf("simulate: %d", rec.Code)
	}
	out := buf.String()
	for _, want := range []string{"http_request", "path=/simulate", "status=200", "method=POST"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log missing %q:\n%s", want, out)
		}
	}
}

func postSimBody(h http.Handler, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/simulate", strings.NewReader(body)))
	return rec
}
