package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	rate := 4.0
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	mean := sum / float64(n)
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("exp mean %v, want %v", mean, 1/rate)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(17)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(3, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("normal mean %v, want 3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("normal variance %v, want 4", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(19)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		n := 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("poisson(%v) mean %v", mean, got)
		}
	}
}

func TestGammaMean(t *testing.T) {
	r := New(23)
	for _, tc := range []struct{ shape, scale float64 }{{0.5, 2}, {2, 3}, {9, 0.5}} {
		n := 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += r.Gamma(tc.shape, tc.scale)
		}
		want := tc.shape * tc.scale
		got := sum / float64(n)
		if math.Abs(got-want) > 0.03*want+0.01 {
			t.Fatalf("gamma(%v,%v) mean %v, want %v", tc.shape, tc.scale, got, want)
		}
	}
}

func TestParetoMinimum(t *testing.T) {
	r := New(29)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(1.5, 2); v < 1.5 {
			t.Fatalf("pareto below xm: %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(31)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := New(37)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.Choice(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio %v, want ~3", ratio)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(41)
	child := parent.Split()
	// The child stream should not reproduce the parent stream.
	p2 := New(41)
	p2.Uint64() // advance past the Split draw
	match := 0
	for i := 0; i < 100; i++ {
		if child.Uint64() == p2.Uint64() {
			match++
		}
	}
	if match > 0 {
		t.Fatalf("split stream matches parent %d times", match)
	}
}
