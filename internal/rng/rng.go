// Package rng provides a small, deterministic random number generator and
// the distribution variates used across the simulator and traffic models.
//
// All stochastic components in this repository draw from rng.Rand seeded
// explicitly, so every experiment is reproducible bit-for-bit.
package rng

import "math"

// Rand is a deterministic pseudo-random generator based on SplitMix64.
// It is not safe for concurrent use; give each goroutine its own Rand
// (use Split to derive independent streams).
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// State returns the generator's current internal state. Together with
// SetState it makes the stream checkpointable: a generator restored
// with SetState(State()) continues the exact same variate sequence.
func (r *Rand) State() uint64 { return r.state }

// SetState restores a state previously captured with State.
func (r *Rand) SetState(s uint64) { r.state = s }

// Split derives an independent generator from r. The derived stream is
// decorrelated from the parent by mixing in a large odd constant.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Uniform returns a uniform variate in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normal variate with the given mean and standard
// deviation, using the Marsaglia polar method.
func (r *Rand) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a Pareto variate with minimum xm and shape alpha.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson returns a Poisson variate with the given mean, using Knuth's
// method for small means and a normal approximation for large ones.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		n := int(math.Round(r.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Gamma returns a gamma variate with the given shape and scale, using
// the Marsaglia–Tsang method (with Ahrens-style boost for shape < 1).
func (r *Rand) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma with non-positive parameter")
	}
	if shape < 1 {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Choice returns a random index weighted by the non-negative weights.
// It panics if all weights are zero or the slice is empty.
func (r *Rand) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: Choice with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Choice with zero total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
