// Package ptm implements the paper's packet-level traffic-management
// model: pre-PTM feature engineering and data augmentation (§4.1), the
// BLSTM + multi-head-attention sojourn-time predictor (§4.2, Fig. 5),
// DUtil training-trace generation on a single-device DES (§5.2), and
// post-PTM statistical error correction (§4.3).
package ptm

import (
	"math"

	"deepqueuenet/internal/des"
	"deepqueuenet/internal/tensor"
)

// PacketIn is one packet of a device's per-egress-port ingress time
// series, as the PTM sees it at inference time: the paper's packet vector
// (Eq. 1) augmented with arrival time, ingress port, and scheduling
// attributes (Eqs. 8–9).
type PacketIn struct {
	Arrive float64
	Size   int
	Proto  uint8
	InPort int
	Class  int     // priority class (SP) / weight class (WFQ/WRR/DRR)
	Weight float64 // class weight
}

// NumFeatures is the width of the engineered feature vector.
const NumFeatures = 15

// emaAlpha is the paper's workload smoothing factor (§4.1).
const emaAlpha = 0.95

// Aux carries the per-packet deterministic quantities the target
// transform is defined against: the transmission time and the
// work-conserving backlog at arrival.
type Aux struct {
	Tx []float64 // transmission time of each packet (seconds)
	// Backlog is the unfinished work (seconds) queued at the egress
	// port just before each arrival — the Lindley recursion
	// W_i = max(0, W_{i-1} + Tx_{i-1} − IAT_i). On a work-conserving
	// port this aggregate is discipline-independent; per-packet sojourn
	// differs from W+Tx only by the scheduler's reordering, which is
	// exactly what the DNN learns.
	Backlog []float64
}

// schedOneHot returns the 5-wide discipline encoding. The paper one-hot
// encodes SP/WRR/DRR/WFQ; FIFO (the baseline configuration) gets its own
// slot so the same model serves all five disciplines.
func schedOneHot(kind des.SchedKind) [5]float64 {
	var oh [5]float64
	switch kind {
	case des.FIFO:
		oh[0] = 1
	case des.SP:
		oh[1] = 1
	case des.WRR:
		oh[2] = 1
	case des.DRR:
		oh[3] = 1
	case des.WFQ:
		oh[4] = 1
	}
	return oh
}

// Featurize converts one per-egress-port ingress stream (sorted by
// arrival time) into raw, unscaled feature rows plus the auxiliary
// per-packet quantities. rateBps is the egress port line rate; numPorts
// normalizes the in-port index so one model serves devices of any port
// count up to its training degree.
func Featurize(stream []PacketIn, kind des.SchedKind, numPorts int, rateBps float64) ([][]float64, Aux) {
	flat := make([]float64, len(stream)*NumFeatures)
	aux := Aux{Tx: make([]float64, len(stream)), Backlog: make([]float64, len(stream))}
	featurizeFlat(flat, aux.Tx, aux.Backlog, stream, kind, numPorts, rateBps)
	rows := make([][]float64, len(stream))
	for i := range rows {
		rows[i] = flat[i*NumFeatures : (i+1)*NumFeatures : (i+1)*NumFeatures]
	}
	return rows, aux
}

// featurizeFlat is the allocation-free featurization core: it fills a
// caller-owned row-major len(stream)×NumFeatures buffer plus the tx and
// backlog aux slices (each len(stream) long). Featurize and the
// inference session both delegate here, so scaled-path and flat-path
// features are the same float64s.
func featurizeFlat(flat, txs, backlogs []float64, stream []PacketIn, kind des.SchedKind, numPorts int, rateBps float64) {
	oh := schedOneHot(kind)
	ema := 0.0
	prevT := 0.0
	work := 0.0 // unfinished work (seconds) before the current arrival
	prevTx := 0.0
	for i, p := range stream {
		iat := 0.0
		if i > 0 {
			iat = p.Arrive - prevT
		}
		prevT = p.Arrive
		tx := float64(p.Size*8) / rateBps
		if i > 0 {
			work += prevTx - iat
			if work < 0 {
				work = 0
			}
		}
		prevTx = tx
		txs[i] = tx
		backlogs[i] = work

		if i == 0 {
			ema = float64(p.Size)
		} else {
			ema = emaAlpha*ema + (1-emaAlpha)*float64(p.Size)
		}
		inPort := 0.0
		if numPorts > 1 {
			inPort = float64(p.InPort) / float64(numPorts-1)
		}
		row := flat[i*NumFeatures : (i+1)*NumFeatures]
		row[0] = iat                    // raw inter-arrival (seconds)
		row[1] = math.Log1p(iat * 1e6)  // log-scale IAT (µs reference)
		row[2] = float64(p.Size)        // packet length (bytes)
		row[3] = tx                     // transmission time (seconds)
		row[4] = ema                    // workload EMA (bytes, α = 0.95)
		row[5] = work                   // backlog at arrival (seconds)
		row[6] = math.Log1p(work * 1e6) // log-scale backlog
		row[7] = float64(p.Class)       // priority / weight class
		row[8] = p.Weight               // class weight
		row[9] = oh[0]
		row[10] = oh[1]
		row[11] = oh[2]
		row[12] = oh[3]
		row[13] = oh[4]
		row[14] = inPort
	}
}

// Chunk identifies one sequence chunk: the model consumes rows
// [Start, Start+C) and its predictions are consumed for stream positions
// [Start+Lo, Start+Hi) — the interior where bidirectional context is
// complete. Seq2seq chunking is what makes inference scale: one forward
// pass predicts every interior packet of the chunk (§3.1.2, "predicts
// packet latencies in batches").
type Chunk struct {
	Start  int
	Lo, Hi int // prediction positions relative to Start
}

// Chunks tiles a stream of n packets with chunks of length c and
// bidirectional margin m, covering every position exactly once.
func Chunks(n, c, m int) []Chunk {
	return chunksAppend(nil, n, c, m)
}

// chunksAppend appends the tiling to out (reusing its backing array),
// so steady-state inference re-windows a stream without allocating.
func chunksAppend(out []Chunk, n, c, m int) []Chunk {
	if n <= 0 {
		return out
	}
	if c <= 2*m {
		panic("ptm: chunk length must exceed twice the margin")
	}
	if n <= c {
		return append(out, Chunk{Start: 0, Lo: 0, Hi: n})
	}
	step := c - 2*m
	// First chunk has no left neighbour: it owns its left edge.
	out = append(out, Chunk{Start: 0, Lo: 0, Hi: c - m})
	start := step
	for {
		if start+c >= n {
			// Final chunk owns its right edge; anchor it at the end.
			st := n - c
			prevHi := out[len(out)-1].Start + out[len(out)-1].Hi
			return append(out, Chunk{Start: st, Lo: prevHi - st, Hi: c})
		}
		out = append(out, Chunk{Start: start, Lo: m, Hi: c - m})
		start += step
	}
}

// Materialize builds the chunk's timeSteps×NumFeatures input matrix from
// raw feature rows, scaling with sc. Rows past the stream end repeat the
// final row (only possible when the stream is shorter than one chunk).
func (ck Chunk) Materialize(rows [][]float64, c int, sc *MinMax) *tensor.Matrix {
	w := tensor.New(c, NumFeatures)
	for t := 0; t < c; t++ {
		src := ck.Start + t
		if src >= len(rows) {
			src = len(rows) - 1
		}
		copy(w.Row(t), rows[src])
		if sc != nil {
			sc.Transform(w.Row(t))
		}
	}
	return w
}

// materializeInto is Materialize against a flat n×NumFeatures feature
// buffer, writing into a reusable window matrix (x.Rows is the chunk
// length).
func (ck Chunk) materializeInto(x *tensor.Matrix, flat []float64, n int, sc *MinMax) {
	for t := 0; t < x.Rows; t++ {
		src := ck.Start + t
		if src >= n {
			src = n - 1
		}
		row := x.Row(t)
		copy(row, flat[src*NumFeatures:(src+1)*NumFeatures])
		if sc != nil {
			sc.Transform(row)
		}
	}
}
