package ptm

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"deepqueuenet/internal/dbscan"
	"deepqueuenet/internal/des"
	"deepqueuenet/internal/guard"
	"deepqueuenet/internal/nn"
	"deepqueuenet/internal/tensor"
)

// Arch configures the PTM network (Fig. 5 / Table 1). The zero value is
// replaced by CPU-friendly defaults; PaperArch mirrors Table 1.
type Arch struct {
	TimeSteps int // sequence chunk length (paper: 21)
	Margin    int // bidirectional context margin per side (default TimeSteps/4)
	Embed     int // dense embedding width
	BLSTM1    int // first BLSTM hidden size (paper: 200)
	BLSTM2    int // second BLSTM hidden size (paper: 100)
	Heads     int // attention heads (paper: 3)
	DK, DV    int // per-head key/value dims (paper: 64, 32)
	HeadOut   int // attention output width
}

// DefaultArch is sized for CPU training while keeping the paper's
// architecture shape.
var DefaultArch = Arch{TimeSteps: 32, Margin: 8, Embed: 12, BLSTM1: 16, BLSTM2: 10, Heads: 2, DK: 8, DV: 8, HeadOut: 16}

// PaperArch mirrors the Table 1 hyper-parameters (chunk length 21).
var PaperArch = Arch{TimeSteps: 21, Margin: 5, Embed: 32, BLSTM1: 200, BLSTM2: 100, Heads: 3, DK: 64, DV: 32, HeadOut: 64}

func (a Arch) withDefaults() Arch {
	d := DefaultArch
	if a.TimeSteps <= 0 {
		a.TimeSteps = d.TimeSteps
	}
	if a.Margin <= 0 {
		a.Margin = a.TimeSteps / 4
	}
	if 2*a.Margin >= a.TimeSteps {
		a.Margin = (a.TimeSteps - 1) / 2
	}
	if a.Embed <= 0 {
		a.Embed = d.Embed
	}
	if a.BLSTM1 <= 0 {
		a.BLSTM1 = d.BLSTM1
	}
	if a.BLSTM2 <= 0 {
		a.BLSTM2 = d.BLSTM2
	}
	if a.Heads <= 0 {
		a.Heads = d.Heads
	}
	if a.DK <= 0 {
		a.DK = d.DK
	}
	if a.DV <= 0 {
		a.DV = d.DV
	}
	if a.HeadOut <= 0 {
		a.HeadOut = d.HeadOut
	}
	return a
}

// specs builds the layer stack of Fig. 5: feature embedding, a 2-layer
// BLSTM encoder, multi-head self-attention, and a time-distributed
// regression head (seq2seq: one sojourn per timestep).
func (a Arch) specs() []nn.LayerSpec {
	return []nn.LayerSpec{
		{Kind: "dense", In: NumFeatures, Out: a.Embed},
		{Kind: "act:tanh"},
		{Kind: "blstm", In: a.Embed, Hidden: a.BLSTM1},
		{Kind: "blstm", In: 2 * a.BLSTM1, Hidden: a.BLSTM2},
		{Kind: "mha", In: 2 * a.BLSTM2, Out: a.HeadOut, Heads: a.Heads, DK: a.DK, DV: a.DV},
		{Kind: "act:tanh"},
		{Kind: "dense", In: a.HeadOut, Out: 1},
	}
}

// PTM is a trained packet-level traffic-management model: the DNN, the
// feature and target scalers, and the SEC residual bins.
type PTM struct {
	Net       *nn.Sequential
	Feat      *MinMax
	TargetMin float64
	TargetMax float64
	TimeSteps int
	Margin    int
	NumPorts  int // training device degree K
	SECBins   []dbscan.Bin

	// sess is the lazily-created single-threaded inference scratch
	// (flat buffers + tensor arena). It makes the sequential prediction
	// paths allocation-free in steady state and — like the layer caches
	// it replaces — non-goroutine-safe; parallel callers use Clone.
	sess *session

	// qnet is the opt-in int8/float32 inference backend, built by
	// WithQuantized. It is immutable once built, so Clone shares it
	// across replicas. nil means the exact float64 path (the default).
	qnet *nn.QuantSequential
}

// New builds an untrained PTM with the given architecture and device
// degree.
func New(arch Arch, numPorts int, seed uint64) (*PTM, error) {
	arch = arch.withDefaults()
	net, err := nn.Build(arch.specs(), seed)
	if err != nil {
		return nil, err
	}
	return &PTM{Net: net, TimeSteps: arch.TimeSteps, Margin: arch.Margin, NumPorts: numPorts}, nil
}

// scaleTarget maps a residual to the unit training range.
func (p *PTM) scaleTarget(v float64) float64 {
	span := p.TargetMax - p.TargetMin
	if span <= 0 {
		return 0
	}
	return (v - p.TargetMin) / span
}

// unscaleTarget inverts scaleTarget.
func (p *PTM) unscaleTarget(v float64) float64 {
	span := p.TargetMax - p.TargetMin
	if span <= 0 {
		return p.TargetMin
	}
	return v*span + p.TargetMin
}

// TargetTransform maps a sojourn time to the regression target: the
// *relative* scheduler reordering residual,
//
//	(sojourn − (backlog + tx)) / (backlog + tx).
//
// On a work-conserving port the aggregate backlog evolves identically
// under every discipline, so the residual isolates exactly the part the
// DNN must learn: FIFO maps to 0, strict-priority jumps go negative,
// starved classes go positive. Normalizing by the FIFO-equivalent
// sojourn keeps the target dimensionless and bounded, so one min-max
// scale serves light and heavy queueing regimes alike — without it, the
// starvation tails of low-priority training streams would stretch the
// target range and crush the resolution of the common case.
func TargetTransform(sojourn, backlog, tx float64) float64 {
	base := backlog + tx
	if base <= 0 {
		return 0
	}
	return (sojourn - base) / base
}

// TargetInverse inverts TargetTransform, clamping at the transmission
// time (a sojourn can never beat the wire).
func TargetInverse(v, backlog, tx float64) float64 {
	s := (backlog + tx) * (1 + v)
	if s < tx {
		s = tx
	}
	return s
}

// PredictStream predicts the sojourn time of every packet of one
// per-egress-port ingress stream (sorted by arrival time), given the
// egress port line rate. One forward pass covers a whole chunk of
// packets; predictions are SEC-corrected and clamped below by the packet
// transmission time. workers > 1 parallelizes across chunks with model
// replicas.
func (p *PTM) PredictStream(stream []PacketIn, kind des.SchedKind, rateBps float64, workers int) []float64 {
	if len(stream) == 0 {
		return nil
	}
	if workers <= 1 || p.qnet != nil {
		// Sequential path: the session reuses flat feature buffers and
		// the arena behind the cache-free Infer, so steady-state windows
		// allocate nothing. Bit-identical to the batch path below.
		out := make([]float64, len(stream))
		p.predictInto(p.getSession(), out, stream, kind, rateBps)
		return out
	}
	rows, aux := Featurize(stream, kind, p.NumPorts, rateBps)
	chunks := Chunks(len(stream), p.TimeSteps, p.Margin)
	xs := make([]*tensor.Matrix, len(chunks))
	for i, ck := range chunks {
		xs[i] = ck.Materialize(rows, p.TimeSteps, p.Feat)
	}
	preds := nn.PredictBatch(p.Net, xs, workers)
	out := make([]float64, len(stream))
	for ci, ck := range chunks {
		p.consumeChunk(out, preds[ci], ck, len(stream), aux.Tx, aux.Backlog)
	}
	return out
}

// applySEC subtracts the DBSCAN-binned mean residual of the prediction's
// neighbourhood (§4.3). Predictions and bins live in the reordering-
// residual target space.
func (p *PTM) applySEC(pred float64) float64 {
	b := dbscan.Lookup(p.SECBins, pred)
	if b == nil {
		return pred
	}
	return pred - b.MeanValue
}

// FitSEC computes the SEC bins from held-out predictions and truths:
// residuals (pred − truth) are clustered by prediction with DBSCAN; each
// bin stores its mean residual.
func (p *PTM) FitSEC(preds, truths []float64) {
	if len(preds) != len(truths) || len(preds) == 0 {
		return
	}
	resid := make([]float64, len(preds))
	lo, hi := preds[0], preds[0]
	for i := range preds {
		resid[i] = preds[i] - truths[i]
		if preds[i] < lo {
			lo = preds[i]
		}
		if preds[i] > hi {
			hi = preds[i]
		}
	}
	span := hi - lo
	if span <= 0 {
		return
	}
	// eps at 2% of the prediction range groups "similar sojourn time
	// predictions" (observation 2 of §4.3).
	minPts := len(preds) / 50
	if minPts < 5 {
		minPts = 5
	}
	p.SECBins = dbscan.Bins(preds, resid, span*0.02, minPts)
}

// SchemaVersion is the current on-disk model schema. Files written
// before versioning carry no "schema" field and decode as version 0;
// both 0 and SchemaVersion are accepted, anything newer is rejected.
const SchemaVersion = 1

// savedPTM is the JSON form of a PTM.
type savedPTM struct {
	Version   int             `json:"schema,omitempty"`
	Net       json.RawMessage `json:"net"`
	Feat      *MinMax         `json:"feat"`
	TargetMin float64         `json:"target_min"`
	TargetMax float64         `json:"target_max"`
	TimeSteps int             `json:"time_steps"`
	Margin    int             `json:"margin"`
	NumPorts  int             `json:"num_ports"`
	SECBins   []dbscan.Bin    `json:"sec_bins,omitempty"`
}

// Marshal serializes the PTM to JSON.
func (p *PTM) Marshal() ([]byte, error) {
	netData, err := p.Net.Marshal()
	if err != nil {
		return nil, err
	}
	return json.Marshal(savedPTM{
		Version: SchemaVersion,
		Net:     netData, Feat: p.Feat,
		TargetMin: p.TargetMin, TargetMax: p.TargetMax,
		TimeSteps: p.TimeSteps, Margin: p.Margin,
		NumPorts: p.NumPorts, SECBins: p.SECBins,
	})
}

// Unmarshal reconstructs a PTM from Marshal output. Unknown fields and
// unsupported schema versions are rejected; the decoded model is
// structurally validated before being returned.
func Unmarshal(data []byte) (*PTM, error) {
	var sp savedPTM
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("ptm: decoding model: %w", err)
	}
	if sp.Version > SchemaVersion {
		return nil, fmt.Errorf("ptm: model schema version %d is newer than supported version %d",
			sp.Version, SchemaVersion)
	}
	if sp.TimeSteps <= 0 {
		return nil, errors.New("ptm: invalid saved model: non-positive window size")
	}
	net, err := nn.Unmarshal(sp.Net)
	if err != nil {
		return nil, err
	}
	p := &PTM{Net: net, Feat: sp.Feat, TargetMin: sp.TargetMin,
		TargetMax: sp.TargetMax, TimeSteps: sp.TimeSteps, Margin: sp.Margin,
		NumPorts: sp.NumPorts, SECBins: sp.SECBins}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate checks the structural soundness of a model: a usable window
// configuration, a feature scaler matching the engineered feature width,
// finite weights, scaler statistics, target range, and SEC bins. A model
// that fails Validate would produce NaN or out-of-range sojourns at
// inference time; the engine degrades such devices instead of running
// them.
func (p *PTM) Validate() error {
	if p == nil {
		return errors.New("ptm: nil model")
	}
	if p.Net == nil {
		return errors.New("ptm: model has no network")
	}
	if p.TimeSteps <= 0 {
		return fmt.Errorf("ptm: non-positive window size %d", p.TimeSteps)
	}
	if p.Margin < 0 || 2*p.Margin >= p.TimeSteps {
		return fmt.Errorf("ptm: margin %d incompatible with window size %d (need 0 <= 2*margin < window)",
			p.Margin, p.TimeSteps)
	}
	if p.NumPorts < 1 {
		return fmt.Errorf("ptm: invalid training port count %d", p.NumPorts)
	}
	if !isFinite(p.TargetMin) || !isFinite(p.TargetMax) {
		return fmt.Errorf("ptm: non-finite target range [%v, %v]", p.TargetMin, p.TargetMax)
	}
	if p.TargetMax < p.TargetMin {
		return fmt.Errorf("ptm: inverted target range [%v, %v]", p.TargetMin, p.TargetMax)
	}
	if p.Feat != nil {
		if len(p.Feat.Min) != NumFeatures || len(p.Feat.Max) != NumFeatures {
			return fmt.Errorf("ptm: feature scaler width %d/%d, want %d",
				len(p.Feat.Min), len(p.Feat.Max), NumFeatures)
		}
		for j := range p.Feat.Min {
			if !isFinite(p.Feat.Min[j]) || !isFinite(p.Feat.Max[j]) {
				return fmt.Errorf("ptm: non-finite scaler stats for feature %d", j)
			}
			if p.Feat.Max[j] < p.Feat.Min[j] {
				return fmt.Errorf("ptm: inverted scaler range for feature %d", j)
			}
		}
	}
	if specs := p.Net.Specs(); len(specs) > 0 && specs[0].Kind == "dense" && specs[0].In != NumFeatures {
		return fmt.Errorf("ptm: network input width %d, want %d features", specs[0].In, NumFeatures)
	}
	for pi, par := range p.Net.Params() {
		for _, w := range par.W.Data {
			if !isFinite(w) {
				return fmt.Errorf("ptm: non-finite weight in parameter tensor %d", pi)
			}
		}
	}
	for i, b := range p.SECBins {
		if !isFinite(b.Lo) || !isFinite(b.Hi) || !isFinite(b.MeanValue) {
			return fmt.Errorf("ptm: non-finite SEC bin %d", i)
		}
	}
	return nil
}

// isFinite reports whether v is neither NaN nor ±Inf.
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Save writes the PTM to a file atomically: temp file in the
// destination directory, fsync, then rename. A crash mid-save leaves
// the previous model (or nothing) — never a torn file.
func (p *PTM) Save(path string) error {
	data, err := p.Marshal()
	if err != nil {
		return err
	}
	return atomicWriteFile(path, data)
}

// atomicWriteFile is the temp+fsync+rename durable write (the PR 6
// checkpoint rule; duplicated here because checkpoint imports ptm).
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ptm-*.tmp")
	if err != nil {
		return fmt.Errorf("ptm: create temp in %s: %w", dir, err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("ptm: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("ptm: sync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ptm: close %s: %w", tmpName, err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ptm: chmod %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ptm: rename into %s: %w", path, err)
	}
	return nil
}

// Load reads a PTM from a file. Read, decode, and validation failures
// are wrapped with the offending path.
func Load(path string) (*PTM, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ptm: load %s: %w", path, err)
	}
	p, err := Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("ptm: load %s: %w", path, err)
	}
	return p, nil
}

// WithQuantized switches this model to the int8-weight / float32-
// activation inference backend: weights are absmax-quantized per input
// row at call time and every subsequent prediction runs through the
// quantized network with fast float32 transcendentals. Opt-in because
// results are no longer bit-identical to the exact float64 path —
// accuracy is bounded by the committed golden-scenario gates instead.
// Call after loading/training, never concurrently with predictions;
// clones made afterwards share the immutable quantized network.
func (p *PTM) WithQuantized() error {
	qnet, err := nn.Quantize(p.Net)
	if err != nil {
		return err
	}
	p.qnet = qnet
	p.sess = nil // sessions are backend-specific scratch
	return nil
}

// Quantized reports whether the quantized inference backend is active.
func (p *PTM) Quantized() bool { return p.qnet != nil }

// Clone returns an independent copy sharing no mutable state (for
// shard-parallel inference). The quantized network, when present, is
// immutable and therefore shared.
func (p *PTM) Clone() *PTM {
	c := *p
	c.Net = p.Net.Clone()
	c.sess = nil // sessions are per-owner scratch, never shared
	return &c
}

// WithoutSEC returns a copy of p with the SEC residual bins stripped
// (the §4.3 ablation). The copy shares the network weights but no
// mutable inference scratch.
func (p *PTM) WithoutSEC() *PTM {
	c := *p
	c.SECBins = nil
	c.sess = nil
	return &c
}

// PredictStreams runs PredictStream over several independent streams in
// parallel (one worker per stream up to GOMAXPROCS).
func (p *PTM) PredictStreams(streams [][]PacketIn, kind des.SchedKind, rateBps float64) [][]float64 {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(streams) {
		workers = len(streams)
	}
	out := make([][]float64, len(streams))
	if workers <= 1 {
		for i, s := range streams {
			out[i] = p.PredictStream(s, kind, rateBps, 1)
		}
		return out
	}
	var wg sync.WaitGroup
	panics := make([]*guard.WorkerError, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if we := guard.RecoveredWorker(w, recover()); we != nil {
					panics[w] = we
				}
			}()
			rep := p.Clone()
			for i := w; i < len(streams); i += workers {
				out[i] = rep.PredictStream(streams[i], kind, rateBps, 1)
			}
		}(w)
	}
	wg.Wait()
	// A worker panic re-surfaces on this (the caller's) goroutine, where
	// the IRSA shard guard can recover it into a ShardError.
	guard.RethrowWorkers(panics)
	return out
}
