package ptm

import (
	"testing"

	"deepqueuenet/internal/des"
	"deepqueuenet/internal/rng"
)

func BenchmarkPredictStream(b *testing.B) {
	p, err := New(Arch{TimeSteps: 17, Embed: 12, BLSTM1: 16, BLSTM2: 10, Heads: 2, DK: 8, DV: 8, HeadOut: 16}, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	p.Feat = &MinMax{Min: make([]float64, NumFeatures), Max: make([]float64, NumFeatures)}
	for i := range p.Feat.Max {
		p.Feat.Max[i] = 1
	}
	p.TargetMax = 1e-6
	r := rng.New(2)
	stream := make([]PacketIn, 1000)
	tm := 0.0
	for i := range stream {
		tm += r.Exp(1e6)
		stream[i] = PacketIn{Arrive: tm, Size: 64 + r.Intn(1400), InPort: r.Intn(8)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PredictStream(stream, des.FIFO, 10e9, 1)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*1000), "ns/pkt")
}
