package ptm

import "errors"

// MinMax scales features to [0, 1] per dimension, the paper's
// MinMaxScaler (§4.1). Degenerate dimensions (max == min) map to 0.
type MinMax struct {
	Min []float64 `json:"min"`
	Max []float64 `json:"max"`
}

// FitMinMax computes per-dimension ranges over rows.
func FitMinMax(rows [][]float64) (*MinMax, error) {
	if len(rows) == 0 {
		return nil, errors.New("ptm: no rows to fit scaler")
	}
	d := len(rows[0])
	s := &MinMax{Min: make([]float64, d), Max: make([]float64, d)}
	copy(s.Min, rows[0])
	copy(s.Max, rows[0])
	for _, r := range rows[1:] {
		if len(r) != d {
			return nil, errors.New("ptm: ragged feature rows")
		}
		for j, v := range r {
			if v < s.Min[j] {
				s.Min[j] = v
			}
			if v > s.Max[j] {
				s.Max[j] = v
			}
		}
	}
	return s, nil
}

// Transform scales one row in place.
func (s *MinMax) Transform(row []float64) {
	for j := range row {
		span := s.Max[j] - s.Min[j]
		if span <= 0 {
			row[j] = 0
			continue
		}
		row[j] = (row[j] - s.Min[j]) / span
	}
}

// Scale1 scales a scalar with dimension j's range.
func (s *MinMax) Scale1(j int, v float64) float64 {
	span := s.Max[j] - s.Min[j]
	if span <= 0 {
		return 0
	}
	return (v - s.Min[j]) / span
}

// Unscale1 inverts Scale1.
func (s *MinMax) Unscale1(j int, v float64) float64 {
	span := s.Max[j] - s.Min[j]
	if span <= 0 {
		return s.Min[j]
	}
	return v*span + s.Min[j]
}
