package ptm

import (
	"deepqueuenet/internal/des"
	"deepqueuenet/internal/nn"
	"deepqueuenet/internal/tensor"
)

// session is the reusable scratch state of single-threaded PTM
// inference: flat feature/aux buffers, the chunk list, one window
// matrix, and the tensor arena behind the network's cache-free Infer
// path. All of it is grow-only, so once a session has seen its largest
// stream, every further prediction runs with zero heap allocations
// (pinned by TestPredictStreamIntoZeroAllocs).
//
// A session is not goroutine-safe; it is owned by one *PTM and used by
// its single-threaded prediction paths. Shard-parallel callers give
// each shard its own model clone (CloneModel), hence its own session.
type session struct {
	arena   *tensor.Arena
	packs   *nn.Packs // weight matrices repacked for the blocked GEMM kernels
	feats   []float64 // n × NumFeatures, row-major
	tx      []float64
	backlog []float64
	chunks  []Chunk
	x       *tensor.Matrix // TimeSteps × NumFeatures window

	// Quantized-backend scratch (allocated only when the model runs
	// with WithQuantized): the float32 window, its arena, and a reused
	// column for reading predictions back out.
	fx     *tensor.MatrixF32
	farena *tensor.ArenaF32
	ycol   []float64
}

func newSession(timeSteps int, quant bool) *session {
	s := &session{arena: tensor.NewArena(), packs: nn.NewPacks(), x: tensor.New(timeSteps, NumFeatures)}
	if quant {
		s.fx = tensor.NewF32(timeSteps, NumFeatures)
		s.farena = tensor.NewArenaF32()
		s.ycol = make([]float64, timeSteps)
	}
	return s
}

// growFloats returns buf resized to n, reusing its backing array when
// large enough.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		//dqnlint:allow hotalloc grow-only: reallocates only when a stream outgrows every prior one; steady state reuses the backing array (pinned by TestPredictStreamIntoZeroAllocs)
		return make([]float64, n)
	}
	return buf[:n]
}

// predictInto is the allocation-free core of PredictStream: featurize
// into the session's flat buffers, window the stream, run each window
// through the arena-backed Infer path, and consume predictions into
// dst. dst must be len(stream) long.
func (p *PTM) predictInto(s *session, dst []float64, stream []PacketIn, kind des.SchedKind, rateBps float64) {
	n := len(stream)
	s.feats = growFloats(s.feats, n*NumFeatures)
	s.tx = growFloats(s.tx, n)
	s.backlog = growFloats(s.backlog, n)
	featurizeFlat(s.feats, s.tx, s.backlog, stream, kind, p.NumPorts, rateBps)
	//dqnlint:allow hotalloc grow-only: appends into the session's reused chunk slice; it grows only until the largest stream has been seen
	s.chunks = chunksAppend(s.chunks[:0], n, p.TimeSteps, p.Margin)
	for _, ck := range s.chunks {
		ck.materializeInto(s.x, s.feats, n, p.Feat)
		if p.qnet != nil {
			// Opt-in quantized backend: same windows, same consume
			// logic, int8/float32 network in between.
			s.fx.CopyFromF64(s.x)
			s.farena.Reset()
			y := p.qnet.Infer(s.fx, s.farena)
			for t := 0; t < y.Rows; t++ {
				s.ycol[t] = y.At(t, 0)
			}
			p.consumeChunkVals(dst, s.ycol, ck, n, s.tx, s.backlog)
			continue
		}
		s.arena.Reset()
		y := p.Net.InferPacks(s.x, s.arena, s.packs)
		p.consumeChunk(dst, y, ck, n, s.tx, s.backlog)
	}
}

// consumeChunk maps one window's raw network outputs to sojourn times:
// clamp to the modest extrapolation range, SEC-correct in residual
// space, unscale, and invert the target transform against the packet's
// deterministic backlog and transmission time.
func (p *PTM) consumeChunk(dst []float64, y *tensor.Matrix, ck Chunk, n int, tx, backlog []float64) {
	for t := ck.Lo; t < ck.Hi; t++ {
		pos := ck.Start + t
		if pos >= n {
			break
		}
		p.consumePred(dst, y.At(t, 0), pos, tx, backlog)
	}
}

// consumeChunkVals is consumeChunk over a pre-extracted prediction
// column (the quantized path's output, already widened to float64).
func (p *PTM) consumeChunkVals(dst, col []float64, ck Chunk, n int, tx, backlog []float64) {
	for t := ck.Lo; t < ck.Hi; t++ {
		pos := ck.Start + t
		if pos >= n {
			break
		}
		p.consumePred(dst, col[t], pos, tx, backlog)
	}
}

// consumePred maps one raw network output to a sojourn time: clamp to
// the modest extrapolation range (unseen-load generalization, Fig. 9,
// without runaway tails), SEC-correct in residual space, unscale, and
// invert the target transform against the packet's deterministic
// backlog and transmission time.
func (p *PTM) consumePred(dst []float64, v float64, pos int, tx, backlog []float64) {
	if v < -0.1 {
		v = -0.1
	}
	if v > 1.1 {
		v = 1.1
	}
	resid := p.applySEC(p.unscaleTarget(v)) // residual space
	dst[pos] = TargetInverse(resid, backlog[pos], tx[pos])
}

// getSession returns the model's lazily-created inference session.
func (p *PTM) getSession() *session {
	if p.sess == nil {
		//dqnlint:allow hotalloc one-time lazy init: the session (arena + window matrix) is built on the first prediction and reused for the model's lifetime
		p.sess = newSession(p.TimeSteps, p.qnet != nil)
	}
	return p.sess
}

// PredictStreamInto is PredictStream with caller-owned output storage:
// predictions for stream are written into dst (grown if needed) and the
// n-length prediction slice is returned. Repeated calls on streams no
// longer than the largest seen reuse every internal buffer and perform
// zero heap allocations. Like PredictStream, it is not goroutine-safe.
func (p *PTM) PredictStreamInto(dst []float64, stream []PacketIn, kind des.SchedKind, rateBps float64) []float64 {
	if len(stream) == 0 {
		return dst[:0]
	}
	dst = growFloats(dst, len(stream))
	p.predictInto(p.getSession(), dst, stream, kind, rateBps)
	return dst
}

// PortStream is one egress port's inference batch inside PredictDevice:
// the sorted ingress stream, the port line rate, and the output slice
// the sojourn predictions are written to (reused when large enough).
type PortStream struct {
	Stream  []PacketIn
	RateBps float64
	Out     []float64
}

// PredictDevice predicts sojourn times for every egress port of one
// device in a single batched call: all ports' windows run through one
// session (one arena, one window matrix, shared flat buffers) instead
// of a PredictStream round-trip per port. Each port's predictions land
// in ports[i].Out. Not goroutine-safe.
func (p *PTM) PredictDevice(ports []PortStream, kind des.SchedKind) {
	s := p.getSession()
	for i := range ports {
		ps := &ports[i]
		if len(ps.Stream) == 0 {
			ps.Out = ps.Out[:0]
			continue
		}
		ps.Out = growFloats(ps.Out, len(ps.Stream))
		p.predictInto(s, ps.Out, ps.Stream, kind, ps.RateBps)
	}
}
