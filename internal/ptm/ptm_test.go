package ptm

import (
	"math"
	"path/filepath"
	"testing"

	"deepqueuenet/internal/des"
	"deepqueuenet/internal/rng"
)

func TestMinMaxScaler(t *testing.T) {
	rows := [][]float64{{0, 10}, {5, 20}, {10, 30}}
	sc, err := FitMinMax(rows)
	if err != nil {
		t.Fatal(err)
	}
	r := []float64{5, 10}
	sc.Transform(r)
	if r[0] != 0.5 || r[1] != 0 {
		t.Fatalf("transform %v", r)
	}
	if v := sc.Unscale1(0, sc.Scale1(0, 7.3)); math.Abs(v-7.3) > 1e-12 {
		t.Fatalf("round trip %v", v)
	}
}

func TestMinMaxDegenerate(t *testing.T) {
	sc, err := FitMinMax([][]float64{{5}, {5}})
	if err != nil {
		t.Fatal(err)
	}
	r := []float64{5}
	sc.Transform(r)
	if r[0] != 0 {
		t.Fatalf("degenerate transform %v", r)
	}
}

func TestFeaturizeShape(t *testing.T) {
	stream := []PacketIn{
		{Arrive: 0, Size: 100, InPort: 0, Class: 1, Weight: 2},
		{Arrive: 0.001, Size: 200, InPort: 3, Class: 0, Weight: 1},
	}
	rows, aux := Featurize(stream, des.WFQ, 4, 1e9)
	if len(rows) != 2 || len(rows[0]) != NumFeatures {
		t.Fatalf("shape %dx%d", len(rows), len(rows[0]))
	}
	// First IAT is zero; raw in slot 0, log scale in slot 1.
	if rows[0][0] != 0 || math.Abs(rows[1][0]-0.001) > 1e-12 {
		t.Fatalf("raw iat %v %v", rows[0][0], rows[1][0])
	}
	if math.Abs(rows[1][1]-math.Log1p(0.001*1e6)) > 1e-12 {
		t.Fatalf("log iat %v", rows[1][1])
	}
	// Transmission times.
	if math.Abs(aux.Tx[0]-8e-7) > 1e-15 || math.Abs(rows[0][3]-8e-7) > 1e-15 {
		t.Fatalf("tx %v / %v", aux.Tx[0], rows[0][3])
	}
	// WFQ one-hot at index 13 (offset 9 + 4).
	if rows[0][13] != 1 {
		t.Fatalf("sched one-hot %v", rows[0][9:14])
	}
	// In-port normalized by numPorts-1.
	if rows[1][14] != 1 {
		t.Fatalf("in-port %v", rows[1][14])
	}
}

func TestFeaturizeEMA(t *testing.T) {
	stream := []PacketIn{
		{Arrive: 0, Size: 1000},
		{Arrive: 1, Size: 0},
	}
	rows, _ := Featurize(stream, des.FIFO, 2, 1e9)
	if rows[0][4] != 1000 {
		t.Fatalf("initial EMA %v", rows[0][4])
	}
	if math.Abs(rows[1][4]-950) > 1e-9 {
		t.Fatalf("EMA after zero-size packet %v, want 950", rows[1][4])
	}
}

func TestFeaturizeBacklog(t *testing.T) {
	// Two 1000-byte packets 1 µs apart at 1 Gb/s: tx = 8 µs, so the
	// second sees 7 µs of unfinished work; a third far later sees none.
	stream := []PacketIn{
		{Arrive: 0, Size: 1000},
		{Arrive: 1e-6, Size: 1000},
		{Arrive: 1, Size: 1000},
	}
	_, aux := Featurize(stream, des.FIFO, 2, 1e9)
	if aux.Backlog[0] != 0 {
		t.Fatalf("first backlog %v", aux.Backlog[0])
	}
	if math.Abs(aux.Backlog[1]-7e-6) > 1e-15 {
		t.Fatalf("second backlog %v, want 7e-6", aux.Backlog[1])
	}
	if aux.Backlog[2] != 0 {
		t.Fatalf("third backlog %v", aux.Backlog[2])
	}
}

func TestChunksCoverEveryPositionOnce(t *testing.T) {
	for _, tc := range []struct{ n, c, m int }{
		{5, 16, 4}, {16, 16, 4}, {17, 16, 4}, {100, 16, 4},
		{1000, 32, 8}, {33, 32, 8}, {63, 32, 8},
	} {
		chunks := Chunks(tc.n, tc.c, tc.m)
		covered := make([]int, tc.n)
		for _, ck := range chunks {
			if ck.Start < 0 || ck.Lo < 0 || ck.Hi > tc.c || ck.Lo >= ck.Hi {
				t.Fatalf("n=%d c=%d m=%d: bad chunk %+v", tc.n, tc.c, tc.m, ck)
			}
			for p := ck.Start + ck.Lo; p < ck.Start+ck.Hi; p++ {
				if p >= 0 && p < tc.n {
					covered[p]++
				}
			}
		}
		for p, cnt := range covered {
			if cnt != 1 {
				t.Fatalf("n=%d c=%d m=%d: position %d covered %d times", tc.n, tc.c, tc.m, p, cnt)
			}
		}
	}
}

func TestChunkMaterialize(t *testing.T) {
	rows := make([][]float64, 5)
	for i := range rows {
		rows[i] = make([]float64, NumFeatures)
		rows[i][2] = float64(i + 1)
	}
	// Short stream: single chunk of length 8 pads by repeating row 4.
	chunks := Chunks(5, 8, 2)
	if len(chunks) != 1 || chunks[0].Hi != 5 {
		t.Fatalf("short-stream chunks %+v", chunks)
	}
	x := chunks[0].Materialize(rows, 8, nil)
	if x.Rows != 8 {
		t.Fatalf("rows %d", x.Rows)
	}
	if x.At(4, 2) != 5 || x.At(7, 2) != 5 {
		t.Fatalf("padding: %v %v", x.At(4, 2), x.At(7, 2))
	}
	if x.At(0, 2) != 1 {
		t.Fatalf("first row %v", x.At(0, 2))
	}
}

func TestGenerateStreamProducesTraffic(t *testing.T) {
	spec := TrainSpec{Ports: 4, Duration: 0.002, Seed: 1}
	ds := GenerateStream(spec, rng.New(2))
	total := 0
	for port := range ds.Ins {
		total += len(ds.Ins[port])
		if len(ds.Ins[port]) != len(ds.Sojourns[port]) {
			t.Fatal("ins/sojourns length mismatch")
		}
		// Streams must be time-ordered and sojourns at least one
		// transmission time.
		for i := range ds.Ins[port] {
			if i > 0 && ds.Ins[port][i].Arrive < ds.Ins[port][i-1].Arrive {
				t.Fatal("stream not sorted by arrival")
			}
			minSo := float64(ds.Ins[port][i].Size*8) / ds.RateBps
			if ds.Sojourns[port][i] < minSo-1e-15 {
				t.Fatalf("sojourn %v below transmission time %v", ds.Sojourns[port][i], minSo)
			}
		}
	}
	if total < 100 {
		t.Fatalf("only %d packets generated", total)
	}
}

// trainTiny trains a small PTM on 2-port FIFO traffic; shared by tests.
func trainTiny(t *testing.T, sched des.SchedConfig) (*PTM, TrainReport, TrainSpec) {
	t.Helper()
	spec := TrainSpec{
		Ports:  2,
		Arch:   Arch{TimeSteps: 12, Embed: 10, BLSTM1: 12, BLSTM2: 8, Heads: 2, DK: 6, DV: 6, HeadOut: 12},
		Scheds: []des.SchedConfig{sched},
		LoadLo: 0.3, LoadHi: 0.7,
		RateBps:            1e9,
		Streams:            6,
		Duration:           0.004,
		MaxChunksPerStream: 60,
		Seed:               3,
	}
	spec.Train.Epochs = 6
	spec.Train.BatchSize = 64
	spec.Train.LR = 0.003
	spec.Train.Workers = 4
	p, rep, err := TrainDevice(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p, rep, spec
}

func TestTrainDeviceFIFO(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	p, rep, spec := trainTiny(t, des.SchedConfig{Kind: des.FIFO})
	if rep.Windows < 200 {
		t.Fatalf("only %d windows", rep.Windows)
	}
	if rep.ValW1 > 0.5 {
		t.Fatalf("validation w1 %v too high", rep.ValW1)
	}
	// Exogenous evaluation: unseen streams from a different seed.
	var exo []DeviceStream
	r := rng.New(99)
	for i := 0; i < 2; i++ {
		exo = append(exo, GenerateStream(spec, r.Split()))
	}
	w1 := Evaluate(p, exo, 4)
	if math.IsNaN(w1) || w1 > 0.7 {
		t.Fatalf("exogenous w1 %v", w1)
	}
	t.Logf("FIFO PTM: %d windows, val w1 %.4f, exo w1 %.4f", rep.Windows, rep.ValW1, w1)
}

func TestSECReducesBias(t *testing.T) {
	// Construct predictions with a systematic +0.3 bias in one region:
	// SEC must remove most of it.
	p := &PTM{TimeSteps: 4}
	r := rng.New(5)
	var preds, truths []float64
	for i := 0; i < 500; i++ {
		truth := r.Uniform(1, 2)
		preds = append(preds, truth+0.3)
		truths = append(truths, truth)
	}
	p.FitSEC(preds, truths)
	if len(p.SECBins) == 0 {
		t.Fatal("no SEC bins fitted")
	}
	residAfter := 0.0
	for i := range preds {
		residAfter += math.Abs(p.applySEC(preds[i]) - truths[i])
	}
	residAfter /= float64(len(preds))
	if residAfter > 0.1 {
		t.Fatalf("SEC left mean abs residual %v", residAfter)
	}
}

func TestSECEmptyIsNoop(t *testing.T) {
	p := &PTM{TimeSteps: 4}
	if v := p.applySEC(1.5); v != 1.5 {
		t.Fatalf("no-bin SEC altered prediction: %v", v)
	}
	p.FitSEC([]float64{1}, []float64{}) // mismatched: ignored
	if p.SECBins != nil {
		t.Fatal("mismatched FitSEC should be a no-op")
	}
}

func TestPTMSaveLoadRoundTrip(t *testing.T) {
	p, err := New(Arch{TimeSteps: 6, Embed: 8, BLSTM1: 6, BLSTM2: 4, Heads: 1, DK: 4, DV: 4, HeadOut: 8}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	p.Feat = &MinMax{Min: make([]float64, NumFeatures), Max: make([]float64, NumFeatures)}
	for i := range p.Feat.Max {
		p.Feat.Max[i] = float64(i + 1)
	}
	p.TargetMin, p.TargetMax = 1e-6, 1e-3
	path := filepath.Join(t.TempDir(), "ptm.json")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	q, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	stream := []PacketIn{{Arrive: 0, Size: 500}, {Arrive: 1e-5, Size: 700}}
	a := p.PredictStream(stream, des.FIFO, 1e9, 1)
	b := q.PredictStream(stream, des.FIFO, 1e9, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loaded PTM differs: %v vs %v", a[i], b[i])
		}
	}
}

func TestPredictStreamClamp(t *testing.T) {
	p, err := New(Arch{TimeSteps: 4, Embed: 6, BLSTM1: 4, BLSTM2: 4, Heads: 1, DK: 2, DV: 2, HeadOut: 4}, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	p.Feat = &MinMax{Min: make([]float64, NumFeatures), Max: make([]float64, NumFeatures)}
	for i := range p.Feat.Max {
		p.Feat.Max[i] = 1
	}
	// Force wildly negative residual predictions: output must clamp to
	// the transmission time.
	p.TargetMin, p.TargetMax = -100, -99
	stream := []PacketIn{{Arrive: 0, Size: 1000}}
	out := p.PredictStream(stream, des.FIFO, 1e9, 1)
	tx := float64(1000*8) / 1e9
	if out[0] < tx {
		t.Fatalf("clamp failed: %v < %v", out[0], tx)
	}
}

func TestTargetTransformRoundTrip(t *testing.T) {
	tx, backlog := 8e-7, 3e-6
	for _, s := range []float64{8e-7, 1e-6, 5e-5} {
		v := TargetTransform(s, backlog, tx)
		if got := TargetInverse(v, backlog, tx); math.Abs(got-s)/s > 1e-12 {
			t.Fatalf("round trip %v -> %v", s, got)
		}
	}
	// FIFO: sojourn = backlog + tx maps to a zero residual.
	if TargetTransform(backlog+tx, backlog, tx) != 0 {
		t.Fatal("FIFO residual should be 0")
	}
	// Inverse never goes below the transmission time.
	if TargetInverse(-2, backlog, tx) != tx {
		t.Fatal("inverse below tx should clamp")
	}
}

func TestPredictStreamsParallelMatchesSerial(t *testing.T) {
	p, err := New(Arch{TimeSteps: 4, Embed: 6, BLSTM1: 4, BLSTM2: 4, Heads: 1, DK: 2, DV: 2, HeadOut: 4}, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	p.Feat = &MinMax{Min: make([]float64, NumFeatures), Max: make([]float64, NumFeatures)}
	for i := range p.Feat.Max {
		p.Feat.Max[i] = 1
	}
	p.TargetMax = 1
	r := rng.New(13)
	streams := make([][]PacketIn, 9)
	for i := range streams {
		n := 5 + r.Intn(20)
		s := make([]PacketIn, n)
		tm := 0.0
		for j := range s {
			tm += r.Exp(1e5)
			s[j] = PacketIn{Arrive: tm, Size: 64 + r.Intn(1400), InPort: r.Intn(2)}
		}
		streams[i] = s
	}
	par := p.PredictStreams(streams, des.FIFO, 1e9)
	for i, s := range streams {
		ser := p.PredictStream(s, des.FIFO, 1e9, 1)
		for j := range ser {
			if par[i][j] != ser[j] {
				t.Fatalf("stream %d pkt %d: %v vs %v", i, j, par[i][j], ser[j])
			}
		}
	}
}
