package ptm

// Synthetic returns an untrained but structurally valid PTM: seeded
// weights, a unit feature scaler, and a tiny positive target span. It
// predicts deterministic (if meaningless) sojourns, which makes it the
// reference model for golden-trace determinism tests and benchmark
// harnesses — no training cost, full inference path.
func Synthetic(arch Arch, numPorts int, seed uint64) (*PTM, error) {
	p, err := New(arch, numPorts, seed)
	if err != nil {
		return nil, err
	}
	p.Feat = &MinMax{Min: make([]float64, NumFeatures), Max: make([]float64, NumFeatures)}
	for j := range p.Feat.Max {
		p.Feat.Max[j] = 1
	}
	p.TargetMax = 1e-6
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
