package ptm

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deepqueuenet/internal/dbscan"
)

// faultModel builds a small valid PTM for corruption tests.
func faultModel(t *testing.T) *PTM {
	t.Helper()
	m, err := New(Arch{TimeSteps: 8, Margin: 2, Embed: 4, BLSTM1: 4, BLSTM2: 4,
		Heads: 1, DK: 2, DV: 2, HeadOut: 4}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Feat = &MinMax{Min: make([]float64, NumFeatures), Max: make([]float64, NumFeatures)}
	for i := range m.Feat.Max {
		m.Feat.Max[i] = 1
	}
	m.TargetMax = 1
	return m
}

func TestLoadWrapsPathOnMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.ptm.json")
	_, err := Load(path)
	if err == nil {
		t.Fatal("missing file must error")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error must carry the file path: %v", err)
	}
}

func TestLoadRejectsCorruptedJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.ptm.json")
	data, err := faultModel(t).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	if err == nil {
		t.Fatal("truncated model file must be rejected")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error must carry the file path: %v", err)
	}
}

func TestMarshalRefusesNaNWeights(t *testing.T) {
	m := faultModel(t)
	m.Net.Params()[0].W.Data[0] = math.NaN()
	if _, err := m.Marshal(); err == nil {
		t.Fatal("NaN weights must not serialize")
	}
}

func TestLoadRejectsPoisonedWeightFile(t *testing.T) {
	// A weight literal rewritten on disk to an out-of-range value — the
	// on-disk form of a poisoned model — must be rejected with a
	// path-bearing error.
	good := faultModel(t)
	path := filepath.Join(t.TempDir(), "poisoned.ptm.json")
	if err := good.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := strings.Replace(string(raw), `"weights":[[`, `"weights":[[1e999,`, 1)
	if poisoned == string(raw) {
		t.Fatal("failed to poison weights literal")
	}
	if err := os.WriteFile(path, []byte(poisoned), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	if err == nil {
		t.Fatal("poisoned weight file must be rejected")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error must carry the file path: %v", err)
	}
}

func TestUnmarshalRejectsUnknownFields(t *testing.T) {
	data, err := faultModel(t).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(data), "{", `{"surprise_field":42,`, 1)
	if _, err := Unmarshal([]byte(bad)); err == nil {
		t.Fatal("unknown top-level field must be rejected")
	}
}

func TestUnmarshalRejectsFutureSchema(t *testing.T) {
	data, err := faultModel(t).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(data), `"schema":1`, `"schema":99`, 1)
	if bad == string(data) {
		t.Fatal("marshaled model missing schema field")
	}
	_, err = Unmarshal([]byte(bad))
	if err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("future schema version must be rejected: %v", err)
	}
}

func TestRoundTripCarriesSchemaVersion(t *testing.T) {
	m := faultModel(t)
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"schema":1`) {
		t.Fatal("marshal must stamp the schema version")
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPorts != m.NumPorts || back.TimeSteps != m.TimeSteps {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestLegacyFileWithoutSchemaLoads(t *testing.T) {
	// Pre-versioning files carry no "schema" field and must keep loading.
	data, err := faultModel(t).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	legacy := strings.Replace(string(data), `"schema":1,`, "", 1)
	if legacy == string(data) {
		t.Fatal("failed to strip schema field")
	}
	if _, err := Unmarshal([]byte(legacy)); err != nil {
		t.Fatalf("legacy schema-less file must load: %v", err)
	}
}

func TestShippedModelsStillLoad(t *testing.T) {
	// Regression guard: the pre-versioning models shipped in models/
	// must pass the new strict decoding and validation.
	dir := filepath.Join("..", "..", "models")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("models dir unavailable: %v", err)
	}
	loaded := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".ptm.json") {
			continue
		}
		if _, err := Load(filepath.Join(dir, e.Name())); err != nil {
			t.Fatalf("shipped model %s: %v", e.Name(), err)
		}
		loaded++
	}
	if loaded == 0 {
		t.Skip("no shipped models found")
	}
}

func TestValidateCatchesStructuralFaults(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*PTM)
		want    string
	}{
		{"nil net", func(p *PTM) { p.Net = nil }, "no network"},
		{"zero window", func(p *PTM) { p.TimeSteps = 0 }, "window"},
		{"margin too large", func(p *PTM) { p.Margin = p.TimeSteps }, "margin"},
		{"bad ports", func(p *PTM) { p.NumPorts = 0 }, "port count"},
		{"nan target", func(p *PTM) { p.TargetMax = math.NaN() }, "target range"},
		{"inverted target", func(p *PTM) { p.TargetMin = 2; p.TargetMax = 1 }, "target range"},
		{"scaler width", func(p *PTM) { p.Feat.Min = p.Feat.Min[:3] }, "scaler width"},
		{"nan scaler", func(p *PTM) { p.Feat.Max[0] = math.NaN() }, "scaler stats"},
		{"inverted scaler", func(p *PTM) { p.Feat.Min[1] = 5; p.Feat.Max[1] = 1 }, "inverted scaler"},
		{"nan weight", func(p *PTM) { p.Net.Params()[0].W.Data[0] = math.NaN() }, "non-finite weight"},
		{"inf weight", func(p *PTM) { p.Net.Params()[1].W.Data[0] = math.Inf(1) }, "non-finite weight"},
		{"nan sec bin", func(p *PTM) {
			p.SECBins = append(p.SECBins, dbscan.Bin{Lo: math.NaN()})
		}, "SEC bin"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := faultModel(t)
			c.corrupt(m)
			err := m.Validate()
			if err == nil {
				t.Fatalf("%s: Validate must fail", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("%s: error %q missing %q", c.name, err, c.want)
			}
		})
	}
	if err := faultModel(t).Validate(); err != nil {
		t.Fatalf("pristine model must validate: %v", err)
	}
}

func TestNilModelValidate(t *testing.T) {
	var p *PTM
	if err := p.Validate(); err == nil {
		t.Fatal("nil model must fail validation")
	}
}
