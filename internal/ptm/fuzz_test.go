package ptm

import (
	"bytes"
	"testing"
)

// FuzzPTMLoad fuzzes the on-disk model decoder: arbitrary bytes must
// either be rejected with an error or produce a structurally valid
// model that survives a marshal/unmarshal round trip. A panic or an
// invalid accepted model is a finding — Unmarshal is the trust boundary
// for every model file loaded off disk.
func FuzzPTMLoad(f *testing.F) {
	// Seed corpus: a real marshaled model, then structured variations
	// that steer the fuzzer toward the JSON schema's interesting edges.
	p, err := New(Arch{TimeSteps: 4, Embed: 6, BLSTM1: 4, BLSTM2: 4, Heads: 1, DK: 2, DV: 2, HeadOut: 4}, 2, 1)
	if err != nil {
		f.Fatal(err)
	}
	p.TargetMax = 1
	if valid, err := p.Marshal(); err == nil {
		f.Add(valid)
	} else {
		f.Fatal(err)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema":99,"net":{},"time_steps":4}`))
	f.Add([]byte(`{"schema":1,"net":null,"time_steps":-1}`))
	f.Add([]byte(`{"net":{"specs":[],"weights":[]},"time_steps":4,"num_ports":2,"target_min":0,"target_max":1}`))
	f.Add([]byte(`{"net":{"specs":[{"kind":"dense","in":1,"out":1}],"weights":[[1e999]]},"time_steps":4}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Accepted models must pass their own validator...
		if verr := m.Validate(); verr != nil {
			t.Fatalf("Unmarshal accepted a model that fails Validate: %v", verr)
		}
		// ...and round-trip losslessly through the writer.
		out, err := m.Marshal()
		if err != nil {
			t.Fatalf("accepted model does not re-marshal: %v", err)
		}
		m2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-marshaled model does not decode: %v", err)
		}
		out2, err := m2.Marshal()
		if err != nil {
			t.Fatalf("round-tripped model does not re-marshal: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("marshal is not a fixed point:\n%s\nvs\n%s", out, out2)
		}
	})
}
