package ptm

import (
	"math"
	"testing"

	"deepqueuenet/internal/des"
	"deepqueuenet/internal/rng"
)

func sessionModel(t *testing.T) *PTM {
	t.Helper()
	p, err := Synthetic(Arch{}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testStream(n int, seed uint64) []PacketIn {
	r := rng.New(seed)
	stream := make([]PacketIn, n)
	tm := 0.0
	for i := range stream {
		tm += r.Exp(1e6)
		stream[i] = PacketIn{Arrive: tm, Size: 64 + r.Intn(1400), InPort: r.Intn(8), Class: r.Intn(3), Weight: 1}
	}
	return stream
}

func sojournsBitsEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d predictions, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: packet %d differs bitwise: got %v want %v", label, i, got[i], want[i])
		}
	}
}

// TestPredictStreamIntoMatchesBatchPath: the session fast path and the
// chunk-parallel PredictBatch path must produce bit-identical sojourns.
// Streams shrink between calls so stale-buffer reuse would be caught.
func TestPredictStreamIntoMatchesBatchPath(t *testing.T) {
	p := sessionModel(t)
	var dst []float64
	for i, n := range []int{200, 37, 128, 5, 1} {
		stream := testStream(n, 50+uint64(i))
		want := p.PredictStream(stream, des.FIFO, 10e9, 4) // batch path
		dst = p.PredictStreamInto(dst, stream, des.FIFO, 10e9)
		sojournsBitsEqual(t, "PredictStreamInto", dst, want)
		seq := p.PredictStream(stream, des.FIFO, 10e9, 1) // session path
		sojournsBitsEqual(t, "PredictStream(workers=1)", seq, want)
	}
}

// TestPredictDeviceMatchesPerPort: the device-batched call must equal
// per-port PredictStream results, port by port.
func TestPredictDeviceMatchesPerPort(t *testing.T) {
	p := sessionModel(t)
	ports := []PortStream{
		{Stream: testStream(90, 1), RateBps: 10e9},
		{Stream: nil, RateBps: 10e9}, // empty port must stay empty
		{Stream: testStream(40, 2), RateBps: 1e9},
		{Stream: testStream(7, 3), RateBps: 40e9},
	}
	p.PredictDevice(ports, des.SP)
	ref := sessionModel(t)
	for i, ps := range ports {
		want := ref.PredictStream(ps.Stream, des.SP, ps.RateBps, 1)
		if len(ps.Stream) == 0 {
			if len(ports[i].Out) != 0 {
				t.Fatalf("port %d: empty stream produced %d predictions", i, len(ports[i].Out))
			}
			continue
		}
		sojournsBitsEqual(t, "PredictDevice", ports[i].Out, want)
	}
}

// TestPredictStreamIntoZeroAllocs pins the steady-state allocation
// count of the per-window inference path at exactly zero: one warmed
// session must serve repeated streams entirely from reused buffers.
// (testing.AllocsPerRun runs one warm-up call before measuring, which
// is what grows the arena and flat buffers to peak demand.)
func TestPredictStreamIntoZeroAllocs(t *testing.T) {
	p := sessionModel(t)
	stream := testStream(150, 9)
	dst := make([]float64, len(stream))
	allocs := testing.AllocsPerRun(10, func() {
		dst = p.PredictStreamInto(dst, stream, des.FIFO, 10e9)
	})
	if allocs != 0 {
		t.Fatalf("PredictStreamInto allocated %.0f times per stream; want 0", allocs)
	}
}

// TestPredictDeviceZeroAllocs: the device-batched path must also run
// allocation-free once warm, including its per-port Out slices.
func TestPredictDeviceZeroAllocs(t *testing.T) {
	p := sessionModel(t)
	ports := []PortStream{
		{Stream: testStream(80, 4), RateBps: 10e9},
		{Stream: testStream(33, 5), RateBps: 1e9},
	}
	allocs := testing.AllocsPerRun(10, func() {
		p.PredictDevice(ports, des.FIFO)
	})
	if allocs != 0 {
		t.Fatalf("PredictDevice allocated %.0f times per device; want 0", allocs)
	}
}

// TestCloneDoesNotShareSession: sessions are single-owner scratch; a
// clone must start without one or two goroutines would share an arena.
func TestCloneDoesNotShareSession(t *testing.T) {
	p := sessionModel(t)
	p.PredictStreamInto(nil, testStream(10, 6), des.FIFO, 10e9)
	if p.sess == nil {
		t.Fatal("expected a session after PredictStreamInto")
	}
	c := p.Clone()
	if c.sess != nil {
		t.Fatal("Clone shared the inference session")
	}
	if p.WithoutSEC().sess != nil {
		t.Fatal("WithoutSEC shared the inference session")
	}
}

// TestPredictStreamsMatchesSequential: the stream-parallel API must
// match per-stream sequential prediction bitwise.
func TestPredictStreamsMatchesSequential(t *testing.T) {
	p := sessionModel(t)
	streams := [][]PacketIn{testStream(60, 1), testStream(45, 2), testStream(90, 3), testStream(12, 4)}
	got := p.PredictStreams(streams, des.FIFO, 10e9)
	ref := sessionModel(t)
	for i, s := range streams {
		sojournsBitsEqual(t, "PredictStreams", got[i], ref.PredictStream(s, des.FIFO, 10e9, 1))
	}
}
