package ptm

import (
	"errors"
	"fmt"

	"deepqueuenet/internal/des"
	"deepqueuenet/internal/metrics"
	"deepqueuenet/internal/nn"
	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/tensor"
	"deepqueuenet/internal/topo"
	"deepqueuenet/internal/traffic"
)

// DeviceStream is one recorded single-device workload: the per-egress-
// port ingress streams of a K-port switch and the ground-truth sojourn of
// every packet.
type DeviceStream struct {
	Sched    des.SchedConfig
	RateBps  float64
	Ins      [][]PacketIn // indexed by egress port
	Sojourns [][]float64  // ground truth, parallel to Ins
}

// TrainSpec configures DUtil training-trace generation and PTM training
// (§5.2): a K-port switch driven by random routing schemes and a mix of
// MAP / Poisson / On-Off sources at per-port loads in [LoadLo, LoadHi].
type TrainSpec struct {
	Ports    int
	Arch     Arch
	Scheds   []des.SchedConfig // sampled uniformly per stream
	Models   []traffic.Model   // sampled uniformly per flow
	LoadLo   float64
	LoadHi   float64
	RateBps  float64
	Streams  int     // independent single-device simulations
	Duration float64 // simulated seconds per stream
	// MaxChunksPerStream caps training chunks drawn from one egress
	// stream (0 = unlimited).
	MaxChunksPerStream int
	Seed               uint64
	Train              nn.TrainConfig
}

func (s TrainSpec) withDefaults() TrainSpec {
	if s.Ports <= 0 {
		s.Ports = 4
	}
	if len(s.Scheds) == 0 {
		s.Scheds = []des.SchedConfig{{Kind: des.FIFO}}
	}
	if len(s.Models) == 0 {
		s.Models = []traffic.Model{traffic.ModelPoisson, traffic.ModelMAP, traffic.ModelOnOff}
	}
	if s.LoadLo <= 0 {
		s.LoadLo = 0.1
	}
	if s.LoadHi <= 0 {
		s.LoadHi = 0.8
	}
	if s.RateBps <= 0 {
		s.RateBps = 10e9
	}
	if s.Streams <= 0 {
		s.Streams = 8
	}
	if s.Duration <= 0 {
		s.Duration = 0.005
	}
	if s.Train.Epochs <= 0 {
		s.Train.Epochs = 6
	}
	if s.Train.BatchSize <= 0 {
		s.Train.BatchSize = 16
	}
	if s.Train.LR <= 0 {
		s.Train.LR = 0.002
	}
	return s
}

// GenerateStream runs one single-switch DES simulation with a random
// routing scheme and traffic mix and returns the per-egress-port streams.
func GenerateStream(spec TrainSpec, r *rng.Rand) DeviceStream {
	spec = spec.withDefaults()
	k := spec.Ports
	sched := spec.Scheds[r.Intn(len(spec.Scheds))]
	sched = randomizeClasses(sched, r)

	g := topo.Star(k, topo.LinkParams{RateBps: spec.RateBps, Delay: 1e-7})
	hosts := g.Hosts()
	sw := g.Switches()[0]

	// Random routing scheme: for each destination port pick a load and a
	// random subset of senders.
	type flowPlan struct {
		src, dst, class int
		weight          float64
		model           traffic.Model
		load            float64
	}
	var plans []flowPlan
	for d := 0; d < k; d++ {
		load := r.Uniform(spec.LoadLo, spec.LoadHi)
		n := 1 + r.Intn(k-1)
		perm := r.Perm(k)
		picked := 0
		for _, s := range perm {
			if s == d {
				continue
			}
			class, weight := randomClass(sched, r)
			plans = append(plans, flowPlan{
				src: s, dst: d, class: class, weight: weight,
				model: spec.Models[r.Intn(len(spec.Models))],
				load:  load / float64(n),
			})
			picked++
			if picked == n {
				break
			}
		}
	}

	flows := make([]topo.FlowDef, len(plans))
	for i, p := range plans {
		flows[i] = topo.FlowDef{FlowID: i + 1, Src: hosts[p.src], Dst: hosts[p.dst]}
	}
	rt, err := g.Route(flows)
	if err != nil {
		panic(fmt.Sprintf("ptm: star routing failed: %v", err))
	}
	net := des.Build(g, rt, des.NetConfig{Sched: sched})
	sizes := &traffic.BimodalSize{Small: 64, Large: 1500, PSmall: 0.4, R: r.Split()}
	for i, p := range plans {
		gen := traffic.NewGenerator(p.model, p.load, spec.RateBps, sizes, r.Split())
		net.AddFlow(hosts[p.src], des.Flow{
			FlowID: i + 1, Dst: hosts[p.dst], Class: p.class, Weight: p.weight,
			Proto: 17, Source: gen, Stop: spec.Duration,
		})
	}
	net.Run(spec.Duration * 2) // drain

	ds := DeviceStream{Sched: sched, RateBps: spec.RateBps,
		Ins: make([][]PacketIn, k), Sojourns: make([][]float64, k)}
	for _, v := range net.Trace.DeviceVisits(sw) {
		if v.Dropped || v.OutPort < 0 || v.OutPort >= k {
			continue
		}
		ds.Ins[v.OutPort] = append(ds.Ins[v.OutPort], PacketIn{
			Arrive: v.Arrive, Size: v.Size, Proto: v.Proto,
			InPort: v.InPort, Class: v.Class, Weight: v.Weight,
		})
		ds.Sojourns[v.OutPort] = append(ds.Sojourns[v.OutPort], v.Sojourn())
	}
	return ds
}

// randomizeClasses draws the paper's random class attributes: priorities
// 1–3 for SP, weights 1–9 for DRR/WFQ/WRR (§5.2).
func randomizeClasses(c des.SchedConfig, r *rng.Rand) des.SchedConfig {
	switch c.Kind {
	case des.SP:
		if c.Classes <= 0 {
			c.Classes = 2 + r.Intn(2) // 2 or 3 classes
		}
	case des.WRR, des.DRR, des.WFQ:
		if len(c.Weights) == 0 {
			n := 2 + r.Intn(2)
			w := make([]float64, n)
			for i := range w {
				w[i] = float64(1 + r.Intn(9))
			}
			c.Weights = w
		}
	}
	return c
}

// randomClass assigns a flow's class and weight under a scheduler config.
func randomClass(c des.SchedConfig, r *rng.Rand) (int, float64) {
	switch c.Kind {
	case des.SP:
		n := c.NumClasses()
		return r.Intn(n), 0
	case des.WRR, des.DRR, des.WFQ:
		k := r.Intn(len(c.Weights))
		return k, c.Weights[k]
	}
	return 0, 0
}

// BuildDataset converts device streams into a supervised chunk dataset,
// fitting the feature and target scalers into p.
func BuildDataset(p *PTM, streams []DeviceStream, maxChunksPerStream int, r *rng.Rand) (*nn.Dataset, error) {
	type portStream struct {
		rows    [][]float64
		targets []float64 // reordering residual per position
		chunks  []Chunk
	}
	var pss []portStream
	var allRows [][]float64
	var allTargets []float64

	for _, ds := range streams {
		for port := range ds.Ins {
			stream := ds.Ins[port]
			if len(stream) < 2*p.Margin+1 {
				continue
			}
			rows, aux := Featurize(stream, ds.Sched.Kind, p.NumPorts, ds.RateBps)
			allRows = append(allRows, rows...)
			targets := make([]float64, len(stream))
			for i := range stream {
				targets[i] = TargetTransform(ds.Sojourns[port][i], aux.Backlog[i], aux.Tx[i])
			}
			allTargets = append(allTargets, targets...)
			chunks := Chunks(len(stream), p.TimeSteps, p.Margin)
			if maxChunksPerStream > 0 && len(chunks) > maxChunksPerStream {
				perm := r.Perm(len(chunks))
				sel := make([]Chunk, maxChunksPerStream)
				for i := range sel {
					sel[i] = chunks[perm[i]]
				}
				chunks = sel
			}
			pss = append(pss, portStream{rows: rows, targets: targets, chunks: chunks})
		}
	}
	if len(pss) == 0 {
		return nil, errors.New("ptm: no training chunks generated")
	}
	sc, err := FitMinMax(allRows)
	if err != nil {
		return nil, err
	}
	p.Feat = sc
	// Fit the target scale on robust quantiles rather than extremes: a
	// handful of starvation-tail outliers would otherwise stretch the
	// unit range and crush the resolution of the common case. Targets
	// beyond the quantiles are clamped into range.
	p.TargetMin = metrics.Percentile(allTargets, 0.1)
	p.TargetMax = metrics.Percentile(allTargets, 99.5)
	if p.TargetMax <= p.TargetMin {
		p.TargetMin = allTargets[0]
		p.TargetMax = allTargets[0] + 1
	}
	clampTarget := func(v float64) float64 {
		if v < p.TargetMin {
			return p.TargetMin
		}
		if v > p.TargetMax {
			return p.TargetMax
		}
		return v
	}

	out := &nn.Dataset{}
	for _, ps := range pss {
		for _, ck := range ps.chunks {
			x := ck.Materialize(ps.rows, p.TimeSteps, sc)
			y := tensor.New(p.TimeSteps, 1)
			for t := 0; t < p.TimeSteps; t++ {
				src := ck.Start + t
				if src >= len(ps.targets) {
					src = len(ps.targets) - 1
				}
				y.Set(t, 0, p.scaleTarget(clampTarget(ps.targets[src])))
			}
			hi := ck.Hi
			if ck.Start+hi > len(ps.targets) {
				hi = len(ps.targets) - ck.Start
			}
			if hi <= ck.Lo {
				continue
			}
			out.Append(x, y, ck.Lo, hi)
		}
	}
	if out.Len() == 0 {
		return nil, errors.New("ptm: no training chunks generated")
	}
	return out, nil
}

// TrainReport summarizes a DUtil training run.
type TrainReport struct {
	Curve   nn.TrainResult // minibatch loss trajectory (Fig. 7)
	ValMSE  float64
	ValW1   float64 // normalized w1 on a held-out stream (Table 2 metric)
	Windows int     // training chunks
}

// TrainDevice runs the full DUtil pipeline: generate single-device
// traces, build the chunk dataset, train the PTM, and fit SEC bins on
// the validation split. It returns the trained model and a report.
func TrainDevice(spec TrainSpec) (*PTM, TrainReport, error) {
	spec = spec.withDefaults()
	r := rng.New(spec.Seed)
	streams := make([]DeviceStream, spec.Streams)
	for i := range streams {
		streams[i] = GenerateStream(spec, r.Split())
	}
	holdout := GenerateStream(spec, r.Split())
	p, err := New(spec.Arch, spec.Ports, spec.Seed+1)
	if err != nil {
		return nil, TrainReport{}, err
	}
	ds, err := BuildDataset(p, streams, spec.MaxChunksPerStream, r.Split())
	if err != nil {
		return nil, TrainReport{}, err
	}
	train, val := ds.Split(0.85, spec.Seed+2)

	cfg := spec.Train
	if cfg.LogEvery <= 0 {
		cfg.LogEvery = 10
	}
	curve := nn.Train(p.Net, train, cfg)

	// SEC fitting on validation predictions (residual space, seconds).
	var preds, truths []float64
	raw := nn.PredictBatch(p.Net, val.X, cfg.Workers)
	for i := range raw {
		for t := val.Lo[i]; t < val.Hi[i]; t++ {
			preds = append(preds, p.unscaleTarget(raw[i].At(t, 0)))
			truths = append(truths, p.unscaleTarget(val.Y[i].At(t, 0)))
		}
	}
	p.FitSEC(preds, truths)

	rep := TrainReport{Curve: curve, ValMSE: nn.Evaluate(p.Net, val), Windows: ds.Len()}
	// Holdout w1 on the actual sojourn distribution (Table 2's metric),
	// measured on a stream the model never saw.
	rep.ValW1 = Evaluate(p, []DeviceStream{holdout}, cfg.Workers)
	return p, rep, nil
}

// Evaluate measures a PTM against ground-truth device streams: the
// normalized w1 between the predicted and true sojourn distributions
// (Table 2's metric).
func Evaluate(p *PTM, streams []DeviceStream, workers int) float64 {
	var pred, truth []float64
	for _, ds := range streams {
		for port := range ds.Ins {
			if len(ds.Ins[port]) == 0 {
				continue
			}
			ps := p.PredictStream(ds.Ins[port], ds.Sched.Kind, ds.RateBps, workers)
			pred = append(pred, ps...)
			truth = append(truth, ds.Sojourns[port]...)
		}
	}
	return metrics.NormW1(pred, truth)
}
