package des

import (
	"math"
	"sort"
	"testing"

	"deepqueuenet/internal/metrics"
	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/topo"
	"deepqueuenet/internal/traffic"
)

// buildLineNet wires Line(n) with all-pairs-free simple flows.
func buildLineNet(t *testing.T, n int, echo bool, sched SchedConfig) (*Network, []topo.FlowDef) {
	t.Helper()
	g := topo.Line(n, topo.DefaultLAN)
	hosts := g.Hosts()
	flows := []topo.FlowDef{{FlowID: 1, Src: hosts[0], Dst: hosts[n-1]}}
	rt, err := g.Route(flows)
	if err != nil {
		t.Fatal(err)
	}
	return Build(g, rt, NetConfig{Sched: sched, Echo: echo}), flows
}

func TestSinglePacketLatency(t *testing.T) {
	// One 1000-byte packet across Line(2): host -> link -> s0 -> link ->
	// s1 -> link -> host. Expected one-way delay:
	//   3 serializations at 10 Gb/s (host egress + 2 switch egresses)
	//   + 3 propagation delays of 1 µs.
	net, _ := buildLineNet(t, 2, false, SchedConfig{Kind: FIFO})
	hosts := net.Graph.Hosts()
	gen := traffic.NewReplay([]float64{0.001}, []int{1000}, false)
	net.AddFlow(hosts[0], Flow{FlowID: 1, Dst: hosts[1], Source: gen})
	net.Run(1)

	if len(net.Trace.Deliveries) != 1 {
		t.Fatalf("deliveries %d", len(net.Trace.Deliveries))
	}
	d := net.Trace.Deliveries[0]
	tx := float64(1000*8) / 10e9
	want := 3*tx + 3*1e-6
	if math.Abs(d.Delay()-want) > 1e-12 {
		t.Fatalf("delay %v, want %v", d.Delay(), want)
	}
	if net.StrayCount() != 0 {
		t.Fatal("stray packets")
	}
}

func TestEchoRTTIsTwiceOneWay(t *testing.T) {
	net, _ := buildLineNet(t, 3, true, SchedConfig{Kind: FIFO})
	hosts := net.Graph.Hosts()
	gen := traffic.NewReplay([]float64{0.001}, []int{500}, false)
	net.AddFlow(hosts[0], Flow{FlowID: 1, Dst: hosts[2], Source: gen})
	net.Run(1)

	var oneWay, rtt float64
	for _, d := range net.Trace.Deliveries {
		if d.IsRTT {
			rtt = d.Delay()
		} else {
			oneWay = d.Delay()
		}
	}
	if oneWay == 0 || rtt == 0 {
		t.Fatalf("missing deliveries: %+v", net.Trace.Deliveries)
	}
	if math.Abs(rtt-2*oneWay) > 1e-12 {
		t.Fatalf("rtt %v, one-way %v", rtt, oneWay)
	}
}

func TestPacketConservation(t *testing.T) {
	net, _ := buildLineNet(t, 4, true, SchedConfig{Kind: FIFO})
	hosts := net.Graph.Hosts()
	r := rng.New(5)
	gen := traffic.NewPoisson(50000, traffic.ConstSize(800), r)
	net.AddFlow(hosts[0], Flow{FlowID: 1, Dst: hosts[3], Source: gen, Stop: 0.02})
	net.Run(1)

	// Every device: arrivals == departures + drops (all visits complete
	// once the network drains).
	for dev, visits := range net.Trace.ByDevice {
		for _, v := range visits {
			if !v.Dropped && v.Depart < v.Arrive {
				t.Fatalf("device %d: depart before arrive: %+v", dev, v)
			}
		}
	}
	if len(net.Trace.inFlight) != 0 {
		t.Fatalf("%d visits still in flight after drain", len(net.Trace.inFlight))
	}
	if net.StrayCount() != 0 {
		t.Fatal("stray packets")
	}
	if len(net.Trace.Deliveries) == 0 {
		t.Fatal("no deliveries")
	}
}

func TestFIFODeparturesOrderedPerPort(t *testing.T) {
	net, _ := buildLineNet(t, 3, false, SchedConfig{Kind: FIFO})
	hosts := net.Graph.Hosts()
	r := rng.New(7)
	net.AddFlow(hosts[0], Flow{FlowID: 1, Dst: hosts[2],
		Source: traffic.NewPoisson(2e5, traffic.ConstSize(1500), r), Stop: 0.01})
	net.Run(1)

	//dqnlint:allow detguard per-port visit order comes from the deterministic trace slice; device iteration order only reorders independent assertions
	for dev, visits := range net.Trace.ByDevice {
		byPort := map[int][]Visit{}
		for _, v := range visits {
			if !v.Dropped {
				byPort[v.OutPort] = append(byPort[v.OutPort], v)
			}
		}
		for port, vs := range byPort {
			for i := 1; i < len(vs); i++ {
				if vs[i].Depart < vs[i-1].Depart && vs[i].Arrive > vs[i-1].Arrive {
					t.Fatalf("device %d port %d: FIFO violation", dev, port)
				}
			}
		}
	}
}

func TestOverloadDropsWithFiniteBuffer(t *testing.T) {
	// Two hosts blast one egress port at 2x capacity with a tiny buffer.
	g := topo.Star(3, topo.LinkParams{RateBps: 1e9, Delay: 1e-6})
	hosts := g.Hosts()
	flows := []topo.FlowDef{
		{FlowID: 1, Src: hosts[0], Dst: hosts[2]},
		{FlowID: 2, Src: hosts[1], Dst: hosts[2]},
	}
	rt, err := g.Route(flows)
	if err != nil {
		t.Fatal(err)
	}
	net := Build(g, rt, NetConfig{Sched: SchedConfig{Kind: FIFO, Capacity: 4}})
	r := rng.New(9)
	pps := traffic.PacketRateFor(1.0, 1e9, 1000) // each flow alone loads 100%
	net.AddFlow(hosts[0], Flow{FlowID: 1, Dst: hosts[2],
		Source: traffic.NewPoisson(pps, traffic.ConstSize(1000), r.Split()), Stop: 0.01})
	net.AddFlow(hosts[1], Flow{FlowID: 2, Dst: hosts[2],
		Source: traffic.NewPoisson(pps, traffic.ConstSize(1000), r.Split()), Stop: 0.01})
	net.Run(1)

	sw := g.Switches()[0]
	if net.Trace.Drops[sw] == 0 {
		t.Fatal("expected drops under 2x overload with tiny buffer")
	}
	// Deliveries still happen.
	if len(net.Trace.Deliveries) == 0 {
		t.Fatal("no deliveries despite overload")
	}
}

func TestSPPriorityLatencyOrdering(t *testing.T) {
	// Under heavy load, class 0 (high priority) must see lower mean
	// sojourn than class 1 at the shared bottleneck.
	g := topo.Star(3, topo.LinkParams{RateBps: 1e9, Delay: 1e-6})
	hosts := g.Hosts()
	flows := []topo.FlowDef{
		{FlowID: 1, Src: hosts[0], Dst: hosts[2]},
		{FlowID: 2, Src: hosts[1], Dst: hosts[2]},
	}
	rt, _ := g.Route(flows)
	net := Build(g, rt, NetConfig{Sched: SchedConfig{Kind: SP, Classes: 2}})
	r := rng.New(11)
	pps := traffic.PacketRateFor(0.45, 1e9, 1000)
	net.AddFlow(hosts[0], Flow{FlowID: 1, Dst: hosts[2], Class: 0,
		Source: traffic.NewPoisson(pps, traffic.ConstSize(1000), r.Split()), Stop: 0.05})
	net.AddFlow(hosts[1], Flow{FlowID: 2, Dst: hosts[2], Class: 1,
		Source: traffic.NewPoisson(pps, traffic.ConstSize(1000), r.Split()), Stop: 0.05})
	net.Run(1)

	sw := g.Switches()[0]
	var hi, lo []float64
	for _, v := range net.Trace.ByDevice[sw] {
		if v.Dropped {
			continue
		}
		if v.Class == 0 {
			hi = append(hi, v.Sojourn())
		} else {
			lo = append(lo, v.Sojourn())
		}
	}
	if metrics.Mean(hi) >= metrics.Mean(lo) {
		t.Fatalf("SP: high-priority sojourn %v >= low %v", metrics.Mean(hi), metrics.Mean(lo))
	}
}

func TestWFQThroughputShares(t *testing.T) {
	// Saturate one port with two classes weighted 1:3: departures in
	// bytes should split ~1:3.
	g := topo.Star(3, topo.LinkParams{RateBps: 1e8, Delay: 1e-6})
	hosts := g.Hosts()
	flows := []topo.FlowDef{
		{FlowID: 1, Src: hosts[0], Dst: hosts[2]},
		{FlowID: 2, Src: hosts[1], Dst: hosts[2]},
	}
	rt, _ := g.Route(flows)
	net := Build(g, rt, NetConfig{Sched: SchedConfig{Kind: WFQ, Weights: []float64{1, 3}}})
	r := rng.New(13)
	pps := traffic.PacketRateFor(1.5, 1e8, 1000) // each flow alone 150% load
	net.AddFlow(hosts[0], Flow{FlowID: 1, Dst: hosts[2], Class: 0, Weight: 1,
		Source: traffic.NewPoisson(pps, traffic.ConstSize(1000), r.Split()), Stop: 0.05})
	net.AddFlow(hosts[1], Flow{FlowID: 2, Dst: hosts[2], Class: 1, Weight: 3,
		Source: traffic.NewPoisson(pps, traffic.ConstSize(1000), r.Split()), Stop: 0.05})
	net.Run(0.05) // stop while still saturated

	sw := g.Switches()[0]
	bytes := map[int]int{}
	for _, v := range net.Trace.ByDevice[sw] {
		if !v.Dropped && v.Depart > 0.01 { // skip warmup
			bytes[v.Class] += v.Size
		}
	}
	ratio := float64(bytes[1]) / float64(bytes[0])
	if math.Abs(ratio-3) > 0.5 {
		t.Fatalf("WFQ throughput ratio %v, want ~3", ratio)
	}
}

func TestQueueMonitor(t *testing.T) {
	net, _ := buildLineNet(t, 2, false, SchedConfig{Kind: FIFO})
	hosts := net.Graph.Hosts()
	sw := net.Graph.Switches()[0]
	r := rng.New(15)
	net.AddFlow(hosts[0], Flow{FlowID: 1, Dst: hosts[1],
		Source: traffic.NewPoisson(1e5, traffic.ConstSize(1000), r), Stop: 0.01})
	// Find the egress port toward host[1]: monitor all ports is easier —
	// monitor port 0 and 1 if present.
	mon := net.MonitorQueue(sw, 0, 1e-4)
	net.Run(0.01)
	if len(mon.Samples) < 50 {
		t.Fatalf("monitor took %d samples", len(mon.Samples))
	}
	if len(mon.ClassLens(0)) != len(mon.Samples) {
		t.Fatal("ClassLens length mismatch")
	}
}

func TestPathDelays(t *testing.T) {
	net, _ := buildLineNet(t, 3, true, SchedConfig{Kind: FIFO})
	hosts := net.Graph.Hosts()
	r := rng.New(17)
	net.AddFlow(hosts[0], Flow{FlowID: 1, Dst: hosts[2],
		Source: traffic.NewPoisson(1e4, traffic.ConstSize(500), r), Stop: 0.01})
	net.Run(1)
	rtts := net.PathDelays(true)
	key := PathKey(hosts[0], hosts[2])
	if len(rtts[key]) == 0 {
		t.Fatalf("no RTT samples for %s: keys %v", key, rtts)
	}
	oneway := net.PathDelays(false)
	if len(oneway[key]) == 0 {
		t.Fatal("no one-way samples")
	}
	// RTT ≈ 2x one-way on a symmetric uncongested path.
	r1 := metrics.Mean(rtts[key])
	o1 := metrics.Mean(oneway[key])
	if r1 < o1*1.5 || r1 > o1*2.5 {
		t.Fatalf("rtt mean %v vs one-way %v", r1, o1)
	}
}

func TestMMQueueMatchesTheory(t *testing.T) {
	// M/M/1-like check: Poisson arrivals, exponential-ish service via
	// packet size ~ geometric approximation is awkward; instead verify
	// the M/D/1 mean wait formula (deterministic service) within 10%:
	//   W = ρ·S/(2(1−ρ)), sojourn = W + S.
	// A single same-rate input can never queue at the switch (the host
	// egress already serializes), so aggregate 8 independent Poisson
	// senders toward one destination: the superposition is Poisson.
	const nSend = 8
	g := topo.Star(nSend+1, topo.LinkParams{RateBps: 1e9, Delay: 1e-6})
	hosts := g.Hosts()
	dst := hosts[nSend]
	var flows []topo.FlowDef
	for i := 0; i < nSend; i++ {
		flows = append(flows, topo.FlowDef{FlowID: i + 1, Src: hosts[i], Dst: dst})
	}
	rt, _ := g.Route(flows)
	net := Build(g, rt, NetConfig{Sched: SchedConfig{Kind: FIFO}})
	r := rng.New(19)
	const rho = 0.6
	size := 1000
	svc := float64(size*8) / 1e9
	pps := rho / svc / nSend
	for i := 0; i < nSend; i++ {
		net.AddFlow(hosts[i], Flow{FlowID: i + 1, Dst: dst,
			Source: traffic.NewPoisson(pps, traffic.ConstSize(size), r.Split()), Stop: 3})
	}
	net.Run(5)

	sw := g.Switches()[0]
	var sojourns []float64
	for _, v := range net.Trace.ByDevice[sw] {
		if !v.Dropped && v.Arrive > 0.5 {
			sojourns = append(sojourns, v.Sojourn())
		}
	}
	want := rho*svc/(2*(1-rho)) + svc
	got := metrics.Mean(sojourns)
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("M/D/1 sojourn %v, theory %v", got, want)
	}
}

// Work conservation: on one egress port, whenever the next packet is
// already queued at a departure instant, service is back-to-back — the
// gap between consecutive departures equals exactly one transmission
// time.
func TestWorkConservationOnEgressPort(t *testing.T) {
	g := topo.Star(4, topo.LinkParams{RateBps: 1e9, Delay: 1e-6})
	hosts := g.Hosts()
	var flows []topo.FlowDef
	for i := 0; i < 3; i++ {
		flows = append(flows, topo.FlowDef{FlowID: i + 1, Src: hosts[i], Dst: hosts[3]})
	}
	rt, _ := g.Route(flows)
	net := Build(g, rt, NetConfig{Sched: SchedConfig{Kind: FIFO}})
	r := rng.New(23)
	for i := 0; i < 3; i++ {
		net.AddFlow(hosts[i], Flow{FlowID: i + 1, Dst: hosts[3],
			Source: traffic.NewPoisson(8e4, traffic.ConstSize(1000), r.Split()), Stop: 0.01})
	}
	net.Run(1)

	sw := g.Switches()[0]
	var toSink []Visit
	for _, v := range net.Trace.DeviceVisits(sw) {
		if !v.Dropped {
			toSink = append(toSink, v)
		}
	}
	// All flows share the single egress toward hosts[3]; visits are
	// sorted by arrival, re-sort by departure.
	sort.Slice(toSink, func(i, j int) bool { return toSink[i].Depart < toSink[j].Depart })
	tx := 1000 * 8 / 1e9
	checked := 0
	for i := 1; i < len(toSink); i++ {
		if toSink[i].Arrive <= toSink[i-1].Depart { // was queued
			gap := toSink[i].Depart - toSink[i-1].Depart
			if math.Abs(gap-tx) > 1e-12 {
				t.Fatalf("idle server with backlog: departure gap %v, want %v", gap, tx)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d back-to-back services observed; raise the load", checked)
	}
}
