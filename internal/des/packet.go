package des

// Packet carries the network-layer information the paper models (Eq. 1):
// unique packet ID, flow ID, length, and transport protocol, plus the
// scheduling class attributes assigned by the flow-to-priority/weight
// tables (Eqs. 8–9).
type Packet struct {
	ID     uint64
	FlowID int
	Size   int   // bytes
	Proto  uint8 // transport protocol number (6 TCP-like, 17 UDP-like)

	// Scheduling class for multi-queue TMs. Class indexes the scheduler
	// queue; for SP lower class number means higher priority; for
	// WFQ/WRR/DRR Weight is the class share.
	Class  int
	Weight float64

	Src, Dst  int // host node IDs
	CreatedAt float64
	IsEcho    bool // reply leg of an RTT probe
	Hops      int

	// ECN: ECT marks the packet ECN-capable; CE is set by RED queues
	// that mark instead of dropping (congestion experienced).
	ECT bool
	CE  bool
}

// Node is anything that can accept a packet on one of its ingress ports.
type Node interface {
	Receive(p *Packet, inPort int)
}

// portRef identifies a neighbour's ingress port.
type portRef struct {
	node   Node
	inPort int
}
