package des

import (
	"testing"

	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/topo"
	"deepqueuenet/internal/traffic"
)

func BenchmarkEventHeap(b *testing.B) {
	s := NewSimulator()
	r := rng.New(1)
	// Keep a standing population of 1000 events; measure push/pop.
	for i := 0; i < 1000; i++ {
		s.At(r.Float64(), func() {})
	}
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		t := s.Now() + r.Float64()*0.001
		s.At(t, func() { count++ })
		s.Run(s.events[0].time)
	}
}

func benchScheduler(b *testing.B, s Scheduler) {
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &Packet{ID: uint64(i), Size: 64 + r.Intn(1400), Class: r.Intn(3), Weight: 1}
		s.Enqueue(p)
		if i%2 == 1 {
			s.Dequeue()
			s.Dequeue()
		}
	}
}

func BenchmarkFIFO(b *testing.B) { benchScheduler(b, NewFIFO(0)) }
func BenchmarkSP(b *testing.B)   { benchScheduler(b, NewSP(3, 0)) }
func BenchmarkWRR(b *testing.B)  { benchScheduler(b, NewWRR([]int{1, 2, 3}, 0)) }
func BenchmarkDRR(b *testing.B)  { benchScheduler(b, NewDRR([]float64{1, 2, 3}, 1500, 0)) }
func BenchmarkWFQ(b *testing.B)  { benchScheduler(b, NewWFQ([]float64{1, 2, 3}, 0)) }

// BenchmarkDESFatTree16 measures raw DES throughput (events/sec) on the
// paper's FatTree16 workload shape.
func BenchmarkDESFatTree16(b *testing.B) {
	g := topo.FatTree(topo.FatTree16, topo.DefaultLAN)
	hosts := g.Hosts()
	var flows []topo.FlowDef
	for i, h := range hosts {
		flows = append(flows, topo.FlowDef{FlowID: i + 1, Src: h,
			Dst: hosts[(i+8)%len(hosts)]})
	}
	rt, err := g.Route(flows)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		net := Build(g, rt, NetConfig{Sched: SchedConfig{Kind: FIFO}, Echo: true})
		r := rng.New(uint64(i + 1))
		for _, f := range flows {
			gen := traffic.NewPoisson(1e5, traffic.ConstSize(800), r.Split())
			net.AddFlow(f.Src, Flow{FlowID: f.FlowID, Dst: f.Dst, Source: gen, Stop: 0.001})
		}
		net.Run(0.003)
		events += net.Sim.Processed()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}
