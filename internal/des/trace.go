package des

import "sort"

// Visit records one packet's passage through one device: the paper's
// per-device ingress/egress packet traces, the unit of both PTM training
// data and packet-level visibility.
type Visit struct {
	PktID   uint64
	FlowID  int
	Device  int
	InPort  int
	OutPort int
	Size    int
	Class   int
	Weight  float64
	Proto   uint8
	Arrive  float64 // ingress time at the device
	Depart  float64 // egress (transmission complete) time; 0 when dropped
	Dropped bool
}

// Sojourn returns the device sojourn time (queueing + transmission).
func (v Visit) Sojourn() float64 { return v.Depart - v.Arrive }

// Collector accumulates per-device visits and per-host deliveries.
type Collector struct {
	ByDevice map[int][]Visit
	// Deliveries holds end-to-end records completed at hosts.
	Deliveries []Delivery
	// Drops counts dropped packets per device.
	Drops map[int]int

	// inFlight tracks visits between arrival and departure, keyed by
	// (device, packet ID). A packet is at one device at a time in a
	// single visit, so this key is unique.
	inFlight map[visitKey]Visit
}

type visitKey struct {
	device int
	pkt    uint64
}

// Delivery is an end-to-end record: one packet reaching its final
// destination host (or returning to its source on the echo leg).
type Delivery struct {
	PktID    uint64
	FlowID   int
	Src, Dst int
	SendTime float64
	RecvTime float64
	IsRTT    bool // true when this is the echo leg completing a round trip
	Hops     int
}

// Delay returns the measured end-to-end delay (one-way or round-trip
// depending on IsRTT).
func (d Delivery) Delay() float64 { return d.RecvTime - d.SendTime }

// NewCollector returns an empty trace collector.
func NewCollector() *Collector {
	return &Collector{
		ByDevice: make(map[int][]Visit),
		Drops:    make(map[int]int),
		inFlight: make(map[visitKey]Visit),
	}
}

func (c *Collector) arrive(v Visit) {
	if c == nil {
		return
	}
	c.inFlight[visitKey{v.Device, v.PktID}] = v
}

func (c *Collector) depart(device int, pkt uint64, t float64) {
	if c == nil {
		return
	}
	k := visitKey{device, pkt}
	v, ok := c.inFlight[k]
	if !ok {
		return
	}
	delete(c.inFlight, k)
	v.Depart = t
	c.ByDevice[device] = append(c.ByDevice[device], v)
}

func (c *Collector) drop(device int, pkt uint64) {
	if c == nil {
		return
	}
	k := visitKey{device, pkt}
	v, ok := c.inFlight[k]
	if !ok {
		return
	}
	delete(c.inFlight, k)
	v.Dropped = true
	c.ByDevice[device] = append(c.ByDevice[device], v)
	c.Drops[device]++
}

func (c *Collector) deliver(d Delivery) {
	if c == nil {
		return
	}
	c.Deliveries = append(c.Deliveries, d)
}

// DeviceVisits returns the completed visits of one device sorted by
// arrival time.
func (c *Collector) DeviceVisits(device int) []Visit {
	vs := append([]Visit(nil), c.ByDevice[device]...)
	sort.Slice(vs, func(i, j int) bool { return vs[i].Arrive < vs[j].Arrive })
	return vs
}

// Devices returns the device IDs with recorded visits, sorted.
func (c *Collector) Devices() []int {
	ids := make([]int, 0, len(c.ByDevice))
	for id := range c.ByDevice {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// TotalVisits returns the number of completed (non-dropped) visits.
func (c *Collector) TotalVisits() int {
	n := 0
	for _, vs := range c.ByDevice {
		for _, v := range vs {
			if !v.Dropped {
				n++
			}
		}
	}
	return n
}
