package des

import (
	"math"

	"deepqueuenet/internal/rng"
)

// REDConfig parameterizes Random Early Detection buffer management
// (Floyd & Jacobson): probabilistic early drops between MinTh and MaxTh
// on the EWMA queue length, hard drops above MaxTh. The paper lists
// buffer management among the TM mechanisms end-to-end estimators cannot
// support (§2.3); the black-box device model covers it the same way it
// covers schedulers — from traces.
type REDConfig struct {
	MinTh float64 // early-drop threshold (packets, on the average queue)
	MaxTh float64 // forced-drop threshold (packets)
	MaxP  float64 // drop probability at MaxTh
	Wq    float64 // EWMA weight for the average queue size
	// MarkECN marks ECN-capable packets (CE bit) on early detection
	// instead of dropping them; forced drops above MaxTh still drop.
	MarkECN bool
}

// withDefaults fills the classic recommended parameters.
func (c REDConfig) withDefaults() REDConfig {
	if c.MinTh <= 0 {
		c.MinTh = 5
	}
	if c.MaxTh <= c.MinTh {
		c.MaxTh = 3 * c.MinTh
	}
	if c.MaxP <= 0 {
		c.MaxP = 0.1
	}
	if c.Wq <= 0 {
		c.Wq = 0.002
	}
	return c
}

// redSched is a FIFO queue governed by RED admission.
type redSched struct {
	q     pktQueue
	cap   int // hard capacity backstop (<=0 unbounded)
	cfg   REDConfig
	r     *rng.Rand
	avg   float64 // EWMA of the queue length
	count int     // packets since the last early drop (uniformization)
}

// NewRED returns a RED-managed FIFO scheduler. capacity is a hard
// backstop beyond the RED thresholds (<= 0 for none).
func NewRED(capacity int, cfg REDConfig, r *rng.Rand) Scheduler {
	if r == nil {
		panic("des: RED needs a random source")
	}
	return &redSched{cap: capacity, cfg: cfg.withDefaults(), r: r, count: -1}
}

func (s *redSched) Enqueue(p *Packet) bool {
	if s.cap > 0 && s.q.len() >= s.cap {
		return false
	}
	// EWMA update on each arrival.
	s.avg = (1-s.cfg.Wq)*s.avg + s.cfg.Wq*float64(s.q.len())
	switch {
	case s.avg >= s.cfg.MaxTh:
		s.count = 0
		return false
	case s.avg >= s.cfg.MinTh:
		s.count++
		pb := s.cfg.MaxP * (s.avg - s.cfg.MinTh) / (s.cfg.MaxTh - s.cfg.MinTh)
		// Uniformized drop probability: pa = pb / (1 − count·pb).
		den := 1 - float64(s.count)*pb
		pa := 1.0
		if den > 0 {
			pa = math.Min(1, pb/den)
		}
		if s.r.Float64() < pa {
			s.count = 0
			if s.cfg.MarkECN && p.ECT {
				p.CE = true // mark instead of drop
				break
			}
			return false
		}
	default:
		s.count = -1
	}
	s.q.push(p)
	return true
}

func (s *redSched) Dequeue() *Packet   { return s.q.pop() }
func (s *redSched) Len() int           { return s.q.len() }
func (s *redSched) Bytes() int         { return s.q.bytes }
func (s *redSched) PerClassLen() []int { return []int{s.q.len()} }
func (s *redSched) Kind() SchedKind    { return FIFO }

// AvgQueue exposes the EWMA queue estimate (for tests and monitoring).
func (s *redSched) AvgQueue() float64 { return s.avg }
