package des

// Scheduler is the traffic-management discipline of one egress port.
// Enqueue returns false when buffer management drops the packet.
// Dequeue returns the next packet to transmit, or nil when idle.
// Implementations are single-threaded (driven by the Simulator loop).
type Scheduler interface {
	Enqueue(p *Packet) bool
	Dequeue() *Packet
	Len() int
	Bytes() int
	PerClassLen() []int
	Kind() SchedKind
}

// SchedKind enumerates the supported disciplines, in the one-hot encoding
// order the paper uses for the PTM scheduler feature (§4.1): SP, WRR, DRR,
// WFQ; FIFO is the single-queue baseline configuration.
type SchedKind int

// Scheduler kinds.
const (
	FIFO SchedKind = iota
	SP
	WRR
	DRR
	WFQ
)

// String returns the discipline name.
func (k SchedKind) String() string {
	switch k {
	case FIFO:
		return "FIFO"
	case SP:
		return "SP"
	case WRR:
		return "WRR"
	case DRR:
		return "DRR"
	case WFQ:
		return "WFQ"
	}
	return "?"
}

// pktQueue is a simple FIFO deque of packets.
type pktQueue struct {
	items []*Packet
	head  int
	bytes int
}

func (q *pktQueue) len() int { return len(q.items) - q.head }

func (q *pktQueue) push(p *Packet) {
	q.items = append(q.items, p)
	q.bytes += p.Size
}

func (q *pktQueue) peek() *Packet {
	if q.len() == 0 {
		return nil
	}
	return q.items[q.head]
}

func (q *pktQueue) pop() *Packet {
	if q.len() == 0 {
		return nil
	}
	p := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	q.bytes -= p.Size
	if q.head > 64 && q.head*2 >= len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	return p
}

// fifoSched is a single drop-tail queue.
type fifoSched struct {
	q   pktQueue
	cap int // max queued packets; <=0 means unbounded
}

// NewFIFO returns a FIFO scheduler with the given per-queue packet
// capacity (<= 0 for unbounded).
func NewFIFO(capacity int) Scheduler { return &fifoSched{cap: capacity} }

func (f *fifoSched) Enqueue(p *Packet) bool {
	if f.cap > 0 && f.q.len() >= f.cap {
		return false
	}
	f.q.push(p)
	return true
}

func (f *fifoSched) Dequeue() *Packet   { return f.q.pop() }
func (f *fifoSched) Len() int           { return f.q.len() }
func (f *fifoSched) Bytes() int         { return f.q.bytes }
func (f *fifoSched) PerClassLen() []int { return []int{f.q.len()} }
func (f *fifoSched) Kind() SchedKind    { return FIFO }

// classedBase holds the per-class queues shared by SP/WRR/DRR/WFQ.
type classedBase struct {
	queues []pktQueue
	cap    int // per-class packet capacity; <=0 unbounded
}

func newClassedBase(classes, capacity int) classedBase {
	return classedBase{queues: make([]pktQueue, classes), cap: capacity}
}

func (c *classedBase) class(p *Packet) int {
	k := p.Class
	if k < 0 {
		k = 0
	}
	if k >= len(c.queues) {
		k = len(c.queues) - 1
	}
	return k
}

func (c *classedBase) enqueue(p *Packet) (int, bool) {
	k := c.class(p)
	if c.cap > 0 && c.queues[k].len() >= c.cap {
		return k, false
	}
	c.queues[k].push(p)
	return k, true
}

func (c *classedBase) Len() int {
	n := 0
	for i := range c.queues {
		n += c.queues[i].len()
	}
	return n
}

func (c *classedBase) Bytes() int {
	n := 0
	for i := range c.queues {
		n += c.queues[i].bytes
	}
	return n
}

func (c *classedBase) PerClassLen() []int {
	out := make([]int, len(c.queues))
	for i := range c.queues {
		out[i] = c.queues[i].len()
	}
	return out
}

// spSched is strict priority: class 0 is the highest priority and starves
// lower classes (§B.1.2's g_k for SP).
type spSched struct{ classedBase }

// NewSP returns a strict-priority scheduler over the given class count.
func NewSP(classes, capacity int) Scheduler {
	return &spSched{newClassedBase(classes, capacity)}
}

func (s *spSched) Enqueue(p *Packet) bool { _, ok := s.enqueue(p); return ok }

func (s *spSched) Dequeue() *Packet {
	for i := range s.queues {
		if p := s.queues[i].pop(); p != nil {
			return p
		}
	}
	return nil
}

func (s *spSched) Kind() SchedKind { return SP }

// wrrSched is weighted round robin: each round, queue k may send up to
// weight[k] packets; empty queues are skipped (work conservation).
type wrrSched struct {
	classedBase
	weights []int
	cur     int   // queue index being served this round
	credit  []int // packets remaining for each queue this round
}

// NewWRR returns a weighted-round-robin scheduler. Weights must be
// positive integers, one per class.
func NewWRR(weights []int, capacity int) Scheduler {
	w := &wrrSched{classedBase: newClassedBase(len(weights), capacity),
		weights: append([]int(nil), weights...),
		credit:  make([]int, len(weights))}
	for i, v := range weights {
		if v <= 0 {
			panic("des: WRR weight must be positive")
		}
		w.credit[i] = v
	}
	return w
}

func (w *wrrSched) Enqueue(p *Packet) bool { _, ok := w.enqueue(p); return ok }

func (w *wrrSched) Dequeue() *Packet {
	if w.Len() == 0 {
		return nil
	}
	n := len(w.queues)
	for scanned := 0; scanned < 2*n; scanned++ {
		q := &w.queues[w.cur]
		if q.len() > 0 && w.credit[w.cur] > 0 {
			w.credit[w.cur]--
			return q.pop()
		}
		// Exhausted or empty: refresh credit and advance.
		w.credit[w.cur] = w.weights[w.cur]
		w.cur = (w.cur + 1) % n
	}
	// All queues scanned twice with refreshed credit — serve any head.
	for i := range w.queues {
		if p := w.queues[i].pop(); p != nil {
			return p
		}
	}
	return nil
}

func (w *wrrSched) Kind() SchedKind { return WRR }

// drrSched is deficit round robin (Shreedhar & Varghese). The quantum of
// class k is weight[k]·quantumUnit bytes.
type drrSched struct {
	classedBase
	quanta  []int
	deficit []int
	cur     int
	fresh   bool // whether cur has already received its quantum this visit
}

// NewDRR returns a deficit-round-robin scheduler. quantumUnit is the byte
// quantum granted per unit weight per round (commonly the MTU).
func NewDRR(weights []float64, quantumUnit int, capacity int) Scheduler {
	d := &drrSched{classedBase: newClassedBase(len(weights), capacity),
		quanta:  make([]int, len(weights)),
		deficit: make([]int, len(weights))}
	for i, w := range weights {
		if w <= 0 {
			panic("des: DRR weight must be positive")
		}
		d.quanta[i] = int(w * float64(quantumUnit))
		if d.quanta[i] <= 0 {
			d.quanta[i] = 1
		}
	}
	return d
}

func (d *drrSched) Enqueue(p *Packet) bool { _, ok := d.enqueue(p); return ok }

func (d *drrSched) Dequeue() *Packet {
	if d.Len() == 0 {
		return nil
	}
	n := len(d.queues)
	for {
		q := &d.queues[d.cur]
		if q.len() == 0 {
			d.deficit[d.cur] = 0 // idle queues lose their deficit
			d.cur = (d.cur + 1) % n
			d.fresh = false
			continue
		}
		if !d.fresh {
			d.deficit[d.cur] += d.quanta[d.cur]
			d.fresh = true
		}
		head := q.peek()
		if head.Size <= d.deficit[d.cur] {
			d.deficit[d.cur] -= head.Size
			return q.pop()
		}
		d.cur = (d.cur + 1) % n
		d.fresh = false
	}
}

func (d *drrSched) Kind() SchedKind { return DRR }

// wfqSched is packetized weighted fair queueing implemented with
// start-time fair queueing virtual finish tags: on enqueue, a packet in
// class k gets tag max(V, lastFinish_k) + size/weight_k; Dequeue serves
// the smallest head tag and advances V to it.
type wfqSched struct {
	classedBase
	weights    []float64
	tags       []tagQueue
	lastFinish []float64
	vtime      float64
}

type tagQueue struct {
	items []float64
	head  int
}

func (t *tagQueue) push(v float64) { t.items = append(t.items, v) }
func (t *tagQueue) peek() float64  { return t.items[t.head] }
func (t *tagQueue) pop() float64 {
	v := t.items[t.head]
	t.head++
	if t.head > 64 && t.head*2 >= len(t.items) {
		t.items = append(t.items[:0], t.items[t.head:]...)
		t.head = 0
	}
	return v
}
func (t *tagQueue) len() int { return len(t.items) - t.head }

// NewWFQ returns a weighted-fair-queueing scheduler with the given
// positive per-class weights.
func NewWFQ(weights []float64, capacity int) Scheduler {
	w := &wfqSched{classedBase: newClassedBase(len(weights), capacity),
		weights:    append([]float64(nil), weights...),
		tags:       make([]tagQueue, len(weights)),
		lastFinish: make([]float64, len(weights))}
	for _, v := range weights {
		if v <= 0 {
			panic("des: WFQ weight must be positive")
		}
	}
	return w
}

func (w *wfqSched) Enqueue(p *Packet) bool {
	k, ok := w.enqueue(p)
	if !ok {
		return false
	}
	start := w.vtime
	if w.lastFinish[k] > start {
		start = w.lastFinish[k]
	}
	finish := start + float64(p.Size)/w.weights[k]
	w.lastFinish[k] = finish
	w.tags[k].push(finish)
	return true
}

func (w *wfqSched) Dequeue() *Packet {
	best := -1
	bestTag := 0.0
	for i := range w.queues {
		if w.queues[i].len() == 0 {
			continue
		}
		tag := w.tags[i].peek()
		if best < 0 || tag < bestTag {
			best, bestTag = i, tag
		}
	}
	if best < 0 {
		return nil
	}
	w.vtime = bestTag
	w.tags[best].pop()
	return w.queues[best].pop()
}

func (w *wfqSched) Kind() SchedKind { return WFQ }

// SchedConfig describes how to construct a scheduler; it is the
// device-configuration surface SInit consumes.
type SchedConfig struct {
	Kind        SchedKind
	Classes     int       // number of classes (SP)
	Weights     []float64 // per-class weights (WRR/DRR/WFQ)
	QuantumUnit int       // DRR quantum per unit weight (bytes)
	Capacity    int       // per-queue packet capacity (<=0 unbounded)
}

// Build constructs the scheduler described by the config.
func (c SchedConfig) Build() Scheduler {
	switch c.Kind {
	case FIFO:
		return NewFIFO(c.Capacity)
	case SP:
		n := c.Classes
		if n <= 0 {
			n = len(c.Weights)
		}
		if n <= 0 {
			n = 1
		}
		return NewSP(n, c.Capacity)
	case WRR:
		w := make([]int, len(c.Weights))
		for i, v := range c.Weights {
			w[i] = int(v + 0.5)
			if w[i] <= 0 {
				w[i] = 1
			}
		}
		if len(w) == 0 {
			w = []int{1}
		}
		return NewWRR(w, c.Capacity)
	case DRR:
		qu := c.QuantumUnit
		if qu <= 0 {
			qu = 1500
		}
		ws := c.Weights
		if len(ws) == 0 {
			ws = []float64{1}
		}
		return NewDRR(ws, qu, c.Capacity)
	case WFQ:
		ws := c.Weights
		if len(ws) == 0 {
			ws = []float64{1}
		}
		return NewWFQ(ws, c.Capacity)
	}
	panic("des: unknown scheduler kind")
}

// NumClasses returns the class count of the configuration.
func (c SchedConfig) NumClasses() int {
	switch c.Kind {
	case FIFO:
		return 1
	case SP:
		if c.Classes > 0 {
			return c.Classes
		}
		if len(c.Weights) > 0 {
			return len(c.Weights)
		}
		return 1
	default:
		if len(c.Weights) > 0 {
			return len(c.Weights)
		}
		return 1
	}
}
