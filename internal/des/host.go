package des

// ArrivalSource produces a flow's packet arrivals: each call returns the
// gap to the next packet (seconds) and that packet's size in bytes.
// internal/traffic implements this interface for Poisson, On-Off, MAP,
// and trace-replay processes.
type ArrivalSource interface {
	NextArrival() (gap float64, size int)
}

// Flow describes one unidirectional packet flow injected at a host.
type Flow struct {
	FlowID int
	Dst    int // destination host ID
	Class  int
	Weight float64
	Proto  uint8
	Source ArrivalSource
	Start  float64 // first-arrival reference time
	Stop   float64 // no arrivals at or after this time (0 = no limit)
}

// Host is a traffic endpoint. It injects flows through a serializing
// egress port, sinks packets addressed to it, and (when Echo is set)
// reflects non-echo packets back to their source so the collector can
// record true round-trip times.
type Host struct {
	sim   *Simulator
	ID    int
	Echo  bool
	trace *Collector

	egress *portServer
	peer   portRef
	nextID *uint64

	// Stray counts packets that arrived at the wrong host (a routing
	// bug indicator asserted by tests).
	Stray int
}

// NewHost creates a host whose egress transmits at rateBps bits/s.
// nextID is the shared packet-ID counter of the network.
func NewHost(sim *Simulator, id int, rateBps float64, echo bool, trace *Collector, nextID *uint64) *Host {
	if rateBps <= 0 {
		panic("des: host rate must be positive")
	}
	return &Host{sim: sim, ID: id, Echo: echo, trace: trace,
		egress: &portServer{sched: NewFIFO(0), rateBps: rateBps},
		nextID: nextID}
}

// Connect attaches the host's egress to node n's ingress port inPort.
func (h *Host) Connect(n Node, inPort int) { h.peer = portRef{node: n, inPort: inPort} }

// AddFlow starts injecting the flow's packets.
func (h *Host) AddFlow(f Flow) {
	if f.Source == nil {
		panic("des: flow without arrival source")
	}
	var emit func()
	t := f.Start
	emit = func() {
		gap, size := f.Source.NextArrival()
		t += gap
		if f.Stop > 0 && t >= f.Stop {
			return
		}
		h.sim.At(t, func() {
			*h.nextID++
			p := &Packet{
				ID: *h.nextID, FlowID: f.FlowID, Size: size, Proto: f.Proto,
				Class: f.Class, Weight: f.Weight,
				Src: h.ID, Dst: f.Dst, CreatedAt: h.sim.Now(),
			}
			h.send(p)
			emit()
		})
	}
	emit()
}

// send enqueues a packet at the host's egress port.
func (h *Host) send(p *Packet) {
	if !h.egress.sched.Enqueue(p) {
		return
	}
	if !h.egress.busy {
		h.startTransmission()
	}
}

func (h *Host) startTransmission() {
	p := h.egress.sched.Dequeue()
	if p == nil {
		h.egress.busy = false
		return
	}
	h.egress.busy = true
	txTime := float64(p.Size*8) / h.egress.rateBps
	h.sim.After(txTime, func() {
		if h.peer.node != nil {
			h.peer.node.Receive(p, h.peer.inPort)
		}
		h.startTransmission()
	})
}

// Receive implements Node: sink or reflect arriving packets.
func (h *Host) Receive(p *Packet, inPort int) {
	if p.Dst != h.ID {
		h.Stray++
		return
	}
	if p.IsEcho {
		h.trace.deliver(Delivery{
			PktID: p.ID, FlowID: p.FlowID, Src: p.Src, Dst: p.Dst,
			SendTime: p.CreatedAt, RecvTime: h.sim.Now(), IsRTT: true,
			Hops: p.Hops,
		})
		return
	}
	h.trace.deliver(Delivery{
		PktID: p.ID, FlowID: p.FlowID, Src: p.Src, Dst: p.Dst,
		SendTime: p.CreatedAt, RecvTime: h.sim.Now(), IsRTT: false,
		Hops: p.Hops,
	})
	if h.Echo {
		// Reflect: same packet identity, reversed direction; CreatedAt
		// keeps the original send time so the echo delivery records the
		// full round trip.
		echo := *p
		echo.Src, echo.Dst = p.Dst, p.Src
		echo.IsEcho = true
		h.send(&echo)
	}
}
