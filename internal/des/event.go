// Package des is a packet-level discrete event simulator. It plays the
// role of the paper's ns.py: it generates single-device training traces
// for the PTM models and whole-network ground truth for every evaluation
// experiment. It supports hosts, multi-port switches with pluggable
// traffic-management schedulers (FIFO, SP, WRR, DRR, WFQ), drop-tail
// buffer management, propagation-delay links, echo hosts for RTT
// measurement, and per-device ingress/egress trace capture.
package des

import "container/heap"

// event is one scheduled callback.
type event struct {
	time float64
	seq  uint64 // FIFO tie-break for simultaneous events
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Simulator owns the event loop. It is single-threaded: all node callbacks
// run sequentially in simulated-time order.
type Simulator struct {
	now    float64
	seq    uint64
	events eventHeap
	count  uint64 // processed events
}

// NewSimulator returns an empty simulator at time 0.
func NewSimulator() *Simulator { return &Simulator{} }

// Now returns the current simulated time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.count }

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a causality bug.
func (s *Simulator) At(t float64, fn func()) {
	if t < s.now {
		panic("des: event scheduled in the past")
	}
	s.seq++
	heap.Push(&s.events, event{time: t, seq: s.seq, fn: fn})
}

// After schedules fn d seconds from now.
func (s *Simulator) After(d float64, fn func()) { s.At(s.now+d, fn) }

// Run processes events until the queue is empty or simulated time exceeds
// until. Events scheduled exactly at until still run.
func (s *Simulator) Run(until float64) {
	for len(s.events) > 0 {
		if s.events[0].time > until {
			return
		}
		e := heap.Pop(&s.events).(event)
		s.now = e.time
		s.count++
		e.fn()
	}
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }
