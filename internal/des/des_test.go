package des

import (
	"math"
	"testing"
	"testing/quick"

	"deepqueuenet/internal/rng"
)

func TestEventOrdering(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
}

func TestEventTieBreakFIFO(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(1, func() { order = append(order, i) })
	}
	s.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", order)
		}
	}
}

func TestRunHonorsDeadline(t *testing.T) {
	s := NewSimulator()
	ran := false
	s.At(5, func() { ran = true })
	s.Run(4)
	if ran {
		t.Fatal("event beyond deadline executed")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d", s.Pending())
	}
	s.Run(5)
	if !ran {
		t.Fatal("event at deadline not executed")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := NewSimulator()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run(20)
}

// --- scheduler unit tests ---

func pkt(id uint64, size, class int) *Packet {
	return &Packet{ID: id, Size: size, Class: class}
}

func TestFIFOOrderAndDrop(t *testing.T) {
	f := NewFIFO(2)
	if !f.Enqueue(pkt(1, 100, 0)) || !f.Enqueue(pkt(2, 100, 0)) {
		t.Fatal("enqueue under capacity failed")
	}
	if f.Enqueue(pkt(3, 100, 0)) {
		t.Fatal("over-capacity enqueue accepted")
	}
	if p := f.Dequeue(); p.ID != 1 {
		t.Fatalf("dequeue %d", p.ID)
	}
	if p := f.Dequeue(); p.ID != 2 {
		t.Fatalf("dequeue %d", p.ID)
	}
	if f.Dequeue() != nil {
		t.Fatal("empty dequeue not nil")
	}
}

func TestFIFOPreservesOrderProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		f := NewFIFO(0)
		var want []uint64
		id := uint64(0)
		for op := 0; op < 200; op++ {
			if r.Float64() < 0.6 {
				id++
				f.Enqueue(pkt(id, 64, 0))
				want = append(want, id)
			} else if len(want) > 0 {
				p := f.Dequeue()
				if p == nil || p.ID != want[0] {
					return false
				}
				want = want[1:]
			}
		}
		return f.Len() == len(want)
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSPStrictness(t *testing.T) {
	s := NewSP(3, 0)
	s.Enqueue(pkt(1, 100, 2))
	s.Enqueue(pkt(2, 100, 0))
	s.Enqueue(pkt(3, 100, 1))
	s.Enqueue(pkt(4, 100, 0))
	order := []uint64{2, 4, 3, 1} // class 0 first (FIFO within class)
	for _, want := range order {
		if p := s.Dequeue(); p.ID != want {
			t.Fatalf("SP dequeue %d, want %d", p.ID, want)
		}
	}
}

func TestWRRProportions(t *testing.T) {
	w := NewWRR([]int{1, 3}, 0)
	// Saturate both queues.
	for i := uint64(0); i < 400; i++ {
		w.Enqueue(&Packet{ID: i, Size: 100, Class: int(i % 2)})
	}
	counts := [2]int{}
	for i := 0; i < 200; i++ {
		p := w.Dequeue()
		counts[p.Class]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("WRR ratio %v, want ~3", ratio)
	}
}

func TestWRRWorkConserving(t *testing.T) {
	w := NewWRR([]int{1, 9}, 0)
	// Only the low-weight queue has packets: it must still be served.
	for i := uint64(0); i < 10; i++ {
		w.Enqueue(&Packet{ID: i, Size: 100, Class: 0})
	}
	for i := 0; i < 10; i++ {
		if w.Dequeue() == nil {
			t.Fatal("WRR starved a backlogged queue")
		}
	}
}

func TestDRRBytesProportions(t *testing.T) {
	d := NewDRR([]float64{1, 2}, 500, 0)
	for i := uint64(0); i < 600; i++ {
		d.Enqueue(&Packet{ID: i, Size: 300, Class: int(i % 2)})
	}
	bytes := [2]int{}
	for i := 0; i < 300; i++ {
		p := d.Dequeue()
		bytes[p.Class] += p.Size
	}
	ratio := float64(bytes[1]) / float64(bytes[0])
	if math.Abs(ratio-2) > 0.25 {
		t.Fatalf("DRR byte ratio %v, want ~2", ratio)
	}
}

func TestDRRHandlesOversizePackets(t *testing.T) {
	// Packet larger than one quantum must still eventually be served.
	d := NewDRR([]float64{1}, 100, 0)
	d.Enqueue(&Packet{ID: 1, Size: 450, Class: 0})
	if p := d.Dequeue(); p == nil || p.ID != 1 {
		t.Fatal("DRR failed to accumulate deficit for large packet")
	}
}

func TestWFQWeightedShares(t *testing.T) {
	w := NewWFQ([]float64{1, 4}, 0)
	for i := uint64(0); i < 1000; i++ {
		w.Enqueue(&Packet{ID: i, Size: 200, Class: int(i % 2)})
	}
	bytes := [2]int{}
	for i := 0; i < 500; i++ {
		p := w.Dequeue()
		bytes[p.Class] += p.Size
	}
	ratio := float64(bytes[1]) / float64(bytes[0])
	if math.Abs(ratio-4) > 0.6 {
		t.Fatalf("WFQ byte ratio %v, want ~4", ratio)
	}
}

func TestWFQWorkConserving(t *testing.T) {
	w := NewWFQ([]float64{1, 99}, 0)
	for i := uint64(0); i < 5; i++ {
		w.Enqueue(&Packet{ID: i, Size: 100, Class: 0})
	}
	for i := 0; i < 5; i++ {
		if w.Dequeue() == nil {
			t.Fatal("WFQ starved the only backlogged queue")
		}
	}
}

func TestClassedCapacityDrops(t *testing.T) {
	s := NewSP(2, 1)
	if !s.Enqueue(pkt(1, 100, 0)) {
		t.Fatal("first enqueue failed")
	}
	if s.Enqueue(pkt(2, 100, 0)) {
		t.Fatal("second enqueue in class 0 should drop")
	}
	if !s.Enqueue(pkt(3, 100, 1)) {
		t.Fatal("other class should have room")
	}
}

func TestClassClamping(t *testing.T) {
	s := NewSP(2, 0)
	s.Enqueue(pkt(1, 100, 7))  // clamps to class 1
	s.Enqueue(pkt(2, 100, -3)) // clamps to class 0
	lens := s.PerClassLen()
	if lens[0] != 1 || lens[1] != 1 {
		t.Fatalf("class clamping: %v", lens)
	}
}

func TestSchedConfigBuild(t *testing.T) {
	kinds := []SchedConfig{
		{Kind: FIFO},
		{Kind: SP, Classes: 3},
		{Kind: WRR, Weights: []float64{1, 2}},
		{Kind: DRR, Weights: []float64{1, 2}, QuantumUnit: 1500},
		{Kind: WFQ, Weights: []float64{1, 2, 3}},
	}
	wantClasses := []int{1, 3, 2, 2, 3}
	for i, c := range kinds {
		s := c.Build()
		if s.Kind() != c.Kind {
			t.Fatalf("kind %v built %v", c.Kind, s.Kind())
		}
		if got := c.NumClasses(); got != wantClasses[i] {
			t.Fatalf("%v NumClasses %d, want %d", c.Kind, got, wantClasses[i])
		}
		if got := len(s.PerClassLen()); got != wantClasses[i] {
			t.Fatalf("%v PerClassLen %d, want %d", c.Kind, got, wantClasses[i])
		}
	}
}

// Property: under random enqueue/dequeue sequences, every multi-class
// scheduler conserves packets per class and never emits nil while
// backlogged.
func TestSchedulerConservationProperty(t *testing.T) {
	build := func(kind SchedKind) Scheduler {
		switch kind {
		case SP:
			return NewSP(3, 0)
		case WRR:
			return NewWRR([]int{1, 2, 3}, 0)
		case DRR:
			return NewDRR([]float64{1, 2, 3}, 1000, 0)
		case WFQ:
			return NewWFQ([]float64{1, 2, 3}, 0)
		}
		return NewFIFO(0)
	}
	for _, kind := range []SchedKind{FIFO, SP, WRR, DRR, WFQ} {
		err := quick.Check(func(seed uint64) bool {
			r := rng.New(seed)
			s := build(kind)
			in := make([]int, 3)
			out := make([]int, 3)
			id := uint64(0)
			for op := 0; op < 300; op++ {
				if r.Float64() < 0.6 {
					id++
					c := r.Intn(3)
					p := &Packet{ID: id, Size: 64 + r.Intn(1400), Class: c, Weight: float64(c + 1)}
					if s.Enqueue(p) {
						in[p.Class]++
					}
				} else {
					p := s.Dequeue()
					if p == nil {
						if s.Len() != 0 {
							return false // nil while backlogged
						}
						continue
					}
					out[p.Class]++
				}
			}
			// Drain completely.
			for s.Len() > 0 {
				p := s.Dequeue()
				if p == nil {
					return false
				}
				out[p.Class]++
			}
			for c := 0; c < 3; c++ {
				if in[c] != out[c] {
					return false
				}
			}
			return s.Dequeue() == nil
		}, &quick.Config{MaxCount: 20})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}
