package des

import (
	"testing"

	"deepqueuenet/internal/topo"
	"deepqueuenet/internal/traffic"
)

func TestHostStrayCounting(t *testing.T) {
	sim := NewSimulator()
	trace := NewCollector()
	var id uint64
	h := NewHost(sim, 7, 1e9, false, trace, &id)
	h.Receive(&Packet{ID: 1, Dst: 99}, 0)
	if h.Stray != 1 {
		t.Fatalf("stray %d", h.Stray)
	}
	if len(trace.Deliveries) != 0 {
		t.Fatal("stray packet delivered")
	}
}

func TestHostEchoSwapsDirection(t *testing.T) {
	sim := NewSimulator()
	trace := NewCollector()
	var id uint64
	h := NewHost(sim, 7, 1e9, true, trace, &id)
	sink := &captureNode{}
	h.Connect(sink, 0)
	h.Receive(&Packet{ID: 5, Src: 3, Dst: 7, FlowID: 2, Size: 100, CreatedAt: 1.5}, 0)
	sim.Run(10)
	if len(sink.got) != 1 {
		t.Fatalf("echo not emitted: %d", len(sink.got))
	}
	echo := sink.got[0]
	if !echo.IsEcho || echo.Src != 7 || echo.Dst != 3 {
		t.Fatalf("echo fields %+v", echo)
	}
	if echo.CreatedAt != 1.5 {
		t.Fatalf("echo must keep the original send time, got %v", echo.CreatedAt)
	}
	// The one-way delivery was recorded before echoing.
	if len(trace.Deliveries) != 1 || trace.Deliveries[0].IsRTT {
		t.Fatalf("deliveries %+v", trace.Deliveries)
	}
}

func TestHostRecordsRTTOnEchoReturn(t *testing.T) {
	sim := NewSimulator()
	trace := NewCollector()
	var id uint64
	h := NewHost(sim, 3, 1e9, true, trace, &id)
	h.Receive(&Packet{ID: 5, Src: 9, Dst: 3, CreatedAt: 1.0, IsEcho: true}, 0)
	if len(trace.Deliveries) != 1 || !trace.Deliveries[0].IsRTT {
		t.Fatalf("deliveries %+v", trace.Deliveries)
	}
}

type captureNode struct{ got []*Packet }

func (c *captureNode) Receive(p *Packet, inPort int) { c.got = append(c.got, p) }

func TestHostFlowRequiresSource(t *testing.T) {
	sim := NewSimulator()
	trace := NewCollector()
	var id uint64
	h := NewHost(sim, 1, 1e9, false, trace, &id)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for flow without source")
		}
	}()
	h.AddFlow(Flow{FlowID: 1, Dst: 2})
}

func TestBuildRejectsMultiPortHost(t *testing.T) {
	g := topo.New()
	h := g.AddNode(topo.Host, "h")
	s1 := g.AddNode(topo.Switch, "s1")
	s2 := g.AddNode(topo.Switch, "s2")
	g.Connect(h, s1, 1e9, 1e-6)
	g.Connect(h, s2, 1e9, 1e-6) // second host port: invalid
	g.Connect(s1, s2, 1e9, 1e-6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for multi-port host")
		}
	}()
	Build(g, &topo.Routing{NextPort: map[int]map[topo.PortFlowKey]int{}}, NetConfig{Sched: SchedConfig{Kind: FIFO}})
}

func TestHostEgressSerializesBursts(t *testing.T) {
	// Replay emits 3 back-to-back packets; the egress must space them by
	// one transmission time each on the wire.
	g := topo.Star(2, topo.LinkParams{RateBps: 1e9, Delay: 0})
	hosts := g.Hosts()
	flows := []topo.FlowDef{{FlowID: 1, Src: hosts[0], Dst: hosts[1]}}
	rt, _ := g.Route(flows)
	net := Build(g, rt, NetConfig{Sched: SchedConfig{Kind: FIFO}})
	gaps := []float64{1e-6, 0, 0}
	sizes := []int{1000, 1000, 1000}
	net.AddFlow(hosts[0], Flow{FlowID: 1, Dst: hosts[1],
		Source: traffic.NewReplay(gaps, sizes, false)})
	net.Run(1)

	sw := g.Switches()[0]
	visits := net.Trace.DeviceVisits(sw)
	if len(visits) != 3 {
		t.Fatalf("%d visits", len(visits))
	}
	tx := 1000 * 8 / 1e9
	for i := 1; i < len(visits); i++ {
		gap := visits[i].Arrive - visits[i-1].Arrive
		if gap < tx-1e-12 {
			t.Fatalf("burst not serialized: arrival gap %v < tx %v", gap, tx)
		}
	}
}
