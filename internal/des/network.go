package des

import (
	"fmt"

	"deepqueuenet/internal/metrics"
	"deepqueuenet/internal/topo"
)

// Network instantiates a topo.Graph as a live DES network: hosts,
// switches, and one Link device per directed edge, wired port-to-port
// exactly as the topology describes.
type Network struct {
	Sim      *Simulator
	Trace    *Collector
	Graph    *topo.Graph
	Routing  *topo.Routing
	Hosts    map[int]*Host   // keyed by topo node ID
	Switches map[int]*Switch // keyed by topo node ID
	// LinkID maps (node, port) to the directed link device carrying
	// traffic out of that port.
	LinkID map[[2]int]int

	nextPktID uint64
}

// NetConfig configures network instantiation.
type NetConfig struct {
	Sched SchedConfig
	Echo  bool // hosts reflect packets for RTT measurement
	// SchedOverride, if set, returns a per-switch scheduler config
	// (return ok=false to use the default).
	SchedOverride func(switchID int) (SchedConfig, bool)
}

// Build wires a DES network for graph g with routing rt.
func Build(g *topo.Graph, rt *topo.Routing, cfg NetConfig) *Network {
	sim := NewSimulator()
	trace := NewCollector()
	n := &Network{
		Sim: sim, Trace: trace, Graph: g, Routing: rt,
		Hosts:    make(map[int]*Host),
		Switches: make(map[int]*Switch),
		LinkID:   make(map[[2]int]int),
	}
	// Device ID space: topo node IDs for hosts/switches, link devices
	// numbered after them.
	linkID := g.NumNodes()

	for id, kind := range g.Kinds {
		switch kind {
		case topo.Host:
			if g.Degree(id) != 1 {
				panic(fmt.Sprintf("des: host %d must have exactly one port, has %d", id, g.Degree(id)))
			}
			n.Hosts[id] = NewHost(sim, id, g.Ports[id][0].RateBps, cfg.Echo, trace, &n.nextPktID)
		case topo.Switch:
			rates := make([]float64, g.Degree(id))
			for p, port := range g.Ports[id] {
				rates[p] = port.RateBps
			}
			sc := cfg.Sched
			if cfg.SchedOverride != nil {
				if o, ok := cfg.SchedOverride(id); ok {
					sc = o
				}
			}
			sw := NewSwitch(sim, id, rates, sc, trace)
			swID := id
			sw.Forward = func(flowID, inPort int) int {
				return rt.Lookup(swID, flowID, inPort)
			}
			n.Switches[id] = sw
		}
	}

	// One Link device per directed edge (node, port) -> peer.
	for id := range g.Kinds {
		for p, port := range g.Ports[id] {
			l := NewLink(sim, linkID, port.Delay, trace)
			n.LinkID[[2]int{id, p}] = linkID
			linkID++
			// Link delivers into the peer's ingress port.
			switch g.Kinds[port.Peer] {
			case topo.Host:
				l.Connect(n.Hosts[port.Peer], port.PeerPort)
			case topo.Switch:
				l.Connect(n.Switches[port.Peer], port.PeerPort)
			}
			// Attach the link to the emitting side.
			switch g.Kinds[id] {
			case topo.Host:
				n.Hosts[id].Connect(l, 0)
			case topo.Switch:
				n.Switches[id].ConnectPort(p, l, 0)
			}
		}
	}
	return n
}

// AddFlow injects a flow at its source host.
func (n *Network) AddFlow(src int, f Flow) {
	h, ok := n.Hosts[src]
	if !ok {
		panic(fmt.Sprintf("des: node %d is not a host", src))
	}
	h.AddFlow(f)
}

// Run advances simulated time to until.
func (n *Network) Run(until float64) { n.Sim.Run(until) }

// PathKey formats the per-path sample key used by metrics.Compare.
func PathKey(src, dst int) string { return fmt.Sprintf("%d->%d", src, dst) }

// PathDelays extracts per-path delay samples from the recorded
// deliveries. With rtt true it collects round-trip (echo-leg) records;
// otherwise one-way deliveries. Samples are keyed by forward-direction
// source and destination.
func (n *Network) PathDelays(rtt bool) metrics.PathSamples {
	out := metrics.PathSamples{}
	for _, d := range n.Trace.Deliveries {
		if d.IsRTT != rtt {
			continue
		}
		src, dst := d.Src, d.Dst
		if rtt {
			// Echo-leg records are addressed back to the original
			// source; restore the forward orientation.
			src, dst = d.Dst, d.Src
		}
		k := PathKey(src, dst)
		out[k] = append(out[k], d.Delay())
	}
	return out
}

// StrayCount sums packets that arrived at a wrong host (routing errors).
func (n *Network) StrayCount() int {
	total := 0
	for _, h := range n.Hosts {
		total += h.Stray
	}
	return total
}

// QueueMonitor samples per-class system occupancy (queued + in service)
// of one switch egress port at a fixed interval, for the Appendix B
// queue-length CDF comparison (Fig. 14).
type QueueMonitor struct {
	Samples [][]int // one snapshot per tick: per-class occupancy
}

// MonitorQueue starts sampling (switch, port) every interval seconds
// until the simulation ends.
func (n *Network) MonitorQueue(switchID, port int, interval float64) *QueueMonitor {
	m := &QueueMonitor{}
	sw := n.Switches[switchID]
	var tick func()
	tick = func() {
		m.Samples = append(m.Samples, sw.Occupancy(port))
		n.Sim.After(interval, tick)
	}
	n.Sim.After(interval, tick)
	return m
}

// ClassLens returns the sampled queue lengths of one class as float64s.
func (m *QueueMonitor) ClassLens(class int) []float64 {
	out := make([]float64, 0, len(m.Samples))
	for _, s := range m.Samples {
		if class < len(s) {
			out = append(out, float64(s[class]))
		}
	}
	return out
}
