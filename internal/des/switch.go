package des

import "fmt"

// ForwardFunc is the paper's forwarding-table abstraction (Eq. 6): it maps
// (flow ID, ingress port) to the egress port. Returning a negative port
// drops the packet (no route).
type ForwardFunc func(flowID, inPort int) int

// Switch is a K-port store-and-forward device. Each egress port has a
// transmission server draining a Scheduler at the port line rate; the
// sojourn a packet experiences between ingress arrival and transmission
// completion is exactly what the PTM learns to predict.
type Switch struct {
	sim      *Simulator
	ID       int
	NumPorts int
	Forward  ForwardFunc
	trace    *Collector

	egress []*portServer
	peers  []portRef
}

// portServer serializes packets of one egress port at rate bits/sec.
type portServer struct {
	sched   Scheduler
	rateBps float64
	busy    bool
	serving *Packet // packet currently on the wire (nil when idle)
}

// NewSwitch creates a switch with one port per entry of rates. Each
// egress port gets its own scheduler built from schedCfg and transmits at
// its port's rate in bits/s.
func NewSwitch(sim *Simulator, id int, rates []float64, schedCfg SchedConfig, trace *Collector) *Switch {
	if len(rates) == 0 {
		panic("des: switch needs at least one port")
	}
	numPorts := len(rates)
	sw := &Switch{sim: sim, ID: id, NumPorts: numPorts, trace: trace,
		egress: make([]*portServer, numPorts),
		peers:  make([]portRef, numPorts)}
	for i := range sw.egress {
		if rates[i] <= 0 {
			panic("des: switch port rate must be positive")
		}
		sw.egress[i] = &portServer{sched: schedCfg.Build(), rateBps: rates[i]}
	}
	return sw
}

// ConnectPort attaches egress port out of the switch to neighbour n's
// ingress port inPort (typically through a Link).
func (s *Switch) ConnectPort(out int, n Node, inPort int) {
	s.peers[out] = portRef{node: n, inPort: inPort}
}

// Scheduler returns the scheduler of egress port i (for monitoring).
func (s *Switch) Scheduler(i int) Scheduler { return s.egress[i].sched }

// Receive implements Node: forward the packet and enqueue it at the
// egress port server.
func (s *Switch) Receive(p *Packet, inPort int) {
	out := -1
	if s.Forward != nil {
		out = s.Forward(p.FlowID, inPort)
	}
	s.trace.arrive(Visit{
		PktID: p.ID, FlowID: p.FlowID, Device: s.ID, InPort: inPort,
		OutPort: out, Size: p.Size, Class: p.Class, Weight: p.Weight,
		Proto: p.Proto, Arrive: s.sim.Now(),
	})
	if out < 0 || out >= s.NumPorts {
		s.trace.drop(s.ID, p.ID)
		return
	}
	ps := s.egress[out]
	if !ps.sched.Enqueue(p) {
		s.trace.drop(s.ID, p.ID)
		return
	}
	if !ps.busy {
		s.startTransmission(out)
	}
}

func (s *Switch) startTransmission(out int) {
	ps := s.egress[out]
	p := ps.sched.Dequeue()
	if p == nil {
		ps.busy = false
		ps.serving = nil
		return
	}
	ps.busy = true
	ps.serving = p
	txTime := float64(p.Size*8) / ps.rateBps
	s.sim.After(txTime, func() {
		s.trace.depart(s.ID, p.ID, s.sim.Now())
		p.Hops++
		peer := s.peers[out]
		if peer.node != nil {
			peer.node.Receive(p, peer.inPort)
		}
		s.startTransmission(out)
	})
}

// Occupancy returns the per-class number of packets in the system at
// egress port i: queued packets plus the one in service. This matches
// the queueing-theoretic state definition (Appendix B).
func (s *Switch) Occupancy(i int) []int {
	ps := s.egress[i]
	occ := append([]int(nil), ps.sched.PerClassLen()...)
	if ps.serving != nil {
		c := ps.serving.Class
		if c < 0 {
			c = 0
		}
		if c >= len(occ) {
			c = len(occ) - 1
		}
		occ[c]++
	}
	return occ
}

// String identifies the switch.
func (s *Switch) String() string { return fmt.Sprintf("switch(%d, %d ports)", s.ID, s.NumPorts) }

// Link is a pure propagation-delay device connecting an upstream egress
// port to a downstream ingress port. Serialization happens at the egress
// port server (see DESIGN.md), so links never queue.
type Link struct {
	sim   *Simulator
	ID    int
	Delay float64 // propagation delay in seconds
	peer  portRef
	trace *Collector
}

// NewLink creates a link with the given one-way propagation delay.
func NewLink(sim *Simulator, id int, delay float64, trace *Collector) *Link {
	if delay < 0 {
		panic("des: negative link delay")
	}
	return &Link{sim: sim, ID: id, Delay: delay, trace: trace}
}

// Connect attaches the link output to node n's ingress port inPort.
func (l *Link) Connect(n Node, inPort int) { l.peer = portRef{node: n, inPort: inPort} }

// Receive implements Node: deliver the packet after the propagation delay.
func (l *Link) Receive(p *Packet, inPort int) {
	l.trace.arrive(Visit{
		PktID: p.ID, FlowID: p.FlowID, Device: l.ID, InPort: inPort,
		OutPort: 0, Size: p.Size, Class: p.Class, Weight: p.Weight,
		Proto: p.Proto, Arrive: l.sim.Now(),
	})
	l.sim.After(l.Delay, func() {
		l.trace.depart(l.ID, p.ID, l.sim.Now())
		if l.peer.node != nil {
			l.peer.node.Receive(p, l.peer.inPort)
		}
	})
}
