package des

import (
	"testing"

	"deepqueuenet/internal/rng"
)

func TestREDAdmitsBelowMinTh(t *testing.T) {
	s := NewRED(0, REDConfig{MinTh: 5, MaxTh: 15, MaxP: 0.1, Wq: 1}, rng.New(1))
	for i := uint64(0); i < 4; i++ {
		if !s.Enqueue(&Packet{ID: i, Size: 100}) {
			t.Fatalf("drop below MinTh at %d", i)
		}
	}
}

func TestREDDropsAboveMaxTh(t *testing.T) {
	// Wq = 1 makes the average track the instantaneous queue exactly.
	s := NewRED(0, REDConfig{MinTh: 2, MaxTh: 5, MaxP: 0.1, Wq: 1}, rng.New(2))
	dropped := false
	for i := uint64(0); i < 50; i++ {
		if !s.Enqueue(&Packet{ID: i, Size: 100}) {
			dropped = true
			// Above MaxTh every arrival must drop.
			if s.Len() < 5 {
				t.Fatalf("forced drop with queue %d < MaxTh", s.Len())
			}
		}
	}
	if !dropped {
		t.Fatal("no drops despite persistent overload")
	}
	if s.Len() > 7 {
		t.Fatalf("queue grew to %d despite RED", s.Len())
	}
}

func TestREDEarlyDropProbabilistic(t *testing.T) {
	// Hold the queue between MinTh and MaxTh: some arrivals drop, some
	// are admitted (probabilistic early detection).
	s := NewRED(0, REDConfig{MinTh: 3, MaxTh: 30, MaxP: 0.2, Wq: 1}, rng.New(3))
	admitted, droppedEarly := 0, 0
	for i := uint64(0); i < 2000; i++ {
		if s.Enqueue(&Packet{ID: i, Size: 100}) {
			admitted++
		} else {
			droppedEarly++
		}
		// Drain to keep the queue in the early-detection band.
		for s.Len() > 8 {
			s.Dequeue()
		}
	}
	if droppedEarly == 0 {
		t.Fatal("no early drops in the RED band")
	}
	if admitted == 0 {
		t.Fatal("RED dropped everything")
	}
}

func TestREDHardCapacity(t *testing.T) {
	// Even with huge thresholds, the hard capacity backstop holds. Use a
	// tiny Wq so the average stays near zero while the real queue fills.
	s := NewRED(10, REDConfig{MinTh: 1000, MaxTh: 2000, MaxP: 0.1, Wq: 1e-6}, rng.New(4))
	for i := uint64(0); i < 10; i++ {
		if !s.Enqueue(&Packet{ID: i, Size: 100}) {
			t.Fatalf("backstop dropped under capacity at %d", i)
		}
	}
	if s.Enqueue(&Packet{ID: 99, Size: 100}) {
		t.Fatal("enqueue beyond hard capacity")
	}
}

func TestREDFIFOOrder(t *testing.T) {
	s := NewRED(0, REDConfig{MinTh: 100, MaxTh: 200, MaxP: 0.1, Wq: 0.002}, rng.New(5))
	for i := uint64(1); i <= 20; i++ {
		s.Enqueue(&Packet{ID: i, Size: 100})
	}
	for i := uint64(1); i <= 20; i++ {
		p := s.Dequeue()
		if p == nil || p.ID != i {
			t.Fatalf("RED broke FIFO order at %d", i)
		}
	}
}

func TestREDECNMarking(t *testing.T) {
	// Hold the queue in the early-detection band; with MarkECN every
	// ECT packet must be admitted (some CE-marked), while non-ECT
	// packets still suffer early drops.
	run := func(ect bool) (admitted, marked, dropped int) {
		cfg := REDConfig{MinTh: 3, MaxTh: 30, MaxP: 0.5, Wq: 1, MarkECN: true}
		s := NewRED(0, cfg, rng.New(6)).(*redSched)
		for i := uint64(0); i < 2000; i++ {
			p := &Packet{ID: i, Size: 100, ECT: ect}
			if s.Enqueue(p) {
				admitted++
				if p.CE {
					marked++
				}
			} else {
				dropped++
			}
			for s.Len() > 8 {
				s.Dequeue()
			}
		}
		return
	}
	admitted, marked, dropped := run(true)
	if dropped != 0 {
		t.Fatalf("ECT packets dropped (%d) despite MarkECN", dropped)
	}
	if marked == 0 || admitted == 0 {
		t.Fatalf("no CE marks (admitted %d, marked %d)", admitted, marked)
	}
	_, markedPlain, droppedPlain := run(false)
	if droppedPlain == 0 {
		t.Fatal("non-ECT packets never dropped in the RED band")
	}
	if markedPlain != 0 {
		t.Fatalf("non-ECT packets marked: %d", markedPlain)
	}
}
