package guard

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

func TestFromContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := FromContext(ctx.Err())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("original context.Canceled lost from chain: %v", err)
	}
	if errors.Is(err, ErrDeadline) {
		t.Fatalf("canceled run must not match ErrDeadline")
	}
}

func TestFromContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := FromContext(ctx.Err())
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("original DeadlineExceeded lost from chain: %v", err)
	}
}

func TestFromContextNil(t *testing.T) {
	if err := FromContext(nil); err != nil {
		t.Fatalf("nil must map to nil, got %v", err)
	}
}

func TestRecovered(t *testing.T) {
	if Recovered(0, 0, 0, nil) != nil {
		t.Fatal("nil recover value must yield nil error")
	}
	se := Recovered(2, 7, 3, "boom")
	if se.Shard != 2 || se.Device != 7 || se.Iter != 3 {
		t.Fatalf("wrong coordinates: %+v", se)
	}
	if len(se.Stack) == 0 {
		t.Fatal("stack not captured")
	}
	msg := se.Error()
	for _, want := range []string{"shard 2", "device 7", "iteration 3", "boom"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func TestWatchdogNaN(t *testing.T) {
	var w Watchdog
	if err := w.Observe(0, 1.0); err != nil {
		t.Fatalf("finite delta tripped: %v", err)
	}
	err := w.Observe(1, math.NaN())
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
	if de.Iter != 1 || len(de.Trace) != 2 {
		t.Fatalf("bad diagnostics: %+v", de)
	}
}

func TestWatchdogInf(t *testing.T) {
	var w Watchdog
	if err := w.Observe(0, math.Inf(1)); err == nil {
		t.Fatal("+Inf delta must trip immediately")
	}
}

func TestWatchdogSustainedGrowth(t *testing.T) {
	w := Watchdog{Patience: 3}
	deltas := []float64{10, 5, 6, 7, 8}
	var err error
	for i, d := range deltas {
		err = w.Observe(i, d)
		if i < len(deltas)-1 && err != nil {
			t.Fatalf("tripped early at iter %d: %v", i, err)
		}
	}
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("want DivergenceError after 3 growth steps, got %v", err)
	}
	if len(de.Trace) != len(deltas) {
		t.Fatalf("trace length %d, want %d", len(de.Trace), len(deltas))
	}
}

func TestWatchdogResetOnContraction(t *testing.T) {
	w := Watchdog{Patience: 3}
	// Growth runs of length 2 separated by contractions never trip.
	deltas := []float64{10, 11, 12, 5, 6, 7, 3, 4, 5, 2}
	for i, d := range deltas {
		if err := w.Observe(i, d); err != nil {
			t.Fatalf("tripped at iter %d on bounded bouncing: %v", i, err)
		}
	}
}

func TestWatchdogDefaultPatience(t *testing.T) {
	var w Watchdog
	var err error
	for i := 0; i <= DefaultPatience; i++ {
		err = w.Observe(i, float64(i+1))
	}
	if err == nil {
		t.Fatal("monotonic growth past DefaultPatience must trip")
	}
}

func TestWatchdogTraceIsCopy(t *testing.T) {
	var w Watchdog
	w.Observe(0, 1)
	tr := w.Trace()
	tr[0] = 99
	if got := w.Trace()[0]; got != 1 {
		t.Fatalf("Trace must return a copy, internal state mutated to %v", got)
	}
}
