// Package guard is the engine's robustness layer: structured errors for
// shard-isolated panics, cancellation/deadline wrapping for RunContext,
// and a divergence watchdog over IRSA's per-iteration delta sequence.
// Learned simulators can destabilize over long inference horizons; guard
// turns the three silent failure modes of a long-running estimator —
// crashing goroutines, runaway fixed-point iterations, and NaN poisoning
// — into diagnosable, recoverable errors.
package guard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
)

// Sentinel errors for context-terminated runs. RunContext wraps the
// underlying context error so both errors.Is(err, guard.ErrCanceled) and
// errors.Is(err, context.Canceled) hold.
var (
	// ErrCanceled marks a run stopped by context cancellation.
	ErrCanceled = errors.New("guard: run canceled")
	// ErrDeadline marks a run stopped by a context deadline.
	ErrDeadline = errors.New("guard: run deadline exceeded")
)

// FromContext maps a context error to its guard sentinel, preserving the
// original error in the chain. It returns nil for a nil error.
func FromContext(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return errors.Join(ErrDeadline, err)
	}
	return errors.Join(ErrCanceled, err)
}

// ErrBreakerOpen marks work refused (or rerouted to a degraded path)
// because a circuit breaker guarding the failing resource is open.
// Serving layers wrap it in a *BreakerError carrying the breaker's
// identity and the failure that tripped it.
var ErrBreakerOpen = errors.New("guard: circuit breaker open")

// BreakerError reports an open circuit breaker: which guarded path is
// broken, how many consecutive failures tripped it, and the last
// failure observed. It matches both errors.Is(err, ErrBreakerOpen) and,
// through LastErr, whatever chain the tripping failure carried (e.g. a
// *ShardError), so callers can tell a breaker-shed request from the
// fault that opened the breaker in the first place.
type BreakerError struct {
	Path     string // identity of the guarded resource (e.g. model path)
	Failures int    // consecutive failures that opened the breaker
	LastErr  error  // the failure that tripped the breaker (may be nil)
}

// Error implements error.
func (e *BreakerError) Error() string {
	if e.LastErr == nil {
		return fmt.Sprintf("guard: breaker open for %q after %d consecutive failures", e.Path, e.Failures)
	}
	return fmt.Sprintf("guard: breaker open for %q after %d consecutive failures (last: %v)",
		e.Path, e.Failures, e.LastErr)
}

// Unwrap exposes both the ErrBreakerOpen sentinel and the tripping
// failure's chain to errors.Is/As.
func (e *BreakerError) Unwrap() []error {
	if e.LastErr == nil {
		return []error{ErrBreakerOpen}
	}
	return []error{ErrBreakerOpen, e.LastErr}
}

// ShardError is a panic recovered inside one inference shard: the shard
// and device that crashed, the IRSA iteration, the panic value, and the
// goroutine stack at the point of the panic. One crashing device model
// surfaces as a ShardError instead of killing the process.
type ShardError struct {
	Shard  int    // shard index of the crashed worker
	Device int    // topo device ID being inferred
	Iter   int    // IRSA iteration (0-based)
	Panic  any    // recovered panic value
	Stack  []byte // stack trace captured at recovery
}

// Error implements error.
func (e *ShardError) Error() string {
	return fmt.Sprintf("guard: shard %d: panic inferring device %d at iteration %d: %v",
		e.Shard, e.Device, e.Iter, e.Panic)
}

// Unwrap exposes a recovered panic value that is itself an error (e.g.
// a *WorkerError re-panicked by RethrowWorkers) to errors.Is/As, so the
// full fan-out → worker → shard failure chain stays inspectable.
func (e *ShardError) Unwrap() error {
	if err, ok := e.Panic.(error); ok {
		return err
	}
	return nil
}

// Recovered builds a ShardError from a recover() value, capturing the
// current stack. It returns nil when r is nil so it can be called
// unconditionally from a deferred recovery handler.
func Recovered(shard, device, iter int, r any) *ShardError {
	if r == nil {
		return nil
	}
	return &ShardError{Shard: shard, Device: device, Iter: iter, Panic: r, Stack: debug.Stack()}
}

// DivergenceError reports a non-converging or numerically poisoned IRSA
// run: the iteration at which the watchdog tripped, why, and the full
// per-iteration delta trace for diagnosis.
type DivergenceError struct {
	Iter   int       // iteration at which the watchdog tripped (0-based)
	Reason string    // what tripped: non-finite delta or sustained growth
	Trace  []float64 // per-iteration propagate deltas, oldest first
}

// Error implements error, showing the tail of the delta trace.
func (e *DivergenceError) Error() string {
	tail := e.Trace
	if len(tail) > 8 {
		tail = tail[len(tail)-8:]
	}
	return fmt.Sprintf("guard: divergence at iteration %d: %s (delta tail %v)", e.Iter, e.Reason, tail)
}

// DefaultPatience is the number of consecutive delta increases tolerated
// before the watchdog declares divergence. A contractive (damped) IRSA
// iteration may bounce for an iteration or two; eight monotonic growth
// steps cannot come from a converging fixed point.
const DefaultPatience = 8

// Watchdog observes the per-iteration convergence deltas of a
// fixed-point run and aborts it when the sequence stops contracting:
// immediately on NaN/±Inf, or after Patience consecutive strict
// increases. The zero value is ready to use with DefaultPatience.
type Watchdog struct {
	// Patience is the number of consecutive strictly-growing deltas
	// tolerated; <= 0 uses DefaultPatience.
	Patience int

	trace  []float64
	growth int
}

// Observe records one iteration's delta and returns a *DivergenceError
// once the sequence is judged divergent, nil otherwise.
func (w *Watchdog) Observe(iter int, delta float64) error {
	w.trace = append(w.trace, delta)
	if math.IsNaN(delta) || math.IsInf(delta, 0) {
		return &DivergenceError{Iter: iter,
			Reason: fmt.Sprintf("non-finite convergence delta %v", delta),
			Trace:  w.Trace()}
	}
	n := len(w.trace)
	if n >= 2 && w.trace[n-1] > w.trace[n-2] {
		w.growth++
	} else {
		w.growth = 0
	}
	patience := w.Patience
	if patience <= 0 {
		patience = DefaultPatience
	}
	if w.growth >= patience {
		return &DivergenceError{Iter: iter,
			Reason: fmt.Sprintf("convergence delta grew for %d consecutive iterations", w.growth),
			Trace:  w.Trace()}
	}
	return nil
}

// Trace returns a copy of the observed delta sequence, oldest first.
func (w *Watchdog) Trace() []float64 {
	return append([]float64(nil), w.trace...)
}

// State exposes the watchdog's resumable state: the delta trace and the
// current growth streak. The returned slice aliases the watchdog's
// internal buffer — callers must copy it before the next Observe if
// they retain it. Checkpointing uses this to make a restored run's
// divergence judgment bit-identical to the uninterrupted one.
func (w *Watchdog) State() (trace []float64, growth int) {
	return w.trace, w.growth
}

// Restore reinstates a state captured with State. The trace slice is
// copied, so the checkpoint's buffer stays untouched.
func (w *Watchdog) Restore(trace []float64, growth int) {
	w.trace = append(w.trace[:0], trace...)
	if growth < 0 {
		growth = 0
	}
	w.growth = growth
}

// ErrCrash marks a simulated process death injected by the chaos layer
// at an epoch boundary (after the epoch's checkpoint was persisted).
// Serving layers treat a crash-terminated job like real process death:
// the job's durable record stays non-terminal and its checkpoint stays
// on disk, so a restarted server re-enqueues and resumes it.
var ErrCrash = errors.New("guard: injected crash at epoch boundary (chaos drill)")

// WorkerError is a panic recovered on a data-parallel worker goroutine
// (training replicas, batched PTM inference fan-out). recover only
// intercepts panics on the goroutine that panicked, so a worker panic
// would bypass the IRSA shard guard and kill the process; fan-out
// helpers instead recover each worker into a WorkerError and re-panic
// it on the calling goroutine (RethrowWorkers), where the caller's own
// isolation — e.g. the shard recovery that yields a ShardError — can
// handle it.
type WorkerError struct {
	Worker int    // index of the crashed worker
	Panic  any    // recovered panic value
	Stack  []byte // worker stack captured at recovery
}

// Error implements error.
func (e *WorkerError) Error() string {
	return fmt.Sprintf("guard: worker %d panicked: %v", e.Worker, e.Panic)
}

// Unwrap exposes a recovered panic value that is itself an error to
// errors.Is/As (mirroring ShardError.Unwrap).
func (e *WorkerError) Unwrap() error {
	if err, ok := e.Panic.(error); ok {
		return err
	}
	return nil
}

// RecoveredWorker builds a WorkerError from a recover() value,
// capturing the worker's stack. It returns nil when r is nil so it can
// be called unconditionally from a deferred recovery handler.
func RecoveredWorker(worker int, r any) *WorkerError {
	if r == nil {
		return nil
	}
	return &WorkerError{Worker: worker, Panic: r, Stack: debug.Stack()}
}

// RethrowWorkers re-panics the first recorded worker panic on the
// calling goroutine (no-op when no worker crashed). Call it after the
// fan-out's WaitGroup drains, so the panic unwinds a goroutine whose
// callers can recover it.
func RethrowWorkers(workerErrs []*WorkerError) {
	for _, we := range workerErrs {
		if we != nil {
			panic(we)
		}
	}
}
