package guard

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// These tests pin the error-identity contracts the serving layer leans
// on: every failure that crosses a package boundary must stay
// inspectable with errors.Is/errors.As through arbitrary wrapping —
// fan-out worker panics re-thrown into shard guards, context sentinels
// joined with transient errors, and breaker-open states carrying the
// fault that tripped them.

func TestShardErrorUnwrapsWorkerPanic(t *testing.T) {
	// A fan-out worker panic re-panicked by RethrowWorkers and recovered
	// by a shard guard: the chain shard -> worker must stay visible.
	we := RecoveredWorker(3, "inner boom")
	se := Recovered(1, 7, 2, we)

	var gotWE *WorkerError
	if !errors.As(se, &gotWE) {
		t.Fatalf("errors.As must reach the WorkerError through the ShardError: %v", se)
	}
	if gotWE.Worker != 3 {
		t.Fatalf("worker %d, want 3", gotWE.Worker)
	}
	var gotSE *ShardError
	if !errors.As(error(se), &gotSE) || gotSE.Device != 7 {
		t.Fatalf("ShardError identity lost: %v", se)
	}
}

func TestShardErrorNonErrorPanicUnwrapsNil(t *testing.T) {
	se := Recovered(0, 0, 0, "plain string panic")
	if se.Unwrap() != nil {
		t.Fatalf("non-error panic value must not unwrap: %v", se.Unwrap())
	}
	we := RecoveredWorker(0, 42)
	if we.Unwrap() != nil {
		t.Fatalf("non-error worker panic value must not unwrap: %v", we.Unwrap())
	}
}

func TestWorkerErrorUnwrapsSentinel(t *testing.T) {
	// A worker that panicked with a wrapped sentinel keeps it reachable
	// through worker -> shard -> fmt.Errorf wrapping.
	inner := fmt.Errorf("device blew up: %w", ErrCanceled)
	we := RecoveredWorker(0, inner)
	se := Recovered(0, 1, 0, we)
	wrapped := fmt.Errorf("run failed: %w", se)
	if !errors.Is(wrapped, ErrCanceled) {
		t.Fatalf("sentinel lost through worker->shard->wrap chain: %v", wrapped)
	}
}

func TestJoinedContextSentinels(t *testing.T) {
	// FromContext joins the guard sentinel with the raw context error;
	// further joins (e.g. serve's deadline-during-backoff) keep both
	// identities plus the transient failure visible.
	base := FromContext(context.DeadlineExceeded)
	se := Recovered(2, 5, 1, "transient")
	joined := errors.Join(base, se)

	if !errors.Is(joined, ErrDeadline) {
		t.Fatalf("ErrDeadline lost in join: %v", joined)
	}
	if !errors.Is(joined, context.DeadlineExceeded) {
		t.Fatalf("context.DeadlineExceeded lost in join: %v", joined)
	}
	var gotSE *ShardError
	if !errors.As(joined, &gotSE) || gotSE.Shard != 2 {
		t.Fatalf("ShardError lost in join: %v", joined)
	}
	if errors.Is(joined, ErrCanceled) {
		t.Fatalf("deadline join must not read as canceled: %v", joined)
	}
}

func TestBreakerErrorIdentity(t *testing.T) {
	trip := Recovered(0, 3, 4, RecoveredWorker(1, "model exploded"))
	be := &BreakerError{Path: "models/switch8.ptm.json", Failures: 5, LastErr: trip}

	if !errors.Is(error(be), ErrBreakerOpen) {
		t.Fatalf("BreakerError must match ErrBreakerOpen: %v", be)
	}
	// The full tripping chain stays reachable: breaker -> shard -> worker.
	var se *ShardError
	if !errors.As(error(be), &se) || se.Device != 3 {
		t.Fatalf("tripping ShardError lost: %v", be)
	}
	var we *WorkerError
	if !errors.As(error(be), &we) || we.Worker != 1 {
		t.Fatalf("tripping WorkerError lost: %v", be)
	}
	var gotBE *BreakerError
	if !errors.As(fmt.Errorf("request failed: %w", be), &gotBE) || gotBE.Path != be.Path {
		t.Fatalf("BreakerError identity lost through wrapping")
	}
}

func TestBreakerErrorNoLastErr(t *testing.T) {
	be := &BreakerError{Path: "default", Failures: 5}
	if !errors.Is(error(be), ErrBreakerOpen) {
		t.Fatalf("LastErr-less BreakerError must still match ErrBreakerOpen: %v", be)
	}
	var se *ShardError
	if errors.As(error(be), &se) {
		t.Fatalf("no ShardError should be found: %v", be)
	}
	if be.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestBreakerErrorDistinguishableFromContextErrors(t *testing.T) {
	// A breaker-open state must never read as a cancellation or deadline
	// (the HTTP layer maps them to different statuses).
	be := &BreakerError{Path: "p", Failures: 1, LastErr: Recovered(0, 0, 0, "x")}
	if errors.Is(error(be), ErrCanceled) || errors.Is(error(be), ErrDeadline) {
		t.Fatalf("breaker error must not match context sentinels: %v", be)
	}
}
