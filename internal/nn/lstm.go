package nn

import (
	"math"

	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/tensor"
)

// LSTM is a unidirectional long short-term memory layer mapping a T×In
// sequence to a T×Hidden sequence. Gate order within the 4·Hidden block is
// input (i), forget (f), output (o), candidate (g).
type LSTM struct {
	In, Hidden int
	wx, wh, b  *Param

	// Forward caches for BPTT.
	x                            *tensor.Matrix
	gi, gf, go_, gg, cs, tcs, hs *tensor.Matrix
}

// NewLSTM returns an LSTM with Xavier-initialized weights and forget-gate
// bias 1 (the standard trick to ease gradient flow early in training).
func NewLSTM(in, hidden int, r *rng.Rand) *LSTM {
	l := &LSTM{In: in, Hidden: hidden,
		wx: newParam("lstm.wx", in, 4*hidden),
		wh: newParam("lstm.wh", hidden, 4*hidden),
		b:  newParam("lstm.b", 1, 4*hidden)}
	xavierInit(l.wx.W, r)
	xavierInit(l.wh.W, r)
	for j := hidden; j < 2*hidden; j++ { // forget-gate bias
		l.b.W.Data[j] = 1
	}
	return l
}

func (l *LSTM) Forward(x *tensor.Matrix) *tensor.Matrix {
	T, H := x.Rows, l.Hidden
	l.x = x
	l.gi = tensor.New(T, H)
	l.gf = tensor.New(T, H)
	l.go_ = tensor.New(T, H)
	l.gg = tensor.New(T, H)
	l.cs = tensor.New(T, H)
	l.tcs = tensor.New(T, H)
	l.hs = tensor.New(T, H)

	z := tensor.MatMul(x, l.wx.W) // T × 4H
	hPrev := make([]float64, H)
	cPrev := make([]float64, H)
	whr := l.wh.W
	for t := 0; t < T; t++ {
		zr := z.Row(t)
		// z_t += h_{t-1}·Wh + b
		for k := 0; k < H; k++ {
			hv := hPrev[k]
			//dqnlint:allow floateq exact-zero sparsity skip: zero activations (t=0 state) contribute exactly nothing
			if hv == 0 {
				continue
			}
			wrow := whr.Row(k)
			for j := 0; j < 4*H; j++ {
				zr[j] += hv * wrow[j]
			}
		}
		for j := 0; j < 4*H; j++ {
			zr[j] += l.b.W.Data[j]
		}
		gi, gf, go_, gg := l.gi.Row(t), l.gf.Row(t), l.go_.Row(t), l.gg.Row(t)
		cr, tcr, hr := l.cs.Row(t), l.tcs.Row(t), l.hs.Row(t)
		for k := 0; k < H; k++ {
			gi[k] = sigmoid(zr[k])
			gf[k] = sigmoid(zr[H+k])
			go_[k] = sigmoid(zr[2*H+k])
			gg[k] = math.Tanh(zr[3*H+k])
			cr[k] = gf[k]*cPrev[k] + gi[k]*gg[k]
			tcr[k] = math.Tanh(cr[k])
			hr[k] = go_[k] * tcr[k]
		}
		copy(hPrev, hr)
		copy(cPrev, cr)
	}
	return l.hs.Clone()
}

// GatesInto applies one LSTM timestep's gate math: zr is the 4H-wide
// pre-activation row (input GEMM plus recurrence, bias not yet added),
// bias the 4H-wide gate bias, c the carried cell state (updated in
// place to c_t), and h receives h_t. Gate blocks are i|f|o|g. The
// per-element expressions are exactly Forward's — one bias add, the
// same sigmoid/tanh rounding, the same c/h products in the same order —
// so the fused kernel is bit-identical to the unfused loops (enforced
// by the difftest harness). zr is consumed as scratch: the kernel runs
// the three sigmoid blocks and the candidate tanh block through the
// vectorized slice transcendentals in place, then combines them.
func GatesInto(zr, bias, c, h []float64) {
	H := len(h)
	if len(zr) != 4*H || len(bias) != 4*H || len(c) != H {
		panic("nn: GatesInto length mismatch")
	}
	for j, bv := range bias {
		zr[j] += bv
	}
	tensor.SigmoidSlice(zr[:3*H], zr[:3*H])
	tensor.TanhSlice(zr[3*H:], zr[3*H:])
	gi, gf, go_, gg := zr[:H], zr[H:2*H], zr[2*H:3*H], zr[3*H:]
	for k := 0; k < H; k++ {
		c[k] = gf[k]*c[k] + gi[k]*gg[k]
	}
	tensor.TanhSlice(h, c)
	for k := 0; k < H; k++ {
		h[k] *= go_[k]
	}
}

func (l *LSTM) Backward(dy *tensor.Matrix) *tensor.Matrix {
	T, H := l.x.Rows, l.Hidden
	dx := tensor.New(T, l.In)
	dh := make([]float64, H) // gradient flowing from t+1 into h_t
	dc := make([]float64, H)
	dz := make([]float64, 4*H)
	wx, wh := l.wx.W, l.wh.W
	for t := T - 1; t >= 0; t-- {
		gi, gf, go_, gg := l.gi.Row(t), l.gf.Row(t), l.go_.Row(t), l.gg.Row(t)
		tcr := l.tcs.Row(t)
		dyr := dy.Row(t)
		var cPrev []float64
		if t > 0 {
			cPrev = l.cs.Row(t - 1)
		}
		for k := 0; k < H; k++ {
			dhk := dyr[k] + dh[k]
			do := dhk * tcr[k]
			dck := dc[k] + dhk*go_[k]*(1-tcr[k]*tcr[k])
			di := dck * gg[k]
			dg := dck * gi[k]
			var df float64
			if t > 0 {
				df = dck * cPrev[k]
				dc[k] = dck * gf[k]
			} else {
				dc[k] = 0
			}
			dz[k] = di * gi[k] * (1 - gi[k])
			dz[H+k] = df * gf[k] * (1 - gf[k])
			dz[2*H+k] = do * go_[k] * (1 - go_[k])
			dz[3*H+k] = dg * (1 - gg[k]*gg[k])
		}
		// Parameter gradients.
		xr := l.x.Row(t)
		for i, xv := range xr {
			//dqnlint:allow floateq exact-zero sparsity skip: zero inputs (padded chunk tails) contribute exactly nothing
			if xv == 0 {
				continue
			}
			grow := l.wx.G.Row(i)
			for j := 0; j < 4*H; j++ {
				grow[j] += xv * dz[j]
			}
		}
		if t > 0 {
			hPrev := l.hs.Row(t - 1)
			for i, hv := range hPrev {
				//dqnlint:allow floateq exact-zero sparsity skip: zero activations (t=0 state) contribute exactly nothing
				if hv == 0 {
					continue
				}
				grow := l.wh.G.Row(i)
				for j := 0; j < 4*H; j++ {
					grow[j] += hv * dz[j]
				}
			}
		}
		for j := 0; j < 4*H; j++ {
			l.b.G.Data[j] += dz[j]
		}
		// Input and recurrent gradients.
		dxr := dx.Row(t)
		for i := range dxr {
			wrow := wx.Row(i)
			sum := 0.0
			for j := 0; j < 4*H; j++ {
				sum += wrow[j] * dz[j]
			}
			dxr[i] = sum
		}
		for k := 0; k < H; k++ {
			wrow := wh.Row(k)
			sum := 0.0
			for j := 0; j < 4*H; j++ {
				sum += wrow[j] * dz[j]
			}
			dh[k] = sum
		}
	}
	return dx
}

func (l *LSTM) Params() []*Param { return []*Param{l.wx, l.wh, l.b} }

func (l *LSTM) Clone() Layer {
	c := &LSTM{In: l.In, Hidden: l.Hidden,
		wx: &Param{Name: l.wx.Name, W: l.wx.W.Clone(), G: tensor.New(l.In, 4*l.Hidden)},
		wh: &Param{Name: l.wh.Name, W: l.wh.W.Clone(), G: tensor.New(l.Hidden, 4*l.Hidden)},
		b:  &Param{Name: l.b.Name, W: l.b.W.Clone(), G: tensor.New(1, 4*l.Hidden)}}
	return c
}

func (l *LSTM) Spec() LayerSpec { return LayerSpec{Kind: "lstm", In: l.In, Hidden: l.Hidden} }

// BLSTM is a bidirectional LSTM: a forward and a backward LSTM over the
// same input, outputs concatenated to T×(2·Hidden). This is the encoder
// cell the paper selects for the PTM (§5.2, "2-layer BLSTM").
type BLSTM struct {
	In, Hidden int
	fwd, bwd   *LSTM
}

// NewBLSTM returns a BLSTM layer.
func NewBLSTM(in, hidden int, r *rng.Rand) *BLSTM {
	return &BLSTM{In: in, Hidden: hidden, fwd: NewLSTM(in, hidden, r), bwd: NewLSTM(in, hidden, r)}
}

func (b *BLSTM) Forward(x *tensor.Matrix) *tensor.Matrix {
	yf := b.fwd.Forward(x)
	yb := b.bwd.Forward(tensor.ReverseRows(x))
	return tensor.ConcatCols(yf, tensor.ReverseRows(yb))
}

func (b *BLSTM) Backward(dy *tensor.Matrix) *tensor.Matrix {
	df, dbk := tensor.SplitCols(dy, b.Hidden)
	dxf := b.fwd.Backward(df)
	dxb := b.bwd.Backward(tensor.ReverseRows(dbk))
	dx := tensor.ReverseRows(dxb)
	tensor.AddInPlace(dx, dxf)
	return dx
}

func (b *BLSTM) Params() []*Param { return append(b.fwd.Params(), b.bwd.Params()...) }

func (b *BLSTM) Clone() Layer {
	return &BLSTM{In: b.In, Hidden: b.Hidden,
		fwd: b.fwd.Clone().(*LSTM), bwd: b.bwd.Clone().(*LSTM)}
}

func (b *BLSTM) Spec() LayerSpec { return LayerSpec{Kind: "blstm", In: b.In, Hidden: b.Hidden} }
