package nn

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/tensor"
)

// LayerSpec is a serializable description of a layer's architecture.
type LayerSpec struct {
	Kind   string `json:"kind"`
	In     int    `json:"in,omitempty"`
	Out    int    `json:"out,omitempty"`
	Hidden int    `json:"hidden,omitempty"`
	Heads  int    `json:"heads,omitempty"`
	DK     int    `json:"dk,omitempty"`
	DV     int    `json:"dv,omitempty"`
	Index  int    `json:"index,omitempty"`
}

// Sequential chains layers into a model. Forward output of layer i feeds
// layer i+1.
type Sequential struct {
	Layers []Layer
}

// NewSequential returns a model over the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs the full forward pass.
func (s *Sequential) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs the full backward pass given the output gradient.
func (s *Sequential) Backward(dy *tensor.Matrix) *tensor.Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(dy)
	}
	return dy
}

// Params returns all trainable parameters in deterministic order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears all parameter gradients.
func (s *Sequential) ZeroGrads() {
	for _, p := range s.Params() {
		p.G.Zero()
	}
}

// Clone returns an independent deep copy of the model.
func (s *Sequential) Clone() *Sequential {
	ls := make([]Layer, len(s.Layers))
	for i, l := range s.Layers {
		ls[i] = l.Clone()
	}
	return &Sequential{Layers: ls}
}

// SyncFrom copies parameter weights from src into s (shapes must match).
func (s *Sequential) SyncFrom(src *Sequential) {
	dst := s.Params()
	ps := src.Params()
	if len(dst) != len(ps) {
		panic("nn: SyncFrom param count mismatch")
	}
	for i := range dst {
		dst[i].W.CopyFrom(ps[i].W)
	}
}

// NumParams returns the total number of scalar parameters.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += len(p.W.Data)
	}
	return n
}

// Specs returns the architecture description of the model.
func (s *Sequential) Specs() []LayerSpec {
	specs := make([]LayerSpec, len(s.Layers))
	for i, l := range s.Layers {
		specs[i] = l.Spec()
	}
	return specs
}

// Build constructs a model from layer specs with weights initialized from
// the given seed.
func Build(specs []LayerSpec, seed uint64) (*Sequential, error) {
	r := rng.New(seed)
	layers := make([]Layer, 0, len(specs))
	for _, sp := range specs {
		switch sp.Kind {
		case "dense":
			layers = append(layers, NewDense(sp.In, sp.Out, r))
		case "lstm":
			layers = append(layers, NewLSTM(sp.In, sp.Hidden, r))
		case "blstm":
			layers = append(layers, NewBLSTM(sp.In, sp.Hidden, r))
		case "mha":
			layers = append(layers, NewMultiHeadSelfAttention(sp.In, sp.Out, sp.Heads, sp.DK, sp.DV, r))
		case "takelast":
			layers = append(layers, NewTakeLast())
		case "takeat":
			layers = append(layers, NewTakeAt(sp.Index))
		case "layernorm":
			layers = append(layers, NewLayerNorm(sp.In))
		case "meanpool":
			layers = append(layers, NewMeanPool())
		default:
			if len(sp.Kind) > 4 && sp.Kind[:4] == "act:" {
				layers = append(layers, NewActivation(sp.Kind[4:]))
				continue
			}
			return nil, fmt.Errorf("nn: unknown layer kind %q", sp.Kind)
		}
	}
	return NewSequential(layers...), nil
}

// savedModel is the on-disk JSON representation of a model.
type savedModel struct {
	Specs   []LayerSpec `json:"specs"`
	Weights [][]float64 `json:"weights"`
}

// Marshal serializes the model architecture and weights to JSON.
func (s *Sequential) Marshal() ([]byte, error) {
	sm := savedModel{Specs: s.Specs()}
	for _, p := range s.Params() {
		sm.Weights = append(sm.Weights, append([]float64(nil), p.W.Data...))
	}
	return json.Marshal(sm)
}

// maxLoadParams caps the scalar parameter count a loaded model may
// request: 1<<26 floats (512 MiB) is an order of magnitude beyond the
// paper-scale architecture, while keeping a corrupted or hostile model
// file from driving Build into an unbounded allocation.
const maxLoadParams = 1 << 26

// checkSpecBudget rejects specs whose dimensions are negative or whose
// total parameter count exceeds maxLoadParams — before Build allocates
// anything (found by FuzzPTMLoad: a mutated spec could request
// petabyte-scale weight matrices and hang the loader).
func checkSpecBudget(specs []LayerSpec) error {
	var total int64
	for i, sp := range specs {
		dims := []int{sp.In, sp.Out, sp.Hidden, sp.Heads, sp.DK, sp.DV, sp.Index}
		for _, d := range dims {
			if d < 0 {
				return fmt.Errorf("nn: layer %d (%s): negative dimension in saved spec", i, sp.Kind)
			}
			if d > maxLoadParams {
				return fmt.Errorf("nn: layer %d (%s): dimension %d exceeds the load budget", i, sp.Kind, d)
			}
		}
		in, out, h := int64(sp.In), int64(sp.Out), int64(sp.Hidden)
		heads, dk, dv := int64(sp.Heads), int64(sp.DK), int64(sp.DV)
		var cost int64
		switch sp.Kind {
		case "dense":
			cost = in*out + out
		case "lstm":
			cost = 4 * h * (in + h + 1)
		case "blstm":
			cost = 8 * h * (in + h + 1)
		case "mha":
			cost = heads*in*(2*dk+dv) + heads*dv*out + out
		case "layernorm":
			cost = 2 * in
		}
		total += cost
		if cost > maxLoadParams || total > maxLoadParams {
			return fmt.Errorf("nn: saved model requests over %d parameters (limit %d); refusing to allocate", total, maxLoadParams)
		}
	}
	return nil
}

// Unmarshal reconstructs a model from Marshal output. Unknown fields
// are rejected so a corrupted or foreign file fails loudly at load
// time, and spec dimensions are budget-checked before any allocation.
func Unmarshal(data []byte) (*Sequential, error) {
	var sm savedModel
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sm); err != nil {
		return nil, fmt.Errorf("nn: decoding model: %w", err)
	}
	if err := checkSpecBudget(sm.Specs); err != nil {
		return nil, err
	}
	m, err := Build(sm.Specs, 1)
	if err != nil {
		return nil, err
	}
	ps := m.Params()
	if len(ps) != len(sm.Weights) {
		return nil, fmt.Errorf("nn: weight count mismatch (%d vs %d)", len(ps), len(sm.Weights))
	}
	for i, p := range ps {
		if len(p.W.Data) != len(sm.Weights[i]) {
			return nil, fmt.Errorf("nn: weight %d size mismatch", i)
		}
		copy(p.W.Data, sm.Weights[i])
	}
	return m, nil
}

// Save writes the model to a file atomically: temp file in the
// destination directory, fsync, then rename. A crash mid-save leaves
// the previous model (or nothing) — never a torn file.
func (s *Sequential) Save(path string) error {
	data, err := s.Marshal()
	if err != nil {
		return err
	}
	return atomicWriteFile(path, data)
}

// atomicWriteFile is the temp+fsync+rename durable write (the PR 6
// checkpoint rule; duplicated here because checkpoint imports ptm,
// which imports nn).
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".nn-*.tmp")
	if err != nil {
		return fmt.Errorf("nn: create temp in %s: %w", dir, err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("nn: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("nn: sync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("nn: close %s: %w", tmpName, err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("nn: chmod %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("nn: rename into %s: %w", path, err)
	}
	return nil
}

// Load reads a model from a file written by Save.
func Load(path string) (*Sequential, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}
