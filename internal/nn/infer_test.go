package nn

import (
	"math"
	"testing"

	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/tensor"
)

// inferTestModel exercises every built-in layer kind, including the
// dense+activation fusion peephole and the attention/BLSTM paths.
func inferTestModel(t *testing.T) *Sequential {
	t.Helper()
	r := rng.New(42)
	return NewSequential(
		NewDense(6, 12, r),
		NewActivation("tanh"),
		NewBLSTM(12, 8, r),
		NewLayerNorm(16),
		NewMultiHeadSelfAttention(16, 10, 2, 4, 4, r),
		NewActivation("relu"),
		NewDense(10, 5, r),
		NewActivation("sigmoid"),
		NewDense(5, 1, r),
	)
}

// sparseInput draws a normal input and zeroes every 7th element so the
// sparsity-skip branches of the kernels are exercised.
func sparseInput(rows, cols int, seed uint64) *tensor.Matrix {
	x := randInput(seed, rows, cols)
	for i := 0; i < len(x.Data); i += 7 {
		x.Data[i] = 0
	}
	return x
}

// TestInferMatchesForwardBitwise is the load-bearing equivalence test:
// the cache-free arena path must reproduce Forward to the bit, or the
// golden traces (generated pre-rewrite) would drift.
func TestInferMatchesForwardBitwise(t *testing.T) {
	m := inferTestModel(t)
	a := tensor.NewArena()
	for trial := uint64(0); trial < 5; trial++ {
		x := sparseInput(16, 6, 100+trial)
		want := m.Forward(x)
		a.Reset()
		got := m.Infer(x, a)
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("trial %d: shape (%d,%d) != (%d,%d)", trial, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i := range want.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("trial %d: element %d differs bitwise: infer %v forward %v",
					trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestInferLayerCoverage fails when a built-in layer kind is missing the
// arena fast path, which would silently fall back to cache-writing
// Forward and break model sharing across shards.
func TestInferLayerCoverage(t *testing.T) {
	for _, l := range inferTestModel(t).Layers {
		if _, ok := l.(inferLayer); !ok {
			t.Errorf("layer %T does not implement the cache-free infer path", l)
		}
	}
	r := rng.New(1)
	for _, l := range []Layer{NewTakeLast(), NewTakeAt(3), NewMeanPool(), NewLSTM(4, 4, r)} {
		if _, ok := l.(inferLayer); !ok {
			t.Errorf("layer %T does not implement the cache-free infer path", l)
		}
	}
}

// TestPredictBatchMatchesSequential checks the shared-model parallel
// path against single-threaded Forward.
func TestPredictBatchMatchesSequential(t *testing.T) {
	m := inferTestModel(t)
	xs := make([]*tensor.Matrix, 9)
	for i := range xs {
		xs[i] = sparseInput(16, 6, 300+uint64(i))
	}
	want := make([]*tensor.Matrix, len(xs))
	for i, x := range xs {
		want[i] = m.Forward(x).Clone()
	}
	got := PredictBatch(m, xs, 4)
	for i := range xs {
		for j := range want[i].Data {
			if math.Float64bits(got[i].Data[j]) != math.Float64bits(want[i].Data[j]) {
				t.Fatalf("sample %d element %d differs bitwise", i, j)
			}
		}
	}
}

// TestPredictBatchIntoZeroAllocs pins the steady-state allocation count
// of the hot inference loop at exactly zero. AllocsPerRun performs a
// warm-up call first, which is what fills the arena to peak demand.
func TestPredictBatchIntoZeroAllocs(t *testing.T) {
	m := inferTestModel(t)
	xs := []*tensor.Matrix{sparseInput(16, 6, 1), sparseInput(16, 6, 2)}
	out := []*tensor.Matrix{tensor.New(16, 1), tensor.New(16, 1)}
	a := tensor.NewArena()
	allocs := testing.AllocsPerRun(20, func() {
		PredictBatchInto(m, xs, out, a)
	})
	if allocs != 0 {
		t.Fatalf("PredictBatchInto allocated %.0f times per run; want 0", allocs)
	}
}
