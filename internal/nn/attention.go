package nn

import (
	"math"

	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/tensor"
)

// MultiHeadSelfAttention implements the multi-head scaled dot-product
// self-attention block of the paper's PTM (Table 1: 3 parallel heads with
// key/value dimensions (64, 32)). It maps a T×In sequence to T×Out.
type MultiHeadSelfAttention struct {
	In, Out        int
	Heads, DK, DV  int
	wq, wk, wv, wo *Param
	bo             *Param

	// Forward caches.
	x       *tensor.Matrix
	q, k, v *tensor.Matrix
	attn    []*tensor.Matrix // per-head softmax weights (T×T)
	concat  *tensor.Matrix   // T × Heads·DV
}

// NewMultiHeadSelfAttention returns a fresh attention block.
func NewMultiHeadSelfAttention(in, out, heads, dk, dv int, r *rng.Rand) *MultiHeadSelfAttention {
	a := &MultiHeadSelfAttention{In: in, Out: out, Heads: heads, DK: dk, DV: dv,
		wq: newParam("mha.wq", in, heads*dk),
		wk: newParam("mha.wk", in, heads*dk),
		wv: newParam("mha.wv", in, heads*dv),
		wo: newParam("mha.wo", heads*dv, out),
		bo: newParam("mha.bo", 1, out)}
	xavierInit(a.wq.W, r)
	xavierInit(a.wk.W, r)
	xavierInit(a.wv.W, r)
	xavierInit(a.wo.W, r)
	return a
}

// headSlice extracts columns [h·d, (h+1)·d) of m as a new T×d matrix.
func headSlice(m *tensor.Matrix, h, d int) *tensor.Matrix {
	out := tensor.New(m.Rows, d)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[h*d:(h+1)*d])
	}
	return out
}

// headScatter accumulates src (T×d) into columns [h·d, (h+1)·d) of dst.
func headScatter(dst, src *tensor.Matrix, h, d int) {
	for i := 0; i < src.Rows; i++ {
		drow := dst.Row(i)
		for j, v := range src.Row(i) {
			drow[h*d+j] += v
		}
	}
}

func (a *MultiHeadSelfAttention) Forward(x *tensor.Matrix) *tensor.Matrix {
	a.x = x
	a.q = tensor.MatMul(x, a.wq.W)
	a.k = tensor.MatMul(x, a.wk.W)
	a.v = tensor.MatMul(x, a.wv.W)
	T := x.Rows
	a.attn = make([]*tensor.Matrix, a.Heads)
	a.concat = tensor.New(T, a.Heads*a.DV)
	scale := 1 / math.Sqrt(float64(a.DK))
	for h := 0; h < a.Heads; h++ {
		qh := headSlice(a.q, h, a.DK)
		kh := headSlice(a.k, h, a.DK)
		vh := headSlice(a.v, h, a.DV)
		s := tensor.MatMulT(qh, kh) // T×T
		s.Scale(scale)
		tensor.SoftmaxRows(s)
		a.attn[h] = s
		oh := tensor.MatMul(s, vh)
		headScatter(a.concat, oh, h, a.DV)
	}
	y := tensor.MatMul(a.concat, a.wo.W)
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j, bv := range a.bo.W.Data {
			row[j] += bv
		}
	}
	return y
}

func (a *MultiHeadSelfAttention) Backward(dy *tensor.Matrix) *tensor.Matrix {
	T := a.x.Rows
	// Output projection.
	tensor.AddTMatMul(a.wo.G, a.concat, dy)
	for i := 0; i < dy.Rows; i++ {
		for j, v := range dy.Row(i) {
			a.bo.G.Data[j] += v
		}
	}
	dConcat := tensor.MatMulT(dy, a.wo.W) // T × Heads·DV

	dQ := tensor.New(T, a.Heads*a.DK)
	dK := tensor.New(T, a.Heads*a.DK)
	dV := tensor.New(T, a.Heads*a.DV)
	scale := 1 / math.Sqrt(float64(a.DK))
	for h := 0; h < a.Heads; h++ {
		dOh := headSlice(dConcat, h, a.DV)
		attn := a.attn[h]
		vh := headSlice(a.v, h, a.DV)
		qh := headSlice(a.q, h, a.DK)
		kh := headSlice(a.k, h, a.DK)

		dVh := tensor.TMatMul(attn, dOh)
		dA := tensor.MatMulT(dOh, vh) // T×T
		// Softmax backward per row: dS = A ⊙ (dA - rowsum(A ⊙ dA)).
		dS := tensor.New(T, T)
		for i := 0; i < T; i++ {
			arow, darow, dsrow := attn.Row(i), dA.Row(i), dS.Row(i)
			dot := 0.0
			for j := range arow {
				dot += arow[j] * darow[j]
			}
			for j := range arow {
				dsrow[j] = arow[j] * (darow[j] - dot)
			}
		}
		dS.Scale(scale)
		dQh := tensor.MatMul(dS, kh)
		dKh := tensor.TMatMul(dS, qh)
		headScatter(dQ, dQh, h, a.DK)
		headScatter(dK, dKh, h, a.DK)
		headScatter(dV, dVh, h, a.DV)
	}

	tensor.AddTMatMul(a.wq.G, a.x, dQ)
	tensor.AddTMatMul(a.wk.G, a.x, dK)
	tensor.AddTMatMul(a.wv.G, a.x, dV)
	dx := tensor.MatMulT(dQ, a.wq.W)
	tensor.AddInPlace(dx, tensor.MatMulT(dK, a.wk.W))
	tensor.AddInPlace(dx, tensor.MatMulT(dV, a.wv.W))
	return dx
}

func (a *MultiHeadSelfAttention) Params() []*Param {
	return []*Param{a.wq, a.wk, a.wv, a.wo, a.bo}
}

func (a *MultiHeadSelfAttention) Clone() Layer {
	c := NewMultiHeadSelfAttention(a.In, a.Out, a.Heads, a.DK, a.DV, rng.New(1))
	c.wq.W.CopyFrom(a.wq.W)
	c.wk.W.CopyFrom(a.wk.W)
	c.wv.W.CopyFrom(a.wv.W)
	c.wo.W.CopyFrom(a.wo.W)
	c.bo.W.CopyFrom(a.bo.W)
	return c
}

func (a *MultiHeadSelfAttention) Spec() LayerSpec {
	return LayerSpec{Kind: "mha", In: a.In, Out: a.Out, Heads: a.Heads, DK: a.DK, DV: a.DV}
}
