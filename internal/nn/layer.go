// Package nn is a small, dependency-free neural-network library with
// reverse-mode gradients, built for the paper's PTM architecture (Fig. 5):
// dense embeddings, stacked bidirectional LSTM encoders, multi-head
// self-attention, and an output head, trained with Adam on MSE loss.
//
// Sequences are tensor.Matrix values with one timestep per row. Layers are
// stateful across a Forward/Backward pair (they cache activations), so a
// layer instance must not be shared between goroutines; use Clone to create
// independent replicas for data-parallel training or concurrent inference.
package nn

import (
	"math"

	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/tensor"
)

// Param is one trainable parameter matrix with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Matrix
	G    *tensor.Matrix
}

func newParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: tensor.New(rows, cols), G: tensor.New(rows, cols)}
}

// Layer is a differentiable sequence-to-sequence operator.
type Layer interface {
	// Forward consumes a T×In sequence and returns a T'×Out sequence,
	// caching whatever Backward will need.
	Forward(x *tensor.Matrix) *tensor.Matrix
	// Backward consumes the gradient with respect to the last Forward
	// output and returns the gradient with respect to its input,
	// accumulating parameter gradients.
	Backward(dy *tensor.Matrix) *tensor.Matrix
	// Params returns the layer's trainable parameters.
	Params() []*Param
	// Clone returns an independent deep copy (weights copied, caches empty).
	Clone() Layer
	// Spec describes the layer for serialization.
	Spec() LayerSpec
}

func xavierInit(m *tensor.Matrix, r *rng.Rand) {
	fanIn, fanOut := m.Rows, m.Cols
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = r.Uniform(-limit, limit)
	}
}

// Dense is a time-distributed affine layer: y_t = x_t·W + b.
type Dense struct {
	In, Out int
	w, b    *Param
	x       *tensor.Matrix // cache
}

// NewDense returns a Dense layer with Xavier-initialized weights.
func NewDense(in, out int, r *rng.Rand) *Dense {
	d := &Dense{In: in, Out: out, w: newParam("dense.w", in, out), b: newParam("dense.b", 1, out)}
	xavierInit(d.w.W, r)
	return d
}

func (d *Dense) Forward(x *tensor.Matrix) *tensor.Matrix {
	d.x = x
	y := tensor.MatMul(x, d.w.W)
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j, bv := range d.b.W.Data {
			row[j] += bv
		}
	}
	return y
}

func (d *Dense) Backward(dy *tensor.Matrix) *tensor.Matrix {
	tensor.AddTMatMul(d.w.G, d.x, dy)
	for i := 0; i < dy.Rows; i++ {
		row := dy.Row(i)
		for j, v := range row {
			d.b.G.Data[j] += v
		}
	}
	return tensor.MatMulT(dy, d.w.W)
}

func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

func (d *Dense) Clone() Layer {
	c := &Dense{In: d.In, Out: d.Out,
		w: &Param{Name: d.w.Name, W: d.w.W.Clone(), G: tensor.New(d.In, d.Out)},
		b: &Param{Name: d.b.Name, W: d.b.W.Clone(), G: tensor.New(1, d.Out)}}
	return c
}

func (d *Dense) Spec() LayerSpec { return LayerSpec{Kind: "dense", In: d.In, Out: d.Out} }

// Activation applies an element-wise nonlinearity.
type Activation struct {
	Kind string // "tanh", "relu", or "sigmoid"
	y    *tensor.Matrix
}

// NewActivation returns an activation layer of the given kind.
func NewActivation(kind string) *Activation {
	switch kind {
	case "tanh", "relu", "sigmoid":
	default:
		panic("nn: unknown activation " + kind)
	}
	return &Activation{Kind: kind}
}

func (a *Activation) Forward(x *tensor.Matrix) *tensor.Matrix {
	y := x.Clone()
	switch a.Kind {
	case "tanh":
		y.Apply(math.Tanh)
	case "relu":
		y.Apply(func(v float64) float64 {
			if v < 0 {
				return 0
			}
			return v
		})
	case "sigmoid":
		y.Apply(sigmoid)
	}
	a.y = y
	return y
}

func (a *Activation) Backward(dy *tensor.Matrix) *tensor.Matrix {
	dx := dy.Clone()
	switch a.Kind {
	case "tanh":
		for i, v := range a.y.Data {
			dx.Data[i] *= 1 - v*v
		}
	case "relu":
		for i, v := range a.y.Data {
			if v <= 0 {
				dx.Data[i] = 0
			}
		}
	case "sigmoid":
		for i, v := range a.y.Data {
			dx.Data[i] *= v * (1 - v)
		}
	}
	return dx
}

func (a *Activation) Params() []*Param { return nil }
func (a *Activation) Clone() Layer     { return &Activation{Kind: a.Kind} }
func (a *Activation) Spec() LayerSpec  { return LayerSpec{Kind: "act:" + a.Kind} }

// TakeLast reduces a T×D sequence to its final timestep (1×D). It is the
// causal readout of the PTM: the window's last packet is the prediction
// target.
type TakeLast struct {
	rows, cols int
}

// NewTakeLast returns a TakeLast layer.
func NewTakeLast() *TakeLast { return &TakeLast{} }

func (t *TakeLast) Forward(x *tensor.Matrix) *tensor.Matrix {
	t.rows, t.cols = x.Rows, x.Cols
	out := tensor.New(1, x.Cols)
	copy(out.Row(0), x.Row(x.Rows-1))
	return out
}

func (t *TakeLast) Backward(dy *tensor.Matrix) *tensor.Matrix {
	dx := tensor.New(t.rows, t.cols)
	copy(dx.Row(t.rows-1), dy.Row(0))
	return dx
}

func (t *TakeLast) Params() []*Param { return nil }
func (t *TakeLast) Clone() Layer     { return &TakeLast{} }
func (t *TakeLast) Spec() LayerSpec  { return LayerSpec{Kind: "takelast"} }

// TakeAt reduces a T×D sequence to the single timestep at Index (1×D):
// the centered readout used when the window straddles the target packet
// (bidirectional context).
type TakeAt struct {
	Index      int
	rows, cols int
}

// NewTakeAt returns a TakeAt layer reading out position index.
func NewTakeAt(index int) *TakeAt { return &TakeAt{Index: index} }

func (t *TakeAt) Forward(x *tensor.Matrix) *tensor.Matrix {
	t.rows, t.cols = x.Rows, x.Cols
	i := t.Index
	if i < 0 {
		i = 0
	}
	if i >= x.Rows {
		i = x.Rows - 1
	}
	out := tensor.New(1, x.Cols)
	copy(out.Row(0), x.Row(i))
	return out
}

func (t *TakeAt) Backward(dy *tensor.Matrix) *tensor.Matrix {
	dx := tensor.New(t.rows, t.cols)
	i := t.Index
	if i < 0 {
		i = 0
	}
	if i >= t.rows {
		i = t.rows - 1
	}
	copy(dx.Row(i), dy.Row(0))
	return dx
}

func (t *TakeAt) Params() []*Param { return nil }
func (t *TakeAt) Clone() Layer     { return &TakeAt{Index: t.Index} }
func (t *TakeAt) Spec() LayerSpec  { return LayerSpec{Kind: "takeat", Index: t.Index} }

// MeanPool reduces a T×D sequence to the mean over timesteps (1×D).
type MeanPool struct {
	rows, cols int
}

// NewMeanPool returns a MeanPool layer.
func NewMeanPool() *MeanPool { return &MeanPool{} }

func (p *MeanPool) Forward(x *tensor.Matrix) *tensor.Matrix {
	p.rows, p.cols = x.Rows, x.Cols
	out := tensor.New(1, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			out.Data[j] += v
		}
	}
	out.Scale(1 / float64(x.Rows))
	return out
}

func (p *MeanPool) Backward(dy *tensor.Matrix) *tensor.Matrix {
	dx := tensor.New(p.rows, p.cols)
	inv := 1 / float64(p.rows)
	for i := 0; i < p.rows; i++ {
		row := dx.Row(i)
		for j := range row {
			row[j] = dy.Data[j] * inv
		}
	}
	return dx
}

func (p *MeanPool) Params() []*Param { return nil }
func (p *MeanPool) Clone() Layer     { return &MeanPool{} }
func (p *MeanPool) Spec() LayerSpec  { return LayerSpec{Kind: "meanpool"} }

// LayerNorm normalizes each timestep's feature vector to zero mean and
// unit variance, then applies a learned affine transform — the
// Transformer-style stabilizer, useful between the encoder stacks when
// training deeper PTMs.
type LayerNorm struct {
	Dim         int
	gamma, beta *Param

	x      *tensor.Matrix // cache
	normed *tensor.Matrix
	invStd []float64
}

// NewLayerNorm returns a LayerNorm over dim features (γ=1, β=0).
func NewLayerNorm(dim int) *LayerNorm {
	l := &LayerNorm{Dim: dim,
		gamma: newParam("ln.gamma", 1, dim),
		beta:  newParam("ln.beta", 1, dim)}
	for i := range l.gamma.W.Data {
		l.gamma.W.Data[i] = 1
	}
	return l
}

const lnEps = 1e-6

func (l *LayerNorm) Forward(x *tensor.Matrix) *tensor.Matrix {
	l.x = x
	l.normed = tensor.New(x.Rows, x.Cols)
	l.invStd = make([]float64, x.Rows)
	y := tensor.New(x.Rows, x.Cols)
	for t := 0; t < x.Rows; t++ {
		row := x.Row(t)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		variance := 0.0
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float64(len(row))
		inv := 1 / math.Sqrt(variance+lnEps)
		l.invStd[t] = inv
		nr := l.normed.Row(t)
		yr := y.Row(t)
		for j, v := range row {
			nr[j] = (v - mean) * inv
			yr[j] = nr[j]*l.gamma.W.Data[j] + l.beta.W.Data[j]
		}
	}
	return y
}

func (l *LayerNorm) Backward(dy *tensor.Matrix) *tensor.Matrix {
	n := float64(l.Dim)
	dx := tensor.New(dy.Rows, dy.Cols)
	for t := 0; t < dy.Rows; t++ {
		dyr := dy.Row(t)
		nr := l.normed.Row(t)
		// Parameter gradients.
		for j := range dyr {
			l.gamma.G.Data[j] += dyr[j] * nr[j]
			l.beta.G.Data[j] += dyr[j]
		}
		// dnormed = dy ⊙ γ; standard layer-norm input gradient:
		// dx = invStd/n · (n·dn − Σdn − normed·Σ(dn ⊙ normed)).
		sumDn, sumDnN := 0.0, 0.0
		dn := make([]float64, l.Dim)
		for j := range dyr {
			dn[j] = dyr[j] * l.gamma.W.Data[j]
			sumDn += dn[j]
			sumDnN += dn[j] * nr[j]
		}
		dxr := dx.Row(t)
		inv := l.invStd[t]
		for j := range dxr {
			dxr[j] = inv / n * (n*dn[j] - sumDn - nr[j]*sumDnN)
		}
	}
	return dx
}

func (l *LayerNorm) Params() []*Param { return []*Param{l.gamma, l.beta} }

func (l *LayerNorm) Clone() Layer {
	c := NewLayerNorm(l.Dim)
	c.gamma.W.CopyFrom(l.gamma.W)
	c.beta.W.CopyFrom(l.beta.W)
	return c
}

func (l *LayerNorm) Spec() LayerSpec { return LayerSpec{Kind: "layernorm", In: l.Dim} }

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }
