package nn

import (
	"fmt"
	"math"

	"deepqueuenet/internal/tensor"
)

// Quantized inference backend: int8 weights (per-input-row absmax
// scales, tensor.QuantMat), float32 activations, and fast float32
// transcendentals. Built once from a trained Sequential by Quantize;
// the result is immutable and safe to share across goroutines (all
// per-inference scratch comes from the caller's ArenaF32). The exact
// float64 path stays the default — this backend is opt-in
// (ptm.WithQuantized / dqnet -quant / dqnserve -quant) and its accuracy
// is gated by the committed golden-scenario thresholds rather than
// bit-identity.

// qLayer is one quantized layer's forward pass.
type qLayer interface {
	qinfer(x *tensor.MatrixF32, a *tensor.ArenaF32) *tensor.MatrixF32
}

// QuantSequential is an immutable quantized model.
type QuantSequential struct {
	layers []qLayer
}

// Quantize builds the quantized form of s. It fails on custom layer
// types (only the built-in PTM layer kinds have quantized
// counterparts).
func Quantize(s *Sequential) (*QuantSequential, error) {
	qs := &QuantSequential{}
	for i := 0; i < len(s.Layers); i++ {
		switch l := s.Layers[i].(type) {
		case *Dense:
			q := &qDense{out: l.Out, w: tensor.QuantizeMat(l.w.W), b: f32Row(l.b.W), act: tensor.ActNone}
			// Fold a following activation into the dense kernel, like the
			// exact path's Dense+Activation peephole.
			if i+1 < len(s.Layers) {
				if av, ok := s.Layers[i+1].(*Activation); ok {
					q.act = av.actKind()
					i++
				}
			}
			qs.layers = append(qs.layers, q)
		case *Activation:
			qs.layers = append(qs.layers, &qAct{act: l.actKind()})
		case *LSTM:
			qs.layers = append(qs.layers, quantLSTM(l))
		case *BLSTM:
			qs.layers = append(qs.layers, &qBLSTM{fwd: quantLSTM(l.fwd), bwd: quantLSTM(l.bwd)})
		case *MultiHeadSelfAttention:
			cat := tensor.ConcatCols(tensor.ConcatCols(l.wq.W, l.wk.W), l.wv.W)
			q := &qMHA{
				heads: l.Heads, dk: l.DK, dv: l.DV, out: l.Out,
				wqkv: tensor.QuantizeMat(cat),
				wo:   tensor.QuantizeMat(l.wo.W),
				bo:   f32Row(l.bo.W),
			}
			qs.layers = append(qs.layers, q)
		case *TakeLast:
			qs.layers = append(qs.layers, &qTakeAt{index: -1})
		case *TakeAt:
			qs.layers = append(qs.layers, &qTakeAt{index: l.Index})
		case *MeanPool:
			qs.layers = append(qs.layers, &qMeanPool{})
		case *LayerNorm:
			qs.layers = append(qs.layers, &qLayerNorm{gamma: f32Row(l.gamma.W), beta: f32Row(l.beta.W)})
		default:
			return nil, fmt.Errorf("nn: Quantize: no quantized form for layer type %T", l)
		}
	}
	return qs, nil
}

// f32Row converts a 1×N parameter matrix to a float32 slice.
func f32Row(m *tensor.Matrix) []float32 {
	out := make([]float32, len(m.Data))
	for i, v := range m.Data {
		out[i] = float32(v)
	}
	return out
}

func quantLSTM(l *LSTM) *qLSTM {
	return &qLSTM{
		hidden: l.Hidden,
		wx:     tensor.QuantizeMat(l.wx.W),
		wh:     tensor.QuantizeMat(l.wh.W),
		b:      f32Row(l.b.W),
	}
}

// Infer runs the quantized forward pass. The returned matrix is backed
// by a and valid until a.Reset. qs is immutable: concurrent callers
// each bring their own arena.
func (qs *QuantSequential) Infer(x *tensor.MatrixF32, a *tensor.ArenaF32) *tensor.MatrixF32 {
	for _, l := range qs.layers {
		x = l.qinfer(x, a)
	}
	return x
}

type qDense struct {
	out int
	w   *tensor.QuantMat
	b   []float32
	act tensor.ActKind
}

func (d *qDense) qinfer(x *tensor.MatrixF32, a *tensor.ArenaF32) *tensor.MatrixF32 {
	y := a.NewMatrix(x.Rows, d.out)
	tensor.QMatMulBiasActInto(y, x, d.w, d.b, d.act)
	return y
}

type qAct struct{ act tensor.ActKind }

func (q *qAct) qinfer(x *tensor.MatrixF32, a *tensor.ArenaF32) *tensor.MatrixF32 {
	y := a.NewMatrix(x.Rows, x.Cols)
	copy(y.Data, x.Data)
	for i := 0; i < y.Rows; i++ {
		tensor.ApplyActF32(y.Row(i), q.act)
	}
	return y
}

type qLSTM struct {
	hidden int
	wx, wh *tensor.QuantMat
	b      []float32
}

func (l *qLSTM) qinfer(x *tensor.MatrixF32, a *tensor.ArenaF32) *tensor.MatrixF32 {
	T, H := x.Rows, l.hidden
	z := a.NewMatrix(T, 4*H)
	tensor.QMatMulInto(z, x, l.wx)
	hs := a.NewMatrix(T, H)
	hPrev := a.AllocZero(H)
	cPrev := a.AllocZero(H)
	for t := 0; t < T; t++ {
		zr := z.Row(t)
		tensor.QAddVecMatInto(zr, hPrev, l.wh)
		hr := hs.Row(t)
		// Same structure as the exact path's GatesInto: bias add, the
		// three sigmoid blocks and the candidate tanh block through the
		// vectorized slice transcendentals, then the c/h combines.
		for j, bv := range l.b {
			zr[j] += bv
		}
		tensor.FastSigmoidSlice(zr[:3*H], zr[:3*H])
		tensor.FastTanhSlice(zr[3*H:], zr[3*H:])
		gi, gf, go_, gg := zr[:H], zr[H:2*H], zr[2*H:3*H], zr[3*H:]
		for k := 0; k < H; k++ {
			cPrev[k] = gf[k]*cPrev[k] + gi[k]*gg[k]
		}
		tensor.FastTanhSlice(hr, cPrev)
		for k := 0; k < H; k++ {
			hr[k] *= go_[k]
		}
		hPrev = hr
	}
	return hs
}

type qBLSTM struct{ fwd, bwd *qLSTM }

func (b *qBLSTM) qinfer(x *tensor.MatrixF32, a *tensor.ArenaF32) *tensor.MatrixF32 {
	rx := a.NewMatrix(x.Rows, x.Cols)
	tensor.ReverseRowsF32Into(rx, x)
	yf := b.fwd.qinfer(x, a)
	yb := b.bwd.qinfer(rx, a)
	ryb := a.NewMatrix(yb.Rows, yb.Cols)
	tensor.ReverseRowsF32Into(ryb, yb)
	out := a.NewMatrix(yf.Rows, yf.Cols+ryb.Cols)
	tensor.ConcatColsF32Into(out, yf, ryb)
	return out
}

type qMHA struct {
	heads, dk, dv, out int
	wqkv               *tensor.QuantMat
	wo                 *tensor.QuantMat
	bo                 []float32
}

func (m *qMHA) qinfer(x *tensor.MatrixF32, a *tensor.ArenaF32) *tensor.MatrixF32 {
	T := x.Rows
	hk, hv := m.heads*m.dk, m.heads*m.dv
	qkv := a.NewMatrix(T, 2*hk+hv)
	tensor.QMatMulInto(qkv, x, m.wqkv)
	concat := a.NewMatrixZero(T, hv)
	scale := float32(1 / math.Sqrt(float64(m.dk)))
	qh := a.NewMatrix(T, m.dk)
	kh := a.NewMatrix(T, m.dk)
	vh := a.NewMatrix(T, m.dv)
	s := a.NewMatrix(T, T)
	oh := a.NewMatrix(T, m.dv)
	for h := 0; h < m.heads; h++ {
		tensor.ColSliceF32Into(qh, qkv, h*m.dk, (h+1)*m.dk)
		tensor.ColSliceF32Into(kh, qkv, hk+h*m.dk, hk+(h+1)*m.dk)
		tensor.ColSliceF32Into(vh, qkv, 2*hk+h*m.dv, 2*hk+(h+1)*m.dv)
		tensor.MatMulTF32Into(s, qh, kh)
		for i := range s.Data {
			s.Data[i] *= scale
		}
		tensor.SoftmaxRowsF32(s)
		tensor.MatMulF32Into(oh, s, vh)
		for i := 0; i < T; i++ {
			drow := concat.Row(i)
			for j, v := range oh.Row(i) {
				drow[h*m.dv+j] += v
			}
		}
	}
	y := a.NewMatrix(T, m.out)
	tensor.QMatMulBiasActInto(y, concat, m.wo, m.bo, tensor.ActNone)
	return y
}

// qTakeAt reads out one timestep; index -1 means the last (TakeLast).
type qTakeAt struct{ index int }

func (t *qTakeAt) qinfer(x *tensor.MatrixF32, a *tensor.ArenaF32) *tensor.MatrixF32 {
	i := t.index
	if i < 0 {
		i = 0
	}
	if t.index == -1 || i >= x.Rows {
		i = x.Rows - 1
	}
	out := a.NewMatrix(1, x.Cols)
	copy(out.Row(0), x.Row(i))
	return out
}

type qMeanPool struct{}

func (p *qMeanPool) qinfer(x *tensor.MatrixF32, a *tensor.ArenaF32) *tensor.MatrixF32 {
	out := a.NewMatrixZero(1, x.Cols)
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			out.Data[j] += v
		}
	}
	inv := 1 / float32(x.Rows)
	for j := range out.Data {
		out.Data[j] *= inv
	}
	return out
}

type qLayerNorm struct{ gamma, beta []float32 }

func (l *qLayerNorm) qinfer(x *tensor.MatrixF32, a *tensor.ArenaF32) *tensor.MatrixF32 {
	y := a.NewMatrix(x.Rows, x.Cols)
	for t := 0; t < x.Rows; t++ {
		row := x.Row(t)
		var mean float32
		for _, v := range row {
			mean += v
		}
		mean /= float32(len(row))
		var variance float32
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float32(len(row))
		inv := 1 / float32(math.Sqrt(float64(variance)+lnEps))
		yr := y.Row(t)
		for j, v := range row {
			yr[j] = (v-mean)*inv*l.gamma[j] + l.beta[j]
		}
	}
	return y
}
