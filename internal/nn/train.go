package nn

import (
	"fmt"
	"runtime"
	"sync"

	"deepqueuenet/internal/guard"
	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/tensor"
)

// Dataset is a supervised sequence-regression dataset: each sample is a
// T×F feature chunk with a T×1 target sequence. Loss is evaluated only
// on positions [Lo, Hi) — the chunk interior with full bidirectional
// context (edge positions are covered by neighbouring chunks).
type Dataset struct {
	X      []*tensor.Matrix
	Y      []*tensor.Matrix
	Lo, Hi []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Append adds one sample with loss positions [lo, hi).
func (d *Dataset) Append(x, y *tensor.Matrix, lo, hi int) {
	if y.Rows != x.Rows || y.Cols != 1 {
		panic("nn: target must be T×1 matching the input rows")
	}
	if lo < 0 || hi > x.Rows || lo >= hi {
		panic("nn: invalid loss range")
	}
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
	d.Lo = append(d.Lo, lo)
	d.Hi = append(d.Hi, hi)
}

// Split partitions the dataset into training and validation sets with the
// given training fraction, shuffled deterministically by seed.
func (d *Dataset) Split(trainFrac float64, seed uint64) (train, val *Dataset) {
	r := rng.New(seed)
	perm := r.Perm(d.Len())
	nTrain := int(trainFrac * float64(d.Len()))
	train, val = &Dataset{}, &Dataset{}
	for i, idx := range perm {
		dst := val
		if i < nTrain {
			dst = train
		}
		dst.Append(d.X[idx], d.Y[idx], d.Lo[idx], d.Hi[idx])
	}
	return train, val
}

// sampleLoss runs forward/backward (backward only when train) for one
// sample and returns the summed squared error and position count.
func sampleLoss(m *Sequential, ds *Dataset, idx int, train bool) (sse float64, n int) {
	pred := m.Forward(ds.X[idx])
	lo, hi := ds.Lo[idx], ds.Hi[idx]
	dy := tensor.New(pred.Rows, 1)
	y := ds.Y[idx]
	for t := lo; t < hi; t++ {
		diff := pred.At(t, 0) - y.At(t, 0)
		sse += diff * diff
		dy.Set(t, 0, 2*diff/float64(hi-lo))
	}
	if train {
		m.Backward(dy)
	}
	return sse, hi - lo
}

// TrainConfig controls the data-parallel training loop.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Workers   int // data-parallel replicas; 0 means GOMAXPROCS
	Seed      uint64
	ClipNorm  float64 // 0 disables gradient clipping
	// LogEvery, if > 0, records the loss every LogEvery optimizer steps.
	LogEvery int
	OnStep   func(step int, loss float64)
}

// TrainResult reports the loss trajectory of a training run.
type TrainResult struct {
	Steps  []int
	Losses []float64 // minibatch MSE at each recorded step
	Final  float64   // mean loss of the last epoch
}

// Train fits the model to the dataset with data-parallel minibatch SGD
// (Adam). Worker replicas each process a shard of every minibatch and
// their gradients are averaged into the master model — the CPU analogue
// of the paper's multi-GPU training. The master model is updated in
// place.
func Train(model *Sequential, ds *Dataset, cfg TrainConfig) TrainResult {
	if ds.Len() == 0 {
		return TrainResult{}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers > ds.Len() {
		cfg.Workers = ds.Len()
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.001
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}

	replicas := make([]*Sequential, cfg.Workers)
	for i := range replicas {
		replicas[i] = model.Clone()
	}
	opt := NewAdam(model.Params(), cfg.LR)
	r := rng.New(cfg.Seed)
	var res TrainResult
	step := 0

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := r.Perm(ds.Len())
		epochLoss, epochBatches := 0.0, 0
		for start := 0; start < len(perm); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			batch := perm[start:end]
			losses := make([]float64, cfg.Workers)
			counts := make([]int, cfg.Workers)
			panics := make([]*guard.WorkerError, cfg.Workers)
			var wg sync.WaitGroup
			for w := 0; w < cfg.Workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					defer func() {
						if we := guard.RecoveredWorker(w, recover()); we != nil {
							panics[w] = we
						}
					}()
					rep := replicas[w]
					rep.ZeroGrads()
					for bi := w; bi < len(batch); bi += cfg.Workers {
						sse, n := sampleLoss(rep, ds, batch[bi], true)
						losses[w] += sse
						counts[w] += n
					}
				}(w)
			}
			wg.Wait()
			guard.RethrowWorkers(panics)

			// Average worker gradients into the master gradients.
			master := model.Params()
			for _, p := range master {
				p.G.Zero()
			}
			scale := 1 / float64(len(batch))
			loss, positions := 0.0, 0
			for w := 0; w < cfg.Workers; w++ {
				loss += losses[w]
				positions += counts[w]
				for pi, p := range replicas[w].Params() {
					for j, g := range p.G.Data {
						master[pi].G.Data[j] += g * scale
					}
				}
			}
			if positions > 0 {
				loss /= float64(positions)
			}
			if cfg.ClipNorm > 0 {
				ClipGrads(master, cfg.ClipNorm)
			}
			opt.Step()
			for _, rep := range replicas {
				rep.SyncFrom(model)
			}

			step++
			epochLoss += loss
			epochBatches++
			if cfg.LogEvery > 0 && step%cfg.LogEvery == 0 {
				res.Steps = append(res.Steps, step)
				res.Losses = append(res.Losses, loss)
				if cfg.OnStep != nil {
					cfg.OnStep(step, loss)
				}
			}
		}
		if epochBatches > 0 {
			res.Final = epochLoss / float64(epochBatches)
		}
	}
	return res
}

// Evaluate returns the per-position MSE of the model over the dataset.
func Evaluate(model *Sequential, ds *Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	sum, n := 0.0, 0
	for i := range ds.X {
		sse, c := sampleLoss(model, ds, i, false)
		sum += sse
		n += c
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PredictBatch runs forward inference over many chunks in parallel using
// worker model replicas (the inference analogue of multi-GPU execution),
// returning the full T×1 output of each chunk.
func PredictBatch(model *Sequential, xs []*tensor.Matrix, workers int) []*tensor.Matrix {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(xs) {
		workers = len(xs)
	}
	out := make([]*tensor.Matrix, len(xs))
	if len(xs) == 0 {
		return out
	}
	if workers <= 1 {
		predictRange(model, xs, out, 0, 1, tensor.NewArena())
		return out
	}
	// Infer is cache-free, so all workers share the model read-only;
	// each worker owns an arena for its intermediates.
	var wg sync.WaitGroup
	panics := make([]*guard.WorkerError, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if we := guard.RecoveredWorker(w, recover()); we != nil {
					panics[w] = we
				}
			}()
			predictRange(model, xs, out, w, workers, tensor.NewArena())
		}(w)
	}
	wg.Wait()
	guard.RethrowWorkers(panics)
	return out
}

// String summarizes the training result.
func (r TrainResult) String() string {
	return fmt.Sprintf("final MSE %.6g over %d recorded steps", r.Final, len(r.Steps))
}
