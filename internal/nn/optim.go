package nn

import "math"

// Adam implements the Adam optimizer (Kingma & Ba) over a fixed parameter
// set, matching the paper's training setup (§5.2: Adam, fixed learning
// rate 0.001).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	params                []*Param
	m, v                  [][]float64
	t                     int
}

// NewAdam returns an Adam optimizer over params with the given learning
// rate and default moment decay rates (0.9, 0.999).
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.W.Data))
		a.v[i] = make([]float64, len(p.W.Data))
	}
	return a
}

// Step applies one Adam update using the accumulated gradients, then
// leaves the gradients untouched (callers typically ZeroGrads next).
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j, g := range p.G.Data {
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mhat := m[j] / bc1
			vhat := v[j] / bc2
			p.W.Data[j] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}

// ClipGrads scales all gradients so their global L2 norm is at most max.
// Returns the pre-clip norm.
func ClipGrads(params []*Param, max float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.G.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > max && norm > 0 {
		s := max / norm
		for _, p := range params {
			for j := range p.G.Data {
				p.G.Data[j] *= s
			}
		}
	}
	return norm
}
