package nn

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/tensor"
)

// buildToy returns a small PTM-shaped seq2seq model (T×2 -> T×1).
func buildToy(seed uint64) *Sequential {
	r := rng.New(seed)
	return NewSequential(
		NewDense(2, 8, r),
		NewActivation("tanh"),
		NewBLSTM(8, 6, r),
		NewMultiHeadSelfAttention(12, 8, 2, 4, 4, r),
		NewDense(8, 1, r),
	)
}

// toyDataset: per-timestep target is a local function of the sequence —
// the current value of feature 0 plus half the previous value of
// feature 1 (y_0 uses feature 1 of position 0).
func toyDataset(n, T int, seed uint64) *Dataset {
	r := rng.New(seed)
	ds := &Dataset{}
	for i := 0; i < n; i++ {
		x := tensor.New(T, 2)
		for t := 0; t < T; t++ {
			x.Set(t, 0, r.Uniform(0, 1))
			x.Set(t, 1, r.Uniform(0, 1))
		}
		y := tensor.New(T, 1)
		for t := 0; t < T; t++ {
			prev := t - 1
			if prev < 0 {
				prev = 0
			}
			y.Set(t, 0, x.At(t, 0)+0.5*x.At(prev, 1))
		}
		ds.Append(x, y, 0, T)
	}
	return ds
}

func TestTrainingReducesLoss(t *testing.T) {
	model := buildToy(1)
	ds := toyDataset(400, 8, 2)
	before := Evaluate(model, ds)
	Train(model, ds, TrainConfig{Epochs: 10, BatchSize: 32, LR: 0.005, Workers: 2, Seed: 3})
	after := Evaluate(model, ds)
	if after >= before {
		t.Fatalf("loss did not decrease: %v -> %v", before, after)
	}
	if after > before*0.3 {
		t.Fatalf("loss reduced too little: %v -> %v", before, after)
	}
}

func TestTrainDeterministicGivenSeedAndWorkers(t *testing.T) {
	// With a single worker, runs must be bit-identical.
	ds := toyDataset(100, 6, 5)
	m1, m2 := buildToy(7), buildToy(7)
	Train(m1, ds, TrainConfig{Epochs: 2, BatchSize: 16, LR: 0.01, Workers: 1, Seed: 9})
	Train(m2, ds, TrainConfig{Epochs: 2, BatchSize: 16, LR: 0.01, Workers: 1, Seed: 9})
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].W.Data {
			if p1[i].W.Data[j] != p2[i].W.Data[j] {
				t.Fatalf("nondeterministic training at param %d[%d]", i, j)
			}
		}
	}
}

func TestWorkerCountDoesNotChangeGradientMath(t *testing.T) {
	// One full-batch step with 1 vs 3 workers must produce (nearly)
	// identical parameters: gradient averaging is associative.
	ds := toyDataset(30, 5, 11)
	m1, m3 := buildToy(13), buildToy(13)
	cfg := TrainConfig{Epochs: 1, BatchSize: 30, LR: 0.01, Seed: 17}
	cfg.Workers = 1
	Train(m1, ds, cfg)
	cfg.Workers = 3
	Train(m3, ds, cfg)
	p1, p3 := m1.Params(), m3.Params()
	for i := range p1 {
		for j := range p1[i].W.Data {
			if math.Abs(p1[i].W.Data[j]-p3[i].W.Data[j]) > 1e-9 {
				t.Fatalf("worker-count dependent result at param %d[%d]: %v vs %v",
					i, j, p1[i].W.Data[j], p3[i].W.Data[j])
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	model := buildToy(21)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(6, 2)
	r := rng.New(23)
	for i := range x.Data {
		x.Data[i] = r.Normal(0, 1)
	}
	want := model.Forward(x).At(0, 0)
	got := loaded.Forward(x).At(0, 0)
	if want != got {
		t.Fatalf("loaded model predicts %v, original %v", got, want)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Unmarshal([]byte(`{"specs":[{"kind":"wat"}],"weights":[]}`)); err == nil {
		t.Fatal("expected error for unknown layer kind")
	}
}

// TestUnmarshalRejectsOversizedSpecs pins the FuzzPTMLoad finding: a
// hostile model file must not drive Build into allocating weight
// matrices before validation.
func TestUnmarshalRejectsOversizedSpecs(t *testing.T) {
	cases := []string{
		`{"specs":[{"kind":"dense","in":1000000000,"out":1000000000}],"weights":[]}`,
		`{"specs":[{"kind":"blstm","in":8,"hidden":-4}],"weights":[]}`,
		`{"specs":[{"kind":"mha","in":100000,"out":100000,"heads":100000,"dk":100000,"dv":100000}],"weights":[]}`,
		`{"specs":[` + strings.Repeat(`{"kind":"dense","in":4096,"out":4096},`, 8) +
			`{"kind":"dense","in":4096,"out":4096}],"weights":[]}`,
	}
	for _, c := range cases {
		done := make(chan error, 1)
		//dqnlint:allow goguard test goroutine: a panic crashes the test binary, which is exactly the loud failure this budget test wants
		go func() {
			_, err := Unmarshal([]byte(c))
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("Unmarshal accepted oversized spec %.60s...", c)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("Unmarshal hung on oversized spec %.60s...", c)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	model := buildToy(31)
	clone := model.Clone()
	// Mutate the clone's weights; the original must be unaffected.
	clone.Params()[0].W.Data[0] += 100
	if model.Params()[0].W.Data[0] == clone.Params()[0].W.Data[0] {
		t.Fatal("clone shares weight storage")
	}
	x := tensor.New(4, 2)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y1 := model.Forward(x).At(0, 0)
	y2 := clone.Forward(x).At(0, 0)
	if y1 == y2 {
		t.Fatal("diverged clone predicts identically")
	}
}

func TestSyncFrom(t *testing.T) {
	a, b := buildToy(41), buildToy(42)
	b.SyncFrom(a)
	x := tensor.New(5, 2)
	r := rng.New(43)
	for i := range x.Data {
		x.Data[i] = r.Normal(0, 1)
	}
	if a.Forward(x).At(0, 0) != b.Forward(x).At(0, 0) {
		t.Fatal("SyncFrom did not equalize predictions")
	}
}

func TestPredictBatchMatchesSerial(t *testing.T) {
	model := buildToy(51)
	r := rng.New(52)
	xs := make([]*tensor.Matrix, 37)
	for i := range xs {
		x := tensor.New(5, 2)
		for j := range x.Data {
			x.Data[j] = r.Normal(0, 1)
		}
		xs[i] = x
	}
	serial := PredictBatch(model, xs, 1)
	parallel := PredictBatch(model, xs, 4)
	for i := range serial {
		for j := range serial[i].Data {
			if serial[i].Data[j] != parallel[i].Data[j] {
				t.Fatalf("parallel prediction differs at %d[%d]", i, j)
			}
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w - 3)^2 directly through the optimizer.
	p := &Param{Name: "w", W: tensor.New(1, 1), G: tensor.New(1, 1)}
	opt := NewAdam([]*Param{p}, 0.05)
	for i := 0; i < 2000; i++ {
		p.G.Data[0] = 2 * (p.W.Data[0] - 3)
		opt.Step()
	}
	if math.Abs(p.W.Data[0]-3) > 1e-3 {
		t.Fatalf("Adam converged to %v, want 3", p.W.Data[0])
	}
}

func TestClipGrads(t *testing.T) {
	p := &Param{Name: "w", W: tensor.New(1, 2), G: tensor.New(1, 2)}
	p.G.Data[0], p.G.Data[1] = 3, 4 // norm 5
	norm := ClipGrads([]*Param{p}, 1)
	if norm != 5 {
		t.Fatalf("pre-clip norm %v", norm)
	}
	got := math.Hypot(p.G.Data[0], p.G.Data[1])
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("post-clip norm %v", got)
	}
	// Below the threshold: untouched.
	p.G.Data[0], p.G.Data[1] = 0.3, 0.4
	ClipGrads([]*Param{p}, 1)
	if p.G.Data[0] != 0.3 {
		t.Fatal("clip modified small gradient")
	}
}

func TestDatasetSplit(t *testing.T) {
	ds := toyDataset(100, 4, 61)
	train, val := ds.Split(0.8, 62)
	if train.Len() != 80 || val.Len() != 20 {
		t.Fatalf("split sizes %d/%d", train.Len(), val.Len())
	}
}

func TestBuildPaperScaleArchitecture(t *testing.T) {
	// Table 1 of the paper: 2-layer BLSTM (200, 100), 3 heads (64, 32),
	// time steps 21. Verify the architecture builds and runs forward.
	specs := []LayerSpec{
		{Kind: "dense", In: 14, Out: 32},
		{Kind: "act:tanh"},
		{Kind: "blstm", In: 32, Hidden: 200},
		{Kind: "blstm", In: 400, Hidden: 100},
		{Kind: "mha", In: 200, Out: 64, Heads: 3, DK: 64, DV: 32},
		{Kind: "takelast"},
		{Kind: "dense", In: 64, Out: 1},
	}
	m, err := Build(specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(21, 14)
	y := m.Forward(x)
	if y.Rows != 1 || y.Cols != 1 {
		t.Fatalf("output shape %dx%d", y.Rows, y.Cols)
	}
	if m.NumParams() < 100000 {
		t.Fatalf("paper-scale model suspiciously small: %d params", m.NumParams())
	}
}

func TestTrainEmptyDataset(t *testing.T) {
	model := buildToy(71)
	res := Train(model, &Dataset{}, TrainConfig{Epochs: 1})
	if res.Final != 0 || len(res.Steps) != 0 {
		t.Fatalf("empty dataset training: %+v", res)
	}
}

func TestMain(m *testing.M) { os.Exit(m.Run()) }
