package nn

import (
	"testing"

	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/tensor"
)

func benchModel() *Sequential {
	r := rng.New(1)
	return NewSequential(
		NewDense(15, 12, r),
		NewActivation("tanh"),
		NewBLSTM(12, 16, r),
		NewBLSTM(32, 10, r),
		NewMultiHeadSelfAttention(20, 16, 2, 8, 8, r),
		NewActivation("tanh"),
		NewDense(16, 1, r),
	)
}

func benchInput(rows int) *tensor.Matrix {
	r := rng.New(2)
	x := tensor.New(rows, 15)
	for i := range x.Data {
		x.Data[i] = r.Normal(0, 1)
	}
	return x
}

// BenchmarkForward measures one PTM-shaped forward pass over a 32-packet
// chunk (the inference unit of the simulator).
func BenchmarkForward(b *testing.B) {
	m := benchModel()
	x := benchInput(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*32), "ns/pkt")
}

// BenchmarkForwardBackward measures one training step on a chunk.
func BenchmarkForwardBackward(b *testing.B) {
	m := benchModel()
	x := benchInput(32)
	dy := tensor.New(32, 1)
	for i := range dy.Data {
		dy.Data[i] = 0.1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
		m.Backward(dy)
	}
}

// BenchmarkMatMul measures the core kernel at PTM-typical sizes.
func BenchmarkMatMul(b *testing.B) {
	r := rng.New(3)
	a := tensor.New(32, 32)
	c := tensor.New(32, 64)
	for i := range a.Data {
		a.Data[i] = r.Normal(0, 1)
	}
	for i := range c.Data {
		c.Data[i] = r.Normal(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(a, c)
	}
}
