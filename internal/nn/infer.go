package nn

import (
	"math"

	"deepqueuenet/internal/tensor"
)

// Inference fast path: every built-in layer implements inferLayer, a
// forward pass that (a) writes no layer caches, so a model can be
// shared read-only across goroutines, and (b) takes every intermediate
// from a tensor.Arena, so a warmed arena runs a whole window with zero
// heap allocations. The arithmetic — operation kinds and per-element
// accumulation order — matches each layer's Forward, so Infer results
// are bit-identical to Forward results; the golden-trace and
// infer-equivalence tests enforce that.
//
// With a non-nil Packs the dense, LSTM, and attention matmuls run on
// the packed blocked-GEMM kernels (weights repacked once per session,
// AVX2 microkernels on amd64). Packed and unpacked paths are
// bit-identical; only speed differs.

// inferLayer is the allocation-free, cache-free forward pass. pk may be
// nil (no weight-pack cache: the unpacked kernels are used).
type inferLayer interface {
	infer(x *tensor.Matrix, a *tensor.Arena, pk *Packs) *tensor.Matrix
}

// Infer runs a forward pass for inference only, without a weight-pack
// cache. The returned matrix is backed by a and valid until a.Reset;
// copy it out to keep it.
//
// Unlike Forward, Infer does not touch layer caches: when every layer
// is one of the built-in kinds, a single *Sequential may be shared by
// any number of goroutines each holding its own Arena. A custom Layer
// type falls back to its Forward (correct, but cache-writing — such a
// model must not be shared).
func (s *Sequential) Infer(x *tensor.Matrix, a *tensor.Arena) *tensor.Matrix {
	return s.InferPacks(x, a, nil)
}

// InferPacks is Infer with a session-owned weight-pack cache: matmul
// weights are served from pk (packed on first use) and the blocked
// kernels run on the packed panels. Results are bit-identical to Infer;
// pk must not be shared across goroutines.
func (s *Sequential) InferPacks(x *tensor.Matrix, a *tensor.Arena, pk *Packs) *tensor.Matrix {
	for i := 0; i < len(s.Layers); i++ {
		if d, ok := s.Layers[i].(*Dense); ok {
			// Fused dense+activation: one pass over the output rows.
			act := tensor.ActNone
			if i+1 < len(s.Layers) {
				if av, ok := s.Layers[i+1].(*Activation); ok {
					act = av.actKind()
					i++
				}
			}
			y := a.NewMatrix(x.Rows, d.Out)
			if pk != nil {
				tensor.MatMulPackedBiasActInto(y, x, pk.of(d.w), d.b.W, act)
			} else {
				tensor.MatMulBiasActInto(y, x, d.w.W, d.b.W, act)
			}
			x = y
			continue
		}
		if il, ok := s.Layers[i].(inferLayer); ok {
			x = il.infer(x, a, pk)
			continue
		}
		//dqnlint:allow hotalloc custom-Layer fallback: every built-in layer takes the arena infer path above; Forward's caches only run for user layer types, which the zero-alloc pins never ship
		x = s.Layers[i].Forward(x)
	}
	return x
}

// actKind maps the activation name to the fused-kernel enum.
func (a *Activation) actKind() tensor.ActKind {
	switch a.Kind {
	case "tanh":
		return tensor.ActTanh
	case "relu":
		return tensor.ActRelu
	case "sigmoid":
		return tensor.ActSigmoid
	}
	return tensor.ActNone
}

func (d *Dense) infer(x *tensor.Matrix, a *tensor.Arena, pk *Packs) *tensor.Matrix {
	y := a.NewMatrix(x.Rows, d.Out)
	if pk != nil {
		tensor.MatMulPackedBiasActInto(y, x, pk.of(d.w), d.b.W, tensor.ActNone)
	} else {
		tensor.MatMulBiasActInto(y, x, d.w.W, d.b.W, tensor.ActNone)
	}
	return y
}

func (a *Activation) infer(x *tensor.Matrix, ar *tensor.Arena, _ *Packs) *tensor.Matrix {
	y := ar.NewMatrix(x.Rows, x.Cols)
	switch a.Kind {
	case "tanh":
		tensor.ApplyInto(y, x, math.Tanh)
	case "relu":
		tensor.ApplyInto(y, x, func(v float64) float64 {
			if v < 0 {
				return 0
			}
			return v
		})
	case "sigmoid":
		tensor.ApplyInto(y, x, sigmoid)
	}
	return y
}

func (l *LSTM) infer(x *tensor.Matrix, a *tensor.Arena, pk *Packs) *tensor.Matrix {
	T, H := x.Rows, l.Hidden
	z := a.NewMatrix(T, 4*H)
	// All four gate pre-activations for every timestep in one wide GEMM
	// (the i|f|o|g blocks are columns of the same 4H-wide weight).
	if wxp := pk.of(l.wx); wxp != nil {
		tensor.MatMulPackedInto(z, x, wxp)
	} else {
		tensor.MatMulInto(z, x, l.wx.W)
	}
	hs := a.NewMatrix(T, H)
	hPrev := a.AllocZero(H)
	cPrev := a.AllocZero(H)
	bias := l.b.W.Data
	for t := 0; t < T; t++ {
		zr := z.Row(t)
		tensor.AddVecMatInto(zr, hPrev, l.wh.W)
		hr := hs.Row(t)
		GatesInto(zr, bias, cPrev, hr)
		hPrev = hr
	}
	return hs
}

func (b *BLSTM) infer(x *tensor.Matrix, a *tensor.Arena, pk *Packs) *tensor.Matrix {
	rx := a.NewMatrix(x.Rows, x.Cols)
	tensor.ReverseRowsInto(rx, x)
	yf := b.fwd.infer(x, a, pk)
	yb := b.bwd.infer(rx, a, pk)
	ryb := a.NewMatrix(yb.Rows, yb.Cols)
	tensor.ReverseRowsInto(ryb, yb)
	out := a.NewMatrix(yf.Rows, yf.Cols+ryb.Cols)
	tensor.ConcatColsInto(out, yf, ryb)
	return out
}

func (m *MultiHeadSelfAttention) infer(x *tensor.Matrix, a *tensor.Arena, pk *Packs) *tensor.Matrix {
	T := x.Rows
	var q, k, v *tensor.Matrix
	if qkvp := pk.qkvOf(m); qkvp != nil {
		// One wide GEMM computes the Q, K, and V projections against the
		// fused [wq|wk|wv] pack; the three views are column ranges.
		qkv := a.NewMatrix(T, 2*m.Heads*m.DK+m.Heads*m.DV)
		tensor.MatMulPackedInto(qkv, x, qkvp)
		q = a.NewMatrix(T, m.Heads*m.DK)
		k = a.NewMatrix(T, m.Heads*m.DK)
		v = a.NewMatrix(T, m.Heads*m.DV)
		tensor.ColSliceInto(q, qkv, 0, m.Heads*m.DK)
		tensor.ColSliceInto(k, qkv, m.Heads*m.DK, 2*m.Heads*m.DK)
		tensor.ColSliceInto(v, qkv, 2*m.Heads*m.DK, 2*m.Heads*m.DK+m.Heads*m.DV)
	} else {
		q = a.NewMatrix(T, m.Heads*m.DK)
		k = a.NewMatrix(T, m.Heads*m.DK)
		v = a.NewMatrix(T, m.Heads*m.DV)
		tensor.MatMulInto(q, x, m.wq.W)
		tensor.MatMulInto(k, x, m.wk.W)
		tensor.MatMulInto(v, x, m.wv.W)
	}
	concat := a.NewMatrixZero(T, m.Heads*m.DV)
	scale := 1 / math.Sqrt(float64(m.DK))
	qh := a.NewMatrix(T, m.DK)
	kh := a.NewMatrix(T, m.DK)
	vh := a.NewMatrix(T, m.DV)
	s := a.NewMatrix(T, T)
	oh := a.NewMatrix(T, m.DV)
	for h := 0; h < m.Heads; h++ {
		tensor.ColSliceInto(qh, q, h*m.DK, (h+1)*m.DK)
		tensor.ColSliceInto(kh, k, h*m.DK, (h+1)*m.DK)
		tensor.ColSliceInto(vh, v, h*m.DV, (h+1)*m.DV)
		tensor.MatMulTInto(s, qh, kh)
		s.Scale(scale)
		tensor.SoftmaxRows(s)
		tensor.MatMulInto(oh, s, vh)
		headScatter(concat, oh, h, m.DV)
	}
	y := a.NewMatrix(T, m.Out)
	if wop := pk.of(m.wo); wop != nil {
		tensor.MatMulPackedBiasActInto(y, concat, wop, m.bo.W, tensor.ActNone)
	} else {
		tensor.MatMulBiasActInto(y, concat, m.wo.W, m.bo.W, tensor.ActNone)
	}
	return y
}

func (t *TakeLast) infer(x *tensor.Matrix, a *tensor.Arena, _ *Packs) *tensor.Matrix {
	out := a.NewMatrix(1, x.Cols)
	copy(out.Row(0), x.Row(x.Rows-1))
	return out
}

func (t *TakeAt) infer(x *tensor.Matrix, a *tensor.Arena, _ *Packs) *tensor.Matrix {
	i := t.Index
	if i < 0 {
		i = 0
	}
	if i >= x.Rows {
		i = x.Rows - 1
	}
	out := a.NewMatrix(1, x.Cols)
	copy(out.Row(0), x.Row(i))
	return out
}

func (p *MeanPool) infer(x *tensor.Matrix, a *tensor.Arena, _ *Packs) *tensor.Matrix {
	out := a.NewMatrixZero(1, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			out.Data[j] += v
		}
	}
	out.Scale(1 / float64(x.Rows))
	return out
}

func (l *LayerNorm) infer(x *tensor.Matrix, a *tensor.Arena, _ *Packs) *tensor.Matrix {
	y := a.NewMatrix(x.Rows, x.Cols)
	for t := 0; t < x.Rows; t++ {
		row := x.Row(t)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		variance := 0.0
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float64(len(row))
		inv := 1 / math.Sqrt(variance+lnEps)
		yr := y.Row(t)
		for j, v := range row {
			nrv := (v - mean) * inv
			yr[j] = nrv*l.gamma.W.Data[j] + l.beta.W.Data[j]
		}
	}
	return y
}

// PredictBatchInto runs sequential inference over xs, copying each
// window's output into the pre-shaped matrices of out (out[i] must
// match the forward output shape of xs[i]). With a warmed arena this
// performs zero heap allocations — the steady state the IRSA loop runs
// in, pinned by TestPredictBatchIntoZeroAllocs.
func PredictBatchInto(model *Sequential, xs, out []*tensor.Matrix, a *tensor.Arena) {
	if len(out) != len(xs) {
		panic("nn: PredictBatchInto output length mismatch")
	}
	for i, x := range xs {
		a.Reset()
		y := model.Infer(x, a)
		out[i].CopyFrom(y)
	}
}

// predictRange infers xs[i] for i ≡ w (mod stride), cloning results out
// of the worker's arena.
func predictRange(model *Sequential, xs, out []*tensor.Matrix, w, stride int, a *tensor.Arena) {
	for i := w; i < len(xs); i += stride {
		a.Reset()
		out[i] = model.Infer(xs[i], a).Clone()
	}
}
