package nn

import (
	"math"
	"testing"

	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/tensor"
)

// lossOf computes sum(Forward(x) ⊙ R): a random linear functional of the
// layer output, giving a scalar loss whose gradients we can check
// numerically against the layer's Backward.
func lossOf(l Layer, x, r *tensor.Matrix) float64 {
	y := l.Forward(x)
	sum := 0.0
	for i := range y.Data {
		sum += y.Data[i] * r.Data[i]
	}
	return sum
}

// checkGrads verifies input and parameter gradients of layer l at input x
// against central finite differences.
func checkGrads(t *testing.T, name string, l Layer, x *tensor.Matrix, outRows, outCols int) {
	t.Helper()
	rr := rng.New(99)
	R := tensor.New(outRows, outCols)
	for i := range R.Data {
		R.Data[i] = rr.Normal(0, 1)
	}
	for _, p := range l.Params() {
		p.G.Zero()
	}
	_ = lossOf(l, x, R) // forward to populate caches
	dx := l.Backward(R.Clone())

	const eps = 1e-5
	const tol = 1e-4

	// Input gradient.
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := lossOf(l, x, R)
		x.Data[i] = orig - eps
		lm := lossOf(l, x, R)
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx.Data[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("%s: input grad [%d] analytic %v vs numeric %v", name, i, dx.Data[i], num)
		}
	}

	// Parameter gradients. Re-run forward/backward to have fresh caches
	// per check since lossOf overwrites them.
	for _, p := range l.Params() {
		p.G.Zero()
	}
	_ = lossOf(l, x, R)
	l.Backward(R.Clone())
	for pi, p := range l.Params() {
		for j := range p.W.Data {
			orig := p.W.Data[j]
			p.W.Data[j] = orig + eps
			lp := lossOf(l, x, R)
			p.W.Data[j] = orig - eps
			lm := lossOf(l, x, R)
			p.W.Data[j] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.G.Data[j]) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s: param %d (%s) grad [%d] analytic %v vs numeric %v",
					name, pi, p.Name, j, p.G.Data[j], num)
			}
		}
	}
}

func randInput(seed uint64, rows, cols int) *tensor.Matrix {
	r := rng.New(seed)
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Normal(0, 1)
	}
	return m
}

func TestDenseGradients(t *testing.T) {
	l := NewDense(4, 3, rng.New(1))
	checkGrads(t, "dense", l, randInput(2, 5, 4), 5, 3)
}

func TestActivationGradients(t *testing.T) {
	for _, kind := range []string{"tanh", "sigmoid"} {
		l := NewActivation(kind)
		checkGrads(t, kind, l, randInput(3, 4, 3), 4, 3)
	}
	// ReLU: keep inputs away from the kink.
	l := NewActivation("relu")
	x := randInput(4, 4, 3)
	for i := range x.Data {
		if math.Abs(x.Data[i]) < 0.1 {
			x.Data[i] += 0.2
		}
	}
	checkGrads(t, "relu", l, x, 4, 3)
}

func TestLSTMGradients(t *testing.T) {
	l := NewLSTM(3, 4, rng.New(2))
	checkGrads(t, "lstm", l, randInput(5, 6, 3), 6, 4)
}

func TestBLSTMGradients(t *testing.T) {
	l := NewBLSTM(3, 3, rng.New(3))
	checkGrads(t, "blstm", l, randInput(6, 5, 3), 5, 6)
}

func TestAttentionGradients(t *testing.T) {
	l := NewMultiHeadSelfAttention(4, 3, 2, 3, 2, rng.New(4))
	checkGrads(t, "mha", l, randInput(7, 5, 4), 5, 3)
}

func TestTakeLastGradients(t *testing.T) {
	l := NewTakeLast()
	checkGrads(t, "takelast", l, randInput(8, 5, 3), 1, 3)
}

func TestMeanPoolGradients(t *testing.T) {
	l := NewMeanPool()
	checkGrads(t, "meanpool", l, randInput(9, 5, 3), 1, 3)
}

func TestSequentialGradients(t *testing.T) {
	r := rng.New(5)
	m := NewSequential(
		NewDense(3, 5, r),
		NewActivation("tanh"),
		NewBLSTM(5, 3, r),
		NewMultiHeadSelfAttention(6, 4, 2, 2, 2, r),
		NewTakeLast(),
		NewDense(4, 1, r),
	)
	x := randInput(10, 7, 3)
	rr := rng.New(11)
	R := tensor.New(1, 1)
	R.Data[0] = rr.Normal(0, 1)

	loss := func() float64 {
		y := m.Forward(x)
		return y.At(0, 0) * R.Data[0]
	}
	m.ZeroGrads()
	_ = loss()
	dx := m.Backward(R.Clone())

	const eps, tol = 1e-5, 1e-4
	for i := 0; i < len(x.Data); i += 3 { // sample input grads
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := loss()
		x.Data[i] = orig - eps
		lm := loss()
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx.Data[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("sequential input grad [%d]: analytic %v numeric %v", i, dx.Data[i], num)
		}
	}
	m.ZeroGrads()
	_ = loss()
	m.Backward(R.Clone())
	for pi, p := range m.Params() {
		for j := 0; j < len(p.W.Data); j += 7 { // sample param grads
			orig := p.W.Data[j]
			p.W.Data[j] = orig + eps
			lp := loss()
			p.W.Data[j] = orig - eps
			lm := loss()
			p.W.Data[j] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.G.Data[j]) > tol*(1+math.Abs(num)) {
				t.Fatalf("sequential param %d grad [%d]: analytic %v numeric %v", pi, j, p.G.Data[j], num)
			}
		}
	}
}

func TestTakeAtGradients(t *testing.T) {
	for _, idx := range []int{0, 2, 4} {
		l := NewTakeAt(idx)
		checkGrads(t, "takeat", l, randInput(10, 5, 3), 1, 3)
	}
}

func TestLayerNormGradients(t *testing.T) {
	l := NewLayerNorm(5)
	// Perturb gamma/beta away from identity so gradients are generic.
	r := rng.New(77)
	for i := range l.gamma.W.Data {
		l.gamma.W.Data[i] = 1 + 0.3*r.Normal(0, 1)
		l.beta.W.Data[i] = 0.2 * r.Normal(0, 1)
	}
	checkGrads(t, "layernorm", l, randInput(12, 6, 5), 6, 5)
}
