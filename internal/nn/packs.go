package nn

import "deepqueuenet/internal/tensor"

// Packs is a per-inference-session cache of weight matrices repacked
// into the blocked-GEMM panel layout (tensor.Packed). Packing costs one
// copy of each weight matrix; a session pays it on its first window and
// reuses the panels for every window after.
//
// A Packs is keyed by parameter identity, so it caches derived layout
// only — if the underlying weights are mutated (training), the packs go
// stale. That cannot happen through the supported flow: training always
// runs on a PTM before its inference session (and packs) exist, and
// Clone/WithoutSEC drop the session. A Packs is not goroutine-safe; it
// is owned by one session, like the tensor.Arena next to it.
type Packs struct {
	m map[any]*tensor.Packed
}

// NewPacks returns an empty pack cache.
func NewPacks() *Packs {
	return &Packs{m: make(map[any]*tensor.Packed)}
}

// of returns the packed form of p.W, building it on first use. A nil
// receiver returns nil (callers fall back to the unpacked kernels).
func (pk *Packs) of(p *Param) *tensor.Packed {
	if pk == nil {
		return nil
	}
	if got := pk.m[p]; got != nil {
		return got
	}
	//dqnlint:allow hotalloc pack warm-up: each weight matrix is packed once per session on its first window, then served from the cache
	pp := tensor.Pack(p.W)
	pk.m[p] = pp
	return pp
}

// qkvOf returns the fused [wq | wk | wv] pack of an attention layer:
// one In×(2·H·DK + H·DV) panel buffer so the Q, K, and V projections
// run as a single wide GEMM. Column-concatenating the weights changes
// nothing numerically — every output element keeps its own dot product.
func (pk *Packs) qkvOf(m *MultiHeadSelfAttention) *tensor.Packed {
	if pk == nil {
		return nil
	}
	if got := pk.m[m]; got != nil {
		return got
	}
	//dqnlint:allow hotalloc pack warm-up: the fused QKV weight concat is built once per session on its first window, then served from the cache
	cat := tensor.ConcatCols(tensor.ConcatCols(m.wq.W, m.wk.W), m.wv.W)
	//dqnlint:allow hotalloc pack warm-up: same one-time session warm-up as the concat above
	pp := tensor.Pack(cat)
	pk.m[m] = pp
	return pp
}
