package dbscan

import (
	"testing"
	"testing/quick"

	"deepqueuenet/internal/rng"
)

func TestTwoClearClusters(t *testing.T) {
	xs := []float64{1.0, 1.1, 1.2, 0.9, 10.0, 10.1, 9.9, 10.2}
	labels, n := Cluster(xs, 0.5, 3)
	if n != 2 {
		t.Fatalf("found %d clusters, want 2", n)
	}
	if labels[0] != labels[1] || labels[0] != labels[3] {
		t.Fatalf("low cluster split: %v", labels)
	}
	if labels[4] != labels[5] || labels[4] != labels[7] {
		t.Fatalf("high cluster split: %v", labels)
	}
	if labels[0] == labels[4] {
		t.Fatalf("clusters merged: %v", labels)
	}
}

func TestNoisePoint(t *testing.T) {
	xs := []float64{1, 1.1, 1.2, 1.05, 50}
	labels, n := Cluster(xs, 0.5, 3)
	if n != 1 {
		t.Fatalf("found %d clusters, want 1", n)
	}
	if labels[4] != Noise {
		t.Fatalf("outlier labelled %d, want noise", labels[4])
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if labels, n := Cluster(nil, 1, 3); n != 0 || len(labels) != 0 {
		t.Fatal("empty input should yield no clusters")
	}
	if _, n := Cluster([]float64{1, 2}, 0, 3); n != 0 {
		t.Fatal("eps=0 should yield no clusters")
	}
	if _, n := Cluster([]float64{1, 2}, 1, 0); n != 0 {
		t.Fatal("minPts=0 should yield no clusters")
	}
}

func TestAllSamePoint(t *testing.T) {
	xs := []float64{3, 3, 3, 3, 3}
	labels, n := Cluster(xs, 0.1, 3)
	if n != 1 {
		t.Fatalf("identical points should form one cluster, got %d", n)
	}
	for _, l := range labels {
		if l != 0 {
			t.Fatalf("labels %v", labels)
		}
	}
}

// Chained points within eps of each other must form a single cluster
// (density reachability).
func TestChainReachability(t *testing.T) {
	xs := []float64{0, 0.4, 0.8, 1.2, 1.6, 2.0}
	labels, n := Cluster(xs, 0.5, 2)
	if n != 1 {
		t.Fatalf("chain split into %d clusters", n)
	}
	for _, l := range labels {
		if l != 0 {
			t.Fatalf("labels %v", labels)
		}
	}
}

// Property: cluster labels are invariant to input permutation (up to
// renaming), and every labelled point has at least one neighbour in eps.
func TestPermutationInvariance(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(60)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(float64(r.Intn(3))*10, 1)
		}
		labels1, k1 := Cluster(xs, 1.0, 3)
		perm := r.Perm(n)
		shuffled := make([]float64, n)
		for i, p := range perm {
			shuffled[i] = xs[p]
		}
		labels2, k2 := Cluster(shuffled, 1.0, 3)
		if k1 != k2 {
			return false
		}
		// Same points must share cluster membership patterns: compare
		// noise/label equivalence classes through the permutation.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				same1 := labels1[perm[i]] == labels1[perm[j]] && labels1[perm[i]] != Noise
				same2 := labels2[i] == labels2[j] && labels2[i] != Noise
				if same1 != same2 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBins(t *testing.T) {
	keys := []float64{1, 1.1, 1.2, 5, 5.1, 5.2}
	vals := []float64{10, 20, 30, -1, -2, -3}
	bins := Bins(keys, vals, 0.5, 2)
	if len(bins) != 2 {
		t.Fatalf("got %d bins, want 2", len(bins))
	}
	if bins[0].MeanValue != 20 {
		t.Fatalf("bin0 mean %v, want 20", bins[0].MeanValue)
	}
	if bins[1].MeanValue != -2 {
		t.Fatalf("bin1 mean %v, want -2", bins[1].MeanValue)
	}
	if bins[0].Lo != 1 || bins[0].Hi != 1.2 {
		t.Fatalf("bin0 range [%v,%v]", bins[0].Lo, bins[0].Hi)
	}
}

func TestLookup(t *testing.T) {
	bins := []Bin{{Lo: 0, Hi: 1, MeanValue: 5}, {Lo: 10, Hi: 11, MeanValue: 7}}
	if b := Lookup(bins, 0.5); b.MeanValue != 5 {
		t.Fatalf("in-range lookup failed: %+v", b)
	}
	if b := Lookup(bins, 2); b.MeanValue != 5 {
		t.Fatalf("gap lookup should pick nearer bin: %+v", b)
	}
	if b := Lookup(bins, 9.5); b.MeanValue != 7 {
		t.Fatalf("gap lookup should pick nearer bin: %+v", b)
	}
	if b := Lookup(bins, 100); b.MeanValue != 7 {
		t.Fatalf("above-range lookup: %+v", b)
	}
	if b := Lookup(nil, 1); b != nil {
		t.Fatal("empty bins should return nil")
	}
}
