// Package dbscan implements one-dimensional DBSCAN clustering, used by the
// paper's SEC (statistical error correction) stage to bin sojourn-time
// prediction residuals by predicted sojourn time (§4.3).
//
// For 1-D data a sort-based sweep gives exact DBSCAN semantics in
// O(n log n) instead of the generic O(n^2) neighbourhood queries.
package dbscan

import "sort"

// Noise is the label assigned to points that belong to no cluster.
const Noise = -1

// Cluster runs DBSCAN over the 1-D points xs with radius eps and density
// threshold minPts. It returns a label per input point (cluster IDs are
// consecutive integers starting at 0; Noise marks outliers) and the number
// of clusters found.
func Cluster(xs []float64, eps float64, minPts int) (labels []int, nclusters int) {
	n := len(xs)
	labels = make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	if n == 0 || eps <= 0 || minPts <= 0 {
		return labels, 0
	}

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	sorted := make([]float64, n)
	for i, id := range idx {
		sorted[i] = xs[id]
	}

	// neighbours returns the half-open index range [lo, hi) of points in
	// sorted order within eps of sorted[i].
	neighbours := func(i int) (lo, hi int) {
		lo = sort.SearchFloat64s(sorted, sorted[i]-eps)
		hi = sort.SearchFloat64s(sorted, sorted[i]+eps)
		// SearchFloat64s finds the first index >= target; extend hi over
		// points exactly at distance eps (DBSCAN uses <= eps).
		for hi < n && sorted[hi] <= sorted[i]+eps {
			hi++
		}
		return lo, hi
	}

	core := make([]bool, n)
	for i := 0; i < n; i++ {
		lo, hi := neighbours(i)
		core[i] = hi-lo >= minPts
	}

	slabels := make([]int, n)
	for i := range slabels {
		slabels[i] = Noise
	}
	cluster := 0
	for i := 0; i < n; i++ {
		if !core[i] || slabels[i] != Noise {
			continue
		}
		// Expand a new cluster from core point i with a worklist.
		slabels[i] = cluster
		work := []int{i}
		for len(work) > 0 {
			p := work[len(work)-1]
			work = work[:len(work)-1]
			lo, hi := neighbours(p)
			for q := lo; q < hi; q++ {
				if slabels[q] != Noise {
					continue
				}
				slabels[q] = cluster
				if core[q] {
					work = append(work, q)
				}
			}
		}
		cluster++
	}

	for i, id := range idx {
		labels[id] = slabels[i]
	}
	return labels, cluster
}

// Bin describes one residual bin produced by Bins: the value range of the
// clustered key dimension and the mean of the associated values.
type Bin struct {
	Lo, Hi    float64 // key range covered by the cluster (inclusive)
	MeanValue float64 // mean of vals for points in the cluster
	Count     int
}

// Bins clusters keys with DBSCAN and returns, per cluster, the key range
// and the mean of vals over the cluster's members. This is the SEC binning
// primitive: keys are predicted sojourn times, vals are prediction errors.
func Bins(keys, vals []float64, eps float64, minPts int) []Bin {
	if len(keys) != len(vals) {
		panic("dbscan: keys and vals length mismatch")
	}
	labels, k := Cluster(keys, eps, minPts)
	if k == 0 {
		return nil
	}
	bins := make([]Bin, k)
	for i := range bins {
		bins[i].Lo = 1e308
		bins[i].Hi = -1e308
	}
	for i, lb := range labels {
		if lb == Noise {
			continue
		}
		b := &bins[lb]
		if keys[i] < b.Lo {
			b.Lo = keys[i]
		}
		if keys[i] > b.Hi {
			b.Hi = keys[i]
		}
		b.MeanValue += vals[i]
		b.Count++
	}
	for i := range bins {
		if bins[i].Count > 0 {
			bins[i].MeanValue /= float64(bins[i].Count)
		}
	}
	sort.Slice(bins, func(a, b int) bool { return bins[a].Lo < bins[b].Lo })
	return bins
}

// Lookup returns the bin whose range contains key, or the nearest bin if
// key falls in a gap, or nil if bins is empty.
func Lookup(bins []Bin, key float64) *Bin {
	if len(bins) == 0 {
		return nil
	}
	i := sort.Search(len(bins), func(i int) bool { return bins[i].Hi >= key }) //dqnlint:allow hotalloc the closure stays on the stack: sort.Search does not let f escape, so Lookup is allocation-free (covered by the zero-alloc pins)
	if i == len(bins) {
		return &bins[len(bins)-1]
	}
	if key >= bins[i].Lo {
		return &bins[i]
	}
	// key falls in the gap before bins[i]; pick the nearer neighbour.
	if i == 0 {
		return &bins[0]
	}
	if key-bins[i-1].Hi <= bins[i].Lo-key {
		return &bins[i-1]
	}
	return &bins[i]
}
