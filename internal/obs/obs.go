// Package obs is the repository's stdlib-only observability kernel:
// atomic counters, gauges, and fixed-bucket histograms collected in a
// Registry that renders the Prometheus text exposition format. It backs
// dqnserve's /metrics endpoint and the -obs-summary dumps of the
// offline binaries, so a served run and a CLI run read identically.
//
// Design constraints, in order:
//
//   - Hot-path safety: Inc/Add/Observe are single atomic operations
//     (histograms: two) with zero allocations, safe for concurrent use
//     from the IRSA shard goroutines and the serve worker pool.
//   - Determinism: exposition output is byte-stable for a given set of
//     observed values — families and series render in sorted order — so
//     it can be golden-tested.
//   - No dependencies: the exposition writer speaks the Prometheus text
//     format directly; nothing outside the standard library.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (stored as float64 bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by v (atomically, CAS loop).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (cumulative "le"
// semantics like Prometheus: bucket i counts observations <= Bounds[i],
// with an implicit +Inf bucket). Observations are two atomic adds; the
// sum is maintained with a CAS loop on float bits.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    Gauge
	count  atomic.Uint64
}

// Observe records one sample. NaN samples land in the +Inf bucket and
// are excluded from the sum so one poisoned value cannot make every
// derived mean NaN; they still count toward _count.
func (h *Histogram) Observe(v float64) {
	i := len(h.bounds)
	if !math.IsNaN(v) {
		for b, ub := range h.bounds {
			if v <= ub {
				i = b
				break
			}
		}
		h.sum.Add(v)
	}
	h.counts[i].Add(1)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all (non-NaN) observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// DefTimeBuckets are the default duration buckets (seconds), spanning
// one microsecond-scale inference to a multi-second end-to-end job.
var DefTimeBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// ExpBuckets returns n buckets starting at start, each factor times the
// previous — for sizing histograms to a known dynamic range.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metricKind is the exposition TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled instance of a family.
type series struct {
	labels  string // canonical rendered label block, "" or `{k="v",...}`
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups the series of one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histogram families only
	series map[string]*series
}

// Registry holds metric families and renders them. The zero value is
// not usable; build with NewRegistry. All methods are goroutine-safe.
// Registration (Counter/Gauge/...) takes a lock and may allocate; the
// returned handles are lock-free, so hot paths should register once and
// hold the handle.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns (registering on first use) the counter series for
// name + labels. Registering the same name with a different metric type
// panics: that is a programming error, not an operational condition.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, kindCounter, nil, labels)
	return s.counter
}

// Gauge returns (registering on first use) the gauge series for
// name + labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, kindGauge, nil, labels)
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time — for values that already live elsewhere (queue
// lengths, breaker states). Re-registering the same series replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, kindGauge, nil, labels)
	r.mu.Lock()
	s.gaugeFn = fn
	r.mu.Unlock()
}

// Histogram returns (registering on first use) the histogram series for
// name + labels. bounds must be sorted ascending; nil uses
// DefTimeBuckets. All series of one family share the first
// registration's bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefTimeBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", name))
		}
	}
	s := r.lookup(name, help, kindHistogram, bounds, labels)
	return s.hist
}

// Value returns the current value of a registered series (counters and
// gauges; histograms report their observation count). The second result
// is false when the series does not exist — the test-facing read path
// for reconciliation assertions.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	// Snapshot the series under the lock, then read it after Unlock:
	// gaugeFn is a user callback and must not run while r.mu is held
	// (it may itself touch the registry — the PR 5 deadlock rule).
	r.mu.Lock()
	f, ok := r.families[name]
	if !ok {
		r.mu.Unlock()
		return 0, false
	}
	s, ok := f.series[renderLabels(labels)]
	if !ok {
		r.mu.Unlock()
		return 0, false
	}
	kind := f.kind
	gaugeFn := s.gaugeFn
	r.mu.Unlock()
	switch kind {
	case kindCounter:
		return float64(s.counter.Value()), true
	case kindGauge:
		if gaugeFn != nil {
			return gaugeFn(), true
		}
		return s.gauge.Value(), true
	default:
		return float64(s.hist.Count()), true
	}
}

// lookup finds or creates the series, enforcing name validity and
// type consistency.
func (r *Registry) lookup(name, help string, kind metricKind, bounds []float64, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l.Key, name))
		}
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, f.kind))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		switch kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			s.hist = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
		}
		f.series[key] = s
	}
	return s
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), in sorted family and series order
// so output is byte-stable for a given state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	// Snapshot the family/series structure under the lock; atomic values
	// are read lock-free afterwards.
	fams := make([]*family, len(names))
	sers := make([][]*series, len(names))
	for i, n := range names {
		f := r.families[n]
		fams[i] = f
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sers[i] = append(sers[i], f.series[k])
		}
	}
	r.mu.Unlock()

	var b strings.Builder
	for i, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range sers[i] {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.counter.Value())
			case kindGauge:
				v := 0.0
				if s.gaugeFn != nil {
					v = s.gaugeFn()
				} else {
					v = s.gauge.Value()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(v))
			case kindHistogram:
				writeHistogram(&b, f, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative _bucket lines
// per bound plus +Inf, then _sum and _count.
func writeHistogram(b *strings.Builder, f *family, s *series) {
	cum := uint64(0)
	for i, ub := range s.hist.bounds {
		cum += s.hist.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, withLabel(s.labels, "le", formatFloat(ub)), cum)
	}
	cum += s.hist.counts[len(s.hist.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, withLabel(s.labels, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, s.labels, formatFloat(s.hist.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, s.labels, s.hist.Count())
}

// renderLabels canonicalizes a label set: sorted by key, escaped,
// rendered as {k="v",...} ("" for no labels).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// withLabel inserts one extra label into an already-rendered block —
// the histogram "le" label.
func withLabel(block, key, value string) string {
	extra := key + `="` + escapeValue(value) + `"`
	if block == "" {
		return "{" + extra + "}"
	}
	return block[:len(block)-1] + "," + extra + "}"
}

// formatFloat renders a float64 the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeValue escapes a label value per the exposition format.
func escapeValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// validName reports whether s is a legal metric or label name
// ([a-zA-Z_:][a-zA-Z0-9_:]*).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
