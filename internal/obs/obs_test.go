package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "ops")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//dqnlint:allow goguard concurrency hammer: a worker panic crashes the test binary, the failure signal this race test wants
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if v, ok := reg.Value("test_ops_total"); !ok || v != workers*per {
		t.Fatalf("registry Value = %v,%v", v, ok)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_level", "level")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//dqnlint:allow goguard concurrency hammer: a worker panic crashes the test binary, the failure signal this race test wants
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(workers*per)*0.5; got != want {
		t.Fatalf("gauge = %v, want %v", got, want)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_lat_seconds", "latency", []float64{0.01, 0.1, 1})
	const workers, per = 8, 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//dqnlint:allow goguard concurrency hammer: a worker panic crashes the test binary, the failure signal this race test wants
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w%4) * 0.05) // 0, 0.05, 0.10, 0.15
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	// Concurrent CAS addition is order-dependent in the last ULPs;
	// compare with slack.
	want := per * (0 + 0.05 + 0.10 + 0.15) * (workers / 4)
	if got := h.Sum(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %v, want ~%v", got, want)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_h", "h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`test_h_bucket{le="1"} 2`,
		`test_h_bucket{le="2"} 3`,
		`test_h_bucket{le="4"} 4`,
		`test_h_bucket{le="+Inf"} 5`,
		`test_h_count 5`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestHistogramNaNGoesToInfBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_nan", "h", []float64{1})
	h.Observe(0.5)
	h.Observe(math.NaN())
	if got := h.Count(); got != 2 {
		t.Fatalf("count = %d, want 2 (NaN must still be counted)", got)
	}
	if got := h.Sum(); got != 0.5 {
		t.Fatalf("sum = %v, want 0.5 (NaN excluded from sum)", got)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `test_nan_bucket{le="+Inf"} 2`) {
		t.Fatalf("NaN not in +Inf bucket:\n%s", b.String())
	}
}

// TestExpositionGolden pins the full output format: HELP/TYPE lines,
// sorted family and series order, canonical label rendering, histogram
// shape. Any byte-level drift in the writer fails here.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz_last_total", "sorts last").Add(3)
	reg.Counter("aa_reqs_total", "requests", L("code", "200"), L("path", "/x")).Add(7)
	reg.Counter("aa_reqs_total", "requests", L("code", "500"), L("path", "/x")).Inc()
	reg.Gauge("mid_depth", "queue depth").Set(2.5)
	h := reg.Histogram("mid_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_reqs_total requests
# TYPE aa_reqs_total counter
aa_reqs_total{code="200",path="/x"} 7
aa_reqs_total{code="500",path="/x"} 1
# HELP mid_depth queue depth
# TYPE mid_depth gauge
mid_depth 2.5
# HELP mid_lat_seconds latency
# TYPE mid_lat_seconds histogram
mid_lat_seconds_bucket{le="0.1"} 1
mid_lat_seconds_bucket{le="1"} 2
mid_lat_seconds_bucket{le="+Inf"} 3
mid_lat_seconds_sum 5.55
mid_lat_seconds_count 3
# HELP zz_last_total sorts last
# TYPE zz_last_total counter
zz_last_total 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition drift:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	depth := 0
	reg.GaugeFunc("test_depth", "live depth", func() float64 { return float64(depth) })
	depth = 42
	if v, ok := reg.Value("test_depth"); !ok || v != 42 {
		t.Fatalf("GaugeFunc Value = %v,%v, want 42,true", v, ok)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "test_depth 42\n") {
		t.Fatalf("GaugeFunc not rendered:\n%s", b.String())
	}
}

// TestGaugeFuncMayUseRegistry guards the lock discipline: exposition
// must call gauge functions without holding the registry lock, so a fn
// that reads another metric through the registry cannot deadlock.
func TestGaugeFuncMayUseRegistry(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_inner_total", "inner")
	c.Add(5)
	reg.GaugeFunc("test_outer", "outer", func() float64 {
		return float64(c.Value())
	})
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "test_outer 5\n") {
		t.Fatalf("gaugeFn snapshot wrong:\n%s", b.String())
	}
}

func TestIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("test_total", "t")
	b := reg.Counter("test_total", "t")
	if a != b {
		t.Fatal("same name+labels must return the same handle")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles not aliased")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_total", "t")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	reg.Gauge("test_total", "t")
}

func TestInvalidNamePanics(t *testing.T) {
	reg := NewRegistry()
	for _, bad := range []string{"", "1abc", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q must panic", bad)
				}
			}()
			reg.Counter(bad, "t")
		}()
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_total", "t", L("path", `a"b\c`+"\n")).Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `test_total{path="a\"b\\c\n"} 1`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExpBuckets(0,...) must panic")
		}
	}()
	ExpBuckets(0, 2, 4)
}

// TestConcurrentRegistrationAndExposition hammers registration, writes,
// and exposition together; run with -race this is the data-race gate
// for the whole kernel.
func TestConcurrentRegistrationAndExposition(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		//dqnlint:allow goguard concurrency hammer: a worker panic crashes the test binary, the failure signal this race test wants
		go func(w int) {
			defer wg.Done()
			names := []string{"test_a_total", "test_b_total", "test_c_total"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				reg.Counter(names[i%len(names)], "t", L("w", "x")).Inc()
				reg.Histogram("test_h", "h", []float64{1, 2}).Observe(float64(i % 3))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
