package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"deepqueuenet/internal/core"
)

// iterBuckets sizes the IRSA iteration / device-inference histograms:
// device inferences on the CPU-scale PTM run tens of microseconds to
// tens of milliseconds, whole iterations up to seconds.
var iterBuckets = ExpBuckets(1e-5, 2.5, 16)

// EngineObserver is the standard core.Observer: it feeds a Registry
// with per-iteration convergence telemetry (delta trace ↔ Theorem 3.1)
// and per-device inference telemetry (shard/port batching ↔ Fig. 11),
// and keeps the raw delta trace for -obs-summary dumps. One
// EngineObserver may observe many runs; all methods are goroutine-safe.
type EngineObserver struct {
	iterations *Counter
	iterDur    *Histogram
	lastDelta  *Gauge
	converged  *Counter

	infDur     map[string]*Histogram // by device kind
	infPackets map[string]*Counter
	infCount   map[string]*Counter

	reg *Registry

	mu        sync.Mutex
	deltas    []float64
	shardWork map[int]time.Duration // accumulated per shard across iterations
	shardCtr  map[int]*Gauge
}

// engineKinds are the device-inference label values.
var engineKinds = []string{"switch", "host", "degraded"}

// NewEngineObserver registers the engine metric families in reg and
// returns the observer. Handles are created eagerly so the observe path
// never takes the registry lock.
func NewEngineObserver(reg *Registry) *EngineObserver {
	o := &EngineObserver{
		iterations: reg.Counter("dqn_irsa_iterations_total", "IRSA iterations executed"),
		iterDur:    reg.Histogram("dqn_irsa_iteration_seconds", "wall time per IRSA iteration", iterBuckets),
		lastDelta:  reg.Gauge("dqn_irsa_delta", "convergence delta of the most recent IRSA iteration (seconds)"),
		converged:  reg.Counter("dqn_irsa_converged_total", "iterations whose delta shrank versus the previous iteration"),
		infDur:     make(map[string]*Histogram, len(engineKinds)),
		infPackets: make(map[string]*Counter, len(engineKinds)),
		infCount:   make(map[string]*Counter, len(engineKinds)),
		reg:        reg,
		// Pre-size the delta trace so appends do not realloc mid-run:
		// growth would show up as nondeterministic allocs/op in the
		// bench gate (IRSA converges in far fewer iterations than this).
		deltas:    make([]float64, 0, 512),
		shardWork: make(map[int]time.Duration),
		shardCtr:  make(map[int]*Gauge),
	}
	for _, k := range engineKinds {
		o.infDur[k] = reg.Histogram("dqn_inference_seconds", "wall time per device inference", iterBuckets, L("kind", k))
		o.infPackets[k] = reg.Counter("dqn_inference_packets_total", "packet traversals inferred", L("kind", k))
		o.infCount[k] = reg.Counter("dqn_inference_total", "device inferences executed", L("kind", k))
	}
	return o
}

// ObserveIteration implements core.Observer.
func (o *EngineObserver) ObserveIteration(ev core.IterationEvent) {
	o.iterations.Inc()
	o.iterDur.Observe(ev.Duration.Seconds())
	o.lastDelta.Set(ev.Delta)
	o.mu.Lock()
	if n := len(o.deltas); n > 0 && ev.Delta < o.deltas[n-1] {
		o.converged.Inc()
	}
	o.deltas = append(o.deltas, ev.Delta)
	for si, w := range ev.ShardWork {
		o.shardWork[si] += w
		g, ok := o.shardCtr[si]
		if !ok {
			g = o.reg.Gauge("dqn_shard_work_seconds", "accumulated inference wall time per shard",
				L("shard", strconv.Itoa(si)))
			o.shardCtr[si] = g
		}
		g.Add(w.Seconds())
	}
	o.mu.Unlock()
}

// ObserveInference implements core.Observer.
func (o *EngineObserver) ObserveInference(ev core.InferenceEvent) {
	kind := "switch"
	switch {
	case ev.Host:
		kind = "host"
	case ev.Degraded:
		kind = "degraded"
	}
	o.infDur[kind].Observe(ev.Duration.Seconds())
	o.infPackets[kind].Add(uint64(ev.Packets))
	o.infCount[kind].Inc()
}

// Deltas returns a copy of the observed per-iteration delta trace.
func (o *EngineObserver) Deltas() []float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]float64(nil), o.deltas...)
}

// ShardWork returns the accumulated per-shard inference wall time,
// indexed by shard (missing shards are zero).
func (o *EngineObserver) ShardWork() []time.Duration {
	o.mu.Lock()
	defer o.mu.Unlock()
	max := -1
	for si := range o.shardWork {
		if si > max {
			max = si
		}
	}
	out := make([]time.Duration, max+1)
	for si, w := range o.shardWork {
		out[si] = w
	}
	return out
}

// WriteSummary renders the human-readable -obs-summary block: the
// convergence story (iterations, delta trace), the per-shard work
// balance, and the full registry in exposition format — so an offline
// run's telemetry reads exactly like a scrape of a served run.
func (o *EngineObserver) WriteSummary(w io.Writer) error {
	deltas := o.Deltas()
	work := o.ShardWork()
	fmt.Fprintf(w, "# obs summary\n")
	fmt.Fprintf(w, "iterations: %d\n", len(deltas))
	if len(deltas) > 0 {
		fmt.Fprintf(w, "final delta: %s\n", formatFloat(deltas[len(deltas)-1]))
		fmt.Fprintf(w, "delta trace:")
		for _, d := range deltas {
			fmt.Fprintf(w, " %s", formatFloat(d))
		}
		fmt.Fprintln(w)
	}
	if len(work) > 0 {
		var total, crit time.Duration
		for _, d := range work {
			total += d
			if d > crit {
				crit = d
			}
		}
		fmt.Fprintf(w, "shard work:")
		for si, d := range work {
			fmt.Fprintf(w, " s%d=%v", si, d.Round(time.Microsecond))
		}
		fmt.Fprintln(w)
		if crit > 0 {
			// total/critical-path = the Fig. 11 model-parallel speedup an
			// N-accelerator deployment would see for this decomposition.
			fmt.Fprintf(w, "parallel speedup (total/critical-path): %.2f\n", float64(total)/float64(crit))
		}
	}
	fmt.Fprintf(w, "# metrics\n")
	return o.reg.WritePrometheus(w)
}
