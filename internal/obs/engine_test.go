package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"deepqueuenet/internal/core"
)

func TestEngineObserverAccumulates(t *testing.T) {
	reg := NewRegistry()
	o := NewEngineObserver(reg)

	o.ObserveIteration(core.IterationEvent{Iter: 0, Delta: 3e-4, Duration: time.Millisecond,
		ShardWork: []time.Duration{time.Millisecond, 2 * time.Millisecond}})
	o.ObserveIteration(core.IterationEvent{Iter: 1, Delta: 1e-4, Duration: time.Millisecond,
		ShardWork: []time.Duration{time.Millisecond, time.Millisecond}})
	o.ObserveInference(core.InferenceEvent{Device: 3, Shard: 0, Ports: 4, Packets: 100, Duration: time.Microsecond})
	o.ObserveInference(core.InferenceEvent{Device: 9, Shard: 1, Packets: 5, Duration: time.Microsecond, Host: true})
	o.ObserveInference(core.InferenceEvent{Device: 4, Shard: 0, Packets: 7, Duration: time.Microsecond, Degraded: true})

	if got := o.Deltas(); len(got) != 2 || got[0] != 3e-4 || got[1] != 1e-4 {
		t.Fatalf("delta trace = %v", got)
	}
	work := o.ShardWork()
	if len(work) != 2 || work[0] != 2*time.Millisecond || work[1] != 3*time.Millisecond {
		t.Fatalf("shard work = %v", work)
	}
	if v, ok := reg.Value("dqn_irsa_iterations_total"); !ok || v != 2 {
		t.Fatalf("iterations = %v,%v", v, ok)
	}
	if v, ok := reg.Value("dqn_irsa_delta"); !ok || v != 1e-4 {
		t.Fatalf("last delta = %v,%v", v, ok)
	}
	// Iteration 1's delta shrank vs iteration 0: one converging step.
	if v, ok := reg.Value("dqn_irsa_converged_total"); !ok || v != 1 {
		t.Fatalf("converged = %v,%v", v, ok)
	}
	for _, tc := range []struct {
		kind    string
		packets float64
	}{{"switch", 100}, {"host", 5}, {"degraded", 7}} {
		if v, ok := reg.Value("dqn_inference_packets_total", L("kind", tc.kind)); !ok || v != tc.packets {
			t.Fatalf("packets[%s] = %v,%v want %v", tc.kind, v, ok, tc.packets)
		}
		if v, ok := reg.Value("dqn_inference_total", L("kind", tc.kind)); !ok || v != 1 {
			t.Fatalf("count[%s] = %v,%v", tc.kind, v, ok)
		}
	}
}

func TestEngineObserverSummary(t *testing.T) {
	o := NewEngineObserver(NewRegistry())
	o.ObserveIteration(core.IterationEvent{Iter: 0, Delta: 2e-4, Duration: time.Millisecond,
		ShardWork: []time.Duration{4 * time.Millisecond, 2 * time.Millisecond}})
	var b strings.Builder
	if err := o.WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"iterations: 1",
		"final delta: 0.0002",
		"parallel speedup (total/critical-path): 1.50",
		"# TYPE dqn_irsa_iterations_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestEngineObserverConcurrent exercises the goroutine-safety contract:
// ObserveInference arrives from every shard goroutine concurrently with
// ObserveIteration from the coordinator.
func TestEngineObserverConcurrent(t *testing.T) {
	o := NewEngineObserver(NewRegistry())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		//dqnlint:allow goguard concurrency hammer: a worker panic crashes the test binary, the failure signal this race test wants
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				o.ObserveInference(core.InferenceEvent{Device: w, Shard: w % 4, Packets: 1,
					Duration: time.Microsecond, Host: w%2 == 0})
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		o.ObserveIteration(core.IterationEvent{Iter: i, Delta: float64(50 - i),
			Duration: time.Microsecond, ShardWork: []time.Duration{time.Microsecond}})
	}
	wg.Wait()
	if got := len(o.Deltas()); got != 50 {
		t.Fatalf("deltas = %d, want 50", got)
	}
}
