package obs

// CheckpointMetrics is the pre-registered metric family set of the
// checkpoint layer (internal/checkpoint wires one into its Writer and
// resume path; internal/serve registers one per server). Every handle
// is an atomic — observing a snapshot costs no registry lock and no
// allocation, keeping the epoch loop's zero-alloc property.
type CheckpointMetrics struct {
	// Snapshots counts epoch snapshots successfully persisted.
	Snapshots *Counter
	// SnapshotFailures counts snapshot writes that failed (the run
	// aborts with the error; durability was the casualty, not
	// correctness).
	SnapshotFailures *Counter
	// SnapshotBytes observes the encoded size of each snapshot.
	SnapshotBytes *Histogram
	// SnapshotSeconds observes the wall time of each persisted
	// snapshot (encode + atomic write-rename).
	SnapshotSeconds *Histogram
	// Resumes counts runs successfully restored from a snapshot.
	Resumes *Counter
	// ResumeFailures counts snapshots that were present but unusable
	// (corrupt, digest mismatch, budget violation); the run starts
	// fresh instead.
	ResumeFailures *Counter
	// EpochsLost accumulates IRSA iterations that a crash threw away:
	// work completed after the last persisted snapshot, measured when
	// the interrupted job is resumed.
	EpochsLost *Counter
}

// snapshotBytesBuckets cover one-packet toy runs through multi-hundred-
// megabyte sharded topologies.
var snapshotBytesBuckets = ExpBuckets(1024, 4, 10)

// snapshotSecondsBuckets cover tmpfs microsecond renames through
// multi-second spinning-disk fsyncs.
var snapshotSecondsBuckets = ExpBuckets(1e-5, 4, 10)

// NewCheckpointMetrics registers the checkpoint families in reg.
// Registration is idempotent per registry (obs registries return the
// existing series on re-registration), so engine and serving layers can
// share one registry safely.
func NewCheckpointMetrics(reg *Registry) *CheckpointMetrics {
	return &CheckpointMetrics{
		Snapshots: reg.Counter("dqn_checkpoint_snapshots_total",
			"epoch snapshots persisted"),
		SnapshotFailures: reg.Counter("dqn_checkpoint_snapshot_failures_total",
			"epoch snapshot writes that failed"),
		SnapshotBytes: reg.Histogram("dqn_checkpoint_snapshot_bytes",
			"encoded snapshot size in bytes", snapshotBytesBuckets),
		SnapshotSeconds: reg.Histogram("dqn_checkpoint_snapshot_seconds",
			"wall time per persisted snapshot (encode + atomic rename)", snapshotSecondsBuckets),
		Resumes: reg.Counter("dqn_checkpoint_resumes_total",
			"runs restored from a persisted snapshot"),
		ResumeFailures: reg.Counter("dqn_checkpoint_resume_failures_total",
			"snapshots present but unusable (corrupt, mismatched, over budget)"),
		EpochsLost: reg.Counter("dqn_checkpoint_epochs_lost_total",
			"IRSA iterations lost to crashes (completed after the last snapshot)"),
	}
}
