package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// Context carries the cross-package facts shared by every analyzer pass
// of one Lint run: the call graph, the atomic-field set, and the
// hot-path reachability closure. Facts are built lazily behind
// sync.Once so a run that never needs one never pays for it, and the
// parallel per-package passes can all share a single computation.
type Context struct {
	All []*Package

	graphOnce sync.Once
	graph     *CallGraph

	atomicOnce sync.Once
	atomics    map[*types.Var]token.Position

	hotOnce sync.Once
	hot     map[*types.Func]string // reachable fn -> root it is reached from
}

// NewContext wraps the loaded packages of one analysis run.
func NewContext(all []*Package) *Context {
	return &Context{All: all}
}

// Graph returns the module call graph, building it on first use.
func (c *Context) Graph() *CallGraph {
	c.graphOnce.Do(func() { c.graph = buildCallGraph(c.All) })
	return c.graph
}

// CallGraph indexes every declared function of the module and resolves
// call sites to their possible module-defined callees, expanding calls
// through module-defined interfaces to every implementation (the nn
// layer dispatch pattern: Sequential.Infer -> inferLayer.infer -> each
// layer's concrete method).
type CallGraph struct {
	Decl  map[*types.Func]*ast.FuncDecl
	PkgOf map[*types.Func]*Package
	// impls maps an interface method object to the concrete methods of
	// every module type that satisfies the interface.
	impls map[*types.Func][]*types.Func
}

func buildCallGraph(all []*Package) *CallGraph {
	idx := buildFuncIndex(all)
	g := &CallGraph{Decl: idx.decl, PkgOf: idx.pkg, impls: map[*types.Func][]*types.Func{}}

	// Collect every named type and every named interface defined in the
	// module, then match implementations to interface methods.
	var concrete []*types.Named
	var ifaces []*types.Named
	for _, p := range all {
		if p.Types == nil {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				ifaces = append(ifaces, named)
			} else {
				concrete = append(concrete, named)
			}
		}
	}
	for _, in := range ifaces {
		iface, ok := in.Underlying().(*types.Interface)
		if !ok || iface.NumMethods() == 0 {
			continue
		}
		for _, cn := range concrete {
			var impl types.Type = cn
			if !types.Implements(impl, iface) {
				impl = types.NewPointer(cn)
				if !types.Implements(impl, iface) {
					continue
				}
			}
			for i := 0; i < iface.NumMethods(); i++ {
				m := iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
				if fn, ok := obj.(*types.Func); ok && g.Decl[fn] != nil {
					g.impls[m] = append(g.impls[m], fn)
				}
			}
		}
	}
	return g
}

// isInterfaceMethod reports whether fn is declared on an interface.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// Callees resolves a call in pkg to the module-defined functions it may
// invoke: the static callee, or every implementation when the call goes
// through a module-defined interface method. Dynamic calls through
// function values resolve to nothing.
func (g *CallGraph) Callees(pkg *Package, call *ast.CallExpr) []*types.Func {
	fn := calleeFunc(pkg.Info, call)
	if fn == nil {
		return nil
	}
	if isInterfaceMethod(fn) {
		return g.impls[fn]
	}
	if g.Decl[fn] == nil {
		return nil // stdlib or undeclared: no body to follow
	}
	return []*types.Func{fn}
}

// isPanicCall reports whether call invokes the panic builtin. Analyzer
// traversals skip panic arguments: a failure path may format an error
// (fmt boxing, Sprintf allocation) without violating steady-state
// invariants.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}

// Reachable computes the closure of functions reachable from roots,
// following static and interface-expanded calls. An //dqnlint:allow
// directive for analyzer on a call-site line prunes that edge (the
// callee subtree is intentionally off the invariant's path), and calls
// inside panic arguments are never followed. The result maps each
// reachable function to the name of a root it is reached from.
func (g *CallGraph) Reachable(analyzer string, roots []*types.Func) map[*types.Func]string {
	reach := make(map[*types.Func]string, len(roots))
	var queue []*types.Func
	for _, r := range roots {
		if reach[r] == "" && g.Decl[r] != nil {
			reach[r] = r.Name()
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		pkg, decl := g.PkgOf[fn], g.Decl[fn]
		if pkg == nil || decl == nil || decl.Body == nil {
			continue
		}
		via := reach[fn]
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPanicCall(pkg.Info, call) {
				return false // failure path: not steady-state
			}
			line := pkg.Fset.Position(call.Pos()).Line
			file := pkg.Fset.Position(call.Pos()).Filename
			if pkg.allowed(analyzer, file, line) {
				return false // edge explicitly exempted at the call site
			}
			for _, callee := range g.Callees(pkg, call) {
				if reach[callee] == "" {
					reach[callee] = via
					queue = append(queue, callee)
				}
			}
			return true
		})
	}
	return reach
}
