package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches expected-diagnostic comments: // want "pattern" ["pattern"...]
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	line    int
	pattern *regexp.Regexp
	matched bool
}

// loadExpectations scans a fixture file for `// want "..."` comments.
func loadExpectations(t *testing.T, path string) []*expectation {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		idx := strings.Index(line, "// want ")
		if idx < 0 {
			continue
		}
		for _, m := range wantRe.FindAllStringSubmatch(line[idx:], -1) {
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
			}
			out = append(out, &expectation{line: i + 1, pattern: re})
		}
	}
	return out
}

// runGolden type-checks testdata/src/<name> and diffs the analyzer's
// diagnostics against the fixture's want comments.
func runGolden(t *testing.T, an *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", an.Name)
	pkg, err := LoadDir(dir, "fixture/"+an.Name)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var expects []*expectation
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".go") {
			expects = append(expects, loadExpectations(t, filepath.Join(dir, e.Name()))...)
		}
	}
	if len(expects) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}
	diags := LintPackage(pkg, []*Package{pkg}, an)
	for _, d := range diags {
		found := false
		for _, exp := range expects {
			if !exp.matched && exp.line == d.Line && exp.pattern.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, exp := range expects {
		if !exp.matched {
			t.Errorf("%s: expected diagnostic at line %d matching %q, got none",
				an.Name, exp.line, exp.pattern)
		}
	}
}

func TestGoldenFiles(t *testing.T) {
	for _, an := range Analyzers() {
		t.Run(an.Name, func(t *testing.T) { runGolden(t, an) })
	}
}

// TestRealTreeClean is the CI invariant: the repository itself —
// including its _test.go files — must stay free of non-allowlisted
// diagnostics (`make check` enforces the same through cmd/dqnlint).
func TestRealTreeClean(t *testing.T) {
	mod, err := Load(filepath.Join("..", ".."), true)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(mod.Pkgs) < 15 {
		t.Fatalf("loaded only %d packages; loader lost part of the tree", len(mod.Pkgs))
	}
	diags := Lint(mod, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestSyntheticViolation proves the end-to-end wiring: seeding a
// violation into a watched package of a scratch module makes Lint
// report it, and an allow directive on the same site suppresses it.
func TestSyntheticViolation(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "go.mod"), "module scratchmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(root, "internal", "core", "bad.go"), `package core

import "time"

func Stamp() time.Time {
	return time.Now()
}
`)
	mod, err := Load(root, false)
	if err != nil {
		t.Fatalf("loading scratch module: %v", err)
	}
	diags := Lint(mod, Analyzers())
	if len(diags) != 1 || diags[0].Analyzer != "detguard" || diags[0].Line != 6 {
		t.Fatalf("want exactly one detguard diagnostic at line 6, got %v", diags)
	}

	// The same call outside a watched package is not reported.
	writeFile(t, filepath.Join(root, "internal", "core", "bad.go"), `package clockutil

func Noop() {}
`)
	writeFile(t, filepath.Join(root, "internal", "clockutil", "clock.go"), `package clockutil

import "time"

func Stamp() time.Time {
	return time.Now()
}
`)
	// Rebuild the core package as something inert so only clockutil has
	// the call.
	mod, err = Load(root, false)
	if err != nil {
		t.Fatalf("reloading scratch module: %v", err)
	}
	if diags := Lint(mod, Analyzers()); len(diags) != 0 {
		t.Fatalf("unwatched package should be clean, got %v", diags)
	}

	// An allow directive with a justification suppresses the original.
	writeFile(t, filepath.Join(root, "internal", "core", "bad.go"), `package core

import "time"

func Stamp() time.Time {
	//dqnlint:allow detguard scratch test justification
	return time.Now()
}
`)
	mod, err = Load(root, false)
	if err != nil {
		t.Fatalf("reloading scratch module: %v", err)
	}
	if diags := Lint(mod, Analyzers()); len(diags) != 0 {
		t.Fatalf("allow directive should suppress the diagnostic, got %v", diags)
	}
}

func TestWatches(t *testing.T) {
	if !GoGuard.Watches("internal/anything") || !GoGuard.Watches("") {
		t.Error("an analyzer without a package list must watch everything")
	}
	if FloatEq.Watches("internal/core") {
		t.Error("floateq must not watch internal/core")
	}
	if !FloatEq.Watches("internal/linalg") {
		t.Error("floateq must watch internal/linalg")
	}
	if !CtxCheck.Watches("internal/core") || CtxCheck.Watches("internal/des") {
		t.Error("ctxcheck watches exactly internal/core")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "floateq", File: "x.go", Line: 3, Col: 7, Message: "m"}
	if got, want := d.String(), "x.go:3:7: [floateq] m"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// Ensure fixtures stay gofmt-parseable as plain Go so editors and the
// loader agree on positions (guards against fixtures rotting into
// pseudo-code).
func TestFixturesAreLoadable(t *testing.T) {
	for _, an := range Analyzers() {
		dir := filepath.Join("testdata", "src", an.Name)
		if _, err := LoadDir(dir, "fixture/"+an.Name); err != nil {
			t.Errorf("%s: %v", dir, err)
		}
	}
}
