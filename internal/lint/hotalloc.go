package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc is the static form of the PR 3 AllocsPerRun pins: no
// allocation site may be reachable from the steady-state inference
// roots — PTM.PredictStreamInto / PTM.PredictDevice /
// nn.PredictBatchInto and the tensor Into-kernels. The call graph is
// followed through module interfaces (the nn layer dispatch), panic
// arguments are exempt (failure paths may format errors), and an
// //dqnlint:allow hotalloc directive on a call site prunes that edge
// (the grow-path convention: arena growth, session construction).
var HotAlloc = &Analyzer{
	Name: hotAllocName,
	Doc:  "flags allocation sites reachable from the zero-alloc inference hot path (static AllocsPerRun gate)",
	Run:  runHotAlloc,
}

// hotRootNames are function names that anchor the zero-alloc closure
// wherever they are declared (the PR 3/PR 4 steady-state entry points).
var hotRootNames = map[string]bool{
	"PredictStreamInto": true,
	"PredictDevice":     true,
	"PredictBatchInto":  true,
}

// hotRoots collects the closure roots: the named prediction entry
// points plus every exported *Into kernel in a package whose import
// path ends in "tensor".
func hotRoots(g *CallGraph) []*types.Func {
	var roots []*types.Func
	for fn := range g.Decl {
		if hotRootNames[fn.Name()] {
			roots = append(roots, fn)
			continue
		}
		pkg := g.PkgOf[fn]
		if pkg != nil && strings.HasSuffix(pkg.Path, "tensor") &&
			fn.Exported() && strings.HasSuffix(fn.Name(), "Into") {
			roots = append(roots, fn)
		}
	}
	return roots
}

// hotAllocName is HotAlloc's name, named separately to break the
// initialization cycle between the analyzer value and its fact builder.
const hotAllocName = "hotalloc"

// hotReach returns the shared reachability closure, built once per run.
func (c *Context) hotReach() map[*types.Func]string {
	c.hotOnce.Do(func() {
		g := c.Graph()
		c.hot = g.Reachable(hotAllocName, hotRoots(g))
	})
	return c.hot
}

func runHotAlloc(pass *Pass) {
	reach := pass.Ctx.hotReach()
	g := pass.Ctx.Graph()
	for fn, via := range reach {
		if g.PkgOf[fn] != pass.Pkg {
			continue // each package pass reports only its own functions
		}
		decl := g.Decl[fn]
		if decl == nil || decl.Body == nil {
			continue
		}
		scanHotFunc(pass, fn, via, decl)
	}
}

// scanHotFunc reports every allocation site in one hot-path function.
func scanHotFunc(pass *Pass, fn *types.Func, via string, decl *ast.FuncDecl) {
	info := pass.Pkg.Info
	where := fn.Name()
	if via != where {
		where = fn.Name() + " (reachable from " + via + ")"
	}
	handledLits := map[*ast.CompositeLit]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(info, n) {
				return false // failure path: fmt boxing there is fine
			}
			scanHotCall(pass, where, n)
		case *ast.UnaryExpr:
			if lit, ok := unparen(n.X).(*ast.CompositeLit); ok && n.Op == token.AND {
				handledLits[lit] = true
				pass.Reportf(n.Pos(), "hot path: &composite literal escapes to the heap in %s (zero-alloc AllocsPerRun gate)", where)
			}
		case *ast.CompositeLit:
			if handledLits[n] {
				return true
			}
			if t, ok := info.Types[n]; ok {
				switch t.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "hot path: %s literal allocates in %s (zero-alloc AllocsPerRun gate)", typeKindWord(t.Type), where)
				}
			}
		case *ast.FuncLit:
			if capt := closureCapture(info, n); capt != "" {
				pass.Reportf(n.Pos(), "hot path: closure captures %s and allocates in %s (zero-alloc AllocsPerRun gate)", capt, where)
			}
		case *ast.AssignStmt:
			scanHotAssign(pass, where, n)
		}
		return true
	})
}

// scanHotCall reports allocating calls: the make/append/new builtins,
// fmt formatting, interface-boxing conversions and arguments, and
// variadic argument slices.
func scanHotCall(pass *Pass, where string, call *ast.CallExpr) {
	info := pass.Pkg.Info
	fun := unparen(call.Fun)

	if id, ok := fun.(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "hot path: make allocates in %s (zero-alloc AllocsPerRun gate; use arena or grow-only buffers)", where)
			case "append":
				pass.Reportf(call.Pos(), "hot path: append may grow its backing array in %s (zero-alloc AllocsPerRun gate; pre-size or annotate the grow path)", where)
			case "new":
				pass.Reportf(call.Pos(), "hot path: new allocates in %s (zero-alloc AllocsPerRun gate)", where)
			}
			return
		}
	}

	// Conversion to an interface type boxes its operand.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(info, call.Args[0]) {
			pass.Reportf(call.Pos(), "hot path: conversion to %s boxes its operand in %s (zero-alloc AllocsPerRun gate)", tv.Type.String(), where)
		}
		return
	}

	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "hot path: fmt.%s allocates in %s (zero-alloc AllocsPerRun gate)", fn.Name(), where)
		return
	}

	// Implicit boxing at the call boundary, and variadic spill slices.
	sigTV, ok := info.Types[fun]
	if !ok {
		return
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice
			}
			pt = params.At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && boxes(info, arg) {
			pass.Reportf(arg.Pos(), "hot path: argument boxes into %s in %s (zero-alloc AllocsPerRun gate)", pt.String(), where)
		}
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= np {
		pass.Reportf(call.Pos(), "hot path: variadic call allocates its argument slice in %s (zero-alloc AllocsPerRun gate)", where)
	}
}

// scanHotAssign reports implicit boxing on assignment to an
// interface-typed destination.
func scanHotAssign(pass *Pass, where string, as *ast.AssignStmt) {
	info := pass.Pkg.Info
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt, ok := info.Types[lhs]
		if !ok || !types.IsInterface(lt.Type) {
			continue
		}
		if boxes(info, as.Rhs[i]) {
			pass.Reportf(as.Rhs[i].Pos(), "hot path: assignment boxes into %s in %s (zero-alloc AllocsPerRun gate)", lt.Type.String(), where)
		}
	}
}

// boxes reports whether storing expr into an interface allocates: the
// expression has a concrete type whose representation is wider than one
// pointer word (structs, slices, strings, numerics), so the conversion
// heap-allocates the boxed copy. Pointer-shaped values (pointers,
// channels, maps, funcs) and untyped nil do not.
func boxes(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() || types.IsInterface(tv.Type) {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if b := tv.Type.Underlying().(*types.Basic); b.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// closureCapture returns the name of a variable the function literal
// captures from an enclosing function (forcing a heap-allocated closure
// object), or "" when the literal is capture-free (compiled to a static
// function value, no allocation).
func closureCapture(info *types.Info, lit *ast.FuncLit) string {
	capt := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if capt != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level: no capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			capt = v.Name()
		}
		return true
	})
	return capt
}

// typeKindWord names the allocating literal kind for diagnostics.
func typeKindWord(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
