package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output for GitHub code scanning. Only the fields the
// upload endpoint consumes are emitted: one run, one rule per analyzer,
// one result per diagnostic with a repo-relative physical location.

const (
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits diags as a SARIF 2.1.0 log. File paths are made
// relative to root (forward-slashed) so the upload maps onto the
// repository tree regardless of where the analysis ran.
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, diags []Diagnostic) error {
	ruleIndex := make(map[string]int, len(analyzers))
	rules := make([]sarifRule, 0, len(analyzers))
	for i, an := range analyzers {
		ruleIndex[an.Name] = i
		rules = append(rules, sarifRule{
			ID:               an.Name,
			ShortDescription: sarifMessage{Text: an.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: sarifURI(root, d.File)},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "dqnlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifURI converts an absolute diagnostic path into a repo-relative,
// forward-slashed artifact URI.
func sarifURI(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}
