package lint

import (
	"go/ast"
	"go/types"
)

// Analyzers returns every dqnlint analyzer in stable order: the five
// per-file syntactic checks from PR 2 and the five cross-package,
// flow-aware checks (hot-path allocations, lock discipline, atomic
// field hygiene, checkpoint durability, metric label cardinality).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		FloatEq,
		DetGuard,
		GoGuard,
		ErrDiscard,
		CtxCheck,
		HotAlloc,
		LockSafe,
		AtomicSafe,
		CrashSafe,
		ObsLabel,
	}
}

// simPackages are the deterministic simulation packages: their output
// must be bit-identical across runs (IRSA re-sequencing, Theorem 3.1),
// so wall-clock reads, global randomness, and map-order leaks are
// forbidden there.
var simPackages = []string{"internal/core", "internal/des", "internal/ptm", "internal/topo"}

// floatPackages hold the numeric kernels (PTM inference, SEC binning,
// training math) where branching on exact float equality is a latent
// numeric-stability bug.
var floatPackages = []string{
	"internal/linalg", "internal/nn", "internal/ptm",
	"internal/queueing", "internal/dbscan", "internal/metrics",
}

// unparen strips parentheses from an expression.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package-level function or method), or nil for builtins, conversions,
// function-typed variables, and interface methods it cannot pin to a
// declaration.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if obj, ok := info.Uses[id].(*types.Func); ok {
		return obj
	}
	return nil
}

// isBuiltinCall reports whether the call invokes a language builtin
// (append, len, copy, ...) or is a type conversion.
func isBuiltinCall(info *types.Info, call *ast.CallExpr) bool {
	fun := unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return true // conversion
	}
	id, ok := fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}

// isPkgFunc reports whether obj is the package-level function
// pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// enclosingFuncBody returns the body of the innermost function literal
// or declaration in file that strictly contains pos, or nil.
func enclosingFuncBody(file *ast.File, pos ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil && body.Pos() <= pos.Pos() && pos.End() <= body.End() {
			best = body // keep descending: innermost wins
		}
		return true
	})
	return best
}
