package lint

import (
	"go/ast"
	"go/types"
)

// CtxCheck keeps cancellation latency bounded in the IRSA engine:
// RunContext promises that a cancel or deadline stops the run within
// one device inference, which only holds if every work loop in a
// context-aware function polls the context. It flags for/range loops —
// in functions of internal/core that take a context.Context — that
// perform real work (at least one non-builtin call) without mentioning
// the context anywhere in the loop.
var CtxCheck = &Analyzer{
	Name:     "ctxcheck",
	Doc:      "flags work loops in context-aware core functions that never poll the context",
	Packages: []string{"internal/core"},
	Run:      runCtxCheck,
}

func runCtxCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxObj := contextParam(info, fd)
			if ctxObj == nil {
				continue
			}
			checkLoops(pass, fd.Body, ctxObj)
		}
	}
}

// contextParam returns the context.Context parameter object of fd, or
// nil if it has none.
func contextParam(info *types.Info, fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			tn := named.Obj()
			if tn.Pkg() != nil && tn.Pkg().Path() == "context" && tn.Name() == "Context" {
				return obj
			}
		}
	}
	return nil
}

// checkLoops walks node flagging unpolled work loops. Once a loop is
// flagged, its nested loops are skipped — one report per problem site.
func checkLoops(pass *Pass, node ast.Node, ctxObj types.Object) {
	ast.Inspect(node, func(n ast.Node) bool {
		var body *ast.BlockStmt
		var pos ast.Node
		switch n := n.(type) {
		case *ast.ForStmt:
			body, pos = n.Body, n
		case *ast.RangeStmt:
			body, pos = n.Body, n
		default:
			return true
		}
		if mentionsObject(pass.Pkg.Info, n, ctxObj) {
			return true // polls (or forwards) the context; check inner loops
		}
		if !doesRealWork(pass.Pkg.Info, body) {
			return true
		}
		pass.Reportf(pos.Pos(),
			"unpolled work loop: loop calls into work without checking %s.Err()/Done() — cancellation stalls until the loop exits",
			ctxObj.Name())
		return false
	})
}

// mentionsObject reports whether the context parameter is referenced
// anywhere inside n (a poll, a forward into a callee, or a capture by a
// spawned goroutine all count).
func mentionsObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// doesRealWork reports whether body contains at least one call that is
// neither a builtin nor a type conversion: pure index/arithmetic loops
// finish fast and need no poll.
func doesRealWork(info *types.Info, body *ast.BlockStmt) bool {
	work := false
	ast.Inspect(body, func(n ast.Node) bool {
		if work {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if ok && !isBuiltinCall(info, call) {
			work = true
			return false
		}
		return true
	})
	return work
}
