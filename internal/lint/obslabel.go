package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ObsLabel enforces the PR 5 metric-cardinality rule: a label value
// that derives from request input (an http.Request field, a JSON-tagged
// request struct, an error string) must pass through a bounding
// construct — a membership check against a known-value map or a switch
// with a literal default — before it reaches a metric label. Unbounded
// label values grow the registry without limit and leak request data
// into /metrics. The taint walk follows assignments in the enclosing
// function and, for parameters, the arguments at every call site of the
// enclosing function (depth-limited).
var ObsLabel = &Analyzer{
	Name:     "obslabel",
	Doc:      "flags metric label values derived from request input without a bounding map/switch",
	Packages: []string{"internal/serve", "internal/obs", "cmd/dqnserve"},
	Run:      runObsLabel,
}

const obsLabelDepth = 4

func runObsLabel(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "L" {
				continue // the Label constructor is the boundary, not a use
			}
			ast.Inspect(d, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if fn := calleeFunc(pass.Pkg.Info, n); fn != nil && isLabelCtor(fn) && len(n.Args) >= 2 {
						checkLabelValue(pass, file, n.Args[1])
					}
				case *ast.CompositeLit:
					if v := labelLitValue(pass.Pkg.Info, n); v != nil {
						checkLabelValue(pass, file, v)
					}
				}
				return true
			})
		}
	}
}

// isLabelCtor matches the obs.L convention: a function named L whose
// single result is a type named Label.
func isLabelCtor(fn *types.Func) bool {
	if fn.Name() != "L" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Name() == "Label"
}

// labelLitValue returns the Value field expression of a Label composite
// literal, or nil.
func labelLitValue(info *types.Info, lit *ast.CompositeLit) ast.Expr {
	tv, ok := info.Types[lit]
	if !ok {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != "Label" {
		return nil
	}
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Value" {
				return kv.Value
			}
			continue
		}
		if i == 1 {
			return el
		}
	}
	return nil
}

func checkLabelValue(pass *Pass, file *ast.File, value ast.Expr) {
	t := &tainter{pass: pass}
	if reason := t.tainted(pass.Pkg, file, value, obsLabelDepth); reason != "" {
		pass.Reportf(value.Pos(),
			"metric label value derives from %s without a bounding map/switch: unbounded cardinality (PR 5 rule) — map unknown values to a literal fallback", reason)
	}
}

type tainter struct {
	pass *Pass
}

// tainted returns a non-empty description of the request-input source
// when expr can carry unbounded request-derived data, or "" when the
// value is bounded (literals, constants, stringers, strconv of bounded
// ints, sanitized locals).
func (t *tainter) tainted(pkg *Package, file *ast.File, expr ast.Expr, depth int) string {
	if depth <= 0 {
		return ""
	}
	info := pkg.Info
	expr = unparen(expr)
	if tv, ok := info.Types[expr]; ok && tv.Value != nil {
		return "" // constant
	}
	switch e := expr.(type) {
	case *ast.BasicLit:
		return ""
	case *ast.BinaryExpr:
		if r := t.tainted(pkg, file, e.X, depth); r != "" {
			return r
		}
		return t.tainted(pkg, file, e.Y, depth)
	case *ast.SelectorExpr:
		// Walk the selector chain toward its root: r.URL.Path taints
		// because the chain passes through http.Request.URL.
		sel := e
		for {
			if r := selectorTaint(info, sel); r != "" {
				return r
			}
			switch x := unparen(sel.X).(type) {
			case *ast.SelectorExpr:
				sel = x
			case *ast.Ident:
				return t.identTaint(pkg, file, x, depth-1)
			default:
				return ""
			}
		}
	case *ast.CallExpr:
		return t.callTaint(pkg, file, e, depth)
	case *ast.Ident:
		return t.identTaint(pkg, file, e, depth)
	}
	return ""
}

// selectorTaint flags field reads of request-shaped types: net/http's
// Request and any module struct with JSON field tags (the wire-decoded
// request/record types).
func selectorTaint(info *types.Info, sel *ast.SelectorExpr) string {
	fld := selectedField(info, sel)
	if fld == nil {
		return ""
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return ""
	}
	base := tv.Type
	if p, ok := base.Underlying().(*types.Pointer); ok {
		base = p.Elem()
	}
	named, ok := base.(*types.Named)
	if !ok {
		return ""
	}
	if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Request" {
		return "http.Request." + fld.Name()
	}
	if st, ok := named.Underlying().(*types.Struct); ok && hasJSONTags(st) {
		return named.Obj().Name() + "." + fld.Name() + " (wire-decoded request field)"
	}
	return ""
}

func hasJSONTags(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if strings.Contains(st.Tag(i), "json:") {
			return true
		}
	}
	return false
}

// callTaint classifies call results: strconv formatting and String()
// stringers are bounded; error.Error() is tainted; static module calls
// propagate taint from their return expressions.
func (t *tainter) callTaint(pkg *Package, file *ast.File, call *ast.CallExpr, depth int) string {
	info := pkg.Info
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "strconv" {
		return "" // numeric formatting: bounded by the int domain
	}
	sig, _ := fn.Type().(*types.Signature)
	if fn.Name() == "Error" && sig != nil && sig.Recv() != nil {
		return "error text (err.Error())"
	}
	if fn.Name() == "String" && sig != nil && sig.Recv() != nil && len(call.Args) == 0 {
		return "" // stringer over an enum domain
	}
	// Follow a static module call into its return expressions.
	g := t.pass.Ctx.Graph()
	for _, callee := range g.Callees(pkg, call) {
		decl := g.Decl[callee]
		cpkg := g.PkgOf[callee]
		if decl == nil || cpkg == nil || decl.Body == nil {
			continue
		}
		cfile := fileOf(cpkg, decl.Pos())
		reason := ""
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if reason != "" {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				if r := t.tainted(cpkg, cfile, res, depth-1); r != "" {
					reason = r
					break
				}
			}
			return true
		})
		if reason != "" {
			return reason + " via " + callee.Name()
		}
	}
	return ""
}

// identTaint follows a local variable or parameter: a local is tainted
// if any assignment to it is tainted and no bounding construct
// sanitizes it; a parameter is tainted if any caller passes a tainted
// argument (and the local function does not bound it).
func (t *tainter) identTaint(pkg *Package, file *ast.File, id *ast.Ident, depth int) string {
	v, ok := pkg.Info.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return ""
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return "" // package-level: initialized once, not request data
	}
	body := enclosingFuncBody(file, id)
	if body == nil {
		return ""
	}
	if sanitizedInBody(pkg.Info, body, v) {
		return ""
	}
	// Assignments to v inside the enclosing function.
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := unparen(lhs).(*ast.Ident)
			if !ok || identObj(pkg.Info, lid) != v {
				continue
			}
			if r := t.tainted(pkg, file, as.Rhs[i], depth-1); r != "" {
				reason = r
			}
		}
		return true
	})
	if reason != "" {
		return reason
	}
	if isParamOf(pkg.Info, body, file, v) {
		return t.callerTaint(pkg, file, body, v, depth)
	}
	return ""
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// isParamOf reports whether v is a parameter of the function whose body
// encloses it.
func isParamOf(info *types.Info, body *ast.BlockStmt, file *ast.File, v *types.Var) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		var ft *ast.FuncType
		var b *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			ft, b = fn.Type, fn.Body
		case *ast.FuncLit:
			ft, b = fn.Type, fn.Body
		default:
			return true
		}
		if b != body || ft.Params == nil {
			return true
		}
		for _, f := range ft.Params.List {
			for _, name := range f.Names {
				if info.Defs[name] == v {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// callerTaint checks every call site of the function owning body across
// the module: the parameter is tainted if any caller passes a tainted
// argument for it.
func (t *tainter) callerTaint(pkg *Package, file *ast.File, body *ast.BlockStmt, param *types.Var, depth int) string {
	fn := funcOwning(pkg, file, body)
	if fn == nil {
		return ""
	}
	idx := paramIndex(fn, param)
	if idx < 0 {
		return ""
	}
	for _, cp := range t.pass.Ctx.All {
		if cp.Info == nil {
			continue
		}
		for _, cf := range cp.Files {
			reason := ""
			ast.Inspect(cf, func(n ast.Node) bool {
				if reason != "" {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok || calleeFunc(cp.Info, call) != fn || idx >= len(call.Args) {
					return true
				}
				if r := t.tainted(cp, cf, call.Args[idx], depth-1); r != "" {
					pos := cp.Fset.Position(call.Pos())
					reason = r + " (passed by caller at " + pos.Filename + ":" + strconv.Itoa(pos.Line) + ")"
				}
				return true
			})
			if reason != "" {
				return reason
			}
		}
	}
	return ""
}

// funcOwning finds the declared function whose body is body.
func funcOwning(pkg *Package, file *ast.File, body *ast.BlockStmt) *types.Func {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body == body {
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			return fn
		}
	}
	return nil
}

func paramIndex(fn *types.Func, v *types.Var) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return i
		}
	}
	return -1
}

// sanitizedInBody recognizes the two bounding constructs: a membership
// test of v against a map with a literal fallback assignment
// (if !known[v] { v = "other" }), and a switch on v whose default
// assigns a literal.
func sanitizedInBody(info *types.Info, body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.IfStmt:
			if condTestsMapMembership(info, n.Cond, v) && assignsLiteralTo(info, n.Body, v) {
				found = true
			}
		case *ast.SwitchStmt:
			tag, ok := unparen(n.Tag).(*ast.Ident)
			if !ok || identObj(info, tag) != v {
				return true
			}
			for _, c := range n.Body.List {
				cc, ok := c.(*ast.CaseClause)
				if !ok || cc.List != nil {
					continue
				}
				blk := &ast.BlockStmt{List: cc.Body}
				if assignsLiteralTo(info, blk, v) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// condTestsMapMembership reports whether cond contains known[v] (under
// any negation/comma-ok wrapping) where known is map-typed.
func condTestsMapMembership(info *types.Info, cond ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[ix.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
		}
		if id, ok := unparen(ix.Index).(*ast.Ident); ok && identObj(info, id) == v {
			found = true
		}
		return true
	})
	return found
}

// assignsLiteralTo reports whether blk assigns a constant to v.
func assignsLiteralTo(info *types.Info, blk *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(blk, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok || identObj(info, id) != v {
				continue
			}
			if tv, ok := info.Types[as.Rhs[i]]; ok && tv.Value != nil {
				found = true
			}
		}
		return true
	})
	return found
}

// fileOf returns the package file containing pos.
func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.Pos() <= pos && pos <= f.End() {
			return f
		}
	}
	return nil
}
