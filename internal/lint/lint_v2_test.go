package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// v2Case seeds one violation for a flow-aware analyzer into a scratch
// module: bad triggers exactly one diagnostic, allowed is the same code
// with a justified //dqnlint:allow and must be clean. The pair proves
// both the detection and the suppression path end to end.
type v2Case struct {
	analyzer string
	pkgDir   string // module-relative package directory
	bad      string
	allowed  string
}

var v2Cases = []v2Case{
	{
		analyzer: "hotalloc",
		pkgDir:   "internal/core",
		bad: `package core

func PredictStreamInto(dst []int) []int {
	return grow(dst)
}

func grow(dst []int) []int {
	return make([]int, len(dst)+1)
}
`,
		allowed: `package core

func PredictStreamInto(dst []int) []int {
	return grow(dst)
}

func grow(dst []int) []int {
	//dqnlint:allow hotalloc scratch test justification
	return make([]int, len(dst)+1)
}
`,
	},
	{
		analyzer: "locksafe",
		pkgDir:   "internal/core",
		bad: `package core

import (
	"sync"
	"time"
)

var mu sync.Mutex

func Sleepy() {
	mu.Lock()
	time.Sleep(time.Millisecond)
	mu.Unlock()
}
`,
		allowed: `package core

import (
	"sync"
	"time"
)

var mu sync.Mutex

func Sleepy() {
	mu.Lock()
	//dqnlint:allow locksafe scratch test justification
	time.Sleep(time.Millisecond)
	mu.Unlock()
}
`,
	},
	{
		analyzer: "atomicsafe",
		pkgDir:   "internal/serve",
		bad: `package serve

import "sync/atomic"

type stats struct{ hits uint64 }

var s stats

func Inc() { atomic.AddUint64(&s.hits, 1) }

func Read() uint64 { return s.hits }
`,
		allowed: `package serve

import "sync/atomic"

type stats struct{ hits uint64 }

var s stats

func Inc() { atomic.AddUint64(&s.hits, 1) }

//dqnlint:allow atomicsafe scratch test justification
func Read() uint64 { return s.hits }
`,
	},
	{
		analyzer: "crashsafe",
		pkgDir:   "internal/checkpoint",
		bad: `package checkpoint

import "os"

func Save(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
`,
		allowed: `package checkpoint

import "os"

func Save(path string, data []byte) error {
	//dqnlint:allow crashsafe scratch test justification
	return os.WriteFile(path, data, 0o644)
}
`,
	},
	{
		analyzer: "obslabel",
		pkgDir:   "internal/obs",
		bad: `package obs

import "net/http"

type Label struct{ Key, Value string }

func L(k, v string) Label { return Label{Key: k, Value: v} }

func record(name string, ls ...Label) {}

func Handle(r *http.Request) {
	record("req", L("path", r.URL.Path))
}
`,
		allowed: `package obs

import "net/http"

type Label struct{ Key, Value string }

func L(k, v string) Label { return Label{Key: k, Value: v} }

func record(name string, ls ...Label) {}

func Handle(r *http.Request) {
	//dqnlint:allow obslabel scratch test justification
	record("req", L("path", r.URL.Path))
}
`,
	},
}

// TestV2AllowSuppression proves each flow-aware analyzer both fires on
// a seeded violation and honors a justified allow directive.
func TestV2AllowSuppression(t *testing.T) {
	byName := map[string]*Analyzer{}
	for _, an := range Analyzers() {
		byName[an.Name] = an
	}
	for _, tc := range v2Cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			an := byName[tc.analyzer]
			if an == nil {
				t.Fatalf("analyzer %s not registered", tc.analyzer)
			}
			root := t.TempDir()
			writeFile(t, filepath.Join(root, "go.mod"), "module scratchmod\n\ngo 1.22\n")
			src := filepath.Join(root, filepath.FromSlash(tc.pkgDir), "code.go")

			writeFile(t, src, tc.bad)
			mod, err := Load(root, false)
			if err != nil {
				t.Fatalf("loading scratch module: %v", err)
			}
			diags := Lint(mod, []*Analyzer{an})
			if len(diags) != 1 || diags[0].Analyzer != tc.analyzer {
				t.Fatalf("want exactly one %s diagnostic, got %v", tc.analyzer, diags)
			}

			writeFile(t, src, tc.allowed)
			mod, err = Load(root, false)
			if err != nil {
				t.Fatalf("reloading scratch module: %v", err)
			}
			if diags := Lint(mod, []*Analyzer{an}); len(diags) != 0 {
				t.Fatalf("allow directive should suppress the %s diagnostic, got %v", tc.analyzer, diags)
			}
		})
	}
}

// TestWriteSARIF validates the structural contract of the SARIF output:
// schema and version fields, one rule per analyzer, one result per
// diagnostic with a repo-relative forward-slashed URI.
func TestWriteSARIF(t *testing.T) {
	analyzers := Analyzers()
	root := string(filepath.Separator) + filepath.Join("repo", "root")
	diags := []Diagnostic{
		{Analyzer: "hotalloc", File: filepath.Join(root, "internal", "tensor", "arena.go"), Line: 12, Col: 3, Message: "hot path: make allocates"},
		{Analyzer: "locksafe", File: filepath.Join(root, "internal", "obs", "obs.go"), Line: 40, Col: 2, Message: "blocking op under mutex"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, root, analyzers, diags); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Fatalf("version/schema = %q / %q, want 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want exactly one run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "dqnlint" {
		t.Fatalf("driver name = %q, want dqnlint", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(analyzers) {
		t.Fatalf("want %d rules (one per analyzer), got %d", len(analyzers), len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("want %d results, got %d", len(diags), len(run.Results))
	}
	for i, r := range run.Results {
		if r.RuleID != diags[i].Analyzer {
			t.Errorf("result %d ruleId = %q, want %q", i, r.RuleID, diags[i].Analyzer)
		}
		if got := run.Tool.Driver.Rules[r.RuleIndex].ID; got != r.RuleID {
			t.Errorf("result %d ruleIndex points at rule %q, want %q", i, got, r.RuleID)
		}
		if r.Level != "error" {
			t.Errorf("result %d level = %q, want error", i, r.Level)
		}
		uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if strings.Contains(uri, "\\") || strings.HasPrefix(uri, "/") {
			t.Errorf("result %d URI %q is not repo-relative forward-slashed", i, uri)
		}
		if r.Locations[0].PhysicalLocation.Region.StartLine != diags[i].Line {
			t.Errorf("result %d startLine = %d, want %d", i,
				r.Locations[0].PhysicalLocation.Region.StartLine, diags[i].Line)
		}
	}
}

// TestBaselineRoundTrip checks write → load → filter: recorded findings
// are absorbed up to their count, new findings survive.
func TestBaselineRoundTrip(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("repo", "root")
	dup := Diagnostic{Analyzer: "hotalloc", File: filepath.Join(root, "a", "a.go"), Line: 5, Message: "make allocates"}
	other := Diagnostic{Analyzer: "locksafe", File: filepath.Join(root, "b", "b.go"), Line: 9, Message: "held across sleep"}
	recorded := []Diagnostic{dup, dup, other}

	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, root, recorded); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	var entries []BaselineEntry
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("baseline file is not valid JSON: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("want 2 aggregated entries, got %d: %v", len(entries), entries)
	}
	if entries[0].Count != 2 || entries[0].File != "a/a.go" {
		t.Fatalf("dup entry = %+v, want count 2 and repo-relative file", entries[0])
	}

	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if got := base.Filter(root, recorded); len(got) != 0 {
		t.Fatalf("recorded findings should be fully absorbed, got %v", got)
	}
	// A third identical finding exceeds the recorded count of 2.
	if got := base.Filter(root, []Diagnostic{dup, dup, dup}); len(got) != 1 {
		t.Fatalf("count budget should leave exactly the overflow finding, got %v", got)
	}
	fresh := Diagnostic{Analyzer: "crashsafe", File: filepath.Join(root, "c", "c.go"), Line: 1, Message: "raw WriteFile"}
	if got := base.Filter(root, []Diagnostic{dup, fresh}); len(got) != 1 || got[0].Analyzer != "crashsafe" {
		t.Fatalf("new finding must survive the baseline, got %v", got)
	}
}
