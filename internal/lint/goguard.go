package lint

import (
	"go/ast"
	"go/types"
)

// GoGuard enforces the PR 1 shard-isolation contract: a panic inside a
// spawned goroutine must be recovered (into a guard.ShardError or
// equivalent) instead of killing the process — recover only works on
// the panicking goroutine, so every `go` statement must lead to a
// deferred recover. The check follows direct calls up to a few frames
// deep (the engine's pattern routes goroutine bodies through a
// *Guarded helper that defers the recovery), so indirection through
// ordinary helpers does not force an allow directive.
var GoGuard = &Analyzer{
	Name: "goguard",
	Doc:  "flags go statements whose function never defers a recover (shard panic isolation)",
	Run:  runGoGuard,
}

// goGuardDepth bounds how many call frames the analyzer follows from
// the goroutine entry point looking for a deferred recover.
const goGuardDepth = 4

func runGoGuard(pass *Pass) {
	idx := pass.Ctx.Graph()
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineGuarded(pass.Pkg, idx, gs.Call, goGuardDepth, map[*types.Func]bool{}) {
				pass.Reportf(gs.Go,
					"unguarded goroutine: no deferred recover on this path — a panic here kills the process (recover into a guard error, PR 1 isolation contract)")
			}
			return false // the spawned body was just analyzed
		})
	}
}

// funcIndex is the declared-function index shared with the call graph:
// it maps declared functions to their bodies across every loaded
// package, so call chains can be followed cross-package.
type funcIndex struct {
	decl map[*types.Func]*ast.FuncDecl
	pkg  map[*types.Func]*Package
}

func buildFuncIndex(all []*Package) *funcIndex {
	idx := &funcIndex{decl: map[*types.Func]*ast.FuncDecl{}, pkg: map[*types.Func]*Package{}}
	for _, p := range all {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					idx.decl[obj] = fd
					idx.pkg[obj] = p
				}
			}
		}
	}
	return idx
}

// goroutineGuarded reports whether the goroutine entered through call
// reaches a deferred recover within depth call frames.
func goroutineGuarded(pkg *Package, idx *CallGraph, call *ast.CallExpr, depth int, seen map[*types.Func]bool) bool {
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		return bodyGuarded(pkg, idx, lit.Body, depth, seen)
	}
	fn := calleeFunc(pkg.Info, call)
	if fn == nil {
		return false // dynamic call: cannot prove a recover exists
	}
	return funcGuarded(idx, fn, depth, seen)
}

func funcGuarded(idx *CallGraph, fn *types.Func, depth int, seen map[*types.Func]bool) bool {
	if depth <= 0 || seen[fn] {
		return false
	}
	seen[fn] = true
	decl := idx.Decl[fn]
	if decl == nil {
		return false
	}
	return bodyGuarded(idx.PkgOf[fn], idx, decl.Body, depth, seen)
}

// bodyGuarded reports whether body defers a recover itself, or calls a
// function that does (within the remaining depth budget).
func bodyGuarded(pkg *Package, idx *CallGraph, body *ast.BlockStmt, depth int, seen map[*types.Func]bool) bool {
	if hasDeferredRecover(pkg, idx, body) {
		return true
	}
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // not executed on this goroutine's frame chain
		case *ast.GoStmt:
			return false // a nested goroutine is its own problem
		case *ast.CallExpr:
			if fn := calleeFunc(pkg.Info, n); fn != nil && funcGuarded(idx, fn, depth-1, seen) {
				guarded = true
				return false
			}
		}
		return true
	})
	return guarded
}

// hasDeferredRecover reports whether body contains a defer that leads
// to a direct recover() call: either a deferred function literal whose
// body calls recover, or a deferred named function that calls recover
// directly in its own body.
func hasDeferredRecover(pkg *Package, idx *CallGraph, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // defers inside nested literals guard those literals
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		switch fun := unparen(ds.Call.Fun).(type) {
		case *ast.FuncLit:
			if callsRecover(pkg.Info, fun.Body) {
				found = true
			}
		default:
			if fn := calleeFunc(pkg.Info, ds.Call); fn != nil {
				if decl := idx.Decl[fn]; decl != nil && callsRecover(idx.PkgOf[fn].Info, decl.Body) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// callsRecover reports whether body calls the recover builtin directly
// (not inside a nested function literal, where it would recover a
// different frame).
func callsRecover(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
			if _, isB := info.Uses[id].(*types.Builtin); isB {
				found = true
			}
		}
		return true
	})
	return found
}
