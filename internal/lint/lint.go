// Package lint is dqnlint's engine: a stdlib-only static-analysis
// driver (go/parser + go/ast + go/types, no external modules) that
// enforces the repository invariants the compiler cannot see. IRSA
// convergence (Theorem 3.1) requires bit-deterministic re-sequencing
// across sweeps, the PTM/SEC numeric kernels must not branch on exact
// float equality, and the PR 1 robustness contract requires every
// spawned goroutine to recover panics into a guard error. Each invariant
// is checked by one Analyzer; intentional exceptions are annotated in
// source with a //dqnlint:allow directive carrying a justification.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, enable/disable flags,
	// and //dqnlint:allow directives.
	Name string
	// Doc is a one-line description shown by dqnlint -list.
	Doc string
	// Packages restricts the analyzer to these module-relative import
	// paths (e.g. "internal/core"). Empty means every package.
	Packages []string
	// Run reports findings in pass.Pkg through pass.Reportf.
	Run func(pass *Pass)
}

// Watches reports whether the analyzer applies to the package at the
// given module-relative path ("" is the module root package).
func (a *Analyzer) Watches(relPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if p == relPath {
			return true
		}
	}
	return false
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Pkg *Package
	// All is every loaded module package, for cross-package resolution
	// (goguard follows call chains into other packages).
	All []*Package
	// Ctx holds the shared cross-package facts (call graph, atomic
	// fields, hot-path closure) built once per Lint run.
	Ctx *Context

	analyzer *Analyzer
	diags    []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Lint runs the given analyzers over every package, honoring each
// analyzer's package filter and the //dqnlint:allow directives in the
// source. Packages are analyzed in parallel (the shared fact layer is
// built once up front so the fan-out only reads); diagnostics come back
// sorted by file, line, column, analyzer.
func Lint(mod *Module, analyzers []*Analyzer) []Diagnostic {
	ctx := NewContext(mod.Pkgs)
	results := make([][]Diagnostic, len(mod.Pkgs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(mod.Pkgs) {
		workers = len(mod.Pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var panicked atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Recover analyzer panics and rethrow them on the caller's
			// goroutine so a crashing analyzer still fails loudly (and
			// satisfies the repo's own goguard contract).
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, fmt.Sprintf("lint: analyzer panic: %v", r))
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(mod.Pkgs) {
					return
				}
				pkg := mod.Pkgs[i]
				rel := mod.Rel(pkg.Path)
				for _, an := range analyzers {
					if !an.Watches(rel) {
						continue
					}
					results[i] = append(results[i], lintPackage(ctx, pkg, an)...)
				}
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
	var out []Diagnostic
	for _, r := range results {
		out = append(out, r...)
	}
	sortDiagnostics(out)
	return out
}

// LintPackage runs one analyzer over one package, honoring allow
// directives but not the analyzer's package filter. It is the entry
// point used by the golden-file self-tests and by targeted runs.
func LintPackage(pkg *Package, all []*Package, an *Analyzer) []Diagnostic {
	return lintPackage(NewContext(all), pkg, an)
}

func lintPackage(ctx *Context, pkg *Package, an *Analyzer) []Diagnostic {
	pass := &Pass{Pkg: pkg, All: ctx.All, Ctx: ctx, analyzer: an}
	an.Run(pass)
	out := pass.diags[:0]
	for _, d := range pass.diags {
		if !pkg.allowed(an.Name, d.File, d.Line) {
			out = append(out, d)
		}
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// AllowPrefix introduces a suppression directive. The full form is
//
//	//dqnlint:allow <analyzer>[,<analyzer>|all] <one-line justification>
//
// placed either at the end of the offending line or on the line directly
// above it. The justification is required by convention (reviewed, not
// machine-enforced).
const AllowPrefix = "dqnlint:allow"

// allows maps file → line → analyzer names suppressed at that line.
type allows map[string]map[int][]string

// collectAllows scans a file's comments for //dqnlint:allow directives.
func collectAllows(fset *token.FileSet, file *ast.File, into allows) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, AllowPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, AllowPrefix))
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			names := strings.Split(fields[0], ",")
			pos := fset.Position(c.Pos())
			m := into[pos.Filename]
			if m == nil {
				m = make(map[int][]string)
				into[pos.Filename] = m
			}
			m[pos.Line] = append(m[pos.Line], names...)
		}
	}
}

// allowed reports whether a diagnostic from analyzer at file:line is
// suppressed by a directive on the same line or the line above.
func (p *Package) allowed(analyzer, file string, line int) bool {
	m := p.allows[file]
	if m == nil {
		return false
	}
	for _, l := range []int{line, line - 1} {
		for _, name := range m[l] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}
