package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq flags == and != comparisons with floating-point operands in
// the numeric-kernel packages. Exact float equality silently encodes an
// assumption about rounding behavior; the SEC correction and the
// min-max scaler are only stable when degenerate cases are handled with
// explicit tolerances (or a justified //dqnlint:allow for genuine
// exact-representation checks such as sentinel zeros).
//
// _test.go files are exempt by design: in this repo exact comparison in
// tests usually IS the assertion — the IRSA bit-determinism suite pins
// byte-identical results, and a tolerance there would hide the very
// drift the test exists to catch.
var FloatEq = &Analyzer{
	Name:     "floateq",
	Doc:      "flags ==/!= on floating-point operands in numeric kernel packages",
	Packages: floatPackages,
	Run:      runFloatEq,
}

func runFloatEq(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := info.Types[be.X]
			yt, yok := info.Types[be.Y]
			if !xok || !yok {
				return true
			}
			// Two compile-time constants compare exactly by definition.
			if xt.Value != nil && yt.Value != nil {
				return true
			}
			if isFloat(xt.Type) || isFloat(yt.Type) {
				pass.Reportf(be.OpPos,
					"float equality: %s on %s operands (use a tolerance, or //dqnlint:allow with why exact compare is sound)",
					be.Op, floatOperandType(xt.Type, yt.Type))
			}
			return true
		})
	}
}

func floatOperandType(x, y types.Type) types.Type {
	if isFloat(x) {
		return x
	}
	return y
}
