package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicSafe flags mixed atomic/plain access to the same struct field:
// once any code path touches a field through the legacy sync/atomic
// free functions (atomic.AddUint64(&s.n, 1)), every other access must
// go through the atomic API too — a plain read races with the atomic
// writers, and a plain write tears. The typed atomics (atomic.Uint64
// and friends, the serve/obs convention) are immune by construction and
// never flagged. The atomic-access fact is collected module-wide so a
// field made atomic in obs is protected against plain access in serve.
var AtomicSafe = &Analyzer{
	Name:     "atomicsafe",
	Doc:      "flags plain reads/writes of struct fields that are elsewhere accessed via sync/atomic",
	Packages: []string{"internal/serve", "internal/obs", "internal/chaos", "internal/core", "internal/checkpoint"},
	Run:      runAtomicSafe,
}

// atomicFields scans every loaded package for sync/atomic free-function
// calls on struct-field addresses and maps each such field to one
// atomic-access site (for the diagnostic's cross-reference).
func (c *Context) atomicFields() map[*types.Var]token.Position {
	c.atomicOnce.Do(func() {
		c.atomics = map[*types.Var]token.Position{}
		for _, p := range c.All {
			if p.Info == nil {
				continue
			}
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if fld := atomicFieldArg(p.Info, call); fld != nil {
						if _, seen := c.atomics[fld]; !seen {
							c.atomics[fld] = p.Fset.Position(call.Pos())
						}
					}
					return true
				})
			}
		}
	})
	return c.atomics
}

// atomicFieldArg returns the struct field whose address is passed to a
// sync/atomic free function in call, or nil.
func atomicFieldArg(info *types.Info, call *ast.CallExpr) *types.Var {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil // typed-atomic method: safe by construction
	}
	if len(call.Args) == 0 {
		return nil
	}
	un, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	sel, ok := unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return selectedField(info, sel)
}

func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

func runAtomicSafe(pass *Pass) {
	fields := pass.Ctx.atomicFields()
	if len(fields) == 0 {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && atomicFieldArg(info, call) != nil {
				// Skip the atomic call's own &s.f argument; still
				// descend into the remaining arguments.
				for _, a := range call.Args[1:] {
					ast.Inspect(a, func(m ast.Node) bool { return reportPlain(pass, fields, m) })
				}
				return false
			}
			return reportPlain(pass, fields, n)
		})
	}
}

// reportPlain flags a selector access to a field in the atomic set.
func reportPlain(pass *Pass, fields map[*types.Var]token.Position, n ast.Node) bool {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return true
	}
	fld := selectedField(pass.Pkg.Info, sel)
	if fld == nil {
		return true
	}
	if at, hot := fields[fld]; hot {
		pass.Reportf(sel.Sel.Pos(),
			"plain access to field %s, which is accessed atomically at %s:%d — use the atomic API everywhere or a typed atomic",
			fld.Name(), at.Filename, at.Line)
	}
	return true
}
