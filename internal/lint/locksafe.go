package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafe machine-checks the PR 5 lock discipline: every sync.Mutex /
// sync.RWMutex Lock must be released on every return path, no blocking
// operation (channel send/receive, select, sleep, file or network IO,
// dynamic callbacks) may run while a lock is held, and locks must not
// be copied by value. The "snapshot under the lock, operate after
// Unlock" rule that keeps GaugeFuncs out of the registry lock becomes a
// compile-time fact instead of a review checklist item.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "flags Lock without Unlock on a return path, blocking ops under a held mutex, and lock copies",
	Run:  runLockSafe,
}

func runLockSafe(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockCopies(pass, fd)
			w := &lockWalker{pass: pass, info: pass.Pkg.Info}
			st := newLockState()
			w.stmt(st, fd.Body)
			w.checkExit(st, fd.Body.End())
			// Function literals get their own walk: their bodies run on
			// a different frame with their own lock discipline.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					ls := newLockState()
					w.stmt(ls, lit.Body)
					w.checkExit(ls, lit.Body.End())
				}
				return true
			})
		}
	}
}

// heldLock tracks one acquired mutex on the current abstract path.
type heldLock struct {
	pos      token.Pos // the Lock call
	deferred bool      // a deferred Unlock releases it at exit
	maybe    bool      // held on some but not all merged paths
}

type lockState struct {
	held       map[string]*heldLock
	terminated bool
}

func newLockState() *lockState { return &lockState{held: map[string]*heldLock{}} }

func (s *lockState) clone() *lockState {
	c := newLockState()
	c.terminated = s.terminated
	for k, v := range s.held {
		cp := *v
		c.held[k] = &cp
	}
	return c
}

// merge folds the post-states of sibling branches into s. Terminated
// branches (returned, panicked) drop out; a lock held on only some
// surviving branches becomes maybe-held (still flags blocking ops, no
// longer flags return leaks — the must/may split keeps both checks
// low-noise).
func mergeLockStates(states []*lockState) *lockState {
	var live []*lockState
	for _, st := range states {
		if st != nil && !st.terminated {
			live = append(live, st)
		}
	}
	if len(live) == 0 {
		out := newLockState()
		out.terminated = true
		return out
	}
	out := newLockState()
	counts := map[string]int{}
	for _, st := range live {
		for k, v := range st.held {
			if cur := out.held[k]; cur == nil {
				cp := *v
				out.held[k] = &cp
			} else {
				cur.deferred = cur.deferred && v.deferred
				cur.maybe = cur.maybe || v.maybe
			}
			counts[k]++
		}
	}
	for k, n := range counts {
		if n < len(live) {
			out.held[k].maybe = true
		}
	}
	return out
}

type lockWalker struct {
	pass *Pass
	info *types.Info
}

// mutexOp classifies a call as a lock or unlock on a sync.Mutex /
// sync.RWMutex receiver, returning a stable key for the mutex
// expression ("r.mu", "r.mu#r" for the read side).
func (w *lockWalker) mutexOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := w.info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	key = types.ExprString(sel.X)
	if name == "RLock" || name == "RUnlock" {
		key += "#r"
	}
	if name == "Lock" || name == "RLock" {
		return key, "lock", true
	}
	return key, "unlock", true
}

func (w *lockWalker) stmt(st *lockState, s ast.Stmt) {
	if st.terminated || s == nil {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range s.List {
			w.stmt(st, inner)
			if st.terminated {
				return
			}
		}
	case *ast.ExprStmt:
		if call, ok := unparen(s.X).(*ast.CallExpr); ok {
			if key, op, ok := w.mutexOp(call); ok {
				if op == "lock" {
					st.held[key] = &heldLock{pos: call.Pos()}
				} else {
					delete(st.held, key)
				}
				return
			}
			if isPanicCall(w.info, call) || w.isTerminalCall(call) {
				st.terminated = true
				return
			}
		}
		w.blockingScan(st, s.X)
	case *ast.DeferStmt:
		w.deferStmt(st, s)
	case *ast.ReturnStmt:
		w.blockingScan(st, s)
		w.checkExit(st, s.Pos())
		st.terminated = true
	case *ast.SendStmt:
		w.blockingScan(st, s.Chan)
		w.blockingScan(st, s.Value)
		w.reportBlocking(st, s.Arrow, "channel send")
	case *ast.AssignStmt:
		w.blockingScan(st, s)
	case *ast.DeclStmt, *ast.IncDecStmt:
		w.blockingScan(st, s)
	case *ast.IfStmt:
		w.stmt(st, s.Init)
		w.blockingScan(st, s.Cond)
		thenSt := st.clone()
		w.stmt(thenSt, s.Body)
		elseSt := st.clone()
		if s.Else != nil {
			w.stmt(elseSt, s.Else)
		}
		*st = *mergeLockStates([]*lockState{thenSt, elseSt})
	case *ast.ForStmt:
		w.stmt(st, s.Init)
		w.blockingScan(st, s.Cond)
		body := st.clone()
		w.stmt(body, s.Body)
		w.stmt(body, s.Post)
		*st = *mergeLockStates([]*lockState{st, body})
	case *ast.RangeStmt:
		w.blockingScan(st, s.X)
		if tv, ok := w.info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.reportBlocking(st, s.For, "range over channel")
			}
		}
		body := st.clone()
		w.stmt(body, s.Body)
		*st = *mergeLockStates([]*lockState{st, body})
	case *ast.SwitchStmt:
		w.stmt(st, s.Init)
		w.blockingScan(st, s.Tag)
		w.caseMerge(st, s.Body, hasDefaultClause(s.Body))
	case *ast.TypeSwitchStmt:
		w.stmt(st, s.Init)
		w.caseMerge(st, s.Body, hasDefaultClause(s.Body))
	case *ast.SelectStmt:
		if !hasDefaultClause(s.Body) {
			w.reportBlocking(st, s.Select, "select without default")
		}
		w.caseMerge(st, s.Body, true) // select always takes exactly one clause
	case *ast.GoStmt:
		// The spawned goroutine runs on its own frame with its own
		// discipline; launching it does not block.
	case *ast.LabeledStmt:
		w.stmt(st, s.Stmt)
	case *ast.BranchStmt:
		// break/continue/goto leave this straight-line path; treating
		// them as path exits avoids false leak merges at loop tails.
		st.terminated = true
	}
}

// caseMerge walks each case clause of body on a cloned state and merges
// the survivors; when no default exists the fall-through (entry) state
// survives too.
func (w *lockWalker) caseMerge(st *lockState, body *ast.BlockStmt, exhaustive bool) {
	states := []*lockState{}
	if !exhaustive {
		states = append(states, st.clone())
	}
	for _, c := range body.List {
		cl := st.clone()
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, s := range c.Body {
				w.stmt(cl, s)
				if cl.terminated {
					break
				}
			}
		case *ast.CommClause:
			for _, s := range c.Body {
				w.stmt(cl, s)
				if cl.terminated {
					break
				}
			}
		}
		states = append(states, cl)
	}
	*st = *mergeLockStates(states)
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				return true
			}
		case *ast.CommClause:
			if c.Comm == nil {
				return true
			}
		}
	}
	return false
}

// deferStmt records deferred unlocks (directly or through a literal).
func (w *lockWalker) deferStmt(st *lockState, d *ast.DeferStmt) {
	markUnlock := func(call *ast.CallExpr) {
		if key, op, ok := w.mutexOp(call); ok && op == "unlock" {
			if li := st.held[key]; li != nil {
				li.deferred = true
			}
		}
	}
	markUnlock(d.Call)
	if lit, ok := unparen(d.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				markUnlock(call)
			}
			return true
		})
	}
}

// checkExit reports locks still must-held (and not deferred-released)
// when control leaves the function at pos.
func (w *lockWalker) checkExit(st *lockState, pos token.Pos) {
	if st.terminated {
		return
	}
	for key, li := range st.held {
		if li.deferred || li.maybe {
			continue
		}
		w.pass.Reportf(pos, "%s locked at line %d is not released on this return path (missing defer %s.Unlock()?)",
			lockDisplay(key), w.pass.Pkg.Fset.Position(li.pos).Line, lockDisplay(key))
	}
}

// blockingScan reports blocking operations inside node while any lock
// is held. Function literal bodies are skipped: defining a callback
// under a lock is fine, invoking one is not.
func (w *lockWalker) blockingScan(st *lockState, node ast.Node) {
	if node == nil || len(st.held) == 0 {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.reportBlocking(st, n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if _, _, ok := w.mutexOp(n); ok {
				return true
			}
			if reason := w.blockingCall(n); reason != "" {
				w.reportBlocking(st, n.Pos(), reason)
				return true
			}
		}
		return true
	})
}

// blockingCall classifies a call as a blocking operation: sleeps,
// waits, file/network IO, io-interface writes, or a dynamic call
// through a function value (a user callback the analyzer cannot see
// into).
func (w *lockWalker) blockingCall(call *ast.CallExpr) string {
	if isBuiltinCall(w.info, call) || isPanicCall(w.info, call) {
		return ""
	}
	fn := calleeFunc(w.info, call)
	if fn == nil {
		if _, ok := unparen(call.Fun).(*ast.FuncLit); ok {
			return "" // immediately-invoked literal: body walked in place
		}
		if tv, ok := w.info.Types[unparen(call.Fun)]; ok {
			if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
				return "dynamic call through a function value (user callback)"
			}
		}
		return ""
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	switch pkgPath {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		if fn.Name() == "Wait" {
			return "sync wait"
		}
	case "os":
		if osBlockingFuncs[fn.Name()] {
			return "os." + fn.Name() + " file IO"
		}
		sig := fn.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil && osBlockingMethods[fn.Name()] {
			return "(*os.File)." + fn.Name() + " file IO"
		}
	case "net", "net/http":
		return pkgPath + " network IO"
	case "io", "bufio":
		if ioBlockingMethods[fn.Name()] {
			return pkgPath + "." + fn.Name() + " IO"
		}
	}
	// A call through an io.Reader/io.Writer-style interface does IO of
	// unknown latency.
	if isInterfaceMethod(fn) && fn.Pkg() != nil && fn.Pkg().Path() == "io" {
		return "io interface call"
	}
	return ""
}

var osBlockingFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "Rename": true, "Remove": true,
	"RemoveAll": true, "Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"ReadDir": true, "Stat": true, "Lstat": true, "Truncate": true,
	"Chmod": true, "Link": true, "Symlink": true,
}

var osBlockingMethods = map[string]bool{
	"Read": true, "Write": true, "WriteString": true, "ReadAt": true,
	"WriteAt": true, "Sync": true, "Close": true, "Seek": true, "Stat": true,
}

var ioBlockingMethods = map[string]bool{
	"Copy": true, "CopyN": true, "ReadAll": true, "WriteString": true,
	"Flush": true, "ReadFull": true,
}

func (w *lockWalker) reportBlocking(st *lockState, pos token.Pos, what string) {
	for key, li := range st.held {
		w.pass.Reportf(pos, "%s while holding %s (locked at line %d): snapshot under the lock, then operate after Unlock (PR 5 rule)",
			what, lockDisplay(key), w.pass.Pkg.Fset.Position(li.pos).Line)
		return // one report per site is enough
	}
}

// isTerminalCall reports calls that never return: os.Exit, log.Fatal*,
// runtime.Goexit, and testing's Fatal/Skip family (which call Goexit).
func (w *lockWalker) isTerminalCall(call *ast.CallExpr) bool {
	fn := calleeFunc(w.info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"
	case "testing":
		switch fn.Name() {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}

// lockDisplay strips the internal read-lock marker for messages.
func lockDisplay(key string) string {
	if len(key) > 2 && key[len(key)-2:] == "#r" {
		return key[:len(key)-2] + " (read lock)"
	}
	return key
}

// checkLockCopies flags mutex-containing values passed or ranged by
// value: the copy severs the lock from its siblings.
func checkLockCopies(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	checkField := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			tv, ok := info.Types[f.Type]
			if !ok {
				continue
			}
			if containsMutex(tv.Type, map[types.Type]bool{}) {
				pass.Reportf(f.Pos(), "%s copies a lock: %s contains a sync mutex; pass a pointer", what, tv.Type.String())
			}
		}
	}
	checkField(fd.Type.Params, "parameter")
	if fd.Recv != nil {
		checkField(fd.Recv, "receiver")
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || rs.Value == nil {
			return true
		}
		var vt types.Type
		if tv, ok := info.Types[rs.Value]; ok {
			vt = tv.Type
		} else if id, ok := unparen(rs.Value).(*ast.Ident); ok {
			// := range introduces the ident through Defs, not Types.
			if obj := identObj(info, id); obj != nil {
				vt = obj.Type()
			}
		}
		if vt != nil && containsMutex(vt, map[types.Type]bool{}) {
			pass.Reportf(rs.Value.Pos(), "range value copies a lock: %s contains a sync mutex; range over indices or pointers", vt.String())
		}
		return true
	})
}

// containsMutex reports whether t holds a sync.Mutex or sync.RWMutex by
// value (directly, in a struct field, or in an array element).
func containsMutex(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutex(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutex(u.Elem(), seen)
	}
	return false
}
