package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Baselines support incremental analyzer adoption: a committed findings
// file records known diagnostics, and a run filters out any finding
// already in it (matched by analyzer, repo-relative file, and message —
// line numbers shift too easily to key on). Each baseline entry can
// absorb as many live findings as its count, so a fix genuinely shrinks
// the suppressed set instead of re-hiding a new duplicate.

// BaselineEntry is one recorded finding class.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// Baseline is a committed set of known findings.
type Baseline struct {
	entries map[string]int
}

func baselineKey(analyzer, relFile, message string) string {
	return analyzer + "\x00" + relFile + "\x00" + message
}

// LoadBaseline reads a baseline file written by WriteBaseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: reading baseline: %w", err)
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	b := &Baseline{entries: make(map[string]int, len(entries))}
	for _, e := range entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		b.entries[baselineKey(e.Analyzer, e.File, e.Message)] += n
	}
	return b, nil
}

// Filter removes diagnostics recorded in the baseline, consuming each
// entry's count, and returns the survivors.
func (b *Baseline) Filter(root string, diags []Diagnostic) []Diagnostic {
	if b == nil {
		return diags
	}
	budget := make(map[string]int, len(b.entries))
	for k, n := range b.entries {
		budget[k] = n
	}
	var out []Diagnostic
	for _, d := range diags {
		k := baselineKey(d.Analyzer, relPath(root, d.File), d.Message)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}

// WriteBaseline records diags (with repo-relative paths) at path,
// aggregating identical findings into counted entries.
func WriteBaseline(path, root string, diags []Diagnostic) error {
	counts := map[string]*BaselineEntry{}
	var order []string
	for _, d := range diags {
		rel := relPath(root, d.File)
		k := baselineKey(d.Analyzer, rel, d.Message)
		if e := counts[k]; e != nil {
			e.Count++
			continue
		}
		counts[k] = &BaselineEntry{Analyzer: d.Analyzer, File: rel, Message: d.Message, Count: 1}
		order = append(order, k)
	}
	entries := make([]BaselineEntry, 0, len(order))
	for _, k := range order {
		entries = append(entries, *counts[k])
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// relPath makes file repo-relative with forward slashes when possible.
func relPath(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}
