package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CrashSafe guards the PR 6 durability contract in checkpoint-adjacent
// code: persisted state must be written to a temp file in the
// destination directory, fsynced, and atomically renamed into place.
// It flags os.CreateTemp calls whose directory is the system temp dir
// (a cross-filesystem rename is not atomic), os.Rename calls with no
// preceding File.Sync on the path (a crash can publish an empty or
// torn file), and os.WriteFile (non-atomic, unsynced). Test files are
// exempt by design: scratch-file writes in tests are not durability
// paths.
var CrashSafe = &Analyzer{
	Name:     "crashsafe",
	Doc:      "flags non-durable persistence: temp files outside the destination dir, rename without fsync, raw WriteFile",
	Packages: []string{"internal/checkpoint", "internal/serve", "internal/ptm", "internal/nn"},
	Run:      runCrashSafe,
}

func runCrashSafe(pass *Pass) {
	g := pass.Ctx.Graph()
	for _, file := range pass.Pkg.Files {
		pos := pass.Pkg.Fset.Position(file.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCrashFunc(pass, g, fd)
		}
	}
}

func checkCrashFunc(pass *Pass, g *CallGraph, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			return true
		}
		switch fn.Name() {
		case "CreateTemp":
			if len(call.Args) >= 1 && tempDirArg(info, call.Args[0]) {
				pass.Reportf(call.Pos(),
					"temp file created outside the destination directory: rename across filesystems is not atomic — use os.CreateTemp(filepath.Dir(dst), ...)")
			}
		case "WriteFile":
			pass.Reportf(call.Pos(),
				"os.WriteFile is neither atomic nor synced: a crash mid-write leaves a torn file — write a temp file in the destination dir, Sync, then Rename")
		case "Rename":
			if !syncBefore(pass, g, fd, call.Pos(), 2, map[*types.Func]bool{}) {
				pass.Reportf(call.Pos(),
					"os.Rename without a preceding File.Sync: a crash after rename can publish an empty or torn file — fsync the temp file first")
			}
		}
		return true
	})
}

// tempDirArg reports whether the directory argument of os.CreateTemp
// is the system temp dir: the empty string or os.TempDir().
func tempDirArg(info *types.Info, arg ast.Expr) bool {
	if tv, ok := info.Types[arg]; ok && tv.Value != nil {
		return strings.Trim(tv.Value.String(), `"`) == ""
	}
	if call, ok := unparen(arg).(*ast.CallExpr); ok {
		if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "os" && fn.Name() == "TempDir" {
			return true
		}
	}
	return false
}

// syncBefore reports whether fd contains a (*os.File).Sync call before
// pos, directly or inside a helper it calls before pos (depth frames).
// The check is syntactic by position: a Sync behind a noSync flag still
// counts — the analyzer verifies the path exists, the tests verify it
// runs.
func syncBefore(pass *Pass, g *CallGraph, fd *ast.FuncDecl, pos token.Pos, depth int, seen map[*types.Func]bool) bool {
	info := pass.Pkg.Info
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		if isFileSync(info, call) {
			found = true
			return false
		}
		if depth > 0 {
			for _, callee := range g.Callees(pass.Pkg, call) {
				if seen[callee] {
					continue
				}
				seen[callee] = true
				decl := g.Decl[callee]
				cp := g.PkgOf[callee]
				if decl == nil || cp == nil {
					continue
				}
				if bodyCallsFileSync(cp.Info, decl.Body) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func isFileSync(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Sync" || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

func bodyCallsFileSync(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isFileSync(info, call) {
			found = true
		}
		return true
	})
	return found
}
