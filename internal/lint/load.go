package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	Path  string // full import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	allows allows
}

// Module is the loaded module: every package parsed and type-checked
// against a shared FileSet, with module-internal imports resolved from
// the parsed tree and standard-library imports resolved from GOROOT
// source (no compiled export data, no external tooling).
type Module struct {
	Path string // module path from go.mod
	Dir  string
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path
}

// Rel returns the module-relative form of an import path: "" for the
// root package, "internal/core" for deepqueuenet/internal/core.
func (m *Module) Rel(importPath string) string {
	if importPath == m.Path {
		return ""
	}
	return strings.TrimPrefix(importPath, m.Path+"/")
}

// Load parses and type-checks every package under the module rooted at
// dir. Directories named testdata, hidden directories, and _test.go
// files are skipped: dqnlint checks shipped code, and test fixtures
// deliberately contain violations. includeTests adds in-package
// _test.go files (external foo_test packages stay excluded — they would
// need a second type-check universe per directory).
func Load(dir string, includeTests bool) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	mod := &Module{Path: modPath, Dir: abs, Fset: fset}

	dirs, err := packageDirs(abs)
	if err != nil {
		return nil, err
	}
	ld := &loader{
		mod:      mod,
		tests:    includeTests,
		parsed:   make(map[string]*Package),
		checking: make(map[string]bool),
		std:      importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		stdCache: make(map[string]*types.Package),
	}
	for _, d := range dirs {
		rel, _ := filepath.Rel(abs, d)
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := ld.parseDir(ip, d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			ld.parsed[ip] = pkg
		}
	}
	var errs []error
	for _, ip := range sortedKeys(ld.parsed) {
		if err := ld.check(ip); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("lint: type check failed:\n%s", strings.Join(msgs, "\n"))
	}
	for _, ip := range sortedKeys(ld.parsed) {
		mod.Pkgs = append(mod.Pkgs, ld.parsed[ip])
	}
	return mod, nil
}

// LoadDir parses and type-checks a single directory as a standalone
// package (imports resolved from the standard library only). It backs
// the golden-file self-tests, whose fixtures are self-contained.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	mod := &Module{Path: importPath, Dir: dir, Fset: fset}
	ld := &loader{
		mod:      mod,
		parsed:   make(map[string]*Package),
		checking: make(map[string]bool),
		std:      importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		stdCache: make(map[string]*types.Package),
	}
	pkg, err := ld.parseDir(importPath, dir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	ld.parsed[importPath] = pkg
	if err := ld.check(importPath); err != nil {
		return nil, err
	}
	return pkg, nil
}

type loader struct {
	mod      *Module
	tests    bool
	parsed   map[string]*Package
	checking map[string]bool
	std      types.ImporterFrom
	stdCache map[string]*types.Package
}

// parseDir parses the primary package in dir, or returns nil if the dir
// holds no buildable Go files.
func (ld *loader) parseDir(importPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type parsed struct {
		name string
		file *ast.File
	}
	var files []parsed
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !ld.tests {
			continue
		}
		if !buildableName(name) {
			continue
		}
		f, err := parser.ParseFile(ld.mod.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !buildableConstraints(f) {
			continue
		}
		files = append(files, parsed{name: name, file: f})
	}
	if len(files) == 0 {
		return nil, nil
	}
	// The primary package name is the one used by non-test files;
	// external foo_test packages are dropped (see Load doc).
	primary := ""
	for _, p := range files {
		if !strings.HasSuffix(p.name, "_test.go") {
			primary = p.file.Name.Name
			break
		}
	}
	if primary == "" {
		return nil, nil // test-only directory with external test package
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: ld.mod.Fset, allows: make(allows)}
	for _, p := range files {
		if p.file.Name.Name != primary {
			continue
		}
		pkg.Files = append(pkg.Files, p.file)
		collectAllows(ld.mod.Fset, p.file, pkg.allows)
	}
	return pkg, nil
}

// check type-checks one parsed package (and, recursively, its
// module-internal dependencies).
func (ld *loader) check(importPath string) error {
	pkg := ld.parsed[importPath]
	if pkg == nil || pkg.Types != nil {
		return nil
	}
	if ld.checking[importPath] {
		return fmt.Errorf("lint: import cycle through %s", importPath)
	}
	ld.checking[importPath] = true
	defer func() { ld.checking[importPath] = false }()

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, ld.mod.Fset, pkg.Files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, "\t"+e.Error())
		}
		return fmt.Errorf("%s:\n%s", importPath, strings.Join(msgs, "\n"))
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, "", 0)
}

// ImportFrom resolves module-internal imports from the parsed tree and
// everything else from GOROOT source.
func (ld *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg := ld.parsed[path]; pkg != nil {
		if pkg.Types == nil {
			if err := ld.check(path); err != nil {
				return nil, err
			}
		}
		return pkg.Types, nil
	}
	if p, ok := ld.stdCache[path]; ok {
		return p, nil
	}
	p, err := ld.std.ImportFrom(path, dir, mode)
	if err == nil {
		ld.stdCache[path] = p
	}
	return p, err
}

// lintOS/lintArch are the platform the lint universe is built for: the
// host running the linter, matching what `go build` would select there.
var (
	lintOS   = runtime.GOOS
	lintArch = runtime.GOARCH
)

// knownArches/knownOSes are the GOOS/GOARCH values recognized in file
// name suffixes and build tags (a subset is enough: only names on the
// lists constrain a file).
var knownArches = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true, "loong64": true,
	"mips": true, "mips64": true, "mips64le": true, "mipsle": true,
	"ppc64": true, "ppc64le": true, "riscv64": true, "s390x": true, "wasm": true,
}

var knownOSes = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true, "linux": true,
	"netbsd": true, "openbsd": true, "plan9": true, "solaris": true,
	"wasip1": true, "windows": true,
}

// buildableName applies the implicit _GOOS / _GOARCH / _GOOS_GOARCH
// file name constraints against the lint platform.
func buildableName(name string) bool {
	base := strings.TrimSuffix(strings.TrimSuffix(name, ".go"), "_test")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	if knownArches[last] {
		if last != lintArch {
			return false
		}
		if len(parts) >= 3 && knownOSes[parts[len(parts)-2]] {
			return parts[len(parts)-2] == lintOS
		}
		return true
	}
	if knownOSes[last] {
		return last == lintOS
	}
	return true
}

// buildableConstraints evaluates the file's //go:build line (if any)
// against the lint platform. Unknown tags — release tags, cgo, custom
// tags like purego — evaluate false, matching a default `go build`.
func buildableConstraints(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true // malformed: let the type checker report it
			}
			return expr.Eval(func(tag string) bool {
				return tag == lintOS || tag == lintArch || tag == "gc" || tag == "unix" && unixOS(lintOS)
			})
		}
	}
	return true
}

// unixOS mirrors go/build's unix tag set for the OSes in knownOSes.
func unixOS(os string) bool {
	switch os {
	case "aix", "android", "darwin", "dragonfly", "freebsd", "illumos", "ios", "linux", "netbsd", "openbsd", "solaris":
		return true
	}
	return false
}

// modulePath reads the module path from dir/go.mod.
func modulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %w", dir, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", dir)
}

// packageDirs lists every directory under root that can hold a package,
// skipping hidden dirs, testdata trees, and the models directory.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

func sortedKeys(m map[string]*Package) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
