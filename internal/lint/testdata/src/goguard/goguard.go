// Package goguard is a dqnlint self-test fixture for the shard
// panic-isolation convention: every spawned goroutine must reach a
// deferred recover, directly or through the functions it calls.
package goguard

import "sync"

func unguarded() {
	go func() { // want "unguarded goroutine"
		work()
	}()
}

func unguardedNamed() {
	go work() // want "unguarded goroutine"
}

func unguardedDynamic(fn func()) {
	go fn() // want "unguarded goroutine"
}

func directRecover() {
	go func() {
		defer func() {
			_ = recover()
		}()
		work()
	}()
}

func deferredNamedRecover() {
	go func() {
		defer swallow()
		work()
	}()
}

// guardedHelper is the engine's pattern: the goroutine body routes all
// work through a helper that defers the recovery.
func guardedHelper() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runGuarded()
	}()
	wg.Wait()
}

// twoHops checks transitive resolution: body -> runTwoHops -> runGuarded.
func twoHops() {
	go runTwoHops() // resolved two frames deep: no diagnostic
}

func nestedLitNotGuarding() {
	go func() { // want "unguarded goroutine"
		// The recover lives in a function literal that is only defined,
		// never deferred on this frame chain.
		helper := func() {
			defer func() { _ = recover() }()
		}
		_ = helper
		work()
	}()
}

func allowedFireAndForget() {
	//dqnlint:allow goguard fixture: justified fire-and-forget
	go work()
}

func work() {}

func swallow() {
	_ = recover()
}

func runTwoHops() {
	runGuarded()
}

func runGuarded() {
	defer func() {
		_ = recover()
	}()
	work()
}
