// Package ctxcheck is a dqnlint self-test fixture: work loops inside
// context-aware functions must poll (or forward) the context so
// cancellation stops the run promptly.
package ctxcheck

import "context"

func unpolled(ctx context.Context, devices []int) {
	for _, d := range devices { // want "unpolled work loop"
		infer(d)
	}
}

func unpolledFor(ctx context.Context, n int) {
	for i := 0; i < n; i++ { // want "unpolled work loop"
		infer(i)
	}
}

func polled(ctx context.Context, devices []int) {
	for _, d := range devices {
		if ctx.Err() != nil {
			return
		}
		infer(d)
	}
}

func forwarded(ctx context.Context, devices []int) {
	for _, d := range devices {
		inferCtx(ctx, d) // forwarding the context counts as polling
	}
}

func pureLoop(ctx context.Context, xs []float64) float64 {
	// No calls: an arithmetic loop finishes fast and needs no poll.
	s := 0.0
	for _, x := range xs {
		s += x * 2
	}
	// Builtins and conversions are not "real work" either.
	out := make([]int, 0, len(xs))
	for i := range xs {
		out = append(out, int(xs[i]))
	}
	_ = out
	return s
}

func noContext(devices []int) {
	// Not a context-aware function: nothing to poll.
	for _, d := range devices {
		infer(d)
	}
}

func allowedUnpolled(ctx context.Context, devices []int) {
	//dqnlint:allow ctxcheck fixture: bounded tiny loop
	for _, d := range devices {
		infer(d)
	}
}

func nestedOnceFlagged(ctx context.Context, grid [][]int) {
	for _, row := range grid { // want "unpolled work loop"
		for _, d := range row {
			infer(d) // inner loop not re-flagged: one report per site
		}
	}
}

func infer(int)                          {}
func inferCtx(_ context.Context, _ int) {}
