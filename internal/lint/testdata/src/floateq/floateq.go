// Package floateq is a dqnlint self-test fixture. Every line carrying a
// want comment must produce a matching diagnostic; lines with a
// //dqnlint:allow directive must not.
package floateq

func compare(a, b float64, eps float64) bool {
	if a == b { // want "float equality"
		return true
	}
	if a != b { // want "float equality"
		return false
	}
	var f32 float32
	if f32 == 1.5 { // want "float equality"
		return true
	}
	if a == 0 { // want "float equality"
		return true
	}
	//dqnlint:allow floateq fixture: justified exact compare
	if a == b {
		return true
	}
	if b == 0 { //dqnlint:allow floateq fixture: trailing directive form
		return false
	}
	// Tolerance comparisons and non-float comparisons are fine.
	d := a - b
	if d < 0 {
		d = -d
	}
	if d <= eps {
		return true
	}
	n, m := 1, 2
	if n == m {
		return true
	}
	const x, y = 1.0, 2.0
	return x == y // constants compare exactly at compile time: no diagnostic
}
