// Package atomicsafe is the golden fixture for the mixed atomic/plain
// field-access analyzer: a field touched through the legacy sync/atomic
// free functions must be accessed atomically everywhere; typed atomics
// are immune by construction.
package atomicsafe

import "sync/atomic"

type counters struct {
	hits  uint64
	safe  atomic.Uint64
	other int
}

func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
	c.safe.Add(1)
}

func (c *counters) read() uint64 {
	return c.hits // want "plain access to field hits"
}

func (c *counters) write() {
	c.hits = 0 // want "plain access to field hits"
	c.other++
	_ = c.safe.Load()
}

func (c *counters) atomicRead() uint64 {
	return atomic.LoadUint64(&c.hits)
}

func (c *counters) swap(v uint64) uint64 {
	return atomic.SwapUint64(&c.hits, v)
}
