// Package hotalloc is the golden fixture for the hot-path allocation
// analyzer: PredictStreamInto anchors the closure, helpers reached from
// it must be allocation-free, interface dispatch is expanded, panic
// arguments and allow-pruned edges are exempt.
package hotalloc

import "fmt"

type sink interface{ consume(x float64) }

type adder struct{ total float64 }

func (a *adder) consume(x float64) { a.total += x }

type boxer struct{ last any }

func (b *boxer) consume(x float64) {
	var i any
	i = x // want "assignment boxes"
	b.last = i
}

var global sink = &adder{}

// PredictStreamInto is a hot-path root by name.
func PredictStreamInto(dst []float64, xs []float64) []float64 {
	buf := make([]float64, len(xs)) // want "make allocates"
	for i, x := range xs {
		buf[i] = x
		dst = append(dst, x) // want "append may grow"
	}
	helper(dst)
	global.consume(sum(xs)) // interface dispatch: both impls are scanned
	if len(dst) == 0 {
		panic(fmt.Sprintf("empty input of %d samples", len(xs))) // panic args exempt
	}
	//dqnlint:allow hotalloc fixture: grow path amortized by the arena
	grow(dst)
	return dst
}

func helper(dst []float64) {
	p := new(adder) // want "new allocates"
	p.total = dst[0]
	s := []float64{1, 2} // want "slice literal allocates"
	dst[0] = s[0]
	a := &adder{} // want "composite literal escapes"
	a.total++
	f := func() float64 { return dst[0] } // want "closure captures dst"
	dst[0] = f()
	printish(dst[0]) // want "argument boxes" "variadic call allocates"
	_ = fmt.Sprint() // want "fmt.Sprint allocates"
}

func printish(vals ...any) {}

func sum(xs []float64) float64 {
	n := 0.0
	for _, x := range xs {
		n += x
	}
	return n
}

// grow sits behind an allow-pruned edge: its alloc is intentional.
func grow(dst []float64) {
	extra := append(dst, 1) // pruned: no diagnostic expected
	dst[0] = extra[0]
}

// coldPath is unreachable from any root: allocs here are fine.
func coldPath() []float64 {
	return make([]float64, 4)
}
