// Package detguard is a dqnlint self-test fixture covering the three
// determinism leaks: wall-clock reads, the global math/rand source, and
// map iteration order escaping into a slice.
package detguard

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "time.Now"
}

func allowedWallClock() time.Time {
	//dqnlint:allow detguard fixture: instrumentation escape hatch
	return time.Now()
}

func globalRand() float64 {
	rand.Seed(1)         // want "global math/rand"
	_ = rand.Intn(10)    // want "global math/rand"
	return rand.Float64() // want "global math/rand"
}

func seededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // constructors are deterministic given the seed
	return r.Float64()
}

func leakyOrder(m map[int]string) []string {
	var out []string
	for _, v := range m { // want "map iteration order leaks"
		out = append(out, v)
	}
	return out
}

func sortedOrder(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func sortSliceOrder(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func commutativeUse(m map[int]float64) float64 {
	// Reductions are order-insensitive in intent; no append, no report.
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	return sum
}

func allowedLeak(m map[int]string) []string {
	var out []string
	//dqnlint:allow detguard fixture: order consumed by an order-insensitive set
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
