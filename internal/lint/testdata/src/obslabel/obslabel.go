// Package obslabel is the golden fixture for the metric-label
// cardinality analyzer: request-derived label values must pass through
// a bounding map membership check or a switch with a literal default.
package obslabel

import (
	"net/http"
	"strconv"
)

type Label struct {
	Key   string
	Value string
}

func L(k, v string) Label { return Label{Key: k, Value: v} }

type counterReg struct{}

func (c *counterReg) count(name string, labels ...Label) {}

var reg counterReg

type apiRequest struct {
	Model string `json:"model"`
	Mode  string `json:"mode"`
}

var knownRoutes = map[string]bool{"/predict": true, "/stats": true}

func handle(w http.ResponseWriter, r *http.Request, req apiRequest) {
	reg.count("req", L("path", r.URL.Path)) // want "derives from http.Request"
	reg.count("req", L("model", req.Model)) // want "wire-decoded request field"

	route := r.URL.Path
	if !knownRoutes[route] {
		route = "other"
	}
	reg.count("req", L("route", route)) // bounded by the map: ok

	mode := req.Mode
	switch mode {
	case "fast", "full":
	default:
		mode = "unknown"
	}
	reg.count("req", L("mode", mode)) // bounded by the switch: ok

	reg.count("req", L("code", strconv.Itoa(200)))        // strconv: ok
	reg.count("req", Label{Key: "lit", Value: req.Model}) // want "wire-decoded request field"
	reg.count("req", Label{"pos", req.Mode})              // want "wire-decoded request field"
}

func report(err error) {
	reg.count("err", L("cause", err.Error())) // want "error text"
}

func viaParam(r *http.Request) {
	labelPath(r.URL.Path)
}

// labelPath's parameter is tainted by its caller above.
func labelPath(p string) {
	reg.count("req", L("path", p)) // want "passed by caller"
}

type mode int

func (m mode) String() string { return "m" }

func stringer(m mode) {
	reg.count("req", L("mode", m.String())) // stringer over an enum: ok
}
