// Package locksafe is the golden fixture for the lock-discipline
// analyzer: leaks on return paths, blocking operations under a held
// mutex, dynamic callbacks under a lock, and lock copies.
package locksafe

import (
	"os"
	"sync"
	"time"
)

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	vals map[string]int
	ch   chan int
	cb   func()
}

func (s *store) leak(k string) int {
	s.mu.Lock()
	if v, ok := s.vals[k]; ok {
		return v // want "not released on this return path"
	}
	s.mu.Unlock()
	return 0
}

func (s *store) good(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[k]
}

func (s *store) sleepy() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding s.mu"
	s.mu.Unlock()
}

func (s *store) sendUnder() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want "channel send while holding"
}

func (s *store) recvUnder() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return <-s.ch // want "channel receive while holding"
}

func (s *store) ioUnder(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.MkdirAll(path, 0o755) // want "os.MkdirAll file IO while holding"
}

func (s *store) callback() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cb() // want "dynamic call through a function value"
}

func (s *store) selectUnder() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select without default while holding"
	case v := <-s.ch:
		s.vals["v"] = v
	}
}

func (s *store) nonBlockingSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch: // receive as a select comm clause is the select's own wait
		s.vals["v"] = v
	default:
	}
}

func byValue(s store) int { // want "parameter copies a lock"
	return len(s.vals)
}

func rangeCopy(xs []store) {
	for _, x := range xs { // want "range value copies a lock"
		_ = x.vals
	}
}

// branchy holds the lock on only some merged paths: maybe-held state
// must not produce a leak report.
func (s *store) branchy(c bool) {
	if c {
		s.mu.Lock()
	}
	if c {
		s.mu.Unlock()
	}
}

// fatal panics on the failure path: that path is terminated, not leaked.
func (s *store) fatal() {
	s.mu.Lock()
	if s.vals == nil {
		panic("nil store")
	}
	s.mu.Unlock()
}

// deferLit releases through a deferred literal: recognized, no report.
func (s *store) deferLit() {
	s.mu.Lock()
	defer func() { s.mu.Unlock() }()
	s.vals["a"] = 1
}

// spawnBody returns a closure with its own lock discipline.
func (s *store) spawnBody() func() {
	return func() {
		s.mu.Lock()
		time.Sleep(time.Nanosecond) // want "time.Sleep while holding"
		s.mu.Unlock()
	}
}

// snapshotThenCall is the PR 5 pattern the analyzer must accept:
// snapshot under the lock, invoke the callback after Unlock.
func (s *store) snapshotThenCall() {
	s.mu.Lock()
	cb := s.cb
	s.mu.Unlock()
	if cb != nil {
		cb()
	}
}
