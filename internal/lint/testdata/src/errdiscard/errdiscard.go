// Package errdiscard is a dqnlint self-test fixture: errors must be
// handled, and wraps must use %w so errors.Is/As keep working.
package errdiscard

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

func fails() error { return errSentinel }

func both() (int, error) { return 0, errSentinel }

func discards() {
	_ = fails()        // want "discarded error"
	_, _ = both()      // want "discarded error"
	err := fails()
	_ = err // want "discarded error"
}

func allowedDiscard() {
	//dqnlint:allow errdiscard fixture: documented cannot-fail case
	_ = fails()
}

func handled() error {
	if err := fails(); err != nil {
		return err
	}
	n, _ := both() // a named result kept: not an all-blank discard
	_ = n          // int, not an error: no diagnostic
	return nil
}

func wraps(err error) error {
	return fmt.Errorf("context: %w", err)
}

func badWrap(err error) error {
	return fmt.Errorf("context: %v", err) // want "without %w"
}

func badWrapS(err error) error {
	return fmt.Errorf("context: %s", err) // want "without %w"
}

func allowedWrap(err error) error {
	//dqnlint:allow errdiscard fixture: chain break is deliberate here
	return fmt.Errorf("context: %v", err)
}

func notAnError(name string) error {
	// Formatting non-error values needs no %w.
	return fmt.Errorf("bad name %q (%s)", name, "detail")
}

func stringified(err error) error {
	// err.Error() is a string: the chain is already severed explicitly.
	return fmt.Errorf("context: %s", err.Error())
}
