// Package crashsafe is the golden fixture for the durability analyzer:
// persisted state must go through temp-file-in-destination-dir, fsync,
// then atomic rename.
package crashsafe

import (
	"os"
	"path/filepath"
)

// saveGood is the PR 6 pattern: temp in the destination dir, synced,
// renamed. No diagnostics.
func saveGood(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}

func saveTempDir(path string, data []byte) error {
	f, err := os.CreateTemp("", "ckpt-*") // want "temp file created outside the destination directory"
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path) // want "os.Rename without a preceding File.Sync"
}

func saveOsTempDir(path string, data []byte) error {
	f, err := os.CreateTemp(os.TempDir(), "ckpt-*") // want "temp file created outside the destination directory"
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}

func saveRaw(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "os.WriteFile is neither atomic nor synced"
}

// saveViaHelper syncs inside a helper called before the rename: the
// analyzer follows one call level and accepts it.
func saveViaHelper(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if err := flushClose(f, data); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}

func flushClose(f *os.File, data []byte) error {
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}
