package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrDiscard keeps the error chain intact: PR 1's failure semantics
// depend on errors.Is/As seeing through every wrap. It flags two leaks:
// assignments that discard an error into the blank identifier (`_ =`),
// and fmt.Errorf calls that format an error argument without the %w
// verb (which severs the chain that guard.ErrCanceled, ShardError, and
// friends are matched through).
var ErrDiscard = &Analyzer{
	Name: "errdiscard",
	Doc:  "flags `_ =` error discards and fmt.Errorf wrapping an error without %w",
	Run:  runErrDiscard,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func runErrDiscard(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
}

// checkBlankErrAssign flags assignments whose left-hand sides are all
// blank and that drop at least one error value.
func checkBlankErrAssign(pass *Pass, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
			return
		}
	}
	info := pass.Pkg.Info
	for _, rhs := range as.Rhs {
		tv, ok := info.Types[rhs]
		if !ok {
			continue
		}
		if typeCarriesError(tv.Type) {
			pass.Reportf(as.Pos(),
				"discarded error: `_ =` drops an error value (handle it, or //dqnlint:allow with why it cannot fail)")
			return
		}
	}
}

func typeCarriesError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}

// checkErrorfWrap flags fmt.Errorf calls that pass an error argument
// but whose constant format string contains no %w verb.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	fn := calleeFunc(info, call)
	if fn == nil || !isPkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	ftv, ok := info.Types[call.Args[0]]
	if !ok || ftv.Value == nil || ftv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(ftv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		tv, ok := info.Types[arg]
		if ok && isErrorType(tv.Type) {
			pass.Reportf(call.Pos(),
				"error wrapped without %%w: fmt.Errorf formats an error argument with a non-wrapping verb (errors.Is/As cannot see through it)")
			return
		}
	}
}
