package lint

import (
	"go/ast"
	"go/types"
)

// DetGuard enforces bit-determinism in the simulation packages: IRSA's
// convergence proof (Theorem 3.1) and every golden-trace test assume a
// run is a pure function of its inputs and seeds. It flags three leak
// paths: wall-clock reads (time.Now), the globally-seeded math/rand
// top-level functions (use internal/rng with an explicit seed), and
// map-range loops that append to a slice never handed to a sort —
// Go randomizes map iteration order, so such a slice's order changes
// run to run.
var DetGuard = &Analyzer{
	Name:     "detguard",
	Doc:      "flags time.Now, global math/rand, and unsorted map-range output in deterministic sim packages",
	Packages: simPackages,
	Run:      runDetGuard,
}

// globalRandConstructors are the math/rand package-level functions that
// build explicitly-seeded generators rather than drawing from the
// global source; they do not break determinism by themselves.
var globalRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runDetGuard(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := info.Uses[n.Sel]
				if isPkgFunc(obj, "time", "Now") {
					pass.Reportf(n.Pos(),
						"nondeterministic: time.Now in a deterministic sim package (inject a clock, or //dqnlint:allow for instrumentation)")
				}
				if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil &&
					(fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2") {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !globalRandConstructors[fn.Name()] {
						pass.Reportf(n.Pos(),
							"nondeterministic: global math/rand.%s draws from the shared unseeded source (use internal/rng with an explicit seed)",
							fn.Name())
					}
				}
			case *ast.RangeStmt:
				checkMapRangeOrder(pass, file, n)
			}
			return true
		})
	}
}

// checkMapRangeOrder flags a range over a map whose body appends to a
// slice that the enclosing function never sorts: the slice's element
// order then depends on Go's randomized map iteration order.
func checkMapRangeOrder(pass *Pass, file *ast.File, rs *ast.RangeStmt) {
	info := pass.Pkg.Info
	tv, ok := info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	targets := appendTargets(info, rs.Body)
	if len(targets) == 0 {
		return
	}
	scope := enclosingFuncBody(file, rs)
	if scope == nil {
		return
	}
	for _, target := range targets {
		if !sortedInScope(info, scope, target) {
			pass.Reportf(rs.For,
				"map iteration order leaks: %q is appended inside a map range but never sorted in this function (Go randomizes map order)",
				target)
		}
	}
}

// appendTargets returns the printed form of every expression assigned
// from an append(...) call inside body.
func appendTargets(info *types.Info, body *ast.BlockStmt) []string {
	var out []string
	seen := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				continue
			}
			if _, isB := info.Uses[id].(*types.Builtin); !isB {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			key := types.ExprString(as.Lhs[i])
			if key != "_" && !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
		}
		return true
	})
	return out
}

// sortedInScope reports whether any sort.* / slices.Sort* call in scope
// takes the named expression as an argument (unwrapping one conversion,
// for sort.Sort(byFoo(xs)) style calls).
func sortedInScope(info *types.Info, scope *ast.BlockStmt, target string) bool {
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			a := unparen(arg)
			if types.ExprString(a) == target {
				found = true
				return false
			}
			if conv, ok := a.(*ast.CallExpr); ok && len(conv.Args) == 1 {
				if types.ExprString(unparen(conv.Args[0])) == target {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
