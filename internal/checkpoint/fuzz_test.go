package checkpoint

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// FuzzCheckpointLoad feeds arbitrary bytes to the snapshot decoder. The
// invariants: Decode never panics, never allocates beyond the input's
// own size class (budget checks fire before allocation), and either
// returns a structurally valid snapshot or an error wrapping one of the
// package sentinels. A curated corpus lives under
// testdata/fuzz/FuzzCheckpointLoad and is replayed by plain `go test`.
func FuzzCheckpointLoad(f *testing.F) {
	// Valid snapshots of increasing complexity.
	f.Add(Encode(&Snapshot{}))
	f.Add(Encode(sample()))
	big := sample()
	big.Sojourns = make([][]float64, 64)
	for i := range big.Sojourns {
		big.Sojourns[i] = []float64{float64(i), float64(i) * 0.5}
	}
	f.Add(Encode(big))

	// Hostile shapes: truncations, corruptions, and recomputed-hash
	// budget attacks.
	enc := Encode(sample())
	f.Add(enc[:len(enc)/2])
	f.Add(corrupt(enc, 0))
	f.Add(corrupt(enc, len(enc)-1))
	f.Add([]byte(magic))
	hostile := append([]byte(nil), enc[:len(enc)-hashLen]...)
	hostile[len(hostile)-1] = 0xff
	hostile[len(hostile)-2] = 0xff
	hostile[len(hostile)-3] = 0xff
	hostile[len(hostile)-4] = 0xff
	f.Add(rehash(hostile))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrTooLarge) {
				t.Fatalf("decode error outside sentinel set: %v", err)
			}
			return
		}
		// A successful decode must re-encode to the exact input: the
		// format has one canonical serialization per snapshot.
		if !bytes.Equal(Encode(s), data) {
			t.Fatalf("decoded snapshot does not re-encode to its input")
		}
		// Shape sanity on accepted snapshots.
		if s.Iter < 0 || s.Iter > math.MaxInt32 || s.WatchdogGrowth < 0 {
			t.Fatalf("accepted snapshot with out-of-range counters: %+v", s)
		}
	})
}
