package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// corpusSeeds is the curated FuzzCheckpointLoad seed corpus: valid
// snapshots of increasing complexity plus the hostile shapes the
// decoder must reject cleanly. The same inputs are registered via
// f.Add; the on-disk copies under testdata/fuzz make them visible,
// reviewable, and replayed by plain `go test` like any seed corpus.
func corpusSeeds() map[string][]byte {
	enc := Encode(sample())
	big := sample()
	big.Sojourns = make([][]float64, 64)
	for i := range big.Sojourns {
		big.Sojourns[i] = []float64{float64(i), float64(i) * 0.5}
	}
	hostile := append([]byte(nil), enc[:len(enc)-hashLen]...)
	hostile[len(hostile)-1] = 0xff
	hostile[len(hostile)-2] = 0xff
	hostile[len(hostile)-3] = 0xff
	hostile[len(hostile)-4] = 0xff
	return map[string][]byte{
		"seed-empty-snapshot":    Encode(&Snapshot{}),
		"seed-typical-snapshot":  enc,
		"seed-many-packets":      Encode(big),
		"seed-truncated":         enc[:len(enc)/2],
		"seed-bad-magic":         corrupt(enc, 0),
		"seed-bad-hash":          corrupt(enc, len(enc)-1),
		"seed-magic-only":        []byte(magic),
		"seed-rehashed-bad-lens": rehash(hostile),
	}
}

// TestFuzzCorpusCurrent asserts the committed corpus files match
// corpusSeeds, so the on-disk corpus can't silently drift from the
// format. Regenerate with CKPT_WRITE_CORPUS=1 go test -run FuzzCorpus.
func TestFuzzCorpusCurrent(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzCheckpointLoad")
	write := os.Getenv("CKPT_WRITE_CORPUS") == "1"
	if write {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, data := range corpusSeeds() {
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		path := filepath.Join(dir, name)
		if write {
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("corpus file missing (regenerate with CKPT_WRITE_CORPUS=1): %v", err)
		}
		if string(got) != want {
			t.Errorf("corpus file %s is stale (regenerate with CKPT_WRITE_CORPUS=1)", name)
		}
	}
}
