package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"deepqueuenet/internal/core"
	"deepqueuenet/internal/obs"
	"deepqueuenet/internal/ptm"
	"deepqueuenet/internal/topo"
)

// Save atomically persists encoded snapshot bytes: write to a
// temporary file in the same directory, fsync (unless noSync), and
// rename over path. A crash at any point leaves either the previous
// snapshot or none — never a torn file.
func Save(path string, data []byte, noSync bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp in %s: %w", dir, err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: write %s: %w", tmpName, err)
	}
	if !noSync {
		if err := tmp.Sync(); err != nil {
			cleanup()
			return fmt.Errorf("checkpoint: sync %s: %w", tmpName, err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename into %s: %w", path, err)
	}
	return nil
}

// Load reads and decodes a snapshot file, refusing files over MaxSize
// before reading a byte of payload.
func Load(path string) (*Snapshot, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: stat %s: %w", path, err)
	}
	if fi.Size() > MaxSize {
		return nil, fmt.Errorf("%w: %s is %d bytes (cap %d)", ErrTooLarge, path, fi.Size(), MaxSize)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// TopoDigest fingerprints a topology bit-exactly: node kinds, names,
// and every port's peer, rate, and delay. Two graphs share a digest iff
// a snapshot taken on one can be resumed on the other.
func TopoDigest(g *topo.Graph) string {
	h := sha256.New()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w(uint64(len(g.Kinds)))
	for i, k := range g.Kinds {
		w(uint64(k))
		w(uint64(len(g.Names[i])))
		h.Write([]byte(g.Names[i]))
		w(uint64(len(g.Ports[i])))
		for _, p := range g.Ports[i] {
			w(uint64(p.Peer))
			w(uint64(p.PeerPort))
			w(math.Float64bits(p.RateBps))
			w(math.Float64bits(p.Delay))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ModelDigest fingerprints a trained model via its canonical serialized
// form, so a snapshot refuses to resume under different weights (which
// would silently change every inference).
func ModelDigest(m *ptm.PTM) (string, error) {
	blob, err := m.Marshal()
	if err != nil {
		return "", fmt.Errorf("checkpoint: marshal model for digest: %w", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// Writer persists one snapshot file per epoch boundary, overwriting
// atomically so the newest durable state always lives at Path. Its
// encode buffer is reused across epochs: after the first snapshot the
// steady-state encode adds no allocations beyond the file I/O itself.
type Writer struct {
	// Path is the snapshot file location (its directory must exist).
	Path string
	// TopoDigest, ModelDigest, and Seed stamp each snapshot with the
	// run's identity for resume-time digest guarding.
	TopoDigest  string
	ModelDigest string
	Seed        uint64
	// NoSync skips the per-snapshot fsync. Benchmarks and tests on
	// tmpfs use it; durable serving keeps it false.
	NoSync bool
	// Metrics, when non-nil, records snapshot counts, sizes, and
	// latencies.
	Metrics *obs.CheckpointMetrics

	buf  []byte
	snap Snapshot
}

// Sink returns the core.EpochSink that persists each epoch. The
// EpochState handed to it aliases live engine buffers, so the sink
// encodes before returning — nothing is retained.
func (w *Writer) Sink() core.EpochSink {
	return func(st *core.EpochState) error {
		start := time.Now() //dqnlint:allow detguard checkpoint latency metric, not simulation state
		w.snap = Snapshot{
			TopoDigest:     w.TopoDigest,
			ModelDigest:    w.ModelDigest,
			TrafficDigest:  st.TrafficDigest,
			Seed:           w.Seed,
			Iter:           st.Iter,
			Delta:          st.Delta,
			WatchdogTrace:  st.WatchdogTrace,
			WatchdogGrowth: st.WatchdogGrowth,
			Sojourns:       st.Sojourns,
		}
		w.buf = appendEncode(w.buf[:0], &w.snap)
		if err := Save(w.Path, w.buf, w.NoSync); err != nil {
			if w.Metrics != nil {
				w.Metrics.SnapshotFailures.Inc()
			}
			return err
		}
		if w.Metrics != nil {
			w.Metrics.Snapshots.Inc()
			w.Metrics.SnapshotBytes.Observe(float64(len(w.buf)))
			w.Metrics.SnapshotSeconds.Observe(time.Since(start).Seconds()) //dqnlint:allow detguard checkpoint latency metric
		}
		return nil
	}
}
