// Package checkpoint persists IRSA epoch state so a killed run can
// resume bit-identically. A snapshot is a versioned, digest-guarded
// binary record of the engine's complete mutable fixed-point state at
// an epoch boundary (see core.EpochState): topology/model/traffic
// digests, the iteration counter, the divergence watchdog, and every
// packet's per-hop sojourn vector.
//
// The decoder applies the same hostile-input discipline as nn.Unmarshal:
// every length field is validated against the bytes actually remaining
// before a single allocation happens, the whole payload is guarded by a
// trailing SHA-256, and Load refuses files over a hard size cap. A
// truncated, corrupted, or adversarial snapshot produces a clean error —
// never a panic or an allocation bomb.
//
// Persistence is atomic: Save writes to a temporary file in the target
// directory and renames it into place, so a crash mid-write leaves
// either the previous snapshot or none — never a torn one.
package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"deepqueuenet/internal/core"
)

// Sentinel errors for unusable snapshots. All decode failures wrap
// ErrCorrupt; digest-guard failures wrap ErrMismatch.
var (
	// ErrCorrupt marks a snapshot that cannot be decoded: bad magic,
	// truncation, a length field exceeding the remaining payload, or a
	// failed integrity hash.
	ErrCorrupt = errors.New("checkpoint: corrupt snapshot")
	// ErrVersion marks a snapshot written by an incompatible format
	// version.
	ErrVersion = errors.New("checkpoint: unsupported snapshot version")
	// ErrTooLarge marks a snapshot file over the decode size cap.
	ErrTooLarge = errors.New("checkpoint: snapshot exceeds size cap")
	// ErrMismatch marks a well-formed snapshot that belongs to a
	// different run: topology, model, or traffic digest disagrees with
	// the run being resumed.
	ErrMismatch = errors.New("checkpoint: snapshot does not match this run")
)

const (
	// magic identifies a dqnet checkpoint file.
	magic = "DQCKPT\x00\x01"
	// Version is the current snapshot format version.
	Version = 1
	// MaxSize is the hard cap on snapshot files Load will read:
	// generous for any topology this engine can simulate, small enough
	// that a hostile "size" can't exhaust memory.
	MaxSize = 256 << 20
	// maxDigestLen bounds each embedded digest string (hex SHA-256 is
	// 64 bytes; leave room for prefixed formats).
	maxDigestLen = 1 << 10
	// hashLen is the trailing integrity hash length.
	hashLen = sha256.Size
)

// Snapshot is one decoded epoch checkpoint. TopoDigest, ModelDigest,
// and Seed identify the run configuration; the remaining fields mirror
// core.EpochState.
type Snapshot struct {
	TopoDigest    string
	ModelDigest   string
	TrafficDigest string
	// Seed is the scenario RNG seed; traffic is regenerated from it on
	// resume and cross-checked against TrafficDigest.
	Seed uint64
	// Iter is the number of fully completed IRSA iterations.
	Iter int
	// Delta is the convergence delta of the checkpointed iteration.
	Delta float64
	// WatchdogTrace and WatchdogGrowth restore the divergence watchdog.
	WatchdogTrace  []float64
	WatchdogGrowth int
	// Sojourns holds each packet's per-hop sojourn vector.
	Sojourns [][]float64
}

// Validate digest-guards a decoded snapshot against the run about to
// resume it. Empty expected digests skip that check (callers that don't
// know, e.g. a model-less inspection tool). Traffic is checked by the
// engine itself via core.ErrResumeMismatch, so it is not re-checked
// here.
func (s *Snapshot) Validate(topoDigest, modelDigest string) error {
	if topoDigest != "" && s.TopoDigest != topoDigest {
		return fmt.Errorf("%w: topology digest %.12s… vs snapshot %.12s…",
			ErrMismatch, topoDigest, s.TopoDigest)
	}
	if modelDigest != "" && s.ModelDigest != modelDigest {
		return fmt.Errorf("%w: model digest %.12s… vs snapshot %.12s…",
			ErrMismatch, modelDigest, s.ModelDigest)
	}
	return nil
}

// EpochState converts the snapshot into the engine's resume form. The
// slices alias the snapshot (the engine copies out of Config.Resume, so
// the snapshot stays intact).
func (s *Snapshot) EpochState() *core.EpochState {
	return &core.EpochState{
		Iter:           s.Iter,
		Delta:          s.Delta,
		TrafficDigest:  s.TrafficDigest,
		Sojourns:       s.Sojourns,
		WatchdogTrace:  s.WatchdogTrace,
		WatchdogGrowth: s.WatchdogGrowth,
	}
}

// appendEncode serializes s into buf (which may be reused across
// epochs) and returns the extended slice, ending with the SHA-256 of
// everything before it.
func appendEncode(buf []byte, s *Snapshot) []byte {
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = appendString(buf, s.TopoDigest)
	buf = appendString(buf, s.ModelDigest)
	buf = appendString(buf, s.TrafficDigest)
	buf = binary.LittleEndian.AppendUint64(buf, s.Seed)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Iter))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.Delta))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.WatchdogGrowth))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.WatchdogTrace)))
	for _, d := range s.WatchdogTrace {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Sojourns)))
	for _, sj := range s.Sojourns {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sj)))
		for _, v := range sj {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// Encode serializes s into a fresh buffer. Writers on the hot epoch
// path use appendEncode with a reused buffer instead.
func Encode(s *Snapshot) []byte { return appendEncode(nil, s) }

func appendString(buf []byte, v string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(v)))
	return append(buf, v...)
}

// cursor is a bounds-checked reader over the snapshot payload. Every
// read reports truncation instead of slicing past the end.
type cursor struct {
	data []byte
	off  int
}

func (c *cursor) remaining() int { return len(c.data) - c.off }

func (c *cursor) need(n int) error {
	if n < 0 || c.remaining() < n {
		return fmt.Errorf("%w: truncated at offset %d (need %d bytes, have %d)",
			ErrCorrupt, c.off, n, c.remaining())
	}
	return nil
}

func (c *cursor) u16() (uint16, error) {
	if err := c.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(c.data[c.off:])
	c.off += 2
	return v, nil
}

func (c *cursor) u32() (uint32, error) {
	if err := c.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(c.data[c.off:])
	c.off += 4
	return v, nil
}

func (c *cursor) u64() (uint64, error) {
	if err := c.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(c.data[c.off:])
	c.off += 8
	return v, nil
}

func (c *cursor) str(max int) (string, error) {
	n, err := c.u16()
	if err != nil {
		return "", err
	}
	if int(n) > max {
		return "", fmt.Errorf("%w: string length %d exceeds cap %d", ErrCorrupt, n, max)
	}
	if err := c.need(int(n)); err != nil {
		return "", err
	}
	v := string(c.data[c.off : c.off+int(n)])
	c.off += int(n)
	return v, nil
}

// f64s decodes a length-prefixed float64 vector, validating the length
// against the bytes actually remaining before allocating.
func (c *cursor) f64s() ([]float64, error) {
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	if int64(n)*8 > int64(c.remaining()) {
		return nil, fmt.Errorf("%w: vector length %d exceeds remaining %d bytes",
			ErrCorrupt, n, c.remaining())
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]float64, n)
	for i := range out {
		bits := binary.LittleEndian.Uint64(c.data[c.off:])
		out[i] = math.Float64frombits(bits)
		c.off += 8
	}
	return out, nil
}

// Decode parses a snapshot. It verifies magic, version, and the
// trailing integrity hash up front, then decodes with per-field budget
// checks — the hash guards against accidental corruption, the budgets
// against a hostile author who recomputed it.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) > MaxSize {
		return nil, fmt.Errorf("%w: %d bytes (cap %d)", ErrTooLarge, len(data), MaxSize)
	}
	if len(data) < len(magic)+4+hashLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any valid snapshot", ErrCorrupt, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	payload, tail := data[:len(data)-hashLen], data[len(data)-hashLen:]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(tail) {
		return nil, fmt.Errorf("%w: integrity hash mismatch", ErrCorrupt)
	}
	c := &cursor{data: payload, off: len(magic)}
	ver, err := c.u32()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: version %d (supported: %d)", ErrVersion, ver, Version)
	}
	s := &Snapshot{}
	if s.TopoDigest, err = c.str(maxDigestLen); err != nil {
		return nil, err
	}
	if s.ModelDigest, err = c.str(maxDigestLen); err != nil {
		return nil, err
	}
	if s.TrafficDigest, err = c.str(maxDigestLen); err != nil {
		return nil, err
	}
	if s.Seed, err = c.u64(); err != nil {
		return nil, err
	}
	iter, err := c.u64()
	if err != nil {
		return nil, err
	}
	if iter > math.MaxInt32 {
		return nil, fmt.Errorf("%w: iteration counter %d is not a plausible IRSA iteration", ErrCorrupt, iter)
	}
	s.Iter = int(iter)
	deltaBits, err := c.u64()
	if err != nil {
		return nil, err
	}
	s.Delta = math.Float64frombits(deltaBits)
	growth, err := c.u32()
	if err != nil {
		return nil, err
	}
	if growth > math.MaxInt32 {
		return nil, fmt.Errorf("%w: watchdog growth %d out of range", ErrCorrupt, growth)
	}
	s.WatchdogGrowth = int(growth)
	if s.WatchdogTrace, err = c.f64s(); err != nil {
		return nil, fmt.Errorf("watchdog trace: %w", err)
	}
	nPkts, err := c.u32()
	if err != nil {
		return nil, err
	}
	// Every packet costs at least a 4-byte hop count, so the packet
	// count is bounded by the remaining payload before we allocate the
	// outer slice.
	if int64(nPkts)*4 > int64(c.remaining()) {
		return nil, fmt.Errorf("%w: packet count %d exceeds remaining %d bytes",
			ErrCorrupt, nPkts, c.remaining())
	}
	if nPkts > 0 {
		s.Sojourns = make([][]float64, nPkts)
		for i := range s.Sojourns {
			if s.Sojourns[i], err = c.f64s(); err != nil {
				return nil, fmt.Errorf("packet %d sojourns: %w", i, err)
			}
		}
	}
	if c.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after snapshot", ErrCorrupt, c.remaining())
	}
	return s, nil
}
