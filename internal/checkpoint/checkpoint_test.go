package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deepqueuenet/internal/obs"
	"deepqueuenet/internal/ptm"
	"deepqueuenet/internal/topo"
)

// sample builds a representative snapshot with non-trivial shapes:
// ragged sojourn vectors, an empty one, special float values.
func sample() *Snapshot {
	return &Snapshot{
		TopoDigest:     strings.Repeat("ab", 32),
		ModelDigest:    strings.Repeat("cd", 32),
		TrafficDigest:  strings.Repeat("ef", 32),
		Seed:           7,
		Iter:           3,
		Delta:          1.25e-4,
		WatchdogTrace:  []float64{0.5, 0.25, 0.125, math.SmallestNonzeroFloat64},
		WatchdogGrowth: 1,
		Sojourns: [][]float64{
			{1e-6, 2e-6, 3e-6},
			{},
			{math.MaxFloat64, -0.0, 4.5e-5},
			{7e-7},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	want := sample()
	got, err := Decode(Encode(want))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.TopoDigest != want.TopoDigest || got.ModelDigest != want.ModelDigest ||
		got.TrafficDigest != want.TrafficDigest || got.Seed != want.Seed ||
		got.Iter != want.Iter || got.Delta != want.Delta ||
		got.WatchdogGrowth != want.WatchdogGrowth {
		t.Fatalf("scalar fields differ: got %+v want %+v", got, want)
	}
	if len(got.WatchdogTrace) != len(want.WatchdogTrace) {
		t.Fatalf("trace length %d, want %d", len(got.WatchdogTrace), len(want.WatchdogTrace))
	}
	for i := range want.WatchdogTrace {
		if math.Float64bits(got.WatchdogTrace[i]) != math.Float64bits(want.WatchdogTrace[i]) {
			t.Fatalf("trace[%d] = %v, want %v", i, got.WatchdogTrace[i], want.WatchdogTrace[i])
		}
	}
	if len(got.Sojourns) != len(want.Sojourns) {
		t.Fatalf("sojourn count %d, want %d", len(got.Sojourns), len(want.Sojourns))
	}
	for i := range want.Sojourns {
		if len(got.Sojourns[i]) != len(want.Sojourns[i]) {
			t.Fatalf("packet %d hop count %d, want %d", i, len(got.Sojourns[i]), len(want.Sojourns[i]))
		}
		for j := range want.Sojourns[i] {
			if math.Float64bits(got.Sojourns[i][j]) != math.Float64bits(want.Sojourns[i][j]) {
				t.Fatalf("sojourn[%d][%d] = %v, want %v", i, j, got.Sojourns[i][j], want.Sojourns[i][j])
			}
		}
	}
}

func TestEncodeReuseIsStable(t *testing.T) {
	s := sample()
	fresh := Encode(s)
	var buf []byte
	for i := 0; i < 3; i++ {
		buf = appendEncode(buf[:0], s)
		if string(buf) != string(fresh) {
			t.Fatalf("reused-buffer encode #%d differs from fresh encode", i)
		}
	}
}

// corrupt flips one byte of a valid encoding at the given offset.
func corrupt(enc []byte, off int) []byte {
	out := append([]byte(nil), enc...)
	out[off] ^= 0xff
	return out
}

func TestDecodeRejectsHostileInputs(t *testing.T) {
	enc := Encode(sample())
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrCorrupt},
		{"short", enc[:10], ErrCorrupt},
		{"bad magic", corrupt(enc, 0), ErrCorrupt},
		{"flipped payload byte", corrupt(enc, len(magic)+6), ErrCorrupt},
		{"flipped hash byte", corrupt(enc, len(enc)-1), ErrCorrupt},
		{"truncated tail", enc[:len(enc)-5], ErrCorrupt},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// rehash recomputes the trailing integrity hash so hostile payload
// mutations exercise the budget checks, not just the hash guard.
func rehash(payload []byte) []byte {
	enc := append([]byte(nil), payload...)
	sum := sha256.Sum256(enc)
	return append(enc, sum[:]...)
}

func TestDecodeRejectsBudgetViolations(t *testing.T) {
	enc := Encode(sample())
	payload := enc[:len(enc)-hashLen]

	// A hostile author who recomputes the hash must still be stopped by
	// the length budgets.
	t.Run("version", func(t *testing.T) {
		p := append([]byte(nil), payload...)
		binary.LittleEndian.PutUint32(p[len(magic):], 99)
		if _, err := Decode(rehash(p)); !errors.Is(err, ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("giant packet count", func(t *testing.T) {
		// Truncate right after the watchdog trace and claim 4 billion
		// packets with no payload behind them.
		s := sample()
		s.Sojourns = nil
		base := Encode(s)
		p := append([]byte(nil), base[:len(base)-hashLen]...)
		binary.LittleEndian.PutUint32(p[len(p)-4:], math.MaxUint32)
		if _, err := Decode(rehash(p)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("giant trace length", func(t *testing.T) {
		s := sample()
		s.WatchdogTrace = nil
		s.Sojourns = nil
		base := Encode(s)
		p := append([]byte(nil), base[:len(base)-hashLen]...)
		// Trace length is the second-to-last u32 (trace len, packet count).
		binary.LittleEndian.PutUint32(p[len(p)-8:], math.MaxUint32)
		if _, err := Decode(rehash(p)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		p := append(append([]byte(nil), payload...), 1, 2, 3)
		if _, err := Decode(rehash(p)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
}

func TestValidate(t *testing.T) {
	s := sample()
	if err := s.Validate(s.TopoDigest, s.ModelDigest); err != nil {
		t.Fatalf("matching digests rejected: %v", err)
	}
	if err := s.Validate("", ""); err != nil {
		t.Fatalf("empty expectations rejected: %v", err)
	}
	if err := s.Validate("other", s.ModelDigest); !errors.Is(err, ErrMismatch) {
		t.Fatalf("topo mismatch: err = %v, want ErrMismatch", err)
	}
	if err := s.Validate(s.TopoDigest, "other"); !errors.Is(err, ErrMismatch) {
		t.Fatalf("model mismatch: err = %v, want ErrMismatch", err)
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	s := sample()
	if err := Save(path, Encode(s), true); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Iter != s.Iter || got.TrafficDigest != s.TrafficDigest {
		t.Fatalf("loaded snapshot differs: %+v", got)
	}
	// Overwrite with a later epoch; the file must hold exactly the new
	// snapshot and no temp files may linger.
	s.Iter = 9
	if err := Save(path, Encode(s), true); err != nil {
		t.Fatalf("second Save: %v", err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if got.Iter != 9 {
		t.Fatalf("Iter = %d after overwrite, want 9", got.Iter)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after atomic saves, want 1", len(entries))
	}
}

func TestLoadRejectsMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "absent.ckpt")); err == nil {
		t.Fatal("Load of missing file succeeded")
	}
	bad := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestDigests(t *testing.T) {
	g1 := topo.Line(4, topo.DefaultLAN)
	g2 := topo.Line(4, topo.DefaultLAN)
	if TopoDigest(g1) != TopoDigest(g2) {
		t.Fatal("identical topologies hash differently")
	}
	g3 := topo.Line(5, topo.DefaultLAN)
	if TopoDigest(g1) == TopoDigest(g3) {
		t.Fatal("different topologies share a digest")
	}

	arch := ptm.Arch{TimeSteps: 8, Margin: 2, Embed: 4, BLSTM1: 4, BLSTM2: 4, Heads: 1, DK: 4, DV: 4, HeadOut: 4}
	m1, err := ptm.Synthetic(arch, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ptm.Synthetic(arch, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := ptm.Synthetic(arch, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := ModelDigest(m1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ModelDigest(m2)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := ModelDigest(m3)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("identical models hash differently")
	}
	if d1 == d3 {
		t.Fatal("different models share a digest")
	}
}

func TestWriterSink(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	w := &Writer{
		Path:        filepath.Join(dir, "job.ckpt"),
		TopoDigest:  "topo",
		ModelDigest: "model",
		Seed:        42,
		NoSync:      true,
		Metrics:     obs.NewCheckpointMetrics(reg),
	}
	sink := w.Sink()
	src := sample()
	for iter := 1; iter <= 3; iter++ {
		st := src.EpochState()
		st.Iter = iter
		if err := sink(st); err != nil {
			t.Fatalf("sink at iter %d: %v", iter, err)
		}
	}
	got, err := Load(w.Path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Iter != 3 || got.Seed != 42 || got.TopoDigest != "topo" || got.ModelDigest != "model" {
		t.Fatalf("final snapshot = %+v, want iter 3 seed 42", got)
	}
	if err := got.Validate("topo", "model"); err != nil {
		t.Fatal(err)
	}
}

func TestWriterSinkFailsCleanly(t *testing.T) {
	w := &Writer{Path: filepath.Join(t.TempDir(), "no", "such", "dir", "job.ckpt"), NoSync: true}
	if err := w.Sink()(sample().EpochState()); err == nil {
		t.Fatal("sink into missing directory succeeded")
	}
}
