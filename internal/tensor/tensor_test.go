package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"deepqueuenet/internal/rng"
)

func randMat(r *rng.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Normal(0, 1)
	}
	return m
}

func matEq(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestMatMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := MatMul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !matEq(got, want, 0) {
		t.Fatalf("got %v", got.Data)
	}
}

func TestMatMulTConsistency(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n, m, k := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randMat(r, n, k)
		b := randMat(r, m, k)
		return matEq(MatMulT(a, b), MatMul(a, Transpose(b)), 1e-12)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTMatMulConsistency(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n, m, k := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randMat(r, k, n)
		b := randMat(r, k, m)
		return matEq(TMatMul(a, b), MatMul(Transpose(a), b), 1e-12)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestAddMatMulAccumulates(t *testing.T) {
	r := rng.New(3)
	a := randMat(r, 3, 4)
	b := randMat(r, 4, 5)
	out := randMat(r, 3, 5)
	want := Add(out, MatMul(a, b))
	AddMatMul(out, a, b)
	if !matEq(out, want, 1e-12) {
		t.Fatal("AddMatMul mismatch")
	}
}

func TestAddTMatMulAccumulates(t *testing.T) {
	r := rng.New(4)
	a := randMat(r, 4, 3)
	b := randMat(r, 4, 5)
	out := randMat(r, 3, 5)
	want := Add(out, TMatMul(a, b))
	AddTMatMul(out, a, b)
	if !matEq(out, want, 1e-12) {
		t.Fatal("AddTMatMul mismatch")
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(5)
	m := randMat(r, 4, 7)
	if !matEq(Transpose(Transpose(m)), m, 0) {
		t.Fatal("transpose twice is not identity")
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {1000, 1000, 1000}})
	SoftmaxRows(m)
	for i := 0; i < m.Rows; i++ {
		sum := 0.0
		for _, v := range m.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Monotone within row.
	if !(m.At(0, 0) < m.At(0, 1) && m.At(0, 1) < m.At(0, 2)) {
		t.Fatal("softmax not monotone")
	}
	// Large equal inputs must not overflow.
	if math.Abs(m.At(1, 0)-1.0/3) > 1e-12 {
		t.Fatalf("softmax overflow handling: %v", m.At(1, 0))
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		rows := 1 + r.Intn(5)
		ca, cb := 1+r.Intn(5), 1+r.Intn(5)
		a := randMat(r, rows, ca)
		b := randMat(r, rows, cb)
		l, rr := SplitCols(ConcatCols(a, b), ca)
		return matEq(l, a, 0) && matEq(rr, b, 0)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestReverseRows(t *testing.T) {
	m := FromRows([][]float64{{1}, {2}, {3}})
	rev := ReverseRows(m)
	if rev.At(0, 0) != 3 || rev.At(2, 0) != 1 {
		t.Fatalf("reverse wrong: %v", rev.Data)
	}
	if !matEq(ReverseRows(rev), m, 0) {
		t.Fatal("double reverse is not identity")
	}
}

func TestHadamard(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Hadamard(a, b)
	want := FromRows([][]float64{{5, 12}, {21, 32}})
	if !matEq(got, want, 0) {
		t.Fatalf("hadamard %v", got.Data)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulAssociativity(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(4)
		a := randMat(r, n, n)
		b := randMat(r, n, n)
		c := randMat(r, n, n)
		return matEq(MatMul(MatMul(a, b), c), MatMul(a, MatMul(b, c)), 1e-9)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
