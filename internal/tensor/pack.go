package tensor

// Packed is a weight matrix repacked into contiguous column panels for
// the blocked GEMM kernels. The K×N source is split into ⌈N/8⌉ panels
// of 8 columns; panel pi stores its K rows contiguously, so element
// (k, pi*8+lane) lives at data[pi*K*8 + k*8 + lane]. Columns past N in
// the last panel are zero-padded — the kernels compute those lanes but
// never store them.
//
// Packing is a pure relayout: the blocked kernels read the same values
// in the same per-output-element order (k ascending) as the direct
// kernels, so packed and unpacked matmuls are bit-identical.
//
// A Packed is immutable after PackFrom and safe to share across
// goroutines; it must be rebuilt if the source weights change.
type Packed struct {
	K, N int
	data []float64
}

// Pack returns b repacked into 8-wide column panels.
func Pack(b *Matrix) *Packed {
	p := &Packed{}
	p.PackFrom(b)
	return p
}

// PackFrom repacks b into p, reusing p's backing storage when it is
// large enough.
func (p *Packed) PackFrom(b *Matrix) {
	K, N := b.Rows, b.Cols
	np := (N + 7) / 8
	need := np * K * 8
	if cap(p.data) < need {
		//dqnlint:allow hotalloc pack warm-up: a panel buffer is minted once per session/weight shape and reused across every window after
		p.data = make([]float64, need)
	}
	p.data = p.data[:need]
	p.K, p.N = K, N
	for pi := 0; pi < np; pi++ {
		lo := pi * 8
		hi := lo + 8
		if hi > N {
			hi = N
		}
		base := pi * K * 8
		for k := 0; k < K; k++ {
			row := b.Row(k)
			dst := p.data[base+k*8 : base+k*8+8]
			copy(dst, row[lo:hi])
			for z := hi - lo; z < 8; z++ {
				dst[z] = 0
			}
		}
	}
}

// panel returns the pi-th packed panel (K rows × 8 lanes).
func (p *Packed) panel(pi int) []float64 {
	return p.data[pi*p.K*8 : (pi+1)*p.K*8]
}
