//go:build amd64 && !purego

package tensor

// AVX2 microkernel bindings (kern_amd64.s). The `purego` build tag
// forces the portable Go kernels — the differential tests build both
// ways to compare them.

//go:noescape
func gemm4x8(dst *float64, dstStride int, a *float64, aStride int, panel *float64, k int)

//go:noescape
func gemm1x8(dst *float64, a *float64, panel *float64, k int)

//go:noescape
func axpyN8(dst *float64, h *float64, w *float64, wStride int, hn int, npanels int)

//go:noescape
func gemmf4x8(dst *float32, dstStride int, a *float32, aStride int, panel *float32, k int)

//go:noescape
func gemmf1x8(dst *float32, a *float32, panel *float32, k int)

//go:noescape
func axpyf8(dst *float32, h *float32, panels *float32, hn int, npanels int)

func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

// asmSupported reports AVX2 with OS-enabled YMM state.
var asmSupported = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&6 != 6 { // XMM and YMM state saved by the OS
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	return b7&(1<<5) != 0 // AVX2
}
