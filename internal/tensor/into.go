package tensor

import "math"

// In-place kernel variants. Each *Into writes its full destination (no
// stale bytes survive), so destinations may come straight from
// Arena.NewMatrix without zeroing. The accumulation order is identical
// to the allocating variant, making results bit-identical — the
// golden-trace tests depend on that.
//
// Aliasing: destinations that share a backing array with an input are
// rejected with a panic ("tensor: ... aliases ..."). The check compares
// the first backing element, which catches dst == src exactly; partial
// overlap of hand-built sub-slices is the caller's responsibility
// (Arena allocations never overlap).

// aliases reports whether two matrices share their first backing element.
func aliases(a, b *Matrix) bool {
	return len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0]
}

func checkNoAlias(op string, dst, a, b *Matrix) {
	if aliases(dst, a) || (b != nil && aliases(dst, b)) {
		panic("tensor: " + op + " destination aliases an input")
	}
}

// ActKind selects the fused activation of MatMulBiasActInto.
type ActKind uint8

// Fused activation kinds.
const (
	ActNone ActKind = iota
	ActTanh
	ActRelu
	ActSigmoid
)

// Sigmoid is the logistic function 1/(1+e^-v), shared with internal/nn
// so fused and unfused paths round identically.
func Sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

func applyAct(row []float64, act ActKind) {
	switch act {
	case ActTanh:
		for j, v := range row {
			row[j] = math.Tanh(v)
		}
	case ActRelu:
		for j, v := range row {
			if v < 0 {
				row[j] = 0
			}
		}
	case ActSigmoid:
		for j, v := range row {
			row[j] = Sigmoid(v)
		}
	}
}

// MatMulInto computes dst = a × b. dst must be a.Rows×b.Cols and must
// not alias a or b.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(shapeErr("MatMulInto", a, b))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(shapeErr("MatMulInto dst", dst, b))
	}
	checkNoAlias("MatMulInto", dst, a, b)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTInto computes dst = a × bᵀ. dst must be a.Rows×b.Rows and must
// not alias a or b.
func MatMulTInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(shapeErr("MatMulTInto", a, b))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(shapeErr("MatMulTInto dst", dst, b))
	}
	checkNoAlias("MatMulTInto", dst, a, b)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			sum := 0.0
			for k := range arow {
				sum += arow[k] * brow[k]
			}
			orow[j] = sum
		}
	}
}

// MatMulBiasActInto computes dst = act(a × w + bias), the fused
// time-distributed dense forward: one pass sets each output row from
// the matmul accumulation, adds the 1×Out bias, and applies the
// activation — no intermediate matrices. bias may be nil (no bias).
// dst must not alias a or w.
func MatMulBiasActInto(dst, a, w, bias *Matrix, act ActKind) {
	if a.Cols != w.Rows {
		panic(shapeErr("MatMulBiasActInto", a, w))
	}
	if dst.Rows != a.Rows || dst.Cols != w.Cols {
		panic(shapeErr("MatMulBiasActInto dst", dst, w))
	}
	if bias != nil && (bias.Rows != 1 || bias.Cols != w.Cols) {
		panic(shapeErr("MatMulBiasActInto bias", bias, w))
	}
	checkNoAlias("MatMulBiasActInto", dst, a, w)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			wrow := w.Row(k)
			for j, wv := range wrow {
				orow[j] += av * wv
			}
		}
		if bias != nil {
			for j, bv := range bias.Data {
				orow[j] += bv
			}
		}
		applyAct(orow, act)
	}
}

// AddInto computes dst = a + b element-wise. dst aliasing a (or b) is
// safe: each element is read before it is written.
func AddInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(shapeErr("AddInto", a, b))
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic(shapeErr("AddInto dst", dst, a))
	}
	for i, av := range a.Data {
		dst.Data[i] = av + b.Data[i]
	}
}

// HadamardInto computes dst = a ⊙ b element-wise. dst aliasing a or b
// is safe.
func HadamardInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(shapeErr("HadamardInto", a, b))
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic(shapeErr("HadamardInto dst", dst, a))
	}
	for i, av := range a.Data {
		dst.Data[i] = av * b.Data[i]
	}
}

// ApplyInto computes dst[i] = f(src[i]). dst aliasing src is safe.
func ApplyInto(dst, src *Matrix, f func(float64) float64) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(shapeErr("ApplyInto", dst, src))
	}
	for i, v := range src.Data {
		dst.Data[i] = f(v)
	}
}

// ReverseRowsInto writes src with reversed row order into dst. dst must
// not alias src.
func ReverseRowsInto(dst, src *Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(shapeErr("ReverseRowsInto", dst, src))
	}
	checkNoAlias("ReverseRowsInto", dst, src, nil)
	for i := 0; i < src.Rows; i++ {
		copy(dst.Row(i), src.Row(src.Rows-1-i))
	}
}

// ConcatColsInto writes [a | b] into dst. dst must not alias a or b.
func ConcatColsInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(shapeErr("ConcatColsInto", a, b))
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols+b.Cols {
		panic(shapeErr("ConcatColsInto dst", dst, a))
	}
	checkNoAlias("ConcatColsInto", dst, a, b)
	for i := 0; i < a.Rows; i++ {
		drow := dst.Row(i)
		copy(drow[:a.Cols], a.Row(i))
		copy(drow[a.Cols:], b.Row(i))
	}
}

// ColSliceInto copies columns [lo, hi) of src into dst (src.Rows ×
// (hi-lo)). dst must not alias src.
func ColSliceInto(dst, src *Matrix, lo, hi int) {
	if lo < 0 || hi > src.Cols || lo > hi {
		panic("tensor: ColSliceInto column range out of bounds")
	}
	if dst.Rows != src.Rows || dst.Cols != hi-lo {
		panic(shapeErr("ColSliceInto dst", dst, src))
	}
	checkNoAlias("ColSliceInto", dst, src, nil)
	for i := 0; i < src.Rows; i++ {
		copy(dst.Row(i), src.Row(i)[lo:hi])
	}
}
