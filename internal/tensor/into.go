package tensor

import "math"

// In-place kernel variants. Each *Into writes its full destination (no
// stale bytes survive), so destinations may come straight from
// Arena.NewMatrix without zeroing. The matmul family runs on the
// blocked kernels (blocked.go): each output element still accumulates
// its k terms in ascending order, but zero multiplicands are no longer
// skipped. For finite weights that is bit-identical to both the
// historical skip kernels and the allocating variants — the golden-
// trace and differential tests depend on that.
//
// Aliasing: destinations that share a backing array with an input are
// rejected with a panic ("tensor: ... aliases ..."). The check compares
// the first backing element, which catches dst == src exactly; partial
// overlap of hand-built sub-slices is the caller's responsibility
// (Arena allocations never overlap).

// aliases reports whether two matrices share their first backing element.
func aliases(a, b *Matrix) bool {
	return len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0]
}

func checkNoAlias(op string, dst, a, b *Matrix) {
	if aliases(dst, a) || (b != nil && aliases(dst, b)) {
		panic("tensor: " + op + " destination aliases an input")
	}
}

// ActKind selects the fused activation of MatMulBiasActInto.
type ActKind uint8

// Fused activation kinds.
const (
	ActNone ActKind = iota
	ActTanh
	ActRelu
	ActSigmoid
)

// Sigmoid is the logistic function 1/(1+e^-v), shared with internal/nn
// so fused and unfused paths round identically.
func Sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

func applyAct(row []float64, act ActKind) {
	switch act {
	case ActTanh:
		TanhSlice(row, row)
	case ActRelu:
		for j, v := range row {
			if v < 0 {
				row[j] = 0
			}
		}
	case ActSigmoid:
		SigmoidSlice(row, row)
	}
}

// MatMulInto computes dst = a × b. dst must be a.Rows×b.Cols and must
// not alias a or b.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(shapeErr("MatMulInto", a, b))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(shapeErr("MatMulInto dst", dst, b))
	}
	checkNoAlias("MatMulInto", dst, a, b)
	matMulDirect(dst, a, b)
}

// MatMulPackedInto computes dst = a × b where b was repacked with Pack
// (p.K must equal a.Cols). dst must be a.Rows×p.N and must not alias a
// or the pack. This is the session hot path: the pack is built once per
// weight matrix and reused across windows, and on amd64 the inner
// kernel is AVX2 assembly. Bit-identical to MatMulInto.
func MatMulPackedInto(dst, a *Matrix, p *Packed) {
	if a.Cols != p.K {
		panic("tensor: MatMulPackedInto shapes " + shapeStr(a) + " and packed " + dimStr(p.K, p.N))
	}
	if dst.Rows != a.Rows || dst.Cols != p.N {
		panic("tensor: MatMulPackedInto dst " + shapeStr(dst) + " want " + dimStr(a.Rows, p.N))
	}
	if aliases(dst, a) || (len(dst.Data) > 0 && len(p.data) > 0 && &dst.Data[0] == &p.data[0]) {
		panic("tensor: MatMulPackedInto destination aliases an input")
	}
	matMulPacked(dst, a, p)
}

// MatMulPackedBiasActInto is MatMulBiasActInto with a packed weight
// matrix: dst = act(a × w + bias). bias may be nil.
func MatMulPackedBiasActInto(dst, a *Matrix, p *Packed, bias *Matrix, act ActKind) {
	if a.Cols != p.K {
		panic("tensor: MatMulPackedBiasActInto shapes " + shapeStr(a) + " and packed " + dimStr(p.K, p.N))
	}
	if dst.Rows != a.Rows || dst.Cols != p.N {
		panic("tensor: MatMulPackedBiasActInto dst " + shapeStr(dst) + " want " + dimStr(a.Rows, p.N))
	}
	if bias != nil && (bias.Rows != 1 || bias.Cols != p.N) {
		panic("tensor: MatMulPackedBiasActInto bias " + shapeStr(bias) + " want " + dimStr(1, p.N))
	}
	if aliases(dst, a) || (len(dst.Data) > 0 && len(p.data) > 0 && &dst.Data[0] == &p.data[0]) {
		panic("tensor: MatMulPackedBiasActInto destination aliases an input")
	}
	matMulPacked(dst, a, p)
	for i := 0; i < dst.Rows; i++ {
		orow := dst.Row(i)
		if bias != nil {
			for j, bv := range bias.Data {
				orow[j] += bv
			}
		}
		applyAct(orow, act)
	}
}

// AddVecMatInto computes dst += h × w, a 1×H row vector times an H×N
// matrix accumulated into an N-wide destination row — the per-timestep
// LSTM recurrence update. dst must not alias h or w's storage.
func AddVecMatInto(dst, h []float64, w *Matrix) {
	if w.Rows != len(h) {
		panic("tensor: AddVecMatInto h length " + dimStr(len(h), w.Rows))
	}
	if w.Cols != len(dst) {
		panic("tensor: AddVecMatInto dst length " + dimStr(len(dst), w.Cols))
	}
	if len(dst) > 0 && len(w.Data) > 0 && &dst[0] == &w.Data[0] {
		panic("tensor: AddVecMatInto destination aliases an input")
	}
	if len(dst) > 0 && len(h) > 0 && &dst[0] == &h[0] {
		panic("tensor: AddVecMatInto destination aliases the input vector")
	}
	addVecMat(dst, h, w)
}

// MatMulTInto computes dst = a × bᵀ. dst must be a.Rows×b.Rows and must
// not alias a or b.
func MatMulTInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(shapeErr("MatMulTInto", a, b))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(shapeErr("MatMulTInto dst", dst, b))
	}
	checkNoAlias("MatMulTInto", dst, a, b)
	K := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		// Four b rows per pass share each arow load; every dot product
		// still accumulates k ascending, so per-element rounding is
		// unchanged.
		j := 0
		for ; j+4 <= b.Rows; j += 4 {
			b0 := b.Data[j*K : j*K+K]
			b1 := b.Data[(j+1)*K : (j+1)*K+K]
			b2 := b.Data[(j+2)*K : (j+2)*K+K]
			b3 := b.Data[(j+3)*K : (j+3)*K+K]
			var s0, s1, s2, s3 float64
			for k, av := range arow {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
		}
		for ; j < b.Rows; j++ {
			brow := b.Row(j)
			sum := 0.0
			for k := range arow {
				sum += arow[k] * brow[k]
			}
			orow[j] = sum
		}
	}
}

// MatMulBiasActInto computes dst = act(a × w + bias), the fused
// time-distributed dense forward: one pass sets each output row from
// the matmul accumulation, adds the 1×Out bias, and applies the
// activation — no intermediate matrices. bias may be nil (no bias).
// dst must not alias a or w.
func MatMulBiasActInto(dst, a, w, bias *Matrix, act ActKind) {
	if a.Cols != w.Rows {
		panic(shapeErr("MatMulBiasActInto", a, w))
	}
	if dst.Rows != a.Rows || dst.Cols != w.Cols {
		panic(shapeErr("MatMulBiasActInto dst", dst, w))
	}
	if bias != nil && (bias.Rows != 1 || bias.Cols != w.Cols) {
		panic(shapeErr("MatMulBiasActInto bias", bias, w))
	}
	checkNoAlias("MatMulBiasActInto", dst, a, w)
	matMulDirect(dst, a, w)
	for i := 0; i < a.Rows; i++ {
		orow := dst.Row(i)
		if bias != nil {
			for j, bv := range bias.Data {
				orow[j] += bv
			}
		}
		applyAct(orow, act)
	}
}

// AddInto computes dst = a + b element-wise. dst aliasing a (or b) is
// safe: each element is read before it is written.
func AddInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(shapeErr("AddInto", a, b))
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic(shapeErr("AddInto dst", dst, a))
	}
	for i, av := range a.Data {
		dst.Data[i] = av + b.Data[i]
	}
}

// HadamardInto computes dst = a ⊙ b element-wise. dst aliasing a or b
// is safe.
func HadamardInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(shapeErr("HadamardInto", a, b))
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic(shapeErr("HadamardInto dst", dst, a))
	}
	for i, av := range a.Data {
		dst.Data[i] = av * b.Data[i]
	}
}

// ApplyInto computes dst[i] = f(src[i]). dst aliasing src is safe.
func ApplyInto(dst, src *Matrix, f func(float64) float64) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(shapeErr("ApplyInto", dst, src))
	}
	for i, v := range src.Data {
		dst.Data[i] = f(v)
	}
}

// ReverseRowsInto writes src with reversed row order into dst. dst must
// not alias src.
func ReverseRowsInto(dst, src *Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(shapeErr("ReverseRowsInto", dst, src))
	}
	checkNoAlias("ReverseRowsInto", dst, src, nil)
	for i := 0; i < src.Rows; i++ {
		copy(dst.Row(i), src.Row(src.Rows-1-i))
	}
}

// ConcatColsInto writes [a | b] into dst. dst must not alias a or b.
func ConcatColsInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(shapeErr("ConcatColsInto", a, b))
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols+b.Cols {
		panic(shapeErr("ConcatColsInto dst", dst, a))
	}
	checkNoAlias("ConcatColsInto", dst, a, b)
	for i := 0; i < a.Rows; i++ {
		drow := dst.Row(i)
		copy(drow[:a.Cols], a.Row(i))
		copy(drow[a.Cols:], b.Row(i))
	}
}

// ColSliceInto copies columns [lo, hi) of src into dst (src.Rows ×
// (hi-lo)). dst must not alias src.
func ColSliceInto(dst, src *Matrix, lo, hi int) {
	if lo < 0 || hi > src.Cols || lo > hi {
		panic("tensor: ColSliceInto column range out of bounds")
	}
	if dst.Rows != src.Rows || dst.Cols != hi-lo {
		panic(shapeErr("ColSliceInto dst", dst, src))
	}
	checkNoAlias("ColSliceInto", dst, src, nil)
	for i := 0; i < src.Rows; i++ {
		copy(dst.Row(i), src.Row(i)[lo:hi])
	}
}
