//go:build !amd64 || purego

package tensor

// Portable build: the slice transcendentals always take the scalar
// math.Exp/math.Tanh path. The stubs are never reached (useVecKernels
// is a false constant, so the compiler removes the calls).

const vecSupported = false

var useVecKernels = false

func vexpblk(dst, x []float64) int     { panic("tensor: no vector kernels") }
func vsigmoidblk(dst, x []float64) int { panic("tensor: no vector kernels") }
func vtanhblk(dst, x []float64) int    { panic("tensor: no vector kernels") }
func vexpf8(dst, x []float32) int      { panic("tensor: no vector kernels") }
func vsigmoidf8(dst, x []float32) int  { panic("tensor: no vector kernels") }
func vtanhf8(dst, x []float32) int     { panic("tensor: no vector kernels") }
