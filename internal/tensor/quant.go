package tensor

// Int8 weight quantization for the opt-in inference backend. A weight
// matrix W (K×N, float64) is stored as Q (K×N, int8) with one float32
// scale per *input row* k, chosen by absmax:
//
//	scale[k] = max_j |W[k][j]| / 127,   Q[k][j] = round(W[k][j] / scale[k])
//
// so W[k][j] ≈ scale[k] · Q[k][j]. The compute form is the dequantized
// float32 panel buffer deq — scale[k]·Q[k][j] relaid out into 8-wide
// column panels like Packed — built once at quantize time: the GEMM
// then runs float32 FMA microkernels (gemmf4x8 and friends) over the
// panels, which is numerically identical to multiplying against
// scale·Q on the fly but lets the inner loop run at full SIMD width.
// Q and Scale remain the storage/round-trip form (DequantAt, the fuzz
// oracle); rows that are all zero get scale 0 and contribute nothing.
//
// Accuracy is NOT bit-identical to the exact path — FMA is allowed
// here — and is instead gated by the committed golden-scenario
// thresholds (per-packet sojourn W1 distance and max relative delay
// error) in the quant accuracy tests.

// QuantMat is an int8-quantized weight matrix with per-input-row
// float32 scales and a packed dequantized float32 compute buffer.
type QuantMat struct {
	K, N  int
	Q     []int8    // K×N row-major
	Scale []float32 // len K
	deq   []float32 // ⌈N/8⌉ panels × K × 8, scale[k]·Q[k][j], zero-padded
}

// QuantizeMat quantizes w to int8 with per-row absmax scales.
func QuantizeMat(w *Matrix) *QuantMat {
	q := &QuantMat{
		K: w.Rows, N: w.Cols,
		Q:     make([]int8, w.Rows*w.Cols),
		Scale: make([]float32, w.Rows),
	}
	for k := 0; k < w.Rows; k++ {
		row := w.Row(k)
		absmax := 0.0
		for _, v := range row {
			av := v
			if av < 0 {
				av = -av
			}
			if av > absmax {
				absmax = av
			}
		}
		if absmax == 0 {
			continue // scale 0, Q row stays 0
		}
		s := absmax / 127
		q.Scale[k] = float32(s)
		inv := 1 / s
		qrow := q.Q[k*w.Cols : (k+1)*w.Cols]
		for j, v := range row {
			iv := int(v*inv + 0.5)
			if v < 0 {
				iv = int(v*inv - 0.5)
			}
			if iv > 127 {
				iv = 127
			}
			if iv < -127 {
				iv = -127
			}
			qrow[j] = int8(iv)
		}
	}
	K, N := q.K, q.N
	np := (N + 7) / 8
	q.deq = make([]float32, np*K*8)
	for k := 0; k < K; k++ {
		s := q.Scale[k]
		for j := 0; j < N; j++ {
			q.deq[(j/8)*K*8+k*8+j%8] = s * float32(q.Q[k*N+j])
		}
	}
	return q
}

// DequantAt returns the effective (dequantized) weight value at (k, j),
// for tests and round-trip checks.
func (q *QuantMat) DequantAt(k, j int) float64 {
	return float64(q.Scale[k]) * float64(q.Q[k*q.N+j])
}

// QMatMulInto computes dst = a ×̃ W over the dequantized float32
// panels. dst must be a.Rows×W.N and must not alias a.
func QMatMulInto(dst, a *MatrixF32, w *QuantMat) {
	if a.Cols != w.K || dst.Rows != a.Rows || dst.Cols != w.N {
		panic("tensor: QMatMulInto shape mismatch")
	}
	if len(dst.Data) > 0 && len(a.Data) > 0 && &dst.Data[0] == &a.Data[0] {
		panic("tensor: QMatMulInto destination aliases an input")
	}
	M, K, N := a.Rows, w.K, w.N
	if M == 0 || N == 0 {
		return
	}
	np := (N + 7) / 8
	npFull := N / 8
	if useAsmKernels && K > 0 && npFull > 0 {
		i := 0
		for ; i+4 <= M; i += 4 {
			for pi := 0; pi < npFull; pi++ {
				gemmf4x8(&dst.Data[i*N+pi*8], N, &a.Data[i*K], K, &w.deq[pi*K*8], K)
			}
		}
		for ; i < M; i++ {
			for pi := 0; pi < npFull; pi++ {
				gemmf1x8(&dst.Data[i*N+pi*8], &a.Data[i*K], &w.deq[pi*K*8], K)
			}
		}
		if npFull < np {
			qPackedRows(dst, a, w, 0, M, npFull, np)
		}
		return
	}
	qPackedRows(dst, a, w, 0, M, 0, np)
}

// qPackedRows is the portable quant microkernel: rows [i0, i1), panels
// [pi0, pi1), 8 accumulators per panel, partial stores for the
// zero-padded last panel.
func qPackedRows(dst, a *MatrixF32, w *QuantMat, i0, i1, pi0, pi1 int) {
	K, N := w.K, w.N
	for i := i0; i < i1; i++ {
		arow := a.Data[i*K : i*K+K]
		orow := dst.Data[i*N : i*N+N]
		for pi := pi0; pi < pi1; pi++ {
			var c0, c1, c2, c3, c4, c5, c6, c7 float32
			panel := w.deq[pi*K*8 : (pi+1)*K*8]
			for k := 0; k < K; k++ {
				av := arow[k]
				br := panel[k*8 : k*8+8 : k*8+8]
				c0 += av * br[0]
				c1 += av * br[1]
				c2 += av * br[2]
				c3 += av * br[3]
				c4 += av * br[4]
				c5 += av * br[5]
				c6 += av * br[6]
				c7 += av * br[7]
			}
			j := pi * 8
			if j+8 <= N {
				or := orow[j : j+8 : j+8]
				or[0], or[1], or[2], or[3], or[4], or[5], or[6], or[7] = c0, c1, c2, c3, c4, c5, c6, c7
			} else {
				tmp := [8]float32{c0, c1, c2, c3, c4, c5, c6, c7}
				copy(orow[j:N], tmp[:N-j])
			}
		}
	}
}

// QMatMulBiasActInto is QMatMulInto fused with a bias add and
// activation (fast float32 transcendentals). bias may be nil.
func QMatMulBiasActInto(dst, a *MatrixF32, w *QuantMat, bias []float32, act ActKind) {
	QMatMulInto(dst, a, w)
	for i := 0; i < dst.Rows; i++ {
		orow := dst.Row(i)
		if bias != nil {
			for j, bv := range bias {
				orow[j] += bv
			}
		}
		ApplyActF32(orow, act)
	}
}

// ApplyActF32 applies the fused activation kind to a float32 row using
// the fast transcendentals.
func ApplyActF32(row []float32, act ActKind) {
	switch act {
	case ActTanh:
		FastTanhSlice(row, row)
	case ActRelu:
		for j, v := range row {
			if v < 0 {
				row[j] = 0
			}
		}
	case ActSigmoid:
		FastSigmoidSlice(row, row)
	}
}

// QAddVecMatInto computes dst += h ×̃ W over the dequantized panels —
// the per-timestep LSTM recurrence on the quant path. len(h) must be
// W.K, len(dst) must be W.N.
func QAddVecMatInto(dst, h []float32, w *QuantMat) {
	if len(h) != w.K || len(dst) != w.N {
		panic("tensor: QAddVecMatInto length mismatch")
	}
	if len(dst) > 0 && len(h) > 0 && &dst[0] == &h[0] {
		panic("tensor: QAddVecMatInto destination aliases the input vector")
	}
	K, N := w.K, w.N
	if K == 0 || N == 0 {
		return
	}
	pi0 := 0
	if useAsmKernels && N >= 8 {
		pi0 = N / 8
		axpyf8(&dst[0], &h[0], &w.deq[0], K, pi0)
	}
	np := (N + 7) / 8
	for pi := pi0; pi < np; pi++ {
		j := pi * 8
		hi := j + 8
		if hi > N {
			hi = N
		}
		panel := w.deq[pi*K*8 : (pi+1)*K*8]
		var c [8]float32
		copy(c[:hi-j], dst[j:hi])
		for k, hv := range h {
			br := panel[k*8 : k*8+8 : k*8+8]
			for l := 0; l < 8; l++ {
				c[l] += hv * br[l]
			}
		}
		copy(dst[j:hi], c[:hi-j])
	}
}
