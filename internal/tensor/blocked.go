package tensor

// Blocked GEMM kernels. Two layers:
//
//   - Register-tiled portable Go kernels (this file) that compute 8
//     output columns per inner loop with the accumulators held in
//     registers. They accumulate each output element's k terms in
//     ascending order with one multiply and one add per term — exactly
//     the scalar order — so they are bit-identical to a naive loop.
//   - AVX2 assembly microkernels (kern_amd64.s) that do the same
//     per-lane: VMULPD + VADDPD round each 64-bit lane like scalar
//     mulsd/addsd (no FMA), so asm, tiled Go, and naive Go all agree
//     to the last bit. Selected at runtime when the CPU has AVX2.
//
// None of the blocked kernels skip zero multiplicands. For finite b
// this is bit-identical to the historical skip kernels: an accumulator
// can never hold -0 (it starts at +0 and round-to-nearest sums of
// nonzeros cancel to +0), so adding av*bv = ±0 never changes its bits.
// The differential tests (internal/tensor/difftest) pin all of this.

// useAsmKernels gates the AVX2 microkernels; initialized from the CPUID
// probe, flipped only by SetAsmKernels.
var useAsmKernels = asmSupported

// AsmKernelsSupported reports whether this binary and CPU can run the
// assembly microkernels.
func AsmKernelsSupported() bool { return asmSupported }

// SetAsmKernels enables or disables the assembly microkernels and
// returns the previous setting. Enabling is a no-op on builds or CPUs
// without them. It is a testing and diagnostics hook — not safe to call
// concurrently with running kernels.
func SetAsmKernels(enable bool) bool {
	prev := useAsmKernels
	useAsmKernels = enable && asmSupported
	return prev
}

// matMulPacked computes dst = a × b with b in packed-panel form
// (beta = 0, no zero-skip).
func matMulPacked(dst, a *Matrix, p *Packed) {
	M, K, N := a.Rows, a.Cols, p.N
	if M == 0 || N == 0 {
		return
	}
	np := (N + 7) / 8
	npFull := N / 8
	if useAsmKernels && K > 0 && npFull > 0 {
		i := 0
		for ; i+4 <= M; i += 4 {
			for pi := 0; pi < npFull; pi++ {
				gemm4x8(&dst.Data[i*N+pi*8], N, &a.Data[i*K], K, &p.data[pi*K*8], K)
			}
		}
		for ; i < M; i++ {
			for pi := 0; pi < npFull; pi++ {
				gemm1x8(&dst.Data[i*N+pi*8], &a.Data[i*K], &p.data[pi*K*8], K)
			}
		}
		if npFull < np {
			goPackedRows(dst, a, p, 0, M, npFull, np)
		}
		return
	}
	goPackedRows(dst, a, p, 0, M, 0, np)
}

// goPackedRows is the portable packed microkernel: rows [i0, i1),
// panels [pi0, pi1), 8 accumulators per panel, partial stores for the
// zero-padded last panel.
func goPackedRows(dst, a *Matrix, p *Packed, i0, i1, pi0, pi1 int) {
	K, N := p.K, p.N
	for i := i0; i < i1; i++ {
		arow := a.Data[i*K : i*K+K]
		orow := dst.Data[i*N : i*N+N]
		for pi := pi0; pi < pi1; pi++ {
			var c0, c1, c2, c3, c4, c5, c6, c7 float64
			panel := p.data[pi*K*8 : (pi+1)*K*8]
			for k := 0; k < K; k++ {
				av := arow[k]
				br := panel[k*8 : k*8+8 : k*8+8]
				c0 += av * br[0]
				c1 += av * br[1]
				c2 += av * br[2]
				c3 += av * br[3]
				c4 += av * br[4]
				c5 += av * br[5]
				c6 += av * br[6]
				c7 += av * br[7]
			}
			j := pi * 8
			if j+8 <= N {
				or := orow[j : j+8 : j+8]
				or[0], or[1], or[2], or[3], or[4], or[5], or[6], or[7] = c0, c1, c2, c3, c4, c5, c6, c7
			} else {
				tmp := [8]float64{c0, c1, c2, c3, c4, c5, c6, c7}
				copy(orow[j:N], tmp[:N-j])
			}
		}
	}
}

// matMulDirect computes dst = a × b reading b in place (row-major),
// register-tiled 1×8, no zero-skip.
func matMulDirect(dst, a, b *Matrix) {
	M, K, N := a.Rows, a.Cols, b.Cols
	for i := 0; i < M; i++ {
		arow := a.Data[i*K : i*K+K]
		orow := dst.Data[i*N : i*N+N]
		j := 0
		for ; j+8 <= N; j += 8 {
			var c0, c1, c2, c3, c4, c5, c6, c7 float64
			bp := j
			for k := 0; k < K; k++ {
				av := arow[k]
				br := b.Data[bp : bp+8 : bp+8]
				c0 += av * br[0]
				c1 += av * br[1]
				c2 += av * br[2]
				c3 += av * br[3]
				c4 += av * br[4]
				c5 += av * br[5]
				c6 += av * br[6]
				c7 += av * br[7]
				bp += N
			}
			or := orow[j : j+8 : j+8]
			or[0], or[1], or[2], or[3], or[4], or[5], or[6], or[7] = c0, c1, c2, c3, c4, c5, c6, c7
		}
		for ; j < N; j++ {
			var c float64
			bp := j
			for k := 0; k < K; k++ {
				c += arow[k] * b.Data[bp]
				bp += N
			}
			orow[j] = c
		}
	}
}

// addVecMat computes dst += h × w (a 1×H row times H×N), the beta = 1
// row update of the LSTM recurrence. k ascending per element, no
// zero-skip.
func addVecMat(dst, h []float64, w *Matrix) {
	H, N := len(h), w.Cols
	if H == 0 || N == 0 {
		return
	}
	j := 0
	if useAsmKernels && N >= 8 {
		np := N / 8
		axpyN8(&dst[0], &h[0], &w.Data[0], N, H, np)
		j = np * 8
	}
	for ; j+8 <= N; j += 8 {
		zs := dst[j : j+8 : j+8]
		c0, c1, c2, c3, c4, c5, c6, c7 := zs[0], zs[1], zs[2], zs[3], zs[4], zs[5], zs[6], zs[7]
		wp := j
		for k := 0; k < H; k++ {
			hv := h[k]
			wr := w.Data[wp : wp+8 : wp+8]
			c0 += hv * wr[0]
			c1 += hv * wr[1]
			c2 += hv * wr[2]
			c3 += hv * wr[3]
			c4 += hv * wr[4]
			c5 += hv * wr[5]
			c6 += hv * wr[6]
			c7 += hv * wr[7]
			wp += N
		}
		zs[0], zs[1], zs[2], zs[3], zs[4], zs[5], zs[6], zs[7] = c0, c1, c2, c3, c4, c5, c6, c7
	}
	for ; j < N; j++ {
		c := dst[j]
		wp := j
		for k := 0; k < H; k++ {
			c += h[k] * w.Data[wp]
			wp += N
		}
		dst[j] = c
	}
}
