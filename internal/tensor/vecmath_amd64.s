//go:build amd64 && !purego

#include "textflag.h"

// 4-lane AVX2+FMA transcendental kernels, bit-identical to the scalar
// math package on this hardware class.
//
// Go's math.Exp on amd64 (archExp, exp_amd64.s) takes its FMA path
// whenever the CPU has AVX and FMA (math's private useFMA). That path
// is straight-line SLEEF code: round x/ln2 to an int32 n with the
// current rounding mode, subtract n·ln2 in two FMA steps (hi/lo split),
// scale by 1/16, evaluate a degree-8 Taylor polynomial with FMA, square
// back up four times, and multiply by 2^n built in the exponent field.
// Every step maps 1:1 onto a packed instruction (VFNMADD231SD →
// VFNMADD231PD, CVTSD2SL → VCVTPD2DQ, ...), and each packed lane rounds
// exactly like its scalar twin, so EXPCORE below reproduces archExp
// bit-for-bit on every lane whose input stays clear of the entry
// special cases (non-finite, overflow) and of the ldexp denormal/
// overflow branches. The Go wrappers only feed lanes with |x| ≤ 704
// (biased exponent then stays inside [7, 2040]) and fall back to
// math.Exp for the rest, so the special branches never need vector
// code. The rodata constants are copied verbatim from exp_amd64.s.
//
// math.Tanh on amd64 is the portable Cephes code (tanh.go): a rational
// polynomial below |x| = 0.625, 1 - 2/(e^{2|x|}+1) up to 0.5·MAXLOG,
// ±1 beyond. The Go compiler never fuses mul+add on amd64, so the
// polynomial's float expression tree maps onto discrete VMULPD/VADDPD/
// VDIVPD with identical per-op rounding, and the branches become lane
// blends: both sides are computed for every lane and VBLENDVPD picks
// the one the scalar code would have taken (garbage in a lane that is
// blended away is harmless — SIMD FP faults are masked). tanh is total,
// so vtanhblk handles every input and only the length tail returns to
// Go.
//
// The differential suite (internal/tensor/difftest) pins all of this
// against math.Exp/math.Tanh exhaustively and on adversarial inputs.

// Constants of archExp (exp_amd64.s), replicated across 4 lanes.
DATA expc05<>+0(SB)/8, $0.5
DATA expc05<>+8(SB)/8, $0.5
DATA expc05<>+16(SB)/8, $0.5
DATA expc05<>+24(SB)/8, $0.5
GLOBL expc05<>(SB), RODATA|NOPTR, $32

DATA expone<>+0(SB)/8, $1.0
DATA expone<>+8(SB)/8, $1.0
DATA expone<>+16(SB)/8, $1.0
DATA expone<>+24(SB)/8, $1.0
GLOBL expone<>(SB), RODATA|NOPTR, $32

DATA exptwo<>+0(SB)/8, $2.0
DATA exptwo<>+8(SB)/8, $2.0
DATA exptwo<>+16(SB)/8, $2.0
DATA exptwo<>+24(SB)/8, $2.0
GLOBL exptwo<>(SB), RODATA|NOPTR, $32

DATA expc24<>+0(SB)/8, $1.6666666666666666667e-1
DATA expc24<>+8(SB)/8, $1.6666666666666666667e-1
DATA expc24<>+16(SB)/8, $1.6666666666666666667e-1
DATA expc24<>+24(SB)/8, $1.6666666666666666667e-1
GLOBL expc24<>(SB), RODATA|NOPTR, $32

DATA expc32<>+0(SB)/8, $4.1666666666666666667e-2
DATA expc32<>+8(SB)/8, $4.1666666666666666667e-2
DATA expc32<>+16(SB)/8, $4.1666666666666666667e-2
DATA expc32<>+24(SB)/8, $4.1666666666666666667e-2
GLOBL expc32<>(SB), RODATA|NOPTR, $32

DATA expc40<>+0(SB)/8, $8.3333333333333333333e-3
DATA expc40<>+8(SB)/8, $8.3333333333333333333e-3
DATA expc40<>+16(SB)/8, $8.3333333333333333333e-3
DATA expc40<>+24(SB)/8, $8.3333333333333333333e-3
GLOBL expc40<>(SB), RODATA|NOPTR, $32

DATA expc48<>+0(SB)/8, $1.3888888888888888889e-3
DATA expc48<>+8(SB)/8, $1.3888888888888888889e-3
DATA expc48<>+16(SB)/8, $1.3888888888888888889e-3
DATA expc48<>+24(SB)/8, $1.3888888888888888889e-3
GLOBL expc48<>(SB), RODATA|NOPTR, $32

DATA expc56<>+0(SB)/8, $1.9841269841269841270e-4
DATA expc56<>+8(SB)/8, $1.9841269841269841270e-4
DATA expc56<>+16(SB)/8, $1.9841269841269841270e-4
DATA expc56<>+24(SB)/8, $1.9841269841269841270e-4
GLOBL expc56<>(SB), RODATA|NOPTR, $32

DATA expc64<>+0(SB)/8, $2.4801587301587301587e-5
DATA expc64<>+8(SB)/8, $2.4801587301587301587e-5
DATA expc64<>+16(SB)/8, $2.4801587301587301587e-5
DATA expc64<>+24(SB)/8, $2.4801587301587301587e-5
GLOBL expc64<>(SB), RODATA|NOPTR, $32

DATA explog2e<>+0(SB)/8, $1.4426950408889634073599246810018920
DATA explog2e<>+8(SB)/8, $1.4426950408889634073599246810018920
DATA explog2e<>+16(SB)/8, $1.4426950408889634073599246810018920
DATA explog2e<>+24(SB)/8, $1.4426950408889634073599246810018920
GLOBL explog2e<>(SB), RODATA|NOPTR, $32

DATA expln2u<>+0(SB)/8, $0.69314718055966295651160180568695068359375
DATA expln2u<>+8(SB)/8, $0.69314718055966295651160180568695068359375
DATA expln2u<>+16(SB)/8, $0.69314718055966295651160180568695068359375
DATA expln2u<>+24(SB)/8, $0.69314718055966295651160180568695068359375
GLOBL expln2u<>(SB), RODATA|NOPTR, $32

DATA expln2l<>+0(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA expln2l<>+8(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA expln2l<>+16(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA expln2l<>+24(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
GLOBL expln2l<>(SB), RODATA|NOPTR, $32

DATA expc0625<>+0(SB)/8, $0.0625
DATA expc0625<>+8(SB)/8, $0.0625
DATA expc0625<>+16(SB)/8, $0.0625
DATA expc0625<>+24(SB)/8, $0.0625
GLOBL expc0625<>(SB), RODATA|NOPTR, $32

// |x| ≤ 704 keeps archExp's ldexp exponent in [7, 2040]: no denormal,
// no overflow, no entry special case — the vector path is exact there.
DATA expsafe<>+0(SB)/8, $704.0
DATA expsafe<>+8(SB)/8, $704.0
DATA expsafe<>+16(SB)/8, $704.0
DATA expsafe<>+24(SB)/8, $704.0
GLOBL expsafe<>(SB), RODATA|NOPTR, $32

// Exponent bias 1023 as 4 × int32 for the ldexp step.
DATA expbias<>+0(SB)/4, $1023
DATA expbias<>+4(SB)/4, $1023
DATA expbias<>+8(SB)/4, $1023
DATA expbias<>+12(SB)/4, $1023
GLOBL expbias<>(SB), RODATA|NOPTR, $16

DATA absmask<>+0(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA absmask<>+8(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA absmask<>+16(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA absmask<>+24(SB)/8, $0x7FFFFFFFFFFFFFFF
GLOBL absmask<>(SB), RODATA|NOPTR, $32

DATA signmask<>+0(SB)/8, $0x8000000000000000
DATA signmask<>+8(SB)/8, $0x8000000000000000
DATA signmask<>+16(SB)/8, $0x8000000000000000
DATA signmask<>+24(SB)/8, $0x8000000000000000
GLOBL signmask<>(SB), RODATA|NOPTR, $32

// Cephes tanh constants (math/tanh.go). tanhbig is 0.5*MAXLOG with the
// exact bits the Go compiler produces for that constant expression.
DATA tanhp0<>+0(SB)/8, $-9.64399179425052238628e-1
DATA tanhp0<>+8(SB)/8, $-9.64399179425052238628e-1
DATA tanhp0<>+16(SB)/8, $-9.64399179425052238628e-1
DATA tanhp0<>+24(SB)/8, $-9.64399179425052238628e-1
GLOBL tanhp0<>(SB), RODATA|NOPTR, $32

DATA tanhp1<>+0(SB)/8, $-9.92877231001918586564e1
DATA tanhp1<>+8(SB)/8, $-9.92877231001918586564e1
DATA tanhp1<>+16(SB)/8, $-9.92877231001918586564e1
DATA tanhp1<>+24(SB)/8, $-9.92877231001918586564e1
GLOBL tanhp1<>(SB), RODATA|NOPTR, $32

DATA tanhp2<>+0(SB)/8, $-1.61468768441708447952e3
DATA tanhp2<>+8(SB)/8, $-1.61468768441708447952e3
DATA tanhp2<>+16(SB)/8, $-1.61468768441708447952e3
DATA tanhp2<>+24(SB)/8, $-1.61468768441708447952e3
GLOBL tanhp2<>(SB), RODATA|NOPTR, $32

DATA tanhq0<>+0(SB)/8, $1.12811678491632931402e2
DATA tanhq0<>+8(SB)/8, $1.12811678491632931402e2
DATA tanhq0<>+16(SB)/8, $1.12811678491632931402e2
DATA tanhq0<>+24(SB)/8, $1.12811678491632931402e2
GLOBL tanhq0<>(SB), RODATA|NOPTR, $32

DATA tanhq1<>+0(SB)/8, $2.23548839060100448583e3
DATA tanhq1<>+8(SB)/8, $2.23548839060100448583e3
DATA tanhq1<>+16(SB)/8, $2.23548839060100448583e3
DATA tanhq1<>+24(SB)/8, $2.23548839060100448583e3
GLOBL tanhq1<>(SB), RODATA|NOPTR, $32

DATA tanhq2<>+0(SB)/8, $4.84406305325125486048e3
DATA tanhq2<>+8(SB)/8, $4.84406305325125486048e3
DATA tanhq2<>+16(SB)/8, $4.84406305325125486048e3
DATA tanhq2<>+24(SB)/8, $4.84406305325125486048e3
GLOBL tanhq2<>(SB), RODATA|NOPTR, $32

DATA tanh625<>+0(SB)/8, $0.625
DATA tanh625<>+8(SB)/8, $0.625
DATA tanh625<>+16(SB)/8, $0.625
DATA tanh625<>+24(SB)/8, $0.625
GLOBL tanh625<>(SB), RODATA|NOPTR, $32

DATA tanhbig<>+0(SB)/8, $0x404601E678FC457B
DATA tanhbig<>+8(SB)/8, $0x404601E678FC457B
DATA tanhbig<>+16(SB)/8, $0x404601E678FC457B
DATA tanhbig<>+24(SB)/8, $0x404601E678FC457B
GLOBL tanhbig<>(SB), RODATA|NOPTR, $32

// EXPCORE: Y0 = exp(Y0) per lane, archExp's FMA path packed 4-wide.
// Requires Y12=LOG2E, Y11=LN2U, Y10=LN2L, Y9=0.0625 preloaded; clobbers
// Y1, Y2, Y4, X4. Lanes must satisfy |x| ≤ 704 for exactness.
#define EXPCORE \
	VMULPD Y12, Y0, Y1        \ // t = x·log2(e)
	VCVTPD2DQY Y1, X4         \ // n = rint(t), 4 × int32
	VCVTDQ2PD X4, Y1          \
	VFNMADD231PD Y11, Y1, Y0  \ // x -= n·LN2U
	VFNMADD231PD Y10, Y1, Y0  \ // x -= n·LN2L
	VMULPD Y9, Y0, Y0         \ // x /= 16
	VMOVUPD expc64<>(SB), Y2  \
	VFMADD213PD expc56<>(SB), Y0, Y2 \
	VFMADD213PD expc48<>(SB), Y0, Y2 \
	VFMADD213PD expc40<>(SB), Y0, Y2 \
	VFMADD213PD expc32<>(SB), Y0, Y2 \
	VFMADD213PD expc24<>(SB), Y0, Y2 \
	VFMADD213PD expc05<>(SB), Y0, Y2 \
	VFMADD213PD expone<>(SB), Y0, Y2 \
	VMULPD Y2, Y0, Y0         \ // u = x·p
	VADDPD exptwo<>(SB), Y0, Y2 \
	VMULPD Y2, Y0, Y0         \ // u = u·(u+2), 1st squaring
	VADDPD exptwo<>(SB), Y0, Y2 \
	VMULPD Y2, Y0, Y0         \
	VADDPD exptwo<>(SB), Y0, Y2 \
	VMULPD Y2, Y0, Y0         \
	VADDPD exptwo<>(SB), Y0, Y2 \
	VFMADD213PD expone<>(SB), Y2, Y0 \ // u = u·(u+2) + 1
	VPADDD expbias<>(SB), X4, X4 \ // biased exponent
	VPMOVSXDQ X4, Y4          \
	VPSLLQ $52, Y4, Y4        \
	VMULPD Y4, Y0, Y0         // · 2^n

// func vexpblk(dst, x []float64) int
// Writes dst[i] = exp(x[i]) for leading groups of 4 lanes while every
// lane in the group has |x| ≤ 704; returns the number of elements
// processed (a multiple of 4). Stops early at the first group with an
// out-of-range (or NaN) lane — the Go wrapper finishes it with
// math.Exp. dst may alias x exactly.
TEXT ·vexpblk(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), CX

	VMOVUPD absmask<>(SB), Y15
	VMOVUPD expsafe<>(SB), Y14
	VMOVUPD explog2e<>(SB), Y12
	VMOVUPD expln2u<>(SB), Y11
	VMOVUPD expln2l<>(SB), Y10
	VMOVUPD expc0625<>(SB), Y9

	XORQ AX, AX
exploop:
	LEAQ 4(AX), R9
	CMPQ R9, CX
	JGT  expdone
	VMOVUPD (SI)(AX*8), Y0
	VANDPD Y15, Y0, Y1
	VCMPPD $0x12, Y14, Y1, Y2 // |x| ≤ 704, LE_OQ (false for NaN)
	VMOVMSKPD Y2, DX
	CMPL DX, $0xF
	JNE  expdone
	EXPCORE
	VMOVUPD Y0, (DI)(AX*8)
	MOVQ R9, AX
	JMP  exploop
expdone:
	MOVQ AX, ret+48(FP)
	VZEROUPPER
	RET

// func vsigmoidblk(dst, x []float64) int
// dst[i] = 1/(1+exp(-x[i])), same group contract as vexpblk. The
// negation, the add and the divide are all exact or correctly rounded
// single ops, matching scalar Sigmoid.
TEXT ·vsigmoidblk(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), CX

	VMOVUPD absmask<>(SB), Y15
	VMOVUPD expsafe<>(SB), Y14
	VMOVUPD explog2e<>(SB), Y12
	VMOVUPD expln2u<>(SB), Y11
	VMOVUPD expln2l<>(SB), Y10
	VMOVUPD expc0625<>(SB), Y9

	XORQ AX, AX
sigloop:
	LEAQ 4(AX), R9
	CMPQ R9, CX
	JGT  sigdone
	VMOVUPD (SI)(AX*8), Y0
	VANDPD Y15, Y0, Y1
	VCMPPD $0x12, Y14, Y1, Y2
	VMOVMSKPD Y2, DX
	CMPL DX, $0xF
	JNE  sigdone
	VXORPD signmask<>(SB), Y0, Y0 // -x
	EXPCORE
	VADDPD expone<>(SB), Y0, Y1   // 1 + e
	VMOVUPD expone<>(SB), Y2
	VDIVPD Y1, Y2, Y0             // 1 / (1 + e)
	VMOVUPD Y0, (DI)(AX*8)
	MOVQ R9, AX
	JMP  sigloop
sigdone:
	MOVQ AX, ret+48(FP)
	VZEROUPPER
	RET

// func vtanhblk(dst, x []float64) int
// dst[i] = tanh(x[i]) for the leading 4·⌊n/4⌋ elements; returns that
// count (the Go wrapper does the tail). Handles every input: both the
// rational-polynomial and the exp-based branch are computed for all
// lanes and VBLENDVPD picks per lane what the scalar branch ladder
// would have returned (x for ±0, ±1 beyond 0.5·MAXLOG, NaN for NaN).
TEXT ·vtanhblk(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), CX

	VMOVUPD absmask<>(SB), Y15
	VMOVUPD explog2e<>(SB), Y12
	VMOVUPD expln2u<>(SB), Y11
	VMOVUPD expln2l<>(SB), Y10
	VMOVUPD expc0625<>(SB), Y9

	XORQ AX, AX
tanhloop:
	LEAQ 4(AX), R9
	CMPQ R9, CX
	JGT  tanhdone
	VMOVUPD (SI)(AX*8), Y8  // x
	VANDPD Y15, Y8, Y7      // z = |x|
	VANDNPD Y8, Y15, Y5     // sign bit of x

	// exp branch: 1 - 2/(e^{2z}+1), sign restored from x.
	VMULPD exptwo<>(SB), Y7, Y0
	EXPCORE
	VADDPD expone<>(SB), Y0, Y1
	VMOVUPD exptwo<>(SB), Y2
	VDIVPD Y1, Y2, Y2       // 2/(s+1)
	VMOVUPD expone<>(SB), Y1
	VSUBPD Y2, Y1, Y6       // 1 - 2/(s+1)
	VXORPD Y5, Y6, Y6

	// polynomial branch, ops in the scalar evaluation order:
	// x + x·s·((P0·s+P1)·s+P2) / (((s+Q0)·s+Q1)·s+Q2)
	VMULPD Y8, Y8, Y1       // s = x²
	VMOVUPD tanhp0<>(SB), Y2
	VMULPD Y1, Y2, Y2
	VADDPD tanhp1<>(SB), Y2, Y2
	VMULPD Y1, Y2, Y2
	VADDPD tanhp2<>(SB), Y2, Y2 // numerator
	VADDPD tanhq0<>(SB), Y1, Y3
	VMULPD Y1, Y3, Y3
	VADDPD tanhq1<>(SB), Y3, Y3
	VMULPD Y1, Y3, Y3
	VADDPD tanhq2<>(SB), Y3, Y3 // denominator
	VMULPD Y1, Y8, Y4       // x·s
	VMULPD Y2, Y4, Y4       // (x·s)·num
	VDIVPD Y3, Y4, Y4       // /den
	VADDPD Y8, Y4, Y4       // + x

	// Blend ladder, least to most specific.
	VCMPPD $0x1D, tanh625<>(SB), Y7, Y1 // z ≥ 0.625, GE_OQ
	VBLENDVPD Y1, Y6, Y4, Y4
	VCMPPD $0x1E, tanhbig<>(SB), Y7, Y1 // z > 0.5·MAXLOG, GT_OQ
	VMOVUPD expone<>(SB), Y2
	VXORPD Y5, Y2, Y2                   // ±1
	VBLENDVPD Y1, Y2, Y4, Y4
	VXORPD Y1, Y1, Y1
	VCMPPD $0x00, Y1, Y8, Y1            // x == ±0, EQ_OQ
	VBLENDVPD Y1, Y8, Y4, Y4

	VMOVUPD Y4, (DI)(AX*8)
	MOVQ R9, AX
	JMP  tanhloop
tanhdone:
	MOVQ AX, ret+48(FP)
	VZEROUPPER
	RET

// --- float32 fast transcendentals (quant path) ---
//
// 8-lane versions of FastExp32/FastSigmoid32/FastTanh32. These carry no
// bit-identity contract — the quant path is accuracy-gated — so FMA and
// round-to-nearest-even integer conversion are used freely; the scalar
// Go fallbacks differ in a couple of low-order ULPs. Algorithm is
// FastExp32's: n = rint(x/ln2), z = (x/ln2 - n)·ln2, degree-6 Taylor in
// z by Horner, scale by 2^n via an integer add to the exponent field.
// Out-of-range and NaN lanes are fixed up with compare/blend.

DATA f32log2e<>+0(SB)/4, $1.4426950408889634
DATA f32log2e<>+4(SB)/4, $1.4426950408889634
DATA f32log2e<>+8(SB)/4, $1.4426950408889634
DATA f32log2e<>+12(SB)/4, $1.4426950408889634
DATA f32log2e<>+16(SB)/4, $1.4426950408889634
DATA f32log2e<>+20(SB)/4, $1.4426950408889634
DATA f32log2e<>+24(SB)/4, $1.4426950408889634
DATA f32log2e<>+28(SB)/4, $1.4426950408889634
GLOBL f32log2e<>(SB), RODATA|NOPTR, $32

DATA f32ln2<>+0(SB)/4, $0.6931471805599453
DATA f32ln2<>+4(SB)/4, $0.6931471805599453
DATA f32ln2<>+8(SB)/4, $0.6931471805599453
DATA f32ln2<>+12(SB)/4, $0.6931471805599453
DATA f32ln2<>+16(SB)/4, $0.6931471805599453
DATA f32ln2<>+20(SB)/4, $0.6931471805599453
DATA f32ln2<>+24(SB)/4, $0.6931471805599453
DATA f32ln2<>+28(SB)/4, $0.6931471805599453
GLOBL f32ln2<>(SB), RODATA|NOPTR, $32

DATA f32c6<>+0(SB)/4, $0.001388888888888889
DATA f32c6<>+4(SB)/4, $0.001388888888888889
DATA f32c6<>+8(SB)/4, $0.001388888888888889
DATA f32c6<>+12(SB)/4, $0.001388888888888889
DATA f32c6<>+16(SB)/4, $0.001388888888888889
DATA f32c6<>+20(SB)/4, $0.001388888888888889
DATA f32c6<>+24(SB)/4, $0.001388888888888889
DATA f32c6<>+28(SB)/4, $0.001388888888888889
GLOBL f32c6<>(SB), RODATA|NOPTR, $32

DATA f32c5<>+0(SB)/4, $0.008333333333333333
DATA f32c5<>+4(SB)/4, $0.008333333333333333
DATA f32c5<>+8(SB)/4, $0.008333333333333333
DATA f32c5<>+12(SB)/4, $0.008333333333333333
DATA f32c5<>+16(SB)/4, $0.008333333333333333
DATA f32c5<>+20(SB)/4, $0.008333333333333333
DATA f32c5<>+24(SB)/4, $0.008333333333333333
DATA f32c5<>+28(SB)/4, $0.008333333333333333
GLOBL f32c5<>(SB), RODATA|NOPTR, $32

DATA f32c4<>+0(SB)/4, $0.041666666666666664
DATA f32c4<>+4(SB)/4, $0.041666666666666664
DATA f32c4<>+8(SB)/4, $0.041666666666666664
DATA f32c4<>+12(SB)/4, $0.041666666666666664
DATA f32c4<>+16(SB)/4, $0.041666666666666664
DATA f32c4<>+20(SB)/4, $0.041666666666666664
DATA f32c4<>+24(SB)/4, $0.041666666666666664
DATA f32c4<>+28(SB)/4, $0.041666666666666664
GLOBL f32c4<>(SB), RODATA|NOPTR, $32

DATA f32c3<>+0(SB)/4, $0.16666666666666666
DATA f32c3<>+4(SB)/4, $0.16666666666666666
DATA f32c3<>+8(SB)/4, $0.16666666666666666
DATA f32c3<>+12(SB)/4, $0.16666666666666666
DATA f32c3<>+16(SB)/4, $0.16666666666666666
DATA f32c3<>+20(SB)/4, $0.16666666666666666
DATA f32c3<>+24(SB)/4, $0.16666666666666666
DATA f32c3<>+28(SB)/4, $0.16666666666666666
GLOBL f32c3<>(SB), RODATA|NOPTR, $32

DATA f32half<>+0(SB)/4, $0.5
DATA f32half<>+4(SB)/4, $0.5
DATA f32half<>+8(SB)/4, $0.5
DATA f32half<>+12(SB)/4, $0.5
DATA f32half<>+16(SB)/4, $0.5
DATA f32half<>+20(SB)/4, $0.5
DATA f32half<>+24(SB)/4, $0.5
DATA f32half<>+28(SB)/4, $0.5
GLOBL f32half<>(SB), RODATA|NOPTR, $32

DATA f32one<>+0(SB)/4, $1.0
DATA f32one<>+4(SB)/4, $1.0
DATA f32one<>+8(SB)/4, $1.0
DATA f32one<>+12(SB)/4, $1.0
DATA f32one<>+16(SB)/4, $1.0
DATA f32one<>+20(SB)/4, $1.0
DATA f32one<>+24(SB)/4, $1.0
DATA f32one<>+28(SB)/4, $1.0
GLOBL f32one<>(SB), RODATA|NOPTR, $32

DATA f32hi<>+0(SB)/4, $88.5
DATA f32hi<>+4(SB)/4, $88.5
DATA f32hi<>+8(SB)/4, $88.5
DATA f32hi<>+12(SB)/4, $88.5
DATA f32hi<>+16(SB)/4, $88.5
DATA f32hi<>+20(SB)/4, $88.5
DATA f32hi<>+24(SB)/4, $88.5
DATA f32hi<>+28(SB)/4, $88.5
GLOBL f32hi<>(SB), RODATA|NOPTR, $32

DATA f32lo<>+0(SB)/4, $-87.0
DATA f32lo<>+4(SB)/4, $-87.0
DATA f32lo<>+8(SB)/4, $-87.0
DATA f32lo<>+12(SB)/4, $-87.0
DATA f32lo<>+16(SB)/4, $-87.0
DATA f32lo<>+20(SB)/4, $-87.0
DATA f32lo<>+24(SB)/4, $-87.0
DATA f32lo<>+28(SB)/4, $-87.0
GLOBL f32lo<>(SB), RODATA|NOPTR, $32

DATA f32inf<>+0(SB)/4, $0x7F800000
DATA f32inf<>+4(SB)/4, $0x7F800000
DATA f32inf<>+8(SB)/4, $0x7F800000
DATA f32inf<>+12(SB)/4, $0x7F800000
DATA f32inf<>+16(SB)/4, $0x7F800000
DATA f32inf<>+20(SB)/4, $0x7F800000
DATA f32inf<>+24(SB)/4, $0x7F800000
DATA f32inf<>+28(SB)/4, $0x7F800000
GLOBL f32inf<>(SB), RODATA|NOPTR, $32

DATA f32nine<>+0(SB)/4, $9.0
DATA f32nine<>+4(SB)/4, $9.0
DATA f32nine<>+8(SB)/4, $9.0
DATA f32nine<>+12(SB)/4, $9.0
DATA f32nine<>+16(SB)/4, $9.0
DATA f32nine<>+20(SB)/4, $9.0
DATA f32nine<>+24(SB)/4, $9.0
DATA f32nine<>+28(SB)/4, $9.0
GLOBL f32nine<>(SB), RODATA|NOPTR, $32

DATA f32sign<>+0(SB)/4, $0x80000000
DATA f32sign<>+4(SB)/4, $0x80000000
DATA f32sign<>+8(SB)/4, $0x80000000
DATA f32sign<>+12(SB)/4, $0x80000000
DATA f32sign<>+16(SB)/4, $0x80000000
DATA f32sign<>+20(SB)/4, $0x80000000
DATA f32sign<>+24(SB)/4, $0x80000000
DATA f32sign<>+28(SB)/4, $0x80000000
GLOBL f32sign<>(SB), RODATA|NOPTR, $32

// EXPF32CORE: Y1 = fastexp(Y0) per lane with range clamps; preserves
// Y0; clobbers Y2, Y3. Y0 must be the (possibly negated) exp argument.
#define EXPF32CORE \
	VMULPS f32log2e<>(SB), Y0, Y1 \
	VCVTPS2DQ Y1, Y2              \ // n
	VCVTDQ2PS Y2, Y3              \
	VSUBPS Y3, Y1, Y1             \ // t - n
	VMULPS f32ln2<>(SB), Y1, Y1   \ // z
	VMOVUPS f32c6<>(SB), Y3       \
	VFMADD213PS f32c5<>(SB), Y1, Y3 \
	VFMADD213PS f32c4<>(SB), Y1, Y3 \
	VFMADD213PS f32c3<>(SB), Y1, Y3 \
	VFMADD213PS f32half<>(SB), Y1, Y3 \
	VFMADD213PS f32one<>(SB), Y1, Y3 \
	VFMADD213PS f32one<>(SB), Y1, Y3 \ // p ≈ e^z
	VPSLLD $23, Y2, Y2            \
	VPADDD Y2, Y3, Y3             \ // p · 2^n via exponent-field add
	VCMPPS $0x1E, f32hi<>(SB), Y0, Y1 \ // x > 88.5 → +Inf
	VBLENDVPS Y1, f32inf<>(SB), Y3, Y3 \
	VCMPPS $0x11, f32lo<>(SB), Y0, Y1 \ // x < -87 → 0
	VXORPS Y2, Y2, Y2             \
	VBLENDVPS Y1, Y2, Y3, Y3      \
	VCMPPS $0x03, Y0, Y0, Y1      \ // NaN → x
	VBLENDVPS Y1, Y0, Y3, Y1      // result in Y1

// func vexpf8(dst, x []float32) int
// dst[i] = FastExp32-style e^x for the leading 8·⌊n/8⌋ elements;
// returns that count. Total (all inputs handled).
TEXT ·vexpf8(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), CX

	XORQ AX, AX
fexploop:
	LEAQ 8(AX), R9
	CMPQ R9, CX
	JGT  fexpdone
	VMOVUPS (SI)(AX*4), Y0
	EXPF32CORE
	VMOVUPS Y1, (DI)(AX*4)
	MOVQ R9, AX
	JMP  fexploop
fexpdone:
	MOVQ AX, ret+48(FP)
	VZEROUPPER
	RET

// func vsigmoidf8(dst, x []float32) int
// dst[i] = 1/(1+e^-x), fast-f32 flavor, leading 8·⌊n/8⌋ elements.
TEXT ·vsigmoidf8(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), CX

	XORQ AX, AX
fsigloop:
	LEAQ 8(AX), R9
	CMPQ R9, CX
	JGT  fsigdone
	VMOVUPS (SI)(AX*4), Y0
	VXORPS f32sign<>(SB), Y0, Y0 // -x
	EXPF32CORE
	VADDPS f32one<>(SB), Y1, Y2  // 1 + e
	VMOVUPS f32one<>(SB), Y3
	VDIVPS Y2, Y3, Y1            // 1/(1+e)
	VMOVUPS Y1, (DI)(AX*4)
	MOVQ R9, AX
	JMP  fsigloop
fsigdone:
	MOVQ AX, ret+48(FP)
	VZEROUPPER
	RET

// func vtanhf8(dst, x []float32) int
// dst[i] = (e^{2x}-1)/(e^{2x}+1) with ±1 saturation beyond |x| = 9,
// leading 8·⌊n/8⌋ elements.
TEXT ·vtanhf8(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), CX

	XORQ AX, AX
ftanhloop:
	LEAQ 8(AX), R9
	CMPQ R9, CX
	JGT  ftanhdone
	VMOVUPS (SI)(AX*4), Y8       // x
	VADDPS Y8, Y8, Y0            // 2x
	EXPF32CORE
	VSUBPS f32one<>(SB), Y1, Y2  // e - 1
	VADDPS f32one<>(SB), Y1, Y3  // e + 1
	VDIVPS Y3, Y2, Y4
	VCMPPS $0x1E, f32nine<>(SB), Y8, Y1 // x > 9 → 1
	VBLENDVPS Y1, f32one<>(SB), Y4, Y4
	VMOVUPS f32nine<>(SB), Y2
	VXORPS f32sign<>(SB), Y2, Y2        // -9
	VCMPPS $0x11, Y2, Y8, Y1            // x < -9 → -1
	VMOVUPS f32one<>(SB), Y3
	VXORPS f32sign<>(SB), Y3, Y3        // -1
	VBLENDVPS Y1, Y3, Y4, Y4
	VCMPPS $0x03, Y8, Y8, Y1            // NaN → x
	VBLENDVPS Y1, Y8, Y4, Y4
	VMOVUPS Y4, (DI)(AX*4)
	MOVQ R9, AX
	JMP  ftanhloop
ftanhdone:
	MOVQ AX, ret+48(FP)
	VZEROUPPER
	RET
