package difftest

import (
	"math"
	"testing"

	"deepqueuenet/internal/linalg"
	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/tensor"
)

// TestLinalgTensorParity pins the cross-package numeric contract: the
// nested-slice linalg.MulInto (which skips exact-zero a terms) and the
// flat blocked tensor.MatMulInto (which never skips) must agree bit for
// bit on finite inputs — the "+0 accumulator absorbs ±0 terms" argument
// in blocked.go, proven over random shapes with exact zeros and -0
// sprinkled in. The training stack is on linalg, inference on tensor;
// this sweep is what lets them share golden expectations.
func TestLinalgTensorParity(t *testing.T) {
	withBackends(t, func(t *testing.T) {
		r := rng.New(808)
		for trial := 0; trial < 40; trial++ {
			n := 1 + r.Intn(24)
			k := 1 + r.Intn(24)
			m := 1 + r.Intn(40)
			a := randNested(r, n, k)
			b := randNested(r, k, m)

			dst := linalg.Zeros(n, m)
			linalg.MulInto(dst, a, b)

			_, _, aflat := linalg.Flatten(a)
			_, _, bflat := linalg.Flatten(b)
			ta := &tensor.Matrix{Rows: n, Cols: k, Data: aflat}
			tb := &tensor.Matrix{Rows: k, Cols: m, Data: bflat}
			td := tensor.New(n, m)
			tensor.MatMulInto(td, ta, tb)

			for i := 0; i < n; i++ {
				for j := 0; j < m; j++ {
					got := td.At(i, j)
					want := dst[i][j]
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("trial %d (%dx%dx%d): element (%d,%d) differs: tensor %v linalg %v",
							trial, n, k, m, i, j, got, want)
					}
				}
			}
		}
	})
}

// randNested draws a rows×cols nested matrix with exact zeros and
// negative zeros sprinkled in, so linalg's sparsity-skip branches and
// the no-skip blocked kernels are differentially exercised.
func randNested(r *rng.Rand, rows, cols int) [][]float64 {
	m := linalg.Zeros(rows, cols)
	for i := range m {
		for j := range m[i] {
			switch r.Intn(6) {
			case 0:
				m[i][j] = 0
			case 1:
				m[i][j] = math.Copysign(0, -1)
			default:
				m[i][j] = r.Uniform(-3, 3)
			}
		}
	}
	return m
}
