package difftest

import (
	"math"
	"testing"

	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/tensor"
)

// FuzzMatMulKernels fuzzes shapes and value mixes through the blocked
// kernels with the naive references as the oracle, under both asm
// settings. The spice byte gates special values (NaN/±Inf/denormals)
// into the operands; every kernel must stay bit-identical to the
// reference regardless. Seed corpus in testdata/fuzz/FuzzMatMulKernels;
// nightly.yml runs an extended campaign.
func FuzzMatMulKernels(f *testing.F) {
	f.Add(byte(1), byte(1), byte(1), uint64(1), byte(0))
	f.Add(byte(4), byte(3), byte(9), uint64(7), byte(0))
	f.Add(byte(5), byte(8), byte(16), uint64(11), byte(1))
	f.Add(byte(32), byte(20), byte(48), uint64(3), byte(0))
	f.Add(byte(7), byte(2), byte(17), uint64(99), byte(3))
	f.Fuzz(func(t *testing.T, mb, kb, nb byte, seed uint64, spice byte) {
		m := int(mb % 33)
		k := int(kb % 33)
		n := int(nb % 65)
		r := rng.New(seed)

		a := tensor.New(m, k)
		b := tensor.New(k, n)
		fillRand(r, a, spice&1 != 0)
		fillRand(r, b, spice&2 != 0)

		want := tensor.New(m, n)
		RefMatMul(want, a, b)
		wantT := tensor.New(m, m)
		RefMatMulT(wantT, a, a)

		for _, asm := range []bool{false, true} {
			prev := tensor.SetAsmKernels(asm)
			got := tensor.New(m, n)
			tensor.MatMulInto(got, a, b)
			p := tensor.Pack(b)
			gotP := tensor.New(m, n)
			tensor.MatMulPackedInto(gotP, a, p)
			gotT := tensor.New(m, m)
			tensor.MatMulTInto(gotT, a, a)
			tensor.SetAsmKernels(prev)

			for i := range want.Data {
				if !sameBits(got.Data[i], want.Data[i]) {
					t.Fatalf("asm=%v MatMulInto elem %d: got %v want %v (shape %dx%dx%d)", asm, i, got.Data[i], want.Data[i], m, k, n)
				}
				if !sameBits(gotP.Data[i], want.Data[i]) {
					t.Fatalf("asm=%v MatMulPackedInto elem %d: got %v want %v (shape %dx%dx%d)", asm, i, gotP.Data[i], want.Data[i], m, k, n)
				}
			}
			for i := range wantT.Data {
				if !sameBits(gotT.Data[i], wantT.Data[i]) {
					t.Fatalf("asm=%v MatMulTInto elem %d: got %v want %v", asm, i, gotT.Data[i], wantT.Data[i])
				}
			}
		}
	})
}

// FuzzQuantRoundTrip fuzzes weight matrices through QuantizeMat and
// checks the int8 round-trip invariants: codes stay in [-127, 127], the
// per-row absmax scale reconstructs every weight within half a
// quantization step (plus float32 scale rounding), and the packed-panel
// GEMM agrees with a float64 matmul over the dequantized weights within
// float32 accumulation error. Seed corpus in
// testdata/fuzz/FuzzQuantRoundTrip.
func FuzzQuantRoundTrip(f *testing.F) {
	f.Add(byte(1), byte(1), uint64(1), 1.0)
	f.Add(byte(8), byte(12), uint64(5), 0.01)
	f.Add(byte(20), byte(48), uint64(9), 100.0)
	f.Add(byte(3), byte(17), uint64(42), 1e-6)
	f.Fuzz(func(t *testing.T, kb, nb byte, seed uint64, mag float64) {
		k := 1 + int(kb%48)
		n := 1 + int(nb%64)
		if !(mag > 1e-30 && mag < 1e30) { // keep weights finite and sane
			mag = 1
		}
		r := rng.New(seed)
		w := tensor.New(k, n)
		for i := range w.Data {
			w.Data[i] = r.Uniform(-mag, mag)
			if r.Intn(9) == 0 {
				w.Data[i] = 0
			}
		}

		q := tensor.QuantizeMat(w)
		for kk := 0; kk < k; kk++ {
			row := w.Row(kk)
			absmax := 0.0
			for _, v := range row {
				if av := math.Abs(v); av > absmax {
					absmax = av
				}
			}
			step := absmax / 127
			for j, v := range row {
				deq := q.DequantAt(kk, j)
				// Half a step from round-to-nearest, plus the float32
				// rounding of the stored scale amplified by |Q| ≤ 127.
				tol := 0.5*step + 127*step*1.2e-7 + 1e-300
				if math.Abs(v-deq) > tol {
					t.Fatalf("row %d col %d: |%v - %v| > %v (absmax %v)", kk, j, v, deq, tol, absmax)
				}
			}
		}

		// GEMM over the packed dequantized panels vs a float64 reference
		// over DequantAt values: bounded by float32 accumulation error.
		m := 1 + int(seed%5)
		a := tensor.NewF32(m, k)
		for i := range a.Data {
			a.Data[i] = float32(r.Uniform(-2, 2))
		}
		dst := tensor.NewF32(m, n)
		for _, asm := range []bool{false, true} {
			prev := tensor.SetAsmKernels(asm)
			tensor.QMatMulInto(dst, a, q)
			tensor.SetAsmKernels(prev)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					var ref, magSum float64
					for kk := 0; kk < k; kk++ {
						term := float64(a.At(i, kk)) * q.DequantAt(kk, j)
						ref += term
						magSum += math.Abs(term)
					}
					tol := 2 * float64(k+2) * 1.2e-7 * magSum
					if d := math.Abs(float64(dst.At(i, j)) - ref); d > tol+1e-30 {
						t.Fatalf("asm=%v QMatMulInto (%d,%d): |%v - %v| = %v > %v", asm, i, j, dst.At(i, j), ref, d, tol)
					}
				}
			}
		}
	})
}
