package difftest

import (
	"math"
	"testing"

	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/tensor"
)

// transcendInputs builds the adversarial float64 input set for the
// slice transcendentals: broad random magnitudes plus every boundary
// the vector kernels branch on — the |x| ≤ 704 exp safety bound, the
// tanh 0.625 polynomial/exp split and its ±1 saturation threshold,
// signed zero, infinities, NaN, denormals, and overflow-region values.
func transcendInputs() []float64 {
	r := rng.New(1)
	xs := make([]float64, 0, 100100)
	for i := 0; i < 100000; i++ {
		switch i % 5 {
		case 0:
			xs = append(xs, r.Uniform(-10, 10))
		case 1:
			xs = append(xs, r.Uniform(-750, 750))
		case 2:
			xs = append(xs, r.Uniform(-1, 1))
		case 3:
			xs = append(xs, r.Uniform(-5e-4, 5e-4))
		default:
			xs = append(xs, r.Uniform(-50, 50))
		}
	}
	return append(xs, 0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(),
		709.78, -745.1, 704.0001, -704.0001, 704.0, -704.0,
		44.014845965556524, -44.014845965556524, 0.625, -0.625,
		5e-324, -5e-324, 1e-310, 1e308, -1e308, 88.02, -88.02)
}

// TestSliceTranscendentalsBitIdentical proves ExpSlice, SigmoidSlice,
// and TanhSlice are bit-identical to per-element math.Exp / Sigmoid /
// math.Tanh on every input class, with the vector kernels both enabled
// and disabled. This is the contract that lets the fused BLSTM gate
// kernel and SoftmaxRows use the slice forms without perturbing the
// golden traces.
func TestSliceTranscendentalsBitIdentical(t *testing.T) {
	xs := transcendInputs()
	withBackends(t, func(t *testing.T) {
		dst := make([]float64, len(xs))
		tensor.ExpSlice(dst, xs)
		for i, x := range xs {
			if want := math.Exp(x); math.Float64bits(dst[i]) != math.Float64bits(want) {
				t.Fatalf("ExpSlice(%g): got %#016x want %#016x", x, math.Float64bits(dst[i]), math.Float64bits(want))
			}
		}
		tensor.SigmoidSlice(dst, xs)
		for i, x := range xs {
			if want := tensor.Sigmoid(x); math.Float64bits(dst[i]) != math.Float64bits(want) {
				t.Fatalf("SigmoidSlice(%g): got %#016x want %#016x", x, math.Float64bits(dst[i]), math.Float64bits(want))
			}
		}
		tensor.TanhSlice(dst, xs)
		for i, x := range xs {
			if want := math.Tanh(x); math.Float64bits(dst[i]) != math.Float64bits(want) {
				t.Fatalf("TanhSlice(%g): got %#016x want %#016x", x, math.Float64bits(dst[i]), math.Float64bits(want))
			}
		}
	})
}

// TestSliceTranscendentalsAliasInPlace: dst may alias x exactly; the
// in-place form must produce the same bits as the out-of-place form.
func TestSliceTranscendentalsAliasInPlace(t *testing.T) {
	xs := transcendInputs()[:4096]
	withBackends(t, func(t *testing.T) {
		out := make([]float64, len(xs))
		tensor.TanhSlice(out, xs)
		inPlace := append([]float64(nil), xs...)
		tensor.TanhSlice(inPlace, inPlace)
		bitsEqualSlice(t, "TanhSlice in-place", inPlace, out)

		tensor.ExpSlice(out, xs)
		inPlace = append([]float64(nil), xs...)
		tensor.ExpSlice(inPlace, inPlace)
		bitsEqualSlice(t, "ExpSlice in-place", inPlace, out)
	})
}

// relErr32 is |got-want|/|want| with want taken from float64 truth.
func relErr32(got float32, want float64) float64 {
	if want == 0 {
		return math.Abs(float64(got))
	}
	return math.Abs(float64(got)-want) / math.Abs(want)
}

// TestFastF32Budgets bounds the quantized path's fast float32
// transcendentals against float64 truth. These kernels are accuracy-
// gated, not bit-gated: the budgets below are a few float32 ULP for
// exp, and absolute 1e-6-scale for the saturating sigmoid/tanh —
// comfortably inside the int8 weight-quantization error the golden
// accuracy gates already allow for. Both the 8-lane vector form and the
// scalar tail must meet the same budget (they may differ from each
// other by low-order ULPs).
func TestFastF32Budgets(t *testing.T) {
	r := rng.New(5)
	xs := make([]float32, 0, 50020)
	for i := 0; i < 50000; i++ {
		switch i % 3 {
		case 0:
			xs = append(xs, float32(r.Uniform(-10, 10)))
		case 1:
			xs = append(xs, float32(r.Uniform(-80, 80)))
		default:
			xs = append(xs, float32(r.Uniform(-0.5, 0.5)))
		}
	}
	xs = append(xs, 0, 1, -1, 9.0001, -9.0001, 88.4, -86.9, 100, -100,
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()))
	withBackends(t, func(t *testing.T) {
		dst := make([]float32, len(xs))
		tensor.FastExpSlice(dst, xs)
		for i, x := range xs {
			fx := float64(x)
			got := dst[i]
			switch {
			case math.IsNaN(fx):
				if got == got {
					t.Fatalf("FastExp(NaN) = %v, want NaN", got)
				}
			case fx > 88.5:
				if !math.IsInf(float64(got), 1) {
					t.Fatalf("FastExp(%g) = %v, want +Inf", fx, got)
				}
			case fx < -87:
				if got != 0 {
					t.Fatalf("FastExp(%g) = %v, want 0", fx, got)
				}
			default:
				// The range reduction computes 2^t for t = fl(x·log2e), so
				// the relative error grows with |x|: |t|·eps32·ln2 from the
				// rounding of t, plus a few ULP from the polynomial. Budget
				// both terms explicitly.
				budget := 5e-7 + 1e-7*math.Abs(fx)
				if e := relErr32(got, math.Exp(fx)); e > budget {
					t.Fatalf("FastExp(%g): rel err %.3g > %.3g (got %v)", fx, e, budget, got)
				}
			}
		}
		tensor.FastSigmoidSlice(dst, xs)
		for i, x := range xs {
			fx := float64(x)
			if math.IsNaN(fx) {
				continue // NaN propagates through the exp; sign handled there
			}
			want := 1 / (1 + math.Exp(-fx))
			if d := math.Abs(float64(dst[i]) - want); d > 1e-6 {
				t.Fatalf("FastSigmoid(%g): abs err %.3g > 1e-6 (got %v want %v)", fx, d, dst[i], want)
			}
		}
		tensor.FastTanhSlice(dst, xs)
		for i, x := range xs {
			fx := float64(x)
			if math.IsNaN(fx) {
				if dst[i] == dst[i] {
					t.Fatalf("FastTanh(NaN) = %v, want NaN", dst[i])
				}
				continue
			}
			want := math.Tanh(fx)
			if d := math.Abs(float64(dst[i]) - want); d > 1e-6 {
				t.Fatalf("FastTanh(%g): abs err %.3g > 1e-6 (got %v want %v)", fx, d, dst[i], want)
			}
		}
	})
}
