package difftest

import (
	"testing"

	"deepqueuenet/internal/nn"
	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/tensor"
)

// TestKernelsZeroSteadyStateAllocs pins the steady-state allocation
// count of every hot-path kernel at exactly zero: once destinations,
// packs, and quantized panels exist, a forward window must not touch
// the heap. A single stray alloc here multiplies by windows × devices ×
// IRSA iterations in a real run, so the pin is 0, not "small".
func TestKernelsZeroSteadyStateAllocs(t *testing.T) {
	r := rng.New(707)
	a := tensor.New(32, 20)
	b := tensor.New(20, 48)
	fillRand(r, a, false)
	fillRand(r, b, false)
	p := tensor.Pack(b)
	dst := tensor.New(32, 48)
	bias := tensor.New(1, 48)
	q := tensor.QuantizeMat(b)
	af := tensor.NewF32(32, 20)
	af.CopyFromF64(a)
	dstf := tensor.NewF32(32, 48)
	h := make([]float64, 20)
	acc := make([]float64, 48)
	hf := make([]float32, 20)
	accf := make([]float32, 48)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = r.Uniform(-5, 5)
	}
	ys := make([]float64, 4096)
	zr := make([]float64, 64)
	gb := make([]float64, 64)
	gc := make([]float64, 16)
	gh := make([]float64, 16)
	dstT := tensor.New(32, 32)

	pins := []struct {
		name string
		fn   func()
	}{
		{"MatMulInto", func() { tensor.MatMulInto(dst, a, b) }},
		{"MatMulPackedInto", func() { tensor.MatMulPackedInto(dst, a, p) }},
		{"MatMulPackedBiasActInto", func() { tensor.MatMulPackedBiasActInto(dst, a, p, bias, tensor.ActTanh) }},
		{"MatMulTInto", func() { tensor.MatMulTInto(dstT, a, a) }},
		{"AddVecMatInto", func() { tensor.AddVecMatInto(acc, h, b) }},
		{"PackFrom reuse", func() { p.PackFrom(b) }},
		{"ExpSlice", func() { tensor.ExpSlice(ys, xs) }},
		{"SigmoidSlice", func() { tensor.SigmoidSlice(ys, xs) }},
		{"TanhSlice", func() { tensor.TanhSlice(ys, xs) }},
		{"GatesInto", func() { nn.GatesInto(zr, gb, gc, gh) }},
		{"QMatMulInto", func() { tensor.QMatMulInto(dstf, af, q) }},
		{"QMatMulBiasActInto", func() { tensor.QMatMulBiasActInto(dstf, af, q, nil, tensor.ActTanh) }},
		{"QAddVecMatInto", func() { tensor.QAddVecMatInto(accf, hf, q) }},
	}
	for _, pin := range pins {
		pin := pin
		t.Run(pin.name, func(t *testing.T) {
			if allocs := testing.AllocsPerRun(20, pin.fn); allocs != 0 {
				t.Fatalf("%s allocated %.1f times per run; want 0", pin.name, allocs)
			}
		})
	}
}
