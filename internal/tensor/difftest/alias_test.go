package difftest

import (
	"strings"
	"testing"

	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/tensor"
)

// TestAliasPanicSweep proves every *Into kernel that reads an input
// after writing its destination rejects dst sharing storage with that
// input — including the blocked/packed kernels, the fused bias+act
// forms, the LSTM recurrence update, and the quantized backend. A
// silent alias here would corrupt results only on some shapes, which is
// exactly the bug class a panic converts into an immediate failure.
func TestAliasPanicSweep(t *testing.T) {
	r := rng.New(606)
	sq := tensor.New(8, 8)
	other := tensor.New(8, 8)
	fillRand(r, sq, false)
	fillRand(r, other, false)
	pk := tensor.Pack(other)
	bias := tensor.New(1, 8)

	sqf := tensor.NewF32(8, 8)
	q := tensor.QuantizeMat(other)
	row := make([]float64, 8)
	rowf := make([]float32, 8)

	cases := []struct {
		name string
		call func()
	}{
		{"MatMulInto dst==a", func() { tensor.MatMulInto(sq, sq, other) }},
		{"MatMulInto dst==b", func() { tensor.MatMulInto(sq, other, sq) }},
		{"MatMulTInto dst==a", func() { tensor.MatMulTInto(sq, sq, other) }},
		{"MatMulTInto dst==b", func() { tensor.MatMulTInto(sq, other, sq) }},
		{"MatMulBiasActInto dst==a", func() { tensor.MatMulBiasActInto(sq, sq, other, bias, tensor.ActTanh) }},
		{"MatMulBiasActInto dst==w", func() { tensor.MatMulBiasActInto(sq, other, sq, bias, tensor.ActTanh) }},
		{"MatMulPackedInto dst==a", func() { tensor.MatMulPackedInto(sq, sq, pk) }},
		{"MatMulPackedBiasActInto dst==a", func() { tensor.MatMulPackedBiasActInto(sq, sq, pk, bias, tensor.ActSigmoid) }},
		{"AddVecMatInto dst==w", func() { tensor.AddVecMatInto(other.Row(0), row, other) }},
		{"AddVecMatInto dst==h", func() { tensor.AddVecMatInto(row, row, other) }},
		{"ReverseRowsInto dst==src", func() { tensor.ReverseRowsInto(sq, sq) }},
		{"ColSliceInto dst==src", func() { tensor.ColSliceInto(sq, sq, 0, 8) }},
		{"ConcatColsInto dst==a", func() {
			wide := tensor.New(8, 16)
			narrow := &tensor.Matrix{Rows: 8, Cols: 8, Data: wide.Data[:64]}
			tensor.ConcatColsInto(wide, narrow, other)
		}},
		{"QMatMulInto dst==a", func() { tensor.QMatMulInto(sqf, sqf, q) }},
		{"QMatMulBiasActInto dst==a", func() { tensor.QMatMulBiasActInto(sqf, sqf, q, nil, tensor.ActNone) }},
		{"QAddVecMatInto dst==h", func() { tensor.QAddVecMatInto(rowf, rowf, q) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				msg, ok := recover().(string)
				if !ok || !strings.Contains(msg, "aliases") {
					t.Fatalf("want alias panic, got %v", msg)
				}
			}()
			tc.call()
		})
	}
}
