// Package difftest is the differential kernel-equivalence layer gating
// the blocked GEMM, fused-gate, and vector-transcendental rewrites of
// internal/tensor and internal/nn.
//
// It holds the *naive reference kernels*: textbook triple loops with no
// zero-skip, no tiling, no assembly, and each output element's k terms
// accumulated in ascending order — the semantics every optimized kernel
// promises to reproduce bit for bit on the exact float64 path. The
// tests in this package sweep exhaustive small shapes and randomized
// large shapes (including NaN, ±Inf, and denormal values) through every
// backend combination (assembly microkernels on/off via
// tensor.SetAsmKernels, vector transcendentals on/off via
// tensor.SetVecKernels) and assert bitwise identity against these
// references; the fuzz targets extend the same oracle to
// adversarially-chosen shapes and values.
//
// The quantized path is *not* bit-gated — FMA and fast float32
// transcendentals are allowed there — so its tests here assert bounded
// error (quantization round-trip, fast-math ULP budgets) instead, and
// the end-to-end accuracy gates live with the golden scenarios at the
// repository root.
package difftest

import (
	"math"

	"deepqueuenet/internal/tensor"
)

// RefMatMul computes dst = a × b the naive way: for each output
// element, k ascending, one multiply and one add per term, no skips.
func RefMatMul(dst, a, b *tensor.Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("difftest: RefMatMul shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float64
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(k, j)
			}
			dst.Set(i, j, sum)
		}
	}
}

// RefMatMulT computes dst = a × bᵀ naively (k ascending per element).
func RefMatMulT(dst, a, b *tensor.Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("difftest: RefMatMulT shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var sum float64
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(j, k)
			}
			dst.Set(i, j, sum)
		}
	}
}

// RefAddVecMat computes dst += h × w naively: each dst element keeps
// its starting value and accumulates its k terms in ascending order.
func RefAddVecMat(dst, h []float64, w *tensor.Matrix) {
	if w.Rows != len(h) || w.Cols != len(dst) {
		panic("difftest: RefAddVecMat shape mismatch")
	}
	for j := range dst {
		c := dst[j]
		for k := range h {
			c += h[k] * w.At(k, j)
		}
		dst[j] = c
	}
}

// RefBiasAct applies the reference bias-add + activation to dst row by
// row: the scalar math.Exp/math.Tanh forms the fused kernels must
// reproduce exactly. bias may be nil.
func RefBiasAct(dst *tensor.Matrix, bias *tensor.Matrix, act tensor.ActKind) {
	for i := 0; i < dst.Rows; i++ {
		row := dst.Row(i)
		if bias != nil {
			for j, bv := range bias.Data {
				row[j] += bv
			}
		}
		for j, v := range row {
			row[j] = refAct(v, act)
		}
	}
}

func refAct(v float64, act tensor.ActKind) float64 {
	switch act {
	case tensor.ActTanh:
		return math.Tanh(v)
	case tensor.ActRelu:
		if v < 0 {
			return 0
		}
		return v
	case tensor.ActSigmoid:
		return 1 / (1 + math.Exp(-v))
	}
	return v
}

// RefGates is the scalar reference of nn.GatesInto: per element, bias
// add, sigmoid on the i/f/o blocks and tanh on the candidate block,
// then c' = f·c + i·g and h = o·tanh(c'), everything through scalar
// math.Exp/math.Tanh in the exact order the fused kernel documents.
func RefGates(zr, bias, c, h []float64) {
	H := len(h)
	if len(zr) != 4*H || len(bias) != 4*H || len(c) != H {
		panic("difftest: RefGates length mismatch")
	}
	for j, bv := range bias {
		zr[j] += bv
	}
	for j := 0; j < 3*H; j++ {
		zr[j] = 1 / (1 + math.Exp(-zr[j]))
	}
	for j := 3 * H; j < 4*H; j++ {
		zr[j] = math.Tanh(zr[j])
	}
	gi, gf, gout, gg := zr[:H], zr[H:2*H], zr[2*H:3*H], zr[3*H:]
	for k := 0; k < H; k++ {
		c[k] = gf[k]*c[k] + gi[k]*gg[k]
	}
	for k := 0; k < H; k++ {
		h[k] = gout[k] * math.Tanh(c[k])
	}
}
