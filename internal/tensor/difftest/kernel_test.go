package difftest

import (
	"fmt"
	"math"
	"testing"

	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/tensor"
)

// withBackends runs fn under every kernel backend combination the build
// supports: assembly microkernels on/off and vector transcendentals
// on/off. Settings are restored afterwards. On builds without a
// backend, SetAsmKernels/SetVecKernels(true) is a no-op, so the
// unsupported combinations just re-run the portable path.
func withBackends(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	for _, asm := range []bool{false, true} {
		for _, vec := range []bool{false, true} {
			name := fmt.Sprintf("asm=%v/vec=%v", asm, vec)
			t.Run(name, func(t *testing.T) {
				prevAsm := tensor.SetAsmKernels(asm)
				prevVec := tensor.SetVecKernels(vec)
				defer func() {
					tensor.SetAsmKernels(prevAsm)
					tensor.SetVecKernels(prevVec)
				}()
				fn(t)
			})
		}
	}
}

// specials are the adversarial float64 values sprinkled into the
// randomized sweeps: NaN, both infinities, signed zero, denormals, and
// huge magnitudes. The blocked kernels never skip or branch on values,
// so per-element evaluation order — and therefore every rounding
// decision, signed zero, and infinity — must match the naive reference
// exactly; see sameBits for the one carve-out (colliding NaN payloads).
var specials = []float64{
	math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1),
	5e-324, -5e-324, 1e-310, 1e308, -1e308,
}

// fillRand fills m with uniform values and, when spice is true, a
// sprinkling of exact zeros and special values.
func fillRand(r *rng.Rand, m *tensor.Matrix, spice bool) {
	for i := range m.Data {
		m.Data[i] = r.Uniform(-2, 2)
		if !spice {
			continue
		}
		switch r.Intn(12) {
		case 0:
			m.Data[i] = 0
		case 1:
			m.Data[i] = specials[r.Intn(len(specials))]
		}
	}
}

// sameBits is the kernel-equivalence relation: identical bits, except
// that any NaN matches any NaN. When an accumulator and a term are both
// NaN, which payload the addition propagates depends on the operand
// order the compiler (or assembler) happened to pick — IEEE 754 and the
// Go spec leave it unspecified — so payloads of *colliding* NaNs are
// outside the contract. What is pinned: NaN-ness itself (a NaN may
// never become a number or vice versa) and the exact bits of every
// non-NaN result, including signed zeros and infinities.
func sameBits(got, want float64) bool {
	if math.IsNaN(want) {
		return math.IsNaN(got)
	}
	return math.Float64bits(got) == math.Float64bits(want)
}

func bitsEqualMat(t *testing.T, op string, got, want *tensor.Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape (%d,%d) != (%d,%d)", op, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if !sameBits(got.Data[i], want.Data[i]) {
			t.Fatalf("%s: element %d differs bitwise: got %v (%#016x) want %v (%#016x)",
				op, i, got.Data[i], math.Float64bits(got.Data[i]), want.Data[i], math.Float64bits(want.Data[i]))
		}
	}
}

func bitsEqualSlice(t *testing.T, op string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", op, len(got), len(want))
	}
	for i := range want {
		if !sameBits(got[i], want[i]) {
			t.Fatalf("%s: element %d differs bitwise: got %v want %v", op, i, got[i], want[i])
		}
	}
}

// checkMatMulFamily runs every matmul-family kernel on one (m, k, n)
// shape against the naive references, bitwise.
func checkMatMulFamily(t *testing.T, r *rng.Rand, m, k, n int, spice bool) {
	t.Helper()
	a := tensor.New(m, k)
	b := tensor.New(k, n)
	bt := tensor.New(n, k)
	fillRand(r, a, spice)
	fillRand(r, b, spice)
	fillRand(r, bt, spice)

	want := tensor.New(m, n)
	RefMatMul(want, a, b)

	got := tensor.New(m, n)
	tensor.MatMulInto(got, a, b)
	bitsEqualMat(t, "MatMulInto", got, want)

	p := tensor.Pack(b)
	got.Zero()
	tensor.MatMulPackedInto(got, a, p)
	bitsEqualMat(t, "MatMulPackedInto", got, want)

	wantT := tensor.New(m, n)
	RefMatMulT(wantT, a, bt)
	gotT := tensor.New(m, n)
	tensor.MatMulTInto(gotT, a, bt)
	bitsEqualMat(t, "MatMulTInto", gotT, wantT)

	// Fused bias+activation, packed and unpacked, every activation kind.
	bias := tensor.New(1, n)
	fillRand(r, bias, spice)
	for _, act := range []tensor.ActKind{tensor.ActNone, tensor.ActTanh, tensor.ActRelu, tensor.ActSigmoid} {
		wantBA := tensor.New(m, n)
		RefMatMul(wantBA, a, b)
		RefBiasAct(wantBA, bias, act)

		gotBA := tensor.New(m, n)
		tensor.MatMulBiasActInto(gotBA, a, b, bias, act)
		bitsEqualMat(t, fmt.Sprintf("MatMulBiasActInto(act=%d)", act), gotBA, wantBA)

		gotBA.Zero()
		tensor.MatMulPackedBiasActInto(gotBA, a, p, bias, act)
		bitsEqualMat(t, fmt.Sprintf("MatMulPackedBiasActInto(act=%d)", act), gotBA, wantBA)
	}

	// The beta=1 LSTM recurrence row update.
	h := make([]float64, k)
	for i := range h {
		h[i] = r.Uniform(-2, 2)
	}
	dst := make([]float64, n)
	for i := range dst {
		dst[i] = r.Uniform(-2, 2)
	}
	wantV := append([]float64(nil), dst...)
	RefAddVecMat(wantV, h, b)
	tensor.AddVecMatInto(dst, h, b)
	bitsEqualSlice(t, "AddVecMatInto", dst, wantV)
}

// TestKernelsExhaustiveSmallShapes sweeps every shape with M,K ≤ 6 and
// N ≤ 17 (two full 8-wide panels plus a partial) through the whole
// matmul family under every backend, asserting bitwise identity with
// the naive references. Small shapes hit every tail: empty dimensions,
// sub-panel N, the 4-row asm block remainder, and the zero-padded last
// panel.
func TestKernelsExhaustiveSmallShapes(t *testing.T) {
	withBackends(t, func(t *testing.T) {
		r := rng.New(101)
		for m := 0; m <= 6; m++ {
			for k := 0; k <= 6; k++ {
				for n := 0; n <= 17; n++ {
					checkMatMulFamily(t, r, m, k, n, false)
				}
			}
		}
	})
}

// TestKernelsRandomLargeShapes drives randomized larger shapes — deep
// enough to cross several panels and row blocks — with special values
// (NaN, ±Inf, denormals, -0) sprinkled in.
func TestKernelsRandomLargeShapes(t *testing.T) {
	withBackends(t, func(t *testing.T) {
		r := rng.New(202)
		for trial := 0; trial < 12; trial++ {
			m := 1 + r.Intn(48)
			k := 1 + r.Intn(48)
			n := 1 + r.Intn(96)
			checkMatMulFamily(t, r, m, k, n, trial >= 4)
		}
	})
}

// TestPTMLayerShapes pins the exact shapes the PTM forward pass runs in
// production (embed dense, BLSTM input GEMMs, attention QKV, head
// output), so the hot path's own dimensions are covered by name.
func TestPTMLayerShapes(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{32, 14, 12},  // embed dense
		{32, 12, 64},  // BLSTM1 input GEMM (4*hidden columns)
		{32, 32, 40},  // BLSTM2 input GEMM
		{32, 20, 48},  // attention QKV (2*heads*dk + heads*dv)
		{32, 16, 16},  // attention output
		{1, 16, 1},    // readout dense
	}
	withBackends(t, func(t *testing.T) {
		r := rng.New(303)
		for _, s := range shapes {
			checkMatMulFamily(t, r, s.m, s.k, s.n, false)
		}
	})
}
