package difftest

import (
	"math"
	"testing"

	"deepqueuenet/internal/nn"
	"deepqueuenet/internal/rng"
	"deepqueuenet/internal/tensor"
)

// TestGatesIntoMatchesReference gates the fused BLSTM gate kernel: for
// random pre-activations (including saturating magnitudes), nn.GatesInto
// must produce the same cell and hidden state bits as the scalar
// reference, with the vector transcendentals both on and off. Bitwise
// identity is the strictest possible ULP budget (0 ULP) — the fused
// kernel reorders nothing per element, it only blocks the loops.
func TestGatesIntoMatchesReference(t *testing.T) {
	withBackends(t, func(t *testing.T) {
		r := rng.New(404)
		for _, H := range []int{1, 3, 8, 16, 10, 33} {
			for trial := 0; trial < 20; trial++ {
				zr := make([]float64, 4*H)
				bias := make([]float64, 4*H)
				c := make([]float64, H)
				h := make([]float64, H)
				for j := range zr {
					zr[j] = r.Uniform(-8, 8)
					bias[j] = r.Uniform(-2, 2)
				}
				if trial%4 == 0 {
					// Saturation: push some gates far into the flat regions.
					for j := range zr {
						if r.Intn(3) == 0 {
							zr[j] = r.Uniform(-60, 60)
						}
					}
				}
				for k := range c {
					c[k] = r.Uniform(-3, 3)
				}

				zrRef := append([]float64(nil), zr...)
				cRef := append([]float64(nil), c...)
				hRef := make([]float64, H)
				RefGates(zrRef, bias, cRef, hRef)

				nn.GatesInto(zr, bias, c, h)
				bitsEqualSlice(t, "GatesInto c", c, cRef)
				bitsEqualSlice(t, "GatesInto h", h, hRef)
			}
		}
	})
}

// TestQuantGateBudget bounds the quantized LSTM's gate math — the fast
// float32 sigmoid/tanh over the same block structure — against the
// float64 reference. This is the per-timestep error the end-to-end
// quant accuracy gates integrate over a whole stream.
func TestQuantGateBudget(t *testing.T) {
	r := rng.New(505)
	const H = 16
	for trial := 0; trial < 50; trial++ {
		zr := make([]float32, 4*H)
		zr64 := make([]float64, 4*H)
		for j := range zr {
			v := r.Uniform(-8, 8)
			zr[j] = float32(v)
			zr64[j] = float64(zr[j])
		}
		tensor.FastSigmoidSlice(zr[:3*H], zr[:3*H])
		tensor.FastTanhSlice(zr[3*H:], zr[3*H:])
		for j, v := range zr64 {
			var want float64
			if j < 3*H {
				want = 1 / (1 + math.Exp(-v))
			} else {
				want = math.Tanh(v)
			}
			if d := math.Abs(float64(zr[j]) - want); d > 1e-6 {
				t.Fatalf("quant gate elem %d (x=%g): abs err %.3g > 1e-6", j, v, d)
			}
		}
	}
}
