package tensor

import (
	"math"
	"strings"
	"testing"

	"deepqueuenet/internal/rng"
)

// sparseMat draws a seeded normal matrix with exact zeros sprinkled in
// so the sparsity-skip branches run.
func sparseMat(r *rng.Rand, rows, cols int) *Matrix {
	m := randMat(r, rows, cols)
	for i := range m.Data {
		if r.Intn(5) == 0 {
			m.Data[i] = 0
		}
	}
	return m
}

func bitsEqual(t *testing.T, op string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape (%d,%d) != (%d,%d)", op, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: element %d differs bitwise: got %v want %v", op, i, got.Data[i], want.Data[i])
		}
	}
}

// kernelShapes covers degenerate and general shapes for the property
// sweeps.
var kernelShapes = []struct{ n, k, m int }{
	{1, 1, 1}, {1, 5, 3}, {4, 1, 6}, {7, 3, 1}, {5, 8, 6}, {16, 15, 12},
}

// TestIntoKernelsMatchAllocating sweeps random shapes and seeds,
// checking every *Into kernel against its allocating counterpart
// bit-for-bit (stronger than the 1-ULP requirement).
func TestIntoKernelsMatchAllocating(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		r := rng.New(seed)
		for _, s := range kernelShapes {
			a := sparseMat(r, s.n, s.k)
			b := sparseMat(r, s.k, s.m)
			bt := sparseMat(r, s.m, s.k)

			dst := New(s.n, s.m)
			MatMulInto(dst, a, b)
			bitsEqual(t, "MatMulInto", dst, MatMul(a, b))

			dt := New(s.n, s.m)
			MatMulTInto(dt, a, bt)
			bitsEqual(t, "MatMulTInto", dt, MatMulT(a, bt))

			c := sparseMat(r, s.n, s.k)
			sum := New(s.n, s.k)
			AddInto(sum, a, c)
			bitsEqual(t, "AddInto", sum, Add(a, c))

			had := New(s.n, s.k)
			HadamardInto(had, a, c)
			bitsEqual(t, "HadamardInto", had, Hadamard(a, c))

			app := New(s.n, s.k)
			ApplyInto(app, a, math.Tanh)
			want := a.Clone()
			want.Apply(math.Tanh)
			bitsEqual(t, "ApplyInto", app, want)

			rev := New(s.n, s.k)
			ReverseRowsInto(rev, a)
			bitsEqual(t, "ReverseRowsInto", rev, ReverseRows(a))

			cat := New(s.n, s.k+s.k)
			ConcatColsInto(cat, a, c)
			bitsEqual(t, "ConcatColsInto", cat, ConcatCols(a, c))
		}
	}
}

// TestMatMulBiasActIntoMatchesUnfused checks the fused dense forward
// against the unfused MatMul + bias-broadcast + activation pipeline for
// every activation kind. Fusion is per-element, so bits must match.
func TestMatMulBiasActIntoMatchesUnfused(t *testing.T) {
	r := rng.New(3)
	relu := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		return v
	}
	acts := []struct {
		kind ActKind
		f    func(float64) float64
	}{
		{ActNone, func(v float64) float64 { return v }},
		{ActTanh, math.Tanh},
		{ActRelu, relu},
		{ActSigmoid, Sigmoid},
	}
	for _, s := range kernelShapes {
		x := sparseMat(r, s.n, s.k)
		w := sparseMat(r, s.k, s.m)
		bias := sparseMat(r, 1, s.m)
		for _, ac := range acts {
			want := MatMul(x, w)
			for i := 0; i < want.Rows; i++ {
				row := want.Row(i)
				for j := range row {
					row[j] += bias.Data[j]
				}
			}
			want.Apply(ac.f)

			got := New(s.n, s.m)
			MatMulBiasActInto(got, x, w, bias, ac.kind)
			bitsEqual(t, "MatMulBiasActInto", got, want)

			// nil bias must mean "no bias", not a zero add.
			noBias := MatMul(x, w)
			noBias.Apply(ac.f)
			got2 := New(s.n, s.m)
			MatMulBiasActInto(got2, x, w, nil, ac.kind)
			bitsEqual(t, "MatMulBiasActInto(nil bias)", got2, noBias)
		}
	}
}

// TestIntoAliasingSafe: the element-wise kernels document dst == src as
// safe; prove it.
func TestIntoAliasingSafe(t *testing.T) {
	r := rng.New(9)
	a := sparseMat(r, 6, 5)
	b := sparseMat(r, 6, 5)

	want := Add(a, b)
	dst := a.Clone()
	AddInto(dst, dst, b)
	bitsEqual(t, "AddInto(dst==a)", dst, want)

	want = Hadamard(a, b)
	dst = a.Clone()
	HadamardInto(dst, dst, b)
	bitsEqual(t, "HadamardInto(dst==a)", dst, want)

	want = a.Clone()
	want.Apply(math.Tanh)
	dst = a.Clone()
	ApplyInto(dst, dst, math.Tanh)
	bitsEqual(t, "ApplyInto(dst==src)", dst, want)
}

// TestIntoAliasingRejected: kernels that read their inputs after
// writing dst must reject dst == src with the documented panic.
func TestIntoAliasingRejected(t *testing.T) {
	r := rng.New(11)
	sq := sparseMat(r, 4, 4)
	other := sparseMat(r, 4, 4)
	cases := []struct {
		name string
		call func()
	}{
		{"MatMulInto dst==a", func() { MatMulInto(sq, sq, other) }},
		{"MatMulInto dst==b", func() { MatMulInto(sq, other, sq) }},
		{"MatMulTInto dst==a", func() { MatMulTInto(sq, sq, other) }},
		{"MatMulBiasActInto dst==a", func() { MatMulBiasActInto(sq, sq, other, nil, ActNone) }},
		{"ReverseRowsInto dst==src", func() { ReverseRowsInto(sq, sq) }},
		{"ColSliceInto dst==src", func() { ColSliceInto(sq, sq, 0, 4) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				msg, ok := recover().(string)
				if !ok || !strings.Contains(msg, "aliases") {
					t.Fatalf("want alias panic, got %v", msg)
				}
			}()
			tc.call()
		})
	}
}

// TestArenaReuse checks the grow-only contract: after one warm cycle
// the arena serves identical demand without touching the heap, and
// overflow allocations are consolidated at Reset.
func TestArenaReuse(t *testing.T) {
	a := NewArena()
	cycle := func() {
		a.Reset()
		m := a.NewMatrixZero(8, 8)
		v := a.AllocZero(32)
		m.Data[0] = 1
		v[0] = 1
	}
	cycle() // warm-up sizes the slab
	if allocs := testing.AllocsPerRun(10, cycle); allocs != 0 {
		t.Fatalf("warmed arena allocated %.0f times per cycle; want 0", allocs)
	}
	if a.Cap() < 8*8+32 {
		t.Fatalf("arena capacity %d below observed demand %d", a.Cap(), 8*8+32)
	}
}

// TestArenaMatrixDisjoint: allocations within one cycle must never
// overlap, and NewMatrix data is writable across the whole matrix.
func TestArenaMatrixDisjoint(t *testing.T) {
	a := NewArena()
	for cycle := 0; cycle < 2; cycle++ {
		a.Reset()
		m1 := a.NewMatrixZero(3, 4)
		m2 := a.NewMatrixZero(2, 5)
		for i := range m1.Data {
			m1.Data[i] = 1
		}
		for _, v := range m2.Data {
			if v != 0 {
				t.Fatal("arena allocations overlap: writing m1 changed m2")
			}
		}
	}
}
