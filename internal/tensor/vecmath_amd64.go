//go:build amd64 && !purego

package tensor

// Vector transcendental bindings (vecmath_amd64.s). The kernels are
// only bit-identical to math.Exp/math.Tanh when the scalar math package
// itself runs its FMA path, i.e. on CPUs with AVX and FMA (math's
// private useFMA). We additionally require AVX2 (asmSupported) for the
// integer ldexp steps, which implies AVX — so vecSupported true means
// useFMA is true and the replica is exact. On anything else the slice
// wrappers call the scalar functions, which are trivially identical.

//go:noescape
func vexpblk(dst, x []float64) int

//go:noescape
func vsigmoidblk(dst, x []float64) int

//go:noescape
func vtanhblk(dst, x []float64) int

//go:noescape
func vexpf8(dst, x []float32) int

//go:noescape
func vsigmoidf8(dst, x []float32) int

//go:noescape
func vtanhf8(dst, x []float32) int

// vecSupported reports AVX2+FMA with OS-enabled YMM state.
var vecSupported = asmSupported && detectFMA()

func detectFMA() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 1 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	return c1&(1<<12) != 0 // FMA3
}

// useVecKernels gates the vector transcendentals; flipped only by
// SetVecKernels (a testing hook, like SetAsmKernels).
var useVecKernels = vecSupported
