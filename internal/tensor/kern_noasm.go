//go:build !amd64 || purego

package tensor

// Portable build: no assembly microkernels. The stubs are never called
// (useAsmKernels stays false); they exist so the dispatch code compiles
// on every architecture.

var asmSupported = false

func gemm4x8(dst *float64, dstStride int, a *float64, aStride int, panel *float64, k int) {
	panic("tensor: asm kernel called on a build without assembly")
}

func gemm1x8(dst *float64, a *float64, panel *float64, k int) {
	panic("tensor: asm kernel called on a build without assembly")
}

func axpyN8(dst *float64, h *float64, w *float64, wStride int, hn int, npanels int) {
	panic("tensor: asm kernel called on a build without assembly")
}

func gemmf4x8(dst *float32, dstStride int, a *float32, aStride int, panel *float32, k int) {
	panic("tensor: asm kernel called on a build without assembly")
}

func gemmf1x8(dst *float32, a *float32, panel *float32, k int) {
	panic("tensor: asm kernel called on a build without assembly")
}

func axpyf8(dst *float32, h *float32, panels *float32, hn int, npanels int) {
	panic("tensor: asm kernel called on a build without assembly")
}
