// Package tensor provides the dense float64 matrix operations that the
// neural-network library (internal/nn) and the forwarding-tensor model
// (internal/core) are built on. Matrices are row-major and sized
// dynamically; all operations check shapes and panic on mismatch, since a
// shape error is always a programming bug rather than a runtime condition.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero matrix with the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative dimension")
	}
	//dqnlint:allow hotalloc constructor: New mints caller-owned storage by contract; hot paths reach it only through one-time session init
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("tensor: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element of m to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CopyFrom copies src into m; shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(shapeErr("CopyFrom", m, src))
	}
	copy(m.Data, src.Data)
}

// MatMul returns a × b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(shapeErr("MatMul", a, b))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulT returns a × bᵀ.
func MatMulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(shapeErr("MatMulT", a, b))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			sum := 0.0
			for k := range arow {
				sum += arow[k] * brow[k]
			}
			orow[j] = sum
		}
	}
	return out
}

// TMatMul returns aᵀ × b.
func TMatMul(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(shapeErr("TMatMul", a, b))
	}
	out := New(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// AddMatMul accumulates a × b into out (out += a×b).
func AddMatMul(out, a, b *Matrix) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(shapeErr("AddMatMul", a, b))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// AddTMatMul accumulates aᵀ × b into out.
func AddTMatMul(out, a, b *Matrix) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(shapeErr("AddTMatMul", a, b))
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// Transpose returns mᵀ.
func Transpose(m *Matrix) *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Add returns a + b.
func Add(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(shapeErr("Add", a, b))
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(shapeErr("AddInPlace", a, b))
	}
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Apply replaces every element x with f(x) in place.
func (m *Matrix) Apply(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// Hadamard returns the element-wise product a ⊙ b.
func Hadamard(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(shapeErr("Hadamard", a, b))
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] *= v
	}
	return out
}

// SoftmaxRows applies softmax independently to each row of m in place.
func SoftmaxRows(m *Matrix) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		for j, v := range row {
			row[j] = v - maxv
		}
		ExpSlice(row, row) // bit-identical to per-element math.Exp
		sum := 0.0
		for _, e := range row {
			sum += e
		}
		if sum > 0 {
			for j := range row {
				row[j] /= sum
			}
		}
	}
}

// ConcatCols returns [a | b], the column-wise concatenation.
func ConcatCols(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(shapeErr("ConcatCols", a, b))
	}
	out := New(a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i)[:a.Cols], a.Row(i))
		copy(out.Row(i)[a.Cols:], b.Row(i))
	}
	return out
}

// SplitCols splits m into a left matrix of ncolsLeft columns and the rest.
func SplitCols(m *Matrix, ncolsLeft int) (*Matrix, *Matrix) {
	if ncolsLeft < 0 || ncolsLeft > m.Cols {
		panic("tensor: SplitCols out of range")
	}
	l := New(m.Rows, ncolsLeft)
	r := New(m.Rows, m.Cols-ncolsLeft)
	for i := 0; i < m.Rows; i++ {
		copy(l.Row(i), m.Row(i)[:ncolsLeft])
		copy(r.Row(i), m.Row(i)[ncolsLeft:])
	}
	return l, r
}

// ReverseRows returns m with its row order reversed.
func ReverseRows(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(m.Rows-1-i))
	}
	return out
}

// Norm2 returns the Frobenius norm of m.
func (m *Matrix) Norm2() float64 {
	sum := 0.0
	for _, v := range m.Data {
		sum += v * v
	}
	return math.Sqrt(sum)
}

func shapeErr(op string, a, b *Matrix) string {
	return fmt.Sprintf("tensor: %s shape mismatch (%dx%d vs %dx%d)",
		op, a.Rows, a.Cols, b.Rows, b.Cols)
}

func shapeStr(m *Matrix) string { return fmt.Sprintf("%dx%d", m.Rows, m.Cols) }

func dimStr(a, b int) string { return fmt.Sprintf("%d vs %d", a, b) }
