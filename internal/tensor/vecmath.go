package tensor

import "math"

// Slice transcendentals. ExpSlice, SigmoidSlice and TanhSlice compute
// math.Exp, 1/(1+math.Exp(-v)) and math.Tanh element-wise with results
// bit-identical to the scalar calls on every platform: on amd64 CPUs
// with AVX2+FMA they run the 4-lane replicas of the scalar algorithms
// (vecmath_amd64.s), everywhere else they call the scalar functions.
// They are the hot-path form used by the fused activation kernels, the
// LSTM gate kernel and SoftmaxRows — after the blocked GEMM work, the
// exact inference path spends most of its time in exp/tanh, and these
// recover most of it without giving up bit-identity.
//
// dst and x must have equal length; dst may alias x exactly (each
// 4-lane group is read in full before it is written).

// VecKernelsSupported reports whether this binary and CPU can run the
// vector transcendental kernels.
func VecKernelsSupported() bool { return vecSupported }

// SetVecKernels enables or disables the vector transcendentals and
// returns the previous setting. Enabling is a no-op on builds or CPUs
// without them. Testing and diagnostics hook — not safe to call
// concurrently with running kernels.
func SetVecKernels(enable bool) bool {
	prev := useVecKernels
	useVecKernels = enable && vecSupported
	return prev
}

func checkSliceLens(op string, dst, x []float64) {
	if len(dst) != len(x) {
		panic("tensor: " + op + " length mismatch " + dimStr(len(dst), len(x)))
	}
}

// ExpSlice computes dst[i] = math.Exp(x[i]).
func ExpSlice(dst, x []float64) {
	checkSliceLens("ExpSlice", dst, x)
	i := 0
	for useVecKernels {
		i += vexpblk(dst[i:], x[i:])
		if len(x)-i < 4 {
			break
		}
		// The kernel stopped on a group with a lane outside its safe
		// range: take those four scalar, then resume the vector loop.
		for e := i + 4; i < e; i++ {
			dst[i] = math.Exp(x[i])
		}
	}
	for ; i < len(x); i++ {
		dst[i] = math.Exp(x[i])
	}
}

// SigmoidSlice computes dst[i] = Sigmoid(x[i]).
func SigmoidSlice(dst, x []float64) {
	checkSliceLens("SigmoidSlice", dst, x)
	i := 0
	for useVecKernels {
		i += vsigmoidblk(dst[i:], x[i:])
		if len(x)-i < 4 {
			break
		}
		for e := i + 4; i < e; i++ {
			dst[i] = Sigmoid(x[i])
		}
	}
	for ; i < len(x); i++ {
		dst[i] = Sigmoid(x[i])
	}
}

// TanhSlice computes dst[i] = math.Tanh(x[i]).
func TanhSlice(dst, x []float64) {
	checkSliceLens("TanhSlice", dst, x)
	i := 0
	if useVecKernels {
		i = vtanhblk(dst, x)
	}
	for ; i < len(x); i++ {
		dst[i] = math.Tanh(x[i])
	}
}
