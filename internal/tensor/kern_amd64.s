//go:build amd64 && !purego

#include "textflag.h"

// AVX2 GEMM microkernels. Bit-identity contract: every output element
// accumulates its k terms in ascending order with one VMULPD + VADDPD
// per term — each 64-bit lane rounds exactly like scalar mulsd/addsd.
// FMA is deliberately not used: vfmadd skips the intermediate rounding
// of the product and would change low-order bits.

// func gemm4x8(dst *float64, dstStride int, a *float64, aStride int, panel *float64, k int)
// Computes dst[r][0:8] = sum_k a[r][k]*panel[k][0:8] for r = 0..3
// (beta = 0). panel is one 8-wide packed panel (k-major, 8 lanes per
// row); dst rows are dstStride apart.
TEXT ·gemm4x8(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ dstStride+8(FP), R8
	MOVQ a+16(FP), SI
	MOVQ aStride+24(FP), R9
	MOVQ panel+32(FP), DX
	MOVQ k+40(FP), CX

	LEAQ (SI)(R9*8), R10
	LEAQ (R10)(R9*8), R11
	LEAQ (R11)(R9*8), R12

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	XORQ BX, BX
	CMPQ CX, $0
	JLE  done

loop:
	VMOVUPD (DX), Y8
	VMOVUPD 32(DX), Y9

	VBROADCASTSD (SI)(BX*8), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y0, Y0
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y1, Y1

	VBROADCASTSD (R10)(BX*8), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y2, Y2
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y3, Y3

	VBROADCASTSD (R11)(BX*8), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y4, Y4
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y5, Y5

	VBROADCASTSD (R12)(BX*8), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y6, Y6
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y7, Y7

	ADDQ $64, DX
	INCQ BX
	CMPQ BX, CX
	JLT  loop

done:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	LEAQ (DI)(R8*8), DI
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	LEAQ (DI)(R8*8), DI
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	LEAQ (DI)(R8*8), DI
	VMOVUPD Y6, (DI)
	VMOVUPD Y7, 32(DI)
	VZEROUPPER
	RET

// func gemm1x8(dst *float64, a *float64, panel *float64, k int)
// Computes dst[0:8] = sum_k a[k]*panel[k][0:8] (beta = 0) — the
// row-tail variant of gemm4x8 for M % 4 leftovers.
TEXT ·gemm1x8(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ panel+16(FP), DX
	MOVQ k+24(FP), CX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1

	XORQ BX, BX
	CMPQ CX, $0
	JLE  done1

loop1:
	VMOVUPD (DX), Y8
	VMOVUPD 32(DX), Y9
	VBROADCASTSD (SI)(BX*8), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y0, Y0
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y1, Y1
	ADDQ $64, DX
	INCQ BX
	CMPQ BX, CX
	JLT  loop1

done1:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VZEROUPPER
	RET

// func axpyN8(dst *float64, h *float64, w *float64, wStride int, hn int, npanels int)
// dst[0:npanels*8] += sum_k h[k]*w[k][0:npanels*8] — the beta = 1 row
// update of the LSTM recurrence, reading w (row-major, stride wStride)
// directly without packing. k ascending per element.
TEXT ·axpyN8(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ h+8(FP), SI
	MOVQ w+16(FP), DX
	MOVQ wStride+24(FP), R8
	MOVQ hn+32(FP), CX
	MOVQ npanels+40(FP), R9

	SHLQ $3, R8 // stride in bytes

panelloop:
	CMPQ R9, $0
	JLE  alldone

	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1

	MOVQ DX, R10 // w column base for this panel
	XORQ BX, BX

kloop:
	CMPQ BX, CX
	JGE  kdone
	VBROADCASTSD (SI)(BX*8), Y10
	VMOVUPD (R10), Y8
	VMOVUPD 32(R10), Y9
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y0, Y0
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y1, Y1
	ADDQ R8, R10
	INCQ BX
	JMP  kloop

kdone:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ $64, DI
	ADDQ $64, DX
	DECQ R9
	JMP  panelloop

alldone:
	VZEROUPPER
	RET

// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// --- float32 quant-path microkernels ---
//
// These serve the int8-quantized backend, which carries no bit-identity
// contract (accuracy is gated by golden-scenario thresholds instead),
// so FMA is allowed and used.

// func gemmf4x8(dst *float32, dstStride int, a *float32, aStride int, panel *float32, k int)
// dst[r][0:8] = sum_k a[r][k]*panel[k][0:8] for r = 0..3 (beta = 0)
// over the dequantized float32 panels of a QuantMat.
TEXT ·gemmf4x8(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ dstStride+8(FP), R8
	MOVQ a+16(FP), SI
	MOVQ aStride+24(FP), R9
	MOVQ panel+32(FP), DX
	MOVQ k+40(FP), CX

	LEAQ (SI)(R9*4), R10
	LEAQ (R10)(R9*4), R11
	LEAQ (R11)(R9*4), R12

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

	XORQ BX, BX
	CMPQ CX, $0
	JLE  fdone

floop:
	VMOVUPS (DX), Y8
	VBROADCASTSS (SI)(BX*4), Y10
	VFMADD231PS Y8, Y10, Y0
	VBROADCASTSS (R10)(BX*4), Y10
	VFMADD231PS Y8, Y10, Y1
	VBROADCASTSS (R11)(BX*4), Y10
	VFMADD231PS Y8, Y10, Y2
	VBROADCASTSS (R12)(BX*4), Y10
	VFMADD231PS Y8, Y10, Y3
	ADDQ $32, DX
	INCQ BX
	CMPQ BX, CX
	JLT  floop

fdone:
	VMOVUPS Y0, (DI)
	LEAQ (DI)(R8*4), DI
	VMOVUPS Y1, (DI)
	LEAQ (DI)(R8*4), DI
	VMOVUPS Y2, (DI)
	LEAQ (DI)(R8*4), DI
	VMOVUPS Y3, (DI)
	VZEROUPPER
	RET

// func gemmf1x8(dst *float32, a *float32, panel *float32, k int)
// Row-tail variant of gemmf4x8.
TEXT ·gemmf1x8(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ panel+16(FP), DX
	MOVQ k+24(FP), CX

	VXORPS Y0, Y0, Y0

	XORQ BX, BX
	CMPQ CX, $0
	JLE  fdone1

floop1:
	VMOVUPS (DX), Y8
	VBROADCASTSS (SI)(BX*4), Y10
	VFMADD231PS Y8, Y10, Y0
	ADDQ $32, DX
	INCQ BX
	CMPQ BX, CX
	JLT  floop1

fdone1:
	VMOVUPS Y0, (DI)
	VZEROUPPER
	RET

// func axpyf8(dst *float32, h *float32, panels *float32, hn int, npanels int)
// dst[0:npanels*8] += sum_k h[k]*panels[k][0:8] over consecutive packed
// panels — the quant-path LSTM recurrence update.
TEXT ·axpyf8(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ h+8(FP), SI
	MOVQ panels+16(FP), DX
	MOVQ hn+24(FP), CX
	MOVQ npanels+32(FP), R9

fpanel:
	CMPQ R9, $0
	JLE  faxdone
	VMOVUPS (DI), Y0
	XORQ BX, BX

fk:
	CMPQ BX, CX
	JGE  fkdone
	VBROADCASTSS (SI)(BX*4), Y10
	VMOVUPS (DX), Y8
	VFMADD231PS Y8, Y10, Y0
	ADDQ $32, DX
	INCQ BX
	JMP  fk

fkdone:
	VMOVUPS Y0, (DI)
	ADDQ $32, DI
	DECQ R9
	JMP  fpanel

faxdone:
	VZEROUPPER
	RET
