package tensor

import "math"

// float32 counterparts of the Matrix/Arena machinery, used by the
// opt-in quantized inference backend (int8 weights, float32
// activations). The float64 path stays the default and keeps its
// bit-identity guarantees; everything here trades a bounded amount of
// precision for speed and is gated by the quant accuracy tests instead.

// MatrixF32 is a dense, row-major matrix of float32.
type MatrixF32 struct {
	Rows, Cols int
	Data       []float32
}

// NewF32 returns a zero float32 matrix with the given shape.
func NewF32(rows, cols int) *MatrixF32 {
	if rows < 0 || cols < 0 {
		panic("tensor: negative dimension")
	}
	//dqnlint:allow hotalloc constructor: NewF32 mints caller-owned storage by contract; hot paths reach it only through one-time session init
	return &MatrixF32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns a mutable view of row i.
func (m *MatrixF32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// At returns the element at (i, j).
func (m *MatrixF32) At(i, j int) float64 { return float64(m.Data[i*m.Cols+j]) }

// CopyFromF64 fills m from a float64 matrix of the same shape.
func (m *MatrixF32) CopyFromF64(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("tensor: CopyFromF64 shape mismatch " + shapeStr(src))
	}
	for i, v := range src.Data {
		m.Data[i] = float32(v)
	}
}

// ArenaF32 is Arena for float32 scratch: grow-only slab, Reset reuse,
// zero steady-state allocations once warmed. Same contract, same
// non-goroutine-safety.
type ArenaF32 struct {
	slab []float32
	off  int
	want int

	hdrs []*MatrixF32
	nhdr int
}

// NewArenaF32 returns an empty float32 arena; the first cycle sizes it.
func NewArenaF32() *ArenaF32 { return &ArenaF32{} }

// Alloc returns an n-float scratch slice (uninitialized).
func (a *ArenaF32) Alloc(n int) []float32 {
	a.want += n
	if a.off+n <= len(a.slab) {
		s := a.slab[a.off : a.off+n : a.off+n]
		a.off += n
		return s
	}
	//dqnlint:allow hotalloc cold-start overflow: fires only until Reset regrows the slab to the observed peak; a warmed arena never reaches this line
	return make([]float32, n)
}

// AllocZero returns an n-float scratch slice with every element zero.
func (a *ArenaF32) AllocZero(n int) []float32 {
	s := a.Alloc(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// NewMatrix returns a rows×cols matrix backed by the arena
// (uninitialized data).
func (a *ArenaF32) NewMatrix(rows, cols int) *MatrixF32 {
	var m *MatrixF32
	if a.nhdr < len(a.hdrs) {
		m = a.hdrs[a.nhdr]
	} else {
		//dqnlint:allow hotalloc header pool growth: a new header is minted only until the arena has seen its peak header count, then reused forever
		m = &MatrixF32{}
		//dqnlint:allow hotalloc header pool growth: same amortized warm-up as the header mint above
		a.hdrs = append(a.hdrs, m)
	}
	a.nhdr++
	m.Rows, m.Cols = rows, cols
	m.Data = a.Alloc(rows * cols)
	return m
}

// NewMatrixZero returns a zeroed rows×cols matrix backed by the arena.
func (a *ArenaF32) NewMatrixZero(rows, cols int) *MatrixF32 {
	m := a.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// Reset reclaims every allocation of the current cycle, regrowing the
// slab to the observed demand if it overflowed.
func (a *ArenaF32) Reset() {
	if a.want > len(a.slab) {
		//dqnlint:allow hotalloc slab regrow: runs once per demand increase; after warm-up every cycle reuses the slab
		a.slab = make([]float32, a.want)
	}
	a.off = 0
	a.want = 0
	a.nhdr = 0
}

// --- float32 activation-side kernels (activations × activations) ---

// MatMulF32Into computes dst = a × b over float32 (used where both
// operands are activations, e.g. attention score × value).
func MatMulF32Into(dst, a, b *MatrixF32) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMulF32Into shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTF32Into computes dst = a × bᵀ over float32.
func MatMulTF32Into(dst, a, b *MatrixF32) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: MatMulTF32Into shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var sum float32
			for k := range arow {
				sum += arow[k] * brow[k]
			}
			orow[j] = sum
		}
	}
}

// ColSliceF32Into copies columns [lo, hi) of src into dst.
func ColSliceF32Into(dst, src *MatrixF32, lo, hi int) {
	if lo < 0 || hi > src.Cols || lo > hi || dst.Rows != src.Rows || dst.Cols != hi-lo {
		panic("tensor: ColSliceF32Into shape mismatch")
	}
	for i := 0; i < src.Rows; i++ {
		copy(dst.Row(i), src.Row(i)[lo:hi])
	}
}

// ReverseRowsF32Into writes src with reversed row order into dst.
func ReverseRowsF32Into(dst, src *MatrixF32) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("tensor: ReverseRowsF32Into shape mismatch")
	}
	for i := 0; i < src.Rows; i++ {
		copy(dst.Row(i), src.Row(src.Rows-1-i))
	}
}

// ConcatColsF32Into writes [a | b] into dst.
func ConcatColsF32Into(dst, a, b *MatrixF32) {
	if a.Rows != b.Rows || dst.Rows != a.Rows || dst.Cols != a.Cols+b.Cols {
		panic("tensor: ConcatColsF32Into shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		drow := dst.Row(i)
		copy(drow[:a.Cols], a.Row(i))
		copy(drow[a.Cols:], b.Row(i))
	}
}

// SoftmaxRowsF32 applies softmax to each row in place, using the fast
// float32 exponential.
func SoftmaxRowsF32(m *MatrixF32) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		maxv := float32(math.Inf(-1))
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		for j, v := range row {
			row[j] = v - maxv
		}
		FastExpSlice(row, row)
		var sum float32
		for _, e := range row {
			sum += e
		}
		if sum > 0 {
			for j := range row {
				row[j] /= sum
			}
		}
	}
}

// --- fast float32 transcendentals ---
//
// The quantized path's speed comes as much from these as from the int8
// weights: the exact float64 path spends about a third of its time in
// math.Exp/math.Tanh. FastExp32 is a range-reduced polynomial (2^n ·
// e^z with |z| ≤ ln2/2, degree-6 Taylor evaluated by Horner) whose
// relative error stays within a few float32 ULP — small against the
// int8 weight quantization error the accuracy gates already budget for.

// FastExpSlice computes dst[i] = e^x[i] (fast float32 flavor). On
// amd64 with AVX2+FMA the bulk runs 8 lanes at a time
// (vecmath_amd64.s); the vector and scalar forms may differ by a couple
// of low-order ULPs, which the quant accuracy gates budget for. dst may
// alias x exactly.
func FastExpSlice(dst, x []float32) {
	if len(dst) != len(x) {
		panic("tensor: FastExpSlice length mismatch")
	}
	i := 0
	if useVecKernels {
		i = vexpf8(dst, x)
	}
	for ; i < len(x); i++ {
		dst[i] = FastExp32(x[i])
	}
}

// FastSigmoidSlice computes dst[i] = 1/(1+e^-x[i]), fast float32
// flavor; same vectorization and aliasing contract as FastExpSlice.
func FastSigmoidSlice(dst, x []float32) {
	if len(dst) != len(x) {
		panic("tensor: FastSigmoidSlice length mismatch")
	}
	i := 0
	if useVecKernels {
		i = vsigmoidf8(dst, x)
	}
	for ; i < len(x); i++ {
		dst[i] = FastSigmoid32(x[i])
	}
}

// FastTanhSlice computes dst[i] = tanh(x[i]), fast float32 flavor; same
// vectorization and aliasing contract as FastExpSlice.
func FastTanhSlice(dst, x []float32) {
	if len(dst) != len(x) {
		panic("tensor: FastTanhSlice length mismatch")
	}
	i := 0
	if useVecKernels {
		i = vtanhf8(dst, x)
	}
	for ; i < len(x); i++ {
		dst[i] = FastTanh32(x[i])
	}
}

// FastExp32 returns e^x with ~1e-7 relative error.
func FastExp32(x float32) float32 {
	if x != x { // NaN
		return x
	}
	if x > 88.5 {
		return float32(math.Inf(1))
	}
	if x < -87.0 {
		return 0
	}
	t := x * 1.4426950408889634 // x/ln2
	var n float32
	if t >= 0 {
		n = float32(int32(t + 0.5))
	} else {
		n = float32(int32(t - 0.5))
	}
	z := (t - n) * 0.6931471805599453 // |z| ≤ ln2/2
	p := 1 + z*(1+z*(0.5+z*(1.0/6+z*(1.0/24+z*(1.0/120+z*(1.0/720))))))
	// Scale by 2^n: n is a small integer, add it to the exponent field.
	return math.Float32frombits(math.Float32bits(p) + uint32(int32(n))<<23)
}

// FastTanh32 returns tanh(x) via FastExp32.
func FastTanh32(x float32) float32 {
	if x != x {
		return x
	}
	if x > 9 {
		return 1
	}
	if x < -9 {
		return -1
	}
	e := FastExp32(2 * x)
	return (e - 1) / (e + 1)
}

// FastSigmoid32 returns 1/(1+e^-x) via FastExp32.
func FastSigmoid32(x float32) float32 {
	return 1 / (1 + FastExp32(-x))
}
