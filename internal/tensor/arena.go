package tensor

// Arena is a grow-only scratch allocator for inference temporaries.
// Alloc hands out disjoint sub-slices of one backing slab; Reset makes
// the whole slab reusable again without returning memory to the GC. A
// warmed arena (one that has seen its peak demand) satisfies every
// subsequent cycle with zero heap allocations — the property the
// allocation-regression tests pin.
//
// Contract:
//   - Values handed out are valid only until the next Reset. Callers
//     that need a result to outlive the cycle must copy it out.
//   - Alloc'd memory is NOT zeroed (it recycles prior cycles' bytes);
//     use AllocZero / NewMatrixZero when the kernel accumulates.
//   - An Arena is not goroutine-safe. Use one per worker.
type Arena struct {
	slab []float64
	off  int
	want int // total floats requested this cycle, to size the next slab

	hdrs []*Matrix // reusable Matrix headers
	nhdr int
}

// NewArena returns an empty arena; the first cycle sizes it.
func NewArena() *Arena { return &Arena{} }

// Alloc returns an n-float scratch slice (uninitialized: it may hold
// bytes from earlier cycles).
func (a *Arena) Alloc(n int) []float64 {
	a.want += n
	if a.off+n <= len(a.slab) {
		s := a.slab[a.off : a.off+n : a.off+n]
		a.off += n
		return s
	}
	// Slab exhausted: overflow allocation, consolidated at next Reset.
	//dqnlint:allow hotalloc cold-start overflow: fires only until Reset regrows the slab to the observed peak; a warmed arena never reaches this line
	return make([]float64, n)
}

// AllocZero returns an n-float scratch slice with every element zero.
func (a *Arena) AllocZero(n int) []float64 {
	s := a.Alloc(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// NewMatrix returns a rows×cols matrix backed by the arena. Its data is
// uninitialized; kernels that fully overwrite their destination (the
// *Into family) can use it directly, accumulating kernels should use
// NewMatrixZero.
func (a *Arena) NewMatrix(rows, cols int) *Matrix {
	var m *Matrix
	if a.nhdr < len(a.hdrs) {
		m = a.hdrs[a.nhdr]
	} else {
		//dqnlint:allow hotalloc header pool growth: a new Matrix header is minted only until the arena has seen its peak header count, then reused forever
		m = &Matrix{}
		//dqnlint:allow hotalloc header pool growth: same amortized warm-up as the header mint above
		a.hdrs = append(a.hdrs, m)
	}
	a.nhdr++
	m.Rows, m.Cols = rows, cols
	m.Data = a.Alloc(rows * cols)
	return m
}

// NewMatrixZero returns a zeroed rows×cols matrix backed by the arena.
func (a *Arena) NewMatrixZero(rows, cols int) *Matrix {
	m := a.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// Reset reclaims every allocation of the current cycle. If the cycle
// overflowed the slab, the slab is regrown to the full observed demand
// so the next cycle runs allocation-free.
func (a *Arena) Reset() {
	if a.want > len(a.slab) {
		//dqnlint:allow hotalloc slab regrow: runs once per demand increase; after warm-up every cycle reuses the slab (the property the zero-alloc tests pin)
		a.slab = make([]float64, a.want)
	}
	a.off = 0
	a.want = 0
	a.nhdr = 0
}

// Cap returns the slab capacity in floats (diagnostics).
func (a *Arena) Cap() int { return len(a.slab) }
